// Package multiedge is a faithful reproduction of MultiEdge, the
// edge-based communication subsystem for scalable commodity servers of
// Karlsson, Passas, Kotsis and Bilas (IPPS 2007), together with every
// substrate its evaluation depends on: a deterministic discrete-event
// cluster simulator (nodes, CPUs, NICs, links, switches), a GeNIMA-style
// page-based software DSM, and the eight SPLASH-2 applications of the
// paper's Table 1.
//
// MultiEdge is a connection-oriented protocol over raw Ethernet frames
// providing remote read/write into a peer's address space, end-to-end
// sliding-window flow control with piggy-backed and delayed
// acknowledgements, NACK-based retransmission, transparent striping of
// frames across multiple physical links, and per-operation backward /
// forward fence ordering.
//
// # Quick start
//
//	cfg := multiedge.OneLink1G(2)            // two nodes, 1-GBit/s
//	cl := multiedge.NewCluster(cfg)
//	c01, c10 := cl.Pair()                    // establish a connection
//	ep0, ep1 := cl.Nodes[0].EP, cl.Nodes[1].EP
//	src, dst := ep0.Alloc(64), ep1.Alloc(64)
//	copy(ep0.Mem()[src:], []byte("hello"))
//	cl.Env.Go("app", func(p *multiedge.Proc) {
//	    h := c01.MustDo(p, multiedge.Op{
//	        Remote: dst, Local: src, Size: 5,
//	        Kind: multiedge.OpWrite, Flags: multiedge.Notify,
//	    })
//	    h.Wait(p)
//	})
//	cl.Env.Go("peer", func(p *multiedge.Proc) {
//	    n := c10.WaitNotify(p)
//	    fmt.Printf("%s\n", ep1.Mem()[n.Addr:n.Addr+uint64(n.Len)])
//	})
//	cl.Env.Run()
//
// The simulation is deterministic: equal seeds give bit-identical runs.
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
package multiedge

import (
	"multiedge/internal/blk"
	"multiedge/internal/cluster"
	"multiedge/internal/core"
	"multiedge/internal/dsm"
	"multiedge/internal/frame"
	"multiedge/internal/hostmodel"
	"multiedge/internal/msg"
	"multiedge/internal/phys"
	"multiedge/internal/sim"
)

// Simulation kernel.
type (
	// Env is a deterministic discrete-event simulation environment.
	Env = sim.Env
	// Proc is a simulated process (cooperative goroutine).
	Proc = sim.Proc
	// Time is virtual time in nanoseconds.
	Time = sim.Time
	// Signal is a one-shot completion event.
	Signal = sim.Signal
)

// Virtual time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// NewEnv creates a standalone simulation environment (NewCluster makes
// one internally; use this for custom topologies built from the phys
// layer).
func NewEnv(seed int64) *Env { return sim.NewEnv(seed) }

// Protocol layer (the paper's contribution).
type (
	// Endpoint is a node's MultiEdge protocol instance.
	Endpoint = core.Endpoint
	// Conn is one end of a MultiEdge connection.
	Conn = core.Conn
	// Handle tracks an issued operation's progress.
	Handle = core.Handle
	// Op describes one remote operation for Conn.Do and Conn.Post,
	// mirroring the paper's RDMA_operation(connection, remote_va,
	// local_va, size, op, flags) primitive as an options struct.
	Op = core.Op
	// Completion reports one finished submission-queue operation on a
	// connection's completion queue (Conn.PollCQ / Conn.WaitCQ).
	Completion = core.Completion
	// Notification reports a completed notifying remote write.
	Notification = core.Notification
	// ProtocolConfig holds the protocol parameters (window, delayed
	// acknowledgements, NACK timing, ordering mode, baselines).
	ProtocolConfig = core.Config
	// ProtocolStats counts protocol events at one endpoint.
	ProtocolStats = core.Stats
)

// Operation types and flags for Op.Kind and Op.Flags (used with
// Conn.Do, Conn.MustDo and Conn.Post).
const (
	OpWrite = frame.OpWrite
	OpRead  = frame.OpRead
	// FenceBefore (backward fence): perform this operation only after
	// all previously issued operations on the connection (IPPS'07 §2.5).
	FenceBefore = frame.FenceBefore
	// FenceAfter (forward fence): perform subsequent operations only
	// after this one.
	FenceAfter = frame.FenceAfter
	// Notify delivers a notification to the remote process when the
	// operation has been performed.
	Notify = frame.Notify
	// Solicit requests an immediate acknowledgement on completion at
	// the receiver (one-round-trip write completion for latency-bound
	// callers; one extra control frame).
	Solicit = frame.Solicit
)

// DefaultProtocolConfig returns the paper-calibrated protocol defaults.
func DefaultProtocolConfig() ProtocolConfig { return core.DefaultConfig() }

// Cluster assembly.
type (
	// Cluster is a simulated MultiEdge cluster.
	Cluster = cluster.Cluster
	// ClusterConfig describes a cluster to build.
	ClusterConfig = cluster.Config
	// ClusterNode is one simulated machine.
	ClusterNode = cluster.Node
	// NetReport aggregates cluster-wide network statistics.
	NetReport = cluster.NetReport
)

// NewCluster builds a cluster from a configuration.
func NewCluster(cfg ClusterConfig) *Cluster { return cluster.New(cfg) }

// The paper's four evaluation configurations (IPPS'07 §3), plus the §6
// future-work setups.
var (
	// OneLink1G: one 1-GBit/s link per node, one switch.
	OneLink1G = cluster.OneLink1G
	// TwoLink1G: two 1-GBit/s links, strictly ordered delivery.
	TwoLink1G = cluster.TwoLink1G
	// TwoLinkUnordered1G: two 1-GBit/s links, out-of-order delivery.
	TwoLinkUnordered1G = cluster.TwoLinkUnordered1G
	// OneLink10G: one 10-GBit/s link per node.
	OneLink10G = cluster.OneLink10G
	// OneLink10GOffload: §6(b) hybrid with NIC protocol offload.
	OneLink10GOffload = cluster.OneLink10GOffload
	// TreeOneLink1G: §6(a) two-level multi-switch fabric.
	TreeOneLink1G = cluster.TreeOneLink1G
	// HybridRails: heterogeneous 1-GbE + 10-GbE rails with adaptive
	// (least-backlog) striping.
	HybridRails = cluster.HybridRails
)

// Physical substrate models (for custom topologies).
type (
	// LinkParams describes a link technology.
	LinkParams = phys.LinkParams
	// NICParams configures a NIC model.
	NICParams = phys.NICParams
	// SwitchParams configures a switch model.
	SwitchParams = phys.SwitchParams
	// HostCosts is the calibrated host-side cost table.
	HostCosts = hostmodel.Costs
)

var (
	// Gigabit returns 1-GBit/s link parameters.
	Gigabit = phys.Gigabit
	// TenGigabit returns 10-GBit/s link parameters.
	TenGigabit = phys.TenGigabit
	// DefaultHostCosts returns the calibrated host cost table.
	DefaultHostCosts = hostmodel.Default
)

// Shared memory (GeNIMA-style DSM over MultiEdge).
type (
	// DSM is a cluster-wide shared address space.
	DSM = dsm.System
	// DSMInstance is one node's DSM runtime.
	DSMInstance = dsm.Instance
	// DSMConfig sizes the shared region.
	DSMConfig = dsm.Config
	// Breakdown is the per-node execution-time decomposition.
	Breakdown = dsm.Breakdown
)

// PageSize is the DSM sharing granularity.
const PageSize = dsm.PageSize

// NewDSM builds the shared address space over an established full mesh
// (see Cluster.FullMesh).
func NewDSM(cl *Cluster, conns [][]*Conn, cfg DSMConfig) *DSM {
	return dsm.New(cl, conns, cfg)
}

// Message passing (MPI-style, over the same transport).
type (
	// Comm is a per-node communicator with Send/Recv and collectives.
	Comm = msg.Comm
)

// AnyTag matches any message tag in Comm.Recv.
const AnyTag = msg.AnyTag

// NewComms builds one communicator per node over an established full
// mesh. A communicator owns its endpoint's notification stream; do not
// combine it with a DSM on the same endpoints.
func NewComms(cl *Cluster, conns [][]*Conn) []*Comm {
	return msg.New(cl, conns)
}

// Block storage (one-sided RDMA volumes, over the same transport).
type (
	// Volume is a block device served passively from one node's memory.
	Volume = blk.Volume
	// BlkClient is one node's handle on a Volume.
	BlkClient = blk.Client
	// Mirror is client-side RAID-1 over two volumes on different
	// hosts, with deadline-based failover and online rebuild.
	Mirror = blk.Mirror
)

// OpenMirror pairs two volume clients (on different hosts) into a
// mirror.
func OpenMirror(a, b *BlkClient) *Mirror { return blk.OpenMirror(a, b) }

// NewVolume carves a volume (blocks x blockSize bytes plus maxClients
// commit records) out of the host node's endpoint memory.
func NewVolume(cl *Cluster, host, blocks, blockSize, maxClients int) *Volume {
	return blk.NewVolume(cl, host, blocks, blockSize, maxClients)
}

// OpenVolume attaches node to a volume over an established connection
// to its host; id indexes the client's commit record (unique per
// client).
func OpenVolume(cl *Cluster, v *Volume, node int, conn *Conn, id int) *BlkClient {
	return blk.Open(cl, v, node, conn, id)
}
