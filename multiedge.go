// Package multiedge is a faithful reproduction of MultiEdge, the
// edge-based communication subsystem for scalable commodity servers of
// Karlsson, Passas, Kotsis and Bilas (IPPS 2007), together with every
// substrate its evaluation depends on: a deterministic discrete-event
// cluster simulator (nodes, CPUs, NICs, links, switches), a GeNIMA-style
// page-based software DSM, and the eight SPLASH-2 applications of the
// paper's Table 1.
//
// MultiEdge is a connection-oriented protocol over raw Ethernet frames
// providing remote read/write into a peer's address space, end-to-end
// sliding-window flow control with piggy-backed and delayed
// acknowledgements, NACK-based retransmission, transparent striping of
// frames across multiple physical links, and per-operation backward /
// forward fence ordering.
//
// # Quick start
//
// The service layer is the front door: name a region, replicate it
// across backends, and call it by name. Serve registers the service,
// Connect returns a stub that balances calls across the replicas and
// fails over (exactly once, via the journaled-replay recovery layer)
// when one dies.
//
//	cfg := multiedge.OneLink1G(4)            // four nodes, 1-GBit/s
//	cl := multiedge.NewCluster(cfg,
//	    multiedge.WithReconnect(0),          // supervised redial + failover
//	    multiedge.WithHeartbeat(multiedge.Millisecond, 5*multiedge.Millisecond))
//	reg := multiedge.NewRegistry()
//	svc, _ := multiedge.Serve(reg, "kv", 1<<16,
//	    []*multiedge.Endpoint{cl.Nodes[1].EP, cl.Nodes[2].EP, cl.Nodes[3].EP})
//	stub, _ := multiedge.Connect(cl.Nodes[0].EP, reg, "kv",
//	    multiedge.WithBalancer(multiedge.NewAffinity(multiedge.NewRoundRobin())))
//	cl.Env.Go("app", func(p *multiedge.Proc) {
//	    src := cl.Nodes[0].EP.Alloc(64)
//	    copy(cl.Nodes[0].EP.Mem()[src:], []byte("hello"))
//	    err := stub.Call(p, 1, multiedge.Op{ // token 1: session affinity
//	        Remote: 0, Local: src, Size: 5, Kind: multiedge.OpWrite,
//	    })
//	    _ = err
//	    stub.Close(p)
//	})
//	cl.Env.Run()
//	_ = svc
//
// Underneath, calls are ordinary MultiEdge operations: Cluster.Pair /
// Conn.Do give the raw connection-oriented primitive (remote read and
// write with fences and notifications) when a named service is more
// than the task needs — see examples/quickstart.
//
// The simulation is deterministic: equal seeds give bit-identical runs.
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
package multiedge

import (
	"multiedge/internal/blk"
	"multiedge/internal/cluster"
	"multiedge/internal/core"
	"multiedge/internal/dsm"
	"multiedge/internal/frame"
	"multiedge/internal/hostmodel"
	"multiedge/internal/msg"
	"multiedge/internal/phys"
	"multiedge/internal/sim"
	"multiedge/internal/svc"
)

// Simulation kernel.
type (
	// Env is a deterministic discrete-event simulation environment.
	Env = sim.Env
	// Proc is a simulated process (cooperative goroutine).
	Proc = sim.Proc
	// Time is virtual time in nanoseconds.
	Time = sim.Time
	// Signal is a one-shot completion event.
	Signal = sim.Signal
)

// Virtual time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// NewEnv creates a standalone simulation environment (NewCluster makes
// one internally; use this for custom topologies built from the phys
// layer).
func NewEnv(seed int64) *Env { return sim.NewEnv(seed) }

// Protocol layer (the paper's contribution).
type (
	// Endpoint is a node's MultiEdge protocol instance.
	Endpoint = core.Endpoint
	// Conn is one end of a MultiEdge connection.
	Conn = core.Conn
	// Handle tracks an issued operation's progress.
	Handle = core.Handle
	// Op describes one remote operation for Conn.Do and Conn.Post,
	// mirroring the paper's RDMA_operation(connection, remote_va,
	// local_va, size, op, flags) primitive as an options struct.
	Op = core.Op
	// Completion reports one finished submission-queue operation on a
	// connection's completion queue (Conn.PollCQ / Conn.WaitCQ).
	Completion = core.Completion
	// Notification reports a completed notifying remote write.
	Notification = core.Notification
	// ProtocolConfig holds the protocol parameters (window, delayed
	// acknowledgements, NACK timing, ordering mode, baselines).
	ProtocolConfig = core.Config
	// ProtocolStats counts protocol events at one endpoint.
	ProtocolStats = core.Stats
	// QoSClass configures one tenant/traffic class of the QoS layer
	// (weight, rate limit, submission quotas). See WithQoS.
	QoSClass = core.QoSClass
)

// Operation types and flags for Op.Kind and Op.Flags (used with
// Conn.Do, Conn.MustDo and Conn.Post).
const (
	OpWrite = frame.OpWrite
	OpRead  = frame.OpRead
	// FenceBefore (backward fence): perform this operation only after
	// all previously issued operations on the connection (IPPS'07 §2.5).
	FenceBefore = frame.FenceBefore
	// FenceAfter (forward fence): perform subsequent operations only
	// after this one.
	FenceAfter = frame.FenceAfter
	// Notify delivers a notification to the remote process when the
	// operation has been performed.
	Notify = frame.Notify
	// Solicit requests an immediate acknowledgement on completion at
	// the receiver (one-round-trip write completion for latency-bound
	// callers; one extra control frame).
	Solicit = frame.Solicit
)

// DefaultProtocolConfig returns the paper-calibrated protocol defaults.
func DefaultProtocolConfig() ProtocolConfig { return core.DefaultConfig() }

// ErrThrottled: a tenant class is over its QoS submission quota and the
// fail-fast path (Conn.Post) refused the descriptor — back off, or use
// the blocking path (Conn.Do), which waits for room. Test with
// errors.Is.
var ErrThrottled = core.ErrThrottled

// Cluster assembly.
type (
	// Cluster is a simulated MultiEdge cluster.
	Cluster = cluster.Cluster
	// ClusterConfig describes a cluster to build.
	ClusterConfig = cluster.Config
	// ClusterNode is one simulated machine.
	ClusterNode = cluster.Node
	// NetReport aggregates cluster-wide network statistics.
	NetReport = cluster.NetReport
)

// ClusterOption adjusts a ClusterConfig in NewCluster. Options apply in
// order after the base configuration, so later options win; the result
// is validated (ClusterConfig.Validate) before the cluster is built.
type ClusterOption func(*ClusterConfig)

// WithReconnect enables the supervised recovery layer: a lost peer
// parks the connection in Reconnecting and a supervisor redials with
// capped exponential backoff instead of failing outright. maxReconnects
// bounds consecutive attempts; 0 keeps the default budget.
func WithReconnect(maxReconnects int) ClusterOption {
	return func(c *ClusterConfig) {
		c.Core.Reconnect = true
		c.Core.MaxReconnects = maxReconnects
	}
}

// WithSchedQueue replaces the protocol thread's O(conns) round-robin
// scan with the ready-queue scheduler — required beyond a few hundred
// connections per node.
func WithSchedQueue() ClusterOption {
	return func(c *ClusterConfig) { c.Core.SchedQueue = true }
}

// WithSubmissionQueues routes operations through per-connection
// submission/completion queues (Post/Ring/WaitCQ) instead of eager
// per-op dispatch.
func WithSubmissionQueues() ClusterOption {
	return func(c *ClusterConfig) { c.Core.UseSQ = true }
}

// WithHeartbeat enables idle-side liveness: established connections
// exchange heartbeats every interval, and a peer silent for dead is
// declared lost even with no traffic of its own. dead 0 keeps the
// configured DeadInterval.
func WithHeartbeat(interval, dead Time) ClusterOption {
	return func(c *ClusterConfig) {
		c.Core.HeartbeatInterval = interval
		if dead > 0 {
			c.Core.DeadInterval = dead
		}
	}
}

// WithTimerWheel coalesces per-connection protocol timers onto a
// tick-granular wheel — the constant-rate alternative to one sim event
// per pending timeout.
func WithTimerWheel(tick Time) ClusterOption {
	return func(c *ClusterConfig) { c.Core.TimerWheelTick = tick }
}

// WithQoS enables multi-tenant quality of service with one entry per
// traffic class (class 0 is the default class): data-frame service is
// scheduled by deficit-weighted fair queueing across classes, and each
// class's token-bucket rate limit and submission quotas bound how much
// of an endpoint one tenant can occupy (over-quota Posts fail fast with
// ErrThrottled; Do blocks for room). Tag connections with Conn.SetClass
// or service stubs with WithTenantClass. Implies WithSchedQueue — the
// fair queues extend the FIFO scheduler.
func WithQoS(classes ...QoSClass) ClusterOption {
	return func(c *ClusterConfig) {
		c.Core.QoS = classes
		c.Core.SchedQueue = true
	}
}

// WithSeed overrides the simulation seed.
func WithSeed(seed int64) ClusterOption {
	return func(c *ClusterConfig) { c.Seed = seed }
}

// NewCluster builds a cluster from a configuration, with functional
// options applied on top:
//
//	cl := multiedge.NewCluster(multiedge.OneLink1G(8),
//	    multiedge.WithReconnect(0), multiedge.WithSchedQueue())
func NewCluster(cfg ClusterConfig, opts ...ClusterOption) *Cluster {
	for _, opt := range opts {
		opt(&cfg)
	}
	return cluster.New(cfg)
}

// The paper's four evaluation configurations (IPPS'07 §3), plus the §6
// future-work setups.
var (
	// OneLink1G: one 1-GBit/s link per node, one switch.
	OneLink1G = cluster.OneLink1G
	// TwoLink1G: two 1-GBit/s links, strictly ordered delivery.
	TwoLink1G = cluster.TwoLink1G
	// TwoLinkUnordered1G: two 1-GBit/s links, out-of-order delivery.
	TwoLinkUnordered1G = cluster.TwoLinkUnordered1G
	// OneLink10G: one 10-GBit/s link per node.
	OneLink10G = cluster.OneLink10G
	// OneLink10GOffload: §6(b) hybrid with NIC protocol offload.
	OneLink10GOffload = cluster.OneLink10GOffload
	// TreeOneLink1G: §6(a) two-level multi-switch fabric.
	TreeOneLink1G = cluster.TreeOneLink1G
	// HybridRails: heterogeneous 1-GbE + 10-GbE rails with adaptive
	// (least-backlog) striping.
	HybridRails = cluster.HybridRails
)

// Physical substrate models (for custom topologies).
type (
	// LinkParams describes a link technology.
	LinkParams = phys.LinkParams
	// NICParams configures a NIC model.
	NICParams = phys.NICParams
	// SwitchParams configures a switch model.
	SwitchParams = phys.SwitchParams
	// HostCosts is the calibrated host-side cost table.
	HostCosts = hostmodel.Costs
)

var (
	// Gigabit returns 1-GBit/s link parameters.
	Gigabit = phys.Gigabit
	// TenGigabit returns 10-GBit/s link parameters.
	TenGigabit = phys.TenGigabit
	// DefaultHostCosts returns the calibrated host cost table.
	DefaultHostCosts = hostmodel.Default
)

// Shared memory (GeNIMA-style DSM over MultiEdge).
type (
	// DSM is a cluster-wide shared address space.
	DSM = dsm.System
	// DSMInstance is one node's DSM runtime.
	DSMInstance = dsm.Instance
	// DSMConfig sizes the shared region.
	DSMConfig = dsm.Config
	// Breakdown is the per-node execution-time decomposition.
	Breakdown = dsm.Breakdown
)

// PageSize is the DSM sharing granularity.
const PageSize = dsm.PageSize

// NewDSM builds the shared address space over an established full mesh
// (see Cluster.FullMesh).
func NewDSM(cl *Cluster, conns [][]*Conn, cfg DSMConfig) *DSM {
	return dsm.New(cl, conns, cfg)
}

// Message passing (MPI-style, over the same transport).
type (
	// Comm is a per-node communicator with Send/Recv and collectives.
	Comm = msg.Comm
)

// AnyTag matches any message tag in Comm.Recv.
const AnyTag = msg.AnyTag

// NewComms builds one communicator per node over an established full
// mesh. A communicator owns its endpoint's notification stream; do not
// combine it with a DSM on the same endpoints.
func NewComms(cl *Cluster, conns [][]*Conn) []*Comm {
	return msg.New(cl, conns)
}

// Block storage (one-sided RDMA volumes, over the same transport).
type (
	// Volume is a block device served passively from one node's memory.
	Volume = blk.Volume
	// BlkClient is one node's handle on a Volume.
	BlkClient = blk.Client
	// Mirror is client-side RAID-1 over two volumes on different
	// hosts, with deadline-based failover and online rebuild.
	Mirror = blk.Mirror
)

// OpenMirror pairs two volume clients (on different hosts) into a
// mirror.
func OpenMirror(a, b *BlkClient) *Mirror { return blk.OpenMirror(a, b) }

// NewVolume carves a volume (blocks x blockSize bytes plus maxClients
// commit records) out of the host node's endpoint memory.
func NewVolume(cl *Cluster, host, blocks, blockSize, maxClients int) *Volume {
	return blk.NewVolume(cl, host, blocks, blockSize, maxClients)
}

// OpenVolume attaches node to a volume over an established connection
// to its host; id indexes the client's commit record (unique per
// client).
func OpenVolume(cl *Cluster, v *Volume, node int, conn *Conn, id int) *BlkClient {
	return blk.Open(cl, v, node, conn, id)
}

// Service layer: named services, replicated backends, pluggable load
// balancing and relay routing (see the quick start above).
type (
	// Registry maps service names to replica sets — the naming plane
	// Serve and Connect share.
	Registry = svc.Registry
	// Service is one named, replicated service.
	Service = svc.Service
	// ServiceBackend is one replica: an endpoint plus the base address
	// of the service region in its memory.
	ServiceBackend = svc.Backend
	// ServiceClient is a client stub: it resolves a name and issues
	// Op-shaped Calls across the backends.
	ServiceClient = svc.Client
	// ServiceStats counts one stub's calls, failovers, journaled
	// replays and condemnations.
	ServiceStats = svc.ClientStats
	// ServiceOptions configures a stub (Connect's With... options fill
	// one; use svc.Connect directly to pass the struct wholesale).
	ServiceOptions = svc.Options
	// Balancer picks a backend for each call. Stateful; one instance
	// per stub.
	Balancer = svc.Balancer
	// Relay forwards calls for clients whose direct path to a backend
	// is broken (StartRelay).
	Relay = svc.Relay
	// RelayStats counts a relay's forwarded and failed calls.
	RelayStats = svc.RelayStats
)

// DefaultFailoverBudget is the per-call deadline when no
// WithFailoverBudget option is given.
const DefaultFailoverBudget = svc.DefaultFailoverBudget

// Service-layer errors.
var (
	// ErrUnknownService: the registry has no service under that name.
	ErrUnknownService = svc.ErrUnknownService
	// ErrNoBackends: every replica is condemned or terminally failed.
	ErrNoBackends = svc.ErrNoBackends
	// ErrBadCall: the operation does not fit the service region.
	ErrBadCall = svc.ErrBadCall
	// ErrNoRelay: relay fallback requested without StartRelay.
	ErrNoRelay = svc.ErrNoRelay
	// ErrRelayFailed: the relay path itself broke.
	ErrRelayFailed = svc.ErrRelayFailed
)

// Registry construction and balancing policies.
var (
	// NewRegistry creates an empty service registry.
	NewRegistry = svc.NewRegistry
	// NewRoundRobin cycles through the eligible backends.
	NewRoundRobin = svc.NewRoundRobin
	// NewRandom picks uniformly with a seeded deterministic generator.
	NewRandom = svc.NewRandom
	// NewAffinity pins each caller token to one backend (sticky across
	// reconnects) and delegates unbound tokens to the fallback policy.
	NewAffinity = svc.NewAffinity
)

// StartRelay turns ep into the registry's relay: a forwarding node with
// slots per-client mailboxes that replays calls toward backends the
// caller cannot reach directly. budget 0 means DefaultFailoverBudget.
func StartRelay(ep *Endpoint, reg *Registry, slots int, budget Time) *Relay {
	return svc.StartRelay(ep, reg, slots, budget)
}

// ConnectOption configures a service stub in Connect.
type ConnectOption func(*ServiceOptions)

// WithBalancer selects the load-balancing policy (default round-robin).
func WithBalancer(b Balancer) ConnectOption {
	return func(o *ServiceOptions) { o.Balancer = b }
}

// WithFailoverBudget bounds how long a call may sit on a broken or
// stalled path before the stub fails over; negative waits forever.
func WithFailoverBudget(d Time) ConnectOption {
	return func(o *ServiceOptions) { o.FailoverBudget = d }
}

// WithMaxAttempts caps how many backends one call may try (default:
// the replica count).
func WithMaxAttempts(n int) ConnectOption {
	return func(o *ServiceOptions) { o.MaxAttempts = n }
}

// WithRelayFallback forwards a call through the registry's relay before
// condemning a backend the client cannot reach directly.
func WithRelayFallback() ConnectOption {
	return func(o *ServiceOptions) { o.UseRelay = true }
}

// WithCallLinks sets the per-connection link count the stub dials with
// (0 = all rails).
func WithCallLinks(n int) ConnectOption {
	return func(o *ServiceOptions) { o.Links = n }
}

// WithTenantClass tags every connection and operation the stub issues
// with a QoS traffic class (see WithQoS; 0 is the default class).
func WithTenantClass(cls int) ConnectOption {
	return func(o *ServiceOptions) { o.Class = cls }
}

// Serve registers a named service with one replica per backend
// endpoint, allocating a size-byte region in each.
func Serve(reg *Registry, name string, size int, backends []*Endpoint, opts ...ServeOption) (*Service, error) {
	s, err := reg.Register(name, size, backends...)
	if err != nil {
		return nil, err
	}
	for _, opt := range opts {
		if err := opt(reg, s); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// ServeOption extends a Serve registration (relay placement, future
// per-service policy).
type ServeOption func(*Registry, *Service) error

// WithRelay starts a relay on ep during Serve when the registry does
// not already have one; slots bounds concurrent relayed callers.
func WithRelay(ep *Endpoint, slots int) ServeOption {
	return func(reg *Registry, _ *Service) error {
		if _, _, ok := reg.Relay(); ok {
			return nil
		}
		svc.StartRelay(ep, reg, slots, 0)
		return nil
	}
}

// Connect resolves name in the registry and returns a stub issuing
// calls from ep across the service's replicas.
func Connect(ep *Endpoint, reg *Registry, name string, opts ...ConnectOption) (*ServiceClient, error) {
	var o ServiceOptions
	for _, opt := range opts {
		opt(&o)
	}
	return svc.Connect(ep, reg, name, o)
}
