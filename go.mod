module multiedge

go 1.22
