// Command medapps runs the paper's application experiments: the eight
// SPLASH-2 programs over GeNIMA-style shared memory on the four
// MultiEdge cluster configurations (IPPS'07 Figures 3-6 and Table 1).
//
// Usage:
//
//	medapps -table1             # sequential times and footprints
//	medapps -fig 3              # 1L-1G speedups and breakdowns (1..16 nodes)
//	medapps -fig 4              # 1L-10G (1..4 nodes)
//	medapps -fig 5              # 2L-1G, strictly ordered (16 nodes)
//	medapps -fig 6              # 2Lu-1G, out-of-order delivery (16 nodes)
//	medapps -one FFT -nodes 16 -config 1L-1G
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"multiedge/internal/apps"
	"multiedge/internal/bench"
	"multiedge/internal/cluster"
)

func main() {
	fig := flag.String("fig", "", "application figure to regenerate: 3, 4, 5 or 6")
	table1 := flag.Bool("table1", false, "measure Table 1 (sequential times, footprints)")
	scaling := flag.Bool("scaling", false, "run the 8/16/32-node flat-vs-tree scaling experiment")
	one := flag.String("one", "", "run a single application")
	nodes := flag.Int("nodes", 16, "node count for -one")
	config := flag.String("config", "1L-1G", "configuration for -one")
	sizeFlag := flag.String("size", "small", "problem scale: test, small or full")
	metrics := flag.Bool("metrics", false, "with -one: collect the unified metrics registry and export it via -obs-out")
	spans := flag.Bool("spans", false, "with -one: record causal operation spans and export a Chrome trace (Perfetto) via -obs-out")
	obsOut := flag.String("obs-out", "", "output path for -metrics/-spans exports (-spans writes Chrome trace JSON here; -metrics writes the JSON snapshot plus a .prom sidecar)")
	flag.Parse()

	obsOn := *metrics || *spans || *obsOut != ""
	if obsOn {
		switch {
		case *one == "":
			fmt.Fprintln(os.Stderr, "medapps: -metrics/-spans/-obs-out only compose with -one")
			os.Exit(2)
		case !*metrics && !*spans:
			fmt.Fprintln(os.Stderr, "medapps: -obs-out needs -metrics and/or -spans")
			os.Exit(2)
		case *obsOut == "":
			fmt.Fprintln(os.Stderr, "medapps: -metrics/-spans need -obs-out PATH")
			os.Exit(2)
		}
	}

	size := apps.SizeSmall
	switch *sizeFlag {
	case "test":
		size = apps.SizeTest
	case "full":
		size = apps.SizeFull
	case "small":
	default:
		fmt.Fprintf(os.Stderr, "medapps: unknown size %q\n", *sizeFlag)
		os.Exit(2)
	}

	switch {
	case *table1:
		fmt.Print(bench.RenderTable1(bench.RunTable1(size)))
	case *scaling:
		fmt.Print(bench.RenderScaling(bench.RunScaling(size)))
	case *fig != "":
		for _, spec := range bench.AppFigures() {
			if spec.Figure != *fig {
				continue
			}
			pts := bench.RunFigure(spec, size)
			fmt.Print(bench.RenderAppFigure(spec, pts))
			return
		}
		fmt.Fprintf(os.Stderr, "medapps: unknown figure %q\n", *fig)
		os.Exit(2)
	case *one != "":
		cfg, ok := configByName(*config, *nodes)
		if !ok {
			fmt.Fprintf(os.Stderr, "medapps: unknown configuration %q\n", *config)
			os.Exit(2)
		}
		cfg.Obs = cluster.ObsOptions{Metrics: *metrics, Spans: *spans}
		res := bench.RunApp(cfg, *one, size)
		bd := res.MeanBreakdown()
		fmt.Printf("%s on %d nodes (%s): %v\n", res.Name, res.Nodes, res.Config, res.Elapsed)
		fmt.Printf("  breakdown: compute %v  data %v  lock %v  barrier %v  overhead %v\n",
			bd.Compute, bd.Data, bd.Lock, bd.Barrier, bd.Overhead)
		fmt.Printf("  dsm: fetches %d  diff ops %d  diff msgs %d  locks %d  barriers %d\n",
			res.DSM.Fetches, res.DSM.DiffOps, res.DSM.DiffMsgs, res.DSM.LockAcquires, res.DSM.Barriers)
		fmt.Printf("  net: ooo %.1f%%  extra %.2f%%  protocol CPU %.1f%%\n",
			res.Net.Proto.OOOFraction()*100, res.Net.Proto.ExtraTrafficFraction()*100,
			res.ProtoCPUFrac*100)
		if obsOn {
			files, err := res.Obs.WriteFiles(*obsOut, *metrics, *spans)
			if err != nil {
				fmt.Fprintf(os.Stderr, "medapps: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("  obs: wrote %s\n", strings.Join(files, " "))
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func configByName(name string, nodes int) (cluster.Config, bool) {
	switch name {
	case "1L-1G":
		return cluster.OneLink1G(nodes), true
	case "2L-1G":
		return cluster.TwoLink1G(nodes), true
	case "2Lu-1G":
		return cluster.TwoLinkUnordered1G(nodes), true
	case "1L-10G":
		return cluster.OneLink10G(nodes), true
	}
	return cluster.Config{}, false
}
