// Command medapps runs the paper's application experiments: the eight
// SPLASH-2 programs over GeNIMA-style shared memory on the four
// MultiEdge cluster configurations (IPPS'07 Figures 3-6 and Table 1).
//
// Usage:
//
//	medapps -table1             # sequential times and footprints
//	medapps -fig 3              # 1L-1G speedups and breakdowns (1..16 nodes)
//	medapps -fig 4              # 1L-10G (1..4 nodes)
//	medapps -fig 5              # 2L-1G, strictly ordered (16 nodes)
//	medapps -fig 6              # 2Lu-1G, out-of-order delivery (16 nodes)
//	medapps -one FFT -nodes 16 -config 1L-1G
package main

import (
	"flag"
	"fmt"
	"os"

	"multiedge/internal/apps"
	"multiedge/internal/bench"
	"multiedge/internal/cluster"
)

func main() {
	fig := flag.String("fig", "", "application figure to regenerate: 3, 4, 5 or 6")
	table1 := flag.Bool("table1", false, "measure Table 1 (sequential times, footprints)")
	scaling := flag.Bool("scaling", false, "run the 8/16/32-node flat-vs-tree scaling experiment")
	one := flag.String("one", "", "run a single application")
	nodes := flag.Int("nodes", 16, "node count for -one")
	config := flag.String("config", "1L-1G", "configuration for -one")
	sizeFlag := flag.String("size", "small", "problem scale: test, small or full")
	flag.Parse()

	size := apps.SizeSmall
	switch *sizeFlag {
	case "test":
		size = apps.SizeTest
	case "full":
		size = apps.SizeFull
	case "small":
	default:
		fmt.Fprintf(os.Stderr, "medapps: unknown size %q\n", *sizeFlag)
		os.Exit(2)
	}

	switch {
	case *table1:
		fmt.Print(bench.RenderTable1(bench.RunTable1(size)))
	case *scaling:
		fmt.Print(bench.RenderScaling(bench.RunScaling(size)))
	case *fig != "":
		for _, spec := range bench.AppFigures() {
			if spec.Figure != *fig {
				continue
			}
			pts := bench.RunFigure(spec, size)
			fmt.Print(bench.RenderAppFigure(spec, pts))
			return
		}
		fmt.Fprintf(os.Stderr, "medapps: unknown figure %q\n", *fig)
		os.Exit(2)
	case *one != "":
		cfg, ok := configByName(*config, *nodes)
		if !ok {
			fmt.Fprintf(os.Stderr, "medapps: unknown configuration %q\n", *config)
			os.Exit(2)
		}
		res := bench.RunApp(cfg, *one, size)
		bd := res.MeanBreakdown()
		fmt.Printf("%s on %d nodes (%s): %v\n", res.Name, res.Nodes, res.Config, res.Elapsed)
		fmt.Printf("  breakdown: compute %v  data %v  lock %v  barrier %v  overhead %v\n",
			bd.Compute, bd.Data, bd.Lock, bd.Barrier, bd.Overhead)
		fmt.Printf("  dsm: fetches %d  diff ops %d  diff msgs %d  locks %d  barriers %d\n",
			res.DSM.Fetches, res.DSM.DiffOps, res.DSM.DiffMsgs, res.DSM.LockAcquires, res.DSM.Barriers)
		fmt.Printf("  net: ooo %.1f%%  extra %.2f%%  protocol CPU %.1f%%\n",
			res.Net.Proto.OOOFraction()*100, res.Net.Proto.ExtraTrafficFraction()*100,
			res.ProtoCPUFrac*100)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func configByName(name string, nodes int) (cluster.Config, bool) {
	switch name {
	case "1L-1G":
		return cluster.OneLink1G(nodes), true
	case "2L-1G":
		return cluster.TwoLink1G(nodes), true
	case "2Lu-1G":
		return cluster.TwoLinkUnordered1G(nodes), true
	case "1L-10G":
		return cluster.OneLink10G(nodes), true
	}
	return cluster.Config{}, false
}
