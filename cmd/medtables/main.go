// Command medtables regenerates every table and figure of the paper's
// evaluation in one run: Table 1, Figure 2 (a, b, c), the §4 network
// statistics, Figures 3-6, the design ablations, the future-work
// experiments and the transport/messaging/DSM benchmarks. Output goes
// to stdout; with -out DIR each artifact is also written to its own
// file; with -check DIR each regenerated artifact is compared
// byte-for-byte against the committed one (the simulation is
// deterministic, so any difference is a regression).
//
// A full run simulates tens of cluster configurations and takes a few
// minutes; -quick trims the sweeps.
//
// The separate -bench-compare mode is the perf-trajectory ratchet:
//
//	medtables -bench-compare results/bench/BENCH_fanin.json /tmp/BENCH_fanin.json
//
// diffs a freshly measured BENCH_*.json document (medbench -bench-out)
// against the committed baseline and exits 1 if any row's ops/s dropped
// more than 10% or p99 latency grew more than 20%.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"multiedge/internal/apps"
	"multiedge/internal/bench"
)

func main() {
	out := flag.String("out", "", "directory to also write per-artifact files to")
	check := flag.String("check", "", "directory of committed artifacts to verify against")
	quick := flag.Bool("quick", false, "trim sweeps (fewer sizes, test-scale apps)")
	benchCompare := flag.Bool("bench-compare", false, "compare two BENCH_*.json documents: -bench-compare BASELINE CURRENT; exit 1 on regression")
	flag.Parse()

	if *benchCompare {
		args := flag.Args()
		if len(args) != 2 {
			fmt.Fprintln(os.Stderr, "medtables: -bench-compare needs exactly two arguments: BASELINE CURRENT")
			os.Exit(2)
		}
		base, err := bench.ReadBenchFile(args[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, "medtables:", err)
			os.Exit(2)
		}
		cur, err := bench.ReadBenchFile(args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "medtables:", err)
			os.Exit(2)
		}
		fails := bench.CompareBench(base, cur)
		for _, f := range fails {
			fmt.Printf("REGRESSION %s\n", f)
		}
		if len(fails) > 0 {
			fmt.Printf("medtables: %d bench regressions vs %s\n", len(fails), args[0])
			os.Exit(1)
		}
		fmt.Printf("medtables: bench ratchet holds (%d baseline rows vs %s)\n", len(base.Rows), args[0])
		return
	}

	sizes := bench.Sizes
	appSize := apps.SizeSmall
	if *quick {
		sizes = []int{4, 4096, 262144, 1048576}
		appSize = apps.SizeTest
	}

	failures := 0
	emit := func(name, content string) {
		if *check != "" {
			want, err := os.ReadFile(filepath.Join(*check, name+".txt"))
			if err != nil {
				fmt.Printf("CHECK %-12s MISSING (%v)\n", name, err)
				failures++
			} else if string(want) != content {
				fmt.Printf("CHECK %-12s DIFFERS from committed artifact\n", name)
				failures++
			} else {
				fmt.Printf("CHECK %-12s ok\n", name)
			}
			return
		}
		fmt.Printf("==== %s ====\n%s\n", name, content)
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "medtables:", err)
				os.Exit(1)
			}
			path := filepath.Join(*out, name+".txt")
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "medtables:", err)
				os.Exit(1)
			}
		}
	}

	emit("table1", bench.RenderTable1(bench.RunTable1(appSize)))
	emit("fig2a", bench.RenderFig2("a", sizes))
	emit("fig2b", bench.RenderFig2("b", sizes))
	emit("fig2c", bench.RenderFig2("c", sizes))
	emit("netstats", bench.RenderNetStats(262144))
	for _, spec := range bench.AppFigures() {
		pts := bench.RunFigure(spec, appSize)
		emit("fig"+spec.Figure, bench.RenderAppFigure(spec, pts))
	}
	emit("ablations", bench.RenderAblation(262144))
	emit("messaging", bench.RenderMessaging())
	emit("dsmprims", bench.RenderDSM())
	emit("tcpcompare", bench.RenderTransportComparison())
	emit("blockstore", bench.RenderBlockStore(300))
	emit("latency", bench.RenderLatencyDist(2000))
	if !*quick {
		emit("scaling", bench.RenderScaling(bench.RunScaling(appSize)))
	}
	if *check != "" {
		if failures > 0 {
			fmt.Printf("medtables: %d artifacts differ\n", failures)
			os.Exit(1)
		}
		fmt.Println("medtables: all artifacts reproduce byte-identically")
	}
}
