// Command medbench runs the MultiEdge micro-benchmarks of IPPS'07
// Figure 2 (ping-pong, one-way, two-way over the four cluster
// configurations), the §4 network-level statistics, and the design
// ablations.
//
// Usage:
//
//	medbench -fig 2a        # latency panel
//	medbench -fig 2b        # throughput panel
//	medbench -fig 2c        # CPU utilization panel
//	medbench -netstats      # out-of-order / extra-traffic statistics
//	medbench -ablate        # striping, ARQ, window and delayed-ack sweeps
//	medbench -smallops      # eager vs submission-queue small-op rate
//	medbench -chaos         # randomized fault-injection soaks, per-seed report
//	medbench -one ping-pong -config 1L-10G -size 65536
//	medbench -one ping-pong -spans -obs-out /tmp/spans.json
//	medbench -fanin -metrics -obs-out /tmp/fanin.json -bench-out /tmp
//	medbench -crashloop -health-every-ms 50 -obs-out /tmp/health.json
//	medbench -serve -serve-clients 1024 -bench-out /tmp
//	medbench -incast -bench-out /tmp
//
// Instrumentation composition matrix:
//
//	flag            -one  -fanin  -crashloop  -serve  -chaos  -smallops  others
//	-trace          yes   no      no          no      no      no         no
//	-metrics        yes   yes     yes         yes     yes     no         no
//	-spans          yes   yes     yes         yes     yes     no         no
//	-health-every-ms yes  yes     yes         yes     yes     no         no
//	-bench-out      yes   yes     yes         yes     yes     yes        no
//
// -trace and -metrics/-spans stay mutually exclusive (pick one
// instrumentation). -metrics/-spans/-health-every-ms need -obs-out
// PATH; -spans writes Chrome trace JSON there, -metrics adds a JSON
// snapshot plus a .prom sidecar, -health-every-ms adds a
// .health.json timeline. Sweeps (-fanin/-crashloop) export the last
// run's registry. -bench-out writes a schema-versioned
// BENCH_<mode>.json perf-trajectory document (see medtables
// -bench-compare); pass a directory for the default file name or a
// .json path to name it exactly. The flight recorder needs no flag: it
// is always on in the stress harnesses (-fanin/-crashloop/-chaos), and
// a failed gate or invariant prints its post-mortem timeline and, with
// -obs-out, writes <obs-out>.postmortem.json.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"

	"multiedge/internal/bench"
	"multiedge/internal/chaos"
	"multiedge/internal/cluster"
	"multiedge/internal/obs"
	"multiedge/internal/sim"
)

func main() {
	fig := flag.String("fig", "", "figure panel to regenerate: 2a, 2b or 2c")
	netstats := flag.Bool("netstats", false, "print network-level statistics")
	ablate := flag.Bool("ablate", false, "run design ablations")
	msgFlag := flag.Bool("msg", false, "run the message-passing layer benchmarks")
	dsmFlag := flag.Bool("dsm", false, "run the DSM primitive benchmarks")
	tcpFlag := flag.Bool("tcp", false, "compare MultiEdge against the TCP-like baseline")
	blkFlag := flag.Bool("blk", false, "run the block-storage domain benchmarks")
	latFlag := flag.Bool("lat", false, "print round-trip latency percentile tables")
	smallops := flag.Bool("smallops", false, "compare eager vs submission-queue small-operation throughput")
	chaosFlag := flag.Bool("chaos", false, "run randomized chaos soaks across the cluster configurations")
	chaosSeeds := flag.Int("chaos-seeds", 4, "seeds per configuration for -chaos")
	faninFlag := flag.Bool("fanin", false, "run the many-connection fan-in scaling sweep (exits 1 on data corruption or post-close leaks)")
	faninConns := flag.String("fanin-conns", "1,16,64,256,512", "comma-separated connection counts for -fanin")
	faninOps := flag.Int("fanin-ops", 24, "closed-loop operations per connection for -fanin")
	faninChaos := flag.Bool("fanin-chaos", false, "with -fanin: inject loss/duplication bursts mid-run")
	serveFlag := flag.Bool("serve", false, "run the replicated-service closed-loop bench: baseline plus a chaos backend-kill run (exits 1 on corruption, leaks, or unbounded failover tail)")
	serveClients := flag.Int("serve-clients", 1024, "simulated client sessions for -serve")
	serveOps := flag.Int("serve-ops", 4, "closed-loop writes per session for -serve")
	serveSize := flag.Int("serve-size", 2048, "bytes per operation for -serve")
	serveReplicas := flag.Int("serve-replicas", 3, "backend replicas for -serve")
	incastFlag := flag.Bool("incast", false, "run the incast-collapse bench: 64->1 burst with congestion control off then on, plus the parking-lot adaptive-striping comparison (exits 1 if CC misses the fairness/goodput gates or adaptive striping fails to beat round-robin)")
	incastSenders := flag.Int("incast-senders", 64, "concurrent senders for -incast")
	noisyFlag := flag.Bool("noisy", false, "run the noisy-neighbor QoS isolation bench: victim alone, victim+flood with QoS off, victim+flood with QoS on (exits 1 if the QoS-on victim p99 exceeds 3x its isolated baseline)")
	noisyOps := flag.Int("noisy-ops", 400, "closed-loop victim operations per phase for -noisy")
	noisyChaos := flag.Bool("noisy-chaos", false, "with -noisy: inject a loss burst mid-run")
	crashloop := flag.Bool("crashloop", false, "run the crash-restart recovery sweep (exits 1 on corruption, unrecovered cycles, or post-close leaks)")
	crashCycles := flag.Int("crashloop-cycles", 5, "crash-restart cycles per setting for -crashloop")
	crashDownMs := flag.Int("crashloop-down-ms", 150, "node downtime per cycle in milliseconds for -crashloop")
	one := flag.String("one", "", "run a single micro-benchmark: ping-pong, one-way or two-way")
	config := flag.String("config", "1L-1G", "configuration for -one: 1L-1G, 2L-1G, 2Lu-1G or 1L-10G")
	size := flag.Int("size", 65536, "transfer size in bytes for -one / -netstats / -ablate")
	quick := flag.Bool("quick", false, "sweep fewer sizes")
	doTrace := flag.Bool("trace", false, "only with -one (not -netstats/-ablate/-fig): print a frame-level trace summary and timeline; mutually exclusive with -metrics/-spans")
	metrics := flag.Bool("metrics", false, "with -one/-fanin/-crashloop/-chaos: collect the unified metrics registry and export it via -obs-out")
	spans := flag.Bool("spans", false, "with -one/-fanin/-crashloop/-chaos: record causal operation spans and export a Chrome trace (Perfetto) via -obs-out")
	obsOut := flag.String("obs-out", "", "output path for -metrics/-spans/-health-every-ms exports (-spans writes Chrome trace JSON here; -metrics writes the JSON snapshot plus a .prom sidecar; -health-every-ms writes a .health.json timeline)")
	healthEveryMs := flag.Int("health-every-ms", 0, "with -one/-fanin/-crashloop/-chaos: sample per-endpoint health snapshots every N virtual milliseconds into <obs-out>.health.json")
	benchOut := flag.String("bench-out", "", "with -one/-smallops/-fanin/-crashloop/-chaos: write a BENCH_<mode>.json perf-trajectory document (directory or .json path)")
	flag.Parse()

	healthEvery := sim.Time(*healthEveryMs) * sim.Millisecond
	obsOn := *metrics || *spans || *obsOut != "" || healthEvery > 0
	obsComposes := *one != "" || *faninFlag || *crashloop || *chaosFlag || *serveFlag || *noisyFlag || *incastFlag
	if *doTrace && *one == "" {
		fmt.Fprintln(os.Stderr, "medbench: -trace only composes with -one; it does not apply to -netstats, -ablate or the figure sweeps")
		os.Exit(2)
	}
	if obsOn {
		switch {
		case !obsComposes:
			fmt.Fprintln(os.Stderr, "medbench: -metrics/-spans/-health-every-ms/-obs-out only compose with -one, -fanin, -crashloop, -serve, -noisy, -incast or -chaos")
			os.Exit(2)
		case *doTrace:
			fmt.Fprintln(os.Stderr, "medbench: -trace and -metrics/-spans are mutually exclusive; pick one instrumentation")
			os.Exit(2)
		case !*metrics && !*spans && healthEvery == 0:
			fmt.Fprintln(os.Stderr, "medbench: -obs-out needs -metrics, -spans and/or -health-every-ms")
			os.Exit(2)
		case *obsOut == "":
			fmt.Fprintln(os.Stderr, "medbench: -metrics/-spans/-health-every-ms need -obs-out PATH")
			os.Exit(2)
		}
	}
	if *benchOut != "" && !(*one != "" || *smallops || *faninFlag || *crashloop || *chaosFlag || *serveFlag || *noisyFlag || *incastFlag) {
		fmt.Fprintln(os.Stderr, "medbench: -bench-out only composes with -one, -smallops, -fanin, -crashloop, -serve, -noisy, -incast or -chaos")
		os.Exit(2)
	}

	obsOpts := cluster.ObsOptions{Metrics: *metrics, Spans: *spans, HealthEvery: healthEvery}

	// exportObs writes the registry (and health timeline) per -obs-out.
	exportObs := func(r *obs.Registry) {
		if !obsOn || r == nil {
			return
		}
		var files []string
		if *metrics || *spans {
			fs, err := r.WriteFiles(*obsOut, *metrics, *spans)
			if err != nil {
				fmt.Fprintf(os.Stderr, "medbench: %v\n", err)
				os.Exit(1)
			}
			files = fs
		}
		if healthEvery > 0 {
			hp := *obsOut + ".health.json"
			if !*metrics && !*spans {
				hp = *obsOut
			}
			if err := os.WriteFile(hp, obs.HealthTimelineJSON(r.HealthLogs()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "medbench: %v\n", err)
				os.Exit(1)
			}
			files = append(files, hp)
		}
		if len(files) > 0 {
			fmt.Printf("  obs: wrote %s\n", strings.Join(files, " "))
		}
	}
	// exportDump writes a post-mortem (gate/invariant failure) next to
	// the obs exports, if a destination exists.
	exportDump := func(d *obs.PostMortem) {
		if d == nil || *obsOut == "" {
			return
		}
		p := *obsOut + ".postmortem.json"
		if err := os.WriteFile(p, d.JSON(), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "medbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  obs: wrote %s\n", p)
	}
	// writeBench serializes the perf-trajectory document per -bench-out.
	writeBench := func(d *bench.BenchDoc) {
		if *benchOut == "" {
			return
		}
		path := *benchOut
		if st, err := os.Stat(path); (err == nil && st.IsDir()) || strings.HasSuffix(path, string(os.PathSeparator)) {
			path = filepath.Join(path, "BENCH_"+d.Mode+".json")
		} else if !strings.HasSuffix(path, ".json") {
			path += ".json"
		}
		if err := d.WriteFile(path); err != nil {
			fmt.Fprintf(os.Stderr, "medbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  bench: wrote %s\n", path)
	}
	// allocsPerOp stamps the advisory wall-side allocation figure on
	// every row: allocations during the run divided by total ops.
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	stampAllocs := func(d *bench.BenchDoc) *bench.BenchDoc {
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		total := 0
		for _, r := range d.Rows {
			total += r.Ops
		}
		if total > 0 {
			apo := float64(after.Mallocs-memBefore.Mallocs) / float64(total)
			for i := range d.Rows {
				d.Rows[i].AllocsPerOp = apo
			}
		}
		return d
	}

	sizes := bench.Sizes
	if *quick {
		sizes = []int{4, 1024, 16384, 262144, 1048576}
	}
	switch {
	case *fig == "2a" || *fig == "2b" || *fig == "2c":
		fmt.Print(bench.RenderFig2((*fig)[1:], sizes))
	case *netstats:
		fmt.Print(bench.RenderNetStats(*size))
	case *msgFlag:
		fmt.Print(bench.RenderMessaging())
	case *dsmFlag:
		fmt.Print(bench.RenderDSM())
	case *tcpFlag:
		fmt.Print(bench.RenderTransportComparison())
	case *blkFlag:
		ios := 300
		if *quick {
			ios = 100
		}
		fmt.Print(bench.RenderBlockStore(ios))
	case *latFlag:
		count := 2000
		if *quick {
			count = 400
		}
		fmt.Print(bench.RenderLatencyDist(count))
	case *smallops:
		count := 16384
		if *quick {
			count = 2048
		}
		out, results := bench.RenderSmallOps(count)
		fmt.Print(out)
		doc := bench.NewBenchDoc("smallops")
		for _, r := range results {
			doc.Rows = append(doc.Rows, r.BenchRow())
		}
		writeBench(stampAllocs(doc))
	case *faninFlag:
		counts, err := parseConns(*faninConns)
		if err != nil {
			fmt.Fprintf(os.Stderr, "medbench: -fanin-conns: %v\n", err)
			os.Exit(2)
		}
		if *quick {
			max := 64
			trimmed := counts[:0]
			for _, n := range counts {
				if n <= max {
					trimmed = append(trimmed, n)
				}
			}
			counts = trimmed
		}
		out, ok, results := bench.RenderFanin(counts, *faninOps, 256, *faninChaos, obsOpts)
		fmt.Print(out)
		doc := bench.NewBenchDoc("fanin")
		for _, r := range results {
			doc.Rows = append(doc.Rows, r.BenchRow())
		}
		writeBench(stampAllocs(doc))
		if len(results) > 0 {
			exportObs(results[len(results)-1].Obs)
			for _, r := range results {
				exportDump(r.Dump)
			}
		}
		if !ok {
			os.Exit(1)
		}
	case *serveFlag:
		clients := *serveClients
		if *quick {
			clients = 256
		}
		out, ok, results := bench.RenderServe(clients, *serveOps, *serveSize, *serveReplicas, obsOpts)
		fmt.Print(out)
		doc := bench.NewBenchDoc("serve")
		for _, r := range results {
			doc.Rows = append(doc.Rows, r.BenchRow())
		}
		writeBench(stampAllocs(doc))
		if len(results) > 0 {
			exportObs(results[len(results)-1].Obs)
			for _, r := range results {
				exportDump(r.Dump)
			}
		}
		if !ok {
			os.Exit(1)
		}
	case *incastFlag:
		senders := *incastSenders
		dur := 80 * sim.Millisecond
		if *quick {
			senders = 32
			dur = 40 * sim.Millisecond
		}
		out, ok, incasts, lots := bench.RenderIncast(senders, 8<<10, dur, obsOpts)
		fmt.Print(out)
		doc := bench.NewBenchDoc("incast")
		for _, r := range incasts {
			doc.Rows = append(doc.Rows, r.BenchRow())
		}
		for _, r := range lots {
			doc.Rows = append(doc.Rows, r.BenchRow())
		}
		writeBench(stampAllocs(doc))
		for _, r := range incasts {
			if r.Obs != nil {
				exportObs(r.Obs)
			}
			exportDump(r.Dump)
		}
		if !ok {
			os.Exit(1)
		}
	case *noisyFlag:
		ops := *noisyOps
		if *quick {
			ops = 150
		}
		out, ok, results := bench.RenderNoisy(ops, *noisyChaos, obsOpts)
		fmt.Print(out)
		doc := bench.NewBenchDoc("noisy")
		for _, r := range results {
			doc.Rows = append(doc.Rows, r.BenchRow())
		}
		writeBench(stampAllocs(doc))
		if len(results) > 0 {
			exportObs(results[len(results)-1].Obs)
			for _, r := range results {
				exportDump(r.Dump)
			}
		}
		if !ok {
			os.Exit(1)
		}
	case *crashloop:
		cycles := *crashCycles
		if *quick {
			cycles = 2
		}
		out, ok, results := bench.RenderCrashloop(cycles, sim.Time(*crashDownMs)*sim.Millisecond, 256<<10, obsOpts)
		fmt.Print(out)
		doc := bench.NewBenchDoc("crashloop")
		for _, r := range results {
			doc.Rows = append(doc.Rows, r.BenchRow())
		}
		writeBench(stampAllocs(doc))
		if len(results) > 0 {
			exportObs(results[len(results)-1].Obs)
			for _, r := range results {
				exportDump(r.Dump)
			}
		}
		if !ok {
			os.Exit(1)
		}
	case *chaosFlag:
		transfers := 30
		if *quick {
			transfers = 10
		}
		// Per-tick samplers over a 60 s virtual horizon would record
		// hundreds of thousands of points per series; gather-time
		// collectors and health sampling remain.
		chaosObs := obsOpts
		if chaosObs.SampleEvery == 0 {
			chaosObs.SampleEvery = -1
		}
		out, rows, art := renderChaos(*chaosSeeds, transfers, chaosObs)
		fmt.Print(out)
		doc := bench.NewBenchDoc("chaos")
		doc.Rows = rows
		writeBench(stampAllocs(doc))
		if art != nil {
			exportObs(art.Obs)
			exportDump(art.Dump)
		}
	case *ablate:
		fmt.Print(bench.RenderAblation(*size))
	case *one != "":
		cfg, ok := configByName(*config)
		if !ok {
			fmt.Fprintf(os.Stderr, "medbench: unknown configuration %q\n", *config)
			os.Exit(2)
		}
		if *doTrace {
			fmt.Print(bench.RunTracedOneWay(cfg, *size))
			return
		}
		cfg.Obs = obsOpts
		r := bench.RunMicro(*one, cfg, *size)
		fmt.Println(r.String())
		fmt.Printf("  net: ooo %.1f%%  extra %.2f%%  acks %d  nacks %d  retrans %d\n",
			r.Net.Proto.OOOFraction()*100, r.Net.Proto.ExtraTrafficFraction()*100,
			r.Net.Proto.CtrlAcksSent, r.Net.Proto.CtrlNacksSent, r.Net.Proto.Retransmissions)
		exportObs(r.Obs)
		doc := bench.NewBenchDoc("one")
		doc.Rows = append(doc.Rows, r.BenchRow())
		writeBench(doc)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// renderChaos runs the standard flap-heavy randomized soak (24 faults
// in the first 3 s, outages capped at 500 ms, DeadInterval 5 s, adaptive
// RTO on) for `seeds` seeds per configuration and reports each run. It
// returns the per-run bench rows and the observability artifacts: the
// last run's registry plus the first post-mortem dump any violating run
// produced (its timeline is also embedded in the report).
func renderChaos(seeds, transfers int, obsOpts cluster.ObsOptions) (string, []bench.BenchRow, *chaos.Artifacts) {
	var b strings.Builder
	var rows []bench.BenchRow
	var lastArt, dumpArt *chaos.Artifacts
	fmt.Fprintf(&b, "Chaos soak: %d transfers x 32 KiB under 24 randomized faults "+
		"(flap/loss/corrupt/reorder/dup), outages <= 500 ms, DeadInterval 5 s\n\n", transfers)
	fmt.Fprintf(&b, "%-7s %5s  %9s %7s %8s %8s %9s %10s  %s\n",
		"config", "seed", "completed", "dataOK", "retrans", "rtoExp", "dupDrops", "failDrops", "violations")
	for _, cfg := range bench.Configs() {
		for seed := int64(1); seed <= int64(seeds); seed++ {
			soak := cfg
			soak.Core.DeadInterval = 5 * sim.Second
			soak.Core.RTOMax = 100 * sim.Millisecond
			soak.Obs = obsOpts
			res, vs, art := chaos.RunDeep(chaos.Options{
				Config:    soak,
				Seed:      seed,
				Transfers: transfers,
				Bytes:     32 << 10,
				Gap:       100 * sim.Millisecond,
				Horizon:   60 * sim.Second,
				Script: func(r *chaos.Runner) {
					r.Randomize(chaos.RandomizeOptions{
						From:      sim.Millisecond,
						To:        3 * sim.Second,
						Events:    24,
						MaxOutage: 500 * sim.Millisecond,
					})
				},
			})
			lastArt = art
			viol := "none"
			if len(vs) > 0 {
				viol = vs[0].String()
				if len(vs) > 1 {
					viol = fmt.Sprintf("%s (+%d more)", viol, len(vs)-1)
				}
				if art.Dump != nil {
					if dumpArt == nil {
						dumpArt = art
					}
					b.WriteString("\n" + art.Dump.Timeline() + "\n")
				}
			}
			fmt.Fprintf(&b, "%-7s %5d  %5d/%-3d %7v %8d %8d %9d %10d  %s\n",
				cfg.Name, seed, res.Completed, transfers, res.DataOK,
				res.Report.Proto.Retransmissions, res.Report.Proto.RtoExpiries,
				res.Report.Proto.DupFramesDropped, res.Report.LinkFailDrops, viol)
			row := bench.BenchRow{
				Name: fmt.Sprintf("chaos-%s-s%d", cfg.Name, seed),
				Ops:  res.Completed,
				Extra: map[string]float64{
					"violations": float64(len(vs)),
					"retrans":    float64(res.Report.Proto.Retransmissions),
					"rto_exp":    float64(res.Report.Proto.RtoExpiries),
				},
			}
			if res.EndedAt > 0 {
				row.OpsPerSec = float64(res.Completed) / res.EndedAt.Seconds()
				row.GoodputMBs = float64(res.Completed*(32<<10)) / 1e6 / res.EndedAt.Seconds()
			}
			rows = append(rows, row)
		}
	}
	if dumpArt != nil {
		lastArt = dumpArt
	}
	return b.String(), rows, lastArt
}

// parseConns parses the -fanin-conns list.
func parseConns(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad connection count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func configByName(name string) (cluster.Config, bool) {
	for _, cfg := range bench.Configs() {
		if cfg.Name == name {
			return cfg, true
		}
	}
	return cluster.Config{}, false
}
