// Command medbench runs the MultiEdge micro-benchmarks of IPPS'07
// Figure 2 (ping-pong, one-way, two-way over the four cluster
// configurations), the §4 network-level statistics, and the design
// ablations.
//
// Usage:
//
//	medbench -fig 2a        # latency panel
//	medbench -fig 2b        # throughput panel
//	medbench -fig 2c        # CPU utilization panel
//	medbench -netstats      # out-of-order / extra-traffic statistics
//	medbench -ablate        # striping, ARQ, window and delayed-ack sweeps
//	medbench -smallops      # eager vs submission-queue small-op rate
//	medbench -chaos         # randomized fault-injection soaks, per-seed report
//	medbench -one ping-pong -config 1L-10G -size 65536
//	medbench -one ping-pong -spans -obs-out /tmp/spans.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"multiedge/internal/bench"
	"multiedge/internal/chaos"
	"multiedge/internal/cluster"
	"multiedge/internal/sim"
)

func main() {
	fig := flag.String("fig", "", "figure panel to regenerate: 2a, 2b or 2c")
	netstats := flag.Bool("netstats", false, "print network-level statistics")
	ablate := flag.Bool("ablate", false, "run design ablations")
	msgFlag := flag.Bool("msg", false, "run the message-passing layer benchmarks")
	dsmFlag := flag.Bool("dsm", false, "run the DSM primitive benchmarks")
	tcpFlag := flag.Bool("tcp", false, "compare MultiEdge against the TCP-like baseline")
	blkFlag := flag.Bool("blk", false, "run the block-storage domain benchmarks")
	latFlag := flag.Bool("lat", false, "print round-trip latency percentile tables")
	smallops := flag.Bool("smallops", false, "compare eager vs submission-queue small-operation throughput")
	chaosFlag := flag.Bool("chaos", false, "run randomized chaos soaks across the cluster configurations")
	chaosSeeds := flag.Int("chaos-seeds", 4, "seeds per configuration for -chaos")
	faninFlag := flag.Bool("fanin", false, "run the many-connection fan-in scaling sweep (exits 1 on data corruption or post-close leaks)")
	faninConns := flag.String("fanin-conns", "1,16,64,256,512", "comma-separated connection counts for -fanin")
	faninOps := flag.Int("fanin-ops", 24, "closed-loop operations per connection for -fanin")
	faninChaos := flag.Bool("fanin-chaos", false, "with -fanin: inject loss/duplication bursts mid-run")
	crashloop := flag.Bool("crashloop", false, "run the crash-restart recovery sweep (exits 1 on corruption, unrecovered cycles, or post-close leaks)")
	crashCycles := flag.Int("crashloop-cycles", 5, "crash-restart cycles per setting for -crashloop")
	crashDownMs := flag.Int("crashloop-down-ms", 150, "node downtime per cycle in milliseconds for -crashloop")
	one := flag.String("one", "", "run a single micro-benchmark: ping-pong, one-way or two-way")
	config := flag.String("config", "1L-1G", "configuration for -one: 1L-1G, 2L-1G, 2Lu-1G or 1L-10G")
	size := flag.Int("size", 65536, "transfer size in bytes for -one / -netstats / -ablate")
	quick := flag.Bool("quick", false, "sweep fewer sizes")
	doTrace := flag.Bool("trace", false, "only with -one (not -netstats/-ablate/-fig): print a frame-level trace summary and timeline; mutually exclusive with -metrics/-spans")
	metrics := flag.Bool("metrics", false, "with -one: collect the unified metrics registry and export it via -obs-out")
	spans := flag.Bool("spans", false, "with -one: record causal operation spans and export a Chrome trace (Perfetto) via -obs-out")
	obsOut := flag.String("obs-out", "", "output path for -metrics/-spans exports (-spans writes Chrome trace JSON here; -metrics writes the JSON snapshot plus a .prom sidecar)")
	flag.Parse()

	obsOn := *metrics || *spans || *obsOut != ""
	if *doTrace && *one == "" {
		fmt.Fprintln(os.Stderr, "medbench: -trace only composes with -one; it does not apply to -netstats, -ablate or the figure sweeps")
		os.Exit(2)
	}
	if obsOn {
		switch {
		case *one == "":
			fmt.Fprintln(os.Stderr, "medbench: -metrics/-spans/-obs-out only compose with -one")
			os.Exit(2)
		case *doTrace:
			fmt.Fprintln(os.Stderr, "medbench: -trace and -metrics/-spans are mutually exclusive; pick one instrumentation")
			os.Exit(2)
		case !*metrics && !*spans:
			fmt.Fprintln(os.Stderr, "medbench: -obs-out needs -metrics and/or -spans")
			os.Exit(2)
		case *obsOut == "":
			fmt.Fprintln(os.Stderr, "medbench: -metrics/-spans need -obs-out PATH")
			os.Exit(2)
		}
	}

	sizes := bench.Sizes
	if *quick {
		sizes = []int{4, 1024, 16384, 262144, 1048576}
	}
	switch {
	case *fig == "2a" || *fig == "2b" || *fig == "2c":
		fmt.Print(bench.RenderFig2((*fig)[1:], sizes))
	case *netstats:
		fmt.Print(bench.RenderNetStats(*size))
	case *msgFlag:
		fmt.Print(bench.RenderMessaging())
	case *dsmFlag:
		fmt.Print(bench.RenderDSM())
	case *tcpFlag:
		fmt.Print(bench.RenderTransportComparison())
	case *blkFlag:
		ios := 300
		if *quick {
			ios = 100
		}
		fmt.Print(bench.RenderBlockStore(ios))
	case *latFlag:
		count := 2000
		if *quick {
			count = 400
		}
		fmt.Print(bench.RenderLatencyDist(count))
	case *smallops:
		count := 16384
		if *quick {
			count = 2048
		}
		fmt.Print(bench.RenderSmallOps(count))
	case *faninFlag:
		counts, err := parseConns(*faninConns)
		if err != nil {
			fmt.Fprintf(os.Stderr, "medbench: -fanin-conns: %v\n", err)
			os.Exit(2)
		}
		if *quick {
			max := 64
			trimmed := counts[:0]
			for _, n := range counts {
				if n <= max {
					trimmed = append(trimmed, n)
				}
			}
			counts = trimmed
		}
		out, ok := bench.RenderFanin(counts, *faninOps, 256, *faninChaos)
		fmt.Print(out)
		if !ok {
			os.Exit(1)
		}
	case *crashloop:
		cycles := *crashCycles
		if *quick {
			cycles = 2
		}
		out, ok := bench.RenderCrashloop(cycles, sim.Time(*crashDownMs)*sim.Millisecond, 256<<10)
		fmt.Print(out)
		if !ok {
			os.Exit(1)
		}
	case *chaosFlag:
		transfers := 30
		if *quick {
			transfers = 10
		}
		fmt.Print(renderChaos(*chaosSeeds, transfers))
	case *ablate:
		fmt.Print(bench.RenderAblation(*size))
	case *one != "":
		cfg, ok := configByName(*config)
		if !ok {
			fmt.Fprintf(os.Stderr, "medbench: unknown configuration %q\n", *config)
			os.Exit(2)
		}
		if *doTrace {
			fmt.Print(bench.RunTracedOneWay(cfg, *size))
			return
		}
		cfg.Obs = cluster.ObsOptions{Metrics: *metrics, Spans: *spans}
		r := bench.RunMicro(*one, cfg, *size)
		fmt.Println(r.String())
		fmt.Printf("  net: ooo %.1f%%  extra %.2f%%  acks %d  nacks %d  retrans %d\n",
			r.Net.Proto.OOOFraction()*100, r.Net.Proto.ExtraTrafficFraction()*100,
			r.Net.Proto.CtrlAcksSent, r.Net.Proto.CtrlNacksSent, r.Net.Proto.Retransmissions)
		if obsOn {
			files, err := r.Obs.WriteFiles(*obsOut, *metrics, *spans)
			if err != nil {
				fmt.Fprintf(os.Stderr, "medbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("  obs: wrote %s\n", strings.Join(files, " "))
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// renderChaos runs the standard flap-heavy randomized soak (24 faults
// in the first 3 s, outages capped at 500 ms, DeadInterval 5 s, adaptive
// RTO on) for `seeds` seeds per configuration and reports each run.
func renderChaos(seeds, transfers int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos soak: %d transfers x 32 KiB under 24 randomized faults "+
		"(flap/loss/corrupt/reorder/dup), outages <= 500 ms, DeadInterval 5 s\n\n", transfers)
	fmt.Fprintf(&b, "%-7s %5s  %9s %7s %8s %8s %9s %10s  %s\n",
		"config", "seed", "completed", "dataOK", "retrans", "rtoExp", "dupDrops", "failDrops", "violations")
	for _, cfg := range bench.Configs() {
		for seed := int64(1); seed <= int64(seeds); seed++ {
			soak := cfg
			soak.Core.DeadInterval = 5 * sim.Second
			soak.Core.RTOMax = 100 * sim.Millisecond
			res, vs := chaos.Run(chaos.Options{
				Config:    soak,
				Seed:      seed,
				Transfers: transfers,
				Bytes:     32 << 10,
				Gap:       100 * sim.Millisecond,
				Horizon:   60 * sim.Second,
				Script: func(r *chaos.Runner) {
					r.Randomize(chaos.RandomizeOptions{
						From:      sim.Millisecond,
						To:        3 * sim.Second,
						Events:    24,
						MaxOutage: 500 * sim.Millisecond,
					})
				},
			})
			viol := "none"
			if len(vs) > 0 {
				viol = vs[0].String()
				if len(vs) > 1 {
					viol = fmt.Sprintf("%s (+%d more)", viol, len(vs)-1)
				}
			}
			fmt.Fprintf(&b, "%-7s %5d  %5d/%-3d %7v %8d %8d %9d %10d  %s\n",
				cfg.Name, seed, res.Completed, transfers, res.DataOK,
				res.Report.Proto.Retransmissions, res.Report.Proto.RtoExpiries,
				res.Report.Proto.DupFramesDropped, res.Report.LinkFailDrops, viol)
		}
	}
	return b.String()
}

// parseConns parses the -fanin-conns list.
func parseConns(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad connection count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func configByName(name string) (cluster.Config, bool) {
	for _, cfg := range bench.Configs() {
		if cfg.Name == name {
			return cfg, true
		}
	}
	return cluster.Config{}, false
}
