package multiedge_test

import (
	"fmt"

	"multiedge"
)

// Example_quickstart reproduces the README flow: a remote write with a
// completion notification between two simulated nodes. The simulation
// is deterministic, so the timestamps are exact.
func Example_quickstart() {
	cl := multiedge.NewCluster(multiedge.OneLink1G(2))
	c01, c10 := cl.Pair()
	ep0, ep1 := cl.Nodes[0].EP, cl.Nodes[1].EP

	msg := []byte("hello")
	src := ep0.Alloc(len(msg))
	dst := ep1.Alloc(len(msg))
	copy(ep0.Mem()[src:], msg)

	cl.Env.Go("writer", func(p *multiedge.Proc) {
		h := c01.MustDo(p, multiedge.Op{Remote: dst, Local: src, Size: len(msg), Kind: multiedge.OpWrite, Flags: multiedge.Notify})
		h.Wait(p)
	})
	cl.Env.Go("reader", func(p *multiedge.Proc) {
		n := c10.WaitNotify(p)
		fmt.Printf("[%v] node 1 received %q from node %d\n",
			cl.Env.Now(), ep1.Mem()[n.Addr:n.Addr+uint64(n.Len)], n.From)
	})
	cl.Env.Run()
	// Output:
	// [60.488us] node 1 received "hello" from node 0
}

// Example_fences shows the paper's ordering API: bulk data striped over
// two links reorders freely, while a backward-fenced flag write is
// performed only after everything issued before it.
func Example_fences() {
	cl := multiedge.NewCluster(multiedge.TwoLinkUnordered1G(2))
	c01, c10 := cl.Pair()
	ep0, ep1 := cl.Nodes[0].EP, cl.Nodes[1].EP

	const n = 64 * 1024
	src := ep0.Alloc(n)
	dst := ep1.Alloc(n)
	flag := ep1.Alloc(1)
	for i := 0; i < n; i++ {
		ep0.Mem()[src+uint64(i)] = byte(i)
	}

	cl.Env.Go("sender", func(p *multiedge.Proc) {
		c01.MustDo(p, multiedge.Op{Remote: dst, Local: src, Size: n, Kind: multiedge.OpWrite})
		c01.MustDo(p, multiedge.Op{Remote: flag, Local: src, Size: 1, Kind: multiedge.OpWrite, Flags: multiedge.FenceBefore | multiedge.Notify})
	})
	cl.Env.Go("receiver", func(p *multiedge.Proc) {
		c10.WaitNotify(p)
		complete := true
		for i := 0; i < n; i++ {
			if ep1.Mem()[dst+uint64(i)] != byte(i) {
				complete = false
			}
		}
		fmt.Printf("fenced flag arrived with all %d bytes in place: %v\n", n, complete)
	})
	cl.Env.Run()
	// Output:
	// fenced flag arrived with all 65536 bytes in place: true
}

// Example_blockstore shows the storage domain: a passive volume host,
// a fenced commit record, and a read-back over a second connection.
func Example_blockstore() {
	cl := multiedge.NewCluster(multiedge.TwoLinkUnordered1G(3))
	conns := cl.FullMesh()
	vol := multiedge.NewVolume(cl, 0, 64, 4096, 2)

	writer := multiedge.OpenVolume(cl, vol, 1, conns[1][0], 0)
	reader := multiedge.OpenVolume(cl, vol, 2, conns[2][0], 1)

	var wrote multiedge.Signal
	cl.Env.Go("writer", func(p *multiedge.Proc) {
		block := make([]byte, 4096)
		copy(block, "hello, block 7")
		writer.Write(p, 7, block)
		wrote.Fire(cl.Env)
	})
	cl.Env.Go("reader", func(p *multiedge.Proc) {
		p.Wait(&wrote)
		seq, block := reader.ReadCommit(p, 0)
		got := make([]byte, 4096)
		reader.Read(p, block, got)
		fmt.Printf("commit #%d covers block %d: %q\n", seq, block, got[:14])
	})
	cl.Env.Run()
	// Output:
	// commit #1 covers block 7: "hello, block 7"
}

// Example_hybridRails demonstrates heterogeneous rails: a 1-GbE rail
// next to a 10-GbE rail with least-backlog (adaptive) striping, the
// incremental-upgrade scenario edge-based scaling invites.
func Example_hybridRails() {
	run := func(adaptive bool) float64 {
		cfg := multiedge.HybridRails(2)
		cfg.Core.AdaptiveStripe = adaptive
		cl := multiedge.NewCluster(cfg)
		c01, _ := cl.Pair()
		ep0, ep1 := cl.Nodes[0].EP, cl.Nodes[1].EP
		const n, ops = 1 << 20, 8
		src, dst := ep0.Alloc(n), ep1.Alloc(n)
		var start, end multiedge.Time
		cl.Env.Go("xfer", func(p *multiedge.Proc) {
			start = cl.Env.Now()
			hs := make([]*multiedge.Handle, ops)
			for i := range hs {
				// Back-to-back writes so initiation copies overlap the wire.
				hs[i] = c01.MustDo(p, multiedge.Op{Remote: dst, Local: src, Size: n, Kind: multiedge.OpWrite})
			}
			for _, h := range hs {
				h.Wait(p)
			}
			end = cl.Env.Now()
		})
		cl.Env.Run()
		return float64(n*ops) / 1e6 / (end - start).Seconds()
	}
	fmt.Printf("round-robin striping:    %.0f MB/s (paced by the 1-GbE rail)\n", run(false))
	fmt.Printf("least-backlog striping: %.0f MB/s (both rails full)\n", run(true))
	// Output:
	// round-robin striping:    229 MB/s (paced by the 1-GbE rail)
	// least-backlog striping: 1064 MB/s (both rails full)
}
