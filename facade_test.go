package multiedge_test

import (
	"bytes"
	"fmt"
	"testing"

	"multiedge"
	"multiedge/internal/chaos"
	"multiedge/internal/dsm"
)

// TestPublicAPIQuickstart exercises the README flow through the public
// facade only.
func TestPublicAPIQuickstart(t *testing.T) {
	cl := multiedge.NewCluster(multiedge.OneLink1G(2))
	c01, c10 := cl.Pair()
	ep0, ep1 := cl.Nodes[0].EP, cl.Nodes[1].EP
	msg := []byte("facade quickstart")
	src := ep0.Alloc(len(msg))
	dst := ep1.Alloc(len(msg))
	copy(ep0.Mem()[src:], msg)

	var acked, notified bool
	cl.Env.Go("writer", func(p *multiedge.Proc) {
		h := c01.MustDo(p, multiedge.Op{Remote: dst, Local: src, Size: len(msg), Kind: multiedge.OpWrite, Flags: multiedge.Notify})
		h.Wait(p)
		acked = true
	})
	cl.Env.Go("reader", func(p *multiedge.Proc) {
		n := c10.WaitNotify(p)
		notified = bytes.Equal(ep1.Mem()[n.Addr:n.Addr+uint64(n.Len)], msg)
	})
	cl.Env.RunUntil(multiedge.Second)
	if !acked || !notified {
		t.Fatalf("acked=%v notified=%v", acked, notified)
	}
}

// TestPublicAPIDSM exercises the shared-memory layer through the facade.
func TestPublicAPIDSM(t *testing.T) {
	cfg := multiedge.TwoLinkUnordered1G(3)
	cfg.Core.MemBytes = 8 << 20
	cl := multiedge.NewCluster(cfg)
	sys := multiedge.NewDSM(cl, cl.FullMesh(), multiedge.DSMConfig{SharedBytes: 1 << 20})
	addr := sys.AllocPages(3 * 8)
	done := 0
	for _, in := range sys.Insts {
		in := in
		cl.Env.Go(fmt.Sprintf("n%d", in.Node()), func(p *multiedge.Proc) {
			b := in.WSlice(p, addr+uint64(8*in.Node()), 8)
			dsm.SetU64(b, 0, uint64(in.Node())+100)
			in.Barrier(p)
			all := in.RSlice(p, addr, 3*8)
			for j := 0; j < 3; j++ {
				if dsm.U64(all, j) != uint64(j)+100 {
					t.Errorf("node %d sees slot %d = %d", in.Node(), j, dsm.U64(all, j))
				}
			}
			done++
		})
	}
	cl.Env.RunUntil(10 * multiedge.Second)
	if done != 3 {
		t.Fatalf("done = %d/3", done)
	}
}

// TestPublicAPIService drives the service layer end to end through the
// facade only: functional cluster options, Serve/Connect with every
// ConnectOption, balancer constructors, a live relay, the stats and
// error surface, and a kill-driven failover.
func TestPublicAPIService(t *testing.T) {
	cfg := multiedge.OneLink1G(5)
	cfg.Core.RTOMax = 2 * multiedge.Millisecond
	cfg.Core.MaxRetries = 3
	cl := multiedge.NewCluster(cfg,
		multiedge.WithReconnect(3),
		multiedge.WithHeartbeat(multiedge.Millisecond, 5*multiedge.Millisecond),
		multiedge.WithSchedQueue(),
		multiedge.WithTimerWheel(50*multiedge.Microsecond),
		multiedge.WithSeed(7))

	reg := multiedge.NewRegistry()
	backends := []*multiedge.Endpoint{cl.Nodes[1].EP, cl.Nodes[2].EP, cl.Nodes[3].EP}
	s, err := multiedge.Serve(reg, "kv", 1<<15, backends,
		multiedge.WithRelay(cl.Nodes[4].EP, 4))
	if err != nil {
		t.Fatal(err)
	}
	if s.Replicas() != 3 {
		t.Fatalf("replicas = %d, want 3", s.Replicas())
	}
	if _, _, ok := reg.Relay(); !ok {
		t.Fatal("WithRelay did not register a relay")
	}
	if _, err := multiedge.Connect(cl.Nodes[0].EP, reg, "nope"); err == nil {
		t.Fatal("Connect to unknown service succeeded")
	}

	stub, err := multiedge.Connect(cl.Nodes[0].EP, reg, "kv",
		multiedge.WithBalancer(multiedge.NewAffinity(multiedge.NewRoundRobin())),
		multiedge.WithFailoverBudget(10*multiedge.Millisecond),
		multiedge.WithMaxAttempts(3),
		multiedge.WithCallLinks(0))
	if err != nil {
		t.Fatal(err)
	}
	_ = multiedge.NewRandom(42) // balancer constructors are part of the surface
	_ = multiedge.DefaultFailoverBudget
	_ = multiedge.ErrNoBackends
	_ = multiedge.ErrBadCall
	_ = multiedge.ErrNoRelay
	_ = multiedge.ErrRelayFailed

	ep0 := cl.Nodes[0].EP
	const n = 4096
	src := ep0.Alloc(n)
	chk := ep0.Alloc(n)
	for i := 0; i < n; i++ {
		ep0.Mem()[src+uint64(i)] = byte(i * 3)
	}
	done := false
	cl.Env.Go("caller", func(p *multiedge.Proc) {
		if err := stub.Call(p, 1, multiedge.Op{
			Remote: 0, Local: src, Size: n, Kind: multiedge.OpWrite,
		}); err != nil {
			t.Errorf("write call: %v", err)
		}
		// Kill the bound backend; the rewrite must fail over and the
		// read-back must match from the survivor.
		bound := -1
		for b, calls := range stub.Stats.PerBackend {
			if calls > 0 {
				bound = b
			}
		}
		cl.PauseNode(s.Backends[bound].Node)
		if err := stub.Call(p, 1, multiedge.Op{
			Remote: 0, Local: src, Size: n, Kind: multiedge.OpWrite,
		}); err != nil {
			t.Errorf("failover write: %v", err)
		}
		if err := stub.Call(p, 1, multiedge.Op{
			Remote: 0, Local: chk, Size: n, Kind: multiedge.OpRead,
		}); err != nil {
			t.Errorf("read call: %v", err)
		}
		if !bytes.Equal(ep0.Mem()[chk:chk+n], ep0.Mem()[src:src+n]) {
			t.Error("service read-back mismatch after failover")
		}
		stub.Close(p)
		done = true
	})
	cl.Env.RunUntil(30 * multiedge.Second)
	if !done {
		t.Fatal("caller did not finish")
	}
	var st *multiedge.ServiceStats = &stub.Stats
	if st.BackendsCondemned != 1 || st.Failovers == 0 {
		t.Errorf("condemned=%d failovers=%d, want 1/>0", st.BackendsCondemned, st.Failovers)
	}
	if len(stub.EligibleBackends()) != 2 {
		t.Errorf("eligible = %v, want the two survivors", stub.EligibleBackends())
	}
}

// TestPublicAPIQoS drives the multi-tenant QoS surface through the
// facade only: WithQoS class tables (implying the sched queue),
// WithTenantClass on a service stub, the ErrThrottled error surface,
// and the per-class admission accounting it all feeds.
func TestPublicAPIQoS(t *testing.T) {
	cl := multiedge.NewCluster(multiedge.OneLink1G(3),
		multiedge.WithQoS(
			multiedge.QoSClass{Weight: 1},
			multiedge.QoSClass{Weight: 4, RateBps: 250e6, Burst: 16 << 10, MaxQueued: 8, MaxQueuedBytes: 1 << 20},
		),
		multiedge.WithSeed(7))
	_ = multiedge.ErrThrottled // part of the public error surface

	reg := multiedge.NewRegistry()
	if _, err := multiedge.Serve(reg, "kv", 1<<15,
		[]*multiedge.Endpoint{cl.Nodes[1].EP, cl.Nodes[2].EP}); err != nil {
		t.Fatal(err)
	}
	stub, err := multiedge.Connect(cl.Nodes[0].EP, reg, "kv",
		multiedge.WithTenantClass(1))
	if err != nil {
		t.Fatal(err)
	}

	ep0 := cl.Nodes[0].EP
	const n = 2048
	src := ep0.Alloc(n)
	chk := ep0.Alloc(n)
	for i := 0; i < n; i++ {
		ep0.Mem()[src+uint64(i)] = byte(i * 5)
	}
	done := false
	cl.Env.Go("caller", func(p *multiedge.Proc) {
		for i := 0; i < 8; i++ {
			if err := stub.Call(p, 1, multiedge.Op{
				Remote: 0, Local: src, Size: n, Kind: multiedge.OpWrite,
			}); err != nil {
				t.Errorf("write call %d: %v", i, err)
			}
		}
		if err := stub.Call(p, 1, multiedge.Op{
			Remote: 0, Local: chk, Size: n, Kind: multiedge.OpRead,
		}); err != nil {
			t.Errorf("read call: %v", err)
		}
		if !bytes.Equal(ep0.Mem()[chk:chk+n], ep0.Mem()[src:src+n]) {
			t.Error("service read-back mismatch")
		}
		stub.Close(p)
		done = true
	})
	cl.Env.RunUntil(10 * multiedge.Second)
	if !done {
		t.Fatal("caller did not finish")
	}
	// WithTenantClass tagged the stub's conns and ops: every call was
	// admitted under class 1 at the issuing endpoint.
	if got := ep0.Stats.QosOpsAdmitted; got != 9 {
		t.Errorf("QosOpsAdmitted = %d, want 9", got)
	}
}

// TestPublicAPIRelayTypes pins the relay surface: StartRelay wiring, a
// forwarded call when the direct path is blackholed, and RelayStats.
func TestPublicAPIRelayTypes(t *testing.T) {
	cfg := multiedge.OneLink1G(3)
	cfg.Core.RTOMax = 2 * multiedge.Millisecond
	cfg.Core.MaxRetries = 3
	cl := multiedge.NewCluster(cfg,
		multiedge.WithReconnect(0),
		multiedge.WithHeartbeat(multiedge.Millisecond, 5*multiedge.Millisecond))
	reg := multiedge.NewRegistry()
	if _, err := multiedge.Serve(reg, "kv", 8192,
		[]*multiedge.Endpoint{cl.Nodes[1].EP}); err != nil {
		t.Fatal(err)
	}
	var relay *multiedge.Relay = multiedge.StartRelay(cl.Nodes[2].EP, reg, 2, 10*multiedge.Millisecond)
	stub, err := multiedge.Connect(cl.Nodes[0].EP, reg, "kv",
		multiedge.WithRelayFallback(),
		multiedge.WithFailoverBudget(10*multiedge.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ep0 := cl.Nodes[0].EP
	src := ep0.Alloc(1024)
	for i := range ep0.Mem()[src : src+1024] {
		ep0.Mem()[src+uint64(i)] = byte(i ^ 0x5a)
	}
	// Break the direct client->backend path only; the relay still
	// reaches both sides.
	chaos.New(cl, 1).BlackholePair(2*multiedge.Millisecond, 0, 0, 1)
	ok := false
	cl.Env.Go("caller", func(p *multiedge.Proc) {
		p.Sleep(3 * multiedge.Millisecond)
		if err := stub.Call(p, 9, multiedge.Op{
			Remote: 0, Local: src, Size: 1024, Kind: multiedge.OpWrite,
		}); err != nil {
			t.Errorf("relayed call: %v", err)
		}
		stub.Close(p)
		relay.Shutdown(p)
		ok = true
	})
	cl.Env.RunUntil(30 * multiedge.Second)
	if !ok {
		t.Fatal("caller did not finish")
	}
	var rs multiedge.RelayStats = relay.Stats
	if rs.Forwarded == 0 {
		t.Errorf("relay forwarded %d calls, want > 0 (stats %+v)", rs.Forwarded, rs)
	}
	kv, _ := reg.Lookup("kv")
	var b multiedge.ServiceBackend = kv.Backends[0]
	if !bytes.Equal(cl.Nodes[b.Node].EP.Mem()[b.Base:b.Base+1024], ep0.Mem()[src:src+1024]) {
		t.Error("relayed write did not land in the backend region")
	}
}

// TestPublicAPIFences checks the facade exposes the paper's flags with
// working semantics.
func TestPublicAPIFences(t *testing.T) {
	cl := multiedge.NewCluster(multiedge.TwoLinkUnordered1G(2))
	c01, c10 := cl.Pair()
	ep0, ep1 := cl.Nodes[0].EP, cl.Nodes[1].EP
	const n = 128 * 1024
	src := ep0.Alloc(n)
	dst := ep1.Alloc(n)
	for i := 0; i < n; i++ {
		ep0.Mem()[src+uint64(i)] = byte(i)
	}
	ok := false
	cl.Env.Go("w", func(p *multiedge.Proc) {
		c01.MustDo(p, multiedge.Op{Remote: dst, Local: src, Size: n, Kind: multiedge.OpWrite})
		c01.MustDo(p, multiedge.Op{Kind: multiedge.OpWrite, Flags: multiedge.FenceBefore | multiedge.Notify})
	})
	cl.Env.Go("r", func(p *multiedge.Proc) {
		c10.WaitNotify(p)
		ok = bytes.Equal(ep1.Mem()[dst:dst+n], ep0.Mem()[src:src+n])
	})
	cl.Env.RunUntil(10 * multiedge.Second)
	if !ok {
		t.Fatal("fence semantics broken through facade")
	}
}
