package multiedge_test

import (
	"bytes"
	"fmt"
	"testing"

	"multiedge"
	"multiedge/internal/dsm"
)

// TestPublicAPIQuickstart exercises the README flow through the public
// facade only.
func TestPublicAPIQuickstart(t *testing.T) {
	cl := multiedge.NewCluster(multiedge.OneLink1G(2))
	c01, c10 := cl.Pair()
	ep0, ep1 := cl.Nodes[0].EP, cl.Nodes[1].EP
	msg := []byte("facade quickstart")
	src := ep0.Alloc(len(msg))
	dst := ep1.Alloc(len(msg))
	copy(ep0.Mem()[src:], msg)

	var acked, notified bool
	cl.Env.Go("writer", func(p *multiedge.Proc) {
		h := c01.MustDo(p, multiedge.Op{Remote: dst, Local: src, Size: len(msg), Kind: multiedge.OpWrite, Flags: multiedge.Notify})
		h.Wait(p)
		acked = true
	})
	cl.Env.Go("reader", func(p *multiedge.Proc) {
		n := c10.WaitNotify(p)
		notified = bytes.Equal(ep1.Mem()[n.Addr:n.Addr+uint64(n.Len)], msg)
	})
	cl.Env.RunUntil(multiedge.Second)
	if !acked || !notified {
		t.Fatalf("acked=%v notified=%v", acked, notified)
	}
}

// TestPublicAPIDSM exercises the shared-memory layer through the facade.
func TestPublicAPIDSM(t *testing.T) {
	cfg := multiedge.TwoLinkUnordered1G(3)
	cfg.Core.MemBytes = 8 << 20
	cl := multiedge.NewCluster(cfg)
	sys := multiedge.NewDSM(cl, cl.FullMesh(), multiedge.DSMConfig{SharedBytes: 1 << 20})
	addr := sys.AllocPages(3 * 8)
	done := 0
	for _, in := range sys.Insts {
		in := in
		cl.Env.Go(fmt.Sprintf("n%d", in.Node()), func(p *multiedge.Proc) {
			b := in.WSlice(p, addr+uint64(8*in.Node()), 8)
			dsm.SetU64(b, 0, uint64(in.Node())+100)
			in.Barrier(p)
			all := in.RSlice(p, addr, 3*8)
			for j := 0; j < 3; j++ {
				if dsm.U64(all, j) != uint64(j)+100 {
					t.Errorf("node %d sees slot %d = %d", in.Node(), j, dsm.U64(all, j))
				}
			}
			done++
		})
	}
	cl.Env.RunUntil(10 * multiedge.Second)
	if done != 3 {
		t.Fatalf("done = %d/3", done)
	}
}

// TestPublicAPIFences checks the facade exposes the paper's flags with
// working semantics.
func TestPublicAPIFences(t *testing.T) {
	cl := multiedge.NewCluster(multiedge.TwoLinkUnordered1G(2))
	c01, c10 := cl.Pair()
	ep0, ep1 := cl.Nodes[0].EP, cl.Nodes[1].EP
	const n = 128 * 1024
	src := ep0.Alloc(n)
	dst := ep1.Alloc(n)
	for i := 0; i < n; i++ {
		ep0.Mem()[src+uint64(i)] = byte(i)
	}
	ok := false
	cl.Env.Go("w", func(p *multiedge.Proc) {
		c01.MustDo(p, multiedge.Op{Remote: dst, Local: src, Size: n, Kind: multiedge.OpWrite})
		c01.MustDo(p, multiedge.Op{Kind: multiedge.OpWrite, Flags: multiedge.FenceBefore | multiedge.Notify})
	})
	cl.Env.Go("r", func(p *multiedge.Proc) {
		c10.WaitNotify(p)
		ok = bytes.Equal(ep1.Mem()[dst:dst+n], ep0.Mem()[src:src+n])
	})
	cl.Env.RunUntil(10 * multiedge.Second)
	if !ok {
		t.Fatal("fence semantics broken through facade")
	}
}
