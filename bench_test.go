// Benchmarks regenerating the paper's evaluation (IPPS'07 §4): one
// benchmark per table/figure. Each iteration runs the full experiment
// in virtual time and reports the paper's metric via b.ReportMetric, so
// `go test -bench=. -benchmem` reproduces the evaluation end to end.
//
// The full-resolution sweeps live in cmd/medbench and cmd/medapps;
// benchmarks here use representative points so the whole suite stays in
// the minutes range.
package multiedge_test

import (
	"fmt"
	"testing"

	"multiedge/internal/apps"
	"multiedge/internal/bench"
	"multiedge/internal/cluster"
	"multiedge/internal/phys"
	"multiedge/internal/sim"
)

// --- Figure 2(a): latency -------------------------------------------------

func benchLatency(b *testing.B, cfg cluster.Config, size int) {
	b.Helper()
	var r bench.MicroResult
	for i := 0; i < b.N; i++ {
		r = bench.RunPingPong(cfg, size)
	}
	b.ReportMetric(r.LatencyUs, "us_oneway")
}

func BenchmarkFig2Latency(b *testing.B) {
	for _, cfg := range bench.Configs() {
		for _, size := range []int{4, 4096} {
			cfg, size := cfg, size
			b.Run(fmt.Sprintf("%s/%dB", cfg.Name, size), func(b *testing.B) {
				benchLatency(b, cfg, size)
			})
		}
	}
}

// --- Figure 2(b): throughput ----------------------------------------------

func BenchmarkFig2Throughput(b *testing.B) {
	for _, cfg := range bench.Configs() {
		for _, bm := range bench.Benchmarks {
			cfg, bm := cfg, bm
			b.Run(fmt.Sprintf("%s/%s/256KiB", cfg.Name, bm), func(b *testing.B) {
				var r bench.MicroResult
				for i := 0; i < b.N; i++ {
					r = bench.RunMicro(bm, cfg, 262144)
				}
				b.ReportMetric(r.ThroughputMBs, "MB/s")
			})
		}
	}
}

// --- Figure 2(c): protocol CPU utilization --------------------------------

func BenchmarkFig2CPU(b *testing.B) {
	for _, cfg := range bench.Configs() {
		for _, bm := range bench.Benchmarks {
			cfg, bm := cfg, bm
			b.Run(fmt.Sprintf("%s/%s", cfg.Name, bm), func(b *testing.B) {
				var r bench.MicroResult
				for i := 0; i < b.N; i++ {
					r = bench.RunMicro(bm, cfg, 65536)
				}
				b.ReportMetric(r.CPUPct, "pct_of_200")
			})
		}
	}
}

// --- §4 network statistics -------------------------------------------------

func BenchmarkNetStatsOOO(b *testing.B) {
	for _, cfg := range bench.Configs() {
		cfg := cfg
		b.Run(cfg.Name, func(b *testing.B) {
			var r bench.MicroResult
			for i := 0; i < b.N; i++ {
				r = bench.RunOneWay(cfg, 262144)
			}
			b.ReportMetric(r.Net.Proto.OOOFraction()*100, "ooo_pct")
			b.ReportMetric(r.Net.Proto.ExtraTrafficFraction()*100, "extra_pct")
		})
	}
}

// BenchmarkAblationLinkFailure measures graceful degradation when one
// of two 1-GbE rails is hard-failed 2 ms into an 8 MiB transfer, with
// and without the sender's dead-link detection, and with the rail
// repaired mid-run (results/ablations.txt "hard link failure" section).
func BenchmarkAblationLinkFailure(b *testing.B) {
	cases := []struct {
		name     string
		detect   bool
		repairAt sim.Time
	}{
		{"detect", true, 0},
		{"no-detect", false, 0},
		{"repaired", true, 30 * sim.Millisecond},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var r bench.LinkFailureResult
			for i := 0; i < b.N; i++ {
				r = bench.RunLinkFailure(c.detect, 8<<20, 2*sim.Millisecond, c.repairAt)
			}
			b.ReportMetric(r.ThroughputMBs, "MB/s")
			b.ReportMetric(float64(r.FailDrops), "burned_frames")
		})
	}
}

// --- Table 1: sequential applications ---------------------------------------

func BenchmarkTable1Apps(b *testing.B) {
	for _, name := range apps.Names {
		name := name
		b.Run(name, func(b *testing.B) {
			var res apps.Result
			for i := 0; i < b.N; i++ {
				res = bench.RunApp(cluster.OneLink1G(1), name, apps.SizeTest)
			}
			b.ReportMetric(res.Elapsed.Seconds()*1e3, "virt_ms")
		})
	}
}

// --- Figures 3-6: applications over GeNIMA ----------------------------------

func benchAppFigure(b *testing.B, cfg cluster.Config) {
	b.Helper()
	for _, name := range apps.Names {
		name := name
		b.Run(name, func(b *testing.B) {
			var seq, par apps.Result
			for i := 0; i < b.N; i++ {
				seq = bench.RunApp(cluster.OneLink1G(1), name, apps.SizeSmall)
				par = bench.RunApp(cfg, name, apps.SizeSmall)
			}
			b.ReportMetric(apps.Speedup(seq.Elapsed, par.Elapsed), "speedup")
			b.ReportMetric(par.ProtoCPUFrac*100, "proto_cpu_pct")
			b.ReportMetric(par.Net.Proto.OOOFraction()*100, "ooo_pct")
		})
	}
}

func BenchmarkFig3Apps1L1G(b *testing.B)  { benchAppFigure(b, cluster.OneLink1G(8)) }
func BenchmarkFig4Apps1L10G(b *testing.B) { benchAppFigure(b, cluster.OneLink10G(4)) }
func BenchmarkFig5Apps2L1G(b *testing.B)  { benchAppFigure(b, cluster.TwoLink1G(8)) }
func BenchmarkFig6Apps2Lu1G(b *testing.B) { benchAppFigure(b, cluster.TwoLinkUnordered1G(8)) }

// --- Ablations ---------------------------------------------------------------

func BenchmarkAblationStriping(b *testing.B) {
	for _, byteStripe := range []bool{false, true} {
		byteStripe := byteStripe
		name := "frame"
		if byteStripe {
			name = "byte"
		}
		b.Run(name, func(b *testing.B) {
			cfg := cluster.TwoLinkUnordered1G(2)
			cfg.Core.ByteStripe = byteStripe
			var r bench.MicroResult
			for i := 0; i < b.N; i++ {
				r = bench.RunOneWay(cfg, 262144)
			}
			b.ReportMetric(r.ThroughputMBs, "MB/s")
		})
	}
}

func BenchmarkAblationARQ(b *testing.B) {
	for _, gbn := range []bool{false, true} {
		gbn := gbn
		name := "selective-repeat"
		if gbn {
			name = "go-back-n"
		}
		b.Run(name, func(b *testing.B) {
			cfg := cluster.TwoLinkUnordered1G(2)
			cfg.Core.GoBackN = gbn
			cfg.Link.LossProb = 0.002
			var r bench.MicroResult
			for i := 0; i < b.N; i++ {
				r = bench.RunOneWay(cfg, 262144)
			}
			b.ReportMetric(r.ThroughputMBs, "MB/s")
			b.ReportMetric(float64(r.Net.Proto.Retransmissions), "retrans")
		})
	}
}

func BenchmarkAblationWindow(b *testing.B) {
	for _, w := range []int{16, 64, 256} {
		w := w
		b.Run(fmt.Sprintf("W%d", w), func(b *testing.B) {
			cfg := cluster.OneLink10G(2)
			cfg.Core.Window = w
			var r bench.MicroResult
			for i := 0; i < b.N; i++ {
				r = bench.RunOneWay(cfg, 262144)
			}
			b.ReportMetric(r.ThroughputMBs, "MB/s")
		})
	}
}

func BenchmarkAblationDelayedAck(b *testing.B) {
	for _, a := range []int{1, 8, 32} {
		a := a
		b.Run(fmt.Sprintf("ackEvery%d", a), func(b *testing.B) {
			cfg := cluster.OneLink1G(2)
			cfg.Core.AckEvery = a
			var r bench.MicroResult
			for i := 0; i < b.N; i++ {
				r = bench.RunOneWay(cfg, 262144)
			}
			b.ReportMetric(r.ThroughputMBs, "MB/s")
			b.ReportMetric(r.Net.Proto.ExtraTrafficFraction()*100, "extra_pct")
		})
	}
}

// --- Message-passing layer (the paper's §1 second application domain) ---

func BenchmarkMsgPingPong(b *testing.B) {
	for _, size := range []int{8, 4096, 262144} {
		size := size
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			var r bench.MsgResult
			for i := 0; i < b.N; i++ {
				r = bench.RunMsgPingPong(cluster.OneLink1G(2), size, 20)
			}
			b.ReportMetric(r.LatencyUs, "us_rtt/2")
			b.ReportMetric(r.BWMBs, "MB/s")
		})
	}
}

func BenchmarkMsgCollectives(b *testing.B) {
	for _, name := range []string{"barrier", "bcast", "allreduce", "alltoall"} {
		name := name
		b.Run(name, func(b *testing.B) {
			var r bench.MsgResult
			for i := 0; i < b.N; i++ {
				r = bench.RunCollective(name, 8, 1024, 10)
			}
			b.ReportMetric(r.LatencyUs, "us_op")
		})
	}
}

// --- Future work (IPPS'07 §6) ---

func BenchmarkFutureOffload(b *testing.B) {
	for _, off := range []bool{false, true} {
		off := off
		name := "edge"
		if off {
			name = "offload"
		}
		b.Run(name, func(b *testing.B) {
			cfg := cluster.OneLink10G(2)
			if off {
				cfg = cluster.OneLink10GOffload(2)
			}
			var r bench.MicroResult
			for i := 0; i < b.N; i++ {
				r = bench.RunOneWay(cfg, 1<<20)
			}
			b.ReportMetric(r.ThroughputMBs, "MB/s")
			b.ReportMetric(r.CPUPct, "host_cpu_pct")
		})
	}
}

func BenchmarkFutureTreeFabric(b *testing.B) {
	b.Run("cross-core", func(b *testing.B) {
		var mbs float64
		for i := 0; i < b.N; i++ {
			mbs = bench.RunTreeCrossPair(1 << 19)
		}
		b.ReportMetric(mbs, "MB/s")
	})
}

// --- DSM primitives --------------------------------------------------------

func BenchmarkDSMPrimitives(b *testing.B) {
	b.Run("page-fetch", func(b *testing.B) {
		var r bench.DSMResult
		for i := 0; i < b.N; i++ {
			r = bench.RunPageFetch(cluster.OneLink1G(2))
		}
		b.ReportMetric(r.LatencyUs, "us")
	})
	b.Run("lock-handoff", func(b *testing.B) {
		var r bench.DSMResult
		for i := 0; i < b.N; i++ {
			r = bench.RunLockHandoff(cluster.OneLink1G(3))
		}
		b.ReportMetric(r.LatencyUs, "us")
	})
	b.Run("barrier-16", func(b *testing.B) {
		var r bench.DSMResult
		for i := 0; i < b.N; i++ {
			r = bench.RunDSMBarrier(cluster.OneLink1G(16), 16)
		}
		b.ReportMetric(r.LatencyUs, "us")
	})
}

// --- Transport comparison (§5 related work) --------------------------------

func BenchmarkTransportComparison(b *testing.B) {
	b.Run("multiedge-10G", func(b *testing.B) {
		var r bench.MicroResult
		for i := 0; i < b.N; i++ {
			r = bench.RunOneWay(cluster.OneLink10G(2), 1<<20)
		}
		b.ReportMetric(r.ThroughputMBs, "MB/s")
		b.ReportMetric(r.CPUPct, "cpu_pct")
	})
	b.Run("tcp-10G", func(b *testing.B) {
		var r bench.TCPResult
		for i := 0; i < b.N; i++ {
			r = bench.RunTCPOneWay(phys.TenGigabit(), phys.Myri10GNICParams(), 24<<20)
		}
		b.ReportMetric(r.ThroughputMBs, "MB/s")
		b.ReportMetric(r.CPUPct, "cpu_pct")
	})
}

// BenchmarkEdgeScaling sweeps the number of 1-GbE rails (the §1 design
// goal: link bandwidth scales with the number of links; the paper
// measures up to two, results/ablations.txt extends to four).
func BenchmarkEdgeScaling(b *testing.B) {
	for rails := 1; rails <= 4; rails++ {
		rails := rails
		b.Run(fmt.Sprintf("%dL", rails), func(b *testing.B) {
			cfg := cluster.TwoLinkUnordered1G(2)
			cfg.LinksPerNode = rails
			cfg.Name = "xL-1G"
			var r bench.MicroResult
			for i := 0; i < b.N; i++ {
				r = bench.RunOneWay(cfg, 1<<20)
			}
			b.ReportMetric(r.ThroughputMBs, "MB/s")
			b.ReportMetric(r.Net.Proto.OOOFraction()*100, "ooo_pct")
		})
	}
}

// BenchmarkBlockStore measures the storage domain (4 KiB random I/O
// against a passive one-sided volume; results/blockstore.txt).
func BenchmarkBlockStore(b *testing.B) {
	cases := []struct {
		name    string
		cfg     cluster.Config
		clients int
	}{
		{"1G-1client", cluster.OneLink1G(0), 1},
		{"10G-1client", cluster.OneLink10G(0), 1},
		{"2Lu-8clients", cluster.TwoLinkUnordered1G(0), 8},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var r bench.BlkResult
			for i := 0; i < b.N; i++ {
				r = bench.RunBlk(c.cfg, c.clients, 4096, 150)
			}
			b.ReportMetric(r.ReadIOPS, "read_iops")
			b.ReportMetric(r.WriteLatUs, "write_us")
		})
	}
}

// BenchmarkLatencyTail reports round-trip latency percentiles
// (results/latency.txt): the mean-only Figure 2(a) hides the RTO-scale
// repair tail that appears under loss.
func BenchmarkLatencyTail(b *testing.B) {
	cases := []struct {
		name string
		cfg  cluster.Config
	}{
		{"1L-1G", cluster.OneLink1G(2)},
		{"2Lu-1G-loss", func() cluster.Config {
			c := cluster.TwoLinkUnordered1G(2)
			c.Link.LossProb = 0.005
			return c
		}()},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var p50, p99 float64
			for i := 0; i < b.N; i++ {
				r := bench.RunLatencyDist(c.cfg, 64, 1000)
				p50, p99 = r.Percentile(50).Micros(), r.Percentile(99).Micros()
			}
			b.ReportMetric(p50, "p50_us")
			b.ReportMetric(p99, "p99_us")
		})
	}
}

// BenchmarkHybridRails measures heterogeneous-rail striping (1-GbE +
// 10-GbE, results/ablations.txt "heterogeneous rails" section):
// round-robin is paced by the slow rail; least-backlog striping
// approaches the combined rate.
func BenchmarkHybridRails(b *testing.B) {
	for _, adaptive := range []bool{true, false} {
		adaptive := adaptive
		name := "adaptive"
		if !adaptive {
			name = "round-robin"
		}
		b.Run(name, func(b *testing.B) {
			cfg := cluster.HybridRails(2)
			cfg.Core.AdaptiveStripe = adaptive
			var r bench.MicroResult
			for i := 0; i < b.N; i++ {
				r = bench.RunOneWay(cfg, 1<<20)
			}
			b.ReportMetric(r.ThroughputMBs, "MB/s")
		})
	}
}

// BenchmarkAblationInterruptAvoidance measures the paper's §2.6 masked
// polling against per-frame receive interrupts (results/ablations.txt
// "interrupt avoidance" section): decisive at 10-GbE, irrelevant at
// 1-GbE where the thread sleeps between frames anyway.
func BenchmarkAblationInterruptAvoidance(b *testing.B) {
	for _, rx := range []bool{false, true} {
		rx := rx
		name := "masked-polling"
		if rx {
			name = "per-frame-interrupts"
		}
		b.Run(name, func(b *testing.B) {
			cfg := cluster.OneLink10G(2)
			cfg.NIC.RxIntrUnmaskable = rx
			var r bench.MicroResult
			for i := 0; i < b.N; i++ {
				r = bench.RunOneWay(cfg, 1<<20)
			}
			b.ReportMetric(r.ThroughputMBs, "MB/s")
		})
	}
}
