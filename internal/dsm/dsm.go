// Package dsm implements a GeNIMA-style page-based software distributed
// shared memory system on top of the MultiEdge API (IPPS'07 §3 uses
// GeNIMA [5] to run the SPLASH-2 applications).
//
// The design follows GeNIMA's home-based release consistency and its
// defining idea — using the network interface's remote memory operations
// to avoid asynchronous protocol processing at the remote node:
//
//   - Every page has a home node; the home's copy is authoritative at
//     synchronization points.
//   - A read miss fetches the page with a single MultiEdge remote READ
//     of the home's memory: no software runs at the home.
//   - Writers create a twin on first write; at release/barrier the
//     twin/current diff is flushed with remote WRITEs straight into the
//     home's memory: again no home-side software.
//   - Only synchronization (locks, barriers) uses control messages:
//     small remote writes with notifications, handled by a per-node
//     service process standing in for GeNIMA's protocol handler.
//
// The paper's hardware page faults are replaced by explicit access
// calls (RSlice/WSlice) because Go cannot trap loads and stores; the
// network-visible behaviour — page fetches, diff flushes, write-notice
// invalidations, lock and barrier traffic — is preserved (DESIGN.md
// documents the substitution).
//
// Ordering: bulk data (page fetches, diffs) is unfenced; each control
// message carries a backward fence so it is performed only after the
// notices written before it on the same connection. Cross-connection
// ordering comes from waiting operation handles before sending control
// messages. This is exactly the "enforce ordering only between
// necessary operations" GeNIMA variant the paper evaluates as 2Lu-1G
// (Figure 6); under the strictly ordered 2L-1G configuration the fences
// are subsumed by global frame ordering.
package dsm

import (
	"fmt"
	"sort"

	"multiedge/internal/cluster"
	"multiedge/internal/core"
	"multiedge/internal/frame"
	"multiedge/internal/obs"
	"multiedge/internal/sim"
)

// PageSize is the sharing granularity (the platform's 4 KB pages).
const PageSize = 4096

// page states
const (
	pgInvalid = iota
	pgClean
	pgDirty
)

// System is a cluster-wide shared address space: one Instance per node
// plus a global allocator for shared data.
type System struct {
	Cl          *cluster.Cluster
	Insts       []*Instance
	sharedBytes int
	brk         uint64  // allocator offset within the shared region
	base        uint64  // shared region base (identical on every node)
	homes       []uint8 // per-page home node (shared by all instances)
	nodes       int
}

// Config sizes the shared address space.
type Config struct {
	SharedBytes int
}

// New builds the DSM over an established full mesh. It allocates the
// shared region and message areas identically on every node and starts
// each node's service process.
func New(cl *cluster.Cluster, conns [][]*core.Conn, cfg Config) *System {
	if cfg.SharedBytes <= 0 || cfg.SharedBytes%PageSize != 0 {
		panic("dsm: SharedBytes must be a positive multiple of PageSize")
	}
	n := cl.Cfg.Nodes
	if n > 64 {
		panic("dsm: at most 64 nodes (write-notice masks are 64-bit)")
	}
	pages := cfg.SharedBytes / PageSize
	sys := &System{Cl: cl, sharedBytes: cfg.SharedBytes, nodes: n, homes: make([]uint8, pages)}
	// Default placement: round-robin, like GeNIMA without programmer
	// placement hints. AllocAt/AllocOwned override per allocation.
	for pg := range sys.homes {
		sys.homes[pg] = uint8(pg % n)
	}
	for i := 0; i < n; i++ {
		in := newInstance(sys, cl.Nodes[i], conns[i], n, pages)
		sys.Insts = append(sys.Insts, in)
		if i == 0 {
			sys.base = in.shared
		} else if in.shared != sys.base {
			panic("dsm: shared region base differs across nodes")
		}
	}
	for _, in := range sys.Insts {
		in.start()
	}
	for _, in := range sys.Insts {
		in.registerObs()
	}
	return sys
}

// registerObs mirrors the instance's Stats into the cluster's obs
// registry (no-op when observability is off).
func (in *Instance) registerObs() {
	r := in.node.EP.Obs()
	if r == nil {
		return
	}
	nl := obs.NodeLabel(in.self)
	r.AddCollector(func(emit func(obs.Sample)) {
		c := func(name string, v uint64) {
			emit(obs.Sample{Name: name, Labels: []obs.Label{nl}, Value: float64(v), Type: obs.TypeCounter})
		}
		c("dsm_fetches_total", in.Stats.Fetches)
		c("dsm_fetch_bytes_total", in.Stats.FetchBytes)
		c("dsm_twins_total", in.Stats.Twins)
		c("dsm_diff_ops_total", in.Stats.DiffOps)
		c("dsm_diff_msgs_total", in.Stats.DiffMsgs)
		c("dsm_diff_bytes_total", in.Stats.DiffBytes)
		c("dsm_invalidations_total", in.Stats.Invalidations)
		c("dsm_lock_acquires_total", in.Stats.LockAcquires)
		c("dsm_remote_msgs_total", in.Stats.RemoteMsgs)
		c("dsm_barriers_total", in.Stats.Barriers)
	})
}

// Alloc reserves size bytes of shared memory (64-byte aligned) and
// returns its address, valid on every node.
func (s *System) Alloc(size int) uint64 {
	const align = 64
	off := (s.brk + align - 1) &^ (align - 1)
	if off+uint64(size) > uint64(s.sharedBytes) {
		panic(fmt.Sprintf("dsm: shared region exhausted: need %d at %d of %d", size, off, s.sharedBytes))
	}
	s.brk = off + uint64(size)
	return s.base + off
}

// AllocPages reserves whole pages, so distinct allocations never share
// a page (the apps use this for per-node regions to limit false
// sharing, as SPLASH-2 padding does).
func (s *System) AllocPages(size int) uint64 {
	pad := (PageSize - int(s.brk)%PageSize) % PageSize
	s.brk += uint64(pad)
	return s.Alloc((size + PageSize - 1) &^ (PageSize - 1))
}

// AllocAt reserves whole pages homed at the given node — the placement
// hint a tuned SPLASH-2 port gives its DSM so data lives with the node
// that computes on it.
func (s *System) AllocAt(size, home int) uint64 {
	if home < 0 || home >= s.nodes {
		panic("dsm: AllocAt: bad home node")
	}
	addr := s.AllocPages(size)
	first := int(addr-s.base) / PageSize
	last := int(addr-s.base+uint64(size)-1) / PageSize
	for pg := first; pg <= last; pg++ {
		s.homes[pg] = uint8(home)
	}
	return addr
}

// AllocOwned reserves whole pages homed in contiguous equal shares:
// node i homes the i-th n-th of the pages. Use for arrays whose rows
// are block-distributed across nodes.
func (s *System) AllocOwned(size int) uint64 {
	addr := s.AllocPages(size)
	first := int(addr-s.base) / PageSize
	count := (size + PageSize - 1) / PageSize
	for k := 0; k < count; k++ {
		s.homes[first+k] = uint8(k * s.nodes / count)
	}
	return addr
}

// Base returns the shared region's base address (identical on every
// node).
func (s *System) Base() uint64 { return s.base }

// SharedBytes returns the size of the shared region.
func (s *System) SharedBytes() int { return s.sharedBytes }

// HomeOf returns the home node of the page containing addr.
func (s *System) HomeOf(addr uint64) int {
	return int(s.homes[int(addr-s.base)/PageSize])
}

// WriteShared initializes shared memory out of band, writing directly to
// each page's home copy. It is valid only before the simulated
// application phase touches the range (SPLASH-2 style: initialization is
// excluded from the measured phase).
func (s *System) WriteShared(addr uint64, data []byte) {
	for off := 0; off < len(data); {
		pg := s.Insts[0].pageOf(addr + uint64(off))
		home := s.Insts[0].home(pg)
		pa := s.Insts[home].pageAddr(pg)
		inPage := int(addr + uint64(off) - pa)
		n := PageSize - inPage
		if n > len(data)-off {
			n = len(data) - off
		}
		copy(s.Insts[home].mem()[addr+uint64(off):], data[off:off+n])
		off += n
	}
}

// ReadShared assembles the authoritative (home) contents of a shared
// range, for post-run verification. Call it only at a quiescent point
// (after the application's final barrier).
func (s *System) ReadShared(addr uint64, n int) []byte {
	out := make([]byte, n)
	for off := 0; off < n; {
		pg := s.Insts[0].pageOf(addr + uint64(off))
		home := s.Insts[0].home(pg)
		pa := s.Insts[home].pageAddr(pg)
		inPage := int(addr + uint64(off) - pa)
		m := PageSize - inPage
		if m > n-off {
			m = n - off
		}
		copy(out[off:], s.Insts[home].mem()[addr+uint64(off):addr+uint64(off)+uint64(m)])
		off += m
	}
	return out
}

// Breakdown is the per-node execution-time decomposition the paper's
// Figures 3-6 plot.
type Breakdown struct {
	Compute  sim.Time // application work (charged via Compute)
	Data     sim.Time // waiting for remote page fetches
	Lock     sim.Time // lock acquire/release, including diff flushes there
	Barrier  sim.Time // barrier wait, including diff flushes there
	Overhead sim.Time // twin creation and diff generation CPU time
}

// Total returns the sum of all categories.
func (b Breakdown) Total() sim.Time {
	return b.Compute + b.Data + b.Lock + b.Barrier + b.Overhead
}

// Add accumulates another breakdown.
func (b *Breakdown) Add(o Breakdown) {
	b.Compute += o.Compute
	b.Data += o.Data
	b.Lock += o.Lock
	b.Barrier += o.Barrier
	b.Overhead += o.Overhead
}

// Stats counts DSM protocol events at one node.
type Stats struct {
	Fetches       uint64 // remote page fetches
	FetchBytes    uint64
	Twins         uint64 // twin creations
	DiffOps       uint64 // direct remote writes carrying diff runs
	DiffMsgs      uint64 // packed diff messages (fragmented pages)
	DiffBytes     uint64
	Invalidations uint64
	LockAcquires  uint64
	RemoteMsgs    uint64 // control messages sent
	Barriers      uint64
}

// Add accumulates another node's stats.
func (s *Stats) Add(o Stats) {
	s.Fetches += o.Fetches
	s.FetchBytes += o.FetchBytes
	s.Twins += o.Twins
	s.DiffOps += o.DiffOps
	s.DiffMsgs += o.DiffMsgs
	s.DiffBytes += o.DiffBytes
	s.Invalidations += o.Invalidations
	s.LockAcquires += o.LockAcquires
	s.RemoteMsgs += o.RemoteMsgs
	s.Barriers += o.Barriers
}

// Instance is one node's DSM runtime.
type Instance struct {
	sys    *System
	node   *cluster.Node
	self   int
	n      int
	conns  []*core.Conn // by peer node id; nil at self
	env    *sim.Env
	sqPend []int // outstanding SQ completions per peer (Core.UseSQ)

	shared       uint64 // base of the shared mirror in endpoint memory
	pages        int
	state        []uint8
	twins        map[int][]byte
	dirty        map[int]bool
	pendingInval map[int]bool // deferred invalidations for dirty pages
	// sinceBarrier records every page this node has dirtied since its
	// last barrier, even if already flushed at a lock release. Lock
	// grants carry only the lock's own notice history, so the barrier
	// must re-advertise these for nodes that never acquired the lock —
	// this is the transitivity that full LRC gets from vector-timestamp
	// intervals.
	sinceBarrier map[uint32]uint64 // page -> writer bitmask (self only)

	// Message plumbing (see sync.go, diff.go).
	inboxCtrl   uint64 // base of control slots
	inboxNotice uint64 // base of notice buffers
	inboxDiff   uint64 // base of per-sender diff staging buffers
	outCtrl     uint64 // staging for outgoing control messages
	outNotice   uint64 // staging for outgoing notice arrays
	outDiff     uint64 // staging for outgoing diff batches
	maxNotices  int

	notify    *sim.Mailbox[core.Notification]
	grantMb   sim.Mailbox[struct{}]
	ackMb     sim.Mailbox[struct{}]
	barMb     sim.Mailbox[struct{}]
	diffAckMb sim.Mailbox[struct{}]

	// Lock manager state for locks homed here.
	locks map[int]*lockState
	// Barrier master state (node 0 only).
	barArrived int
	barNotices map[uint32]uint64 // page -> writer bitmask
	barEpoch   uint32

	B     Breakdown
	Stats Stats
}

type lockState struct {
	held    bool
	holder  int
	waiters []int
	notices map[uint32]uint64 // page -> writer bitmask
}

const (
	ctrlSlotBytes = 64
	numClasses    = 8
	numNoticeBufs = 4
)

func newInstance(sys *System, node *cluster.Node, conns []*core.Conn, n, pages int) *Instance {
	in := &Instance{
		sys: sys, node: node, self: node.ID, n: n, conns: conns,
		env: node.EP.Env(), pages: pages,
		state: make([]uint8, pages),
		twins: make(map[int][]byte), dirty: make(map[int]bool),
		pendingInval: make(map[int]bool),
		locks:        make(map[int]*lockState),
		barNotices:   make(map[uint32]uint64),
		sinceBarrier: make(map[uint32]uint64),
		maxNotices:   pages,
		sqPend:       make([]int, n),
	}
	ep := node.EP
	in.shared = ep.Alloc(pages * PageSize)
	peers := n - 1
	in.inboxCtrl = ep.Alloc(peers * numClasses * ctrlSlotBytes)
	in.inboxNotice = ep.Alloc(peers * numNoticeBufs * in.maxNotices * 4)
	in.inboxDiff = ep.Alloc(peers * diffBufBytes)
	in.outCtrl = ep.Alloc(ctrlSlotBytes)
	in.outNotice = ep.Alloc(in.maxNotices * 4)
	in.outDiff = ep.Alloc(diffBufBytes)
	return in
}

func (in *Instance) start() {
	in.notify = in.node.EP.GlobalNotify()
	self := in
	in.env.Go(fmt.Sprintf("dsm-svc-%d", in.self), func(p *sim.Proc) { self.serve(p) })
}

// Node returns this instance's node id.
func (in *Instance) Node() int { return in.self }

// N returns the number of nodes in the system.
func (in *Instance) N() int { return in.n }

// Env returns the simulation environment.
func (in *Instance) Env() *sim.Env { return in.env }

// home returns the home node of a page.
func (in *Instance) home(pg int) int { return int(in.sys.homes[pg]) }

func (in *Instance) pageOf(addr uint64) int {
	if addr < in.shared || addr >= in.shared+uint64(in.pages*PageSize) {
		panic(fmt.Sprintf("dsm: address %d outside shared region", addr))
	}
	return int(addr-in.shared) / PageSize
}

func (in *Instance) pageAddr(pg int) uint64 { return in.shared + uint64(pg)*PageSize }

// mem returns the node's raw memory.
func (in *Instance) mem() []byte { return in.node.EP.Mem() }

// Mem exposes the node's raw endpoint memory (the DSM mirror lives
// inside it). Applications should use RSlice/WSlice, which maintain
// coherence; direct access is for verification and fault injection.
func (in *Instance) Mem() []byte { return in.mem() }

// Compute charges t of application computation to the node's app CPU.
func (in *Instance) Compute(p *sim.Proc, t sim.Time) {
	in.B.Compute += t
	p.Exec(in.node.CPUs.App, t)
}

// ---------------------------------------------------------------------
// Page access.
// ---------------------------------------------------------------------

// stateOf returns a page's effective state: pages homed here are always
// at least Clean (the local mirror IS the home copy), even though homes
// may be assigned after instance construction.
func (in *Instance) stateOf(pg int) uint8 {
	st := in.state[pg]
	if st == pgInvalid && in.home(pg) == in.self {
		return pgClean
	}
	return st
}

// fetchWindow bounds how many page reads a node keeps outstanding.
// MultiEdge has per-connection flow control but no congestion control
// (IPPS'07 §2.4), so an unbounded burst of page fetches from many homes
// at once overflows the receiver's switch port (incast) and collapses
// into retransmission. Real DSMs bound their fetch pipelining the same
// way.
const fetchWindow = 24

// fetch brings the given missing pages in with pipelined remote reads
// (up to fetchWindow outstanding) and accounts the wait as data time.
func (in *Instance) fetch(p *sim.Proc, pgs []int) {
	if len(pgs) == 0 {
		return
	}
	t0 := in.env.Now()
	sp := in.node.EP.Obs().StartLayerSpan(in.self, "dsm", "page-fetch", len(pgs)*PageSize)
	hs := make([]*core.Handle, 0, len(pgs))
	for i, pg := range pgs {
		if i >= fetchWindow {
			hs[i-fetchWindow].Wait(p)
		}
		addr := in.pageAddr(pg)
		c := in.conns[in.home(pg)]
		hs = append(hs, c.MustDo(p, core.Op{Remote: addr, Local: addr, Size: PageSize, Kind: frame.OpRead}))
		in.Stats.Fetches++
		in.Stats.FetchBytes += PageSize
	}
	for _, h := range hs {
		h.Wait(p)
	}
	for _, pg := range pgs {
		in.state[pg] = pgClean
	}
	sp.EndAt(in.env.Now())
	in.B.Data += in.env.Now() - t0
}

// Range is a shared-memory byte range for Prefetch.
type Range struct {
	Addr uint64
	Len  int
}

// Prefetch brings every missing page covering the given ranges in with
// concurrent remote reads — the bulk-transfer optimization a tuned
// SPLASH-2 port applies when the access pattern is known up front
// (e.g. FFT's transpose strips, Radix's permutation regions), instead
// of faulting pages one at a time.
func (in *Instance) Prefetch(p *sim.Proc, ranges []Range) {
	var missing []int
	seen := make(map[int]bool)
	for _, r := range ranges {
		if r.Len <= 0 {
			continue
		}
		last := in.pageOf(r.Addr + uint64(r.Len) - 1)
		for pg := in.pageOf(r.Addr); pg <= last; pg++ {
			if in.stateOf(pg) == pgInvalid && !seen[pg] {
				seen[pg] = true
				missing = append(missing, pg)
			}
		}
	}
	in.fetch(p, missing)
}

// RSlice makes [addr, addr+n) readable on this node and returns the
// backing bytes. The caller must not modify them (use WSlice to write).
func (in *Instance) RSlice(p *sim.Proc, addr uint64, n int) []byte {
	if n <= 0 {
		panic("dsm: empty slice request")
	}
	var missing []int
	for pg := in.pageOf(addr); pg <= in.pageOf(addr+uint64(n)-1); pg++ {
		if in.stateOf(pg) == pgInvalid {
			missing = append(missing, pg)
		}
	}
	in.fetch(p, missing)
	return in.mem()[addr : addr+uint64(n)]
}

// WSlice makes [addr, addr+n) writable: missing pages are fetched and a
// twin is created for every page not already dirty, so release-time
// diffs capture exactly the bytes the caller changes.
func (in *Instance) WSlice(p *sim.Proc, addr uint64, n int) []byte {
	b := in.RSlice(p, addr, n)
	costs := in.sys.Cl.Cfg.Costs
	var twinCost sim.Time
	for pg := in.pageOf(addr); pg <= in.pageOf(addr+uint64(n)-1); pg++ {
		if in.state[pg] == pgDirty {
			continue
		}
		pa := in.pageAddr(pg)
		in.twins[pg] = append([]byte(nil), in.mem()[pa:pa+PageSize]...)
		in.dirty[pg] = true
		in.state[pg] = pgDirty
		in.sinceBarrier[uint32(pg)] |= 1 << uint(in.self)
		in.Stats.Twins++
		twinCost += costs.Copy(PageSize)
	}
	if twinCost > 0 {
		in.B.Overhead += twinCost
		p.Exec(in.node.CPUs.App, twinCost)
	}
	return b
}

// ---------------------------------------------------------------------
// Submission-queue plumbing (Core.UseSQ).
// ---------------------------------------------------------------------

// useSQ reports whether many-small-ops phases route through the
// submission-queue path instead of eager per-op issue.
func (in *Instance) useSQ() bool { return in.sys.Cl.Cfg.Core.UseSQ }

// ringSQ rings the doorbell on the connection to peer on the given CPU,
// records the issued descriptors as pending completions, and reaps any
// completions that have already landed (polling is free).
func (in *Instance) ringSQ(p *sim.Proc, cpu *sim.Resource, to int) {
	in.sqPend[to] += in.conns[to].MustRingOn(p, cpu)
	for in.sqPend[to] > 0 {
		if _, ok := in.conns[to].PollCQ(); !ok {
			break
		}
		in.sqPend[to]--
	}
}

// drainSQ blocks until every descriptor rung on the connection to peer
// has completed — the SQ path's equivalent of waiting a handle set.
func (in *Instance) drainSQ(p *sim.Proc, to int) {
	for in.sqPend[to] > 0 {
		in.conns[to].WaitCQ(p)
		in.sqPend[to]--
	}
}

// ---------------------------------------------------------------------
// Diff flush (release-time propagation to homes).
// ---------------------------------------------------------------------

// flushDiffs pushes every dirty page's changes to its home with remote
// writes, waits for them to be performed, and returns the write notices
// (page<<8 | writer) describing what this node modified. The caller
// accounts the elapsed time to its own category (lock or barrier).
func (in *Instance) flushDiffs(p *sim.Proc) []uint32 {
	if len(in.dirty) == 0 {
		return nil
	}
	pgs := make([]int, 0, len(in.dirty))
	for pg := range in.dirty {
		pgs = append(pgs, pg)
	}
	sort.Ints(pgs)
	costs := in.sys.Cl.Cfg.Costs
	notices := make([]uint32, 0, len(pgs))
	var hs []*core.Handle
	var diffCost sim.Time
	batches := make(map[int][]diffBatch)
	useSQ := in.useSQ()
	sqHomes := make([]bool, in.n) // homes with posted-but-unrung descriptors
	for _, pg := range pgs {
		notices = append(notices, uint32(pg)<<8|uint32(in.self))
		home := in.home(pg)
		if home == in.self {
			// The local mirror is the home copy; nothing to send.
			delete(in.twins, pg)
			delete(in.dirty, pg)
			in.state[pg] = pgClean
			continue
		}
		pa := in.pageAddr(pg)
		cur := in.mem()[pa : pa+PageSize]
		twin := in.twins[pg]
		diffCost += costs.Copy(2 * PageSize) // scan twin and current copy
		runs := diffRuns(twin, cur)
		if len(runs) <= directRunMax {
			// Few contiguous changes: deposit them straight into the
			// home's memory (no home-side software). Under UseSQ the runs
			// are posted now and issued below under one doorbell per home.
			for _, r := range runs {
				if useSQ {
					in.conns[home].MustPost(core.Op{
						Remote: pa + uint64(r.off), Local: pa + uint64(r.off),
						Size: r.n, Kind: frame.OpWrite,
					})
					sqHomes[home] = true
				} else {
					hs = append(hs, in.conns[home].MustDo(p, core.Op{
						Remote: pa + uint64(r.off), Local: pa + uint64(r.off),
						Size: r.n, Kind: frame.OpWrite,
					}))
				}
				in.Stats.DiffOps++
				in.Stats.DiffBytes += uint64(r.n)
			}
		} else {
			// Fragmented page: pack the runs into a diff message the
			// home's handler applies.
			sz := pageDiffSize(runs)
			bs := batches[home]
			if len(bs) == 0 || len(bs[len(bs)-1].buf)+sz > diffBufBytes {
				bs = append(bs, diffBatch{})
			}
			last := &bs[len(bs)-1]
			last.buf = encodePageDiff(last.buf, pg, cur, runs)
			last.pages++
			batches[home] = bs
		}
		delete(in.twins, pg)
		delete(in.dirty, pg)
		if in.pendingInval[pg] {
			// A write notice arrived while the page was dirty: now that
			// our bytes are flushed, the deferred invalidation lands.
			delete(in.pendingInval, pg)
			in.state[pg] = pgInvalid
		} else {
			in.state[pg] = pgClean
		}
	}
	if diffCost > 0 {
		in.B.Overhead += diffCost
		p.Exec(in.node.CPUs.App, diffCost)
	}
	for home, posted := range sqHomes {
		if posted {
			in.ringSQ(p, in.node.CPUs.App, home)
		}
	}
	if len(batches) > 0 {
		in.sendDiffBatches(p, batches)
	}
	for _, h := range hs {
		h.Wait(p)
	}
	for home, posted := range sqHomes {
		if posted {
			in.drainSQ(p, home)
		}
	}
	return notices
}

// run is one contiguous modified byte range within a page.
type run struct {
	off, n int
}

// diffRuns compares a twin with the current page copy and returns the
// maximal contiguous modified ranges. Runs must contain ONLY modified
// bytes: concurrent writers to disjoint parts of the same page merge at
// the home through these diffs, so shipping any unmodified byte would
// overwrite another node's concurrent write with a stale value (the
// classic twin/diff false-sharing rule, as in TreadMarks/HLRC).
func diffRuns(twin, cur []byte) []run {
	var runs []run
	i := 0
	for i < len(cur) {
		if twin[i] == cur[i] {
			i++
			continue
		}
		start := i
		for i < len(cur) && twin[i] != cur[i] {
			i++
		}
		runs = append(runs, run{off: start, n: i - start})
	}
	return runs
}

// otherWriter is the sentinel writer byte in notice entries that were
// already filtered for their recipient ("written by someone else").
const otherWriter = 0xfe

// applyNotices invalidates pages modified by other nodes. Pages homed
// here are never invalidated: their local copy is the authoritative one
// that diffs update in place.
//
// A notice for a page this node currently holds DIRTY is a false-sharing
// case (another node flushed its bytes of the page while ours are still
// unflushed). Discarding the twin would lose our writes, so the
// invalidation is deferred: the page stays writable and turns Invalid at
// its next flush. Until then, reading another node's bytes from such a
// page is unsupported — none of the SPLASH-2 applications does it (they
// only false-share for disjoint writes).
func (in *Instance) applyNotices(entries []uint32) {
	for _, e := range entries {
		pg := int(e >> 8)
		writer := int(e & 0xff)
		if writer == in.self || in.home(pg) == in.self {
			continue
		}
		switch in.state[pg] {
		case pgClean:
			in.state[pg] = pgInvalid
			in.Stats.Invalidations++
		case pgDirty:
			in.pendingInval[pg] = true
			in.Stats.Invalidations++
		}
	}
}
