package dsm

import (
	"fmt"
	"testing"

	"multiedge/internal/cluster"
	"multiedge/internal/sim"
)

// TestInPlaceUpdateVisibility pins the coherence contract for in-place
// updated arrays: when an application separates its read phase from its
// write phase with a barrier (as SPLASH-2 Barnes does), every node sees
// exactly the previous step's values — never a mix. Writes to home pages
// are immediately visible to fetchers, so WITHOUT that barrier the race
// is the application's, not the DSM's.
func TestInPlaceUpdateVisibility(t *testing.T) {
	cfg := cluster.OneLink1G(16)
	cfg.Core.MemBytes = 16 << 20
	cl := cluster.New(cfg)
	sys := New(cl, cl.FullMesh(), Config{SharedBytes: 1 << 20})
	const pages = 32
	addr := sys.AllocOwned(pages * PageSize)
	const steps = 4
	bad := 0
	for _, in := range sys.Insts {
		in := in
		cl.Env.Go(fmt.Sprintf("app%d", in.Node()), func(p *sim.Proc) {
			me := in.Node()
			for s := 0; s < steps; s++ {
				full := in.RSlice(p, addr, pages*PageSize)
				for pg := 0; pg < pages; pg++ {
					if got := full[pg*PageSize]; int(got) != s {
						bad++
					}
				}
				in.Barrier(p) // read phase complete everywhere
				w := in.WSlice(p, addr+uint64(me*2*PageSize), 2*PageSize)
				for i := range w {
					w[i] = byte(s + 1)
				}
				in.Barrier(p) // write phase complete everywhere
			}
		})
	}
	cl.Env.RunUntil(60 * sim.Second)
	if bad != 0 {
		t.Fatalf("%d stale or torn page observations", bad)
	}
}
