package dsm

import (
	"encoding/binary"
	"fmt"
	"sort"

	"multiedge/internal/core"
	"multiedge/internal/frame"
	"multiedge/internal/sim"
)

// Control message classes. Each (sender, receiver, class) has a
// dedicated slot in the receiver's memory; the request/response
// discipline below guarantees a slot is never overwritten before it is
// consumed:
//
//	LockReq  -> LockGrant     (requester waits for the grant)
//	Release  -> ReleaseAck    (releaser waits for the ack)
//	Arrive   -> Go            (arriver waits for the barrier release)
//
// Grant, Release, Arrive and Go carry write-notice arrays in a separate
// per-(sender,class) notice buffer; the control message is written with
// a backward fence so the receiver observes the notices first.
const (
	msgLockReq = iota + 1
	msgLockGrant
	msgRelease
	msgReleaseAck
	msgArrive
	msgGo
	msgDiff // lock field = page count in the sender's staging buffer
	msgDiffAck
)

// noticeIdx maps notice-carrying classes to their buffer index.
func noticeIdx(class int) int {
	switch class {
	case msgLockGrant:
		return 0
	case msgRelease:
		return 1
	case msgArrive:
		return 2
	case msgGo:
		return 3
	}
	return -1
}

// peerIndex returns the index of peer in node's inbox layout (peers are
// the n-1 other nodes, in node-id order).
func peerIndex(node, peer int) int {
	if peer < node {
		return peer
	}
	return peer - 1
}

// slotAddr returns the address of the (sender, class) control slot in
// the receiver's memory. The layout is identical on every node, so the
// sender can compute it locally.
func (in *Instance) slotAddr(receiverInbox uint64, sender, receiver, class int) uint64 {
	q := peerIndex(receiver, sender)
	return receiverInbox + uint64((q*numClasses+(class-1))*ctrlSlotBytes)
}

func (in *Instance) noticeAddr(receiverNotice uint64, sender, receiver, class int) uint64 {
	q := peerIndex(receiver, sender)
	return receiverNotice + uint64((q*numNoticeBufs+noticeIdx(class))*in.maxNotices*4)
}

// sendMsg writes a control message (and its notice array, if any) into
// the receiver's inbox. handler selects which CPU the initiation is
// charged to: application context or the service process standing in
// for a kernel-side handler.
func (in *Instance) sendMsg(p *sim.Proc, to, class, lock int, epoch uint32, notices []uint32, handler bool) {
	if to == in.self {
		panic("dsm: sendMsg to self")
	}
	cpu := in.node.CPUs.App
	if handler {
		cpu = in.node.CPUs.Proto
	}
	c := in.conns[to]
	mem := in.mem()
	useSQ := in.useSQ()
	if len(notices) > 0 {
		if len(notices) > in.maxNotices {
			panic("dsm: notice array overflow")
		}
		for i, e := range notices {
			binary.LittleEndian.PutUint32(mem[in.outNotice+uint64(4*i):], e)
		}
		op := core.Op{
			Remote: in.noticeAddr(in.inboxNotice, in.self, to, class),
			Local:  in.outNotice, Size: 4 * len(notices), Kind: frame.OpWrite,
		}
		if useSQ {
			c.MustPost(op)
		} else {
			c.MustDoOn(p, cpu, op)
		}
	}
	b := mem[in.outCtrl : in.outCtrl+ctrlSlotBytes]
	b[0] = byte(class)
	binary.LittleEndian.PutUint32(b[1:], uint32(lock))
	binary.LittleEndian.PutUint32(b[5:], epoch)
	binary.LittleEndian.PutUint32(b[9:], uint32(len(notices)))
	// Backward fence: performed only after the notice write above (and
	// anything else outstanding on this connection) has been performed.
	op := core.Op{
		Remote: in.slotAddr(in.inboxCtrl, in.self, to, class),
		Local:  in.outCtrl, Size: ctrlSlotBytes, Kind: frame.OpWrite,
		Flags: frame.FenceBefore | frame.Notify,
	}
	if useSQ {
		// Notice array and control slot issue under a single doorbell.
		c.MustPost(op)
		in.ringSQ(p, cpu, to)
	} else {
		c.MustDoOn(p, cpu, op)
	}
	in.Stats.RemoteMsgs++
}

// readMsg parses the control slot a notification points at, plus its
// notice array.
func (in *Instance) readMsg(from int, addr uint64) (class, lock int, epoch uint32, notices []uint32) {
	mem := in.mem()
	b := mem[addr : addr+ctrlSlotBytes]
	class = int(b[0])
	lock = int(binary.LittleEndian.Uint32(b[1:]))
	epoch = binary.LittleEndian.Uint32(b[5:])
	nn := int(binary.LittleEndian.Uint32(b[9:]))
	if idx := noticeIdx(class); idx >= 0 && nn > 0 {
		na := in.noticeAddr(in.inboxNotice, from, in.self, class)
		notices = make([]uint32, nn)
		for i := range notices {
			notices[i] = binary.LittleEndian.Uint32(mem[na+uint64(4*i):])
		}
	}
	return class, lock, epoch, notices
}

// serve is the per-node service process: GeNIMA's protocol handler. It
// consumes every notification the endpoint delivers and dispatches on
// the message class.
func (in *Instance) serve(p *sim.Proc) {
	for {
		n := in.notify.Recv(p)
		class, lock, epoch, notices := in.readMsg(n.From, n.Addr)
		switch class {
		case msgLockReq:
			in.handleLockReq(p, lock, n.From)
		case msgLockGrant:
			in.applyNotices(notices)
			in.grantMb.Send(in.env, struct{}{})
		case msgRelease:
			in.handleRelease(p, lock, n.From, notices)
		case msgReleaseAck:
			in.ackMb.Send(in.env, struct{}{})
		case msgArrive:
			in.handleArrive(p, epoch, notices, true)
		case msgGo:
			in.applyNotices(notices)
			in.barMb.Send(in.env, struct{}{})
		case msgDiff:
			in.handleDiff(p, n.From, lock)
		case msgDiffAck:
			in.diffAckMb.Send(in.env, struct{}{})
		default:
			panic(fmt.Sprintf("dsm: node %d: bad message class %d from %d", in.self, class, n.From))
		}
	}
}

// ---------------------------------------------------------------------
// Locks: distributed managers, one home per lock id, FIFO queueing,
// write notices carried on the grant (lazy invalidation).
// ---------------------------------------------------------------------

func (in *Instance) lockHome(lock int) int { return lock % in.n }

func (in *Instance) lockState(lock int) *lockState {
	ls, ok := in.locks[lock]
	if !ok {
		ls = &lockState{notices: make(map[uint32]uint64)}
		in.locks[lock] = ls
	}
	return ls
}

// mergeNotices folds raw notice entries (page<<8 | writer) into a
// page -> writer-bitmask map.
func mergeNotices(dst map[uint32]uint64, entries []uint32) {
	for _, e := range entries {
		dst[e>>8] |= 1 << (e & 0xff)
	}
}

// filterNotices returns, in deterministic order, one entry per page in
// the set that was written by anyone other than `recipient`. The writer
// byte carries the sentinel `otherWriter`: the filtering already
// guarantees the recipient must invalidate.
func filterNotices(set map[uint32]uint64, recipient int) []uint32 {
	out := make([]uint32, 0, len(set))
	for pg, mask := range set {
		if mask&^(1<<uint(recipient)) != 0 {
			out = append(out, pg<<8|otherWriter)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// grantTo hands the lock to node `to`, shipping the accumulated write
// notices so the new holder invalidates stale pages.
func (in *Instance) grantTo(p *sim.Proc, lock, to int, handler bool) {
	ls := in.lockState(lock)
	ls.held = true
	ls.holder = to
	if to == in.self {
		in.applyNotices(filterNotices(ls.notices, in.self))
		in.grantMb.Send(in.env, struct{}{})
		return
	}
	in.sendMsg(p, to, msgLockGrant, lock, 0, filterNotices(ls.notices, to), handler)
}

func (in *Instance) handleLockReq(p *sim.Proc, lock, from int) {
	ls := in.lockState(lock)
	if ls.held {
		ls.waiters = append(ls.waiters, from)
		return
	}
	in.grantTo(p, lock, from, true)
}

func (in *Instance) handleRelease(p *sim.Proc, lock, from int, notices []uint32) {
	ls := in.lockState(lock)
	mergeNotices(ls.notices, notices)
	in.sendMsg(p, from, msgReleaseAck, lock, 0, nil, true)
	in.releaseLock(p, lock, true)
}

// releaseLock marks the lock free and grants it to the next waiter.
func (in *Instance) releaseLock(p *sim.Proc, lock int, handler bool) {
	ls := in.lockState(lock)
	ls.held = false
	if len(ls.waiters) > 0 {
		next := ls.waiters[0]
		ls.waiters = ls.waiters[:copy(ls.waiters, ls.waiters[1:])]
		in.grantTo(p, lock, next, handler)
	}
}

// Acquire blocks until the lock is held by this node. Write notices
// accumulated under the lock are applied (stale pages invalidated)
// before it returns.
func (in *Instance) Acquire(p *sim.Proc, lock int) {
	t0 := in.env.Now()
	in.Stats.LockAcquires++
	home := in.lockHome(lock)
	if home == in.self {
		ls := in.lockState(lock)
		if !ls.held {
			in.grantTo(p, lock, in.self, false)
		} else {
			ls.waiters = append(ls.waiters, in.self)
		}
	} else {
		in.sendMsg(p, home, msgLockReq, lock, 0, nil, false)
	}
	in.grantMb.Recv(p)
	in.B.Lock += in.env.Now() - t0
}

// Release flushes this node's modifications to their homes, then hands
// the lock back to its manager along with the write notices.
func (in *Instance) Release(p *sim.Proc, lock int) {
	t0 := in.env.Now()
	notices := in.flushDiffs(p)
	home := in.lockHome(lock)
	if home == in.self {
		ls := in.lockState(lock)
		mergeNotices(ls.notices, notices)
		in.releaseLock(p, lock, false)
	} else {
		in.sendMsg(p, home, msgRelease, lock, 0, notices, false)
		in.ackMb.Recv(p)
	}
	in.B.Lock += in.env.Now() - t0
}

// ---------------------------------------------------------------------
// Barrier: flat master (node 0) collecting arrivals and write notices,
// broadcasting the union on release.
// ---------------------------------------------------------------------

// Barrier flushes dirty pages, waits until every node has arrived, and
// applies the union of all nodes' write notices before returning.
func (in *Instance) Barrier(p *sim.Proc) {
	t0 := in.env.Now()
	in.Stats.Barriers++
	in.flushDiffs(p)
	// Advertise everything dirtied since the last barrier (including
	// pages already flushed at lock releases): see sinceBarrier.
	notices := make([]uint32, 0, len(in.sinceBarrier))
	for pg := range in.sinceBarrier {
		notices = append(notices, pg<<8|uint32(in.self))
	}
	sort.Slice(notices, func(i, j int) bool { return notices[i] < notices[j] })
	in.sinceBarrier = make(map[uint32]uint64)
	if in.self == 0 {
		in.handleArrive(p, in.barEpoch, notices, false)
	} else {
		in.sendMsg(p, 0, msgArrive, 0, in.barEpoch, notices, false)
	}
	in.barEpoch++
	in.barMb.Recv(p)
	in.B.Barrier += in.env.Now() - t0
}

// handleArrive runs at the master: collect arrivals; on the last one,
// broadcast the combined notices and release everyone.
func (in *Instance) handleArrive(p *sim.Proc, epoch uint32, notices []uint32, handler bool) {
	if in.self != 0 {
		panic("dsm: barrier arrival at non-master")
	}
	if epoch != in.barEpoch && epoch+1 != in.barEpoch {
		panic(fmt.Sprintf("dsm: barrier epoch skew: got %d at %d", epoch, in.barEpoch))
	}
	mergeNotices(in.barNotices, notices)
	in.barArrived++
	if in.barArrived < in.n {
		return
	}
	in.barArrived = 0
	set := in.barNotices
	in.barNotices = make(map[uint32]uint64)
	for peer := 0; peer < in.n; peer++ {
		if peer == in.self {
			continue
		}
		in.sendMsg(p, peer, msgGo, 0, epoch, filterNotices(set, peer), handler)
	}
	in.applyNotices(filterNotices(set, in.self))
	in.barMb.Send(in.env, struct{}{})
}
