package dsm

import (
	"encoding/binary"
	"fmt"

	"multiedge/internal/core"
	"multiedge/internal/frame"
	"multiedge/internal/sim"
)

// Diff propagation. A page with few modified runs is flushed with direct
// remote writes into the home's memory (zero home-side software — the
// GeNIMA idea). A heavily fragmented page (e.g. Radix's scattered 4-byte
// permutation writes) would cost one operation per run that way, so its
// runs are packed into a diff message: one bulk remote write into a
// per-sender staging buffer at the home plus a notification; the home's
// protocol handler unpacks and applies the runs, charging the protocol
// CPU, and acknowledges. One diff batch per (sender, home) is
// outstanding at a time, which is what makes the staging buffer safe to
// reuse.

// directRunMax is the run count up to which a page is flushed with
// direct remote writes instead of a packed diff message.
const directRunMax = 4

// diffBufBytes sizes the per-sender diff staging area at each node. A
// single page's packed diff is at most ~12.3 KB (worst case alternating
// bytes), so every page fits; batches pack multiple pages up to this
// limit.
const diffBufBytes = 32 << 10

// encodePageDiff appends one page's diff to buf:
// [u32 page][u16 nRuns][per run: u16 off, u16 len, data...].
func encodePageDiff(buf []byte, pg int, cur []byte, runs []run) []byte {
	var hdr [6]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(pg))
	binary.LittleEndian.PutUint16(hdr[4:], uint16(len(runs)))
	buf = append(buf, hdr[:]...)
	for _, r := range runs {
		var rh [4]byte
		binary.LittleEndian.PutUint16(rh[0:], uint16(r.off))
		binary.LittleEndian.PutUint16(rh[2:], uint16(r.n))
		buf = append(buf, rh[:]...)
		buf = append(buf, cur[r.off:r.off+r.n]...)
	}
	return buf
}

// pageDiffSize returns the encoded size of a page diff.
func pageDiffSize(runs []run) int {
	n := 6
	for _, r := range runs {
		n += 4 + r.n
	}
	return n
}

// applyDiffBatch decodes a batch from the local diff staging area and
// applies the runs to this node's (home) memory. It returns the payload
// byte count and run count for cost accounting.
func (in *Instance) applyDiffBatch(buf []byte, pages int) (bytes, runs int) {
	mem := in.mem()
	off := 0
	for p := 0; p < pages; p++ {
		pg := int(binary.LittleEndian.Uint32(buf[off:]))
		nRuns := int(binary.LittleEndian.Uint16(buf[off+4:]))
		off += 6
		if in.home(pg) != in.self {
			panic(fmt.Sprintf("dsm: node %d received diff for page %d homed at %d",
				in.self, pg, in.home(pg)))
		}
		base := in.pageAddr(pg)
		for r := 0; r < nRuns; r++ {
			ro := int(binary.LittleEndian.Uint16(buf[off:]))
			rn := int(binary.LittleEndian.Uint16(buf[off+2:]))
			off += 4
			copy(mem[base+uint64(ro):base+uint64(ro)+uint64(rn)], buf[off:off+rn])
			off += rn
			bytes += rn
			runs++
		}
	}
	return bytes, runs
}

// diffBatch is one packed batch of page diffs destined for a home.
type diffBatch struct {
	buf   []byte
	pages int
}

// sendDiffBatches ships the queued per-home diff batches: one in flight
// per home, all homes in parallel, each batch a bulk write into the
// home's staging area followed by a fenced Diff control message. It
// blocks until every batch is acknowledged (acknowledged = applied, so
// a subsequent release message anywhere is safe).
func (in *Instance) sendDiffBatches(p *sim.Proc, batches map[int][]diffBatch) {
	order := make([]int, 0, len(batches))
	for home := range batches {
		order = append(order, home)
	}
	sortInts(order)
	idx := make(map[int]int, len(order))
	for len(order) > 0 {
		outstanding := 0
		for _, home := range order {
			in.sendDiff(p, home, batches[home][idx[home]])
			outstanding++
		}
		for i := 0; i < outstanding; i++ {
			in.diffAckMb.Recv(p)
		}
		var next []int
		for _, home := range order {
			idx[home]++
			if idx[home] < len(batches[home]) {
				next = append(next, home)
			}
		}
		order = next
	}
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// sendDiff writes one encoded batch into the home's staging buffer and
// sends the Diff control message (fenced behind the buffer write, its
// lock field carrying the page count).
func (in *Instance) sendDiff(p *sim.Proc, home int, b diffBatch) {
	mem := in.mem()
	copy(mem[in.outDiff:], b.buf)
	dst := in.diffBufAddr(in.self, home)
	c := in.conns[home]
	c.MustDo(p, core.Op{Remote: dst, Local: in.outDiff, Size: len(b.buf), Kind: frame.OpWrite})
	in.sendMsg(p, home, msgDiff, b.pages, 0, nil, false)
	in.Stats.DiffMsgs++
}

// diffBufAddr returns the address of sender's diff staging area at the
// receiver (identical layout on every node).
func (in *Instance) diffBufAddr(sender, receiver int) uint64 {
	q := peerIndex(receiver, sender)
	return in.inboxDiff + uint64(q*diffBufBytes)
}

// handleDiff runs at the home: unpack, apply (charging the protocol CPU
// like GeNIMA's handler), acknowledge.
func (in *Instance) handleDiff(p *sim.Proc, from, pages int) {
	buf := in.mem()[in.diffBufAddr(from, in.self) : in.diffBufAddr(from, in.self)+diffBufBytes]
	bytes, runs := in.applyDiffBatch(buf, pages)
	costs := in.sys.Cl.Cfg.Costs
	cost := costs.Copy(bytes) + sim.Time(runs)*200*sim.Nanosecond
	p.Exec(in.node.CPUs.Proto, cost)
	in.Stats.DiffBytes += uint64(bytes)
	in.sendMsg(p, from, msgDiffAck, 0, 0, nil, true)
}
