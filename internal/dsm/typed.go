package dsm

import (
	"encoding/binary"
	"math"
)

// Typed element accessors over shared byte slices. All shared data is
// little-endian, matching the Opteron nodes of the paper's cluster.

// F64 reads the i-th float64 of b.
func F64(b []byte, i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
}

// SetF64 writes the i-th float64 of b.
func SetF64(b []byte, i int, v float64) {
	binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
}

// U32 reads the i-th uint32 of b.
func U32(b []byte, i int) uint32 { return binary.LittleEndian.Uint32(b[4*i:]) }

// SetU32 writes the i-th uint32 of b.
func SetU32(b []byte, i int, v uint32) { binary.LittleEndian.PutUint32(b[4*i:], v) }

// U64 reads the i-th uint64 of b.
func U64(b []byte, i int) uint64 { return binary.LittleEndian.Uint64(b[8*i:]) }

// SetU64 writes the i-th uint64 of b.
func SetU64(b []byte, i int, v uint64) { binary.LittleEndian.PutUint64(b[8*i:], v) }

// I64 reads the i-th int64 of b.
func I64(b []byte, i int) int64 { return int64(binary.LittleEndian.Uint64(b[8*i:])) }

// SetI64 writes the i-th int64 of b.
func SetI64(b []byte, i int, v int64) { binary.LittleEndian.PutUint64(b[8*i:], uint64(v)) }
