package dsm

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"multiedge/internal/cluster"
	"multiedge/internal/sim"
)

// build creates a DSM over a small cluster. kind selects the cluster
// configuration: "1g", "2l" (strict), "2lu", "10g".
func build(t *testing.T, nodes int, kind string, shared int) *System {
	t.Helper()
	var cfg cluster.Config
	switch kind {
	case "1g":
		cfg = cluster.OneLink1G(nodes)
	case "2l":
		cfg = cluster.TwoLink1G(nodes)
	case "2lu":
		cfg = cluster.TwoLinkUnordered1G(nodes)
	case "10g":
		cfg = cluster.OneLink10G(nodes)
	default:
		t.Fatalf("bad kind %q", kind)
	}
	cfg.Core.MemBytes = shared + (1 << 22)
	cl := cluster.New(cfg)
	conns := cl.FullMesh()
	return New(cl, conns, Config{SharedBytes: shared})
}

// spawnAll runs fn on every node as that node's application process and
// drives the simulation until all return. It fails the test if any node
// does not finish.
func spawnAll(t *testing.T, sys *System, horizon sim.Time, fn func(p *sim.Proc, in *Instance)) {
	t.Helper()
	done := 0
	for _, in := range sys.Insts {
		in := in
		sys.Cl.Env.Go(fmt.Sprintf("app-%d", in.Node()), func(p *sim.Proc) {
			fn(p, in)
			done++
		})
	}
	sys.Cl.Env.RunUntil(horizon)
	if done != len(sys.Insts) {
		t.Fatalf("only %d/%d nodes finished", done, len(sys.Insts))
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	sys := build(t, 4, "1g", 1<<20)
	var after [4]sim.Time
	spawnAll(t, sys, 10*sim.Second, func(p *sim.Proc, in *Instance) {
		p.Sleep(sim.Time(in.Node()) * sim.Millisecond) // stagger arrivals
		in.Barrier(p)
		after[in.Node()] = in.Env().Now()
	})
	// Everybody leaves the barrier after the last arrival (3 ms).
	for i, at := range after {
		if at < 3*sim.Millisecond {
			t.Errorf("node %d left barrier at %v, before last arrival", i, at)
		}
	}
}

func TestBarrierRepeats(t *testing.T) {
	sys := build(t, 3, "1g", 1<<20)
	counts := make([]int, 3)
	spawnAll(t, sys, 20*sim.Second, func(p *sim.Proc, in *Instance) {
		for i := 0; i < 10; i++ {
			in.Barrier(p)
			counts[in.Node()]++
		}
	})
	for i, c := range counts {
		if c != 10 {
			t.Errorf("node %d completed %d barriers", i, c)
		}
	}
}

func TestSharedWriteVisibleAfterBarrier(t *testing.T) {
	sys := build(t, 4, "1g", 1<<20)
	addr := sys.Alloc(4 * 8)
	spawnAll(t, sys, 10*sim.Second, func(p *sim.Proc, in *Instance) {
		me := in.Node()
		b := in.WSlice(p, addr+uint64(8*me), 8)
		SetF64(b, 0, float64(me)*1.5)
		in.Barrier(p)
		all := in.RSlice(p, addr, 4*8)
		for j := 0; j < 4; j++ {
			if got := F64(all, j); got != float64(j)*1.5 {
				t.Errorf("node %d sees slot %d = %v, want %v", me, j, got, float64(j)*1.5)
			}
		}
	})
}

func TestFalseSharingMerges(t *testing.T) {
	// All nodes write disjoint ranges of the SAME page; after the
	// barrier everyone must see the merged result (twin/diff semantics).
	sys := build(t, 4, "2lu", 1<<20)
	addr := sys.AllocPages(PageSize)
	const per = PageSize / 4
	spawnAll(t, sys, 10*sim.Second, func(p *sim.Proc, in *Instance) {
		me := in.Node()
		b := in.WSlice(p, addr+uint64(me*per), per)
		for i := range b {
			b[i] = byte(me + 1)
		}
		in.Barrier(p)
		full := in.RSlice(p, addr, PageSize)
		for j := 0; j < 4; j++ {
			for i := 0; i < per; i++ {
				if full[j*per+i] != byte(j+1) {
					t.Fatalf("node %d: byte %d of quarter %d = %d, want %d",
						me, i, j, full[j*per+i], j+1)
				}
			}
		}
	})
}

func TestLockMutualExclusion(t *testing.T) {
	// Classic counter increment under a lock: with mutual exclusion and
	// coherence the total is exact.
	sys := build(t, 4, "1g", 1<<20)
	addr := sys.AllocPages(8)
	const perNode = 25
	spawnAll(t, sys, 60*sim.Second, func(p *sim.Proc, in *Instance) {
		for i := 0; i < perNode; i++ {
			in.Acquire(p, 3)
			b := in.WSlice(p, addr, 8)
			SetU64(b, 0, U64(b, 0)+1)
			in.Release(p, 3)
		}
		in.Barrier(p)
		b := in.RSlice(p, addr, 8)
		if got := U64(b, 0); got != 4*perNode {
			t.Errorf("node %d: counter = %d, want %d", in.Node(), got, 4*perNode)
		}
	})
}

func TestLockMutualExclusionOverlapDetector(t *testing.T) {
	// Record critical-section intervals in shared memory and verify no
	// two overlap.
	sys := build(t, 3, "2lu", 1<<20)
	const iters = 10
	type iv struct{ in, out sim.Time }
	var ivs []iv
	spawnAll(t, sys, 60*sim.Second, func(p *sim.Proc, in *Instance) {
		for i := 0; i < iters; i++ {
			in.Acquire(p, 7)
			enter := in.Env().Now()
			in.Compute(p, 50*sim.Microsecond)
			ivs = append(ivs, iv{enter, in.Env().Now()})
			in.Release(p, 7)
		}
	})
	if len(ivs) != 3*iters {
		t.Fatalf("%d critical sections, want %d", len(ivs), 3*iters)
	}
	for i := range ivs {
		for j := i + 1; j < len(ivs); j++ {
			a, b := ivs[i], ivs[j]
			if a.in < b.out && b.in < a.out {
				t.Fatalf("critical sections overlap: [%v,%v] and [%v,%v]", a.in, a.out, b.in, b.out)
			}
		}
	}
}

func TestLockProtectedDataVisibility(t *testing.T) {
	// A chain of nodes each increments a value under the same lock; the
	// grant's write notices must invalidate stale copies so every node
	// sees the latest value.
	sys := build(t, 4, "2lu", 1<<20)
	addr := sys.AllocPages(16)
	rounds := 5
	spawnAll(t, sys, 120*sim.Second, func(p *sim.Proc, in *Instance) {
		for r := 0; r < rounds; r++ {
			for turn := 0; turn < in.N(); turn++ {
				in.Acquire(p, 0)
				b := in.WSlice(p, addr, 16)
				if turn == in.Node() {
					SetU64(b, 0, U64(b, 0)+uint64(in.Node())+1)
				}
				in.Release(p, 0)
			}
		}
		in.Barrier(p)
		b := in.RSlice(p, addr, 16)
		want := uint64(rounds * (1 + 2 + 3 + 4))
		if got := U64(b, 0); got != want {
			t.Errorf("node %d: value %d, want %d", in.Node(), got, want)
		}
	})
}

func TestReadMostlySharing(t *testing.T) {
	// Node 0 initializes a large region; all others read it after a
	// barrier. Fetches must happen; data must be exact.
	sys := build(t, 4, "1g", 1<<21)
	const n = 1 << 20
	addr := sys.AllocPages(n)
	spawnAll(t, sys, 30*sim.Second, func(p *sim.Proc, in *Instance) {
		if in.Node() == 0 {
			b := in.WSlice(p, addr, n)
			for i := 0; i < n; i += 97 {
				b[i] = byte(i * 13)
			}
		}
		in.Barrier(p)
		b := in.RSlice(p, addr, n)
		for i := 0; i < n; i += 97 {
			if b[i] != byte(i*13) {
				t.Fatalf("node %d: b[%d] = %d", in.Node(), i, b[i])
			}
		}
	})
	var st Stats
	for _, in := range sys.Insts {
		st.Add(in.Stats)
	}
	if st.Fetches == 0 {
		t.Error("no page fetches despite remote reads")
	}
	if st.DiffOps+st.DiffMsgs == 0 {
		t.Error("no diffs despite remote-homed writes")
	}
	if st.DiffMsgs == 0 {
		t.Error("fragmented pages (every 97th byte) did not use packed diff messages")
	}
}

func TestInvalidationAfterRemoteWrite(t *testing.T) {
	// Node 0 writes a value; barrier; node 1 reads it; node 0 writes a
	// NEW value; barrier; node 1 must see the new value (its cached
	// copy must have been invalidated by the write notice).
	sys := build(t, 2, "1g", 1<<20)
	addr := sys.AllocPages(8)
	spawnAll(t, sys, 30*sim.Second, func(p *sim.Proc, in *Instance) {
		if in.Node() == 0 {
			SetU64(in.WSlice(p, addr, 8), 0, 111)
		}
		in.Barrier(p)
		if got := U64(in.RSlice(p, addr, 8), 0); got != 111 {
			t.Errorf("node %d: first read = %d", in.Node(), got)
		}
		in.Barrier(p)
		if in.Node() == 0 {
			SetU64(in.WSlice(p, addr, 8), 0, 222)
		}
		in.Barrier(p)
		if got := U64(in.RSlice(p, addr, 8), 0); got != 222 {
			t.Errorf("node %d: second read = %d, stale copy not invalidated", in.Node(), got)
		}
	})
	if sys.Insts[1].Stats.Invalidations == 0 {
		t.Error("node 1 recorded no invalidations")
	}
}

func TestBreakdownAccounting(t *testing.T) {
	sys := build(t, 2, "1g", 1<<20)
	addr := sys.AllocPages(PageSize)
	spawnAll(t, sys, 30*sim.Second, func(p *sim.Proc, in *Instance) {
		in.Compute(p, 2*sim.Millisecond)
		if in.Node() == 0 {
			b := in.WSlice(p, addr, PageSize)
			b[0] = 1
		}
		in.Barrier(p)
		in.RSlice(p, addr, PageSize)
		in.Barrier(p)
	})
	for i, in := range sys.Insts {
		if in.B.Compute != 2*sim.Millisecond {
			t.Errorf("node %d compute = %v", i, in.B.Compute)
		}
		if in.B.Barrier <= 0 {
			t.Errorf("node %d barrier time = %v", i, in.B.Barrier)
		}
	}
	// Node 1 reads a page homed at... page homed at node pg%2; ensure
	// at least one node recorded data wait.
	if sys.Insts[0].B.Data+sys.Insts[1].B.Data <= 0 {
		t.Error("no data wait recorded")
	}
}

func TestDiffRuns(t *testing.T) {
	twin := make([]byte, 256)
	cur := append([]byte(nil), twin...)
	if runs := diffRuns(twin, cur); len(runs) != 0 {
		t.Fatalf("identical pages produced runs: %v", runs)
	}
	cur[10] = 1
	cur[11] = 2
	cur[200] = 3
	runs := diffRuns(twin, cur)
	if len(runs) != 2 {
		t.Fatalf("runs = %v, want 2", runs)
	}
	if runs[0].off != 10 || runs[0].n != 2 || runs[1].off != 200 || runs[1].n != 1 {
		t.Fatalf("runs = %v", runs)
	}
	// Runs never include unmodified bytes: a merged run would overwrite
	// another node's concurrent writes in the gap with stale data.
	cur2 := append([]byte(nil), twin...)
	cur2[0] = 1
	cur2[50] = 1
	runs = diffRuns(twin, cur2)
	if len(runs) != 2 || runs[0].n != 1 || runs[1].off != 50 || runs[1].n != 1 {
		t.Fatalf("runs include unmodified gap bytes: %v", runs)
	}
	// Adjacent modified bytes form one run.
	cur3 := append([]byte(nil), twin...)
	for i := 30; i < 38; i++ {
		cur3[i] = 9
	}
	if runs = diffRuns(twin, cur3); len(runs) != 1 || runs[0].off != 30 || runs[0].n != 8 {
		t.Fatalf("contiguous run split or wrong: %v", runs)
	}
}

func TestTypedAccessors(t *testing.T) {
	b := make([]byte, 64)
	SetF64(b, 2, 3.25)
	if F64(b, 2) != 3.25 {
		t.Error("F64 round trip failed")
	}
	SetU32(b, 1, 0xdeadbeef)
	if U32(b, 1) != 0xdeadbeef {
		t.Error("U32 round trip failed")
	}
	SetU64(b, 4, 1<<40)
	if U64(b, 4) != 1<<40 {
		t.Error("U64 round trip failed")
	}
	SetI64(b, 5, -77)
	if I64(b, 5) != -77 {
		t.Error("I64 round trip failed")
	}
}

func TestAllocPagesSeparation(t *testing.T) {
	sys := build(t, 2, "1g", 1<<20)
	a := sys.AllocPages(10)
	b := sys.AllocPages(10)
	if a/PageSize == b/PageSize {
		t.Error("AllocPages allocations share a page")
	}
	if a%64 != 0 {
		t.Error("allocation not aligned")
	}
}

func TestDSMOverLossyMultiLink(t *testing.T) {
	// The full stack under adversity: two unordered links with loss.
	cfg := cluster.TwoLinkUnordered1G(3)
	cfg.Link.LossProb = 0.01
	cfg.Seed = 77
	cfg.Core.MemBytes = 1<<20 + 1<<22
	cl := cluster.New(cfg)
	sys := New(cl, cl.FullMesh(), Config{SharedBytes: 1 << 20})
	addr := sys.AllocPages(3 * PageSize)
	done := 0
	for _, in := range sys.Insts {
		in := in
		cl.Env.Go(fmt.Sprintf("app%d", in.Node()), func(p *sim.Proc) {
			for r := 0; r < 5; r++ {
				b := in.WSlice(p, addr+uint64(in.Node()*PageSize), PageSize)
				for i := range b {
					b[i] = byte(r + in.Node())
				}
				in.Barrier(p)
				for j := 0; j < 3; j++ {
					rb := in.RSlice(p, addr+uint64(j*PageSize), PageSize)
					if rb[100] != byte(r+j) {
						t.Errorf("node %d round %d: page %d = %d, want %d",
							in.Node(), r, j, rb[100], r+j)
					}
				}
				in.Barrier(p)
			}
			done++
		})
	}
	cl.Env.RunUntil(120 * sim.Second)
	if done != 3 {
		t.Fatalf("only %d/3 nodes finished under loss", done)
	}
}

func TestManyLocksManyNodes(t *testing.T) {
	// Several locks with different homes, contended by all nodes.
	sys := build(t, 5, "1g", 1<<20)
	addrs := make([]uint64, 7)
	for i := range addrs {
		addrs[i] = sys.AllocPages(8)
	}
	spawnAll(t, sys, 120*sim.Second, func(p *sim.Proc, in *Instance) {
		for i := 0; i < 20; i++ {
			l := (i*3 + in.Node()) % 7
			in.Acquire(p, l)
			b := in.WSlice(p, addrs[l], 8)
			SetU64(b, 0, U64(b, 0)+1)
			in.Release(p, l)
		}
		in.Barrier(p)
	})
	// Each lock's counter must equal the number of increments under it.
	want := make([]uint64, 7)
	for node := 0; node < 5; node++ {
		for i := 0; i < 20; i++ {
			want[(i*3+node)%7]++
		}
	}
	in0 := sys.Insts[0]
	sys.Cl.Env.Go("check", func(p *sim.Proc) {
		for l := range addrs {
			b := in0.RSlice(p, addrs[l], 8)
			if got := U64(b, 0); got != want[l] {
				t.Errorf("lock %d counter = %d, want %d", l, got, want[l])
			}
		}
	})
	sys.Cl.Env.RunUntil(130 * sim.Second)
}

// TestPropertyRandomProgram generates random barrier-synchronized
// programs — each epoch every node writes a deterministic pseudo-random
// slice of its own region, and after the barrier every node reads
// random ranges of the whole block — and checks every read against a
// precomputed sequential memory model. This is the DSM's end-to-end
// coherence checker.
func TestPropertyRandomProgram(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short")
	}
	f := func(seed int64, twoLinks, lossy bool) bool {
		const (
			nodes     = 4
			epochs    = 5
			regionPer = 2 * PageSize
		)
		shared := nodes * regionPer
		var cfg cluster.Config
		if twoLinks {
			cfg = cluster.TwoLinkUnordered1G(nodes)
		} else {
			cfg = cluster.OneLink1G(nodes)
		}
		if lossy {
			cfg.Link.LossProb = 0.008
		}
		cfg.Seed = seed
		cfg.Core.MemBytes = shared + (8 << 20)
		cl := cluster.New(cfg)
		sys := New(cl, cl.FullMesh(), Config{SharedBytes: shared})
		base := sys.AllocPages(shared - PageSize)
		blk := shared - PageSize

		// Deterministic write schedule and per-epoch reference
		// snapshots.
		type wr struct{ off, n, val int }
		sched := make([][]wr, epochs)
		snap := make([][]byte, epochs)
		ref := make([]byte, blk)
		rng := rand.New(rand.NewSource(seed))
		for e := 0; e < epochs; e++ {
			for k := 0; k < nodes; k++ {
				lo := k * regionPer
				if lo >= blk {
					continue
				}
				hi := lo + regionPer
				if hi > blk {
					hi = blk
				}
				n := 32 + rng.Intn((hi-lo)/2)
				off := lo + rng.Intn(hi-lo-n)
				w := wr{off: off, n: n, val: rng.Intn(256)}
				sched[e] = append(sched[e], w)
				for i := 0; i < w.n; i++ {
					ref[w.off+i] = byte(w.val + i)
				}
			}
			snap[e] = append([]byte(nil), ref...)
		}
		// Per-node read plans (deterministic).
		reads := make([][][2]int, nodes)
		for k := 0; k < nodes; k++ {
			for e := 0; e < epochs; e++ {
				for r := 0; r < 3; r++ {
					n := 16 + rng.Intn(3000)
					off := rng.Intn(blk - n)
					reads[k] = append(reads[k], [2]int{off, n})
				}
			}
		}

		ok := true
		done := 0
		for _, in := range sys.Insts {
			in := in
			cl.Env.Go(fmt.Sprintf("prog%d", in.Node()), func(p *sim.Proc) {
				k := in.Node()
				for e := 0; e < epochs; e++ {
					w := sched[e][k]
					b := in.WSlice(p, base+uint64(w.off), w.n)
					for i := range b {
						b[i] = byte(w.val + i)
					}
					in.Barrier(p)
					for r := 0; r < 3; r++ {
						plan := reads[k][e*3+r]
						got := in.RSlice(p, base+uint64(plan[0]), plan[1])
						want := snap[e][plan[0] : plan[0]+plan[1]]
						for i := range got {
							if got[i] != want[i] {
								ok = false
							}
						}
					}
					in.Barrier(p)
				}
				done++
			})
		}
		cl.Env.RunUntil(600 * sim.Second)
		if done != nodes {
			t.Logf("seed %d: %d/%d nodes finished", seed, done, nodes)
			return false
		}
		if !ok {
			t.Logf("seed %d twoLinks=%v lossy=%v: read mismatch", seed, twoLinks, lossy)
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestAllocAtAndHomeOf(t *testing.T) {
	sys := build(t, 4, "1g", 1<<20)
	a := sys.AllocAt(3*PageSize, 2)
	for off := uint64(0); off < 3*PageSize; off += PageSize {
		if sys.HomeOf(a+off) != 2 {
			t.Fatalf("page at +%d homed at %d, want 2", off, sys.HomeOf(a+off))
		}
	}
	b := sys.AllocOwned(8 * PageSize)
	if sys.HomeOf(b) != 0 || sys.HomeOf(b+7*PageSize) != 3 {
		t.Errorf("AllocOwned homes: first %d last %d", sys.HomeOf(b), sys.HomeOf(b+7*PageSize))
	}
}

func TestWriteReadSharedRoundTrip(t *testing.T) {
	sys := build(t, 3, "1g", 1<<20)
	addr := sys.AllocPages(3 * PageSize)
	data := make([]byte, 3*PageSize)
	for i := range data {
		data[i] = byte(i * 31)
	}
	sys.WriteShared(addr+5, data[:len(data)-10]) // unaligned range
	got := sys.ReadShared(addr+5, len(data)-10)
	for i := range got {
		if got[i] != data[i] {
			t.Fatalf("byte %d = %d, want %d", i, got[i], data[i])
		}
	}
}

func TestPrefetchBringsPagesIn(t *testing.T) {
	sys := build(t, 2, "1g", 1<<20)
	addr := sys.AllocAt(8*PageSize, 1)
	in0 := sys.Insts[0]
	spawnAll(t, sys, 10*sim.Second, func(p *sim.Proc, in *Instance) {
		if in.Node() != 0 {
			return
		}
		in.Prefetch(p, []Range{{Addr: addr, Len: 4 * PageSize}, {Addr: addr + 6*PageSize, Len: PageSize}})
	})
	if in0.Stats.Fetches != 5 {
		t.Errorf("prefetch fetched %d pages, want 5", in0.Stats.Fetches)
	}
	// Subsequent reads of those pages are free.
	before := in0.Stats.Fetches
	spawnAll(t, sys, 20*sim.Second, func(p *sim.Proc, in *Instance) {
		if in.Node() != 0 {
			return
		}
		in.RSlice(p, addr, 4*PageSize)
	})
	if in0.Stats.Fetches != before {
		t.Error("RSlice re-fetched prefetched pages")
	}
}
