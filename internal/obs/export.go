package obs

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"multiedge/internal/sim"
)

// us renders a virtual timestamp as microseconds with fixed precision.
// Chrome trace "ts" fields are microseconds; sim.Time is nanoseconds,
// so %.3f is exact and, being derived from the deterministic virtual
// clock, bit-reproducible across runs.
func us(t sim.Time) string { return fmt.Sprintf("%.3f", float64(t)/1000) }

// jsonEscape escapes a string for direct embedding in JSON.
func jsonEscape(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			if r < 0x20 {
				fmt.Fprintf(&b, `\u%04x`, r)
			} else {
				b.WriteRune(r)
			}
		}
	}
	return b.String()
}

// promEscape escapes a label value for the Prometheus text exposition
// format (version 0.0.4): backslash, double-quote and newline are the
// only escapes the format defines. Go's %q (used here previously) also
// escapes tabs, non-printables and non-ASCII runes, which a conforming
// Prometheus parser would read back verbatim as backslash sequences —
// raw UTF-8 must pass through untouched.
func promEscape(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// ChromeTrace renders every recorded span, child event, and sampler
// series as Chrome trace-event JSON (the format Perfetto and
// chrome://tracing open directly). Layout:
//
//   - process = node ("node 3")
//   - thread  = connection ("conn 2") for protocol spans, or the layer
//     name ("dsm", "blk", "msg") for layer spans
//   - complete events (ph "X") for spans, instant events (ph "i") for
//     child events, counter events (ph "C") for sampler series
//
// Timestamps are virtual simulation time, so equal seeds produce
// byte-identical traces. Spans still open at export time are emitted
// with their current extent and an "unfinished" flag.
func (r *Registry) ChromeTrace() []byte {
	var b strings.Builder
	b.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")
	first := true
	emit := func(line string) {
		if !first {
			b.WriteString(",\n")
		}
		first = false
		b.WriteString(line)
	}
	if r == nil {
		b.WriteString("\n]}\n")
		return []byte(b.String())
	}

	// Metadata: name every process/thread that appears, sorted for
	// deterministic ordering independent of span discovery order.
	type track struct {
		node int
		tid  string
	}
	tracks := map[track]string{}
	tidOf := func(s *Span) string {
		if s.ID.Conn == layerConn {
			return s.Layer
		}
		return "conn " + fmt.Sprint(s.ID.Conn)
	}
	for _, s := range r.spans {
		tracks[track{s.ID.Node, tidOf(s)}] = tidOf(s)
	}
	for _, sp := range r.samplers {
		tracks[track{sp.Node, "samplers"}] = "samplers"
	}
	keys := make([]track, 0, len(tracks))
	for k := range tracks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].node != keys[j].node {
			return keys[i].node < keys[j].node
		}
		return keys[i].tid < keys[j].tid
	})
	seenProc := map[int]bool{}
	for i, k := range keys {
		if !seenProc[k.node] {
			seenProc[k.node] = true
			emit(fmt.Sprintf(`{"ph":"M","name":"process_name","pid":%d,"tid":0,"args":{"name":"node %d"}}`, k.node, k.node))
		}
		emit(fmt.Sprintf(`{"ph":"M","name":"thread_name","pid":%d,"tid":%d,"args":{"name":"%s"}}`,
			k.node, i+1, jsonEscape(k.tid)))
	}
	tidNum := map[track]int{}
	for i, k := range keys {
		tidNum[k] = i + 1
	}

	// Spans and their child events, in creation order.
	for _, s := range r.spans {
		tid := tidNum[track{s.ID.Node, tidOf(s)}]
		end := s.End
		unfinished := ""
		if !s.Done {
			end = r.env.Now()
			unfinished = `,"unfinished":true`
		}
		emit(fmt.Sprintf(`{"ph":"X","name":"%s","cat":"%s","pid":%d,"tid":%d,"ts":%s,"dur":%s,`+
			`"args":{"id":"%s","size":%d,"events":%d,"retx":%d%s}}`,
			jsonEscape(s.Name), jsonEscape(s.Layer), s.ID.Node, tid,
			us(s.Start), us(end-s.Start),
			s.ID, s.Size, len(s.Events), s.Retransmits(), unfinished))
		for _, e := range s.Events {
			emit(fmt.Sprintf(`{"ph":"i","name":"%s","cat":"%s","pid":%d,"tid":%d,"ts":%s,"s":"t",`+
				`"args":{"op":"%s","node":%d,"link":%d,"seq":%d,"len":%d}}`,
				e.Kind, jsonEscape(s.Layer), s.ID.Node, tid, us(e.At),
				s.ID, e.Node, e.Link, e.Seq, e.Len))
		}
	}

	// Sampler series as counter tracks.
	for _, sp := range r.samplers {
		name := sp.Name
		for _, l := range sp.Labels {
			name += " " + l.Key + "=" + l.Value
		}
		for i, t := range sp.Times {
			emit(fmt.Sprintf(`{"ph":"C","name":"%s","pid":%d,"tid":0,"ts":%s,"args":{"value":%g}}`,
				jsonEscape(name), sp.Node, us(t), sp.Values[i]))
		}
	}
	b.WriteString("\n]}\n")
	return []byte(b.String())
}

// WriteFiles exports the registry to files rooted at path. With spans,
// path receives the Chrome trace JSON (open it in Perfetto or
// chrome://tracing). With metrics, the JSON snapshot goes to path — or
// path+".metrics.json" when spans already claimed path — and the
// Prometheus text exposition to path+".prom". Returns the files
// written, in writing order.
func (r *Registry) WriteFiles(path string, metrics, spans bool) ([]string, error) {
	if r == nil {
		return nil, fmt.Errorf("obs: registry is disabled; nothing to export")
	}
	var written []string
	write := func(p string, data []byte) error {
		if err := os.WriteFile(p, data, 0o644); err != nil {
			return err
		}
		written = append(written, p)
		return nil
	}
	if spans {
		if err := write(path, r.ChromeTrace()); err != nil {
			return written, err
		}
	}
	if metrics {
		snap := r.Gather()
		jp := path
		if spans {
			jp = path + ".metrics.json"
		}
		if err := write(jp, snap.JSON()); err != nil {
			return written, err
		}
		if err := write(path+".prom", snap.Prometheus()); err != nil {
			return written, err
		}
	}
	return written, nil
}

// Prometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4). Samples are already sorted by Gather; TYPE
// headers are emitted once per metric family.
func (s Snapshot) Prometheus() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "# Exported at virtual time %s.\n", us(s.At)+"us")
	lastFamily := ""
	for _, sm := range s.Samples {
		family, typ := sm.Name, "counter"
		switch sm.Type {
		case TypeGauge:
			typ = "gauge"
		case TypeHistogram:
			typ = "histogram"
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				family = strings.TrimSuffix(family, suf)
			}
		}
		if family != lastFamily {
			fmt.Fprintf(&b, "# TYPE %s %s\n", family, typ)
			lastFamily = family
		}
		b.WriteString(sm.Name)
		if len(sm.Labels) > 0 {
			b.WriteByte('{')
			for i, l := range sm.Labels {
				if i > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, `%s="%s"`, l.Key, promEscape(l.Value))
			}
			b.WriteByte('}')
		}
		fmt.Fprintf(&b, " %g\n", sm.Value)
	}
	return []byte(b.String())
}

// JSON renders the snapshot as a JSON document:
//
//	{"at_ns": ..., "samples": [{"name": ..., "labels": {...}, "value": ..., "type": ...}]}
//
// Built by hand (ordered labels, stable field order) so output is
// byte-reproducible; encoding/json map iteration would not be.
func (s Snapshot) JSON() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "{\"at_ns\":%d,\"samples\":[\n", int64(s.At))
	typeName := [...]string{"counter", "gauge", "histogram"}
	for i, sm := range s.Samples {
		if i > 0 {
			b.WriteString(",\n")
		}
		fmt.Fprintf(&b, `{"name":"%s","labels":{`, jsonEscape(sm.Name))
		for j, l := range sm.Labels {
			if j > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, `"%s":"%s"`, jsonEscape(l.Key), jsonEscape(l.Value))
		}
		fmt.Fprintf(&b, `},"value":%g,"type":"%s"}`, sm.Value, typeName[sm.Type])
	}
	b.WriteString("\n]}\n")
	return []byte(b.String())
}
