package obs

import (
	"testing"

	"multiedge/internal/sim"
)

// BenchmarkDisabledRegistry measures the cost instrumented hot paths
// pay when observability is off: one nil check per call site. The
// tentpole's zero-cost-when-disabled requirement means this must stay
// in the ~1 ns/op range (the end-to-end check is that the seed's
// BenchmarkFig2Throughput numbers do not move).
func BenchmarkDisabledRegistry(b *testing.B) {
	var r *Registry
	b.Run("counter", func(b *testing.B) {
		c := r.Counter("x")
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("span-gate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if r.SpansEnabled() {
				b.Fatal("unreachable")
			}
		}
	})
	b.Run("span-event", func(b *testing.B) {
		var s *Span
		for i := 0; i < b.N; i++ {
			s.Event(0, EvFrameTx, 0, 0, 0, 0)
		}
	})
}

// BenchmarkEnabledSpanEvent is the paired cost when spans are on, for
// comparison in review.
func BenchmarkEnabledSpanEvent(b *testing.B) {
	r := New(sim.NewEnv(1))
	r.EnableSpans()
	s := r.StartOpSpan(SpanID{Node: 0, Conn: 0, Op: 1}, "core", "write", 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Event(sim.Time(i), EvFrameTx, 0, 0, uint32(i), 64)
	}
}
