package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"multiedge/internal/sim"
)

// Flight recorder: a fixed-size, allocation-free ring buffer of typed
// protocol events, one per endpoint. Unlike metrics (aggregates) and
// spans (per-operation causal traces, opt-in and allocating), the
// recorder is cheap enough to leave on unconditionally in every stress
// harness: recording one event is a bounds-checked store into a
// preallocated array plus two integer increments — no allocation, no
// RNG, no scheduled event — so it can never perturb the simulation or
// its determinism. When a chaos invariant, leak gate or peer-death path
// fires, the rings are frozen into a PostMortem: a cause-tagged dump of
// the last events per connection, as JSON and as a human-readable
// timeline.

// RecKind classifies one flight-recorder event. The A/B payload fields
// are kind-specific (documented per constant).
type RecKind uint8

const (
	RecDial        RecKind = iota + 1 // conn created by Dial; A = links
	RecEstablished                    // handshake complete; A = incarnation
	RecClosed                         // graceful teardown; A = 1 if peer-initiated
	RecFailed                         // terminal failure (ErrPeerDead path)
	RecPeerDead                       // local peer-death verdict; A = 1 if a Reset is sent
	RecRtoExpiry                      // retransmission timeout fired; A = backoff depth, B = inflight
	RecReconnect                      // parked in Reconnecting (epoch condemned)
	RecRedial                         // supervised redial sent; A = attempt
	RecRebirth                        // successor epoch installed; A = incarnation, B = replayed ops
	RecNackDrop                       // missing-list cap hit; A = seq, B = tracked gaps
	RecDoorbell                       // SQ doorbell rung; A = descriptors issued
	RecSched                          // conn enqueued on the scheduler; A = 0 ctrl / 1 send, B = queue depth
	RecLinkDead                       // link excluded from striping; A = link
	RecLinkRestore                    // dead link re-admitted; A = link
	RecStaleDrop                      // frame fenced for a dead incarnation; A = frame epoch, B = live epoch
	RecAbandon                        // conn terminally failed by Conn.Abandon; A = incarnation, B = inflight
	RecThrottled                      // QoS admission backpressure; A = class, B = 0 fail-fast / 1 blocking wait
	RecRateDefer                      // QoS class parked on an empty token bucket; A = class, B = refill delay
	RecCwndCut                        // congestion window halved; A = new cwnd, B = 0 ECN echo / 1 RTO
	RecEcnEcho                        // ECN marks echoed on an ack-bearing frame; A = marks covered
	RecCcBlock                        // congestion-window backpressure; A = cwnd, B = 0 fail-fast / 1 blocking wait
	recKindCount
)

var recKindNames = [recKindCount]string{
	"?", "dial", "established", "closed", "failed", "peer-dead",
	"rto-expiry", "reconnect", "redial", "rebirth", "nack-drop",
	"doorbell", "sched", "link-dead", "link-restore", "stale-drop",
	"abandon", "throttled", "rate-defer", "cwnd-cut", "ecn-echo",
	"cc-block",
}

// String returns the event kind's wire name ("rto-expiry", ...).
func (k RecKind) String() string {
	if k >= recKindCount {
		return "?"
	}
	return recKindNames[k]
}

// recStateTransition reports whether k changes the connection's
// lifecycle state — the events a post-mortem timeline must always keep
// for the victim connection.
func recStateTransition(k RecKind) bool {
	switch k {
	case RecDial, RecEstablished, RecClosed, RecFailed, RecPeerDead,
		RecReconnect, RecRebirth:
		return true
	}
	return false
}

// RecNoConn marks endpoint-level events not tied to one connection.
const RecNoConn = ^uint32(0)

// RecEvent is one recorded protocol event. 32 bytes, stored by value in
// the ring: recording allocates nothing.
type RecEvent struct {
	At   sim.Time
	A, B int64
	Conn uint32
	Kind RecKind
}

// Recorder is one endpoint's flight-recorder ring. The zero-size ring is
// invalid; create with NewRecorder. A nil *Recorder is the disabled
// state: Record is a nil-check no-op, so instrumented code holds one
// unconditionally.
type Recorder struct {
	node int
	buf  []RecEvent
	n    uint64 // events ever recorded; n - len(buf) of them overwritten
}

// DefaultRecorderEvents is the per-endpoint ring capacity harnesses use
// unless configured otherwise (32 KiB per endpoint at 32 B/event).
const DefaultRecorderEvents = 1024

// NewRecorder creates a flight recorder for node with a ring of the
// given capacity (DefaultRecorderEvents if size <= 0).
func NewRecorder(node, size int) *Recorder {
	if size <= 0 {
		size = DefaultRecorderEvents
	}
	return &Recorder{node: node, buf: make([]RecEvent, 0, size)}
}

// Record appends one event, overwriting the oldest once the ring is
// full. Nil-safe and allocation-free.
func (r *Recorder) Record(at sim.Time, conn uint32, k RecKind, a, b int64) {
	if r == nil {
		return
	}
	ev := RecEvent{At: at, A: a, B: b, Conn: conn, Kind: k}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.n%uint64(len(r.buf))] = ev
	}
	r.n++
}

// Node returns the node the recorder is attached to (-1 on nil).
func (r *Recorder) Node() int {
	if r == nil {
		return -1
	}
	return r.node
}

// Len returns how many events the ring currently holds.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Recorded returns how many events were ever recorded; Recorded - Len
// of them have been overwritten.
func (r *Recorder) Recorded() uint64 {
	if r == nil {
		return 0
	}
	return r.n
}

// Events returns the ring's contents in recording order (oldest first).
// The slice is freshly allocated; the ring keeps recording.
func (r *Recorder) Events() []RecEvent {
	if r == nil || len(r.buf) == 0 {
		return nil
	}
	out := make([]RecEvent, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) || r.n == uint64(len(r.buf)) {
		return append(out, r.buf...)
	}
	head := int(r.n % uint64(len(r.buf))) // oldest surviving event
	out = append(out, r.buf[head:]...)
	return append(out, r.buf[:head]...)
}

// TimelineNote is one non-recorder entry merged into a post-mortem
// timeline — typically an injected fault from the chaos Runner.
type TimelineNote struct {
	At   sim.Time
	Text string
}

// NodeEvents is one node's slice of a post-mortem: the last events per
// connection, in recording order.
type NodeEvents struct {
	Node        int
	Recorded    uint64 // events ever recorded on this node
	Overwritten uint64 // events lost to ring wraparound
	Events      []RecEvent
}

// PostMortem is a frozen, cause-tagged flight-recorder dump, built when
// a chaos invariant, leak gate or peer-death path fires.
type PostMortem struct {
	Cause  string
	At     sim.Time
	Faults []TimelineNote // injected faults, chronological
	Nodes  []NodeEvents   // one entry per attached recorder, by node
}

// postMortemLastN bounds the per-connection tail kept in a dump. State
// transitions are always kept regardless of the bound.
const postMortemLastN = 16

// BuildPostMortem freezes the given recorders (nils skipped) into a
// cause-tagged dump: for every node, the last postMortemLastN events of
// each connection plus every lifecycle state transition still in the
// ring. Pass the injected-fault timeline (may be nil) so the dump can
// interleave causes with effects.
func BuildPostMortem(cause string, at sim.Time, faults []TimelineNote, recs ...*Recorder) *PostMortem {
	pm := &PostMortem{Cause: cause, At: at}
	for _, f := range faults {
		pm.Faults = append(pm.Faults, f)
	}
	sort.SliceStable(pm.Faults, func(i, j int) bool { return pm.Faults[i].At < pm.Faults[j].At })
	for _, r := range recs {
		if r == nil {
			continue
		}
		all := r.Events()
		// Count per-conn tails from the end, keeping state transitions
		// unconditionally so a busy conn's doorbell storm cannot push its
		// own failure history out of the dump.
		tail := make(map[uint32]int)
		keep := make([]bool, len(all))
		for i := len(all) - 1; i >= 0; i-- {
			ev := all[i]
			if recStateTransition(ev.Kind) || tail[ev.Conn] < postMortemLastN {
				keep[i] = true
				tail[ev.Conn]++
			}
		}
		ne := NodeEvents{Node: r.node, Recorded: r.n}
		if r.n > uint64(len(all)) {
			ne.Overwritten = r.n - uint64(len(all))
		}
		for i, ev := range all {
			if keep[i] {
				ne.Events = append(ne.Events, ev)
			}
		}
		pm.Nodes = append(pm.Nodes, ne)
	}
	sort.SliceStable(pm.Nodes, func(i, j int) bool { return pm.Nodes[i].Node < pm.Nodes[j].Node })
	return pm
}

// JSON renders the dump as a deterministic JSON document (hand-built,
// like the other obs exporters, so equal runs dump byte-identically).
func (pm *PostMortem) JSON() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "{\"schema\":\"multiedge-postmortem/v1\",\"cause\":\"%s\",\"at_ns\":%d,\"faults\":[",
		jsonEscape(pm.Cause), int64(pm.At))
	for i, f := range pm.Faults {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "\n{\"at_ns\":%d,\"what\":\"%s\"}", int64(f.At), jsonEscape(f.Text))
	}
	b.WriteString("],\"nodes\":[")
	for i, n := range pm.Nodes {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "\n{\"node\":%d,\"recorded\":%d,\"overwritten\":%d,\"events\":[", n.Node, n.Recorded, n.Overwritten)
		for j, ev := range n.Events {
			if j > 0 {
				b.WriteByte(',')
			}
			conn := strconv.FormatUint(uint64(ev.Conn), 10)
			if ev.Conn == RecNoConn {
				conn = "-1"
			}
			fmt.Fprintf(&b, "\n{\"at_ns\":%d,\"conn\":%s,\"kind\":\"%s\",\"a\":%d,\"b\":%d}",
				int64(ev.At), conn, ev.Kind, ev.A, ev.B)
		}
		b.WriteString("]}")
	}
	b.WriteString("\n]}\n")
	return []byte(b.String())
}

// Timeline renders the dump as a human-readable, chronologically merged
// timeline: injected faults and every node's kept events, one line
// each, cause-tagged in the header.
func (pm *PostMortem) Timeline() string {
	type line struct {
		at   sim.Time
		text string
	}
	var lines []line
	for _, f := range pm.Faults {
		lines = append(lines, line{f.At, fmt.Sprintf("FAULT  %s", f.Text)})
	}
	for _, n := range pm.Nodes {
		for _, ev := range n.Events {
			conn := "conn " + strconv.FormatUint(uint64(ev.Conn), 10)
			if ev.Conn == RecNoConn {
				conn = "endpoint"
			}
			lines = append(lines, line{ev.At, fmt.Sprintf("n%-3d %-8s %-12s a=%d b=%d",
				n.Node, conn, ev.Kind.String(), ev.A, ev.B)})
		}
	}
	sort.SliceStable(lines, func(i, j int) bool { return lines[i].at < lines[j].at })
	var b strings.Builder
	fmt.Fprintf(&b, "POST-MORTEM at %s: %s\n", fmtTime(pm.At), pm.Cause)
	for _, n := range pm.Nodes {
		fmt.Fprintf(&b, "  node %d: %d events recorded, %d overwritten, %d in dump\n",
			n.Node, n.Recorded, n.Overwritten, len(n.Events))
	}
	for _, l := range lines {
		fmt.Fprintf(&b, "  %12s  %s\n", fmtTime(l.at), l.text)
	}
	return b.String()
}

// fmtTime renders a virtual timestamp as microseconds for timelines.
func fmtTime(t sim.Time) string { return fmt.Sprintf("%.3fus", float64(t)/1000) }
