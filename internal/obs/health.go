package obs

import (
	"fmt"
	"strings"

	"multiedge/internal/sim"
)

// Health snapshots: point-in-time structs describing one endpoint and
// its connections, populated by core (Endpoint.Health / Conn.Health)
// and exported here as deterministic JSON — either a single document or
// a periodic timeline sampled by a daemon (SampleHealth) during long
// soaks. Like all obs machinery, taking a snapshot is pure observation:
// it reads live protocol state and touches no RNG and no timers.

// ConnHealth is one connection's point-in-time health.
type ConnHealth struct {
	Conn        uint32 // local connection id
	Peer        int    // remote node
	State       string // "dialing", "established", "reconnecting", "closed", "failed"
	Incarnation uint16
	Reconnects  int // supervised reconnects survived

	SRTTUs   float64 // smoothed RTT estimate, µs (0 before the first sample)
	RTTVarUs float64
	RTOUs    float64 // timeout the next expiry timer would arm, µs

	// Rails is the per-rail RTT split of the blended estimator above,
	// one entry per physical link the conn stripes over.
	Rails []RailHealth

	Inflight int // unacknowledged frames outstanding
	Window   int // configured window (Inflight's bound)
	Cwnd     int // congestion window (0 = congestion control off)

	SQDepth    int    // posted-but-unrung descriptors
	CQDepth    int    // unpolled completions
	JournalOps int    // incomplete send-side ops a reconnect would replay
	BytesAcked uint64 // payload bytes acknowledged end-to-end, lifetime
}

// RailHealth is one rail's point-in-time RTT estimate: the per-link
// split of the connection's blended SRTT (all zero before the rail's
// first Karn-clean sample).
type RailHealth struct {
	SRTTUs   float64
	RTTVarUs float64
	RTOUs    float64
}

// EndpointHealth is one endpoint's point-in-time health, including
// every tabled connection (in stable table order).
type EndpointHealth struct {
	At           sim.Time
	Node         int
	ActiveConns  int
	SchedCtrlQ   int // connections queued for control service
	SchedSendQ   int // connections queued for data service
	WheelEntries int // armed timer-wheel entries
	Conns        []ConnHealth
}

// appendJSON renders the snapshot into b as a deterministic JSON
// object (fixed field order, no maps).
func (h EndpointHealth) appendJSON(b *strings.Builder) {
	fmt.Fprintf(b, `{"at_ns":%d,"node":%d,"active_conns":%d,"sched_ctrl_q":%d,"sched_send_q":%d,"wheel_entries":%d,"conns":[`,
		int64(h.At), h.Node, h.ActiveConns, h.SchedCtrlQ, h.SchedSendQ, h.WheelEntries)
	for i, c := range h.Conns {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, `{"conn":%d,"peer":%d,"state":"%s","incarnation":%d,"reconnects":%d,`+
			`"srtt_us":%g,"rttvar_us":%g,"rto_us":%g,"rails":[`,
			c.Conn, c.Peer, jsonEscape(c.State), c.Incarnation, c.Reconnects,
			c.SRTTUs, c.RTTVarUs, c.RTOUs)
		for j, r := range c.Rails {
			if j > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(b, `{"srtt_us":%g,"rttvar_us":%g,"rto_us":%g}`,
				r.SRTTUs, r.RTTVarUs, r.RTOUs)
		}
		fmt.Fprintf(b, `],"inflight":%d,"window":%d,"cwnd":%d,`+
			`"sq_depth":%d,"cq_depth":%d,"journal_ops":%d,"bytes_acked":%d}`,
			c.Inflight, c.Window, c.Cwnd,
			c.SQDepth, c.CQDepth, c.JournalOps, c.BytesAcked)
	}
	b.WriteString("]}")
}

// JSON renders the snapshot as a standalone deterministic JSON document.
func (h EndpointHealth) JSON() []byte {
	var b strings.Builder
	h.appendJSON(&b)
	b.WriteByte('\n')
	return []byte(b.String())
}

// HealthLog is a periodically sampled health timeline for one endpoint.
// Create with Registry.SampleHealth; the log ticks on daemon events
// (never keeping a drained simulation alive) until stopped or the
// registry quiesces.
type HealthLog struct {
	Node    int
	Every   sim.Time
	Entries []EndpointHealth

	stopped bool
	timer   *sim.Timer
}

// SampleHealth starts sampling f every interval into a HealthLog.
// Returns nil on a nil registry.
func (r *Registry) SampleHealth(node int, every sim.Time, f func() EndpointHealth) *HealthLog {
	if r == nil {
		return nil
	}
	if every <= 0 {
		panic(fmt.Sprintf("obs: non-positive health sampling interval %d", every))
	}
	l := &HealthLog{Node: node, Every: every}
	var tick func()
	tick = func() {
		if l.stopped || r.quiesced {
			return
		}
		l.Entries = append(l.Entries, f())
		l.timer = r.env.AfterDaemon(every, tick)
	}
	l.timer = r.env.AfterDaemon(every, tick)
	r.healthLogs = append(r.healthLogs, l)
	return l
}

// Stop halts the log; the pending tick is cancelled so the event queue
// can drain. Nil-safe and idempotent.
func (l *HealthLog) Stop() {
	if l == nil || l.stopped {
		return
	}
	l.stopped = true
	if l.timer != nil {
		l.timer.Stop()
	}
}

// HealthLogs returns the registered health timelines (nil on nil
// registry).
func (r *Registry) HealthLogs() []*HealthLog {
	if r == nil {
		return nil
	}
	return r.healthLogs
}

// HealthTimelineJSON renders every health log as one deterministic JSON
// document: {"schema":..., "nodes":[{"node":..,"every_ns":..,"entries":[...]}]}.
func HealthTimelineJSON(logs []*HealthLog) []byte {
	var b strings.Builder
	b.WriteString(`{"schema":"multiedge-health/v1","nodes":[`)
	for i, l := range logs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "\n{\"node\":%d,\"every_ns\":%d,\"entries\":[", l.Node, int64(l.Every))
		for j, e := range l.Entries {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteByte('\n')
			e.appendJSON(&b)
		}
		b.WriteString("]}")
	}
	b.WriteString("\n]}\n")
	return []byte(b.String())
}
