package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"multiedge/internal/sim"
)

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	// Every method must be a no-op, not a panic.
	r.Counter("x").Inc()
	r.Counter("x", L("a", "b")).Add(3)
	r.Gauge("g").Set(1)
	r.Histogram("h", nil).Observe(2)
	r.AddCollector(func(emit func(Sample)) { emit(Sample{Name: "y"}) })
	r.EnableSpans()
	if r.SpansEnabled() {
		t.Fatal("nil registry reports spans enabled")
	}
	sp := r.StartOpSpan(SpanID{}, "core", "write", 10)
	sp.Event(0, EvFrameTx, 0, 0, 0, 0)
	sp.EndAt(5)
	r.StartLayerSpan(0, "dsm", "page-fetch", 4096).EndAt(1)
	if r.FindSpan(SpanID{}) != nil {
		t.Fatal("nil registry found a span")
	}
	r.Sample("q", 0, nil, sim.Microsecond, func() float64 { return 0 }).Stop()
	r.Quiesce()
	snap := r.Gather()
	if len(snap.Samples) != 0 {
		t.Fatalf("nil registry gathered %d samples", len(snap.Samples))
	}
	if out := r.ChromeTrace(); !json.Valid(out) {
		t.Fatalf("nil ChromeTrace invalid JSON: %s", out)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	env := sim.NewEnv(1)
	r := New(env)
	c := r.Counter("frames_total", NodeLabel(0), L("link", "1"))
	c.Inc()
	c.Add(4)
	if c2 := r.Counter("frames_total", L("link", "1"), NodeLabel(0)); c2 != c {
		t.Fatal("label order changed metric identity")
	}
	g := r.Gauge("queue_depth", NodeLabel(0))
	g.Set(7)
	g.Add(-2)
	h := r.Histogram("lat_us", []float64{10, 100}, NodeLabel(0))
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)
	if h.Count() != 3 || h.Sum() != 555 {
		t.Fatalf("histogram count=%d sum=%g", h.Count(), h.Sum())
	}

	snap := r.Gather()
	if v, ok := snap.Get("frames_total", NodeLabel(0), L("link", "1")); !ok || v != 5 {
		t.Fatalf("counter = %v, %v; want 5", v, ok)
	}
	if v, ok := snap.Get("queue_depth", NodeLabel(0)); !ok || v != 5 {
		t.Fatalf("gauge = %v, %v; want 5", v, ok)
	}
	if v, ok := snap.Get("lat_us_bucket", NodeLabel(0), L("le", "10")); !ok || v != 1 {
		t.Fatalf("bucket le=10 = %v, %v; want 1", v, ok)
	}
	if v, ok := snap.Get("lat_us_bucket", NodeLabel(0), L("le", "100")); !ok || v != 2 {
		t.Fatalf("bucket le=100 = %v, %v; want cumulative 2", v, ok)
	}
	if v, ok := snap.Get("lat_us_bucket", NodeLabel(0), L("le", "+Inf")); !ok || v != 3 {
		t.Fatalf("bucket +Inf = %v, %v; want 3", v, ok)
	}
	if v, ok := snap.Get("lat_us_count", NodeLabel(0)); !ok || v != 3 {
		t.Fatalf("count = %v, %v; want 3", v, ok)
	}

	// Snapshot diffing: counters and histograms subtract, gauges don't.
	c.Add(10)
	g.Set(9)
	h.Observe(1)
	diff := r.Gather().Sub(snap)
	if v, _ := diff.Get("frames_total", NodeLabel(0), L("link", "1")); v != 10 {
		t.Fatalf("diffed counter = %v; want 10", v)
	}
	if v, _ := diff.Get("queue_depth", NodeLabel(0)); v != 9 {
		t.Fatalf("diffed gauge = %v; want 9 (current value)", v)
	}
	if v, _ := diff.Get("lat_us_count", NodeLabel(0)); v != 1 {
		t.Fatalf("diffed histogram count = %v; want 1", v)
	}
}

func TestCollector(t *testing.T) {
	r := New(sim.NewEnv(1))
	n := 0
	r.AddCollector(func(emit func(Sample)) {
		n++
		emit(Sample{Name: "layer_ops", Labels: []Label{NodeLabel(2)}, Value: float64(40 + n)})
	})
	if v, ok := r.Gather().Get("layer_ops", NodeLabel(2)); !ok || v != 41 {
		t.Fatalf("collector sample = %v, %v", v, ok)
	}
	// Collectors are re-polled every gather: always current.
	if v, _ := r.Gather().Get("layer_ops", NodeLabel(2)); v != 42 {
		t.Fatalf("second gather = %v; want 42", v)
	}
}

func TestSpansLifecycle(t *testing.T) {
	env := sim.NewEnv(1)
	r := New(env)
	// Spans off: StartOpSpan must return a usable nil.
	if s := r.StartOpSpan(SpanID{Node: 1, Conn: 0, Op: 1}, "core", "write", 64); s != nil {
		t.Fatal("span recorded while disabled")
	}
	r.EnableSpans()
	id := SpanID{Node: 1, Conn: 0, Op: 1}
	s := r.StartOpSpan(id, "core", "write", 64)
	if s == nil {
		t.Fatal("no span while enabled")
	}
	if again := r.StartOpSpan(id, "core", "write", 64); again != s {
		t.Fatal("reopening an id created a second span")
	}
	if r.FindSpan(id) != s {
		t.Fatal("FindSpan missed the open span")
	}
	s.Event(env.Now(), EvFrameTx, 1, 0, 0, 64)
	s.Event(env.Now(), EvFrameRetx, 1, 1, 0, 64)
	s.EndAt(2 * sim.Microsecond)
	s.EndAt(9 * sim.Microsecond) // idempotent: first end wins
	if s.End != 2*sim.Microsecond {
		t.Fatalf("End = %v; want 2us", s.End)
	}
	if r.FindSpan(id) != nil {
		t.Fatal("ended span still open")
	}
	if s.Retransmits() != 1 {
		t.Fatalf("Retransmits = %d; want 1", s.Retransmits())
	}
	// Ending the span observed the op-latency histogram.
	if v, ok := r.Gather().Get("op_latency_us_count", L("layer", "core"), L("op", "write")); !ok || v != 1 {
		t.Fatalf("op_latency count = %v, %v; want 1", v, ok)
	}
	// Layer spans get distinct private ids.
	a := r.StartLayerSpan(3, "dsm", "page-fetch", 4096)
	b := r.StartLayerSpan(3, "dsm", "page-fetch", 4096)
	if a.ID == b.ID {
		t.Fatal("layer spans share an id")
	}
}

func TestSamplerTicksAndQuiesce(t *testing.T) {
	env := sim.NewEnv(1)
	r := New(env)
	v := 0.0
	s := r.Sample("depth", 0, nil, 10*sim.Microsecond, func() float64 { v++; return v })
	env.RunUntil(35 * sim.Microsecond)
	if len(s.Values) != 3 {
		t.Fatalf("ticks = %d; want 3", len(s.Values))
	}
	r.Quiesce()
	// The pending (now-canceled) tick is discarded when popped, so the
	// queue drains and Run returns instead of re-arming forever.
	env.Run()
	if !env.Idle() {
		t.Fatal("quiesce left live events armed; event queue cannot drain")
	}
	if len(s.Values) != 3 {
		t.Fatalf("sampler ticked after quiesce: %d values", len(s.Values))
	}
	// The latest sampled value appears in snapshots.
	if got, ok := r.Gather().Get("depth", NodeLabel(0)); !ok || got != 3 {
		t.Fatalf("sampler gauge = %v, %v; want 3", got, ok)
	}
}

func TestChromeTraceValidAndDeterministic(t *testing.T) {
	build := func() []byte {
		env := sim.NewEnv(7)
		r := New(env)
		r.EnableSpans()
		r.Sample("nic_q", 0, []Label{L("link", "0")}, 5*sim.Microsecond, func() float64 { return float64(env.Now()) })
		s := r.StartOpSpan(SpanID{Node: 0, Conn: 1, Op: 9}, "core", "write", 128)
		env.RunUntil(12 * sim.Microsecond)
		s.Event(env.Now(), EvFrameTx, 0, 2, 0, 128)
		s.Event(env.Now(), EvRxHold, 1, -1, 0, 128)
		s.EndAt(env.Now())
		ls := r.StartLayerSpan(1, "dsm", "page-fetch", 4096)
		env.RunUntil(20 * sim.Microsecond)
		ls.EndAt(env.Now())
		r.Quiesce()
		return r.ChromeTrace()
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatal("ChromeTrace not byte-identical across identical runs")
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, a)
	}
	var phX, phI, phC, phM int
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "X":
			phX++
		case "i":
			phI++
		case "C":
			phC++
		case "M":
			phM++
		}
	}
	if phX != 2 || phI != 2 || phC == 0 || phM == 0 {
		t.Fatalf("event mix X=%d i=%d C=%d M=%d; want 2 spans, 2 instants, counters, metadata", phX, phI, phC, phM)
	}
}

func TestPrometheusAndJSONExport(t *testing.T) {
	r := New(sim.NewEnv(1))
	r.Counter("frames_total", NodeLabel(0)).Add(12)
	r.Gauge("depth").Set(3)
	r.Histogram("lat_us", []float64{10}, NodeLabel(1)).Observe(4)
	snap := r.Gather()

	prom := string(snap.Prometheus())
	for _, want := range []string{
		"# TYPE frames_total counter",
		`frames_total{node="0"} 12`,
		"# TYPE depth gauge",
		"depth 3",
		"# TYPE lat_us histogram",
		`lat_us_bucket{le="+Inf",node="1"} 1`,
		`lat_us_count{node="1"} 1`,
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, prom)
		}
	}
	// One TYPE header per family, not per sample.
	if strings.Count(prom, "# TYPE lat_us ") != 1 {
		t.Fatalf("duplicate TYPE headers:\n%s", prom)
	}

	js := snap.JSON()
	if !json.Valid(js) {
		t.Fatalf("snapshot JSON invalid: %s", js)
	}
	var doc struct {
		Samples []struct {
			Name   string            `json:"name"`
			Labels map[string]string `json:"labels"`
			Value  float64           `json:"value"`
			Type   string            `json:"type"`
		} `json:"samples"`
	}
	if err := json.Unmarshal(js, &doc); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range doc.Samples {
		if s.Name == "frames_total" && s.Labels["node"] == "0" && s.Value == 12 && s.Type == "counter" {
			found = true
		}
	}
	if !found {
		t.Fatalf("frames_total sample missing from JSON: %s", js)
	}
}

func TestEventKindString(t *testing.T) {
	if EvFrameTx.String() != "frame-tx" || EvRxComplete.String() != "rx-complete" {
		t.Fatalf("kind names wrong: %s %s", EvFrameTx, EvRxComplete)
	}
	if EventKind(200).String() != "?" {
		t.Fatal("out-of-range kind did not clamp")
	}
}
