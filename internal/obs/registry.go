// Package obs is the unified observability layer: a typed metrics
// registry (counters, gauges, fixed-bucket histograms, all labelled),
// causal operation spans that follow one RDMA operation through every
// layer it crosses, and machine-readable exporters (Chrome trace-event
// JSON for Perfetto, Prometheus text exposition, JSON snapshots).
//
// Design constraints, in order:
//
//  1. Zero cost when disabled. Every entry point is safe on a nil
//     *Registry / nil *Span and reduces to one nil check, so
//     instrumented hot paths (internal/core's per-frame work) pay
//     nothing when observability is off. Verified by BenchmarkDisabled*.
//  2. Pure observation. Nothing in this package consumes the
//     simulation's RNG, charges CPU cost, or alters protocol state, so
//     enabling observability never perturbs a run: results stay
//     bit-identical with and without it.
//  3. Deterministic export. All timestamps are virtual (sim.Time) and
//     all iteration is over insertion-ordered slices or sorted keys, so
//     two runs with the same seed export byte-identical artifacts.
package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"multiedge/internal/sim"
)

// Label is one key=value metric dimension.
type Label struct{ Key, Value string }

// L builds a label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// NodeLabel builds the conventional node="<id>" label.
func NodeLabel(id int) Label { return Label{Key: "node", Value: strconv.Itoa(id)} }

// labelKey serializes labels (already sorted by caller or small enough
// to sort here) into a canonical map key.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// MetricType classifies a sample for exposition.
type MetricType uint8

// Metric types.
const (
	TypeCounter MetricType = iota
	TypeGauge
	TypeHistogram // expanded into _bucket/_sum/_count samples at Gather
)

// Counter is a monotonically increasing metric. A nil Counter (from a
// nil Registry) accepts updates and drops them.
type Counter struct {
	name   string
	labels []Label
	v      float64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n (n must be non-negative for the counter contract; not
// enforced, the exporters do not care).
func (c *Counter) Add(n float64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a point-in-time value. Nil-safe like Counter.
type Gauge struct {
	name   string
	labels []Label
	v      float64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Add adjusts the value by d.
func (g *Gauge) Add(d float64) {
	if g != nil {
		g.v += d
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a fixed-bucket cumulative histogram. Buckets are upper
// bounds; an implicit +Inf bucket catches the rest.
type Histogram struct {
	name    string
	labels  []Label
	bounds  []float64
	counts  []uint64 // len(bounds)+1, last is +Inf
	sum     float64
	samples uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.samples++
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.samples
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// LatencyBucketsUs is the default fixed bucket set for operation
// latencies in microseconds: ~1 us (single frame on a quiet 10-GbE
// rail) up to 100 ms (heavy retransmission storms).
var LatencyBucketsUs = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500,
	1000, 2000, 5000, 10000, 20000, 50000, 100000}

// Sample is one exported measurement: a metric instance flattened at
// Gather time.
type Sample struct {
	Name   string
	Labels []Label // sorted by key
	Value  float64
	Type   MetricType
}

// key returns the sample's identity for diffing.
func (s Sample) key() string { return s.Name + "\xff" + labelKey(s.Labels) }

// Collector publishes point-in-time samples when the registry gathers.
// Layers with existing counter structs (core.Stats, NIC counters, DSM
// stats) register collectors instead of double-counting on hot paths:
// the legacy counters stay authoritative and the registry mirrors them
// exactly at snapshot time.
type Collector func(emit func(Sample))

// Registry is the single aggregation point for every layer's metrics
// and spans. The zero value is not usable; create with New. A nil
// *Registry is the disabled state: every method is a cheap no-op.
type Registry struct {
	env *sim.Env

	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	order    []string // metric creation order (deterministic iteration)

	collectors []Collector
	samplers   []*Sampler
	healthLogs []*HealthLog
	quiesced   bool

	spansOn bool
	open    map[SpanID]*Span
	spans   []*Span
	autoOp  uint64 // ids for layer spans (own namespace, see layerConn)

	opLatency   map[string]*Histogram // per layer/name op-latency hist
	latencyOrd  []string
	latencyOn   bool
	traceHeader string
}

// New creates an enabled registry bound to the simulation environment
// (virtual timestamps).
func New(env *sim.Env) *Registry {
	return &Registry{
		env:       env,
		counters:  make(map[string]*Counter),
		gauges:    make(map[string]*Gauge),
		hists:     make(map[string]*Histogram),
		open:      make(map[SpanID]*Span),
		opLatency: make(map[string]*Histogram),
		latencyOn: true,
	}
}

// Env returns the bound simulation environment (nil on nil registry).
func (r *Registry) Env() *sim.Env {
	if r == nil {
		return nil
	}
	return r.env
}

// Enabled reports whether the registry exists.
func (r *Registry) Enabled() bool { return r != nil }

// Counter returns the named counter, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	k := name + "\xff" + labelKey(labels)
	if c, ok := r.counters[k]; ok {
		return c
	}
	c := &Counter{name: name, labels: sortedLabels(labels)}
	r.counters[k] = c
	r.order = append(r.order, "c\xff"+k)
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	k := name + "\xff" + labelKey(labels)
	if g, ok := r.gauges[k]; ok {
		return g
	}
	g := &Gauge{name: name, labels: sortedLabels(labels)}
	r.gauges[k] = g
	r.order = append(r.order, "g\xff"+k)
	return g
}

// Histogram returns the named histogram with the given bucket upper
// bounds, creating it on first use (bounds are fixed at creation; later
// calls may pass nil bounds).
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	k := name + "\xff" + labelKey(labels)
	if h, ok := r.hists[k]; ok {
		return h
	}
	if len(bounds) == 0 {
		bounds = LatencyBucketsUs
	}
	h := &Histogram{
		name: name, labels: sortedLabels(labels),
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
	r.hists[k] = h
	r.order = append(r.order, "h\xff"+k)
	return h
}

func sortedLabels(labels []Label) []Label {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

// AddCollector registers a gather-time sample source. No-op on nil.
func (r *Registry) AddCollector(c Collector) {
	if r != nil && c != nil {
		r.collectors = append(r.collectors, c)
	}
}

// Snapshot is a gathered, sorted, self-contained set of samples.
type Snapshot struct {
	At      sim.Time
	Samples []Sample
}

// Gather flattens every direct metric, every collector, and every
// sampler's latest value into a sorted snapshot. Nil registries gather
// an empty snapshot.
func (r *Registry) Gather() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	var out []Sample
	for _, ok := range r.order {
		kind, k := ok[:1], ok[2:]
		switch kind {
		case "c":
			c := r.counters[k]
			out = append(out, Sample{Name: c.name, Labels: c.labels, Value: c.v, Type: TypeCounter})
		case "g":
			g := r.gauges[k]
			out = append(out, Sample{Name: g.name, Labels: g.labels, Value: g.v, Type: TypeGauge})
		case "h":
			out = append(out, r.hists[k].expand()...)
		}
	}
	for _, hk := range r.latencyOrd {
		out = append(out, r.opLatency[hk].expand()...)
	}
	for _, c := range r.collectors {
		c(func(s Sample) {
			s.Labels = sortedLabels(s.Labels)
			out = append(out, s)
		})
	}
	for _, sp := range r.samplers {
		if n := len(sp.Values); n > 0 {
			out = append(out, Sample{
				Name:   sp.Name,
				Labels: sortedLabels(append([]Label{NodeLabel(sp.Node)}, sp.Labels...)),
				Value:  sp.Values[n-1],
				Type:   TypeGauge,
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return labelKey(out[i].Labels) < labelKey(out[j].Labels)
	})
	return Snapshot{At: r.env.Now(), Samples: out}
}

// expand flattens a histogram into Prometheus-style cumulative
// _bucket{le=...}, _sum and _count samples.
func (h *Histogram) expand() []Sample {
	out := make([]Sample, 0, len(h.bounds)+3)
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i]
		le := strconv.FormatFloat(b, 'g', -1, 64)
		out = append(out, Sample{
			Name:   h.name + "_bucket",
			Labels: sortedLabels(append(append([]Label(nil), h.labels...), L("le", le))),
			Value:  float64(cum),
			Type:   TypeHistogram,
		})
	}
	cum += h.counts[len(h.bounds)]
	out = append(out,
		Sample{Name: h.name + "_bucket",
			Labels: sortedLabels(append(append([]Label(nil), h.labels...), L("le", "+Inf"))),
			Value:  float64(cum), Type: TypeHistogram},
		Sample{Name: h.name + "_sum", Labels: h.labels, Value: h.sum, Type: TypeHistogram},
		Sample{Name: h.name + "_count", Labels: h.labels, Value: float64(h.samples), Type: TypeHistogram},
	)
	return out
}

// Sub returns the window diff: counter and histogram samples subtract
// the matching sample in prev; gauges keep their current value. Samples
// absent from prev pass through unchanged.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	old := make(map[string]float64, len(prev.Samples))
	for _, ps := range prev.Samples {
		if ps.Type == TypeCounter || ps.Type == TypeHistogram {
			old[ps.key()] = ps.Value
		}
	}
	out := Snapshot{At: s.At, Samples: append([]Sample(nil), s.Samples...)}
	for i := range out.Samples {
		sm := &out.Samples[i]
		if sm.Type == TypeCounter || sm.Type == TypeHistogram {
			sm.Value -= old[sm.key()]
		}
	}
	return out
}

// Get returns the value of the sample with the given name and labels.
func (s Snapshot) Get(name string, labels ...Label) (float64, bool) {
	want := Sample{Name: name, Labels: sortedLabels(labels)}.key()
	for _, sm := range s.Samples {
		if sm.key() == want {
			return sm.Value, true
		}
	}
	return 0, false
}

// Sampler records a time series of one instantaneous metric, ticking on
// the simulation clock. Create with Registry.Sample. The series also
// exports to the Chrome trace as a counter track.
type Sampler struct {
	Name   string
	Node   int
	Labels []Label
	Times  []sim.Time
	Values []float64

	reg     *Registry
	stopped bool
	timer   *sim.Timer
}

// Sample starts sampling f every interval until the sampler (or the
// whole registry) is stopped. Sampling is pure observation: it ticks on
// daemon events (which never keep Run alive) and touches no protocol
// state and no RNG, so it cannot perturb or prolong the run. Returns
// nil on a nil registry.
func (r *Registry) Sample(name string, node int, labels []Label, every sim.Time, f func() float64) *Sampler {
	if r == nil {
		return nil
	}
	if every <= 0 {
		panic(fmt.Sprintf("obs: non-positive sampling interval %d", every))
	}
	s := &Sampler{Name: name, Node: node, Labels: labels, reg: r}
	var tick func()
	tick = func() {
		if s.stopped || r.quiesced {
			return
		}
		s.Times = append(s.Times, r.env.Now())
		s.Values = append(s.Values, f())
		s.timer = r.env.AfterDaemon(every, tick)
	}
	s.timer = r.env.AfterDaemon(every, tick)
	r.samplers = append(r.samplers, s)
	return s
}

// Stop halts this sampler; the pending tick is cancelled so the event
// queue can drain. Nil-safe and idempotent.
func (s *Sampler) Stop() {
	if s == nil || s.stopped {
		return
	}
	s.stopped = true
	if s.timer != nil {
		s.timer.Stop()
	}
}

// Quiesce stops every sampler. Workload drivers call it when the
// measured phase ends, so self-re-arming samplers do not keep the
// event queue alive forever. Nil-safe and idempotent.
func (r *Registry) Quiesce() {
	if r == nil || r.quiesced {
		return
	}
	r.quiesced = true
	for _, s := range r.samplers {
		s.Stop()
	}
	for _, l := range r.healthLogs {
		l.Stop()
	}
}

// Samplers returns the registered samplers (nil on nil registry).
func (r *Registry) Samplers() []*Sampler {
	if r == nil {
		return nil
	}
	return r.samplers
}
