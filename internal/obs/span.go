package obs

import (
	"strconv"

	"multiedge/internal/sim"
)

// SpanID names one operation span globally: the initiating node, the
// initiator's local connection id, and the operation id the protocol
// assigned on that connection. Frames carry (ConnID, OpID) on the wire
// and each endpoint knows the peer node and the peer's local id for
// every connection, so both sides of a transfer can address the same
// span.
type SpanID struct {
	Node int
	Conn uint32
	Op   uint64
}

// EventKind classifies one child event inside a span.
type EventKind uint8

// Span event kinds, in causal order of a typical operation.
const (
	EvProtoDequeue EventKind = iota + 1 // protocol CPU picked the op off the send queue
	EvFrameTx                           // one data frame handed to a rail (Link = rail)
	EvFrameRetx                         // retransmission of Seq on Link
	EvNackRepair                        // NACK from peer scheduled a repair of Seq
	EvRtoRepair                         // retransmission timeout scheduled a repair of Seq
	EvAck                               // sender saw Seq acknowledged
	EvRxHold                            // receiver buffered Seq out of order / behind a fence
	EvRxApply                           // receiver applied Seq to memory
	EvReadServe                         // responder started serving a read request
	EvRxComplete                        // receiver retired the whole operation
	evKindCount
)

var evKindNames = [evKindCount]string{
	"?", "proto-dequeue", "frame-tx", "frame-retx", "nack-repair",
	"rto-repair", "ack", "rx-hold", "rx-apply", "read-serve", "rx-complete",
}

// String returns the event kind's wire name ("frame-tx", ...).
func (k EventKind) String() string {
	if k >= evKindCount {
		return "?"
	}
	return evKindNames[k]
}

// SpanEvent is one timestamped child event of a span.
type SpanEvent struct {
	At   sim.Time
	Kind EventKind
	Node int // node where the event happened
	Link int // rail index for frame events, -1 otherwise
	Seq  uint32
	Len  int // payload bytes for frame events
}

// Span traces one operation end to end. Fields are written by the
// instrumented layers and read by the exporters; no methods mutate
// simulation state.
type Span struct {
	ID     SpanID
	Name   string // op kind: "write", "read", "write-notify", or layer op
	Layer  string // "core", "dsm", "blk", "msg"
	Size   int    // payload bytes
	Start  sim.Time
	End    sim.Time
	Done   bool
	Events []SpanEvent

	reg *Registry
}

// EnableSpans switches span recording on. Nil-safe.
func (r *Registry) EnableSpans() {
	if r != nil {
		r.spansOn = true
	}
}

// SpansEnabled reports whether spans are being recorded; false on nil,
// so instrumented code can gate all span work on this single check.
func (r *Registry) SpansEnabled() bool { return r != nil && r.spansOn }

// StartOpSpan opens a span for an operation. Returns nil (safe to use)
// when spans are disabled or the registry is nil. Opening the same id
// twice returns the existing span.
func (r *Registry) StartOpSpan(id SpanID, layer, name string, size int) *Span {
	if !r.SpansEnabled() {
		return nil
	}
	if s, ok := r.open[id]; ok {
		return s
	}
	s := &Span{ID: id, Name: name, Layer: layer, Size: size, Start: r.env.Now(), reg: r}
	r.open[id] = s
	r.spans = append(r.spans, s)
	return s
}

// FindSpan returns the open span with the given id, or nil.
func (r *Registry) FindSpan(id SpanID) *Span {
	if !r.SpansEnabled() {
		return nil
	}
	return r.open[id]
}

// StartLayerSpan opens a span that is not tied to a wire-visible
// operation id — DSM page fetches, block commits, message sends. The
// registry allocates it a private id (Conn = layerConn) so it can never
// collide with protocol op ids.
func (r *Registry) StartLayerSpan(node int, layer, name string, size int) *Span {
	if !r.SpansEnabled() {
		return nil
	}
	r.autoOp++
	id := SpanID{Node: node, Conn: layerConn, Op: r.autoOp}
	return r.StartOpSpan(id, layer, name, size)
}

// layerConn is the reserved connection id for layer spans; real
// connection ids are small per-endpoint indices that never get near it.
const layerConn = ^uint32(0)

// Event appends a child event. Nil-safe: instrumented code can hold a
// nil *Span and call this unconditionally.
func (s *Span) Event(at sim.Time, kind EventKind, node, link int, seq uint32, n int) {
	if s == nil {
		return
	}
	s.Events = append(s.Events, SpanEvent{At: at, Kind: kind, Node: node, Link: link, Seq: seq, Len: n})
}

// EndAt closes the span at the given time, removes it from the open
// set, and feeds the op-latency histogram. Nil-safe and idempotent.
func (s *Span) EndAt(at sim.Time) {
	if s == nil || s.Done {
		return
	}
	s.Done = true
	s.End = at
	if r := s.reg; r != nil {
		delete(r.open, s.ID)
		if r.latencyOn {
			hk := s.Layer + "\xff" + s.Name
			h, ok := r.opLatency[hk]
			if !ok {
				h = &Histogram{
					name:   "op_latency_us",
					labels: sortedLabels([]Label{L("layer", s.Layer), L("op", s.Name)}),
					bounds: LatencyBucketsUs,
					counts: make([]uint64, len(LatencyBucketsUs)+1),
				}
				r.opLatency[hk] = h
				r.latencyOrd = append(r.latencyOrd, hk)
			}
			h.Observe(float64(at-s.Start) / 1000) // ns → µs
		}
	}
}

// Spans returns all recorded spans in creation order (nil on nil
// registry).
func (r *Registry) Spans() []*Span {
	if r == nil {
		return nil
	}
	return r.spans
}

// Retransmits counts the frame-retx events in the span (0 on nil).
func (s *Span) Retransmits() int {
	if s == nil {
		return 0
	}
	n := 0
	for _, e := range s.Events {
		if e.Kind == EvFrameRetx {
			n++
		}
	}
	return n
}

// String renders a compact identity for test failure messages.
func (id SpanID) String() string {
	return "n" + strconv.Itoa(id.Node) + "/c" + strconv.FormatUint(uint64(id.Conn), 10) +
		"/op" + strconv.FormatUint(id.Op, 10)
}
