package obs

import (
	"bytes"
	"strings"
	"testing"

	"multiedge/internal/sim"
)

// TestPromEscape pins the exposition-format escaping rules: exactly
// backslash, double-quote and newline are escaped; everything else —
// tabs, non-ASCII, control-adjacent runes — passes through verbatim.
func TestPromEscape(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"plain", "plain"},
		{`back\slash`, `back\\slash`},
		{`quo"te`, `quo\"te`},
		{"new\nline", `new\nline`},
		{"tab\there", "tab\there"},
		{"μs-path", "μs-path"},
		{`all "three"` + "\n" + `\`, `all \"three\"\n\\`},
	} {
		if got := promEscape(tc.in); got != tc.want {
			t.Errorf("promEscape(%q) = %q; want %q", tc.in, got, tc.want)
		}
	}
}

// TestPrometheusExportHygiene is the golden double-scrape test: a
// registry with adversarial label values must export deterministically
// (two scrapes byte-identical), in sorted order, with correctly escaped
// values.
func TestPrometheusExportHygiene(t *testing.T) {
	env := sim.NewEnv(1)
	r := New(env)
	r.Counter("evil_total", L("path", `C:\tmp\"x"`+"\nend")).Add(3)
	r.Counter("evil_total", L("path", "plain")).Inc()
	r.Gauge("zz_last", NodeLabel(1)).Set(2)
	r.Gauge("aa_first", NodeLabel(0)).Set(1)

	one := r.Gather().Prometheus()
	two := r.Gather().Prometheus()
	if !bytes.Equal(one, two) {
		t.Fatalf("double scrape differs:\n--- first\n%s\n--- second\n%s", one, two)
	}

	s := string(one)
	if !strings.Contains(s, `path="C:\\tmp\\\"x\"\nend"`) {
		t.Fatalf("label value not escaped per exposition format:\n%s", s)
	}
	if strings.Contains(s, "\nend\"") {
		t.Fatalf("raw newline leaked into a label value:\n%s", s)
	}
	// Deterministic ordering: families sorted by name, series within a
	// family sorted by labels.
	aa := strings.Index(s, "aa_first")
	ev := strings.Index(s, "evil_total")
	zz := strings.Index(s, "zz_last")
	if aa < 0 || ev < 0 || zz < 0 || !(aa < ev && ev < zz) {
		t.Fatalf("families not in sorted order (aa=%d evil=%d zz=%d):\n%s", aa, ev, zz, s)
	}
	if p, q := strings.Index(s, `path="C:`), strings.Index(s, `path="plain"`); p > q {
		t.Fatalf("series within a family not sorted:\n%s", s)
	}
}
