package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"multiedge/internal/sim"
)

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Record(1, 0, RecDial, 0, 0) // must not panic
	if r.Len() != 0 || r.Recorded() != 0 || r.Events() != nil || r.Node() != -1 {
		t.Fatal("nil recorder not inert")
	}
}

func TestRecorderRingWrap(t *testing.T) {
	r := NewRecorder(3, 4)
	for i := 0; i < 10; i++ {
		r.Record(sim.Time(i), uint32(i%2), RecSched, int64(i), 0)
	}
	if r.Len() != 4 || r.Recorded() != 10 {
		t.Fatalf("len=%d recorded=%d; want 4, 10", r.Len(), r.Recorded())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("Events() returned %d events", len(evs))
	}
	// Oldest-first: the four survivors are records 6..9.
	for i, ev := range evs {
		if ev.A != int64(6+i) || ev.At != sim.Time(6+i) {
			t.Fatalf("event %d = %+v; want record %d", i, ev, 6+i)
		}
	}
}

func TestRecorderEventsBeforeWrap(t *testing.T) {
	r := NewRecorder(0, 8)
	r.Record(5, RecNoConn, RecDoorbell, 2, 0)
	r.Record(9, 1, RecEstablished, 1, 0)
	evs := r.Events()
	if len(evs) != 2 || evs[0].Kind != RecDoorbell || evs[1].Kind != RecEstablished {
		t.Fatalf("events = %+v", evs)
	}
}

func TestRecKindStrings(t *testing.T) {
	for k := RecDial; k < recKindCount; k++ {
		if s := k.String(); s == "?" || s == "" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if RecKind(0).String() != "?" || RecKind(200).String() != "?" {
		t.Fatal("out-of-range kinds must render as ?")
	}
}

// TestPostMortemKeepsStateTransitions: a doorbell storm on one busy
// connection must not push that connection's own lifecycle history out
// of the dump — state transitions survive the last-N bound.
func TestPostMortemKeepsStateTransitions(t *testing.T) {
	r := NewRecorder(0, 256)
	r.Record(1, 7, RecDial, 1, 0)
	r.Record(2, 7, RecEstablished, 1, 0)
	for i := 0; i < 100; i++ {
		r.Record(sim.Time(10+i), 7, RecDoorbell, int64(i), 0)
	}
	r.Record(200, 7, RecFailed, 3, 2)
	pm := BuildPostMortem("test: forced", 300, nil, r)
	if len(pm.Nodes) != 1 {
		t.Fatalf("nodes = %d", len(pm.Nodes))
	}
	evs := pm.Nodes[0].Events
	var kinds []RecKind
	for _, ev := range evs {
		kinds = append(kinds, ev.Kind)
	}
	if kinds[0] != RecDial || kinds[1] != RecEstablished || kinds[len(kinds)-1] != RecFailed {
		t.Fatalf("lifecycle events evicted: %v", kinds)
	}
	// The bound still applies to non-transition events.
	doorbells := 0
	for _, k := range kinds {
		if k == RecDoorbell {
			doorbells++
		}
	}
	if doorbells >= 100 || doorbells == 0 {
		t.Fatalf("doorbell tail = %d; want 0 < n < 100 (bounded)", doorbells)
	}
}

func TestPostMortemJSONAndTimeline(t *testing.T) {
	r0, r1 := NewRecorder(0, 8), NewRecorder(1, 8)
	r0.Record(1000, 1, RecDial, 1, 1)
	r0.Record(2000, 1, RecRtoExpiry, 1, 3)
	r0.Record(3000, 1, RecPeerDead, 1, 4)
	r1.Record(1500, 1, RecEstablished, 1, 0)
	r1.Record(2500, RecNoConn, RecSched, 0, 1)
	faults := []TimelineNote{{At: 1800, Text: "pause node 1 \"hard\""}}
	pm := BuildPostMortem("peer-death: conn 1", 4000, faults, r0, nil, r1)

	out := pm.JSON()
	if !json.Valid(out) {
		t.Fatalf("dump is not valid JSON:\n%s", out)
	}
	if !bytes.Equal(out, BuildPostMortem("peer-death: conn 1", 4000, faults, r0, nil, r1).JSON()) {
		t.Fatal("dump JSON not deterministic")
	}
	var doc struct {
		Schema string `json:"schema"`
		Cause  string `json:"cause"`
		Nodes  []struct {
			Node   int `json:"node"`
			Events []struct {
				Conn int    `json:"conn"`
				Kind string `json:"kind"`
			} `json:"events"`
		} `json:"nodes"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != "multiedge-postmortem/v1" || len(doc.Nodes) != 2 {
		t.Fatalf("schema=%q nodes=%d", doc.Schema, len(doc.Nodes))
	}
	if doc.Nodes[1].Events[1].Conn != -1 {
		t.Fatalf("RecNoConn must serialize as -1: %+v", doc.Nodes[1].Events[1])
	}

	tl := pm.Timeline()
	for _, want := range []string{
		"POST-MORTEM at 4.000us: peer-death: conn 1",
		`FAULT  pause node 1 "hard"`,
		"peer-dead",
		"rto-expiry",
		"endpoint",
	} {
		if !strings.Contains(tl, want) {
			t.Fatalf("timeline missing %q:\n%s", want, tl)
		}
	}
	// Chronological merge: the fault lands between dial (1000) and
	// rto-expiry (2000).
	if strings.Index(tl, "FAULT") < strings.Index(tl, "dial") ||
		strings.Index(tl, "FAULT") > strings.Index(tl, "rto-expiry") {
		t.Fatalf("timeline not chronologically merged:\n%s", tl)
	}
}

func TestHealthTimelineJSON(t *testing.T) {
	env := sim.NewEnv(1)
	r := New(env)
	calls := 0
	l := r.SampleHealth(0, sim.Millisecond, func() EndpointHealth {
		calls++
		return EndpointHealth{
			At: env.Now(), Node: 0, ActiveConns: 1,
			Conns: []ConnHealth{{Conn: 1, Peer: 1, State: "established",
				Incarnation: 2, SRTTUs: 12.5, Window: 16, BytesAcked: 4096}},
		}
	})
	env.Go("work", func(p *sim.Proc) { p.Sleep(5 * sim.Millisecond) })
	env.Run()
	r.Quiesce()
	if calls == 0 || len(l.Entries) != calls {
		t.Fatalf("sampled %d times, kept %d entries", calls, len(l.Entries))
	}
	out := HealthTimelineJSON(r.HealthLogs())
	if !json.Valid(out) {
		t.Fatalf("health timeline invalid JSON:\n%s", out)
	}
	for _, want := range []string{`"schema":"multiedge-health/v1"`, `"state":"established"`,
		`"srtt_us":12.5`, `"bytes_acked":4096`} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("health timeline missing %s:\n%s", want, out)
		}
	}
	// Stopped log must not keep sampling.
	l.Stop()
	n := len(l.Entries)
	env.Go("more", func(p *sim.Proc) { p.Sleep(5 * sim.Millisecond) })
	env.Run()
	if len(l.Entries) != n {
		t.Fatal("stopped health log kept sampling")
	}
}
