package bench

// Perf-trajectory output: every medbench mode can serialize its
// measurements as a schema-versioned BENCH_<mode>.json document, and
// CompareBench diffs two documents row-by-row so CI can ratchet
// performance (fail on ops/s or tail-latency regressions) against a
// committed baseline. Rows are matched by name; the headline figures
// (ops/s, goodput, latency percentiles) derive from virtual simulation
// time, so identical seeds produce identical documents on any machine
// and committed baselines stay stable. Allocation figures are wall-side
// (they depend on the Go runtime) but deterministic enough to ratchet
// with slack: CompareBench fails when allocs/op grows more than 25%
// over a nonzero baseline, guarding the pooled hot path against
// re-introduced per-op churn.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// BenchSchema versions the BENCH_*.json document format.
const BenchSchema = "multiedge-bench/v1"

// BenchRow is one named measurement in a bench document.
type BenchRow struct {
	Name        string             `json:"name"`
	Ops         int                `json:"ops"`
	OpsPerSec   float64            `json:"ops_per_sec"`
	GoodputMBs  float64            `json:"goodput_mbs"`
	P50Us       float64            `json:"p50_us"`
	P95Us       float64            `json:"p95_us"`
	P99Us       float64            `json:"p99_us"`
	AllocsPerOp float64            `json:"allocs_per_op"` // wall-side, ratcheted with 25% slack
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// BenchDoc is one BENCH_<mode>.json document.
type BenchDoc struct {
	Schema string     `json:"schema"`
	Mode   string     `json:"mode"`
	Rows   []BenchRow `json:"rows"`
}

// NewBenchDoc returns an empty document for mode.
func NewBenchDoc(mode string) *BenchDoc {
	return &BenchDoc{Schema: BenchSchema, Mode: mode}
}

// JSON renders the document deterministically: fixed field order, rows
// in append order, extra keys sorted (encoding/json would randomize
// map iteration).
func (d *BenchDoc) JSON() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "{\"schema\":%q,\"mode\":%q,\"rows\":[", d.Schema, d.Mode)
	for i, r := range d.Rows {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "\n{\"name\":%q,\"ops\":%d,\"ops_per_sec\":%g,\"goodput_mbs\":%g,"+
			"\"p50_us\":%g,\"p95_us\":%g,\"p99_us\":%g,\"allocs_per_op\":%g",
			r.Name, r.Ops, r.OpsPerSec, r.GoodputMBs, r.P50Us, r.P95Us, r.P99Us, r.AllocsPerOp)
		if len(r.Extra) > 0 {
			keys := make([]string, 0, len(r.Extra))
			for k := range r.Extra {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			b.WriteString(",\"extra\":{")
			for j, k := range keys {
				if j > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "%q:%g", k, r.Extra[k])
			}
			b.WriteByte('}')
		}
		b.WriteByte('}')
	}
	b.WriteString("\n]}\n")
	return []byte(b.String())
}

// WriteFile writes the document to path.
func (d *BenchDoc) WriteFile(path string) error {
	return os.WriteFile(path, d.JSON(), 0o644)
}

// ParseBench parses a BENCH_*.json document and validates its schema.
func ParseBench(data []byte) (*BenchDoc, error) {
	var d BenchDoc
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("bench: parsing document: %w", err)
	}
	if !strings.HasPrefix(d.Schema, "multiedge-bench/") {
		return nil, fmt.Errorf("bench: unknown schema %q (want %s)", d.Schema, BenchSchema)
	}
	return &d, nil
}

// ReadBenchFile reads and parses one BENCH_*.json file.
func ReadBenchFile(path string) (*BenchDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	d, err := ParseBench(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// Regression thresholds for CompareBench: ops/s may not drop by more
// than 10%, p99 latency may not grow by more than 20%, and allocs/op
// may not grow by more than 25% relative to the baseline. The alloc
// slack is the widest because the figure is wall-side: GC timing and
// pool warmup vary run to run, while the virtual-time figures do not.
const (
	opsRegressionFrac    = 0.10
	p99RegressionFrac    = 0.20
	allocsRegressionFrac = 0.25
)

// CompareBench diffs cur against the base document and returns one
// human-readable line per regression (empty = ratchet holds). Rows are
// matched by name; rows present only in base fail (a measurement
// disappeared), rows present only in cur pass (new coverage). Rows
// with a zero baseline figure skip that figure's check — there is
// nothing to regress from.
func CompareBench(base, cur *BenchDoc) []string {
	var fails []string
	curRows := make(map[string]BenchRow, len(cur.Rows))
	for _, r := range cur.Rows {
		curRows[r.Name] = r
	}
	for _, b := range base.Rows {
		c, ok := curRows[b.Name]
		if !ok {
			fails = append(fails, fmt.Sprintf("%s: row missing from current document", b.Name))
			continue
		}
		if b.OpsPerSec > 0 && c.OpsPerSec < b.OpsPerSec*(1-opsRegressionFrac) {
			fails = append(fails, fmt.Sprintf("%s: ops/s regressed %.0f -> %.0f (-%.1f%%, limit %.0f%%)",
				b.Name, b.OpsPerSec, c.OpsPerSec,
				100*(1-c.OpsPerSec/b.OpsPerSec), 100*opsRegressionFrac))
		}
		if b.P99Us > 0 && c.P99Us > b.P99Us*(1+p99RegressionFrac) {
			fails = append(fails, fmt.Sprintf("%s: p99 regressed %.1fus -> %.1fus (+%.1f%%, limit %.0f%%)",
				b.Name, b.P99Us, c.P99Us,
				100*(c.P99Us/b.P99Us-1), 100*p99RegressionFrac))
		}
		if b.AllocsPerOp > 0 && c.AllocsPerOp > b.AllocsPerOp*(1+allocsRegressionFrac) {
			fails = append(fails, fmt.Sprintf("%s: allocs/op regressed %.2f -> %.2f (+%.1f%%, limit %.0f%%)",
				b.Name, b.AllocsPerOp, c.AllocsPerOp,
				100*(c.AllocsPerOp/b.AllocsPerOp-1), 100*allocsRegressionFrac))
		}
	}
	return fails
}

// BenchRow converts one fan-in measurement into a bench-document row.
func (r FaninResult) BenchRow() BenchRow {
	row := BenchRow{
		Name:       fmt.Sprintf("fanin-%d", r.Conns),
		Ops:        r.Ops,
		OpsPerSec:  r.OpsPerSec,
		GoodputMBs: r.GoodMB,
		P50Us:      r.P50Us,
		P95Us:      r.P95Us,
		P99Us:      r.P99Us,
		Extra: map[string]float64{
			"conns":          float64(r.Conns),
			"client_nodes":   float64(r.ClientNodes),
			"pending_events": float64(r.PendingEvents),
			"active_conns":   float64(r.ActiveConns),
		},
	}
	if r.DataOK {
		row.Extra["data_ok"] = 1
	} else {
		row.Extra["data_ok"] = 0
	}
	return row
}

// BenchRow converts one noisy-neighbor phase into a bench-document
// row. The latency percentiles are the victim tenant's closed-loop op
// latencies — the figures the QoS isolation ratchet watches.
func (r NoisyResult) BenchRow() BenchRow {
	row := BenchRow{
		Name:      "noisy-" + r.Phase,
		Ops:       r.VictimOps,
		OpsPerSec: r.OpsPerSec,
		P50Us:     r.P50Us,
		P95Us:     r.P95Us,
		P99Us:     r.P99Us,
		Extra: map[string]float64{
			"flood_ops":          float64(r.FloodOps),
			"qos_waits":          float64(r.AdmissionWaits),
			"qos_rate_deferrals": float64(r.RateDeferrals),
			"pending_events":     float64(r.PendingEvents),
			"active_conns":       float64(r.ActiveConns),
		},
	}
	if r.DataOK {
		row.Extra["data_ok"] = 1
	} else {
		row.Extra["data_ok"] = 0
	}
	return row
}

// BenchRow converts one incast phase into a bench-document row.
func (r IncastResult) BenchRow() BenchRow {
	mode := "ccoff"
	if r.CC {
		mode = "ccon"
	}
	row := BenchRow{
		Name:       fmt.Sprintf("incast-%d-%s", r.Senders, mode),
		Ops:        r.Ops,
		OpsPerSec:  r.OpsPerSec,
		GoodputMBs: r.GoodMB,
		P50Us:      r.P50Us,
		P95Us:      r.P95Us,
		P99Us:      r.P99Us,
		Extra: map[string]float64{
			"utilization":    r.Utilization,
			"jain":           r.Jain,
			"failed_ops":     float64(r.Failed),
			"peer_deaths":    float64(r.PeerDeaths),
			"ecn_marks":      float64(r.EcnMarks),
			"cwnd_cuts":      float64(r.CwndCuts),
			"switch_drops":   float64(r.SwitchDrops),
			"retrans":        float64(r.Retrans),
			"pending_events": float64(r.PendingEvents),
			"active_conns":   float64(r.ActiveConns),
		},
	}
	if r.DataOK {
		row.Extra["data_ok"] = 1
	} else {
		row.Extra["data_ok"] = 0
	}
	return row
}

// BenchRow converts one parking-lot phase into a bench-document row.
func (r ParkingLotResult) BenchRow() BenchRow {
	mode := "rr"
	if r.Adaptive {
		mode = "adaptive"
	}
	row := BenchRow{
		Name:       "parkinglot-" + mode,
		Ops:        r.Ops,
		OpsPerSec:  r.OpsPerSec,
		GoodputMBs: r.GoodMB,
		P50Us:      r.P50Us,
		P99Us:      r.P99Us,
		Extra: map[string]float64{
			"rail1_share":    r.Rail1Share,
			"bg_ops":         float64(r.BgOps),
			"pending_events": float64(r.PendingEvents),
			"active_conns":   float64(r.ActiveConns),
		},
	}
	if r.DataOK {
		row.Extra["data_ok"] = 1
	} else {
		row.Extra["data_ok"] = 0
	}
	return row
}

// BenchRow converts one crash-loop measurement into a bench-document
// row. Ops/s is streamed transfers over the run's virtual extent; the
// latency percentiles are recovery latencies (restore to first
// completed transfer), the figure this harness exists to measure.
func (r CrashloopResult) BenchRow() BenchRow {
	row := BenchRow{
		Name:  fmt.Sprintf("crashloop-di%dms", int64(r.Opts.DeadInterval)/1e6),
		Ops:   r.Transfers,
		P50Us: r.RecoverP50.Micros(),
		P99Us: r.RecoverMax.Micros(),
		Extra: map[string]float64{
			"recovered":    float64(r.Recovered),
			"cycles":       float64(r.Opts.Cycles),
			"reconnects":   float64(r.Reconnects),
			"replayed_ops": float64(r.ReplayedOps),
		},
	}
	if r.EndedAt > 0 {
		row.OpsPerSec = float64(r.Transfers) / r.EndedAt.Seconds()
		row.GoodputMBs = float64(r.Transfers*r.Opts.Bytes) / 1e6 / r.EndedAt.Seconds()
	}
	return row
}

// BenchRow converts one small-op measurement into a bench-document row.
func (r SmallOpResult) BenchRow() BenchRow {
	mode := "eager"
	if r.Batch > 0 {
		mode = fmt.Sprintf("sq%d", r.Batch)
	}
	return BenchRow{
		Name:       fmt.Sprintf("smallops-%s-%dB-%s", r.Config, r.Size, mode),
		Ops:        r.Count,
		OpsPerSec:  r.MOpsS * 1e6,
		GoodputMBs: r.GoodMB,
		Extra: map[string]float64{
			"doorbells":        float64(r.Doorbells),
			"coalesced_frames": float64(r.CoalescedFrames),
		},
	}
}

// BenchRow converts one micro-benchmark measurement into a
// bench-document row.
func (r MicroResult) BenchRow() BenchRow {
	return BenchRow{
		Name:       fmt.Sprintf("%s-%s-%dB", r.Benchmark, r.Config, r.Size),
		Ops:        1,
		GoodputMBs: r.ThroughputMBs,
		P50Us:      r.LatencyUs,
		P99Us:      r.LatencyUs,
		Extra:      map[string]float64{"cpu_pct": r.CPUPct},
	}
}
