package bench

import (
	"bytes"
	"fmt"
	"strings"

	"multiedge/internal/chaos"
	"multiedge/internal/cluster"
	"multiedge/internal/core"
	"multiedge/internal/frame"
	"multiedge/internal/obs"
	"multiedge/internal/sim"
	"multiedge/internal/trace"
)

// Noisy-neighbor isolation: one latency-sensitive victim tenant shares
// an endpoint with an elephant-flow flood tenant, the scenario ISSUE
// 8's QoS layer exists for. The bench runs three phases over identical
// seeds — victim alone, victim + flood with QoS off (the starvation
// demonstration), victim + flood with QoS on — and gates that
// weighted-fair scheduling plus the flood class's rate cap keep the
// victim's p99 within noisyP99Bound of its isolated baseline.

// Tenant class table shared by every QoS-on noisy run: class 1 is the
// victim (weight 8), class 2 the flood (weight 1, rate-capped and
// quota-bounded). Class 0 is the default class nothing here uses for
// data traffic.
func noisyClasses() []core.QoSClass {
	return []core.QoSClass{
		{Weight: 1},
		{Weight: 8},
		{Weight: 1, RateBps: 80e6, Burst: 8 << 10, MaxQueued: 16, MaxQueuedBytes: 1 << 20},
	}
}

// noisyP99Bound is the isolation gate: with QoS on, the victim's p99
// under flood may not exceed this multiple of its isolated baseline.
const noisyP99Bound = 3.0

const (
	noisyVictimClass = 1
	noisyFloodClass  = 2
	noisyVictimSize  = 64       // victim op payload bytes
	noisyFloodSize   = 16 << 10 // flood op payload bytes
	noisyFloodConns  = 8
	noisyFloodWindow = 4  // pipelined flood ops per connection
	noisySlots       = 8  // victim buffer rotation
	noisyWarmup      = 32 // unrecorded victim ops that absorb the flood's start-up burst
)

// NoisyOptions parameterizes one phase of the noisy-neighbor bench.
type NoisyOptions struct {
	VictimOps int  // closed-loop victim operations to measure
	QoS       bool // enable the tenant class table
	Flood     bool // run the elephant flood alongside the victim
	Chaos     bool // inject a loss burst mid-run
	Seed      int64

	Obs             cluster.ObsOptions
	DisableRecorder bool
}

// NoisyResult is one phase measurement plus its correctness gates.
type NoisyResult struct {
	Phase     string // "isolated", "qos-off", "qos-on"
	QoSOn     bool
	Flooded   bool
	VictimOps int // victim operations completed
	FloodOps  int // flood operations completed before the victim finished
	Elapsed   sim.Time
	OpsPerSec float64 // victim closed-loop rate
	P50Us     float64 // victim op latency percentiles
	P95Us     float64
	P99Us     float64

	// QoS trace (zero when QoS off).
	AdmissionWaits uint64
	RateDeferrals  uint64

	// Gates.
	DataOK        bool
	PendingEvents int
	ActiveConns   int

	Net cluster.NetReport

	Obs       *obs.Registry
	Recorders []*obs.Recorder
	Dump      *obs.PostMortem
}

// RunNoisy drives one phase: a victim tenant issuing closed-loop 64 B
// solicited writes from node 1 to node 0, optionally sharing node 1's
// endpoint with eight flood connections each streaming pipelined 16 KiB
// writes until the victim finishes. Every connection is tagged with its
// tenant class whether or not QoS is enabled, so the QoS-off phase
// differs only in the scheduler/admission machinery being off.
func RunNoisy(opts NoisyOptions) NoisyResult {
	cfg := cluster.OneLink1G(2)
	cfg.Seed = opts.Seed
	cfg.Core.SchedQueue = true // both phases run the O(1) scheduler; QoS swaps RR for DWFQ
	if opts.QoS {
		cfg.Core.QoS = noisyClasses()
	}
	cfg.Obs = opts.Obs
	cfg.Obs.Recorder = !opts.DisableRecorder
	cl := cluster.New(cfg)
	server := cl.Nodes[0].EP
	client := cl.Nodes[1].EP

	var runner *chaos.Runner
	if opts.Chaos {
		runner = chaos.New(cl, opts.Seed+1)
		// A loss burst on the server rail perturbs victim and flood alike;
		// isolation must hold through the repair traffic.
		runner.LossBurst(500*sim.Microsecond, 5*sim.Millisecond, 0, 0, 0.02)
	}

	rec := &trace.LatencyRecorder{}
	var startSig sim.Signal
	var start, end sim.Time
	parties := 1
	if opts.Flood {
		parties += noisyFloodConns
	}
	dialed := 0
	victimDone := false
	floodOps := 0
	verified := true

	// Victim: closed-loop solicited writes, one at a time, each timed.
	vRemote := server.Alloc(noisySlots * noisyVictimSize)
	vLocal := client.Alloc(noisySlots * noisyVictimSize)
	cl.Env.Go("noisy-victim", func(p *sim.Proc) {
		c := client.Dial(p, 0, 0)
		c.SetClass(noisyVictimClass)
		faninFill(client.Mem()[vLocal:vLocal+uint64(noisySlots*noisyVictimSize)], 11)
		if dialed++; dialed == parties {
			startSig.Fire(cl.Env)
		}
		p.Wait(&startSig)
		// Warmup absorbs the flood's start-up transient (its token bucket
		// opens full) so the percentiles measure steady-state isolation,
		// matching fanin's measure-past-the-dial-storm convention.
		for k := 0; k < noisyWarmup+opts.VictimOps; k++ {
			off := uint64(k % noisySlots * noisyVictimSize)
			t0 := cl.Env.Now()
			c.MustDo(p, core.Op{Remote: vRemote + off, Local: vLocal + off,
				Size: noisyVictimSize, Kind: frame.OpWrite, Flags: frame.Solicit}).Wait(p)
			if k == noisyWarmup-1 {
				start = cl.Env.Now()
			} else if k >= noisyWarmup {
				rec.Record(cl.Env.Now() - t0)
			}
		}
		end = cl.Env.Now()
		victimDone = true
		nb := uint64(noisySlots * noisyVictimSize)
		if opts.VictimOps < noisySlots {
			nb = uint64(opts.VictimOps * noisyVictimSize)
		}
		if !bytes.Equal(server.Mem()[vRemote:vRemote+nb], client.Mem()[vLocal:vLocal+nb]) {
			verified = false
		}
		c.Close(p)
	})

	// Flood: greedy pipelined elephants from the same endpoint. Quota
	// backpressure (QoS on) legitimately blocks them in admission.
	if opts.Flood {
		for j := 0; j < noisyFloodConns; j++ {
			src := client.Alloc(noisyFloodWindow * noisyFloodSize)
			dst := server.Alloc(noisyFloodWindow * noisyFloodSize)
			cl.Env.Go(fmt.Sprintf("noisy-flood%d", j), func(p *sim.Proc) {
				c := client.Dial(p, 0, 0)
				c.SetClass(noisyFloodClass)
				if dialed++; dialed == parties {
					startSig.Fire(cl.Env)
				}
				p.Wait(&startSig)
				var inflight []*core.Handle
				for k := 0; !victimDone; k++ {
					off := uint64(k % noisyFloodWindow * noisyFloodSize)
					inflight = append(inflight, c.MustDo(p, core.Op{Remote: dst + off,
						Local: src + off, Size: noisyFloodSize, Kind: frame.OpWrite}))
					if len(inflight) >= noisyFloodWindow {
						inflight[0].Wait(p)
						inflight = inflight[1:]
						floodOps++
					}
				}
				for _, h := range inflight {
					h.Wait(p)
					floodOps++
				}
				c.Close(p)
			})
		}
	}

	if cl.Obs != nil {
		cl.Env.Run()
		cl.Obs.Quiesce()
	} else {
		cl.Env.RunUntil(600 * sim.Second)
	}

	phase := "isolated"
	if opts.Flood {
		phase = "qos-off"
		if opts.QoS {
			phase = "qos-on"
		}
	}
	r := NoisyResult{
		Phase:     phase,
		QoSOn:     opts.QoS,
		Flooded:   opts.Flood,
		VictimOps: rec.Count(),
		FloodOps:  floodOps,
		DataOK:    verified && victimDone,
		Net:       cl.Collect(),
	}
	if end > start && start > 0 {
		r.Elapsed = end - start
		r.OpsPerSec = float64(r.VictimOps) / r.Elapsed.Seconds()
	}
	r.P50Us = rec.Percentile(50).Micros()
	r.P95Us = rec.Percentile(95).Micros()
	r.P99Us = rec.Percentile(99).Micros()
	r.AdmissionWaits = r.Net.Proto.QosAdmissionWaits
	r.RateDeferrals = r.Net.Proto.QosRateDeferrals
	r.PendingEvents = cl.Env.PendingEvents()
	r.ActiveConns = server.ActiveConns() + client.ActiveConns()
	r.Obs = cl.Obs
	r.Recorders = cl.Recorders
	if !r.DataOK || !r.LeakFree() {
		var faults []obs.TimelineNote
		if runner != nil {
			for _, ev := range runner.Events {
				faults = append(faults, obs.TimelineNote{At: ev.At, Text: ev.What})
			}
		}
		cause := fmt.Sprintf("noisy gate failure (%s): dataOK=%v pendingEvents=%d activeConns=%d",
			r.Phase, r.DataOK, r.PendingEvents, r.ActiveConns)
		r.Dump = obs.BuildPostMortem(cause, cl.Env.Now(), faults, cl.Recorders...)
	}
	return r
}

// LeakFree reports whether the post-teardown gates all passed.
func (r NoisyResult) LeakFree() bool { return r.PendingEvents == 0 && r.ActiveConns == 0 }

func (r NoisyResult) String() string {
	gate := "ok"
	if !r.LeakFree() {
		gate = fmt.Sprintf("LEAK(ev=%d conns=%d)", r.PendingEvents, r.ActiveConns)
	}
	data := "ok"
	if !r.DataOK {
		data = "CORRUPT"
	}
	return fmt.Sprintf("%-8s  %6d victim ops  %9.3fms  %9.0f ops/s  p50 %7.1fus  p95 %7.1fus  p99 %8.1fus  flood %6d ops  waits %4d  defers %5d  data %-7s leak %s",
		r.Phase, r.VictimOps, r.Elapsed.Micros()/1e3, r.OpsPerSec,
		r.P50Us, r.P95Us, r.P99Us, r.FloodOps, r.AdmissionWaits, r.RateDeferrals, data, gate)
}

// RenderNoisy runs the three noisy-neighbor phases and gates the QoS-on
// victim p99 against noisyP99Bound times the isolated baseline. The
// QoS-off phase is the starvation demonstration: its p99 must exceed
// the QoS-on p99, or the flood was not actually contending. ok is false
// if any gate, byte-verification or leak check failed.
func RenderNoisy(victimOps int, withChaos bool, obsOpts cluster.ObsOptions) (out string, ok bool, results []NoisyResult) {
	var b strings.Builder
	chaosNote := ""
	if withChaos {
		chaosNote = ", loss burst on"
	}
	fmt.Fprintf(&b, "Noisy neighbor: 1 victim conn (class 1, w=8, %dB solicited writes) vs %d flood conns (class 2, w=1, %dKiB, rate-capped) on one endpoint, 1L-1G\n",
		noisyVictimSize, noisyFloodConns, noisyFloodSize>>10)
	fmt.Fprintf(&b, "(%d closed-loop victim ops; QoS classes %+v%s)\n\n", victimOps, noisyClasses(), chaosNote)
	ok = true
	phases := []NoisyOptions{
		{VictimOps: victimOps, QoS: true, Flood: false, Chaos: withChaos, Seed: 42, Obs: obsOpts},
		{VictimOps: victimOps, QoS: false, Flood: true, Chaos: withChaos, Seed: 42, Obs: obsOpts},
		{VictimOps: victimOps, QoS: true, Flood: true, Chaos: withChaos, Seed: 42, Obs: obsOpts},
	}
	for _, po := range phases {
		r := RunNoisy(po)
		results = append(results, r)
		fmt.Fprintf(&b, "  %s\n", r)
		if !r.DataOK || !r.LeakFree() {
			ok = false
			if r.Dump != nil {
				b.WriteString("\n" + r.Dump.Timeline())
			}
		}
	}
	iso, off, on := results[0], results[1], results[2]
	if iso.P99Us > 0 {
		fmt.Fprintf(&b, "\n  victim p99 ratio vs isolated:  qos-off %.2fx   qos-on %.2fx  (gate: qos-on <= %.1fx)\n",
			off.P99Us/iso.P99Us, on.P99Us/iso.P99Us, noisyP99Bound)
	}
	if on.P99Us > iso.P99Us*noisyP99Bound {
		ok = false
		fmt.Fprintf(&b, "\nFAIL: QoS-on victim p99 %.1fus exceeds %.1fx isolated baseline %.1fus\n",
			on.P99Us, noisyP99Bound, iso.P99Us)
	}
	if off.P99Us <= on.P99Us {
		ok = false
		fmt.Fprintf(&b, "\nFAIL: QoS-off victim p99 %.1fus not above QoS-on %.1fus — the flood is not contending\n",
			off.P99Us, on.P99Us)
	}
	if !ok && !strings.Contains(b.String(), "FAIL:") {
		fmt.Fprintf(&b, "\nFAIL: a phase corrupted data or leaked post-close state\n")
	}
	return b.String(), ok, results
}
