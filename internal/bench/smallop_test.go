package bench

import (
	"testing"

	"multiedge/internal/cluster"
)

// TestShapeSmallOpBatchingGain is the tentpole acceptance check: for
// 64-byte one-way writes on 1L-10G, the submission-queue path (doorbell
// batching + frame coalescing, 64 ops per doorbell) must beat the eager
// per-op path by at least 20% in operation rate.
func TestShapeSmallOpBatchingGain(t *testing.T) {
	const size, count, batch = 64, 4096, 64
	eager := RunSmallOps(cluster.OneLink10G(2), size, count, 0)
	sq := RunSmallOps(cluster.OneLink10G(2), size, count, batch)
	t.Logf("eager: %s", eager)
	t.Logf("sq:    %s", sq)
	if eager.MOpsS <= 0 || sq.MOpsS <= 0 {
		t.Fatalf("degenerate rates: eager %.3f, sq %.3f Mops/s", eager.MOpsS, sq.MOpsS)
	}
	if sq.MOpsS < 1.2*eager.MOpsS {
		t.Fatalf("batched small-op rate %.3f Mops/s < 1.2x eager %.3f Mops/s",
			sq.MOpsS, eager.MOpsS)
	}
	if sq.Doorbells == 0 || sq.CoalescedFrames == 0 {
		t.Fatalf("SQ run did not batch: %+v", sq)
	}
	if eager.Doorbells != 0 {
		t.Fatalf("eager run rang doorbells: %+v", eager)
	}
	// Coalescing must also shrink the frame count, not just host cost.
	if sq.DataFrames >= eager.DataFrames {
		t.Errorf("coalescing sent %d data frames, eager sent %d — no wire amortization",
			sq.DataFrames, eager.DataFrames)
	}
}

// TestShapeSmallOpBatchDeterminism: the benchmark itself is a
// simulation; same seed, same numbers.
func TestShapeSmallOpBatchDeterminism(t *testing.T) {
	a := RunSmallOps(cluster.OneLink10G(2), 64, 512, 64)
	b := RunSmallOps(cluster.OneLink10G(2), 64, 512, 64)
	if a != b {
		t.Fatalf("same-seed small-op runs diverged:\n%+v\nvs\n%+v", a, b)
	}
}
