package bench

import (
	"testing"

	"multiedge/internal/sim"
)

// TestCrashloopSmall is the tier-1 crash-loop gate: two crash-restart
// cycles under supervised reconnect must recover service both times,
// verify every byte, and leak neither timers nor connections.
func TestCrashloopSmall(t *testing.T) {
	r := RunCrashloop(CrashloopOptions{
		Cycles: 2, Down: 100 * sim.Millisecond, Bytes: 64 << 10,
		DeadInterval: 25 * sim.Millisecond, Backoff: 2 * sim.Millisecond, Seed: 7,
	})
	if !r.DataOK {
		t.Fatalf("crash loop corrupted data: %s", r)
	}
	if !r.LeakFree() {
		t.Fatalf("crash loop leaked post-close state: %s", r)
	}
	if r.Recovered != 2 {
		t.Fatalf("recovered %d/2 cycles: %s", r.Recovered, r)
	}
	if r.Reconnects == 0 || r.ReplayedOps == 0 {
		t.Fatalf("recovery path not exercised: %s", r)
	}
}

// TestCrashloopARQAbsorbed: a downtime shorter than DeadInterval must
// ride out on plain ARQ — service resumes with no incarnation bump.
func TestCrashloopARQAbsorbed(t *testing.T) {
	r := RunCrashloop(CrashloopOptions{
		Cycles: 2, Down: 30 * sim.Millisecond, Bytes: 64 << 10,
		DeadInterval: 200 * sim.Millisecond, Backoff: 5 * sim.Millisecond, Seed: 7,
	})
	if !r.DataOK || !r.LeakFree() || r.Recovered != 2 {
		t.Fatalf("sub-DeadInterval outage not absorbed: %s", r)
	}
	if r.Reconnects != 0 {
		t.Fatalf("reconnected %d times for an outage ARQ should absorb: %s", r.Reconnects, r)
	}
}

// TestCrashloopDeterministic: identical options must produce identical
// recovery timings — the supervisor draws nothing from wall clocks.
func TestCrashloopDeterministic(t *testing.T) {
	o := CrashloopOptions{Cycles: 2, Down: 100 * sim.Millisecond, Bytes: 64 << 10,
		DeadInterval: 25 * sim.Millisecond, Backoff: 2 * sim.Millisecond, Seed: 11}
	a, b := RunCrashloop(o), RunCrashloop(o)
	// The result now carries non-comparable observability artifacts;
	// String() renders every measured figure, and EndedAt pins the
	// virtual extent.
	if a.String() != b.String() || a.EndedAt != b.EndedAt {
		t.Fatalf("crash loop not deterministic:\n  %s\n  %s", a, b)
	}
}
