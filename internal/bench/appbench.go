package bench

import (
	"fmt"
	"multiedge/internal/apps"
	"multiedge/internal/cluster"
	"multiedge/internal/sim"
	"strings"
)

// AppPoint is one application measurement within a figure.
type AppPoint struct {
	apps.Result
	SeqTime sim.Time // matching 1-node baseline
	Speedup float64
}

// FigureSpec describes one of the paper's application figures.
type FigureSpec struct {
	Figure     string
	Config     func(nodes int) cluster.Config
	NodeCounts []int
}

// AppFigures maps the paper's Figures 3-6 to their cluster setups
// (IPPS'07 §3-4): Fig 3 is 16 nodes on one 1-GBit/s link, Fig 4 is 4
// nodes on 10-GBit/s, Fig 5 adds the second link with strict ordering,
// Fig 6 relaxes the ordering.
func AppFigures() []FigureSpec {
	return []FigureSpec{
		{Figure: "3", Config: cluster.OneLink1G, NodeCounts: []int{1, 2, 4, 8, 16}},
		{Figure: "4", Config: cluster.OneLink10G, NodeCounts: []int{1, 2, 4}},
		{Figure: "5", Config: cluster.TwoLink1G, NodeCounts: []int{16}},
		{Figure: "6", Config: cluster.TwoLinkUnordered1G, NodeCounts: []int{16}},
	}
}

// RunApp executes one application at one scale on one configuration.
func RunApp(cfg cluster.Config, name string, size apps.Size) apps.Result {
	app := apps.Build(name, size, cfg.Nodes)
	res, sys := apps.Run(cfg, app)
	if msg := app.Verify(sys); msg != "" {
		panic("bench: " + msg)
	}
	return res
}

// RunFigure produces all points of one application figure: every app in
// Table-1 order at every node count, with a shared sequential baseline
// for speedups. The baseline for every figure is the 1-node 1L-1G run
// (the paper's sequential execution).
func RunFigure(spec FigureSpec, size apps.Size) []AppPoint {
	var out []AppPoint
	for _, name := range apps.Names {
		seqCfg := cluster.OneLink1G(1)
		seq := RunApp(seqCfg, name, size)
		for _, n := range spec.NodeCounts {
			cfg := spec.Config(n)
			var res apps.Result
			if cfg.Name == seqCfg.Name && n == 1 {
				res = seq
			} else {
				res = RunApp(cfg, name, size)
			}
			out = append(out, AppPoint{
				Result:  res,
				SeqTime: seq.Elapsed,
				Speedup: apps.Speedup(seq.Elapsed, res.Elapsed),
			})
		}
	}
	return out
}

// Table1Row is one row of the paper's Table 1, measured on this
// reproduction's problem sizes.
type Table1Row struct {
	Name      string
	Problem   string
	SeqExec   sim.Time
	Footprint int // shared bytes
}

// ProblemDesc describes the reproduction's problem size for an app.
func ProblemDesc(name string, size apps.Size) string {
	if size != apps.SizeSmall {
		return "custom"
	}
	switch name {
	case "Barnes":
		return "4K particles, 3 steps"
	case "FFT":
		return "2^18 complex values"
	case "LU":
		return "512x512 matrix, 32x32 blocks"
	case "Radix":
		return "256K integers, radix 256"
	case "Raytrace":
		return "balls scene 256x256"
	case "Water-Nsquared":
		return "1K molecules, 2 steps"
	case "Water-Spatial":
		return "12K molecules, 16^3 cells"
	case "Water-SpatialFL":
		return "12K mols, 16^3 cells, fine locks"
	}
	return "?"
}

// RunTable1 measures the sequential execution time and footprint of
// every application (the reproduction's version of Table 1).
func RunTable1(size apps.Size) []Table1Row {
	var rows []Table1Row
	for _, name := range apps.Names {
		app := apps.Build(name, size, 1)
		res, _ := apps.Run(cluster.OneLink1G(1), app)
		rows = append(rows, Table1Row{
			Name:      name,
			Problem:   ProblemDesc(name, size),
			SeqExec:   res.Elapsed,
			Footprint: app.SharedBytes(),
		})
	}
	return rows
}

// ScalingPoint is one entry of the large-configuration experiment the
// paper's §6 calls for: application speedups beyond 16 nodes on flat
// and multi-switch fabrics.
type ScalingPoint struct {
	App     string
	Fabric  string
	Nodes   int
	Speedup float64
}

// RunScaling measures well-scaling applications at 8/16/32 nodes on the
// flat fabric and on a two-level tree (8 nodes per edge switch, 2-wide
// trunks: 4:1 oversubscription).
func RunScaling(size apps.Size) []ScalingPoint {
	appsToRun := []string{"Barnes", "Water-Nsquared", "Raytrace"}
	var out []ScalingPoint
	for _, name := range appsToRun {
		seq := RunApp(cluster.OneLink1G(1), name, size)
		for _, n := range []int{8, 16, 32} {
			flat := RunApp(cluster.OneLink1G(n), name, size)
			out = append(out, ScalingPoint{App: name, Fabric: "flat", Nodes: n,
				Speedup: apps.Speedup(seq.Elapsed, flat.Elapsed)})
			tree := RunApp(cluster.TreeOneLink1G(n, 8, 2), name, size)
			out = append(out, ScalingPoint{App: name, Fabric: "tree8x2", Nodes: n,
				Speedup: apps.Speedup(seq.Elapsed, tree.Elapsed)})
		}
	}
	return out
}

// RenderScaling renders the large-configuration experiment.
func RenderScaling(pts []ScalingPoint) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Scaling beyond the paper (16 -> 32 nodes, flat vs 4:1-oversubscribed tree)")
	fmt.Fprintf(&b, "%-16s %-8s %8s %8s %8s\n", "application", "fabric", "8", "16", "32")
	type key struct{ app, fab string }
	rows := map[key][3]float64{}
	idx := map[int]int{8: 0, 16: 1, 32: 2}
	order := []key{}
	for _, p := range pts {
		k := key{p.App, p.Fabric}
		if _, ok := rows[k]; !ok {
			order = append(order, k)
		}
		r := rows[k]
		r[idx[p.Nodes]] = p.Speedup
		rows[k] = r
	}
	for _, k := range order {
		r := rows[k]
		fmt.Fprintf(&b, "%-16s %-8s %8.2f %8.2f %8.2f\n", k.app, k.fab, r[0], r[1], r[2])
	}
	return b.String()
}
