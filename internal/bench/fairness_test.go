package bench

import (
	"fmt"
	"testing"

	"multiedge/internal/chaos"
	"multiedge/internal/cluster"
	"multiedge/internal/core"
	"multiedge/internal/frame"
	"multiedge/internal/sim"
)

// runFairness drives conns closed-loop writers, all from node 1's
// endpoint to node 0 so every connection contends in one send
// scheduler, and returns each connection's elapsed time from the shared
// start barrier to its last completed op. With identical per-conn work,
// the elapsed-time spread IS the scheduler's service-share skew: a
// starved connection finishes late.
func runFairness(t *testing.T, conns, opsPerConn, size int, qos []core.QoSClass, loss bool) []sim.Time {
	t.Helper()
	cfg := cluster.OneLink1G(2)
	cfg.Seed = 42
	cfg.Core.SchedQueue = true
	cfg.Core.QoS = qos
	cfg.Core.MemBytes = 2*conns*size + (1 << 20)
	cl := cluster.New(cfg)
	server := cl.Nodes[0].EP
	client := cl.Nodes[1].EP

	if loss {
		r := chaos.New(cl, 43)
		r.LossBurst(100*sim.Microsecond, 60*sim.Second, 1, 0, 0.02)
	}

	var startSig sim.Signal
	var start sim.Time
	startSig.OnFire(cl.Env, func() { start = cl.Env.Now() })
	elapsed := make([]sim.Time, conns)
	dialed := 0
	for j := 0; j < conns; j++ {
		j := j
		remote := server.Alloc(size)
		local := client.Alloc(size)
		cl.Env.Go(fmt.Sprintf("fair%d", j), func(p *sim.Proc) {
			c := client.Dial(p, 0, 0)
			if len(qos) > 0 {
				c.SetClass(j % len(qos))
			}
			if dialed++; dialed == conns {
				startSig.Fire(cl.Env)
			}
			p.Wait(&startSig)
			for k := 0; k < opsPerConn; k++ {
				c.MustDo(p, core.Op{Remote: remote, Local: local,
					Size: size, Kind: frame.OpWrite}).Wait(p)
			}
			elapsed[j] = cl.Env.Now() - start
			c.Close(p)
		})
	}
	cl.Env.RunUntil(600 * sim.Second)
	if n := cl.Env.PendingEvents(); n != 0 {
		t.Fatalf("%d events still pending after teardown", n)
	}
	if n := server.ActiveConns() + client.ActiveConns(); n != 0 {
		t.Fatalf("%d connections still tabled after teardown", n)
	}
	return elapsed
}

// skew returns max/min over the per-conn elapsed times.
func skew(elapsed []sim.Time) float64 {
	min, max := elapsed[0], elapsed[0]
	for _, e := range elapsed {
		if e == 0 {
			return -1 // a conn never finished: infinite skew
		}
		if e < min {
			min = e
		}
		if e > max {
			max = e
		}
	}
	return float64(max) / float64(min)
}

// TestSchedulerFairness: at 512 connections in one endpoint scheduler,
// neither the round-robin baseline (QoS off) nor deficit-weighted fair
// queueing over equal-weight classes (QoS on) may starve any
// connection: every conn finishes identical work within a bounded
// multiple of the fastest, with and without 2% loss.
func TestSchedulerFairness(t *testing.T) {
	conns := 512
	if testing.Short() {
		conns = 128
	}
	equal := []core.QoSClass{{Weight: 1}, {Weight: 1}, {Weight: 1}, {Weight: 1}}
	for _, tc := range []struct {
		name  string
		qos   []core.QoSClass
		loss  bool
		bound float64
	}{
		{"rr", nil, false, 1.5},
		{"dwfq", equal, false, 1.5},
		// Loss makes individual conns wait out retransmission timeouts;
		// the bound only excludes starvation-grade skew.
		{"rr-loss", nil, true, 3.0},
		{"dwfq-loss", equal, true, 3.0},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			elapsed := runFairness(t, conns, 16, 256, tc.qos, tc.loss)
			s := skew(elapsed)
			if s < 0 {
				t.Fatalf("a connection never completed its ops (starved)")
			}
			if s > tc.bound {
				t.Errorf("per-conn service skew %.2fx exceeds %.1fx across %d conns", s, tc.bound, conns)
			}
			t.Logf("%d conns: skew %.3fx", conns, s)
		})
	}
}

// TestDWFQWeightedShare: two always-backlogged connections in classes
// weighted 3:1 must see long-run service in that ratio — the deficit
// counter's negative carry-over makes DRR converge on exact weight
// proportions, so the tolerance only absorbs edge effects.
func TestDWFQWeightedShare(t *testing.T) {
	// Solicited acks and a deep pipeline keep both connections wire-
	// saturating; with lazy (delayed) acks the conns would be RTT-bound
	// below link rate and there would be no backlog for weights to
	// shape.
	const (
		size   = 1024
		window = 32
		runFor = 20 * sim.Millisecond
	)
	cfg := cluster.OneLink1G(2)
	cfg.Seed = 42
	cfg.Core.SchedQueue = true
	cfg.Core.QoS = []core.QoSClass{{Weight: 1}, {Weight: 3}, {Weight: 1}}
	cl := cluster.New(cfg)
	server := cl.Nodes[0].EP
	client := cl.Nodes[1].EP

	done := make([]int, 2)
	for j := 0; j < 2; j++ {
		j := j
		remote := server.Alloc(window * size)
		local := client.Alloc(window * size)
		cl.Env.Go(fmt.Sprintf("share%d", j), func(p *sim.Proc) {
			c := client.Dial(p, 0, 0)
			c.SetClass(1 + j) // weights 3 and 1
			var inflight []*core.Handle
			for k := 0; cl.Env.Now() < runFor; k++ {
				off := uint64(k % window * size)
				inflight = append(inflight, c.MustDo(p, core.Op{Remote: remote + off,
					Local: local + off, Size: size, Kind: frame.OpWrite, Flags: frame.Solicit}))
				if len(inflight) >= window {
					inflight[0].Wait(p)
					inflight = inflight[1:]
					done[j]++
				}
			}
			for _, h := range inflight {
				h.Wait(p)
				done[j]++
			}
			c.Close(p)
		})
	}
	cl.Env.RunUntil(600 * sim.Second)
	if done[0] == 0 || done[1] == 0 {
		t.Fatalf("a class got no service: done=%v", done)
	}
	ratio := float64(done[0]) / float64(done[1])
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("weight-3 class served %.2fx the weight-1 class, want ~3x (done=%v)", ratio, done)
	}
	t.Logf("3:1 weights served %d:%d ops (%.2fx)", done[0], done[1], ratio)
}
