package bench

import (
	"bytes"
	"fmt"
	"strings"

	"multiedge/internal/chaos"
	"multiedge/internal/cluster"
	"multiedge/internal/core"
	"multiedge/internal/frame"
	"multiedge/internal/obs"
	"multiedge/internal/sim"
	"multiedge/internal/trace"
)

// Fan-in stress: many client connections converging on one server
// endpoint, the workload ISSUE 4's endpoint-scaling work exists for.
// Every run drives the scaled configuration (connection scheduler +
// timer wheel + submission queue), byte-verifies every transfer, and
// closes every connection at the end so the post-run leak gate can
// assert that the event queue drained and the server's connection table
// emptied.

// FaninOptions parameterizes one fan-in run.
type FaninOptions struct {
	Conns      int  // client connections converging on the server
	OpsPerConn int  // closed-loop operations per connection
	Size       int  // bytes per operation
	Chaos      bool // inject loss/dup bursts mid-run
	Seed       int64

	// Obs composes the observability registry (metrics, spans, health
	// sampling) into the run; the zero value keeps it off. The flight
	// recorder is attached regardless — recording is pure observation —
	// unless DisableRecorder (for overhead A/B measurements).
	Obs             cluster.ObsOptions
	DisableRecorder bool
}

// FaninResult is one fan-in measurement plus its correctness gates.
type FaninResult struct {
	Conns       int
	ClientNodes int
	Ops         int // operations completed
	Elapsed     sim.Time
	OpsPerSec   float64
	GoodMB      float64 // payload goodput, MB/s
	P50Us       float64 // closed-loop op latency percentiles
	P95Us       float64
	P99Us       float64

	// Gates.
	DataOK        bool // every byte of every conn verified
	PendingEvents int  // sim events still queued after teardown (leak)
	ActiveConns   int  // conns still tabled on the server (leak)

	Net cluster.NetReport

	// Observability artifacts: the registry (nil unless Obs options
	// enabled one), the per-node flight recorders, and — when a gate
	// failed — the cause-tagged post-mortem dump.
	Obs       *obs.Registry
	Recorders []*obs.Recorder
	Dump      *obs.PostMortem
}

// faninSlots is the per-connection pipeline depth: eager conns rotate
// writes/reads over this many buffer slots, SQ conns post one doorbell
// batch of this size.
const faninSlots = 8

func faninFill(b []byte, seed byte) {
	for i := range b {
		b[i] = seed + byte(i)*31
	}
}

// RunFanin drives opts.Conns client connections against node 0. The
// connections are spread over up to 64 client nodes behind one switch
// and run three workload flavours round-robin: eager remote writes,
// eager remote reads, and submission-queue write batches. Each
// connection is closed when its operations complete; the result's gate
// fields report whether anything survived the teardown.
func RunFanin(opts FaninOptions) FaninResult {
	conns := opts.Conns
	if conns < 1 {
		conns = 1
	}
	clientNodes := conns
	if clientNodes > 64 {
		clientNodes = 64
	}
	cfg := cluster.OneLink1G(1 + clientNodes)
	cfg.Seed = opts.Seed
	// The scaled endpoint: O(1) connection scheduler, coalesced timers.
	cfg.Core.SchedQueue = true
	cfg.Core.TimerWheelTick = 50 * sim.Microsecond
	cfg.Core.UseSQ = true
	// The default 16 MB address space times hundreds of nodes is real
	// host memory; size it to the working set instead.
	cfg.Core.MemBytes = conns*faninSlots*opts.Size + (1 << 20)
	cfg.Obs = opts.Obs
	cfg.Obs.Recorder = !opts.DisableRecorder
	cl := cluster.New(cfg)
	server := cl.Nodes[0].EP

	var runner *chaos.Runner
	if opts.Chaos {
		r := chaos.New(cl, opts.Seed+1)
		runner = r
		// A loss burst on the server rail hits every connection at
		// once; bursts on the first client rails add asymmetric repair
		// load; a duplication window exercises the receive-side dedup.
		r.LossBurst(500*sim.Microsecond, 3*sim.Millisecond, 0, 0, 0.02)
		for n := 1; n <= clientNodes && n <= 4; n++ {
			from := sim.Time(n) * 300 * sim.Microsecond
			r.LossBurst(from, from+sim.Millisecond, n, 0, 0.05)
		}
		r.DuplicateEveryNth(sim.Millisecond, 2*sim.Millisecond, 1, 0, 7)
	}

	rec := &trace.LatencyRecorder{}
	var startSig sim.Signal
	var start, end sim.Time
	startSig.OnFire(cl.Env, func() { start = cl.Env.Now() })
	dialed, finished, opsDone := 0, 0, 0
	verified := true

	for j := 0; j < conns; j++ {
		j := j
		node := 1 + j%clientNodes
		ep := cl.Nodes[node].EP
		cl.Env.Go(fmt.Sprintf("fanin%d", j), func(p *sim.Proc) {
			c := ep.Dial(p, 0, 0)
			// Remote (server) and local working sets for this conn.
			remote := server.Alloc(faninSlots * opts.Size)
			local := ep.Alloc(faninSlots * opts.Size)
			seed := byte(37 + j)
			mode := j % 3
			if mode == 1 {
				faninFill(server.Mem()[remote:remote+uint64(faninSlots*opts.Size)], seed)
			} else {
				faninFill(ep.Mem()[local:local+uint64(faninSlots*opts.Size)], seed)
			}
			// Barrier: measure steady state, not the dial storm.
			if dialed++; dialed == conns {
				startSig.Fire(cl.Env)
			}
			p.Wait(&startSig)

			switch mode {
			case 0: // eager remote writes
				for k := 0; k < opts.OpsPerConn; k++ {
					off := uint64(k % faninSlots * opts.Size)
					t0 := cl.Env.Now()
					c.MustDo(p, core.Op{Remote: remote + off, Local: local + off,
						Size: opts.Size, Kind: frame.OpWrite, Flags: frame.Solicit}).Wait(p)
					rec.Record(cl.Env.Now() - t0)
					opsDone++
				}
			case 1: // eager remote reads
				for k := 0; k < opts.OpsPerConn; k++ {
					off := uint64(k % faninSlots * opts.Size)
					t0 := cl.Env.Now()
					c.MustDo(p, core.Op{Remote: remote + off, Local: local + off,
						Size: opts.Size, Kind: frame.OpRead}).Wait(p)
					rec.Record(cl.Env.Now() - t0)
					opsDone++
				}
			default: // submission-queue write batches
				for done := 0; done < opts.OpsPerConn; {
					n := faninSlots
					if opts.OpsPerConn-done < n {
						n = opts.OpsPerConn - done
					}
					t0 := cl.Env.Now()
					for i := 0; i < n; i++ {
						off := uint64(i * opts.Size)
						c.MustPost(core.Op{Remote: remote + off, Local: local + off,
							Size: opts.Size, Kind: frame.OpWrite, Flags: tailSolicit(i, n)})
					}
					c.MustRing(p)
					for i := 0; i < n; i++ {
						c.WaitCQ(p)
					}
					rec.Record(cl.Env.Now() - t0)
					opsDone += n
					done += n
				}
			}

			// Byte-verify the touched slots before teardown.
			touched := opts.OpsPerConn
			if touched > faninSlots {
				touched = faninSlots
			}
			nb := uint64(touched * opts.Size)
			if !bytes.Equal(server.Mem()[remote:remote+nb], ep.Mem()[local:local+nb]) {
				verified = false
			}
			if finished++; finished == conns {
				end = cl.Env.Now()
			}
			c.Close(p)
		})
	}
	if cl.Obs != nil {
		// The registry's samplers tick on daemon events; RunUntil would
		// march them all the way to the horizon after the workload
		// drained, and a still-armed tick would trip the PendingEvents
		// leak gate. Run to live-drain (identical end state — with obs
		// off nothing is pending after teardown either), then quiesce.
		cl.Env.Run()
		cl.Obs.Quiesce()
	} else {
		cl.Env.RunUntil(600 * sim.Second)
	}

	r := FaninResult{
		Conns:       conns,
		ClientNodes: clientNodes,
		Ops:         opsDone,
		DataOK:      verified && finished == conns && opsDone == totalFaninOps(conns, opts.OpsPerConn),
		Net:         cl.Collect(),
	}
	if end > start && start > 0 {
		r.Elapsed = end - start
		r.OpsPerSec = float64(opsDone) / r.Elapsed.Seconds()
		r.GoodMB = float64(opsDone*opts.Size) / 1e6 / r.Elapsed.Seconds()
	}
	r.P50Us = rec.Percentile(50).Micros()
	r.P95Us = rec.Percentile(95).Micros()
	r.P99Us = rec.Percentile(99).Micros()
	// Leak gates: after every conn closed, nothing may remain queued
	// and no endpoint may still table a connection.
	r.PendingEvents = cl.Env.PendingEvents()
	r.ActiveConns = server.ActiveConns()
	for _, n := range cl.Nodes[1:] {
		r.ActiveConns += n.EP.ActiveConns()
	}
	r.Obs = cl.Obs
	r.Recorders = cl.Recorders
	if !r.DataOK || !r.LeakFree() {
		var faults []obs.TimelineNote
		if runner != nil {
			for _, ev := range runner.Events {
				faults = append(faults, obs.TimelineNote{At: ev.At, Text: ev.What})
			}
		}
		cause := fmt.Sprintf("fanin gate failure: dataOK=%v pendingEvents=%d activeConns=%d",
			r.DataOK, r.PendingEvents, r.ActiveConns)
		r.Dump = obs.BuildPostMortem(cause, cl.Env.Now(), faults, cl.Recorders...)
	}
	return r
}

func totalFaninOps(conns, opsPerConn int) int { return conns * opsPerConn }

// LeakFree reports whether the post-teardown gates all passed.
func (r FaninResult) LeakFree() bool { return r.PendingEvents == 0 && r.ActiveConns == 0 }

func (r FaninResult) String() string {
	gate := "ok"
	if !r.LeakFree() {
		gate = fmt.Sprintf("LEAK(ev=%d conns=%d)", r.PendingEvents, r.ActiveConns)
	}
	data := "ok"
	if !r.DataOK {
		data = "CORRUPT"
	}
	return fmt.Sprintf("%5d conns/%2d nodes  %7d ops  %9.3fms  %9.0f ops/s  %7.1f MB/s  p50 %7.1fus  p99 %8.1fus  data %-7s leak %s",
		r.Conns, r.ClientNodes, r.Ops, r.Elapsed.Micros()/1e3, r.OpsPerSec, r.GoodMB, r.P50Us, r.P99Us, data, gate)
}

// RenderFanin sweeps the connection counts, printing one row per run
// plus the ops/s scaling factor relative to the single-connection
// baseline. ok is false if any run corrupted data or leaked post-close
// state — the caller should exit nonzero. The results slice carries one
// entry per run for bench-trajectory output and observability export;
// obsOpts composes the registry into every run (zero value = off).
func RenderFanin(connCounts []int, opsPerConn, size int, withChaos bool, obsOpts cluster.ObsOptions) (out string, ok bool, results []FaninResult) {
	var b strings.Builder
	chaosNote := ""
	if withChaos {
		chaosNote = ", loss/dup chaos bursts on"
	}
	fmt.Fprintf(&b, "Fan-in scaling: N client conns -> 1 server endpoint, 1L-1G, %d closed-loop ops/conn x %dB\n", opsPerConn, size)
	fmt.Fprintf(&b, "(mixed eager-write / eager-read / SQ-batch workloads; SchedQueue+TimerWheel+SQ on%s)\n\n", chaosNote)
	ok = true
	var base float64
	for _, n := range connCounts {
		r := RunFanin(FaninOptions{Conns: n, OpsPerConn: opsPerConn, Size: size, Chaos: withChaos, Seed: 42, Obs: obsOpts})
		results = append(results, r)
		scale := ""
		if base == 0 && r.OpsPerSec > 0 {
			base = r.OpsPerSec
		} else if base > 0 {
			scale = fmt.Sprintf("  %5.2fx", r.OpsPerSec/base)
		}
		fmt.Fprintf(&b, "  %s%s\n", r, scale)
		if !r.DataOK || !r.LeakFree() {
			ok = false
			if r.Dump != nil {
				b.WriteString("\n" + r.Dump.Timeline())
			}
		}
	}
	if !ok {
		fmt.Fprintf(&b, "\nFAIL: a run corrupted data or leaked post-close state\n")
	}
	return b.String(), ok, results
}
