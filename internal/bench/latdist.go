package bench

import (
	"fmt"
	"strings"

	"multiedge/internal/cluster"
	"multiedge/internal/core"
	"multiedge/internal/frame"
	"multiedge/internal/sim"
	"multiedge/internal/trace"
)

// RunLatencyDist runs count ping-pong round trips of size bytes and
// records each round trip individually, exposing the latency
// *distribution* the paper's mean-only Figure 2(a) hides: multi-rail
// jitter widens the body, and NACK repair after a loss puts a
// NackDelay-scale bump in the tail.
func RunLatencyDist(cfg cluster.Config, size, count int) *trace.LatencyRecorder {
	cfg.Nodes = 2
	cl := cluster.New(cfg)
	c01, c10 := cl.Pair()
	ep0, ep1 := cl.Nodes[0].EP, cl.Nodes[1].EP
	s0, d0 := ep0.Alloc(size), ep0.Alloc(size)
	s1, d1 := ep1.Alloc(size), ep1.Alloc(size)

	rec := &trace.LatencyRecorder{}
	const warm = 8
	cl.Env.Go("pong", func(p *sim.Proc) {
		for i := 0; i < warm+count; i++ {
			c10.WaitNotify(p)
			c10.MustDo(p, core.Op{Remote: d0, Local: s1, Size: size, Kind: frame.OpWrite, Flags: frame.Notify})
		}
	})
	cl.Env.Go("ping", func(p *sim.Proc) {
		for i := 0; i < warm+count; i++ {
			t0 := cl.Env.Now()
			c01.MustDo(p, core.Op{Remote: d1, Local: s0, Size: size, Kind: frame.OpWrite, Flags: frame.Notify})
			c01.WaitNotify(p)
			if i >= warm {
				rec.Record(cl.Env.Now() - t0)
			}
		}
	})
	cl.Env.RunUntil(600 * sim.Second)
	return rec
}

// RenderLatencyDist renders round-trip latency percentiles for the
// paper's configurations plus a lossy variant, at a small and a
// frame-sized transfer.
func RenderLatencyDist(count int) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Round-trip latency distribution (ping-pong; Figure 2a reports only means)")
	type variant struct {
		name string
		cfg  cluster.Config
	}
	lossy := cluster.TwoLinkUnordered1G(2)
	lossy.Link.LossProb = 0.005
	lossy.Name = "2Lu-1G+0.5%loss"
	variants := []variant{
		{"1L-1G", cluster.OneLink1G(2)},
		{"2Lu-1G", cluster.TwoLinkUnordered1G(2)},
		{"2Lu-1G+0.5%loss", lossy},
		{"1L-10G", cluster.OneLink10G(2)},
	}
	for _, size := range []int{64, 1444} {
		fmt.Fprintf(&b, "\n%d-byte payload, %d round trips\n", size, count)
		fmt.Fprintf(&b, "  %-16s %9s %9s %9s %9s %9s\n", "config", "p50", "p90", "p99", "max", "mean")
		for _, v := range variants {
			r := RunLatencyDist(v.cfg, size, count)
			fmt.Fprintf(&b, "  %-16s %8.1fus %8.1fus %8.1fus %8.1fus %8.1fus\n", v.name,
				r.Percentile(50).Micros(), r.Percentile(90).Micros(),
				r.Percentile(99).Micros(), r.Percentile(100).Micros(), r.Mean().Micros())
		}
	}
	return b.String()
}
