package bench

import (
	"fmt"
	"strings"

	"multiedge/internal/cluster"
	"multiedge/internal/dsm"
	"multiedge/internal/sim"
)

// DSM primitive benchmarks: the building blocks of the paper's
// application results measured in isolation.

// DSMResult is one DSM primitive measurement.
type DSMResult struct {
	Name      string
	Nodes     int
	LatencyUs float64
}

func buildDSM(cfg cluster.Config, shared int) (*cluster.Cluster, *dsm.System) {
	cfg.Core.MemBytes = shared + (16 << 20)
	cl := cluster.New(cfg)
	sys := dsm.New(cl, cl.FullMesh(), dsm.Config{SharedBytes: shared})
	return cl, sys
}

// RunPageFetch measures the cold remote page-fetch latency.
func RunPageFetch(cfg cluster.Config) DSMResult {
	cfg.Nodes = 2
	cl, sys := buildDSM(cfg, 1<<20)
	addr := sys.AllocAt(64*dsm.PageSize, 1) // homed at node 1
	const iters = 32
	var total sim.Time
	cl.Env.Go("reader", func(p *sim.Proc) {
		for i := 0; i < iters; i++ {
			t0 := cl.Env.Now()
			sys.Insts[0].RSlice(p, addr+uint64(i*dsm.PageSize), 8)
			total += cl.Env.Now() - t0
		}
	})
	cl.Env.RunUntil(60 * sim.Second)
	return DSMResult{Name: "page-fetch", Nodes: 2, LatencyUs: total.Micros() / iters}
}

// RunLockHandoff measures lock transfer latency between two contending
// nodes (acquire at one node while the other just released).
func RunLockHandoff(cfg cluster.Config) DSMResult {
	cfg.Nodes = 3 // manager on a third node: full message path
	cl, sys := buildDSM(cfg, 1<<20)
	const iters = 40
	var start, end sim.Time
	for idx, in := range sys.Insts[:2] {
		idx, in := idx, in
		cl.Env.Go(fmt.Sprintf("w%d", idx), func(p *sim.Proc) {
			in.Barrier(p)
			if idx == 0 {
				start = cl.Env.Now()
			}
			for i := 0; i < iters; i++ {
				in.Acquire(p, 2) // homed at node 2
				in.Release(p, 2)
			}
			if idx == 0 {
				end = cl.Env.Now()
			}
			in.Barrier(p)
		})
	}
	cl.Env.Go("idle", func(p *sim.Proc) {
		sys.Insts[2].Barrier(p)
		sys.Insts[2].Barrier(p)
	})
	cl.Env.RunUntil(60 * sim.Second)
	return DSMResult{Name: "lock-handoff", Nodes: 3, LatencyUs: (end - start).Micros() / (2 * iters)}
}

// RunDSMBarrier measures barrier latency at a node count.
func RunDSMBarrier(cfg cluster.Config, nodes int) DSMResult {
	cfg.Nodes = nodes
	cl, sys := buildDSM(cfg, 1<<20)
	const iters = 25
	var start, end sim.Time
	done := 0
	for _, in := range sys.Insts {
		in := in
		cl.Env.Go(fmt.Sprintf("b%d", in.Node()), func(p *sim.Proc) {
			in.Barrier(p)
			if in.Node() == 0 {
				start = cl.Env.Now()
			}
			for i := 0; i < iters; i++ {
				in.Barrier(p)
			}
			done++
			if t := cl.Env.Now(); t > end {
				end = t
			}
		})
	}
	cl.Env.RunUntil(60 * sim.Second)
	r := DSMResult{Name: "barrier", Nodes: nodes}
	if done == nodes {
		r.LatencyUs = (end - start).Micros() / iters
	}
	return r
}

// RenderDSM renders the DSM primitive costs.
func RenderDSM() string {
	var b strings.Builder
	fmt.Fprintln(&b, "DSM primitive costs (1L-1G)")
	pf := RunPageFetch(cluster.OneLink1G(2))
	fmt.Fprintf(&b, "  cold page fetch (4 KB):    %8.1f us\n", pf.LatencyUs)
	lh := RunLockHandoff(cluster.OneLink1G(3))
	fmt.Fprintf(&b, "  lock acquire+release:      %8.1f us (remote manager, contended)\n", lh.LatencyUs)
	fmt.Fprintln(&b, "  barrier latency vs nodes:")
	for _, n := range []int{2, 4, 8, 16} {
		r := RunDSMBarrier(cluster.OneLink1G(n), n)
		fmt.Fprintf(&b, "    %2d nodes: %8.1f us\n", n, r.LatencyUs)
	}
	return b.String()
}
