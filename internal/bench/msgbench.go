package bench

import (
	"fmt"
	"strings"

	"multiedge/internal/cluster"
	"multiedge/internal/msg"
	"multiedge/internal/sim"
)

// Message-passing benchmarks: the second application domain of the
// paper's §1 thesis, measured over the same transport as everything
// else.

// MsgResult is one message-layer measurement.
type MsgResult struct {
	Name      string
	Nodes     int
	Bytes     int
	LatencyUs float64 // per operation (collective or round trip)
	BWMBs     float64 // payload bandwidth where meaningful
}

// RunMsgPingPong measures message round-trip latency and bandwidth
// between two ranks.
func RunMsgPingPong(cfg cluster.Config, size, iters int) MsgResult {
	cfg.Nodes = 2
	cfg.Core.MemBytes = 64 << 20
	cl := cluster.New(cfg)
	comms := msg.New(cl, cl.FullMesh())
	payload := make([]byte, size)
	var start, end sim.Time
	cl.Env.Go("r0", func(p *sim.Proc) {
		comms[0].Send(p, 1, 1, payload) // warm-up
		comms[0].Recv(p, 1, 1)
		start = cl.Env.Now()
		for i := 0; i < iters; i++ {
			comms[0].Send(p, 1, 1, payload)
			comms[0].Recv(p, 1, 1)
		}
		end = cl.Env.Now()
	})
	cl.Env.Go("r1", func(p *sim.Proc) {
		for i := 0; i < iters+1; i++ {
			b := comms[1].Recv(p, 0, 1)
			comms[1].Send(p, 0, 1, b)
		}
	})
	cl.Env.RunUntil(600 * sim.Second)
	r := MsgResult{Name: "msg-pingpong", Nodes: 2, Bytes: size}
	if end > start {
		r.LatencyUs = (end - start).Micros() / float64(2*iters)
		r.BWMBs = float64(2*size*iters) / 1e6 / (end - start).Seconds()
	}
	return r
}

// RunCollective measures the mean latency of one collective across all
// ranks (time from entering to every rank having left, averaged over
// iterations).
func RunCollective(name string, nodes, size, iters int) MsgResult {
	cfg := cluster.OneLink1G(nodes)
	cfg.Core.MemBytes = 64 << 20
	cl := cluster.New(cfg)
	comms := msg.New(cl, cl.FullMesh())
	var start, end sim.Time
	done := 0
	for _, c := range comms {
		c := c
		cl.Env.Go(fmt.Sprintf("r%d", c.Rank()), func(p *sim.Proc) {
			data := make([]byte, size)
			vals := make([]float64, size/8+1)
			c.Barrier(p) // align
			if c.Rank() == 0 {
				start = cl.Env.Now()
			}
			for i := 0; i < iters; i++ {
				switch name {
				case "barrier":
					c.Barrier(p)
				case "bcast":
					var in []byte
					if c.Rank() == 0 {
						in = data
					}
					c.Bcast(p, 0, in)
				case "allreduce":
					c.Allreduce(p, vals)
				case "alltoall":
					send := make([][]byte, nodes)
					for j := range send {
						send[j] = data
					}
					c.Alltoall(p, send)
				default:
					panic("bench: unknown collective " + name)
				}
			}
			done++
			if t := cl.Env.Now(); t > end {
				end = t
			}
		})
	}
	cl.Env.RunUntil(600 * sim.Second)
	r := MsgResult{Name: name, Nodes: nodes, Bytes: size}
	if done == nodes && end > start {
		r.LatencyUs = (end - start).Micros() / float64(iters)
	}
	return r
}

// RenderMessaging renders the message-passing evaluation: point-to-point
// latency/bandwidth against raw RDMA, and collective scaling.
func RenderMessaging() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Message passing over MultiEdge (1L-1G unless noted)")
	fmt.Fprintln(&b, "\npoint-to-point round trip (vs raw remote-write ping-pong)")
	fmt.Fprintf(&b, "%10s %14s %14s %14s\n", "size", "msg lat us", "msg MB/s", "raw lat us")
	for _, sz := range []int{8, 1024, 4096, 65536, 262144} {
		m := RunMsgPingPong(cluster.OneLink1G(2), sz, 40)
		raw := RunPingPong(cluster.OneLink1G(2), sz)
		fmt.Fprintf(&b, "%10d %14.2f %14.1f %14.2f\n", sz, m.LatencyUs, m.BWMBs, raw.LatencyUs)
	}
	fmt.Fprintln(&b, "\ncollectives: latency (us) vs ranks")
	colls := []string{"barrier", "bcast", "allreduce", "alltoall"}
	fmt.Fprintf(&b, "%10s", "ranks")
	for _, c := range colls {
		fmt.Fprintf(&b, "%12s", c)
	}
	fmt.Fprintln(&b)
	for _, n := range []int{2, 4, 8, 16} {
		fmt.Fprintf(&b, "%10d", n)
		for _, c := range colls {
			sz := 1024
			if c == "barrier" {
				sz = 0
			}
			r := RunCollective(c, n, sz, 10)
			fmt.Fprintf(&b, "%12.1f", r.LatencyUs)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}
