package bench

import (
	"testing"

	"multiedge/internal/sim"
)

// TestServeSmall is the tier-1 service-bench gate: a small session
// count against a 3-replica service must byte-verify every slot and
// leak nothing.
func TestServeSmall(t *testing.T) {
	r := RunServe(ServeOptions{Clients: 32, OpsPerClient: 3, Size: 512, Seed: 3})
	if !r.DataOK {
		t.Fatalf("serve corrupted data: %s", r)
	}
	if !r.LeakFree() {
		t.Fatalf("serve leaked post-close state: %s", r)
	}
	if want := 32 * 4; r.Ops != want { // writes + verify read per session
		t.Fatalf("expected %d ops, got %d", want, r.Ops)
	}
	if r.Failovers != 0 || r.Condemned != 0 {
		t.Fatalf("undisturbed run failed over: %s", r)
	}
}

// TestServeKill is the ISSUE 7 acceptance shape in miniature: one
// backend dies mid-run and every session must still finish
// byte-verified — in-flight calls journal, condemn the dead epoch, and
// re-land exactly once on a survivor. Each of the per-node stubs must
// condemn exactly the one killed backend.
func TestServeKill(t *testing.T) {
	base := RunServe(ServeOptions{Clients: 64, OpsPerClient: 4, Size: 1024, Seed: 7})
	if !base.DataOK || !base.LeakFree() {
		t.Fatalf("baseline failed: %s", base)
	}
	r := RunServe(ServeOptions{Clients: 64, OpsPerClient: 4, Size: 1024, Seed: 7,
		KillAt: base.Elapsed / 2})
	if !r.DataOK {
		t.Fatalf("kill run corrupted data: %s", r)
	}
	if !r.LeakFree() {
		t.Fatalf("kill run leaked post-close state: %s", r)
	}
	if r.Condemned == 0 || r.Condemned > uint64(r.ClientNodes) {
		t.Fatalf("condemned %d backends across %d stubs, want 1..%d: %s",
			r.Condemned, r.ClientNodes, r.ClientNodes, r)
	}
	if r.Failovers < r.Condemned || r.JournaledOps == 0 {
		t.Fatalf("failovers %d, journaled %d — the kill was not absorbed: %s",
			r.Failovers, r.JournaledOps, r)
	}
	if base.P99Us > 0 && r.P99Us > serveKillP99Bound(base.P99Us) {
		t.Errorf("killed p99 %.1fus exceeds the failover bound %.1fus (undisturbed p99 %.1fus)",
			r.P99Us, serveKillP99Bound(base.P99Us), base.P99Us)
	}
}

// TestServeDeterministic: identical seeds (and kill times) must produce
// identical traffic reports and timings through the whole service
// layer — balancer, failover and teardown included.
func TestServeDeterministic(t *testing.T) {
	opts := ServeOptions{Clients: 48, OpsPerClient: 3, Size: 512, Seed: 9,
		KillAt: 2 * sim.Millisecond}
	a := RunServe(opts)
	b := RunServe(opts)
	if a.Net != b.Net || a.Elapsed != b.Elapsed || a.Ops != b.Ops ||
		a.Failovers != b.Failovers || a.JournaledOps != b.JournaledOps {
		t.Fatalf("serve not deterministic:\n  %s\n  %s", a, b)
	}
}
