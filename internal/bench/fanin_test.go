package bench

import "testing"

// TestFaninSmall is the tier-1 fan-in gate: a handful of connections
// through the scaled endpoint must verify every byte and leak nothing.
func TestFaninSmall(t *testing.T) {
	r := RunFanin(FaninOptions{Conns: 8, OpsPerConn: 8, Size: 256, Seed: 3})
	if !r.DataOK {
		t.Fatalf("fan-in corrupted data: %s", r)
	}
	if !r.LeakFree() {
		t.Fatalf("fan-in leaked post-close state: %s", r)
	}
	if r.Ops != 64 {
		t.Fatalf("expected 64 ops, got %d", r.Ops)
	}
}

// TestFaninChaosSmall re-runs the small fan-in with loss and duplication
// bursts live: the repair machinery must still deliver every byte and
// the teardown must still drain the event queue.
func TestFaninChaosSmall(t *testing.T) {
	r := RunFanin(FaninOptions{Conns: 8, OpsPerConn: 8, Size: 256, Chaos: true, Seed: 3})
	if !r.DataOK {
		t.Fatalf("fan-in under chaos corrupted data: %s", r)
	}
	if !r.LeakFree() {
		t.Fatalf("fan-in under chaos leaked post-close state: %s", r)
	}
}

// TestFaninDeterministic: identical seeds must produce identical traffic
// reports and timings — the scheduler and timer wheel may not introduce
// nondeterminism.
func TestFaninDeterministic(t *testing.T) {
	a := RunFanin(FaninOptions{Conns: 12, OpsPerConn: 6, Size: 256, Seed: 9})
	b := RunFanin(FaninOptions{Conns: 12, OpsPerConn: 6, Size: 256, Seed: 9})
	if a.Net != b.Net || a.Elapsed != b.Elapsed || a.Ops != b.Ops {
		t.Fatalf("fan-in not deterministic:\n  %s\n  %s", a, b)
	}
}

// TestFaninScaling is the ISSUE 4 acceptance shape: aggregate ops/s must
// scale with connection count because independent connections pipeline
// across each other's network round-trips. Short mode checks 64 vs 1
// (>=2x); full mode checks the acceptance criterion proper, 512 vs 1
// (>=3x), byte-verified.
func TestFaninScaling(t *testing.T) {
	base := RunFanin(FaninOptions{Conns: 1, OpsPerConn: 16, Size: 256, Seed: 42})
	if !base.DataOK || !base.LeakFree() {
		t.Fatalf("baseline failed: %s", base)
	}
	conns := 512
	if testing.Short() {
		conns = 64
	}
	many := RunFanin(FaninOptions{Conns: conns, OpsPerConn: 16, Size: 256, Seed: 42})
	if !many.DataOK || !many.LeakFree() {
		t.Fatalf("%d-conn run failed: %s", conns, many)
	}
	want := 3.0
	if testing.Short() {
		want = 2.0
	}
	if many.OpsPerSec < want*base.OpsPerSec {
		t.Errorf("%d conns reached %.0f ops/s, want >= %.0fx of 1-conn %.0f ops/s",
			conns, many.OpsPerSec, want, base.OpsPerSec)
	}
}
