package bench

import (
	"bytes"
	"fmt"
	"strings"

	"multiedge/internal/chaos"
	"multiedge/internal/cluster"
	"multiedge/internal/core"
	"multiedge/internal/frame"
	"multiedge/internal/obs"
	"multiedge/internal/sim"
	"multiedge/internal/svc"
	"multiedge/internal/trace"
)

// Service-layer stress: thousands of simulated client sessions in a
// closed loop against one replicated service, the workload ISSUE 7's
// service layer exists for. Sessions are spread over client nodes that
// share per-node stubs (sessions are distinguished by balancer token);
// every session byte-verifies its slot through the service at the end.
// The killed variant chaos-kills one backend mid-run and the gates
// require every session to finish verified anyway — in-flight calls on
// the dead replica fail over and land exactly once on a survivor.

// ServeOptions parameterizes one service-bench run.
type ServeOptions struct {
	Clients      int // simulated client sessions
	OpsPerClient int // closed-loop writes per session (plus one verify read)
	Size         int // bytes per operation (one session slot)
	Replicas     int // backend replicas behind the service name

	// KillAt, when nonzero, chaos-kills one backend (permanently) at
	// this virtual time. RenderServe derives it from the no-kill run's
	// midpoint.
	KillAt sim.Time
	Seed   int64

	Obs             cluster.ObsOptions
	DisableRecorder bool
}

// ServeResult is one service-bench measurement plus its gates.
type ServeResult struct {
	Clients     int
	ClientNodes int
	Replicas    int
	Killed      bool
	Ops         int // operations completed (reads included)
	Elapsed     sim.Time
	OpsPerSec   float64
	GoodMB      float64
	P50Us       float64
	P95Us       float64
	P99Us       float64

	// Service-layer accounting, summed over the per-node stubs.
	Failovers    uint64
	Condemned    uint64
	JournaledOps uint64
	CallsFailed  uint64
	// VerifyRetries counts sessions that had to re-run their
	// transaction because the replica holding their completed writes
	// died before the verify read. Zero unless a backend was killed.
	VerifyRetries int

	// Gates.
	DataOK        bool // every session finished and byte-verified its slot
	PendingLive   int  // live sim events left after teardown (leak)
	PendingEvents int  // total sim events left after teardown
	ActiveConns   int  // conns still tabled anywhere (leak)

	Net cluster.NetReport

	Obs       *obs.Registry
	Recorders []*obs.Recorder
	Dump      *obs.PostMortem
}

// serveClientNodes caps how many endpoints the sessions spread over.
const serveClientNodes = 32

// serveFailoverBudget is each call's deadline before the stub journals
// the conn and fails over.
const serveFailoverBudget = 150 * sim.Millisecond

func serveFill(b []byte, seed byte) {
	for i := range b {
		b[i] = seed + byte(i)*13
	}
}

// RunServe drives opts.Clients closed-loop sessions against a
// Replicas-wide service. Each session owns one Size-byte slot of the
// service region and rewrites it OpsPerClient times with round-varying
// patterns, then reads it back and byte-verifies — through the service,
// so a failed-over session verifies against whichever replica its
// session rebound to. Affinity balancing keeps a session's reads on the
// replica its writes landed on.
func RunServe(opts ServeOptions) ServeResult {
	clients := opts.Clients
	if clients < 1 {
		clients = 1
	}
	replicas := opts.Replicas
	if replicas < 1 {
		replicas = 3
	}
	clientNodes := clients
	if clientNodes > serveClientNodes {
		clientNodes = serveClientNodes
	}
	cfg := cluster.OneLink1G(replicas + clientNodes)
	cfg.Seed = opts.Seed
	// The scaled endpoint plus the recovery stack the service layer
	// composes: supervised reconnect with fast detection, bounded dial
	// retries, and idle-side liveness so parked sessions notice a dead
	// replica too.
	cfg.Core.SchedQueue = true
	cfg.Core.TimerWheelTick = 50 * sim.Microsecond
	cfg.Core.UseSQ = true
	// Detection and failover tuned for heavy incast: thousands of
	// sessions queue tens of milliseconds behind each other on the
	// backend rails, so the dead-peer verdict (and the failover budget
	// above it) must sit well above the congestion tail or healthy
	// backends get condemned for being slow.
	cfg.Core.Reconnect = true
	cfg.Core.DeadInterval = 50 * sim.Millisecond
	cfg.Core.RTOMax = 2 * sim.Millisecond
	cfg.Core.HeartbeatInterval = 10 * sim.Millisecond
	cfg.Core.MaxRetries = 3
	// The default redial schedule (8 attempts, exponential backoff)
	// outlasts the failover budget: a parked conn is still Reconnecting
	// when the budget fires, so the abandon path journals its in-flight
	// ops instead of finding them already drained by a terminal failure.
	cfg.Core.MemBytes = clients*opts.Size + (2 << 20)
	cfg.Obs = opts.Obs
	cfg.Obs.Recorder = !opts.DisableRecorder
	cl := cluster.New(cfg)

	reg := svc.NewRegistry()
	eps := make([]*core.Endpoint, replicas)
	for i := range eps {
		eps[i] = cl.Nodes[i].EP
	}
	s, err := reg.Register("serve", clients*opts.Size, eps...)
	if err != nil {
		panic(err)
	}

	// One stub per client node; FailoverBudget comfortably above both
	// the detection interval (a budget miss must find the conn parked)
	// and the congestion tail (a slow healthy backend is not a failure).
	stubs := make([]*svc.Client, clientNodes)
	for i := range stubs {
		stub, err := svc.Connect(cl.Nodes[replicas+i].EP, reg, "serve", svc.Options{
			Balancer:       svc.NewAffinity(svc.NewRoundRobin()),
			FailoverBudget: serveFailoverBudget,
		})
		if err != nil {
			panic(err)
		}
		stubs[i] = stub
	}

	var runner *chaos.Runner
	victim := -1
	if opts.KillAt > 0 {
		runner = chaos.New(cl, opts.Seed+1)
		victim = 0 // backend index; node s.Backends[0].Node
		runner.KillNode(opts.KillAt, s.Backends[victim].Node)
	}

	rec := &trace.LatencyRecorder{}
	var end sim.Time
	finished, opsDone, verifyRetries := 0, 0, 0
	verified := true
	var failedCalls uint64

	for i := 0; i < clients; i++ {
		i := i
		nodeIdx := i % clientNodes
		ep := cl.Nodes[replicas+nodeIdx].EP
		stub := stubs[nodeIdx]
		cl.Env.Go(fmt.Sprintf("serve%d", i), func(p *sim.Proc) {
			token := uint64(i)
			off := uint64(i * opts.Size)
			src := ep.Alloc(opts.Size)
			back := ep.Alloc(opts.Size)
			for k := 0; k < opts.OpsPerClient; k++ {
				serveFill(ep.Mem()[src:src+uint64(opts.Size)], byte(i*31+k*7+1))
				t0 := cl.Env.Now()
				if err := stub.Call(p, token, core.Op{Remote: off, Local: src,
					Size: opts.Size, Kind: frame.OpWrite}); err != nil {
					failedCalls++
					verified = false
					break
				}
				rec.Record(cl.Env.Now() - t0)
				opsDone++
			}
			// Byte-verify the slot through the service: the affinity
			// binding routes the read to the replica holding the
			// session's writes. If the replica died AFTER the session's
			// last write completed there, the rebound read sees a slot
			// the session never wrote — its data died with the replica
			// (writes are single-copy) — so the session retries the
			// transaction once on the new binding, exactly as a real
			// client would. The undisturbed run must never need this.
			verifyOK := false
			for attempt := 0; attempt < 2 && !verifyOK; attempt++ {
				t0 := cl.Env.Now()
				if err := stub.Call(p, token, core.Op{Remote: off, Local: back,
					Size: opts.Size, Kind: frame.OpRead}); err != nil {
					failedCalls++
					break
				}
				rec.Record(cl.Env.Now() - t0)
				opsDone++
				if bytes.Equal(ep.Mem()[back:back+uint64(opts.Size)],
					ep.Mem()[src:src+uint64(opts.Size)]) {
					verifyOK = true
					break
				}
				if attempt > 0 {
					break
				}
				verifyRetries++
				if err := stub.Call(p, token, core.Op{Remote: off, Local: src,
					Size: opts.Size, Kind: frame.OpWrite}); err != nil {
					failedCalls++
					break
				}
				opsDone++
			}
			if !verifyOK {
				verified = false
			}
			if finished++; finished == clients {
				end = cl.Env.Now()
			}
		})
	}
	cl.Env.Go("serve-closer", func(p *sim.Proc) {
		for finished < clients {
			p.Sleep(sim.Millisecond)
		}
		for _, stub := range stubs {
			stub.Close(p)
		}
	})
	if cl.Obs != nil {
		cl.Env.Run()
		cl.Obs.Quiesce()
	} else {
		cl.Env.RunUntil(600 * sim.Second)
	}

	r := ServeResult{
		Clients:     clients,
		ClientNodes: clientNodes,
		Replicas:    replicas,
		Killed:      opts.KillAt > 0,
		Ops:         opsDone,
		DataOK:      verified && finished == clients && failedCalls == 0,
		Net:         cl.Collect(),
	}
	r.VerifyRetries = verifyRetries
	for _, stub := range stubs {
		r.Failovers += stub.Stats.Failovers
		r.Condemned += stub.Stats.BackendsCondemned
		r.JournaledOps += stub.Stats.JournaledOps
		r.CallsFailed += stub.Stats.CallsFailed
	}
	if end > 0 {
		r.Elapsed = end
		r.OpsPerSec = float64(opsDone) / r.Elapsed.Seconds()
		r.GoodMB = float64(opsDone*opts.Size) / 1e6 / r.Elapsed.Seconds()
	}
	r.P50Us = rec.Percentile(50).Micros()
	r.P95Us = rec.Percentile(95).Micros()
	r.P99Us = rec.Percentile(99).Micros()
	// Leak gates: every stub closed its conns; nothing live may remain
	// queued and no endpoint — the dead backend included, whose parked
	// conns fail terminally once their redial budgets drain — may still
	// table a connection.
	r.PendingLive = cl.Env.PendingLive()
	r.PendingEvents = cl.Env.PendingEvents()
	for _, n := range cl.Nodes {
		r.ActiveConns += n.EP.ActiveConns()
	}
	r.Obs = cl.Obs
	r.Recorders = cl.Recorders
	if !r.DataOK || !r.LeakFree() {
		var faults []obs.TimelineNote
		if runner != nil {
			for _, ev := range runner.Events {
				faults = append(faults, obs.TimelineNote{At: ev.At, Text: ev.What})
			}
		}
		cause := fmt.Sprintf("serve gate failure: dataOK=%v failedCalls=%d pendingLive=%d activeConns=%d",
			r.DataOK, failedCalls, r.PendingLive, r.ActiveConns)
		r.Dump = obs.BuildPostMortem(cause, cl.Env.Now(), faults, cl.Recorders...)
	}
	return r
}

// LeakFree reports whether the post-teardown gates all passed.
func (r ServeResult) LeakFree() bool { return r.PendingLive == 0 && r.ActiveConns == 0 }

func (r ServeResult) String() string {
	gate := "ok"
	if !r.LeakFree() {
		gate = fmt.Sprintf("LEAK(live=%d conns=%d)", r.PendingLive, r.ActiveConns)
	}
	data := "ok"
	if !r.DataOK {
		data = "CORRUPT"
	}
	kill := "    -"
	if r.Killed {
		kill = fmt.Sprintf("n%d X", r.Replicas-r.Replicas) // backend 0's node
	}
	return fmt.Sprintf("%5d clients/%2d nodes/%dR %s  %7d ops  %9.3fms  %9.0f ops/s  p50 %7.1fus  p99 %9.1fus  fo %3d  data %-7s leak %s",
		r.Clients, r.ClientNodes, r.Replicas, kill, r.Ops, r.Elapsed.Micros()/1e3, r.OpsPerSec, r.P50Us, r.P99Us, r.Failovers, data, gate)
}

// serveKillP99Bound bounds the chaos-kill run's p99: a call in flight
// on the dead replica pays at most the failover budget before it is
// re-issued, and the retry then rides the ordinary congestion tail. So
// the tail under a kill is bounded by budget + 2x the undisturbed p99 —
// failover is bounded, not open-ended.
func serveKillP99Bound(baseP99Us float64) float64 {
	return serveFailoverBudget.Micros() + 2*baseP99Us
}

// RenderServe runs the service bench twice — undisturbed, then with one
// backend chaos-killed at the undisturbed run's midpoint — and gates:
// both runs byte-verified and leak-free, the killed run's failovers
// exactly cover the per-stub condemnations, and the killed p99 within
// serveKillP99Bound of the baseline.
func RenderServe(clients, opsPerClient, size, replicas int, obsOpts cluster.ObsOptions) (out string, ok bool, results []ServeResult) {
	var b strings.Builder
	fmt.Fprintf(&b, "Service scaling: N client sessions -> %d-replica service, affinity balancing, %d ops/session x %dB\n",
		replicas, opsPerClient, size)
	fmt.Fprintf(&b, "(per-node stubs, failover budget 150ms; killed row chaos-kills one backend at the baseline midpoint)\n\n")
	ok = true
	base := RunServe(ServeOptions{Clients: clients, OpsPerClient: opsPerClient, Size: size,
		Replicas: replicas, Seed: 42, Obs: obsOpts})
	results = append(results, base)
	fmt.Fprintf(&b, "  %s\n", base)
	if !base.DataOK || !base.LeakFree() {
		ok = false
	}
	killAt := base.Elapsed / 2
	if killAt <= 0 {
		killAt = sim.Millisecond
	}
	killed := RunServe(ServeOptions{Clients: clients, OpsPerClient: opsPerClient, Size: size,
		Replicas: replicas, KillAt: killAt, Seed: 42, Obs: obsOpts})
	results = append(results, killed)
	fmt.Fprintf(&b, "  %s\n", killed)
	if !killed.DataOK || !killed.LeakFree() {
		ok = false
	}
	if base.VerifyRetries != 0 {
		fmt.Fprintf(&b, "\nFAIL: undisturbed run needed %d verify retries — sessions lost data without a kill\n",
			base.VerifyRetries)
		ok = false
	}
	if killed.Condemned == 0 || killed.Failovers < killed.Condemned {
		fmt.Fprintf(&b, "\nFAIL: kill run condemned %d backends over %d failovers — the kill was not absorbed\n",
			killed.Condemned, killed.Failovers)
		ok = false
	}
	if base.P99Us > 0 && killed.P99Us > serveKillP99Bound(base.P99Us) {
		fmt.Fprintf(&b, "\nFAIL: killed p99 %.1fus exceeds the failover bound %.1fus (budget + 2x undisturbed p99 %.1fus)\n",
			killed.P99Us, serveKillP99Bound(base.P99Us), base.P99Us)
		ok = false
	}
	for _, r := range results {
		if r.Dump != nil {
			b.WriteString("\n" + r.Dump.Timeline())
		}
	}
	if !ok {
		fmt.Fprintf(&b, "\nFAIL: a serve run corrupted data, leaked state, or blew the failover bounds\n")
	}
	return b.String(), ok, results
}

// BenchRow converts one serve measurement into a bench-document row.
func (r ServeResult) BenchRow() BenchRow {
	name := fmt.Sprintf("serve-%d", r.Clients)
	if r.Killed {
		name += "-kill"
	}
	row := BenchRow{
		Name:       name,
		Ops:        r.Ops,
		OpsPerSec:  r.OpsPerSec,
		GoodputMBs: r.GoodMB,
		P50Us:      r.P50Us,
		P95Us:      r.P95Us,
		P99Us:      r.P99Us,
		Extra: map[string]float64{
			"replicas":       float64(r.Replicas),
			"client_nodes":   float64(r.ClientNodes),
			"failovers":      float64(r.Failovers),
			"condemned":      float64(r.Condemned),
			"journaled_ops":  float64(r.JournaledOps),
			"verify_retries": float64(r.VerifyRetries),
			"pending_live":   float64(r.PendingLive),
			"active_conns":   float64(r.ActiveConns),
		},
	}
	if r.DataOK {
		row.Extra["data_ok"] = 1
	} else {
		row.Extra["data_ok"] = 0
	}
	return row
}
