package bench

import (
	"os"
	"sort"
	"testing"
	"time"
)

// Recorder overhead guard. The flight recorder's simulated-time figures
// are pinned exactly by TestRecorderZeroPerturbation (recording touches
// no virtual clock, RNG or event queue), so the only cost it can have
// is host CPU per recorded event. The benchmark pair below measures
// that cost; the env-gated guard test enforces the budget (<5% wall
// time) where the environment is quiet enough to time reliably:
//
//	PERF_GUARD=1 go test -run TestRecorderOverheadGuard ./internal/bench/
//	go test -bench 'FaninRecorder' -benchtime 5x ./internal/bench/

// guardOpts is sized so one run takes long enough (~100ms of host
// time) that scheduler noise is small relative to any real overhead.
func guardOpts(disable bool) FaninOptions {
	return FaninOptions{Conns: 64, OpsPerConn: 64, Size: 256, Seed: 17,
		DisableRecorder: disable}
}

func BenchmarkFaninRecorderOn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := RunFanin(guardOpts(false))
		if !r.DataOK {
			b.Fatal("corrupt run")
		}
	}
}

func BenchmarkFaninRecorderOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := RunFanin(guardOpts(true))
		if !r.DataOK {
			b.Fatal("corrupt run")
		}
	}
}

// TestRecorderOverheadGuard measures wall time for the same fan-in run
// with the recorder on and off and fails if recording costs more than
// 5%. Wall timings on shared CI runners are noisy, so the guard only
// arms under PERF_GUARD=1 (the perf-ratchet job sets it); it takes the
// best of several rounds to shed scheduler noise.
func TestRecorderOverheadGuard(t *testing.T) {
	if os.Getenv("PERF_GUARD") == "" {
		t.Skip("set PERF_GUARD=1 to arm the recorder overhead guard")
	}
	timeOne := func(disable bool) time.Duration {
		start := time.Now()
		if r := RunFanin(guardOpts(disable)); !r.DataOK {
			t.Fatal("corrupt run")
		}
		return time.Since(start)
	}
	timeOne(true) // warm caches before timing either side
	timeOne(false)
	// Interleave the rounds so thermal/scheduler drift hits both sides
	// equally, then judge the median per-round ratio — robust against a
	// few rounds where the host preempted one side.
	var ratios []float64
	for round := 0; round < 9; round++ {
		off := timeOne(true)
		on := timeOne(false)
		ratios = append(ratios, float64(on)/float64(off))
	}
	sort.Float64s(ratios)
	med := ratios[len(ratios)/2]
	t.Logf("recorder on/off wall-time ratios %.3f..%.3f, median %.3f (%.2f%% overhead)",
		ratios[0], ratios[len(ratios)-1], med, 100*(med-1))
	if med > 1.05 {
		t.Fatalf("recorder overhead %.2f%% exceeds the 5%% budget (median of %d interleaved rounds)",
			100*(med-1), len(ratios))
	}
}
