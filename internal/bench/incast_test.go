package bench

import (
	"testing"

	"multiedge/internal/sim"
)

// TestIncastFairnessConverges is ISSUE 10's convergence check: 32
// synchronized senders under the congestion controller must share the
// single bottleneck with a Jain index of at least 0.9 — AIMD plus ECN
// marking has to converge to near-equal windows within the measurement
// window — without a single spurious peer-death or failed operation.
func TestIncastFairnessConverges(t *testing.T) {
	r := RunIncast(IncastOptions{Senders: 32, Size: 8 << 10,
		Duration: 40 * sim.Millisecond, CC: true, Seed: 7, DisableRecorder: true})
	t.Logf("incast: %s", r)
	if !r.DataOK {
		t.Error("data verification failed")
	}
	if !r.LeakFree() {
		t.Errorf("leaked post-close state: %d events, %d conns", r.PendingEvents, r.ActiveConns)
	}
	if r.Jain < 0.9 {
		t.Errorf("Jain fairness %.3f below 0.9 (per-sender ops %d..%d)", r.Jain, r.MinOps, r.MaxOps)
	}
	if r.PeerDeaths != 0 || r.Failed != 0 {
		t.Errorf("%d peer deaths, %d failed ops under congestion control; want none", r.PeerDeaths, r.Failed)
	}
	if r.EcnMarks == 0 || r.CwndCuts == 0 {
		t.Errorf("congestion machinery idle (ecn %d, cuts %d); scenario not exercising CC", r.EcnMarks, r.CwndCuts)
	}
	if r.Utilization < 0.7 {
		t.Errorf("bottleneck utilization %.2f below 0.7", r.Utilization)
	}
}

// TestIncastBaselineCollapses pins the phenomenon the controller
// exists for: the identical storm with CC off must drop frames at the
// bottleneck and lose goodput relative to the controlled run.
func TestIncastBaselineCollapses(t *testing.T) {
	off := RunIncast(IncastOptions{Senders: 32, Size: 8 << 10,
		Duration: 40 * sim.Millisecond, CC: false, Seed: 7, DisableRecorder: true})
	on := RunIncast(IncastOptions{Senders: 32, Size: 8 << 10,
		Duration: 40 * sim.Millisecond, CC: true, Seed: 7, DisableRecorder: true})
	t.Logf("cc-off: %s", off)
	t.Logf("cc-on:  %s", on)
	if off.SwitchDrops == 0 {
		t.Error("cc-off incast saw no switch drops; bottleneck not overloaded")
	}
	if off.GoodMB >= on.GoodMB {
		t.Errorf("cc-off goodput %.1f MB/s >= cc-on %.1f MB/s; collapse not demonstrated", off.GoodMB, on.GoodMB)
	}
	if !off.DataOK || !off.LeakFree() {
		t.Error("cc-off run corrupted data or leaked (ARQ must still recover everything)")
	}
}

// TestParkingLotAdaptiveBeatsRoundRobin: with one rail congested by
// lossless background queueing, probe-fed congestion-weighted striping
// must shift the victim's frames to the clean rail and beat the
// round-robin baseline.
func TestParkingLotAdaptiveBeatsRoundRobin(t *testing.T) {
	rr := RunParkingLot(ParkingLotOptions{Ops: 150, Size: 8 << 10, Adaptive: false, Seed: 7})
	ad := RunParkingLot(ParkingLotOptions{Ops: 150, Size: 8 << 10, Adaptive: true, Seed: 7})
	t.Logf("round-robin: %s", rr)
	t.Logf("adaptive:    %s", ad)
	for _, r := range []ParkingLotResult{rr, ad} {
		if !r.DataOK || !r.LeakFree() {
			t.Fatalf("run corrupted data or leaked: %s", r)
		}
	}
	if ad.OpsPerSec <= rr.OpsPerSec {
		t.Errorf("adaptive %.0f ops/s <= round-robin %.0f ops/s", ad.OpsPerSec, rr.OpsPerSec)
	}
	if ad.Rail1Share < 0.6 {
		t.Errorf("adaptive victim rail-1 share %.2f below 0.6; picker not steering off the congested rail", ad.Rail1Share)
	}
	if rr.Rail1Share < 0.4 || rr.Rail1Share > 0.6 {
		t.Errorf("round-robin victim rail-1 share %.2f not ~0.5; baseline is not striping evenly", rr.Rail1Share)
	}
}
