package bench

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"multiedge/internal/cluster"
	"multiedge/internal/sim"
)

func sampleDoc() *BenchDoc {
	d := NewBenchDoc("fanin")
	d.Rows = append(d.Rows,
		BenchRow{Name: "fanin-16", Ops: 384, OpsPerSec: 120000, GoodputMBs: 30.7,
			P50Us: 21.5, P95Us: 40, P99Us: 55.25, AllocsPerOp: 12,
			Extra: map[string]float64{"conns": 16, "data_ok": 1}},
		BenchRow{Name: "fanin-64", Ops: 1536, OpsPerSec: 310000, GoodputMBs: 79.4,
			P50Us: 30, P95Us: 80, P99Us: 120},
	)
	return d
}

func TestBenchDocRoundTrip(t *testing.T) {
	d := sampleDoc()
	out := d.JSON()
	if !json.Valid(out) {
		t.Fatalf("invalid JSON:\n%s", out)
	}
	if string(out) != string(sampleDoc().JSON()) {
		t.Fatal("JSON not deterministic")
	}
	back, err := ParseBench(out)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != BenchSchema || back.Mode != "fanin" || len(back.Rows) != 2 {
		t.Fatalf("round trip lost structure: %+v", back)
	}
	if back.Rows[0].Name != "fanin-16" || back.Rows[0].P99Us != 55.25 ||
		back.Rows[0].Extra["conns"] != 16 {
		t.Fatalf("round trip lost values: %+v", back.Rows[0])
	}

	path := filepath.Join(t.TempDir(), "BENCH_fanin.json")
	if err := d.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	fromDisk, err := ReadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if fromDisk.Rows[1].OpsPerSec != 310000 {
		t.Fatalf("file round trip lost values: %+v", fromDisk.Rows[1])
	}

	if _, err := ParseBench([]byte(`{"schema":"other/v1","mode":"x","rows":[]}`)); err == nil {
		t.Fatal("foreign schema accepted")
	}
	if _, err := ParseBench([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestCompareBenchRatchet(t *testing.T) {
	base := sampleDoc()

	// Identical documents: ratchet holds.
	if fails := CompareBench(base, sampleDoc()); len(fails) != 0 {
		t.Fatalf("identical docs failed: %v", fails)
	}

	// Ops/s down 20% (> the 10% limit): fail, naming the row.
	cur := sampleDoc()
	cur.Rows[0].OpsPerSec *= 0.8
	fails := CompareBench(base, cur)
	if len(fails) != 1 || !strings.Contains(fails[0], "fanin-16") ||
		!strings.Contains(fails[0], "ops/s") {
		t.Fatalf("20%% ops drop: %v", fails)
	}

	// Ops/s down 5% (within the limit): pass.
	cur = sampleDoc()
	cur.Rows[0].OpsPerSec *= 0.95
	if fails := CompareBench(base, cur); len(fails) != 0 {
		t.Fatalf("5%% ops drop failed: %v", fails)
	}

	// P99 up 50% (> the 20% limit): fail.
	cur = sampleDoc()
	cur.Rows[1].P99Us *= 1.5
	fails = CompareBench(base, cur)
	if len(fails) != 1 || !strings.Contains(fails[0], "fanin-64") ||
		!strings.Contains(fails[0], "p99") {
		t.Fatalf("50%% p99 growth: %v", fails)
	}

	// P99 up 10% (within the limit): pass.
	cur = sampleDoc()
	cur.Rows[1].P99Us *= 1.1
	if fails := CompareBench(base, cur); len(fails) != 0 {
		t.Fatalf("10%% p99 growth failed: %v", fails)
	}

	// Row disappeared from current: fail. New row in current: pass.
	cur = sampleDoc()
	cur.Rows = cur.Rows[:1]
	cur.Rows = append(cur.Rows, BenchRow{Name: "fanin-256", OpsPerSec: 1})
	fails = CompareBench(base, cur)
	if len(fails) != 1 || !strings.Contains(fails[0], "fanin-64") ||
		!strings.Contains(fails[0], "missing") {
		t.Fatalf("missing row: %v", fails)
	}

	// Zero baseline figure: nothing to regress from, skip the check.
	zb := NewBenchDoc("fanin")
	zb.Rows = append(zb.Rows, BenchRow{Name: "fanin-16"})
	cur = sampleDoc()
	cur.Rows[0].OpsPerSec = 0.001
	if fails := CompareBench(zb, cur); len(fails) != 0 {
		t.Fatalf("zero baseline still checked: %v", fails)
	}

	// Allocs/op up 50% (> the 25% limit): fail.
	cur = sampleDoc()
	cur.Rows[0].AllocsPerOp *= 1.5
	fails = CompareBench(base, cur)
	if len(fails) != 1 || !strings.Contains(fails[0], "fanin-16") ||
		!strings.Contains(fails[0], "allocs/op") {
		t.Fatalf("50%% allocs growth: %v", fails)
	}

	// Allocs/op up 10% (within the limit): pass.
	cur = sampleDoc()
	cur.Rows[0].AllocsPerOp *= 1.1
	if fails := CompareBench(base, cur); len(fails) != 0 {
		t.Fatalf("10%% allocs growth failed: %v", fails)
	}

	// Zero alloc baseline (fanin-64): a current row that now reports
	// allocations is new coverage, not a regression.
	cur = sampleDoc()
	cur.Rows[1].AllocsPerOp = 40
	if fails := CompareBench(base, cur); len(fails) != 0 {
		t.Fatalf("zero alloc baseline still checked: %v", fails)
	}
}

// TestRecorderZeroPerturbation: the flight recorder is pure observation
// — the same fan-in run with and without it must produce identical
// measurements and identical network reports.
func TestRecorderZeroPerturbation(t *testing.T) {
	opts := FaninOptions{Conns: 32, OpsPerConn: 8, Size: 256, Seed: 9, Chaos: true}
	withRec := RunFanin(opts)
	opts.DisableRecorder = true
	without := RunFanin(opts)
	if withRec.Recorders == nil || without.Recorders != nil {
		t.Fatal("DisableRecorder plumbing broken")
	}
	if withRec.String() != without.String() {
		t.Fatalf("recorder perturbed the run:\n  on:  %s\n  off: %s", withRec, without)
	}
	if withRec.Net != without.Net {
		t.Fatalf("recorder perturbed the network report:\n  on:  %+v\n  off: %+v",
			withRec.Net, without.Net)
	}
	total := uint64(0)
	for _, r := range withRec.Recorders {
		total += r.Recorded()
	}
	if total == 0 {
		t.Fatal("recorders attached but nothing recorded")
	}
}

// TestBenchRowConverters sanity-checks the result-to-row mappings used
// by medbench -bench-out.
func TestBenchRowConverters(t *testing.T) {
	f := RunFanin(FaninOptions{Conns: 4, OpsPerConn: 4, Size: 256, Seed: 9})
	row := f.BenchRow()
	if row.Name != "fanin-4" || row.Ops != 16 || row.OpsPerSec <= 0 ||
		row.P99Us < row.P50Us || row.Extra["data_ok"] != 1 {
		t.Fatalf("fanin row: %+v", row)
	}
	if row.P95Us <= 0 || row.P95Us > row.P99Us {
		t.Fatalf("p95 out of order: %+v", row)
	}

	c := RunCrashloop(CrashloopOptions{Cycles: 1, Down: 100 * sim.Millisecond,
		Bytes: 64 << 10, DeadInterval: 25 * sim.Millisecond,
		Backoff: 2 * sim.Millisecond, Seed: 7})
	crow := c.BenchRow()
	if crow.Name != "crashloop-di25ms" || crow.Ops == 0 || crow.OpsPerSec <= 0 ||
		crow.P50Us <= 0 || crow.Extra["recovered"] != 1 {
		t.Fatalf("crashloop row: %+v", crow)
	}

	s := RunSmallOps(cluster.OneLink10G(2), 64, 256, 64)
	srow := s.BenchRow()
	if srow.Name != "smallops-1L-10G-64B-sq64" || srow.OpsPerSec <= 0 ||
		srow.Extra["doorbells"] == 0 {
		t.Fatalf("smallops row: %+v", srow)
	}
}
