// Package bench drives the paper's evaluation (IPPS'07 §3-4): the three
// micro-benchmarks (ping-pong, one-way, two-way) over the four cluster
// configurations, parameter sweeps over transfer size, and the
// application experiment runner for Figures 3-6.
package bench

import (
	"fmt"

	"multiedge/internal/cluster"
	"multiedge/internal/core"
	"multiedge/internal/frame"
	"multiedge/internal/obs"
	"multiedge/internal/sim"
	"multiedge/internal/trace"
)

// MicroResult is one micro-benchmark measurement point.
type MicroResult struct {
	Config    string
	Benchmark string
	Size      int

	// LatencyUs is the ping-pong one-way latency; for one-way and
	// two-way it is the host overhead to initiate an operation
	// (IPPS'07 Figure 2(a) plots exactly these).
	LatencyUs float64
	// ThroughputMBs is payload throughput in MBytes/s; for two-way it
	// is the sum of both directions (Figure 2(b)).
	ThroughputMBs float64
	// CPUPct is protocol CPU utilization as a percentage of 200%
	// (two CPUs, Figure 2(c)); App/Proto are the node-0 components.
	CPUPct           float64
	AppCPU, ProtoCPU float64

	// Net is the network-level report for the measurement window.
	Net cluster.NetReport

	// Obs is the run's observability registry; nil unless the config's
	// ObsOptions enabled it.
	Obs *obs.Registry
}

func (r MicroResult) String() string {
	return fmt.Sprintf("%-7s %-9s %8dB  lat %8.2fus  thr %8.1fMB/s  cpu %5.1f%%",
		r.Config, r.Benchmark, r.Size, r.LatencyUs, r.ThroughputMBs, r.CPUPct)
}

// pingIters picks an iteration count inversely related to size so runs
// stay bounded.
func pingIters(size int) int {
	switch {
	case size <= 4096:
		return 200
	case size <= 65536:
		return 60
	default:
		return 16
	}
}

// onewayCount picks how many back-to-back operations one-way/two-way
// issue for a given size.
func onewayCount(size int) int {
	total := 24 << 20 // ~24 MB per run
	n := total / (size + 64)
	if n > 4000 {
		n = 4000
	}
	if n < 24 {
		n = 24
	}
	return n
}

// RunPingPong measures request-reply latency and throughput: node 0
// writes size bytes to node 1 with a notification; node 1 replies in
// kind (IPPS'07 §3: "requests and replies carry the same amount of
// data"). Reported latency is one-way (RTT/2).
func RunPingPong(cfg cluster.Config, size int) MicroResult {
	iters := pingIters(size)
	warm := iters / 10
	if warm < 2 {
		warm = 2
	}
	cl := cluster.New(cfg)
	c01, c10 := cl.Pair()
	ep0, ep1 := cl.Nodes[0].EP, cl.Nodes[1].EP
	s0, d0 := ep0.Alloc(size), ep0.Alloc(size)
	s1, d1 := ep1.Alloc(size), ep1.Alloc(size)

	var start, end sim.Time
	var snap0 [2]sim.Utilization
	var prev cluster.NetReport
	var net cluster.NetReport
	cl.Env.Go("pong", func(p *sim.Proc) {
		for i := 0; i < warm+iters; i++ {
			c10.WaitNotify(p)
			c10.MustDo(p, core.Op{Remote: d0, Local: s1, Size: size, Kind: frame.OpWrite, Flags: frame.Notify})
		}
	})
	cl.Env.Go("ping", func(p *sim.Proc) {
		for i := 0; i < warm+iters; i++ {
			if i == warm {
				start = cl.Env.Now()
				snap0[0] = cl.Nodes[0].CPUs.App.Snapshot(cl.Env)
				snap0[1] = cl.Nodes[0].CPUs.Proto.Snapshot(cl.Env)
				prev = cl.Collect()
			}
			c01.MustDo(p, core.Op{Remote: d1, Local: s0, Size: size, Kind: frame.OpWrite, Flags: frame.Notify})
			c01.WaitNotify(p)
		}
		end = cl.Env.Now()
		net = cl.Collect().Sub(prev)
		cl.Obs.Quiesce() // stop samplers so the event queue can drain
	})
	cl.Env.RunUntil(600 * sim.Second)
	elapsed := end - start
	r := MicroResult{Config: cfg.Name, Benchmark: "ping-pong", Size: size, Net: net, Obs: cl.Obs}
	if elapsed > 0 {
		r.LatencyUs = elapsed.Micros() / float64(2*iters)
		r.ThroughputMBs = float64(size*2*iters) / 1e6 / elapsed.Seconds()
		r.AppCPU = snap0[0].Since(cl.Env, cl.Nodes[0].CPUs.App)
		r.ProtoCPU = snap0[1].Since(cl.Env, cl.Nodes[0].CPUs.Proto)
		r.CPUPct = (r.AppCPU + r.ProtoCPU) * 100
	}
	return r
}

// RunOneWay measures streaming throughput and initiation overhead: node
// 0 issues back-to-back remote writes (IPPS'07 §3). Latency reported is
// the mean host overhead per initiation.
func RunOneWay(cfg cluster.Config, size int) MicroResult {
	count := onewayCount(size)
	cl := cluster.New(cfg)
	c01, _ := cl.Pair()
	ep0, ep1 := cl.Nodes[0].EP, cl.Nodes[1].EP
	src := ep0.Alloc(size)
	dst := ep1.Alloc(size)

	var start, end sim.Time
	var overhead sim.Time
	var snap0 [2]sim.Utilization
	var prev, net cluster.NetReport
	cl.Env.Go("oneway", func(p *sim.Proc) {
		// Warm up the path.
		c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: size, Kind: frame.OpWrite}).Wait(p)
		start = cl.Env.Now()
		snap0[0] = cl.Nodes[0].CPUs.App.Snapshot(cl.Env)
		snap0[1] = cl.Nodes[0].CPUs.Proto.Snapshot(cl.Env)
		prev = cl.Collect()
		hs := make([]*core.Handle, 0, count)
		for i := 0; i < count; i++ {
			t0 := cl.Env.Now()
			hs = append(hs, c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: size, Kind: frame.OpWrite}))
			overhead += cl.Env.Now() - t0
		}
		for _, h := range hs {
			h.Wait(p)
		}
		end = cl.Env.Now()
		net = cl.Collect().Sub(prev)
		cl.Obs.Quiesce()
	})
	cl.Env.RunUntil(600 * sim.Second)
	elapsed := end - start
	r := MicroResult{Config: cfg.Name, Benchmark: "one-way", Size: size, Net: net, Obs: cl.Obs}
	if elapsed > 0 {
		r.LatencyUs = overhead.Micros() / float64(count)
		r.ThroughputMBs = float64(size*count) / 1e6 / elapsed.Seconds()
		r.AppCPU = snap0[0].Since(cl.Env, cl.Nodes[0].CPUs.App)
		r.ProtoCPU = snap0[1].Since(cl.Env, cl.Nodes[0].CPUs.Proto)
		r.CPUPct = (r.AppCPU + r.ProtoCPU) * 100
	}
	return r
}

// RunTwoWay runs simultaneous one-way transfers in both directions; the
// reported throughput is the sum of both (IPPS'07 §3).
func RunTwoWay(cfg cluster.Config, size int) MicroResult {
	count := onewayCount(size)
	cl := cluster.New(cfg)
	c01, c10 := cl.Pair()
	ep0, ep1 := cl.Nodes[0].EP, cl.Nodes[1].EP
	s0, d0 := ep0.Alloc(size), ep0.Alloc(size)
	s1, d1 := ep1.Alloc(size), ep1.Alloc(size)

	var start, end [2]sim.Time
	var overhead sim.Time
	var snap0 [2]sim.Utilization
	var prev, net cluster.NetReport
	finished := 0
	run := func(idx int, c *core.Conn, src, dst uint64) func(p *sim.Proc) {
		return func(p *sim.Proc) {
			c.MustDo(p, core.Op{Remote: dst, Local: src, Size: size, Kind: frame.OpWrite}).Wait(p)
			start[idx] = cl.Env.Now()
			if idx == 0 {
				snap0[0] = cl.Nodes[0].CPUs.App.Snapshot(cl.Env)
				snap0[1] = cl.Nodes[0].CPUs.Proto.Snapshot(cl.Env)
				prev = cl.Collect()
			}
			hs := make([]*core.Handle, 0, count)
			for i := 0; i < count; i++ {
				t0 := cl.Env.Now()
				hs = append(hs, c.MustDo(p, core.Op{Remote: dst, Local: src, Size: size, Kind: frame.OpWrite}))
				if idx == 0 {
					overhead += cl.Env.Now() - t0
				}
			}
			for _, h := range hs {
				h.Wait(p)
			}
			end[idx] = cl.Env.Now()
			if idx == 0 {
				net = cl.Collect().Sub(prev)
			}
			if finished++; finished == 2 {
				cl.Obs.Quiesce()
			}
		}
	}
	cl.Env.Go("fwd", run(0, c01, s0, d1))
	cl.Env.Go("rev", run(1, c10, s1, d0))
	cl.Env.RunUntil(600 * sim.Second)
	r := MicroResult{Config: cfg.Name, Benchmark: "two-way", Size: size, Net: net, Obs: cl.Obs}
	e0, e1 := end[0]-start[0], end[1]-start[1]
	if e0 > 0 && e1 > 0 {
		r.LatencyUs = overhead.Micros() / float64(count)
		r.ThroughputMBs = float64(size*count)/1e6/e0.Seconds() +
			float64(size*count)/1e6/e1.Seconds()
		r.AppCPU = snap0[0].Since(cl.Env, cl.Nodes[0].CPUs.App)
		r.ProtoCPU = snap0[1].Since(cl.Env, cl.Nodes[0].CPUs.Proto)
		r.CPUPct = (r.AppCPU + r.ProtoCPU) * 100
	}
	return r
}

// Sizes is the transfer-size sweep of Figure 2.
var Sizes = []int{4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}

// Configs returns the four paper configurations at micro-benchmark scale
// (two nodes).
func Configs() []cluster.Config {
	return []cluster.Config{
		cluster.OneLink1G(2),
		cluster.TwoLink1G(2),
		cluster.TwoLinkUnordered1G(2),
		cluster.OneLink10G(2),
	}
}

// RunMicro dispatches by benchmark name ("ping-pong", "one-way",
// "two-way").
func RunMicro(name string, cfg cluster.Config, size int) MicroResult {
	switch name {
	case "ping-pong":
		return RunPingPong(cfg, size)
	case "one-way":
		return RunOneWay(cfg, size)
	case "two-way":
		return RunTwoWay(cfg, size)
	}
	panic("bench: unknown micro-benchmark " + name)
}

// Benchmarks lists the three micro-benchmark names.
var Benchmarks = []string{"ping-pong", "one-way", "two-way"}

// RunTreeCrossPair measures one-way throughput between nodes in
// different edge groups of a two-level tree (three store-and-forward
// hops).
func RunTreeCrossPair(size int) float64 {
	cfg := cluster.TreeOneLink1G(4, 2, 1) // nodes 0,1 | 2,3
	cfg.Core.MemBytes = 64 << 20
	cl := cluster.New(cfg)
	conns := cl.FullMesh()
	count := onewayCount(size)
	src := cl.Nodes[0].EP.Alloc(size)
	dst := cl.Nodes[2].EP.Alloc(size)
	var start, end sim.Time
	cl.Env.Go("xfer", func(p *sim.Proc) {
		conns[0][2].MustDo(p, core.Op{Remote: dst, Local: src, Size: size, Kind: frame.OpWrite}).Wait(p)
		start = cl.Env.Now()
		hs := make([]*core.Handle, 0, count)
		for i := 0; i < count; i++ {
			hs = append(hs, conns[0][2].MustDo(p, core.Op{Remote: dst, Local: src, Size: size, Kind: frame.OpWrite}))
		}
		for _, h := range hs {
			h.Wait(p)
		}
		end = cl.Env.Now()
	})
	cl.Env.RunUntil(600 * sim.Second)
	if end <= start {
		return 0
	}
	return float64(size*count) / 1e6 / (end - start).Seconds()
}

// RunTracedOneWay runs a one-way transfer with frame-level tracing
// attached to both endpoints and renders the receive-side summary and a
// 1-ms-bucket timeline (the paper's traffic-over-time analysis).
func RunTracedOneWay(cfg cluster.Config, size int) string {
	cfg.Nodes = 2
	cl := cluster.New(cfg)
	c01, _ := cl.Pair()
	tr0 := trace.New(cl.Env, 1<<16)
	tr1 := trace.New(cl.Env, 1<<16)
	cl.Nodes[0].EP.SetTrace(tr0)
	cl.Nodes[1].EP.SetTrace(tr1)
	src := cl.Nodes[0].EP.Alloc(size)
	dst := cl.Nodes[1].EP.Alloc(size)
	cl.Env.Go("xfer", func(p *sim.Proc) {
		c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: size, Kind: frame.OpWrite}).Wait(p)
	})
	cl.Env.RunUntil(600 * sim.Second)
	return "sender " + tr0.Summary() + "receiver " + tr1.Summary() +
		"\nreceiver timeline (1 ms buckets)\n" + tr1.Timeline(sim.Millisecond)
}

// LinkFailureResult summarizes one hard-link-failure run.
type LinkFailureResult struct {
	ThroughputMBs float64
	DeadEvents    uint64
	Restores      uint64
	FailDrops     uint64 // frames burned on the dead rail
}

// RunLinkFailure streams total bytes from node 0 to node 1 over the
// 2Lu-1G configuration while rail 1 is hard-failed at failAt (pulled
// cable) and, if repairAt > 0, repaired again at repairAt. detect
// toggles the sender's dead-link detection (the receiver's stale-NACK
// escape stays on — without it a dead rail is a livelock, not a
// slowdown; see DESIGN.md §4).
func RunLinkFailure(detect bool, total int, failAt, repairAt sim.Time) LinkFailureResult {
	cfg := cluster.TwoLinkUnordered1G(2)
	cfg.Core.MemBytes = total + (1 << 20)
	if !detect {
		cfg.Core.DeadLinkThreshold = 0
	}
	cl := cluster.New(cfg)
	c01, _ := cl.Pair()
	src := cl.Nodes[0].EP.Alloc(total)
	dst := cl.Nodes[1].EP.Alloc(total)
	cl.Env.At(failAt, func() { cl.FailLink(0, 1) })
	if repairAt > 0 {
		cl.Env.At(repairAt, func() { cl.RestoreLink(0, 1) })
	}
	var start, end sim.Time
	cl.Env.Go("xfer", func(p *sim.Proc) {
		start = cl.Env.Now()
		c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: total, Kind: frame.OpWrite}).Wait(p)
		end = cl.Env.Now()
	})
	cl.Env.RunUntil(600 * sim.Second)
	r := LinkFailureResult{
		DeadEvents: cl.Nodes[0].EP.Stats.LinkDeadEvents,
		Restores:   cl.Nodes[0].EP.Stats.LinkRestores,
		FailDrops:  cl.Collect().LinkFailDrops,
	}
	if end > start {
		r.ThroughputMBs = float64(total) / 1e6 / (end - start).Seconds()
	}
	return r
}
