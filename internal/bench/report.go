package bench

import (
	"fmt"
	"strings"

	"multiedge/internal/cluster"
	"multiedge/internal/sim"
)

// Reporting: text renderings of every table and figure in the paper's
// evaluation, regenerated from this reproduction's measurements.

// RenderFig2 runs and renders one panel of Figure 2 for all four
// configurations: "a" latency, "b" throughput, "c" CPU utilization.
func RenderFig2(panel string, sizes []int) string {
	var b strings.Builder
	title := map[string]string{
		"a": "Figure 2(a): latency (us) — ping-pong one-way; one-/two-way initiation overhead",
		"b": "Figure 2(b): throughput (MBytes/s)",
		"c": "Figure 2(c): protocol CPU utilization (%, of 200%)",
	}[panel]
	fmt.Fprintln(&b, title)
	for _, bm := range Benchmarks {
		fmt.Fprintf(&b, "\n%s\n", bm)
		fmt.Fprintf(&b, "%10s", "size")
		for _, cfg := range Configs() {
			fmt.Fprintf(&b, "%10s", cfg.Name)
		}
		fmt.Fprintln(&b)
		for _, sz := range sizes {
			fmt.Fprintf(&b, "%10d", sz)
			for _, cfg := range Configs() {
				r := RunMicro(bm, cfg, sz)
				switch panel {
				case "a":
					fmt.Fprintf(&b, "%10.2f", r.LatencyUs)
				case "b":
					fmt.Fprintf(&b, "%10.1f", r.ThroughputMBs)
				case "c":
					fmt.Fprintf(&b, "%10.1f", r.CPUPct)
				}
			}
			fmt.Fprintln(&b)
		}
	}
	return b.String()
}

// RenderNetStats runs the micro-benchmarks at a large size and reports
// the paper's §4 network-level statistics: out-of-order fraction, extra
// traffic, and dropped frames.
func RenderNetStats(size int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Network-level statistics (micro-benchmarks, %d-byte operations)\n", size)
	fmt.Fprintf(&b, "%-8s %-10s %8s %8s %8s %8s %8s\n",
		"config", "benchmark", "ooo%", "extra%", "acks", "retrans", "drops")
	for _, cfg := range Configs() {
		for _, bm := range Benchmarks {
			r := RunMicro(bm, cfg, size)
			p := r.Net.Proto
			fmt.Fprintf(&b, "%-8s %-10s %8.1f %8.2f %8d %8d %8d\n",
				cfg.Name, bm,
				p.OOOFraction()*100, p.ExtraTrafficFraction()*100,
				p.CtrlAcksSent, p.Retransmissions,
				r.Net.SwitchDrops+r.Net.LinkErrDrops)
		}
	}
	return b.String()
}

// RenderTable1 renders the reproduction's Table 1.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 1: benchmark applications (reproduction scale)")
	fmt.Fprintf(&b, "%-18s %-34s %14s %12s\n", "Application", "Problem Size", "Seq. Exec.", "Footprint")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %-34s %14v %9d KB\n", r.Name, r.Problem, r.SeqExec, r.Footprint/1024)
	}
	return b.String()
}

// RenderAppFigure renders one of Figures 3-6: speedups, execution-time
// breakdowns and network statistics per application.
func RenderAppFigure(spec FigureSpec, pts []AppPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s: application statistics (%s)\n\n", spec.Figure, spec.Config(2).Name)
	fmt.Fprintf(&b, "%-18s %5s %10s %7s | %7s %7s %7s %7s %7s | %6s %6s %6s %6s %6s\n",
		"application", "nodes", "time", "spdup",
		"comp%", "data%", "lock%", "barr%", "ovhd%",
		"prot%", "ooo%", "extra%", "intr%", "drops")
	for _, p := range pts {
		bd := p.MeanBreakdown()
		tot := float64(p.Elapsed)
		if tot == 0 {
			tot = 1
		}
		pc := func(v float64) float64 { return v / tot * 100 }
		intrPct := 0.0
		if f := p.Net.NICRxFrames; f > 0 {
			intrPct = float64(p.Net.Interrupts) / float64(f) * 100
		}
		fmt.Fprintf(&b, "%-18s %5d %10v %7.2f | %7.1f %7.1f %7.1f %7.1f %7.1f | %6.1f %6.1f %6.2f %6.1f %6d\n",
			p.Name, p.Nodes, p.Elapsed, p.Speedup,
			pc(float64(bd.Compute)), pc(float64(bd.Data)), pc(float64(bd.Lock)),
			pc(float64(bd.Barrier)), pc(float64(bd.Overhead)),
			p.ProtoCPUFrac*100,
			p.Net.Proto.OOOFraction()*100,
			p.Net.Proto.ExtraTrafficFraction()*100,
			intrPct,
			p.Net.SwitchDrops+p.Net.LinkErrDrops)
	}
	return b.String()
}

// RenderAblation sweeps the design choices DESIGN.md calls out: frame-
// vs byte-striping and selective-repeat vs go-back-N, on the dual-link
// configuration, with and without loss.
func RenderAblation(size int) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Ablations: one-way throughput (MB/s) on 2 x 1-GBit/s links")
	type variant struct {
		name string
		mod  func(*cluster.Config)
	}
	variants := []variant{
		{"frame-stripe+SR", func(c *cluster.Config) {}},
		{"byte-stripe+SR", func(c *cluster.Config) { c.Core.ByteStripe = true }},
		{"frame-stripe+GBN", func(c *cluster.Config) { c.Core.GoBackN = true }},
		{"byte-stripe+GBN", func(c *cluster.Config) { c.Core.ByteStripe = true; c.Core.GoBackN = true }},
	}
	for _, loss := range []float64{0, 0.001} {
		fmt.Fprintf(&b, "\nloss probability %.3f\n", loss)
		for _, v := range variants {
			cfg := cluster.TwoLinkUnordered1G(2)
			cfg.Link.LossProb = loss
			v.mod(&cfg)
			r := RunOneWay(cfg, size)
			fmt.Fprintf(&b, "  %-18s %8.1f MB/s   extra %5.2f%%  retrans %d\n",
				v.name, r.ThroughputMBs,
				r.Net.Proto.ExtraTrafficFraction()*100, r.Net.Proto.Retransmissions)
		}
	}
	// Window sweep.
	fmt.Fprintln(&b, "\nflow-control window sweep (one-way, 1L-10G)")
	for _, w := range []int{16, 32, 64, 128, 256} {
		cfg := cluster.OneLink10G(2)
		cfg.Core.Window = w
		r := RunOneWay(cfg, size)
		fmt.Fprintf(&b, "  window %4d: %8.1f MB/s\n", w, r.ThroughputMBs)
	}
	// Delayed-ack sweep.
	fmt.Fprintln(&b, "\ndelayed-ack threshold sweep (one-way, 1L-1G)")
	for _, a := range []int{1, 4, 16, 32, 64} {
		cfg := cluster.OneLink1G(2)
		cfg.Core.AckEvery = a
		r := RunOneWay(cfg, size)
		fmt.Fprintf(&b, "  ack every %3d: %8.1f MB/s   extra %5.2f%%\n",
			a, r.ThroughputMBs, r.Net.Proto.ExtraTrafficFraction()*100)
	}
	// Interrupt avoidance (§2.6): mask the NIC while the protocol
	// thread polls. Only matters when frames arrive faster than they
	// are processed — irrelevant at 1-GbE (the thread drains and sleeps
	// between frames anyway), decisive at 10-GbE.
	fmt.Fprintln(&b, "\ninterrupt avoidance (§2.6): masked polling vs per-frame interrupts")
	for _, g := range []struct {
		name string
		mk   func(int) cluster.Config
	}{{"1L-1G", cluster.OneLink1G}, {"1L-10G", cluster.OneLink10G}} {
		for _, rx := range []bool{false, true} {
			cfg := g.mk(2)
			cfg.NIC.RxIntrUnmaskable = rx
			mode := "masked polling"
			if rx {
				mode = "every frame interrupts"
			}
			r := RunOneWay(cfg, size)
			fmt.Fprintf(&b, "  %-7s %-22s %8.1f MB/s   interrupts/rx-frame %.2f\n",
				g.name, mode, r.ThroughputMBs,
				float64(r.Net.Interrupts)/float64(r.Net.NICRxFrames))
		}
	}

	// Hard link failure: edge-based scaling also means edge-based fault
	// tolerance — the striper sheds a dead rail and continues at the
	// survivors' rate instead of stalling every window on it.
	fmt.Fprintln(&b, "\nhard link failure (one of two 1-GbE rails dies at 2 ms, 8 MiB one-way)")
	on := RunLinkFailure(true, 8<<20, 2*sim.Millisecond, 0)
	fmt.Fprintf(&b, "  dead-link detection on:  %8.1f MB/s   dead %d  restores %d  burned frames %d\n",
		on.ThroughputMBs, on.DeadEvents, on.Restores, on.FailDrops)
	off := RunLinkFailure(false, 8<<20, 2*sim.Millisecond, 0)
	fmt.Fprintf(&b, "  dead-link detection off: %8.1f MB/s   dead %d  restores %d  burned frames %d\n",
		off.ThroughputMBs, off.DeadEvents, off.Restores, off.FailDrops)
	rep := RunLinkFailure(true, 8<<20, 2*sim.Millisecond, 30*sim.Millisecond)
	fmt.Fprintf(&b, "  repaired at 30 ms:       %8.1f MB/s   dead %d  restores %d  burned frames %d\n",
		rep.ThroughputMBs, rep.DeadEvents, rep.Restores, rep.FailDrops)
	b.WriteString(RenderFutureWork(size))
	return b.String()
}

// RenderFutureWork runs the paper's §6 future-work directions: hybrid
// NIC offload and multi-switch tree fabrics.
func RenderFutureWork(size int) string {
	var b strings.Builder
	fmt.Fprintln(&b, "\nfuture work (IPPS'07 §6): NIC offload (one-way, 10-GbE)")
	edge := RunOneWay(cluster.OneLink10G(2), size)
	off := RunOneWay(cluster.OneLink10GOffload(2), size)
	fmt.Fprintf(&b, "  edge protocol:    %8.1f MB/s  host CPU %5.1f%%\n", edge.ThroughputMBs, edge.CPUPct)
	fmt.Fprintf(&b, "  NIC offload:      %8.1f MB/s  host CPU %5.1f%%\n", off.ThroughputMBs, off.CPUPct)

	// The design goal itself, §1: "scale the link bandwidth with the
	// number of links". The paper evaluates up to two rails; the model
	// extends the sweep to four.
	fmt.Fprintln(&b, "\nedge scaling: one-way throughput vs number of 1-GbE rails (§1 thesis)")
	for rails := 1; rails <= 4; rails++ {
		cfg := cluster.TwoLinkUnordered1G(2)
		cfg.LinksPerNode = rails
		cfg.Name = fmt.Sprintf("%dL-1G", rails)
		r := RunOneWay(cfg, size)
		fmt.Fprintf(&b, "  %d rail(s): %8.1f MB/s   ooo %5.1f%%   extra %5.2f%%\n",
			rails, r.ThroughputMBs, r.Net.Proto.OOOFraction()*100,
			r.Net.Proto.ExtraTrafficFraction()*100)
	}

	// Heterogeneous rails: the incremental-upgrade scenario edge-based
	// scaling invites (add a 10-GbE rail next to the 1-GbE one).
	// Round-robin gives every rail the same frame count, so the slow
	// rail paces the window; least-backlog striping fills both.
	fmt.Fprintln(&b, "\nedge scaling, heterogeneous rails: 1-GbE + 10-GbE (one-way)")
	hyb := cluster.HybridRails(2)
	rr := hyb
	rr.Core.AdaptiveStripe = false
	ha := RunOneWay(hyb, size)
	hr := RunOneWay(rr, size)
	fmt.Fprintf(&b, "  adaptive (least-backlog): %8.1f MB/s   ooo %5.1f%%   extra %5.2f%%\n",
		ha.ThroughputMBs, ha.Net.Proto.OOOFraction()*100, ha.Net.Proto.ExtraTrafficFraction()*100)
	fmt.Fprintf(&b, "  round-robin:              %8.1f MB/s   ooo %5.1f%%   extra %5.2f%%\n",
		hr.ThroughputMBs, hr.Net.Proto.OOOFraction()*100, hr.Net.Proto.ExtraTrafficFraction()*100)

	fmt.Fprintln(&b, "\nfuture work: two-level switch tree (one-way pair, 1-GbE)")
	flat := RunOneWay(cluster.OneLink1G(2), size)
	fmt.Fprintf(&b, "  flat switch:                %8.1f MB/s\n", flat.ThroughputMBs)
	intra := RunOneWay(cluster.TreeOneLink1G(4, 4, 1), size)
	fmt.Fprintf(&b, "  tree, intra-edge pair:      %8.1f MB/s\n", intra.ThroughputMBs)
	// Cross-core pair: put the two endpoints in different groups.
	cross := RunTreeCrossPair(size)
	fmt.Fprintf(&b, "  tree, cross-core pair:      %8.1f MB/s\n", cross)
	return b.String()
}

// RenderFigureSummary renders a compact per-app speedup summary used by
// EXPERIMENTS.md.
func RenderFigureSummary(pts []AppPoint, nodes int) string {
	var b strings.Builder
	for _, p := range pts {
		if p.Nodes != nodes {
			continue
		}
		fmt.Fprintf(&b, "%-18s speedup %6.2f on %d nodes\n", p.Name, p.Speedup, p.Nodes)
	}
	return b.String()
}
