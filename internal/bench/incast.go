package bench

import (
	"bytes"
	"errors"
	"fmt"
	"strings"

	"multiedge/internal/cluster"
	"multiedge/internal/core"
	"multiedge/internal/frame"
	"multiedge/internal/obs"
	"multiedge/internal/sim"
	"multiedge/internal/trace"
)

// Incast stress: many synchronized senders converging on one receiver
// behind a single switch port — the classic fan-in collapse scenario
// ISSUE 10's congestion-control work exists for. The bench runs the
// same synchronized storm twice over identical seeds: once with the
// transport's congestion machinery off (the collapse baseline) and once
// with ECN + AIMD + admission backpressure on, then gates on the CC run
// sustaining most of the bottleneck's goodput while sharing it fairly.
//
// The parking-lot companion congests one of two rails with pinned
// background flows and measures a victim that stripes across both:
// round-robin striping queues half the victim's frames behind the
// congested rail, congestion-weighted striping shifts them off it.

const (
	// incastSlots is the per-sender closed-loop pipeline depth.
	incastSlots = 4
	// incastEcnThresh is the switch marking threshold (frames queued)
	// for the CC phases: a quarter of the default 160-frame drop point,
	// so marking throttles senders well before drop-tail engages.
	incastEcnThresh = 40
	// Gates for the CC-on incast phase (ISSUE 10 acceptance): sustain
	// at least this share of the bottleneck's payload capacity, with at
	// least this Jain fairness index across senders.
	incastMinUtil = 0.80
	incastMinJain = 0.90
	// parkingLotMinGain is the victim throughput ratio (adaptive / RR)
	// the parking-lot phase must clear: congestion-weighted striping
	// has to beat round-robin by a real margin, not noise.
	parkingLotMinGain = 1.10
)

// IncastOptions parameterizes one incast run.
type IncastOptions struct {
	Senders  int      // synchronized senders (one node each)
	Size     int      // bytes per operation
	Duration sim.Time // measurement window after the synchronized start
	CC       bool     // congestion control + ECN marking on
	Seed     int64

	// Obs composes the observability registry into the run; the flight
	// recorder is attached unless DisableRecorder.
	Obs             cluster.ObsOptions
	DisableRecorder bool
}

// IncastResult is one incast measurement plus its correctness gates.
type IncastResult struct {
	Senders int
	CC      bool
	Ops     int // operations completed across all senders
	Failed  int // operations that completed with an error
	Elapsed sim.Time

	OpsPerSec   float64
	GoodMB      float64 // payload goodput, MB/s
	Utilization float64 // goodput / bottleneck payload capacity
	Jain        float64 // Jain fairness index over per-sender op counts
	MinOps      int     // slowest sender's completed ops
	MaxOps      int     // fastest sender's completed ops

	P50Us float64 // closed-loop op latency percentiles
	P95Us float64
	P99Us float64

	PeerDeaths  uint64 // connections declared dead (must be 0 under CC)
	EcnMarks    uint64 // frames marked by switch queues
	CwndCuts    uint64 // multiplicative decreases taken
	SwitchDrops uint64 // drop-tail losses at the bottleneck
	Retrans     uint64 // data frames transmitted again

	// Gates.
	DataOK        bool
	PendingEvents int
	ActiveConns   int

	Net cluster.NetReport

	Obs       *obs.Registry
	Recorders []*obs.Recorder
	Dump      *obs.PostMortem
}

// payloadWireBytes returns the wire bytes one operation's payload
// occupies on the bottleneck link once fragmented into MTU-sized data
// frames (headers, CRC, and inter-frame gap included).
func payloadWireBytes(size int) int {
	total := 0
	for size > 0 {
		chunk := size
		if chunk > frame.MaxPayload {
			chunk = frame.MaxPayload
		}
		total += frame.WireLen(frame.EthHeaderLen + frame.HeaderLen + chunk)
		size -= chunk
	}
	return total
}

// jainIndex computes the Jain fairness index (sum x)^2 / (n * sum x^2)
// over per-sender op counts: 1.0 is perfectly fair, 1/n is one sender
// starving all others.
func jainIndex(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range xs {
		sum += float64(x)
		sq += float64(x) * float64(x)
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// RunIncast drives opts.Senders synchronized writers against node 0
// through one switch. Every sender runs a closed-loop pipeline of
// incastSlots remote writes for the measurement window, then drains and
// closes; per-sender completion counts feed the Jain fairness index and
// total payload over elapsed time feeds bottleneck utilization.
func RunIncast(opts IncastOptions) IncastResult {
	senders := opts.Senders
	if senders < 1 {
		senders = 1
	}
	size := opts.Size
	if size <= 0 {
		size = 8 << 10
	}
	dur := opts.Duration
	if dur <= 0 {
		dur = 80 * sim.Millisecond
	}

	cfg := cluster.OneLink1G(1 + senders)
	cfg.Seed = opts.Seed
	cfg.Core.SchedQueue = true
	cfg.Core.TimerWheelTick = 50 * sim.Microsecond
	cfg.Core.MemBytes = senders*incastSlots*size + (1 << 20)
	if opts.CC {
		// InitWindow 4: with 64 synchronized senders the default initial
		// window of 16 fires a 1024-frame opening burst into a 160-frame
		// switch queue — a self-inflicted drop storm before the first
		// ECN echo can land. 4 keeps the opening burst near the queue
		// capacity and lets marking take over from there.
		cfg.Core.CongestionControl = core.CCConfig{Enable: true, InitWindow: 4}
		cfg.EcnThreshold = incastEcnThresh
	}
	cfg.Obs = opts.Obs
	cfg.Obs.Recorder = !opts.DisableRecorder
	cl := cluster.New(cfg)
	server := cl.Nodes[0].EP

	rec := &trace.LatencyRecorder{}
	var startSig sim.Signal
	var start, end sim.Time
	startSig.OnFire(cl.Env, func() { start = cl.Env.Now() })
	perSender := make([]int, senders)
	dialed, finished, failedOps := 0, 0, 0
	verified := true

	for j := 0; j < senders; j++ {
		j := j
		ep := cl.Nodes[1+j].EP
		cl.Env.Go(fmt.Sprintf("incast%d", j), func(p *sim.Proc) {
			c := ep.Dial(p, 0, 0)
			remote := server.Alloc(incastSlots * size)
			local := ep.Alloc(incastSlots * size)
			faninFill(ep.Mem()[local:local+uint64(incastSlots*size)], byte(41+j))
			// Barrier: every sender opens fire at the same instant — the
			// synchronized burst IS the incast scenario.
			if dialed++; dialed == senders {
				startSig.Fire(cl.Env)
			}
			p.Wait(&startSig)
			tEnd := cl.Env.Now() + dur

			type pend struct {
				h  *core.Handle
				t0 sim.Time
			}
			var q []pend
			k, alive := 0, true
			for alive && cl.Env.Now() < tEnd {
				for alive && len(q) < incastSlots && cl.Env.Now() < tEnd {
					off := uint64(k%incastSlots) * uint64(size)
					t0 := cl.Env.Now()
					h, err := c.Do(p, core.Op{Remote: remote + off, Local: local + off,
						Size: size, Kind: frame.OpWrite, Flags: frame.Solicit})
					if err != nil {
						failedOps++
						alive = false
						break
					}
					q = append(q, pend{h, t0})
					k++
				}
				if len(q) == 0 {
					break
				}
				pe := q[0]
				q = q[1:]
				pe.h.Wait(p)
				if err := pe.h.Err(); err != nil {
					failedOps++
					if errors.Is(err, core.ErrPeerDead) {
						alive = false
					}
				} else {
					rec.Record(cl.Env.Now() - pe.t0)
					perSender[j]++
				}
			}
			for _, pe := range q {
				pe.h.Wait(p)
				if pe.h.Err() != nil {
					failedOps++
				} else {
					rec.Record(cl.Env.Now() - pe.t0)
					perSender[j]++
				}
			}

			// Byte-verify the touched slots (identical refills make
			// partial rewrites invisible, so any mismatch is corruption).
			if !c.Failed() && perSender[j] > 0 {
				touched := perSender[j]
				if touched > incastSlots {
					touched = incastSlots
				}
				nb := uint64(touched * size)
				if !bytes.Equal(server.Mem()[remote:remote+nb], ep.Mem()[local:local+nb]) {
					verified = false
				}
			}
			if finished++; finished == senders {
				end = cl.Env.Now()
			}
			c.Close(p)
		})
	}
	if cl.Obs != nil {
		cl.Env.Run()
		cl.Obs.Quiesce()
	} else {
		cl.Env.RunUntil(600 * sim.Second)
	}

	ops := 0
	minOps, maxOps := -1, 0
	for _, n := range perSender {
		ops += n
		if minOps < 0 || n < minOps {
			minOps = n
		}
		if n > maxOps {
			maxOps = n
		}
	}
	r := IncastResult{
		Senders: senders,
		CC:      opts.CC,
		Ops:     ops,
		Failed:  failedOps,
		MinOps:  minOps,
		MaxOps:  maxOps,
		Jain:    jainIndex(perSender),
		DataOK:  verified && finished == senders,
		Net:     cl.Collect(),
	}
	if end > start && start > 0 {
		r.Elapsed = end - start
		r.OpsPerSec = float64(ops) / r.Elapsed.Seconds()
		r.GoodMB = float64(ops) * float64(size) / 1e6 / r.Elapsed.Seconds()
		// The bottleneck is the receiver's single downlink; its payload
		// capacity is the line rate discounted by framing overhead.
		capMB := cfg.Link.BytesPerSec() * float64(size) / float64(payloadWireBytes(size)) / 1e6
		r.Utilization = r.GoodMB / capMB
	}
	r.P50Us = rec.Percentile(50).Micros()
	r.P95Us = rec.Percentile(95).Micros()
	r.P99Us = rec.Percentile(99).Micros()
	r.PeerDeaths = r.Net.Proto.PeerDeadEvents
	r.EcnMarks = r.Net.EcnMarks
	r.CwndCuts = r.Net.Proto.CcCwndCuts
	r.SwitchDrops = r.Net.SwitchDrops
	r.Retrans = r.Net.Proto.Retransmissions
	r.PendingEvents = cl.Env.PendingEvents()
	r.ActiveConns = server.ActiveConns()
	for _, n := range cl.Nodes[1:] {
		r.ActiveConns += n.EP.ActiveConns()
	}
	r.Obs = cl.Obs
	r.Recorders = cl.Recorders
	if !r.DataOK || !r.LeakFree() {
		cause := fmt.Sprintf("incast gate failure: dataOK=%v pendingEvents=%d activeConns=%d",
			r.DataOK, r.PendingEvents, r.ActiveConns)
		r.Dump = obs.BuildPostMortem(cause, cl.Env.Now(), nil, cl.Recorders...)
	}
	return r
}

// LeakFree reports whether the post-teardown gates all passed.
func (r IncastResult) LeakFree() bool { return r.PendingEvents == 0 && r.ActiveConns == 0 }

func (r IncastResult) String() string {
	mode := "cc-off"
	if r.CC {
		mode = "cc-on "
	}
	gate := "ok"
	if !r.LeakFree() {
		gate = fmt.Sprintf("LEAK(ev=%d conns=%d)", r.PendingEvents, r.ActiveConns)
	}
	data := "ok"
	if !r.DataOK {
		data = "CORRUPT"
	}
	return fmt.Sprintf("%s %3d senders %6d ops (%d..%d)  %8.3fms  %6.1f MB/s  util %4.2f  jain %4.2f  p50 %7.1fus  p99 %9.1fus  ecn %5d  cuts %4d  drops %5d  retx %4d  deaths %d  data %-7s leak %s",
		mode, r.Senders, r.Ops, r.MinOps, r.MaxOps, r.Elapsed.Micros()/1e3, r.GoodMB,
		r.Utilization, r.Jain, r.P50Us, r.P99Us, r.EcnMarks, r.CwndCuts, r.SwitchDrops,
		r.Retrans, r.PeerDeaths, data, gate)
}

// ParkingLotOptions parameterizes one parking-lot run.
type ParkingLotOptions struct {
	Ops      int  // victim operations (fixed count, closed loop)
	Size     int  // victim bytes per operation
	BgSize   int  // background bytes per operation
	Adaptive bool // congestion-weighted striping (CC + ECN) on
	Seed     int64
}

// ParkingLotResult measures the victim flow on a two-rail node where
// background flows congest rail 0 only.
type ParkingLotResult struct {
	Adaptive bool
	Ops      int
	Elapsed  sim.Time

	OpsPerSec float64
	GoodMB    float64
	P50Us     float64
	P99Us     float64

	// Victim data split across the two rails during the measured
	// window: round-robin sits at ~0.5, congestion-weighted striping
	// shifts Rail1Share up as rail 0's RTT inflates.
	Rail0Frames uint64
	Rail1Frames uint64
	Rail1Share  float64

	BgOps int // background ops completed while the victim ran

	// Gates.
	DataOK        bool
	PendingEvents int
	ActiveConns   int

	Net cluster.NetReport
}

// RunParkingLot congests rail 0 of a two-rail fabric with two pinned
// background flows (Dial with links=1 keeps them on NIC 0) and measures
// a victim on another node striping opts.Ops writes across both rails
// to the same receiver. Adaptive runs enable the congestion controller,
// whose per-rail RTT estimates steer the victim's frames off the
// congested rail; non-adaptive runs are the round-robin baseline.
//
// The background load is deliberately sized below the switch queue
// capacity: rail 0 must be slow but LOSSLESS. Loss on a rail feeds the
// transport's repair-count failure detector (DeadLinkThreshold), which
// routes around the rail in the baseline too — masking the striping
// comparison. A standing queue that delays every frame without dropping
// any is exactly the congestion signature only the end-to-end per-rail
// RTT estimate can see.
func RunParkingLot(opts ParkingLotOptions) ParkingLotResult {
	ops := opts.Ops
	if ops <= 0 {
		ops = 300
	}
	size := opts.Size
	if size <= 0 {
		size = 8 << 10
	}
	bgSize := opts.BgSize
	if bgSize <= 0 {
		bgSize = 16 << 10
	}

	cfg := cluster.TwoLinkUnordered1G(4)
	cfg.Seed = opts.Seed
	cfg.Core.SchedQueue = true
	cfg.Core.TimerWheelTick = 50 * sim.Microsecond
	if opts.Adaptive {
		// No ECN here: the scenario is drop- and mark-free by design, so
		// the only congestion signal is the per-rail RTT split — the
		// mechanism under test. InitWindow above the working set keeps
		// AIMD out of the way.
		cfg.Core.CongestionControl = core.CCConfig{Enable: true, InitWindow: 64}
	}
	cl := cluster.New(cfg)
	receiver := cl.Nodes[1].EP

	// Two background conns at depth 2 hold ~48 frames standing in rail
	// 0's switch queue — well under the 160-frame drop point.
	const bgSlots = 2
	rec := &trace.LatencyRecorder{}
	var bgSig, startSig sim.Signal
	var start, end sim.Time
	bgUp, bgOps := 0, 0
	victimDone := false
	verified := true
	var rail0, rail1 uint64

	// Background flows: nodes 2 and 3 hammer the receiver over rail 0
	// only, keeping its switch port congested until the victim is done.
	for _, node := range []int{2, 3} {
		node := node
		ep := cl.Nodes[node].EP
		cl.Env.Go(fmt.Sprintf("bg%d", node), func(p *sim.Proc) {
			c := ep.Dial(p, 1, 1) // links=1: pinned to rail 0
			remote := receiver.Alloc(bgSlots * bgSize)
			local := ep.Alloc(bgSlots * bgSize)
			faninFill(ep.Mem()[local:local+uint64(bgSlots*bgSize)], byte(101+node))
			var q []*core.Handle
			k := 0
			issue := func() bool {
				off := uint64(k%bgSlots) * uint64(bgSize)
				h, err := c.Do(p, core.Op{Remote: remote + off, Local: local + off,
					Size: bgSize, Kind: frame.OpWrite, Flags: frame.Solicit})
				if err != nil {
					return false
				}
				q = append(q, h)
				k++
				return true
			}
			// Prime the pipeline before releasing the victim so rail 0
			// is already congested when measurement starts.
			for len(q) < bgSlots {
				if !issue() {
					break
				}
			}
			if bgUp++; bgUp == 2 {
				bgSig.Fire(cl.Env)
			}
			for !victimDone && len(q) > 0 {
				h := q[0]
				q = q[1:]
				h.Wait(p)
				if h.Err() == nil {
					bgOps++
				}
				if !victimDone {
					issue()
				}
			}
			for _, h := range q {
				h.Wait(p)
				if h.Err() == nil {
					bgOps++
				}
			}
			c.Close(p)
		})
	}

	// Victim: node 0 stripes across both rails to the same receiver.
	startSig.OnFire(cl.Env, func() { start = cl.Env.Now() })
	cl.Env.Go("victim", func(p *sim.Proc) {
		c := ep0Dial(cl, p)
		remote := receiver.Alloc(incastSlots * size)
		local := cl.Nodes[0].EP.Alloc(incastSlots * size)
		faninFill(cl.Nodes[0].EP.Mem()[local:local+uint64(incastSlots*size)], 77)
		p.Wait(&bgSig)
		// Let the background queue build at rail 0's switch port.
		p.Sleep(2 * sim.Millisecond)
		tx0 := cl.Nodes[0].NICs[0].TxFrames
		tx1 := cl.Nodes[0].NICs[1].TxFrames
		startSig.Fire(cl.Env)

		var q []struct {
			h  *core.Handle
			t0 sim.Time
		}
		for k := 0; k < ops || len(q) > 0; {
			for k < ops && len(q) < incastSlots {
				off := uint64(k%incastSlots) * uint64(size)
				t0 := cl.Env.Now()
				h, err := c.Do(p, core.Op{Remote: remote + off, Local: local + off,
					Size: size, Kind: frame.OpWrite, Flags: frame.Solicit})
				if err != nil {
					verified = false
					k = ops
					break
				}
				q = append(q, struct {
					h  *core.Handle
					t0 sim.Time
				}{h, t0})
				k++
			}
			if len(q) == 0 {
				break
			}
			pe := q[0]
			q = q[1:]
			pe.h.Wait(p)
			if pe.h.Err() != nil {
				verified = false
			} else {
				rec.Record(cl.Env.Now() - pe.t0)
			}
		}
		end = cl.Env.Now()
		rail0 = cl.Nodes[0].NICs[0].TxFrames - tx0
		rail1 = cl.Nodes[0].NICs[1].TxFrames - tx1
		victimDone = true
		touched := ops
		if touched > incastSlots {
			touched = incastSlots
		}
		nb := uint64(touched * size)
		if !bytes.Equal(receiver.Mem()[remote:remote+nb], cl.Nodes[0].EP.Mem()[local:local+nb]) {
			verified = false
		}
		c.Close(p)
	})
	cl.Env.RunUntil(600 * sim.Second)

	r := ParkingLotResult{
		Adaptive: opts.Adaptive,
		Ops:      ops,
		BgOps:    bgOps,
		DataOK:   verified,
		Net:      cl.Collect(),
	}
	if end > start && start > 0 {
		r.Elapsed = end - start
		r.OpsPerSec = float64(ops) / r.Elapsed.Seconds()
		r.GoodMB = float64(ops) * float64(size) / 1e6 / r.Elapsed.Seconds()
	}
	r.P50Us = rec.Percentile(50).Micros()
	r.P99Us = rec.Percentile(99).Micros()
	r.Rail0Frames, r.Rail1Frames = rail0, rail1
	if rail0+rail1 > 0 {
		r.Rail1Share = float64(rail1) / float64(rail0+rail1)
	}
	r.PendingEvents = cl.Env.PendingEvents()
	for _, n := range cl.Nodes {
		r.ActiveConns += n.EP.ActiveConns()
	}
	return r
}

func ep0Dial(cl *cluster.Cluster, p *sim.Proc) *core.Conn {
	return cl.Nodes[0].EP.Dial(p, 1, 0) // links=0: stripe over both rails
}

// LeakFree reports whether the post-teardown gates all passed.
func (r ParkingLotResult) LeakFree() bool { return r.PendingEvents == 0 && r.ActiveConns == 0 }

func (r ParkingLotResult) String() string {
	mode := "round-robin"
	if r.Adaptive {
		mode = "adaptive   "
	}
	gate := "ok"
	if !r.LeakFree() {
		gate = fmt.Sprintf("LEAK(ev=%d conns=%d)", r.PendingEvents, r.ActiveConns)
	}
	data := "ok"
	if !r.DataOK {
		data = "CORRUPT"
	}
	return fmt.Sprintf("%s %5d ops  %8.3fms  %8.0f ops/s  %6.1f MB/s  p50 %7.1fus  p99 %9.1fus  rail1 %4.2f  bg %5d ops  data %-7s leak %s",
		mode, r.Ops, r.Elapsed.Micros()/1e3, r.OpsPerSec, r.GoodMB, r.P50Us, r.P99Us,
		r.Rail1Share, r.BgOps, data, gate)
}

// RenderIncast runs the incast collapse A/B (CC off, then on, identical
// seeds) and the parking-lot striping A/B (round-robin, then adaptive),
// printing one row per phase plus the cross-phase gates. ok is false if
// any gate failed; the result slices carry one entry per phase for
// bench-trajectory output.
func RenderIncast(senders, size int, dur sim.Time, obsOpts cluster.ObsOptions) (out string, ok bool, incasts []IncastResult, lots []ParkingLotResult) {
	var b strings.Builder
	fmt.Fprintf(&b, "Incast collapse: %d synchronized senders -> 1 receiver, 1L-1G, %dB ops, %v window\n", senders, size, dur)
	fmt.Fprintf(&b, "(closed-loop pipeline depth %d per sender; CC phase: ECN mark at %d frames + AIMD window + admission backpressure)\n\n",
		incastSlots, incastEcnThresh)
	ok = true

	off := RunIncast(IncastOptions{Senders: senders, Size: size, Duration: dur, CC: false, Seed: 42})
	on := RunIncast(IncastOptions{Senders: senders, Size: size, Duration: dur, CC: true, Seed: 42, Obs: obsOpts})
	incasts = append(incasts, off, on)
	fmt.Fprintf(&b, "  %s\n  %s\n\n", off, on)

	// Gates: the CC run must hold the bottleneck (utilization, fairness,
	// no losses escalating to peer-death), and the baseline must
	// actually collapse — otherwise the scenario is not stressing
	// anything and the CC numbers are vacuous.
	if on.Utilization < incastMinUtil {
		ok = false
		fmt.Fprintf(&b, "FAIL: cc-on utilization %.2f below %.2f\n", on.Utilization, incastMinUtil)
	}
	if on.Jain < incastMinJain {
		ok = false
		fmt.Fprintf(&b, "FAIL: cc-on Jain fairness %.2f below %.2f\n", on.Jain, incastMinJain)
	}
	if on.PeerDeaths > 0 || on.Failed > 0 {
		ok = false
		fmt.Fprintf(&b, "FAIL: cc-on run had %d peer deaths, %d failed ops (want 0)\n", on.PeerDeaths, on.Failed)
	}
	if !on.DataOK || !on.LeakFree() || !off.DataOK || !off.LeakFree() {
		ok = false
		fmt.Fprintf(&b, "FAIL: a phase corrupted data or leaked post-close state\n")
	}
	if off.SwitchDrops == 0 || off.P99Us <= on.P99Us {
		ok = false
		fmt.Fprintf(&b, "FAIL: cc-off baseline did not collapse (drops %d, p99 %.1fus vs cc-on %.1fus) — scenario not stressing the bottleneck\n",
			off.SwitchDrops, off.P99Us, on.P99Us)
	} else {
		fmt.Fprintf(&b, "  collapse: cc-off p99 %.1fx cc-on, %d drops vs %d; cc-on goodput %.2fx cc-off\n",
			off.P99Us/on.P99Us, off.SwitchDrops, on.SwitchDrops, safeRatio(on.GoodMB, off.GoodMB))
	}

	fmt.Fprintf(&b, "\nParking lot: victim stripes 2 rails, background flows pin rail 0, 2L-1G unordered\n\n")
	rr := RunParkingLot(ParkingLotOptions{Ops: 300, Size: size, Adaptive: false, Seed: 42})
	ad := RunParkingLot(ParkingLotOptions{Ops: 300, Size: size, Adaptive: true, Seed: 42})
	lots = append(lots, rr, ad)
	fmt.Fprintf(&b, "  %s\n  %s\n\n", rr, ad)

	if !rr.DataOK || !rr.LeakFree() || !ad.DataOK || !ad.LeakFree() {
		ok = false
		fmt.Fprintf(&b, "FAIL: a parking-lot phase corrupted data or leaked post-close state\n")
	}
	gain := safeRatio(ad.OpsPerSec, rr.OpsPerSec)
	if gain < parkingLotMinGain {
		ok = false
		fmt.Fprintf(&b, "FAIL: adaptive striping %.2fx round-robin, below %.2fx\n", gain, parkingLotMinGain)
	} else {
		fmt.Fprintf(&b, "  adaptive striping %.2fx round-robin ops/s; victim rail-1 share %.2f -> %.2f\n",
			gain, rr.Rail1Share, ad.Rail1Share)
	}
	return b.String(), ok, incasts, lots
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
