package bench

import (
	"fmt"
	"strings"

	"multiedge/internal/cluster"
	"multiedge/internal/frame"
	"multiedge/internal/hostmodel"
	"multiedge/internal/phys"
	"multiedge/internal/sim"
	"multiedge/internal/tcp"
)

// Transport comparison: MultiEdge against the TCP-like kernel stack, on
// identical hardware — the quantitative version of the paper's §5
// claim that "using TCP/IP imposes significant overheads" and that
// VIA-type transports over Gigabit Ethernet beat it.

// TCPResult is one TCP measurement.
type TCPResult struct {
	Bytes            int
	ThroughputMBs    float64
	LatencyUs        float64 // one-way (ping-pong RTT/2)
	CPUPct           float64 // sender app+protocol CPUs, of 200%
	Segs, Retransmit uint64
}

// tcpPair builds two TCP stacks on the standard hardware.
func tcpPair(seed int64, lp phys.LinkParams, nicP phys.NICParams) (*sim.Env, []*tcp.Stack, []hostmodel.CPUs) {
	env := sim.NewEnv(seed)
	swp := phys.DefaultSwitchParams()
	sw := phys.NewSwitch(env, "sw", swp)
	var stacks []*tcp.Stack
	var cpus []hostmodel.CPUs
	for i := 0; i < 2; i++ {
		addr := frame.NewAddr(i, 0)
		nic := phys.NewNIC(env, fmt.Sprintf("n%d/nic", i), addr, nicP)
		nic.AttachUplink(sw.AttachStation(addr, nic, lp, swp.QueueCap))
		c := hostmodel.NewCPUs(fmt.Sprintf("n%d", i))
		cpus = append(cpus, c)
		stacks = append(stacks, tcp.NewStack(env, i, tcp.DefaultParams(), c, nic))
	}
	return env, stacks, cpus
}

// RunTCPOneWay streams total bytes through the TCP-like transport and
// measures throughput and sender CPU.
func RunTCPOneWay(lp phys.LinkParams, nicP phys.NICParams, total int) TCPResult {
	env, stacks, cpus := tcpPair(1, lp, nicP)
	var start, end sim.Time
	var snapA, snapP sim.Utilization
	const chunk = 256 << 10
	env.Go("client", func(p *sim.Proc) {
		sk := stacks[0].Dial(p, frame.NewAddr(1, 0))
		// Warm past slow start.
		sk.Send(p, make([]byte, chunk))
		start = env.Now()
		snapA = cpus[0].App.Snapshot(env)
		snapP = cpus[0].Proto.Snapshot(env)
		buf := make([]byte, chunk)
		for off := 0; off < total; off += chunk {
			sk.Send(p, buf)
		}
	})
	env.Go("server", func(p *sim.Proc) {
		sk := stacks[1].Accept(p)
		sk.Recv(p, chunk)
		for off := 0; off < total; off += chunk {
			sk.Recv(p, chunk)
		}
		end = env.Now()
	})
	env.RunUntil(600 * sim.Second)
	r := TCPResult{Bytes: total, Segs: stacks[0].SegsSent, Retransmit: stacks[0].Retransmits}
	if end > start {
		r.ThroughputMBs = float64(total) / 1e6 / (end - start).Seconds()
		r.CPUPct = (snapA.Since(env, cpus[0].App) + snapP.Since(env, cpus[0].Proto)) * 100
	}
	return r
}

// RunTCPPingPong measures TCP round-trip latency at a message size.
func RunTCPPingPong(lp phys.LinkParams, nicP phys.NICParams, size, iters int) TCPResult {
	env, stacks, _ := tcpPair(2, lp, nicP)
	var start, end sim.Time
	env.Go("client", func(p *sim.Proc) {
		sk := stacks[0].Dial(p, frame.NewAddr(1, 0))
		buf := make([]byte, size)
		sk.Send(p, buf)
		sk.Recv(p, size) // warm-up
		start = env.Now()
		for i := 0; i < iters; i++ {
			sk.Send(p, buf)
			sk.Recv(p, size)
		}
		end = env.Now()
	})
	env.Go("server", func(p *sim.Proc) {
		sk := stacks[1].Accept(p)
		for i := 0; i < iters+1; i++ {
			sk.Send(p, sk.Recv(p, size))
		}
	})
	env.RunUntil(600 * sim.Second)
	r := TCPResult{Bytes: size}
	if end > start {
		r.LatencyUs = (end - start).Micros() / float64(2*iters)
	}
	return r
}

// RenderTransportComparison renders MultiEdge vs the TCP-like baseline.
func RenderTransportComparison() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Transport comparison: MultiEdge vs TCP-like kernel stack (same hardware)")
	for _, tc := range []struct {
		name string
		lp   phys.LinkParams
		nicP phys.NICParams
		cfg  cluster.Config
	}{
		{"1-GbE", phys.Gigabit(), phys.DefaultNICParams(), cluster.OneLink1G(2)},
		{"10-GbE", phys.TenGigabit(), phys.Myri10GNICParams(), cluster.OneLink10G(2)},
	} {
		me := RunOneWay(tc.cfg, 1<<20)
		tcpR := RunTCPOneWay(tc.lp, tc.nicP, 24<<20)
		meLat := RunPingPong(tc.cfg, 64)
		tcpLat := RunTCPPingPong(tc.lp, tc.nicP, 64, 60)
		fmt.Fprintf(&b, "\n%s one-way:\n", tc.name)
		fmt.Fprintf(&b, "  MultiEdge: %8.1f MB/s  cpu %5.1f%%   64B one-way latency %6.2f us\n",
			me.ThroughputMBs, me.CPUPct, meLat.LatencyUs)
		fmt.Fprintf(&b, "  TCP-like:  %8.1f MB/s  cpu %5.1f%%   64B one-way latency %6.2f us\n",
			tcpR.ThroughputMBs, tcpR.CPUPct, tcpLat.LatencyUs)
	}
	return b.String()
}
