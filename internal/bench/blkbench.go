package bench

import (
	"fmt"
	"strings"

	"multiedge/internal/blk"
	"multiedge/internal/cluster"
	"multiedge/internal/sim"
)

// BlkResult is one block-storage measurement point.
type BlkResult struct {
	Config     string
	Clients    int
	BlockSize  int
	ReadIOPS   float64
	WriteIOPS  float64
	ReadLatUs  float64 // mean per-op latency, one outstanding op
	WriteLatUs float64
	HostCPU    float64 // host protocol CPU fraction (of 100%)
}

// RunBlk measures 4 KiB-class random I/O against a passive volume on
// node 0: each client does ios reads then ios fenced writes over its
// own extent, one operation outstanding (latency-bound, like a simple
// block-layer queue depth of 1).
func RunBlk(cfg cluster.Config, clients, blockSize, ios int) BlkResult {
	const blocks = 4096
	cfg.Nodes = clients + 1
	cfg.Core.MemBytes = blocks*blockSize + (8 << 20)
	cl := cluster.New(cfg)
	conns := cl.FullMesh()
	v := blk.NewVolume(cl, 0, blocks, blockSize, clients)

	hostProto := cl.Nodes[0].CPUs.Proto.Snapshot(cl.Env)
	var readTime, writeTime sim.Time
	var start, end sim.Time
	start = cl.Env.Now()
	done := 0
	for i := 0; i < clients; i++ {
		i := i
		cli := blk.Open(cl, v, i+1, conns[i+1][0], i)
		cl.Env.Go(fmt.Sprintf("blk%d", i), func(p *sim.Proc) {
			base := i * (blocks / clients)
			buf := make([]byte, blockSize)
			t0 := cl.Env.Now()
			for n := 0; n < ios; n++ {
				cli.Write(p, base+(n*37)%(blocks/clients), buf)
			}
			writeTime += cl.Env.Now() - t0
			t0 = cl.Env.Now()
			for n := 0; n < ios; n++ {
				cli.Read(p, base+(n*37)%(blocks/clients), buf)
			}
			readTime += cl.Env.Now() - t0
			done++
			if t := cl.Env.Now(); t > end {
				end = t
			}
		})
	}
	cl.Env.RunUntil(600 * sim.Second)
	if done != clients {
		panic(fmt.Sprintf("blk bench: %d/%d clients finished", done, clients))
	}
	totalOps := float64(clients * ios)
	r := BlkResult{Config: cfg.Name, Clients: clients, BlockSize: blockSize}
	if end > start {
		r.ReadIOPS = totalOps / (readTime.Seconds() / float64(clients))
		r.WriteIOPS = totalOps / (writeTime.Seconds() / float64(clients))
		r.ReadLatUs = readTime.Micros() / totalOps
		r.WriteLatUs = writeTime.Micros() / totalOps
		r.HostCPU = hostProto.Since(cl.Env, cl.Nodes[0].CPUs.Proto) * 100
	}
	return r
}

// RenderBlockStore renders the storage-domain benchmark: per-config
// single-client latency/IOPS, then client scaling on the dual-rail
// configuration (the passive host's protocol CPU is the eventual
// bottleneck, not its application CPU — it runs none).
func RenderBlockStore(ios int) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Block storage domain: 4 KiB random I/O, passive host, queue depth 1")
	fmt.Fprintln(&b, "\nsingle client")
	fmt.Fprintf(&b, "  %-8s %10s %10s %12s %12s %10s\n",
		"config", "read IOPS", "writ IOPS", "read lat", "write lat", "host CPU")
	for _, cfg := range []cluster.Config{
		cluster.OneLink1G(0), cluster.TwoLinkUnordered1G(0), cluster.OneLink10G(0),
	} {
		r := RunBlk(cfg, 1, 4096, ios)
		fmt.Fprintf(&b, "  %-8s %10.0f %10.0f %10.1fus %10.1fus %9.1f%%\n",
			r.Config, r.ReadIOPS, r.WriteIOPS, r.ReadLatUs, r.WriteLatUs, r.HostCPU)
	}
	fmt.Fprintln(&b, "\nclient scaling (2Lu-1G, aggregate)")
	for _, n := range []int{1, 2, 4, 8} {
		r := RunBlk(cluster.TwoLinkUnordered1G(0), n, 4096, ios)
		fmt.Fprintf(&b, "  %d client(s): %8.0f read IOPS  %8.0f write IOPS   host proto CPU %5.1f%%\n",
			n, r.ReadIOPS, r.WriteIOPS, r.HostCPU)
	}
	// Block-size sweep: storage amortizes per-op costs exactly like the
	// paper's Figure 2 throughput curves amortize per-frame costs.
	fmt.Fprintln(&b, "\nblock-size sweep (1L-1G, single client)")
	for _, bs := range []int{512, 4096, 65536} {
		r := RunBlk(cluster.OneLink1G(0), 1, bs, ios)
		mbs := r.ReadIOPS * float64(bs) / 1e6
		fmt.Fprintf(&b, "  %6d B: read %8.0f IOPS = %6.1f MB/s   write lat %7.1fus\n",
			bs, r.ReadIOPS, mbs, r.WriteLatUs)
	}
	return b.String()
}
