package bench

import (
	"bytes"
	"fmt"
	"sort"
	"strings"

	"multiedge/internal/cluster"
	"multiedge/internal/core"
	"multiedge/internal/frame"
	"multiedge/internal/obs"
	"multiedge/internal/sim"
)

// Crash-loop stress: one writer streams verified transfers while the
// peer node crash-restarts in a loop. With Config.Reconnect on, every
// outage longer than DeadInterval parks the connection, redials,
// renegotiates an incarnation and replays the in-flight ops; shorter
// outages are absorbed by plain ARQ retransmission. The bench measures
// time-to-recover — restore of the rails until the first transfer
// completes again — across DeadInterval/backoff settings, and gates on
// zero leaked timers/events/connections after teardown.

// CrashloopOptions parameterizes one crash-loop run.
type CrashloopOptions struct {
	Cycles       int      // crash-restart cycles
	Down         sim.Time // rail downtime per cycle
	DeadInterval sim.Time
	Backoff      sim.Time // reconnect backoff base
	Bytes        int      // bytes per streamed transfer
	Seed         int64

	// Obs composes the observability registry into the run (zero value
	// = off). The flight recorder is attached regardless unless
	// DisableRecorder.
	Obs             cluster.ObsOptions
	DisableRecorder bool
}

// CrashloopResult is one crash-loop measurement plus its gates.
type CrashloopResult struct {
	Opts      CrashloopOptions
	Transfers int // transfers completed and byte-verified

	Reconnects      uint64 // completed incarnation renegotiations (both sides)
	ReplayedOps     uint64
	ReplayedBytes   uint64
	StaleEpochDrops uint64

	Recovered  int      // cycles where service resumed before the give-up horizon
	RecoverP50 sim.Time // restore → first completed transfer
	RecoverMax sim.Time
	EndedAt    sim.Time // virtual time at run end

	// Gates.
	DataOK        bool
	PendingLive   int // live sim events left after teardown (leak)
	PendingEvents int // total sim events left after teardown
	ActiveConns   int // conns still tabled on either endpoint (leak)

	// Observability artifacts (see FaninResult).
	Obs       *obs.Registry
	Recorders []*obs.Recorder
	Dump      *obs.PostMortem
}

const crashloopSlots = 4

// RunCrashloop streams writes from node 0 to node 1 while node 1
// crash-restarts opts.Cycles times, then closes the connection and
// reports recovery latency and the leak gates.
func RunCrashloop(o CrashloopOptions) CrashloopResult {
	cfg := cluster.OneLink1G(2)
	cfg.Seed = o.Seed
	cfg.Core.Reconnect = true
	cfg.Core.DeadInterval = o.DeadInterval
	cfg.Core.HeartbeatInterval = o.DeadInterval / 5
	cfg.Core.ReconnectBackoff = o.Backoff
	// The budget must outlast Down at the smallest backoff base; the
	// point of the loop is recovery, not budget exhaustion.
	cfg.Core.MaxReconnects = 32
	cfg.Obs = o.Obs
	cfg.Obs.Recorder = !o.DisableRecorder
	cl := cluster.New(cfg)
	c01, _ := cl.Pair()

	// The driver pauses/resumes node 1; note each action so a gate
	// failure's post-mortem can interleave causes with effects.
	var faults []obs.TimelineNote
	fault := func(what string) {
		faults = append(faults, obs.TimelineNote{At: cl.Env.Now(), Text: what})
	}

	src := cl.Nodes[0].EP.Alloc(crashloopSlots * o.Bytes)
	dst := cl.Nodes[1].EP.Alloc(crashloopSlots * o.Bytes)
	mem0, mem1 := cl.Nodes[0].EP.Mem(), cl.Nodes[1].EP.Mem()

	var (
		done         bool
		dataOK       = true
		transfers    int
		waitingSince sim.Time // set by the driver at restore; cleared by the writer
		recoveries   []sim.Time
	)
	cl.Env.Go("crashloop-writer", func(p *sim.Proc) {
		for i := 0; !done; i++ {
			off := uint64(i%crashloopSlots) * uint64(o.Bytes)
			faninFill(mem0[src+off:src+off+uint64(o.Bytes)], byte(3+i))
			h := c01.MustDo(p, core.Op{Remote: dst + off, Local: src + off,
				Size: o.Bytes, Kind: frame.OpWrite})
			h.Wait(p)
			if h.Err() != nil {
				dataOK = false
				break
			}
			if !bytes.Equal(mem1[dst+off:dst+off+uint64(o.Bytes)],
				mem0[src+off:src+off+uint64(o.Bytes)]) {
				dataOK = false
			}
			transfers++
			if waitingSince > 0 {
				recoveries = append(recoveries, cl.Env.Now()-waitingSince)
				waitingSince = 0
			}
		}
		c01.Close(p)
	})
	cl.Env.Go("crashloop-driver", func(p *sim.Proc) {
		defer func() { done = true }()
		for cycle := 0; cycle < o.Cycles; cycle++ {
			p.Sleep(20 * sim.Millisecond) // healthy traffic between crashes
			cl.PauseNode(1)
			fault(fmt.Sprintf("cycle %d: pause node 1 for %v", cycle, o.Down))
			p.Sleep(o.Down)
			cl.ResumeNode(1)
			fault(fmt.Sprintf("cycle %d: resume node 1", cycle))
			waitingSince = cl.Env.Now()
			giveUp := cl.Env.Now() + 10*sim.Second
			for waitingSince > 0 && cl.Env.Now() < giveUp {
				p.Sleep(200 * sim.Microsecond)
			}
			if waitingSince > 0 {
				// Service never came back this cycle: leave the mark so
				// Recovered undercounts and the row is visibly broken.
				waitingSince = 0
				dataOK = false
				return
			}
		}
	})
	var endedAt sim.Time
	if cl.Obs != nil {
		// Same live-drain + quiesce pattern as RunFanin: RunUntil would
		// march sampler daemons to the horizon and trip the leak gates.
		endedAt = cl.Env.Run()
		cl.Obs.Quiesce()
	} else {
		endedAt = cl.Env.RunUntil(120 * sim.Second)
	}

	st := cl.Nodes[0].EP.Stats
	st1 := cl.Nodes[1].EP.Stats
	r := CrashloopResult{
		Opts:            o,
		Transfers:       transfers,
		Reconnects:      st.Reconnects + st1.Reconnects,
		ReplayedOps:     st.ReplayedOps + st1.ReplayedOps,
		ReplayedBytes:   st.ReplayedBytes + st1.ReplayedBytes,
		StaleEpochDrops: st.StaleEpochDrops + st1.StaleEpochDrops,
		Recovered:       len(recoveries),
		EndedAt:         endedAt,
		DataOK:          dataOK && transfers > 0,
		PendingLive:     cl.Env.PendingLive(),
		PendingEvents:   cl.Env.PendingEvents(),
		ActiveConns:     cl.Nodes[0].EP.ActiveConns() + cl.Nodes[1].EP.ActiveConns(),
		Obs:             cl.Obs,
		Recorders:       cl.Recorders,
	}
	if len(recoveries) > 0 {
		s := append([]sim.Time(nil), recoveries...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		r.RecoverP50 = s[len(s)/2]
		r.RecoverMax = s[len(s)-1]
	}
	if !r.DataOK || !r.LeakFree() || r.Recovered != o.Cycles {
		cause := fmt.Sprintf("crashloop gate failure: dataOK=%v recovered=%d/%d pendingLive=%d pendingEvents=%d activeConns=%d",
			r.DataOK, r.Recovered, o.Cycles, r.PendingLive, r.PendingEvents, r.ActiveConns)
		r.Dump = obs.BuildPostMortem(cause, cl.Env.Now(), faults, cl.Recorders...)
	}
	return r
}

// LeakFree reports whether the post-teardown gates all passed.
func (r CrashloopResult) LeakFree() bool {
	return r.PendingLive == 0 && r.PendingEvents == 0 && r.ActiveConns == 0
}

func (r CrashloopResult) String() string {
	gate := "ok"
	if !r.LeakFree() {
		gate = fmt.Sprintf("LEAK(live=%d ev=%d conns=%d)", r.PendingLive, r.PendingEvents, r.ActiveConns)
	}
	data := "ok"
	if !r.DataOK {
		data = "CORRUPT"
	}
	return fmt.Sprintf("di %7s  backoff %5s  %3d/%d cycles  %5d xfers  reconn %3d  replay %4d ops/%8d B  stale %4d  recover p50 %8.1fus max %8.1fus  data %-7s leak %s",
		r.Opts.DeadInterval, r.Opts.Backoff, r.Recovered, r.Opts.Cycles, r.Transfers,
		r.Reconnects, r.ReplayedOps, r.ReplayedBytes, r.StaleEpochDrops,
		r.RecoverP50.Micros(), r.RecoverMax.Micros(), data, gate)
}

// RenderCrashloop sweeps detection/backoff settings under a fixed
// downtime, printing one row per setting. ok is false if any run
// corrupted data, failed to recover a cycle, or leaked post-close state
// — the caller should exit nonzero. The results slice carries one entry
// per setting for bench-trajectory output; obsOpts composes the
// registry into every run (zero value = off).
func RenderCrashloop(cycles int, down sim.Time, size int, obsOpts cluster.ObsOptions) (out string, ok bool, results []CrashloopResult) {
	var b strings.Builder
	fmt.Fprintf(&b, "Crash-loop recovery: node 1 crash-restarts %d times (down %v), writer streams %d B transfers, 1L-1G\n", cycles, down, size)
	fmt.Fprintf(&b, "(Config.Reconnect on; rows where DeadInterval > downtime recover by plain ARQ without an incarnation bump)\n\n")
	ok = true
	for _, c := range []struct{ di, backoff sim.Time }{
		{10 * sim.Millisecond, sim.Millisecond},
		{25 * sim.Millisecond, 2 * sim.Millisecond},
		{50 * sim.Millisecond, 5 * sim.Millisecond},
		{100 * sim.Millisecond, 10 * sim.Millisecond},
		{200 * sim.Millisecond, 20 * sim.Millisecond},
	} {
		r := RunCrashloop(CrashloopOptions{
			Cycles: cycles, Down: down, Bytes: size,
			DeadInterval: c.di, Backoff: c.backoff, Seed: 42, Obs: obsOpts,
		})
		results = append(results, r)
		fmt.Fprintf(&b, "  %s\n", r)
		if !r.DataOK || !r.LeakFree() || r.Recovered != cycles {
			ok = false
			if r.Dump != nil {
				b.WriteString("\n" + r.Dump.Timeline())
			}
		}
	}
	if !ok {
		fmt.Fprintf(&b, "\nFAIL: a run corrupted data, failed to recover, or leaked post-close state\n")
	}
	return b.String(), ok, results
}
