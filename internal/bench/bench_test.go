package bench

import (
	"strings"
	"testing"

	"multiedge/internal/apps"
	"multiedge/internal/cluster"
	"multiedge/internal/core"
	"multiedge/internal/frame"
	"multiedge/internal/phys"
	"multiedge/internal/sim"
)

// These tests pin the reproduction to the paper's headline results
// (IPPS'07 abstract and §4). They are the regression suite for the
// calibration recorded in EXPERIMENTS.md.

func TestShape1GOneWayNearNominal(t *testing.T) {
	r := RunOneWay(cluster.OneLink1G(2), 1<<20)
	// Paper: >95% of nominal with 1-GBit/s links. Our 56-byte header
	// caps goodput at 117 MB/s of the 125 nominal; require >90%.
	if r.ThroughputMBs < 112 {
		t.Errorf("1L-1G one-way = %.1f MB/s, want > 112", r.ThroughputMBs)
	}
}

func TestShape2LDoublesThroughput(t *testing.T) {
	one := RunOneWay(cluster.OneLink1G(2), 1<<20)
	two := RunOneWay(cluster.TwoLink1G(2), 1<<20)
	if two.ThroughputMBs < 1.85*one.ThroughputMBs {
		t.Errorf("2L-1G %.1f MB/s not ~2x 1L-1G %.1f MB/s",
			two.ThroughputMBs, one.ThroughputMBs)
	}
}

func TestShape10GOneWayCeiling(t *testing.T) {
	r := RunOneWay(cluster.OneLink10G(2), 1<<20)
	// Paper: ~1100 of 1250 MB/s (88%), sender-side limited.
	if r.ThroughputMBs < 1000 || r.ThroughputMBs > 1200 {
		t.Errorf("1L-10G one-way = %.1f MB/s, want ~1100 (paper: 88%% of nominal)", r.ThroughputMBs)
	}
}

func TestShape10GMinLatency(t *testing.T) {
	r := RunPingPong(cluster.OneLink10G(2), 4)
	// Paper: minimum latency about 30 us.
	if r.LatencyUs < 20 || r.LatencyUs > 42 {
		t.Errorf("1L-10G 4B one-way latency = %.1f us, want ~30", r.LatencyUs)
	}
}

func TestShapeHostOverhead(t *testing.T) {
	r := RunOneWay(cluster.OneLink1G(2), 4)
	// Paper: minimum host overhead about 2 us.
	if r.LatencyUs < 1 || r.LatencyUs > 3.5 {
		t.Errorf("initiation overhead = %.2f us, want ~2", r.LatencyUs)
	}
}

func TestShapePingPongBelowOneWay10G(t *testing.T) {
	pp := RunPingPong(cluster.OneLink10G(2), 1<<20)
	ow := RunOneWay(cluster.OneLink10G(2), 1<<20)
	// Paper: ping-pong ~710 vs one-way ~1100 MB/s.
	if pp.ThroughputMBs >= ow.ThroughputMBs {
		t.Errorf("ping-pong %.1f >= one-way %.1f on 10G", pp.ThroughputMBs, ow.ThroughputMBs)
	}
	if pp.ThroughputMBs < 550 || pp.ThroughputMBs > 950 {
		t.Errorf("10G ping-pong = %.1f MB/s, want ~710", pp.ThroughputMBs)
	}
}

func TestShapeTwoWayAboveOneWay10G(t *testing.T) {
	tw := RunTwoWay(cluster.OneLink10G(2), 1<<20)
	ow := RunOneWay(cluster.OneLink10G(2), 1<<20)
	// Paper: two-way ~1500 vs one-way ~1100 MB/s (1.2-1.5x).
	ratio := tw.ThroughputMBs / ow.ThroughputMBs
	if ratio < 1.1 || ratio > 1.7 {
		t.Errorf("two-way/one-way ratio = %.2f, want 1.2-1.5", ratio)
	}
}

func TestShapeOOOFractions(t *testing.T) {
	one := RunOneWay(cluster.OneLink1G(2), 1<<19)
	if f := one.Net.Proto.OOOFraction(); f != 0 {
		t.Errorf("single-link OOO fraction = %.2f, want 0", f)
	}
	two := RunOneWay(cluster.TwoLink1G(2), 1<<19)
	// Paper: 45-50% under two-link round-robin.
	if f := two.Net.Proto.OOOFraction(); f < 0.25 || f > 0.55 {
		t.Errorf("dual-link OOO fraction = %.2f, want ~0.45-0.50", f)
	}
}

func TestShapeExtraTrafficSmall(t *testing.T) {
	for _, cfg := range Configs() {
		r := RunOneWay(cfg, 1<<20)
		// Paper: at most 5.5% extra frames in micro-benchmarks.
		if f := r.Net.Proto.ExtraTrafficFraction(); f > 0.055 {
			t.Errorf("%s: extra traffic %.3f, paper reports <= 0.055", cfg.Name, f)
		}
	}
}

func TestShapeCPUUtilization10G(t *testing.T) {
	ow := RunOneWay(cluster.OneLink10G(2), 1<<20)
	pp := RunPingPong(cluster.OneLink10G(2), 1<<20)
	// Paper: one-way ~95%, ping-pong ~75% of 200%. Our accounting
	// includes the full initiation copy on the app CPU, so allow a
	// wider band but preserve the ordering.
	if ow.CPUPct <= pp.CPUPct {
		t.Errorf("10G one-way CPU %.0f%% <= ping-pong %.0f%%", ow.CPUPct, pp.CPUPct)
	}
	if pp.CPUPct < 50 || pp.CPUPct > 110 {
		t.Errorf("10G ping-pong CPU = %.0f%%, want ~75%%", pp.CPUPct)
	}
}

func TestMicroDeterministic(t *testing.T) {
	a := RunOneWay(cluster.TwoLink1G(2), 65536)
	b := RunOneWay(cluster.TwoLink1G(2), 65536)
	if a.ThroughputMBs != b.ThroughputMBs || a.Net.Proto != b.Net.Proto {
		t.Error("identical runs produced different results")
	}
}

func TestRunMicroUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown benchmark name did not panic")
		}
	}()
	RunMicro("bogus", cluster.OneLink1G(2), 4)
}

func TestAblationByteStripingSlower(t *testing.T) {
	frame := RunOneWay(cluster.TwoLinkUnordered1G(2), 1<<19)
	cfg := cluster.TwoLinkUnordered1G(2)
	cfg.Core.ByteStripe = true
	byteS := RunOneWay(cfg, 1<<19)
	// Byte-level parallelism halves the payload per frame: more header
	// overhead and per-frame CPU, hence lower throughput (§1's argument
	// for decoupled frame striping).
	if byteS.ThroughputMBs >= frame.ThroughputMBs {
		t.Errorf("byte striping %.1f MB/s >= frame striping %.1f MB/s",
			byteS.ThroughputMBs, frame.ThroughputMBs)
	}
}

func TestAblationGoBackNWastefulUnderLoss(t *testing.T) {
	base := cluster.TwoLinkUnordered1G(2)
	base.Link.LossProb = 0.005
	base.Seed = 5
	sr := RunOneWay(base, 1<<19)
	gbn := base
	gbn.Core.GoBackN = true
	gb := RunOneWay(gbn, 1<<19)
	if gb.Net.Proto.Retransmissions <= sr.Net.Proto.Retransmissions {
		t.Errorf("go-back-N retransmitted %d <= selective repeat %d under loss",
			gb.Net.Proto.Retransmissions, sr.Net.Proto.Retransmissions)
	}
}

func TestFigureSpecsCoverPaper(t *testing.T) {
	figs := AppFigures()
	if len(figs) != 4 {
		t.Fatalf("%d app figures, want 4 (Figures 3-6)", len(figs))
	}
	want := map[string]string{"3": "1L-1G", "4": "1L-10G", "5": "2L-1G", "6": "2Lu-1G"}
	for _, f := range figs {
		if got := f.Config(2).Name; got != want[f.Figure] {
			t.Errorf("figure %s uses %s, want %s", f.Figure, got, want[f.Figure])
		}
	}
}

func TestRunFigureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke skipped in -short")
	}
	spec := FigureSpec{Figure: "5", Config: cluster.TwoLink1G, NodeCounts: []int{4}}
	pts := RunFigure(spec, apps.SizeTest)
	if len(pts) != len(apps.Names) {
		t.Fatalf("%d points, want %d", len(pts), len(apps.Names))
	}
	for _, p := range pts {
		if p.Elapsed <= 0 || p.SeqTime <= 0 {
			t.Errorf("%s: empty measurement", p.Name)
		}
	}
	out := RenderAppFigure(spec, pts)
	for _, name := range apps.Names {
		if !strings.Contains(out, name) {
			t.Errorf("rendered figure missing %s", name)
		}
	}
	if s := RenderFigureSummary(pts, 4); !strings.Contains(s, "Barnes") {
		t.Error("summary missing Barnes")
	}
}

func TestTable1Smoke(t *testing.T) {
	rows := RunTable1(apps.SizeTest)
	if len(rows) != len(apps.Names) {
		t.Fatalf("%d rows", len(rows))
	}
	out := RenderTable1(rows)
	for _, r := range rows {
		if r.SeqExec <= 0 {
			t.Errorf("%s: no sequential time", r.Name)
		}
		if !strings.Contains(out, r.Name) {
			t.Errorf("table missing %s", r.Name)
		}
	}
}

func TestRenderFig2Smoke(t *testing.T) {
	out := RenderFig2("b", []int{1024})
	for _, cfg := range Configs() {
		if !strings.Contains(out, cfg.Name) {
			t.Errorf("fig2 output missing %s", cfg.Name)
		}
	}
	if !strings.Contains(out, "ping-pong") || !strings.Contains(out, "two-way") {
		t.Error("fig2 output missing benchmarks")
	}
}

func TestRenderNetStatsSmoke(t *testing.T) {
	out := RenderNetStats(16384)
	if !strings.Contains(out, "1L-10G") || !strings.Contains(out, "ooo%") {
		t.Error("netstats output malformed")
	}
}

func TestFutureWorkOffload(t *testing.T) {
	// §6(b): offloading per-frame protocol work to the NIC must free
	// the host CPUs and lift the sender-limited 10-GbE ceiling toward
	// wire rate.
	edge := RunOneWay(cluster.OneLink10G(2), 1<<20)
	off := RunOneWay(cluster.OneLink10GOffload(2), 1<<20)
	if off.ThroughputMBs <= edge.ThroughputMBs {
		t.Errorf("offload %.1f MB/s <= edge %.1f MB/s", off.ThroughputMBs, edge.ThroughputMBs)
	}
	if off.ThroughputMBs < 1100 {
		t.Errorf("offload one-way = %.1f MB/s, want near wire rate (~1170)", off.ThroughputMBs)
	}
	if off.CPUPct >= edge.CPUPct/2 {
		t.Errorf("offload host CPU %.0f%% not well below edge %.0f%%", off.CPUPct, edge.CPUPct)
	}
}

func TestFutureWorkTreeFabric(t *testing.T) {
	// §6(a): a 4:1 oversubscribed two-level tree must still deliver the
	// micro-benchmarks; a pair within one edge switch performs like the
	// flat fabric.
	flat := RunOneWay(cluster.OneLink1G(2), 1<<19)
	tree := RunOneWay(cluster.TreeOneLink1G(2, 4, 1), 1<<19)
	if d := tree.ThroughputMBs / flat.ThroughputMBs; d < 0.95 {
		t.Errorf("intra-edge tree throughput %.1f far below flat %.1f",
			tree.ThroughputMBs, flat.ThroughputMBs)
	}
}

func TestMessagingBench(t *testing.T) {
	pp := RunMsgPingPong(cluster.OneLink1G(2), 1024, 20)
	if pp.LatencyUs <= 0 || pp.BWMBs <= 0 {
		t.Fatalf("msg ping-pong empty: %+v", pp)
	}
	raw := RunPingPong(cluster.OneLink1G(2), 1024)
	// The messaging layer adds matching and ring management on top of
	// raw remote writes: latency must be higher but within ~3x.
	if pp.LatencyUs <= raw.LatencyUs {
		t.Errorf("msg latency %.1f <= raw %.1f", pp.LatencyUs, raw.LatencyUs)
	}
	if pp.LatencyUs > 3*raw.LatencyUs {
		t.Errorf("msg latency %.1f more than 3x raw %.1f", pp.LatencyUs, raw.LatencyUs)
	}
	bar := RunCollective("barrier", 8, 0, 10)
	if bar.LatencyUs <= 0 {
		t.Fatal("barrier collective empty")
	}
	// Dissemination barrier is logarithmic: 16 ranks should cost less
	// than 2x of 4 ranks.
	b4 := RunCollective("barrier", 4, 0, 10)
	b16 := RunCollective("barrier", 16, 0, 10)
	if b16.LatencyUs > 3*b4.LatencyUs {
		t.Errorf("barrier scaling poor: 4 ranks %.1f us, 16 ranks %.1f us", b4.LatencyUs, b16.LatencyUs)
	}
	for _, c := range []string{"bcast", "allreduce", "alltoall"} {
		r := RunCollective(c, 5, 512, 5)
		if r.LatencyUs <= 0 {
			t.Errorf("%s collective empty", c)
		}
	}
}

func TestDSMPrimitives(t *testing.T) {
	pf := RunPageFetch(cluster.OneLink1G(2))
	// A cold 4 KB fetch is a read RTT plus ~3 frames of wire time:
	// several tens of microseconds on 1-GbE.
	if pf.LatencyUs < 40 || pf.LatencyUs > 200 {
		t.Errorf("page fetch = %.1f us, want ~60-120", pf.LatencyUs)
	}
	lh := RunLockHandoff(cluster.OneLink1G(3))
	if lh.LatencyUs <= 0 || lh.LatencyUs > 500 {
		t.Errorf("lock handoff = %.1f us", lh.LatencyUs)
	}
	b2 := RunDSMBarrier(cluster.OneLink1G(2), 2)
	b16 := RunDSMBarrier(cluster.OneLink1G(16), 16)
	if b16.LatencyUs <= b2.LatencyUs {
		t.Errorf("barrier not growing with nodes: %v vs %v", b2.LatencyUs, b16.LatencyUs)
	}
	if b16.LatencyUs > 6*b2.LatencyUs {
		t.Errorf("16-node barrier %.1f us too far above 2-node %.1f us", b16.LatencyUs, b2.LatencyUs)
	}
}

func TestScalingShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling experiment skipped in -short")
	}
	pts := RunScaling(apps.SizeSmall)
	get := func(app, fab string, n int) float64 {
		for _, p := range pts {
			if p.App == app && p.Fabric == fab && p.Nodes == n {
				return p.Speedup
			}
		}
		t.Fatalf("missing point %s/%s/%d", app, fab, n)
		return 0
	}
	// Flat fabric keeps scaling 16 -> 32 for the well-scaling apps.
	for _, app := range []string{"Barnes", "Water-Nsquared", "Raytrace"} {
		if get(app, "flat", 32) <= get(app, "flat", 16) {
			t.Errorf("%s: no gain from 16 to 32 nodes on flat fabric", app)
		}
	}
	// The oversubscribed tree hurts the all-to-all reader (Barnes reads
	// every body from every home each step) far more than the
	// neighbor-pattern apps.
	barnesLoss := get("Barnes", "flat", 32) / get("Barnes", "tree8x2", 32)
	rayLoss := get("Raytrace", "flat", 32) / get("Raytrace", "tree8x2", 32)
	if barnesLoss < 1.2 {
		t.Errorf("Barnes tree penalty %.2fx, expected substantial", barnesLoss)
	}
	if rayLoss > barnesLoss {
		t.Errorf("Raytrace penalty %.2fx exceeds Barnes %.2fx", rayLoss, barnesLoss)
	}
}

func TestTransportComparisonShapes(t *testing.T) {
	// §5: TCP/IP imposes significant overheads relative to edge-based
	// protocols. On 1-GbE both saturate the wire but TCP burns several
	// times the CPU; on 10-GbE TCP is CPU-bound well below wire rate.
	me1 := RunOneWay(cluster.OneLink1G(2), 1<<20)
	tcp1 := RunTCPOneWay(phys.Gigabit(), phys.DefaultNICParams(), 24<<20)
	if tcp1.ThroughputMBs < 0.9*me1.ThroughputMBs {
		t.Errorf("1-GbE TCP %.1f MB/s far below MultiEdge %.1f", tcp1.ThroughputMBs, me1.ThroughputMBs)
	}
	if tcp1.CPUPct < 2.5*me1.CPUPct {
		t.Errorf("1-GbE TCP CPU %.0f%% not well above MultiEdge %.0f%%", tcp1.CPUPct, me1.CPUPct)
	}
	me10 := RunOneWay(cluster.OneLink10G(2), 1<<20)
	tcp10 := RunTCPOneWay(phys.TenGigabit(), phys.Myri10GNICParams(), 24<<20)
	if tcp10.ThroughputMBs > 0.7*me10.ThroughputMBs {
		t.Errorf("10-GbE TCP %.1f MB/s not well below MultiEdge %.1f", tcp10.ThroughputMBs, me10.ThroughputMBs)
	}
	meL := RunPingPong(cluster.OneLink1G(2), 64)
	tcpL := RunTCPPingPong(phys.Gigabit(), phys.DefaultNICParams(), 64, 40)
	if tcpL.LatencyUs <= meL.LatencyUs {
		t.Errorf("TCP latency %.1f us <= MultiEdge %.1f us", tcpL.LatencyUs, meL.LatencyUs)
	}
}

func TestAblationLinkFailureShapes(t *testing.T) {
	// Losing one of two rails with dead-link detection degrades to
	// roughly single-rail speed (~110 of 117 MB/s); without it every
	// window keeps bleeding half its frames onto the dead rail and
	// throughput roughly halves again; a repaired rail is re-admitted
	// and lifts the run back above single-rail speed.
	on := RunLinkFailure(true, 8<<20, 2*sim.Millisecond, 0)
	off := RunLinkFailure(false, 8<<20, 2*sim.Millisecond, 0)
	rep := RunLinkFailure(true, 8<<20, 2*sim.Millisecond, 30*sim.Millisecond)
	if on.ThroughputMBs < 90 {
		t.Errorf("detection on: %.1f MB/s, want near single-rail (>90)", on.ThroughputMBs)
	}
	if off.ThroughputMBs > 0.75*on.ThroughputMBs {
		t.Errorf("detection off %.1f MB/s not clearly below detection on %.1f MB/s",
			off.ThroughputMBs, on.ThroughputMBs)
	}
	if rep.ThroughputMBs <= on.ThroughputMBs {
		t.Errorf("repaired run %.1f MB/s <= permanently dead run %.1f MB/s",
			rep.ThroughputMBs, on.ThroughputMBs)
	}
	if on.DeadEvents != 1 || on.Restores != 0 {
		t.Errorf("detection on: dead=%d restores=%d, want 1/0", on.DeadEvents, on.Restores)
	}
	if rep.DeadEvents != 1 || rep.Restores != 1 {
		t.Errorf("repaired: dead=%d restores=%d, want 1/1", rep.DeadEvents, rep.Restores)
	}
	if off.DeadEvents != 0 {
		t.Errorf("detection off still declared %d links dead", off.DeadEvents)
	}
	// Detection caps the bleed: two orders of magnitude fewer frames
	// burned on the dead rail.
	if on.FailDrops*10 > off.FailDrops {
		t.Errorf("detection on burned %d frames vs %d off; expected a >10x reduction",
			on.FailDrops, off.FailDrops)
	}
}

func TestShapeEdgeScalingLinear(t *testing.T) {
	// §1's design goal: adding rails scales throughput linearly while
	// extra traffic stays flat. The paper shows ×2 on two rails; the
	// model must hold the line through four.
	base := 0.0
	for rails := 1; rails <= 4; rails++ {
		cfg := cluster.TwoLinkUnordered1G(2)
		cfg.LinksPerNode = rails
		cfg.Name = "xL-1G"
		r := RunOneWay(cfg, 1<<20)
		if rails == 1 {
			base = r.ThroughputMBs
			continue
		}
		want := base * float64(rails)
		if r.ThroughputMBs < 0.90*want {
			t.Errorf("%d rails: %.1f MB/s, want >= 90%% of linear (%.1f)",
				rails, r.ThroughputMBs, want)
		}
		if extra := r.Net.Proto.ExtraTrafficFraction(); extra > 0.05 {
			t.Errorf("%d rails: extra traffic %.1f%% > 5%%", rails, extra*100)
		}
	}
}

func TestShapeBlockStore(t *testing.T) {
	// The storage domain inherits the transport's latency structure:
	// 10-GbE roughly halves 4 KiB access latency; solicited commits
	// make QD1 writes symmetric with reads (within 25%) instead of
	// delayed-ACK-bound (~500us slower); and the passive host serves
	// multiple clients concurrently.
	g1 := RunBlk(cluster.OneLink1G(0), 1, 4096, 150)
	g10 := RunBlk(cluster.OneLink10G(0), 1, 4096, 150)
	if g10.ReadLatUs >= g1.ReadLatUs*0.8 {
		t.Errorf("10-GbE read latency %.1fus not clearly below 1-GbE %.1fus",
			g10.ReadLatUs, g1.ReadLatUs)
	}
	if g1.WriteLatUs > g1.ReadLatUs*1.25 {
		t.Errorf("QD1 write latency %.1fus >> read %.1fus: solicited ACK not effective",
			g1.WriteLatUs, g1.ReadLatUs)
	}
	one := RunBlk(cluster.TwoLinkUnordered1G(0), 1, 4096, 150)
	eight := RunBlk(cluster.TwoLinkUnordered1G(0), 8, 4096, 150)
	if eight.ReadIOPS < 3*one.ReadIOPS {
		t.Errorf("8 clients reach %.0f read IOPS, want >= 3x single client (%.0f)",
			eight.ReadIOPS, one.ReadIOPS)
	}
}

func TestShapeLatencyTail(t *testing.T) {
	// Clean configurations have tight distributions; two unordered
	// rails widen the body by the rail skew; and with loss, a
	// single-outstanding-op round trip can only be repaired by the
	// coarse RTO (no later frames reveal the gap to the NACK logic), so
	// the p99 tail sits at RTO scale (2 ms) while the median is
	// untouched.
	clean := RunLatencyDist(cluster.OneLink1G(2), 64, 400)
	if p99 := clean.Percentile(99); p99 > 150*sim.Microsecond {
		t.Errorf("clean p99 = %v, want < 150us", p99)
	}
	dual := RunLatencyDist(cluster.TwoLinkUnordered1G(2), 64, 400)
	if dual.Percentile(90) <= clean.Percentile(90) {
		t.Errorf("dual-rail p90 %v not above single-rail %v (rail skew should widen it)",
			dual.Percentile(90), clean.Percentile(90))
	}
	lossy := cluster.TwoLinkUnordered1G(2)
	lossy.Link.LossProb = 0.005
	lossy.Seed = 3
	dist := RunLatencyDist(lossy, 64, 1500)
	if p99 := dist.Percentile(99); p99 < 1500*sim.Microsecond {
		t.Errorf("lossy p99 = %v, want RTO-scale (>= 1.5ms)", p99)
	}
	if p50 := dist.Percentile(50); p50 > 150*sim.Microsecond {
		t.Errorf("lossy p50 = %v; the median must stay clean", p50)
	}
}

func TestShapeHybridRailsAdaptive(t *testing.T) {
	// Heterogeneous rails (1-GbE + 10-GbE): round-robin gives each rail
	// equal frame counts, so throughput caps near 2x the slow rail
	// (~234 MB/s); least-backlog striping approaches the combined rate;
	// and on homogeneous rails adaptive must not regress round-robin.
	hyb := cluster.HybridRails(2)
	rr := hyb
	rr.Core.AdaptiveStripe = false
	adaptive := RunOneWay(hyb, 1<<20)
	robin := RunOneWay(rr, 1<<20)
	if adaptive.ThroughputMBs < 1000 {
		t.Errorf("hybrid adaptive: %.1f MB/s, want near combined rate (>1000)", adaptive.ThroughputMBs)
	}
	if robin.ThroughputMBs > 300 {
		t.Errorf("hybrid round-robin: %.1f MB/s, should be slow-rail-paced (<300)", robin.ThroughputMBs)
	}
	homRR := RunOneWay(cluster.TwoLinkUnordered1G(2), 1<<20)
	homAd := cluster.TwoLinkUnordered1G(2)
	homAd.Core.AdaptiveStripe = true
	homA := RunOneWay(homAd, 1<<20)
	if homA.ThroughputMBs < 0.95*homRR.ThroughputMBs {
		t.Errorf("homogeneous adaptive %.1f MB/s regresses round-robin %.1f MB/s",
			homA.ThroughputMBs, homRR.ThroughputMBs)
	}
}

func TestHybridRailsSurviveFastRailFailure(t *testing.T) {
	// Killing the 10-GbE rail mid-transfer must degrade a hybrid
	// adaptive transfer to the 1-GbE rail, not stall it.
	cfg := cluster.HybridRails(2)
	cfg.Core.MemBytes = 64 << 20
	cl := cluster.New(cfg)
	c01, _ := cl.Pair()
	ep0, ep1 := cl.Nodes[0].EP, cl.Nodes[1].EP
	const n = 16 << 20
	src := ep0.Alloc(n)
	dst := ep1.Alloc(n)
	cl.Env.At(2*sim.Millisecond, func() { cl.FailLink(0, 1) })
	done := false
	cl.Env.Go("xfer", func(p *sim.Proc) {
		c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: n, Kind: frame.OpWrite}).Wait(p)
		done = true
	})
	cl.Env.RunUntil(10 * sim.Second)
	if !done {
		t.Fatal("transfer stalled after losing the fast rail")
	}
	if cl.Nodes[0].EP.Stats.LinkDeadEvents == 0 {
		t.Error("fast rail never declared dead")
	}
}

func TestShapeInterruptAvoidance(t *testing.T) {
	// The §2.6 masking scheme is what keeps 10-GbE receive-side
	// processing off the interrupt path: with receive interrupts
	// unmaskable, per-frame interrupt entry swamps the protocol CPU and
	// one-way throughput collapses. At 1-GbE frames arrive slower than
	// they are processed, so the thread sleeps between frames and
	// masking changes nothing.
	on10 := RunOneWay(cluster.OneLink10G(2), 1<<20)
	off := cluster.OneLink10G(2)
	off.NIC.RxIntrUnmaskable = true
	off10 := RunOneWay(off, 1<<20)
	if off10.ThroughputMBs > 0.6*on10.ThroughputMBs {
		t.Errorf("10G without masking: %.1f MB/s, expected well below %.1f",
			off10.ThroughputMBs, on10.ThroughputMBs)
	}
	on1 := RunOneWay(cluster.OneLink1G(2), 1<<20)
	off1cfg := cluster.OneLink1G(2)
	off1cfg.NIC.RxIntrUnmaskable = true
	off1 := RunOneWay(off1cfg, 1<<20)
	if off1.ThroughputMBs < 0.98*on1.ThroughputMBs {
		t.Errorf("1G without masking: %.1f MB/s, expected unchanged from %.1f",
			off1.ThroughputMBs, on1.ThroughputMBs)
	}
}
