package bench

import (
	"fmt"
	"strings"

	"multiedge/internal/cluster"
	"multiedge/internal/core"
	"multiedge/internal/frame"
	"multiedge/internal/sim"
)

// Small-operation throughput: the workload the submission-queue path
// exists for. Millions of tiny one-way writes pay the full per-op host
// issue cost (syscall + descriptor + copy) on the eager path; the SQ
// path posts descriptors cheaply, charges one doorbell per batch and
// coalesces the writes into shared MultiData frames, so both the host
// issue cost and the per-frame protocol/wire overhead amortize.

// SmallOpResult is one small-op throughput measurement.
type SmallOpResult struct {
	Config string
	Size   int // bytes per operation
	Count  int // operations measured
	Batch  int // ops per doorbell; 0 = eager per-op issue
	MOpsS  float64
	GoodMB float64 // payload goodput, MB/s
	// Protocol evidence.
	Doorbells       uint64
	CoalescedFrames uint64
	DataFrames      uint64
}

func (r SmallOpResult) String() string {
	mode := "eager"
	if r.Batch > 0 {
		mode = fmt.Sprintf("sq/batch=%d", r.Batch)
	}
	return fmt.Sprintf("%-7s %-12s %4dB x%-6d  %6.3f Mops/s  %7.1f MB/s  doorbells=%d coalesced-frames=%d data-frames=%d",
		r.Config, mode, r.Size, r.Count, r.MOpsS, r.GoodMB, r.Doorbells, r.CoalescedFrames, r.DataFrames)
}

// tailSolicit marks the last operation of a batch Solicit so batch
// completion costs one round trip instead of an AckDelay, in both
// modes (the same idiom the block-storage mirror uses for commits).
func tailSolicit(i, n int) frame.OpFlags {
	if i == n-1 {
		return frame.Solicit
	}
	return 0
}

// RunSmallOps measures one-way small-write throughput on cfg. batch = 0
// issues every operation eagerly (Do); batch > 0 routes them through
// the submission queue, ringing the doorbell every batch posts and
// draining the completion queue per batch.
func RunSmallOps(cfg cluster.Config, size, count, batch int) SmallOpResult {
	if batch > 0 {
		cfg.Core.UseSQ = true
		cfg.Core.CoalesceLimit = size
	}
	cl := cluster.New(cfg)
	c01, _ := cl.Pair()
	ep0, ep1 := cl.Nodes[0].EP, cl.Nodes[1].EP
	lanes := batch
	if lanes <= 0 {
		lanes = 64 // eager pipelining depth, matched to the SQ batch
	}
	src := ep0.Alloc(size * lanes)
	dst := ep1.Alloc(size * lanes)

	var start, end sim.Time
	var prev, net cluster.NetReport
	cl.Env.Go("smallops", func(p *sim.Proc) {
		// Warm up the path.
		c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: size, Kind: frame.OpWrite}).Wait(p)
		start = cl.Env.Now()
		prev = cl.Collect()
		if batch > 0 {
			for done := 0; done < count; {
				n := batch
				if count-done < n {
					n = count - done
				}
				for i := 0; i < n; i++ {
					off := uint64(i * size)
					c01.MustPost(core.Op{Remote: dst + off, Local: src + off, Size: size,
						Kind: frame.OpWrite, Flags: tailSolicit(i, n)})
				}
				c01.MustRing(p)
				for i := 0; i < n; i++ {
					c01.WaitCQ(p)
				}
				done += n
			}
		} else {
			hs := make([]*core.Handle, 0, lanes)
			for done := 0; done < count; {
				n := lanes
				if count-done < n {
					n = count - done
				}
				for i := 0; i < n; i++ {
					off := uint64(i * size)
					hs = append(hs, c01.MustDo(p, core.Op{Remote: dst + off, Local: src + off, Size: size,
						Kind: frame.OpWrite, Flags: tailSolicit(i, n)}))
				}
				for _, h := range hs {
					h.Wait(p)
				}
				hs = hs[:0]
				done += n
			}
		}
		end = cl.Env.Now()
		net = cl.Collect().Sub(prev)
	})
	cl.Env.RunUntil(600 * sim.Second)
	r := SmallOpResult{Config: cfg.Name, Size: size, Count: count, Batch: batch}
	if elapsed := end - start; elapsed > 0 {
		r.MOpsS = float64(count) / 1e6 / elapsed.Seconds()
		r.GoodMB = float64(size*count) / 1e6 / elapsed.Seconds()
	}
	r.Doorbells = ep0.Stats.Doorbells
	r.CoalescedFrames = ep0.Stats.CoalescedFrames
	r.DataFrames = net.Proto.DataFramesSent
	return r
}

// RenderSmallOps prints the eager-versus-batched small-op comparison on
// the paper's 1L-10G configuration (the setup where host issue cost,
// not the wire, bounds small-message rate). The results slice carries
// one entry per run for bench-trajectory output.
func RenderSmallOps(count int) (string, []SmallOpResult) {
	var b strings.Builder
	var results []SmallOpResult
	fmt.Fprintf(&b, "Small-operation throughput, 1L-10G, %d one-way writes per run\n", count)
	fmt.Fprintf(&b, "(batched = submission queue + doorbell batching + frame coalescing)\n\n")
	for _, size := range []int{16, 64, 256} {
		eager := RunSmallOps(cluster.OneLink10G(2), size, count, 0)
		sq := RunSmallOps(cluster.OneLink10G(2), size, count, 64)
		results = append(results, eager, sq)
		fmt.Fprintf(&b, "  %s\n  %s\n", eager, sq)
		if eager.MOpsS > 0 {
			fmt.Fprintf(&b, "  -> %.2fx op rate\n\n", sq.MOpsS/eager.MOpsS)
		}
	}
	return b.String(), results
}
