package tcp

import (
	"bytes"
	"testing"
	"testing/quick"

	"multiedge/internal/frame"
	"multiedge/internal/hostmodel"
	"multiedge/internal/phys"
	"multiedge/internal/sim"
)

// pair builds two TCP stacks connected through one switch.
func pair(seed int64, lp phys.LinkParams, nicP phys.NICParams) (*sim.Env, *Stack, *Stack) {
	env := sim.NewEnv(seed)
	swp := phys.DefaultSwitchParams()
	sw := phys.NewSwitch(env, "sw", swp)
	var stacks []*Stack
	for i := 0; i < 2; i++ {
		addr := frame.NewAddr(i, 0)
		nic := phys.NewNIC(env, "nic", addr, nicP)
		nic.AttachUplink(sw.AttachStation(addr, nic, lp, swp.QueueCap))
		cpus := hostmodel.NewCPUs("n")
		stacks = append(stacks, NewStack(env, i, DefaultParams(), cpus, nic))
	}
	return env, stacks[0], stacks[1]
}

func TestHandshakeAndStream(t *testing.T) {
	env, a, b := pair(1, phys.Gigabit(), phys.DefaultNICParams())
	msg := make([]byte, 300*1024)
	for i := range msg {
		msg[i] = byte(i * 7)
	}
	var got []byte
	env.Go("client", func(p *sim.Proc) {
		sk := a.Dial(p, frame.NewAddr(1, 0))
		sk.Send(p, msg)
	})
	env.Go("server", func(p *sim.Proc) {
		sk := b.Accept(p)
		got = sk.Recv(p, len(msg))
	})
	env.RunUntil(10 * sim.Second)
	if !bytes.Equal(got, msg) {
		t.Fatalf("stream corrupted (got %d bytes)", len(got))
	}
}

func TestSlowStartGrowsCwnd(t *testing.T) {
	env, a, b := pair(2, phys.Gigabit(), phys.DefaultNICParams())
	var sk *Sock
	env.Go("client", func(p *sim.Proc) {
		sk = a.Dial(p, frame.NewAddr(1, 0))
		sk.Send(p, make([]byte, 512*1024))
	})
	env.Go("server", func(p *sim.Proc) {
		s := b.Accept(p)
		s.Recv(p, 512*1024)
	})
	env.RunUntil(10 * sim.Second)
	if sk.Cwnd() <= DefaultParams().InitCwnd {
		t.Errorf("cwnd = %d never grew beyond initial %d", sk.Cwnd(), DefaultParams().InitCwnd)
	}
}

func TestLossRecoveryFastRetransmit(t *testing.T) {
	lp := phys.Gigabit()
	lp.LossProb = 0.01
	env, a, b := pair(3, lp, phys.DefaultNICParams())
	msg := make([]byte, 400*1024)
	for i := range msg {
		msg[i] = byte(i * 13)
	}
	var got []byte
	env.Go("client", func(p *sim.Proc) {
		sk := a.Dial(p, frame.NewAddr(1, 0))
		sk.Send(p, msg)
	})
	env.Go("server", func(p *sim.Proc) {
		sk := b.Accept(p)
		got = sk.Recv(p, len(msg))
	})
	env.RunUntil(60 * sim.Second)
	if !bytes.Equal(got, msg) {
		t.Fatal("stream corrupted under loss")
	}
	if a.Retransmits == 0 {
		t.Error("no retransmissions under 1% loss")
	}
	if a.DupAcks == 0 {
		t.Error("no duplicate ACKs observed")
	}
}

func TestSegmentCodec(t *testing.T) {
	s := &segment{seq: 12345, ack: 999, flags: flACK, wnd: 65535}
	pl := []byte("tcp segment payload")
	buf := encodeSeg(frame.NewAddr(1, 0), frame.NewAddr(0, 0), s, pl)
	src, got, gpl, ok := decodeSeg(buf)
	if !ok || src != frame.NewAddr(0, 0) || got != *s || !bytes.Equal(gpl, pl) {
		t.Fatalf("roundtrip failed: %+v", got)
	}
	buf[20] ^= 0xff
	if _, _, _, ok := decodeSeg(buf); ok {
		t.Error("corrupted segment accepted")
	}
}

func TestBidirectionalStreams(t *testing.T) {
	env, a, b := pair(4, phys.Gigabit(), phys.DefaultNICParams())
	m1 := make([]byte, 100*1024)
	m2 := make([]byte, 150*1024)
	for i := range m1 {
		m1[i] = byte(i)
	}
	for i := range m2 {
		m2[i] = byte(i * 3)
	}
	var g1, g2 []byte
	env.Go("client", func(p *sim.Proc) {
		sk := a.Dial(p, frame.NewAddr(1, 0))
		sk.Send(p, m1)
		g2 = sk.Recv(p, len(m2))
	})
	env.Go("server", func(p *sim.Proc) {
		sk := b.Accept(p)
		g1 = sk.Recv(p, len(m1))
		sk.Send(p, m2)
	})
	env.RunUntil(30 * sim.Second)
	if !bytes.Equal(g1, m1) || !bytes.Equal(g2, m2) {
		t.Fatal("bidirectional streams corrupted")
	}
}

func TestTwoFlowsShareBottleneck(t *testing.T) {
	// Two senders into one receiver NIC: congestion control must let
	// both finish with a roughly fair share and the total near wire
	// rate.
	env := sim.NewEnv(9)
	swp := phys.DefaultSwitchParams()
	sw := phys.NewSwitch(env, "sw", swp)
	var stacks []*Stack
	for i := 0; i < 3; i++ {
		addr := frame.NewAddr(i, 0)
		nic := phys.NewNIC(env, "nic", addr, phys.DefaultNICParams())
		nic.AttachUplink(sw.AttachStation(addr, nic, phys.Gigabit(), swp.QueueCap))
		stacks = append(stacks, NewStack(env, i, DefaultParams(), hostmodel.NewCPUs("n"), nic))
	}
	const total = 4 << 20
	var t1, t2 sim.Time
	for s := 0; s < 2; s++ {
		s := s
		env.Go("sender", func(p *sim.Proc) {
			sk := stacks[s].Dial(p, frame.NewAddr(2, 0))
			sk.Send(p, make([]byte, total))
		})
	}
	done := 0
	env.Go("receiver", func(p *sim.Proc) {
		a := stacks[2].Accept(p)
		b := stacks[2].Accept(p)
		env.Go("recv-b", func(p2 *sim.Proc) {
			b.Recv(p2, total)
			t2 = env.Now()
			done++
		})
		a.Recv(p, total)
		t1 = env.Now()
		done++
	})
	env.RunUntil(60 * sim.Second)
	if done != 2 {
		t.Fatalf("only %d/2 flows completed", done)
	}
	// Aggregate goodput near the wire; completion times within 2.5x of
	// each other (loose fairness).
	last := t1
	if t2 > last {
		last = t2
	}
	agg := float64(2*total) / 1e6 / last.Seconds()
	// Reno-style loss recovery on a drop-tail bottleneck is lossy but
	// must stay within a factor of ~2 of the wire.
	if agg < 60 {
		t.Errorf("aggregate %.1f MB/s through shared bottleneck, want > 60", agg)
	}
	ratio := float64(t1) / float64(t2)
	if ratio < 1 {
		ratio = 1 / ratio
	}
	if ratio > 4 {
		t.Errorf("grossly unfair completion times: %v vs %v", t1, t2)
	}
	if stacks[0].Retransmits+stacks[1].Retransmits == 0 {
		t.Log("note: no congestion losses (queue large enough)")
	}
}

func TestTCPDeterministic(t *testing.T) {
	run := func() (sim.Time, uint64) {
		lp := phys.Gigabit()
		lp.LossProb = 0.01
		env, a, b := pair(5, lp, phys.DefaultNICParams())
		env.Go("client", func(p *sim.Proc) {
			sk := a.Dial(p, frame.NewAddr(1, 0))
			sk.Send(p, make([]byte, 256*1024))
		})
		env.Go("server", func(p *sim.Proc) {
			sk := b.Accept(p)
			sk.Recv(p, 256*1024)
		})
		end := env.RunUntil(60 * sim.Second)
		return end, a.Retransmits
	}
	e1, r1 := run()
	e2, r2 := run()
	if e1 != e2 || r1 != r2 {
		t.Fatalf("nondeterministic: %v/%d vs %v/%d", e1, r1, e2, r2)
	}
}

// TestSegmentCodecRoundTripProperty: any header values and payload
// survive encode→decode bit-exactly, and any single-bit corruption of
// the encoded frame is rejected by the checksum (or yields the exact
// same decoded values if it flipped a bit the codec ignores — there are
// none, so rejection is required).
func TestSegmentCodecRoundTripProperty(t *testing.T) {
	rt := func(seq, ack, wnd uint32, flags uint8, payload []byte) bool {
		if len(payload) > MSS {
			payload = payload[:MSS]
		}
		s := segment{seq: seq, ack: ack, flags: flags & (flSYN | flACK | flFIN), wnd: wnd}
		buf := encodeSeg(frame.NewAddr(2, 0), frame.NewAddr(1, 0), &s, payload)
		src, got, pl, ok := decodeSeg(buf)
		return ok && src == frame.NewAddr(1, 0) && got == s && bytes.Equal(pl, payload)
	}
	if err := quick.Check(rt, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSegmentCodecRejectsCorruptionProperty(t *testing.T) {
	corrupt := func(seq, ack uint32, payload []byte, pos uint16, bit uint8) bool {
		if len(payload) > 512 {
			payload = payload[:512]
		}
		s := segment{seq: seq, ack: ack, flags: flACK, wnd: 1 << 16}
		buf := encodeSeg(frame.NewAddr(2, 0), frame.NewAddr(1, 0), &s, payload)
		// Flip one bit beyond the Ethernet header (the codec does not
		// authenticate the outer Ethernet fields it never reads back).
		i := frame.EthHeaderLen + int(pos)%(len(buf)-frame.EthHeaderLen)
		buf[i] ^= 1 << (bit % 8)
		_, _, _, ok := decodeSeg(buf)
		return !ok
	}
	if err := quick.Check(corrupt, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSegmentCodecTruncation(t *testing.T) {
	s := segment{seq: 7, ack: 9, flags: flACK, wnd: 4096}
	buf := encodeSeg(frame.NewAddr(2, 0), frame.NewAddr(1, 0), &s, []byte("hello world"))
	for n := 0; n < len(buf); n++ {
		if _, _, _, ok := decodeSeg(buf[:n]); ok {
			t.Fatalf("decode accepted a frame truncated to %d of %d bytes", n, len(buf))
		}
	}
}
