package tcp

import (
	"multiedge/internal/frame"
	"multiedge/internal/phys"
	"multiedge/internal/sim"
)

// Sock is one end of a TCP-like byte-stream connection.
type Sock struct {
	st   *Stack
	peer frame.Addr

	established bool
	estSig      sim.Signal

	// Send side (byte sequence space).
	sndBuf     []byte // unsent+unacked bytes, sndUna is sndBuf[0]
	sndUna     uint32
	sndNxt     uint32
	cwnd       int
	ssthresh   int
	rwnd       uint32
	dupAcks    int
	inRecovery bool
	recover    uint32 // NewReno recovery point (sndNxt at loss detection)
	rtoTimer   *sim.Timer
	rto        sim.Time
	sndWait    []*sim.Proc // senders blocked on buffer space

	// Receive side.
	rcvNxt   uint32
	oooSeg   map[uint32][]byte // out-of-order segments by seq
	rcvBuf   []byte            // in-order bytes awaiting the application
	rcvWait  []rcvWaiter
	unacked  int
	ackDue   bool
	ackTimer *sim.Timer
}

// rcvWaiter is a process blocked in Recv until need bytes are buffered.
type rcvWaiter struct {
	p    *sim.Proc
	need int
}

const sndBufMax = 1 << 20

func newSock(st *Stack, peer frame.Addr) *Sock {
	return &Sock{
		st: st, peer: peer,
		cwnd: st.params.InitCwnd, ssthresh: st.params.Ssthresh0,
		rwnd: uint32(st.params.RcvWnd), rto: st.params.RTO,
		oooSeg: make(map[uint32][]byte),
	}
}

// Established reports whether the handshake completed.
func (sk *Sock) Established() bool { return sk.established }

// Cwnd returns the current congestion window in bytes.
func (sk *Sock) Cwnd() int { return sk.cwnd }

// ---------------------------------------------------------------------
// Application API.
// ---------------------------------------------------------------------

// Send appends data to the byte stream, blocking while the socket
// buffer is full. It charges the syscall and user->socket-buffer copy on
// the application CPU (the TCP cost the paper's §5 references).
func (sk *Sock) Send(p *sim.Proc, data []byte) {
	st := sk.st
	cost := st.params.Costs.Syscall +
		sim.Time(int64(len(data))*st.params.Costs.CopyPsPerByte/1000)
	p.Exec(st.cpus.App, cost)
	off := 0
	for off < len(data) {
		for len(sk.sndBuf) >= sndBufMax {
			sk.sndWait = append(sk.sndWait, p)
			parkSock(p)
		}
		n := len(data) - off
		if room := sndBufMax - len(sk.sndBuf); n > room {
			n = room
		}
		sk.sndBuf = append(sk.sndBuf, data[off:off+n]...)
		off += n
		st.wake()
	}
}

// Recv blocks until n bytes of the stream have arrived and returns
// them, charging the socket-buffer->user copy.
func (sk *Sock) Recv(p *sim.Proc, n int) []byte {
	st := sk.st
	out := make([]byte, 0, n)
	for len(out) < n {
		want := n - len(out)
		low := want
		if lim := st.params.RcvWnd / 4; low > lim {
			low = lim // drain incrementally: never demand more than the window
		}
		for len(sk.rcvBuf) < low {
			sk.rcvWait = append(sk.rcvWait, rcvWaiter{p: p, need: low})
			parkSock(p)
		}
		take := want
		if take > len(sk.rcvBuf) {
			take = len(sk.rcvBuf)
		}
		out = append(out, sk.rcvBuf[:take]...)
		sk.rcvBuf = sk.rcvBuf[take:]
		cost := st.params.Costs.Syscall +
			sim.Time(int64(take)*st.params.Costs.CopyPsPerByte/1000)
		p.Exec(st.cpus.App, cost)
	}
	return out
}

// parkSock blocks p until sockWake resumes it.
func parkSock(p *sim.Proc) {
	var sig sim.Signal
	sockParked[p] = &sig
	p.Wait(&sig)
}

var sockParked = map[*sim.Proc]*sim.Signal{}

// wakeAll wakes blocked socket waiters, charging the process-wakeup
// cost on the protocol CPU (the kernel wakes the sleeping task).
func (sk *Sock) wakeAll(procs *[]*sim.Proc) {
	env := sk.st.env
	for _, p := range *procs {
		if sig, ok := sockParked[p]; ok {
			delete(sockParked, p)
			s := sig
			sk.st.cpus.Proto.Submit(env, sk.st.params.Costs.UserWake, func() { s.Fire(env) })
		}
	}
	*procs = nil
}

// ---------------------------------------------------------------------
// Transmit path.
// ---------------------------------------------------------------------

func (sk *Sock) inflight() int { return int(sk.sndNxt - sk.sndUna) }

// sendable reports whether a new segment may go out under both the
// congestion and receive windows.
func (sk *Sock) sendable() bool {
	if !sk.established {
		return false
	}
	unsent := len(sk.sndBuf) - sk.inflight()
	if unsent <= 0 {
		return false
	}
	win := sk.cwnd
	if int(sk.rwnd) < win {
		win = int(sk.rwnd)
	}
	return sk.inflight() < win
}

// sendNext emits one segment of new data.
func (sk *Sock) sendNext() {
	if !sk.sendable() {
		return
	}
	off := sk.inflight()
	n := len(sk.sndBuf) - off
	if n > MSS {
		n = MSS
	}
	win := sk.cwnd
	if int(sk.rwnd) < win {
		win = int(sk.rwnd)
	}
	if room := win - sk.inflight(); n > room {
		n = room
	}
	if n <= 0 {
		return
	}
	sk.transmit(sk.sndNxt, sk.sndBuf[off:off+n])
	sk.sndNxt += uint32(n)
	sk.armRTO()
}

// transmit sends payload at stream offset seq, with a checksum cost
// already accounted by the caller's SegTx charge.
func (sk *Sock) transmit(seq uint32, payload []byte) {
	st := sk.st
	st.SegsSent++
	s := &segment{seq: seq, ack: sk.rcvNxt, flags: flACK, wnd: sk.advertiseWnd()}
	buf := encodeSeg(sk.peer, st.nic.Addr(), s, payload)
	st.nic.Transmit(&phys.Frame{Buf: buf, Dst: sk.peer, Src: st.nic.Addr()})
	sk.unacked = 0
	sk.ackDue = false
}

func (sk *Sock) sendCtl(flags uint8, seq uint32) {
	st := sk.st
	s := &segment{seq: seq, ack: sk.rcvNxt, flags: flags, wnd: sk.advertiseWnd()}
	buf := encodeSeg(sk.peer, st.nic.Addr(), s, nil)
	st.nic.Transmit(&phys.Frame{Buf: buf, Dst: sk.peer, Src: st.nic.Addr()})
}

// advertiseWnd returns the receive window left after buffered bytes.
func (sk *Sock) advertiseWnd() uint32 {
	if w := sk.st.params.RcvWnd - len(sk.rcvBuf); w > 0 {
		return uint32(w)
	}
	return 0
}

func (sk *Sock) sendSyn() {
	sk.sendCtl(flSYN, sk.sndNxt)
	sk.rtoTimer = sk.st.env.After(sk.rto, func() {
		if !sk.established {
			sk.sendSyn()
		}
	})
}

func (sk *Sock) sendSynAck() { sk.sendCtl(flSYN|flACK, sk.sndNxt) }
func (sk *Sock) sendAck()    { sk.sendCtl(flACK, sk.sndNxt); sk.ackDue = false; sk.unacked = 0 }

// armRTO (re)starts the retransmission timer.
func (sk *Sock) armRTO() {
	if sk.rtoTimer != nil {
		sk.rtoTimer.Stop()
	}
	sk.rtoTimer = sk.st.env.After(sk.rto, sk.onRTO)
}

func (sk *Sock) onRTO() {
	if sk.inflight() == 0 {
		return
	}
	// Timeout: retransmit the first unacked segment, collapse cwnd,
	// back off the timer (classic Reno).
	n := sk.inflight()
	if n > MSS {
		n = MSS
	}
	sk.st.Retransmits++
	sk.transmit(sk.sndUna, sk.sndBuf[:n])
	sk.ssthresh = max(sk.cwnd/2, 2*MSS)
	sk.cwnd = MSS
	sk.inRecovery = false
	sk.rto *= 2
	if sk.rto > 500*sim.Millisecond {
		sk.rto = 500 * sim.Millisecond
	}
	sk.armRTO()
	sk.st.wake()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------
// Receive path.
// ---------------------------------------------------------------------

func (sk *Sock) handle(seg segment, payload []byte) {
	st := sk.st
	if seg.flags&flSYN != 0 && seg.flags&flACK != 0 && !sk.established {
		// Active open completes.
		sk.established = true
		sk.rcvNxt = seg.seq
		sk.sndUna, sk.sndNxt = 0, 0
		if sk.rtoTimer != nil {
			sk.rtoTimer.Stop()
		}
		sk.estSig.Fire(st.env)
		sk.ackDue = true
		st.wake()
		return
	}
	sk.rwnd = seg.wnd
	// ACK processing.
	if seg.flags&flACK != 0 && sk.established {
		if int32(seg.ack-sk.sndUna) > 0 {
			acked := int(seg.ack - sk.sndUna)
			sk.sndBuf = sk.sndBuf[acked:]
			sk.sndUna = seg.ack
			sk.dupAcks = 0
			sk.rto = st.params.RTO
			if sk.inRecovery && int32(seg.ack-sk.recover) < 0 {
				// NewReno partial ACK: the next segment after the
				// cumulative point is also lost — retransmit it now
				// instead of waiting for a timeout.
				n := sk.inflight()
				if n > MSS {
					n = MSS
				}
				if n > 0 {
					st.Retransmits++
					sk.transmit(sk.sndUna, sk.sndBuf[:n])
				}
				sk.armRTO()
			} else {
				if sk.inRecovery {
					sk.inRecovery = false
					sk.cwnd = sk.ssthresh
				}
				// Congestion control: slow start then AIMD.
				if sk.cwnd < sk.ssthresh {
					sk.cwnd += acked // slow start
				} else {
					sk.cwnd += MSS * MSS / sk.cwnd // congestion avoidance
				}
				if sk.inflight() > 0 {
					sk.armRTO()
				} else if sk.rtoTimer != nil {
					sk.rtoTimer.Stop()
				}
			}
			sk.wakeAll(&sk.sndWait)
			st.wake()
		} else if seg.ack == sk.sndUna && sk.inflight() > 0 && len(payload) == 0 {
			sk.dupAcks++
			st.DupAcks++
			if sk.dupAcks == 3 && !sk.inRecovery {
				// Fast retransmit, entering NewReno fast recovery.
				sk.inRecovery = true
				sk.recover = sk.sndNxt
				n := sk.inflight()
				if n > MSS {
					n = MSS
				}
				st.Retransmits++
				sk.transmit(sk.sndUna, sk.sndBuf[:n])
				sk.ssthresh = max(sk.cwnd/2, 2*MSS)
				sk.cwnd = sk.ssthresh
				sk.armRTO()
			}
		}
	}
	if len(payload) == 0 {
		return
	}
	// Data: cumulative in-order delivery, out-of-order segments
	// buffered (no SACK: the sender learns nothing about them).
	if seg.seq == sk.rcvNxt {
		sk.deliver(payload)
		for {
			next, ok := sk.oooSeg[sk.rcvNxt]
			if !ok {
				break
			}
			delete(sk.oooSeg, sk.rcvNxt)
			sk.deliver(next)
		}
	} else if int32(seg.seq-sk.rcvNxt) > 0 {
		if _, dup := sk.oooSeg[seg.seq]; !dup {
			sk.oooSeg[seg.seq] = append([]byte(nil), payload...)
		}
		// Out of order: duplicate ACK right away (triggers the fast
		// retransmit at the sender).
		sk.ackDue = true
		st.wake()
		return
	} else {
		// Old duplicate: re-ACK.
		sk.ackDue = true
		st.wake()
		return
	}
	sk.unacked++
	if sk.unacked >= st.params.AckEvery {
		sk.ackDue = true
		st.wake()
	} else if sk.ackTimer == nil || !sk.ackTimer.Pending() {
		sk.ackTimer = st.env.After(st.params.AckDelay, func() {
			if sk.unacked > 0 {
				sk.ackDue = true
				st.wake()
			}
		})
	}
}

// deliver appends in-order bytes for the application and advances
// rcvNxt, waking a blocked receiver only once enough bytes are buffered
// (real sockets wake at the low-water mark, not per segment).
func (sk *Sock) deliver(payload []byte) {
	sk.rcvNxt += uint32(len(payload))
	sk.rcvBuf = append(sk.rcvBuf, payload...)
	kept := sk.rcvWait[:0]
	for _, w := range sk.rcvWait {
		if len(sk.rcvBuf) >= w.need {
			if sig, ok := sockParked[w.p]; ok {
				delete(sockParked, w.p)
				s := sig
				env := sk.st.env
				sk.st.cpus.Proto.Submit(env, sk.st.params.Costs.UserWake, func() { s.Fire(env) })
			}
		} else {
			kept = append(kept, w)
		}
	}
	sk.rcvWait = kept
}
