// Package tcp is a TCP-like byte-stream transport over the same
// physical substrate as MultiEdge: the comparison baseline the paper's
// related work keeps pointing at (IPPS'07 §5: "using TCP/IP imposes
// significant overheads", M-VIA/MPI-over-TCP studies).
//
// The model captures what makes era TCP/IP expensive and slow relative
// to an edge-based RDMA protocol:
//
//   - byte-stream semantics: data is copied into a socket buffer at the
//     sender and out of one at the receiver (two copies plus kernel
//     crossings per side);
//   - cumulative-ACK ARQ with slow start, congestion avoidance, fast
//     retransmit on triple duplicate ACKs, and exponential RTO backoff —
//     but no selective repair;
//   - a heavier per-segment CPU cost (checksum and the IP/TCP layer
//     stack) than MultiEdge's raw-Ethernet fast path.
//
// It is deliberately a baseline, not a full TCP: no SACK, no Nagle, no
// window scaling beyond a large static receive window.
package tcp

import (
	"encoding/binary"
	"hash/crc32"

	"multiedge/internal/frame"
	"multiedge/internal/hostmodel"
	"multiedge/internal/obs"
	"multiedge/internal/phys"
	"multiedge/internal/sim"
)

// MSS is the maximum segment payload (1500 MTU minus 40 bytes of
// IP+TCP header).
const MSS = 1460

const hdrLen = 40 // modelled IP (20) + TCP (20) headers

// Segment flags.
const (
	flSYN = 1 << iota
	flACK
	flFIN
)

// segment is the decoded TCP-ish header.
type segment struct {
	seq   uint32 // first payload byte's stream offset
	ack   uint32 // cumulative acknowledgement
	flags uint8
	wnd   uint32
}

var crcTab = crc32.MakeTable(crc32.Castagnoli)

// encodeSeg builds the wire frame: Ethernet header, IP/TCP header
// model, payload, checksum.
func encodeSeg(dst, src frame.Addr, s *segment, payload []byte) []byte {
	buf := make([]byte, frame.EthHeaderLen+hdrLen+len(payload))
	binary.BigEndian.PutUint16(buf[4:], uint16(dst))
	binary.BigEndian.PutUint16(buf[10:], uint16(src))
	binary.BigEndian.PutUint16(buf[12:], 0x0800) // IPv4
	p := buf[frame.EthHeaderLen:]
	binary.BigEndian.PutUint32(p[0:], s.seq)
	binary.BigEndian.PutUint32(p[4:], s.ack)
	p[8] = s.flags
	binary.BigEndian.PutUint32(p[9:], s.wnd)
	binary.BigEndian.PutUint16(p[13:], uint16(len(payload)))
	copy(p[hdrLen:], payload)
	binary.BigEndian.PutUint32(p[16:], 0)
	sum := crc32.Checksum(buf, crcTab)
	binary.BigEndian.PutUint32(p[16:], sum)
	return buf
}

func decodeSeg(buf []byte) (src frame.Addr, s segment, payload []byte, ok bool) {
	if len(buf) < frame.EthHeaderLen+hdrLen {
		return 0, s, nil, false
	}
	src = frame.Addr(binary.BigEndian.Uint16(buf[10:]))
	p := buf[frame.EthHeaderLen:]
	want := binary.BigEndian.Uint32(p[16:])
	binary.BigEndian.PutUint32(p[16:], 0)
	got := crc32.Checksum(buf, crcTab)
	binary.BigEndian.PutUint32(p[16:], want)
	if got != want {
		return 0, s, nil, false
	}
	s.seq = binary.BigEndian.Uint32(p[0:])
	s.ack = binary.BigEndian.Uint32(p[4:])
	s.flags = p[8]
	s.wnd = binary.BigEndian.Uint32(p[9:])
	n := int(binary.BigEndian.Uint16(p[13:]))
	if len(p) != hdrLen+n {
		return 0, s, nil, false
	}
	return src, s, p[hdrLen:], true
}

// Costs models the TCP/IP stack's per-event CPU costs. Relative to
// MultiEdge's raw-frame fast path, each segment crosses IP+TCP layers
// and a software checksum.
type Costs struct {
	SegTx, SegRx  sim.Time // per-segment protocol processing
	CopyPsPerByte int64    // socket-buffer copies (each side does one)
	CsumPsPerByte int64    // software checksum
	Syscall       sim.Time
	Wakeup        sim.Time
	UserWake      sim.Time // waking a process blocked in recv/send
}

// DefaultCosts returns costs calibrated to era measurements: Linux 2.6
// TCP spent roughly 2-3x MultiEdge's per-frame budget per segment plus
// a checksum pass over the data.
func DefaultCosts() Costs {
	return Costs{
		SegTx:         1500 * sim.Nanosecond,
		SegRx:         1700 * sim.Nanosecond,
		CopyPsPerByte: 350,
		CsumPsPerByte: 250,
		Syscall:       1100 * sim.Nanosecond,
		Wakeup:        7000 * sim.Nanosecond,
		UserWake:      4500 * sim.Nanosecond,
	}
}

// Params tunes the transport.
type Params struct {
	Costs     Costs
	RcvWnd    int      // receive window (bytes)
	InitCwnd  int      // initial congestion window (bytes)
	RTO       sim.Time // initial retransmission timeout
	AckEvery  int      // delayed ACK: every n segments
	AckDelay  sim.Time // delayed ACK timer
	Ssthresh0 int
}

// DefaultParams returns era-typical settings.
func DefaultParams() Params {
	return Params{
		Costs:     DefaultCosts(),
		RcvWnd:    1 << 20,
		InitCwnd:  4 * MSS,
		RTO:       5 * sim.Millisecond,
		AckEvery:  2,
		AckDelay:  500 * sim.Microsecond,
		Ssthresh0: 1 << 20,
	}
}

// Stack is one node's TCP-like transport instance bound to a NIC.
type Stack struct {
	env    *sim.Env
	node   int
	params Params
	cpus   hostmodel.CPUs
	nic    *phys.NIC

	socks     map[frame.Addr]*Sock // by peer address
	sockOrder []*Sock              // deterministic iteration order
	accepted  sim.Mailbox[*Sock]

	threadActive bool

	// Counters.
	SegsSent, SegsRecv, Retransmits, DupAcks uint64
}

// NewStack creates a TCP host on a NIC.
func NewStack(env *sim.Env, node int, params Params, cpus hostmodel.CPUs, nic *phys.NIC) *Stack {
	st := &Stack{env: env, node: node, params: params, cpus: cpus, nic: nic,
		socks: make(map[frame.Addr]*Sock)}
	nic.SetHost(st)
	return st
}

// Interrupt implements phys.Host (same interrupt-masking discipline as
// the MultiEdge endpoint).
func (st *Stack) Interrupt(n *phys.NIC) {
	n.Mask()
	st.cpus.Proto.Submit(st.env, 2200*sim.Nanosecond, nil)
	st.wake()
}

func (st *Stack) wake() {
	if st.threadActive {
		return
	}
	st.threadActive = true
	st.cpus.Proto.Submit(st.env, st.params.Costs.Wakeup, st.step)
}

// step is the softirq-style protocol loop: one unit of work at a time
// on the protocol CPU.
func (st *Stack) step() {
	if n := st.nic.TakeTxDone(); n > 0 {
		st.cpus.Proto.Submit(st.env, sim.Time(n)*120*sim.Nanosecond, st.step)
		return
	}
	if fr := st.nic.PollRxOne(); fr != nil {
		src, seg, payload, ok := decodeSeg(fr.Buf)
		if !ok {
			st.cpus.Proto.Submit(st.env, st.params.Costs.SegRx, st.step)
			return
		}
		cost := st.params.Costs.SegRx +
			sim.Time(int64(len(payload))*(st.params.Costs.CsumPsPerByte)/1000)
		st.cpus.Proto.Submit(st.env, cost, func() {
			st.dispatch(src, seg, payload)
			st.step()
		})
		return
	}
	// Transmit pending segments.
	for _, sk := range st.sockOrder {
		if sk.sendable() {
			st.cpus.Proto.Submit(st.env, st.params.Costs.SegTx, func() {
				sk.sendNext()
				st.step()
			})
			return
		}
		if sk.ackDue {
			st.cpus.Proto.Submit(st.env, st.params.Costs.SegTx/2, func() {
				sk.sendAck()
				st.step()
			})
			return
		}
	}
	st.threadActive = false
	st.nic.Unmask()
}

func (st *Stack) dispatch(src frame.Addr, seg segment, payload []byte) {
	st.SegsRecv++
	sk, ok := st.socks[src]
	if !ok {
		if seg.flags&flSYN != 0 {
			// Passive open. (SYNs consume no sequence number in this
			// simplified model.)
			sk = newSock(st, src)
			sk.established = true
			st.socks[src] = sk
			st.sockOrder = append(st.sockOrder, sk)
			sk.rcvNxt = seg.seq
			sk.sendSynAck()
			st.accepted.Send(st.env, sk)
			return
		}
		return
	}
	sk.handle(seg, payload)
}

// Dial opens a connection to the peer node's NIC 0 and blocks until
// established.
func (st *Stack) Dial(p *sim.Proc, peer frame.Addr) *Sock {
	sk := newSock(st, peer)
	st.socks[peer] = sk
	st.sockOrder = append(st.sockOrder, sk)
	sk.sendSyn()
	p.Wait(&sk.estSig)
	return sk
}

// Accept blocks until a peer opens a connection.
func (st *Stack) Accept(p *sim.Proc) *Sock {
	return st.accepted.Recv(p)
}

// RegisterObs mirrors the stack's counters into an obs registry at
// gather time (nil-registry safe): the TCP baseline reports through the
// same aggregation point as the MultiEdge layers.
func (s *Stack) RegisterObs(r *obs.Registry) {
	if r == nil {
		return
	}
	nl := obs.NodeLabel(s.node)
	r.AddCollector(func(emit func(obs.Sample)) {
		c := func(name string, v uint64) {
			emit(obs.Sample{Name: name, Labels: []obs.Label{nl}, Value: float64(v), Type: obs.TypeCounter})
		}
		c("tcp_segs_sent_total", s.SegsSent)
		c("tcp_segs_recv_total", s.SegsRecv)
		c("tcp_retransmits_total", s.Retransmits)
		c("tcp_dup_acks_total", s.DupAcks)
	})
}
