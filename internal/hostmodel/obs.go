package hostmodel

import (
	"multiedge/internal/obs"
	"multiedge/internal/sim"
)

// RegisterObs wires the node's CPUs into an obs registry: gather-time
// busy/job counters for both CPUs, plus windowed utilization samplers
// (busy fraction of each sampling interval — the paper reports protocol
// CPU utilization out of 200%, i.e. app + proto). every <= 0 skips the
// samplers. Nil-registry safe.
func (c CPUs) RegisterObs(r *obs.Registry, env *sim.Env, node int, every sim.Time) {
	if r == nil {
		return
	}
	r.AddCollector(func(emit func(obs.Sample)) {
		for _, e := range []struct {
			cpu string
			res *sim.Resource
		}{{"app", c.App}, {"proto", c.Proto}} {
			labels := []obs.Label{obs.NodeLabel(node), obs.L("cpu", e.cpu)}
			emit(obs.Sample{Name: "cpu_busy_ns_total", Labels: labels,
				Value: float64(e.res.BusyTime()), Type: obs.TypeCounter})
			emit(obs.Sample{Name: "cpu_jobs_total", Labels: labels,
				Value: float64(e.res.Jobs()), Type: obs.TypeCounter})
		}
	})
	if every <= 0 {
		return
	}
	for _, e := range []struct {
		cpu string
		res *sim.Resource
	}{{"app", c.App}, {"proto", c.Proto}} {
		res := e.res
		prev := res.Snapshot(env)
		r.Sample("cpu_util", node, []obs.Label{obs.L("cpu", e.cpu)}, every, func() float64 {
			u := prev.Since(env, res)
			prev = res.Snapshot(env)
			return u
		})
	}
}
