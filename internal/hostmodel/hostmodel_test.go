package hostmodel

import (
	"testing"
	"testing/quick"

	"multiedge/internal/sim"
)

func TestCopyCost(t *testing.T) {
	c := Default()
	// 1 MByte at 350 ps/B = 350 us... verify exact integer math.
	want := sim.Time(int64(1<<20) * c.CopyPsPerByte / 1000)
	if got := c.Copy(1 << 20); got != want {
		t.Errorf("Copy(1MiB) = %v, want %v", got, want)
	}
	if c.Copy(0) != 0 {
		t.Error("Copy(0) != 0")
	}
}

func TestInitiationSmallOpNearTwoMicros(t *testing.T) {
	// The paper reports ≈2 us host overhead to initiate an operation.
	c := Default()
	got := c.Initiation(8)
	if got < 1200*sim.Nanosecond || got > 3000*sim.Nanosecond {
		t.Errorf("Initiation(8B) = %v, want ≈2 us", got)
	}
}

func TestInitiationIncludesCopy(t *testing.T) {
	c := Default()
	if c.Initiation(1<<20)-c.Initiation(0) != c.Copy(1<<20) {
		t.Error("initiation does not scale with copy size")
	}
}

func TestCPUsUtilization(t *testing.T) {
	e := sim.NewEnv(1)
	cpus := NewCPUs("n0")
	var app, proto, comb float64
	e.After(0, func() {
		snap := cpus.Snapshot(e)
		cpus.App.Submit(e, 30, nil)
		cpus.Proto.Submit(e, 70, nil)
		e.After(100, func() { app, proto, comb = cpus.UtilizationSince(e, snap) })
	})
	e.Run()
	if app != 0.3 || proto != 0.7 {
		t.Errorf("app=%v proto=%v, want 0.3, 0.7", app, proto)
	}
	if comb != 1.0 {
		t.Errorf("combined=%v, want 1.0", comb)
	}
}

func TestCopyRateSanity(t *testing.T) {
	// The copy path must be faster than a 10-GBit/s link (else the
	// model's bottleneck story is wrong) but slower than 2x that.
	c := Default()
	bytesPerSec := 1e12 / float64(c.CopyPsPerByte)
	if bytesPerSec <= 1.25e9 {
		t.Errorf("copy bandwidth %v B/s not above 10G line rate", bytesPerSec)
	}
}

// TestCostMonotonicityProperty: initiation and copy costs are monotonic
// and additive in size — a larger operation never charges less CPU, and
// Copy is exactly linear (no hidden rounding non-monotonicity).
func TestCostMonotonicityProperty(t *testing.T) {
	c := Default()
	prop := func(aRaw, bRaw uint16) bool {
		a, b := int(aRaw), int(bRaw)
		if a > b {
			a, b = b, a
		}
		if c.Copy(a) > c.Copy(b) || c.Initiation(a) > c.Initiation(b) {
			return false
		}
		// Copy linearity within integer-division rounding of 1 ps/byte.
		sum := c.Copy(a) + c.Copy(b)
		both := c.Copy(a + b)
		diff := sum - both
		if diff < 0 {
			diff = -diff
		}
		return diff <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestBatchIssueAmortizes: a doorbell batch of one is already cheaper
// than the eager per-op initiation, and the per-op cost of a large batch
// falls well below it (the submission-queue win the SQ path models).
func TestBatchIssueAmortizes(t *testing.T) {
	c := Default()
	if c.BatchIssue(1, 64) >= c.Initiation(64) {
		t.Errorf("BatchIssue(1) = %v not below Initiation = %v", c.BatchIssue(1, 64), c.Initiation(64))
	}
	const n = 32
	perOp := c.BatchIssue(n, n*64) / n
	if perOp*4 >= c.Initiation(64) {
		t.Errorf("batched per-op cost %v not at least 4x below eager %v", perOp, c.Initiation(64))
	}
	// Monotonic and additive in descriptor count.
	if c.BatchIssue(2, 0)-c.BatchIssue(1, 0) != c.SQPost {
		t.Error("BatchIssue not linear in descriptor count")
	}
}
