// Package hostmodel holds the calibrated host-side cost model: what each
// step of the MultiEdge send and receive paths costs on the node's CPUs.
//
// The evaluation nodes (IPPS'07 §3) are dual Opteron 244 machines; the
// paper dedicates one CPU to the application and one to the protocol
// (kernel thread + interrupt processing), and reports protocol CPU
// utilization out of 200%. We model each node with two sim.Resources —
// the app CPU and the protocol CPU — and charge the costs below to the
// appropriate one:
//
//   - Operation initiation (syscall, descriptor setup, user→kernel copy)
//     runs in the caller's context: app CPU. This is the paper's ≈2 µs
//     host overhead plus the copy.
//   - Interrupt handling, the protocol kernel thread's per-frame work,
//     and the kernel→user copy on the receive path: protocol CPU.
//
// Constants are calibrated so that the micro-benchmarks land in the
// paper's reported ranges (≈30 µs minimum one-way latency on 10-GBit/s,
// ≈2 µs initiation overhead, ≈88% of nominal 10-GBit/s throughput
// limited by the sender's CPU, full nominal throughput on 1-GBit/s).
// EXPERIMENTS.md records the calibration outcome.
package hostmodel

import "multiedge/internal/sim"

// Costs is the per-event cost table for one node.
type Costs struct {
	// Syscall is the user→kernel crossing paid on the app CPU each time
	// an operation is initiated.
	Syscall sim.Time
	// Descriptor is the kernel-side bookkeeping to create an operation
	// and its handle, also on the app CPU (caller context).
	Descriptor sim.Time
	// CopyPsPerByte is the memcpy rate for user↔kernel buffer copies,
	// in picoseconds per byte (≈ 1/bandwidth). 350 ps/B ≈ 2.85 GB/s,
	// a realistic single-thread copy bandwidth for a 1.8 GHz Opteron
	// with DDR memory.
	CopyPsPerByte int64
	// FrameTx is the protocol CPU work to emit one frame: header
	// construction, ARQ bookkeeping, doorbell.
	FrameTx sim.Time
	// FrameRx is the protocol CPU work to accept one data frame before
	// the payload copy: header parse, ARQ update, ordering checks.
	FrameRx sim.Time
	// AckProc is the protocol CPU work to process one explicit ACK or
	// NACK frame (or the piggy-backed ACK share of a data frame).
	AckProc sim.Time
	// TxDone is the protocol CPU work to retire one transmit
	// completion (free the kernel DMA buffer).
	TxDone sim.Time
	// Interrupt is the interrupt entry/exit cost on the protocol CPU.
	Interrupt sim.Time
	// Wakeup is the cost (and latency) of waking the protocol kernel
	// thread when it was idle.
	Wakeup sim.Time
	// UserWake is the cost of waking the user process when an operation
	// completes or a notification arrives.
	UserWake sim.Time
	// SQPost is the app-CPU cost to append one descriptor to a
	// user-mapped submission queue: no kernel crossing, just the
	// descriptor store and a memory barrier.
	SQPost sim.Time
	// Doorbell is the cost of ringing a submission-queue doorbell once
	// per batch: one kernel crossing (or MMIO write) regardless of how
	// many descriptors the batch carries. Calibrated below Syscall +
	// Descriptor so a batch of one is already slightly cheaper than the
	// eager RDMA_operation path, and large batches amortize it to noise.
	Doorbell sim.Time
}

// Default returns the calibrated cost table used in all experiments.
func Default() Costs {
	return Costs{
		Syscall:       1100 * sim.Nanosecond,
		Descriptor:    800 * sim.Nanosecond,
		CopyPsPerByte: 350,
		FrameTx:       450 * sim.Nanosecond,
		FrameRx:       350 * sim.Nanosecond,
		AckProc:       250 * sim.Nanosecond,
		TxDone:        120 * sim.Nanosecond,
		Interrupt:     2200 * sim.Nanosecond,
		Wakeup:        7000 * sim.Nanosecond,
		UserWake:      4500 * sim.Nanosecond,
		SQPost:        150 * sim.Nanosecond,
		Doorbell:      1250 * sim.Nanosecond,
	}
}

// Copy returns the CPU time to copy n bytes between user and kernel
// space.
func (c Costs) Copy(n int) sim.Time {
	return sim.Time(int64(n) * c.CopyPsPerByte / 1000)
}

// Initiation returns the app-CPU time to initiate an operation that
// copies n payload bytes at the source (remote writes copy at initiation;
// remote reads copy nothing).
func (c Costs) Initiation(n int) sim.Time {
	return c.Syscall + c.Descriptor + c.Copy(n)
}

// BatchIssue returns the app-CPU time to ring a doorbell covering ops
// posted descriptors whose write payloads copy copyBytes in total: one
// Doorbell crossing, one SQPost per descriptor, plus the user→kernel
// copies. Compare Initiation, which pays Syscall + Descriptor per
// operation.
func (c Costs) BatchIssue(ops, copyBytes int) sim.Time {
	return c.Doorbell + sim.Time(ops)*c.SQPost + c.Copy(copyBytes)
}

// CPUs bundles the two modelled processors of a node.
type CPUs struct {
	App   *sim.Resource
	Proto *sim.Resource
}

// NewCPUs creates the two CPUs for the named node.
func NewCPUs(node string) CPUs {
	return CPUs{
		App:   sim.NewResource(node + "/cpu0-app"),
		Proto: sim.NewResource(node + "/cpu1-proto"),
	}
}

// Snapshot captures both CPUs' busy counters for a measurement window.
type Snapshot struct {
	App, Proto sim.Utilization
}

// Snapshot returns the current busy counters.
func (c CPUs) Snapshot(e *sim.Env) Snapshot {
	return Snapshot{App: c.App.Snapshot(e), Proto: c.Proto.Snapshot(e)}
}

// UtilizationSince returns the app-CPU, protocol-CPU and combined busy
// fractions of the window since the snapshot. Combined is out of 2.0
// (the paper plots protocol CPU utilization out of 200%).
func (c CPUs) UtilizationSince(e *sim.Env, s Snapshot) (app, proto, combined float64) {
	app = s.App.Since(e, c.App)
	proto = s.Proto.Since(e, c.Proto)
	return app, proto, app + proto
}
