//go:build race

// Package race reports whether the race detector is compiled in.
// Allocation-count assertions skip under -race (instrumentation
// allocates), while the loops they wrap still run so pool-reuse bugs
// surface as race reports.
package race

// Enabled is true when the binary is built with -race.
const Enabled = true
