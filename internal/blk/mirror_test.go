package blk_test

import (
	"bytes"
	"testing"

	"multiedge/internal/blk"
	"multiedge/internal/cluster"
	"multiedge/internal/core"
	"multiedge/internal/sim"
)

// mirrorSetup builds hosts on nodes 0 and 1 and a mirror client on
// node 2 over a dual-rail cluster.
func mirrorSetup(t *testing.T, blocks, bs int) (*cluster.Cluster, [][]*core.Conn, *blk.Volume, *blk.Volume, *blk.Mirror) {
	t.Helper()
	cfg := cluster.TwoLinkUnordered1G(3)
	cfg.Core.MemBytes = blocks*bs + (4 << 20)
	cl := cluster.New(cfg)
	conns := cl.FullMesh()
	va := blk.NewVolume(cl, 0, blocks, bs, 1)
	vb := blk.NewVolume(cl, 1, blocks, bs, 1)
	a := blk.Open(cl, va, 2, conns[2][0], 0)
	b := blk.Open(cl, vb, 2, conns[2][1], 0)
	return cl, conns, va, vb, blk.OpenMirror(a, b)
}

func TestMirrorWritesBothLegs(t *testing.T) {
	cl, _, va, vb, m := mirrorSetup(t, 16, 2048)
	ok := false
	cl.Env.Go("io", func(p *sim.Proc) {
		for b := 0; b < 16; b++ {
			m.Write(p, b, pat(2048, byte(b)))
		}
		got := make([]byte, 2048)
		m.Read(p, 5, got)
		if !bytes.Equal(got, pat(2048, 5)) {
			t.Error("mirror read mismatch")
		}
		ok = true
	})
	cl.Env.RunUntil(30 * sim.Second)
	if !ok {
		t.Fatal("did not complete")
	}
	// Both hosts hold identical data blocks.
	ha, hb := va.HostMem(cl), vb.HostMem(cl)
	n := 16 * 2048
	if !bytes.Equal(ha[:n], hb[:n]) {
		t.Error("legs diverged after mirrored writes")
	}
	if !bytes.Equal(ha[:2048], pat(2048, 0)) {
		t.Error("leg A holds wrong data")
	}
	if a, b := m.Down(); a || b {
		t.Error("legs marked down without any failure")
	}
}

// TestMirrorFailover kills host 0's every rail mid-workload: reads must
// fail over to host 1 after the deadline and the workload must finish
// with correct data. This is the scenario plain MultiEdge cannot
// express an error for — the operation just never completes.
func TestMirrorFailover(t *testing.T) {
	cl, _, _, vb, m := mirrorSetup(t, 16, 2048)
	ok := false
	cl.Env.Go("io", func(p *sim.Proc) {
		for b := 0; b < 16; b++ {
			m.Write(p, b, pat(2048, byte(b)))
		}
		// Host 0 vanishes (both rails cut).
		cl.FailLink(0, 0)
		cl.FailLink(0, 1)
		got := make([]byte, 2048)
		for b := 0; b < 16; b++ {
			m.Read(p, b, got)
			if !bytes.Equal(got, pat(2048, byte(b))) {
				t.Fatalf("block %d wrong after failover", b)
			}
		}
		// Degraded writes land on the survivor only.
		m.Write(p, 3, pat(2048, 99))
		m.Read(p, 3, got)
		if !bytes.Equal(got, pat(2048, 99)) {
			t.Error("degraded write not readable")
		}
		ok = true
	})
	cl.Env.RunUntil(60 * sim.Second)
	if !ok {
		t.Fatal("did not complete")
	}
	if m.Failovers == 0 {
		t.Error("no failover recorded")
	}
	if a, b := m.Down(); !a || b {
		t.Errorf("down flags = %v,%v; want leg A down only", a, b)
	}
	if !bytes.Equal(vb.HostMem(cl)[3*2048:4*2048], pat(2048, 99)) {
		t.Error("survivor leg missing the degraded write")
	}
}

// TestMirrorRebuild repairs the dead host and rebuilds: the legs must
// converge, including writes made while degraded, and mirrored service
// must resume.
func TestMirrorRebuild(t *testing.T) {
	cl, _, va, vb, m := mirrorSetup(t, 16, 2048)
	ok := false
	cl.Env.Go("io", func(p *sim.Proc) {
		for b := 0; b < 16; b++ {
			m.Write(p, b, pat(2048, byte(b)))
		}
		cl.FailLink(0, 0)
		cl.FailLink(0, 1)
		got := make([]byte, 2048)
		m.Read(p, 0, got) // trips the deadline, marks leg A down
		m.Write(p, 7, pat(2048, 77))

		// Rebuild against a still-dead host must refuse.
		if m.Rebuild(p) {
			t.Error("rebuild claimed success against a dead host")
		}

		cl.RestoreLink(0, 0)
		cl.RestoreLink(0, 1)
		// Give the abandoned probe/read repair a moment, then rebuild.
		p.Sleep(20 * sim.Millisecond)
		if !m.Rebuild(p) {
			t.Fatal("rebuild failed after host repair")
		}
		// Mirrored service resumed: a new write lands on both legs.
		m.Write(p, 9, pat(2048, 88))
		ok = true
	})
	cl.Env.RunUntil(120 * sim.Second)
	if !ok {
		t.Fatal("did not complete")
	}
	if a, b := m.Down(); a || b {
		t.Errorf("down flags = %v,%v after rebuild", a, b)
	}
	if m.Rebuilt == 0 {
		t.Error("rebuild copied nothing")
	}
	ha, hb := va.HostMem(cl), vb.HostMem(cl)
	n := 16 * 2048
	if !bytes.Equal(ha[:n], hb[:n]) {
		t.Error("legs did not converge after rebuild")
	}
	if !bytes.Equal(ha[7*2048:8*2048], pat(2048, 77)) {
		t.Error("degraded-period write missing from rebuilt leg")
	}
}

func TestMirrorGeometryChecks(t *testing.T) {
	cfg := cluster.TwoLinkUnordered1G(3)
	cl := cluster.New(cfg)
	conns := cl.FullMesh()
	va := blk.NewVolume(cl, 0, 8, 512, 1)
	vb := blk.NewVolume(cl, 1, 8, 1024, 1)
	a := blk.Open(cl, va, 2, conns[2][0], 0)
	b := blk.Open(cl, vb, 2, conns[2][1], 0)
	defer func() {
		if recover() == nil {
			t.Error("mismatched geometry not rejected")
		}
	}()
	blk.OpenMirror(a, b)
}
