package blk

import (
	"fmt"

	"multiedge/internal/core"
	"multiedge/internal/frame"
	"multiedge/internal/sim"
)

// Mirror is client-side RAID-1 over two volumes on different hosts:
// writes go to both legs concurrently (each with its own fenced,
// solicited commit), reads go to the preferred leg with a deadline and
// fail over to the other. MultiEdge never loses data, so the deadline
// is not about loss — it is how a client survives a whole *host* (or
// its last rail) becoming unreachable, which the transport can only
// express as an operation that never completes.
type Mirror struct {
	legs     [2]*Client
	down     [2]bool
	deadline sim.Time

	// Stats.
	Failovers uint64 // reads that timed out on one leg and switched
	Rebuilt   uint64 // blocks copied by Rebuild
}

// DefaultMirrorDeadline is how long a read may stay unanswered before
// the mirror declares the leg down: several RTOs, so ordinary loss
// repair (one RTO) never trips it.
const DefaultMirrorDeadline = 10 * sim.Millisecond

// OpenMirror pairs two clients into a mirror. The legs must serve the
// same geometry.
func OpenMirror(a, b *Client) *Mirror {
	if a.v.Blocks != b.v.Blocks || a.v.BlockSize != b.v.BlockSize {
		panic("blk: mirror legs have different geometry")
	}
	if a.v.Host == b.v.Host {
		panic("blk: mirror legs on the same host protect nothing")
	}
	return &Mirror{legs: [2]*Client{a, b}, deadline: DefaultMirrorDeadline}
}

// SetDeadline overrides the failover deadline.
func (m *Mirror) SetDeadline(d sim.Time) { m.deadline = d }

// Down reports which legs are currently marked down.
func (m *Mirror) Down() (a, b bool) { return m.down[0], m.down[1] }

// writeAsync issues one leg's data write plus its fenced solicited
// commit without waiting, returning the commit handle.
func (c *Client) writeAsync(p *sim.Proc, block int, data []byte) *core.Handle {
	mem := c.ep.Mem()
	copy(mem[c.stage:c.stage+uint64(c.v.BlockSize)], data)
	c.c.MustDo(p, core.Op{Remote: c.blockAddr(block), Local: c.stage, Size: c.v.BlockSize, Kind: frame.OpWrite})
	c.seq++
	putCommit(mem[c.rec:], c.seq, block)
	c.Stats.Writes++
	c.Stats.Commits++
	c.Stats.BytesWrite += uint64(c.v.BlockSize)
	return c.c.MustDo(p, core.Op{
		Remote: c.commitAddr(), Local: c.rec, Size: CommitRecordSize,
		Kind: frame.OpWrite, Flags: frame.FenceBefore | frame.Solicit,
	})
}

// writeSQ is writeAsync through the submission queue (Core.UseSQ): the
// data write and its fenced solicited commit record are posted together
// and issued under a single doorbell; the two completions surface on
// the leg connection's completion queue.
func (c *Client) writeSQ(p *sim.Proc, block int, data []byte) {
	mem := c.ep.Mem()
	copy(mem[c.stage:c.stage+uint64(c.v.BlockSize)], data)
	c.c.MustPost(core.Op{Remote: c.blockAddr(block), Local: c.stage, Size: c.v.BlockSize, Kind: frame.OpWrite})
	c.seq++
	putCommit(mem[c.rec:], c.seq, block)
	c.Stats.Writes++
	c.Stats.Commits++
	c.Stats.BytesWrite += uint64(c.v.BlockSize)
	c.c.MustPost(core.Op{
		Remote: c.commitAddr(), Local: c.rec, Size: CommitRecordSize,
		Kind: frame.OpWrite, Flags: frame.FenceBefore | frame.Solicit,
	})
	c.c.MustRing(p)
}

// Write stores the block on every healthy leg, concurrently, and
// returns when all their commits are acknowledged. With a leg down it
// degrades to single-leg writes (Rebuild copies the backlog later).
func (m *Mirror) Write(p *sim.Proc, block int, data []byte) {
	ep := m.legs[0].ep
	sp := ep.Obs().StartLayerSpan(ep.Node(), "blk", "mirror-commit", len(data))
	if m.down[0] && m.down[1] {
		panic("blk: mirror write with both legs down")
	}
	if ep.Config().UseSQ {
		// Issue both legs (data + commit under one doorbell each) before
		// waiting anything, so the legs proceed concurrently; then drain
		// the two completions per leg from each connection's CQ.
		for i, leg := range m.legs {
			if !m.down[i] {
				leg.writeSQ(p, block, data)
			}
		}
		for i, leg := range m.legs {
			if !m.down[i] {
				leg.c.WaitCQ(p)
				leg.c.WaitCQ(p)
			}
		}
	} else {
		var hs [2]*core.Handle
		for i, leg := range m.legs {
			if !m.down[i] {
				hs[i] = leg.writeAsync(p, block, data)
			}
		}
		for _, h := range hs {
			if h != nil {
				h.Wait(p)
			}
		}
	}
	sp.EndAt(ep.Env().Now())
}

// waitDeadline waits for h with a deadline; false means it timed out
// (the operation itself remains outstanding — MultiEdge has no
// cancellation, exactly like a posted RDMA op on real hardware).
func (m *Mirror) waitDeadline(p *sim.Proc, h *core.Handle) bool {
	limit := p.Env().Now() + m.deadline
	for !h.Test() {
		if p.Env().Now() >= limit {
			return false
		}
		p.Sleep(m.deadline / 64)
	}
	return true
}

// Read fetches the block from the preferred (lowest-index healthy)
// leg; if the read outlives the deadline, the leg is marked down and
// the other leg serves it. Reading with both legs down panics.
func (m *Mirror) Read(p *sim.Proc, block int, buf []byte) {
	for i, leg := range m.legs {
		if m.down[i] {
			continue
		}
		h := leg.ReadAsync(p, block)
		if m.waitDeadline(p, h) {
			copy(buf, leg.Stage())
			leg.Stats.Reads++
			leg.Stats.BytesRead += uint64(leg.v.BlockSize)
			return
		}
		// The leg is unreachable. Its staging buffer stays owned by the
		// abandoned read; mark the leg down so nothing reuses it until
		// Rebuild has verified the leg answers again.
		m.down[i] = true
		m.Failovers++
	}
	panic(fmt.Sprintf("blk: mirror read of block %d with no healthy leg", block))
}

// Rebuild brings a recovered leg back: it first verifies the leg
// answers (a deadline read of block 0), then copies every block from
// the healthy leg and finally clears the down mark. Returns false if
// the leg still does not answer.
func (m *Mirror) Rebuild(p *sim.Proc) bool {
	var from, to int
	switch {
	case m.down[0] && !m.down[1]:
		from, to = 1, 0
	case m.down[1] && !m.down[0]:
		from, to = 0, 1
	default:
		return !m.down[0] && !m.down[1] // nothing to do, or nothing to copy from
	}
	probe := m.legs[to].ReadAsync(p, 0)
	if !m.waitDeadline(p, probe) {
		return false // still dead; keep serving degraded
	}
	buf := make([]byte, m.legs[from].v.BlockSize)
	for b := 0; b < m.legs[from].v.Blocks; b++ {
		m.legs[from].Read(p, b, buf)
		m.legs[to].Write(p, b, buf)
		m.Rebuilt++
	}
	m.down[to] = false
	return true
}
