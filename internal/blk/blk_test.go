package blk_test

import (
	"bytes"
	"testing"
	"testing/quick"

	"multiedge/internal/blk"
	"multiedge/internal/cluster"
	"multiedge/internal/core"
	"multiedge/internal/sim"
)

// volCluster builds nodes, a full mesh, and a volume on node 0.
func volCluster(t *testing.T, cfg cluster.Config, nodes, blocks, bs, maxClients int) (*cluster.Cluster, [][]*core.Conn, *blk.Volume) {
	t.Helper()
	cfg.Nodes = nodes
	cfg.Core.MemBytes = blocks*bs + (4 << 20)
	cl := cluster.New(cfg)
	conns := cl.FullMesh()
	v := blk.NewVolume(cl, 0, blocks, bs, maxClients)
	return cl, conns, v
}

func pat(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*3 + seed
	}
	return b
}

func TestReadYourWrite(t *testing.T) {
	cl, conns, v := volCluster(t, cluster.OneLink1G(0), 2, 64, 4096, 2)
	cli := blk.Open(cl, v, 1, conns[1][0], 0)
	ok := false
	cl.Env.Go("io", func(p *sim.Proc) {
		data := pat(4096, 42)
		cli.Write(p, 7, data)
		got := make([]byte, 4096)
		cli.Read(p, 7, got)
		if !bytes.Equal(got, data) {
			t.Error("read-your-write mismatch")
		}
		// An untouched block reads back zero.
		cli.Read(p, 8, got)
		for _, b := range got {
			if b != 0 {
				t.Error("untouched block not zero")
				break
			}
		}
		ok = true
	})
	cl.Env.RunUntil(10 * sim.Second)
	if !ok {
		t.Fatal("I/O did not complete")
	}
	if cli.Stats.Writes != 1 || cli.Stats.Reads != 2 {
		t.Errorf("stats: %+v", cli.Stats)
	}
}

func TestCrossClientVisibility(t *testing.T) {
	cl, conns, v := volCluster(t, cluster.TwoLinkUnordered1G(0), 3, 64, 4096, 2)
	w := blk.Open(cl, v, 1, conns[1][0], 0)
	r := blk.Open(cl, v, 2, conns[2][0], 1)
	data := pat(4096, 9)
	var wrote sim.Signal
	ok := false
	cl.Env.Go("writer", func(p *sim.Proc) {
		w.Write(p, 3, data)
		wrote.Fire(cl.Env)
	})
	cl.Env.Go("reader", func(p *sim.Proc) {
		p.Wait(&wrote)
		got := make([]byte, 4096)
		r.Read(p, 3, got)
		if !bytes.Equal(got, data) {
			t.Error("cross-client read mismatch")
		}
		if seq, block := r.ReadCommit(p, 0); seq != 1 || block != 3 {
			t.Errorf("commit record = (%d,%d), want (1,3)", seq, block)
		}
		ok = true
	})
	cl.Env.RunUntil(10 * sim.Second)
	if !ok {
		t.Fatal("did not complete")
	}
}

// TestCommitNeverPrecedesData is the crash-consistency invariant under
// the adversarial configuration (two unordered rails + 2% loss): an
// observer polling {commit record, block} over its own connection must
// never see a commit sequence whose data has not fully landed. The
// writer fills the block uniformly with byte(seq), so the invariant is
// "every observed byte >= the observed commit seq".
func TestCommitNeverPrecedesData(t *testing.T) {
	cfg := cluster.TwoLinkUnordered1G(0)
	cfg.Link.LossProb = 0.02
	cfg.Seed = 11
	cl, conns, v := volCluster(t, cfg, 3, 8, 8192, 2)
	w := blk.Open(cl, v, 1, conns[1][0], 0)
	o := blk.Open(cl, v, 2, conns[2][0], 1)

	const rounds = 120
	writerDone := false
	cl.Env.Go("writer", func(p *sim.Proc) {
		buf := make([]byte, 8192)
		for s := 1; s <= rounds; s++ {
			for i := range buf {
				buf[i] = byte(s)
			}
			w.Write(p, 0, buf)
		}
		writerDone = true
	})
	violations := 0
	observations := 0
	cl.Env.Go("observer", func(p *sim.Proc) {
		got := make([]byte, 8192)
		for !writerDone {
			seq, block := o.ReadCommit(p, 0)
			if seq == 0 {
				continue
			}
			if block != 0 {
				t.Errorf("commit block = %d, want 0", block)
			}
			o.Read(p, 0, got)
			observations++
			for _, b := range got {
				if uint64(b) < seq && violations < 3 {
					violations++
					t.Errorf("observed byte %d < committed seq %d", b, seq)
					break
				}
			}
		}
	})
	cl.Env.RunUntil(120 * sim.Second)
	if !writerDone {
		t.Fatal("writer did not finish")
	}
	if observations < 10 {
		t.Fatalf("only %d observations; test exercised nothing", observations)
	}
}

// TestConcurrentClientsDisjointBlocks has four clients hammer disjoint
// block ranges concurrently; the volume must end up as the union of
// their last writes.
func TestConcurrentClientsDisjointBlocks(t *testing.T) {
	const per = 16
	cl, conns, v := volCluster(t, cluster.TwoLinkUnordered1G(0), 5, 4*per, 2048, 4)
	clients := make([]*blk.Client, 4)
	for i := range clients {
		clients[i] = blk.Open(cl, v, i+1, conns[i+1][0], i)
	}
	done := 0
	for i, cli := range clients {
		i, cli := i, cli
		cl.Env.Go("client", func(p *sim.Proc) {
			for round := 0; round < 3; round++ {
				for b := 0; b < per; b++ {
					cli.Write(p, i*per+b, pat(2048, byte(i*31+b*7+round)))
				}
			}
			cli.Flush(p)
			done++
		})
	}
	cl.Env.RunUntil(60 * sim.Second)
	if done != 4 {
		t.Fatalf("%d/4 clients finished", done)
	}
	host := v.HostMem(cl)
	for i := 0; i < 4; i++ {
		for b := 0; b < per; b++ {
			off := (i*per + b) * 2048
			want := pat(2048, byte(i*31+b*7+2))
			if !bytes.Equal(host[off:off+2048], want) {
				t.Fatalf("client %d block %d: final contents wrong", i, b)
			}
		}
	}
}

// TestBlockStoreSurvivesLinkFailure pulls one rail mid-workload.
func TestBlockStoreSurvivesLinkFailure(t *testing.T) {
	cl, conns, v := volCluster(t, cluster.TwoLinkUnordered1G(0), 2, 64, 4096, 1)
	cli := blk.Open(cl, v, 1, conns[1][0], 0)
	cl.Env.At(500*sim.Microsecond, func() { cl.FailLink(0, 1) })
	done := false
	cl.Env.Go("io", func(p *sim.Proc) {
		for b := 0; b < 64; b++ {
			cli.Write(p, b, pat(4096, byte(b)))
		}
		got := make([]byte, 4096)
		for b := 0; b < 64; b++ {
			cli.Read(p, b, got)
			if !bytes.Equal(got, pat(4096, byte(b))) {
				t.Fatalf("block %d corrupted after link failure", b)
			}
		}
		done = true
	})
	cl.Env.RunUntil(60 * sim.Second)
	if !done {
		t.Fatal("workload did not complete")
	}
	if cl.Collect().LinkFailDrops == 0 {
		t.Fatal("the fault never bit")
	}
}

// TestRandomWritesMatchModel is the property test: an arbitrary
// interleaving of two clients' writes over disjoint block sets must
// leave the volume equal to a map of each block's last write.
func TestRandomWritesMatchModel(t *testing.T) {
	prop := func(seed int64, ops []uint16) bool {
		if len(ops) > 60 {
			ops = ops[:60]
		}
		if len(ops) == 0 {
			return true
		}
		const blocks, bs = 16, 1024
		cfg := cluster.TwoLinkUnordered1G(0)
		cfg.Seed = seed%100 + 1
		cl, conns, v := func() (*cluster.Cluster, [][]*core.Conn, *blk.Volume) {
			cfg.Nodes = 3
			cfg.Core.MemBytes = blocks*bs + (4 << 20)
			cl := cluster.New(cfg)
			conns := cl.FullMesh()
			return cl, conns, blk.NewVolume(cl, 0, blocks, bs, 2)
		}()
		c1 := blk.Open(cl, v, 1, conns[1][0], 0)
		c2 := blk.Open(cl, v, 2, conns[2][0], 1)

		model := make(map[int]byte)
		var mine [2][]uint16
		for i, op := range ops {
			mine[i%2] = append(mine[i%2], op)
		}
		done := 0
		for ci, cli := range []*blk.Client{c1, c2} {
			ci, cli := ci, cli
			cl.Env.Go("w", func(p *sim.Proc) {
				for _, op := range mine[ci] {
					// Client ci owns blocks with block%2 == ci.
					b := int(op) % (blocks / 2) * 2
					if ci == 1 {
						b++
					}
					fillByte := byte(op >> 8)
					buf := bytes.Repeat([]byte{fillByte}, bs)
					cli.Write(p, b, buf)
					model[b] = fillByte
				}
				done++
			})
		}
		cl.Env.RunUntil(120 * sim.Second)
		if done != 2 {
			return false
		}
		host := v.HostMem(cl)
		for b, want := range model {
			for _, got := range host[b*bs : (b+1)*bs] {
				if got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestGeometryChecks(t *testing.T) {
	cl, conns, v := volCluster(t, cluster.OneLink1G(0), 2, 8, 512, 1)
	cli := blk.Open(cl, v, 1, conns[1][0], 0)
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	cl.Env.Go("io", func(p *sim.Proc) {
		expectPanic("read out of range", func() { cli.Read(p, 8, make([]byte, 512)) })
		expectPanic("negative block", func() { cli.Read(p, -1, make([]byte, 512)) })
	})
	cl.Env.RunUntil(sim.Second)
	expectPanic("bad client id", func() { blk.Open(cl, v, 1, conns[1][0], 1) })
	expectPanic("conn to wrong node", func() {
		cl2, conns2, v2 := volCluster(t, cluster.OneLink1G(0), 3, 8, 512, 1)
		_ = v2
		blk.Open(cl2, blk.NewVolume(cl2, 0, 8, 512, 1), 1, conns2[1][2], 0)
	})
	expectPanic("zero blocks", func() { blk.NewVolume(cl, 0, 0, 512, 1) })
}
