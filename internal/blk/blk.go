// Package blk implements a remote block-storage domain on top of
// MultiEdge, the third application domain of the paper's §1 thesis
// (one edge-based interconnect serving all cluster communication:
// shared memory, message passing, and storage).
//
// The design is the classic one-sided RDMA storage model. A volume is
// a contiguous region of its host node's MultiEdge-addressable memory;
// the host is completely passive — clients read blocks with remote
// reads and write them with remote writes, and the only CPU the host
// spends is the per-frame protocol work it would spend for any peer.
//
// Write durability ordering uses the paper's fence primitive instead
// of a server round trip: every client owns a commit record on the
// volume, and each write is published by rewriting that record with a
// forward-fenced (FenceBefore) operation. MultiEdge guarantees a
// fenced operation is performed at the receiver only after every
// operation issued before it, so no observer — not even one reading
// over a different connection — can see a commit record that precedes
// its data, under any striping, reordering or loss-repair schedule.
// Commits carry the Solicit flag, so write completion takes one round
// trip instead of an AckDelay (the delayed-ACK policy is tuned for
// streaming, not queue-depth-1 commits).
package blk

import (
	"encoding/binary"
	"fmt"
	"strconv"

	"multiedge/internal/cluster"
	"multiedge/internal/core"
	"multiedge/internal/frame"
	"multiedge/internal/obs"
	"multiedge/internal/sim"
)

// CommitRecordSize is the on-volume footprint of one client's commit
// record: a 64-bit sequence number and the 64-bit block index it last
// wrote.
const CommitRecordSize = 16

// Volume describes a block device served from one node's memory.
type Volume struct {
	Host      int // node serving the volume
	Blocks    int
	BlockSize int

	base    uint64 // first data byte on the host
	commits uint64 // base of the per-client commit-record array
	clients int
}

// Bytes returns the volume's data capacity.
func (v *Volume) Bytes() int { return v.Blocks * v.BlockSize }

// NewVolume carves a volume out of the host node's endpoint memory and
// returns its descriptor. maxClients commit records are reserved after
// the data region. The descriptor is plain data; hand it (out of band,
// like a mount) to clients on other nodes.
func NewVolume(cl *cluster.Cluster, host, blocks, blockSize, maxClients int) *Volume {
	if blocks <= 0 || blockSize <= 0 {
		panic("blk: volume needs positive geometry")
	}
	ep := cl.Nodes[host].EP
	base := ep.Alloc(blocks*blockSize + maxClients*CommitRecordSize)
	return &Volume{
		Host: host, Blocks: blocks, BlockSize: blockSize,
		base: base, commits: base + uint64(blocks*blockSize), clients: maxClients,
	}
}

// HostMem exposes the raw volume bytes on the host (for tests and for
// host-side recovery scans). Index is volume-relative.
func (v *Volume) HostMem(cl *cluster.Cluster) []byte {
	m := cl.Nodes[v.Host].EP.Mem()
	return m[v.base : v.base+uint64(v.Bytes()+v.clients*CommitRecordSize)]
}

// Stats counts a client's I/O activity.
type Stats struct {
	Reads      uint64
	Writes     uint64
	BytesRead  uint64
	BytesWrite uint64
	Commits    uint64
}

// Client is one node's handle on a volume: a connection to the host
// plus a registered staging buffer and this client's commit slot.
type Client struct {
	v     *Volume
	c     *core.Conn
	ep    *core.Endpoint
	id    int    // commit-slot index
	seq   uint64 // last committed sequence number
	stage uint64 // staging buffer (one block) in local memory
	rec   uint64 // local shadow of the commit record
	Stats Stats
}

// Open attaches to a volume over an established connection to its
// host. id must be unique per client (it indexes the commit-record
// array) and below the volume's maxClients.
func Open(cl *cluster.Cluster, v *Volume, node int, conn *core.Conn, id int) *Client {
	if conn == nil || conn.RemoteNode() != v.Host {
		panic("blk: Open needs a connection to the volume host")
	}
	if id < 0 || id >= v.clients {
		panic(fmt.Sprintf("blk: client id %d out of range [0,%d)", id, v.clients))
	}
	ep := cl.Nodes[node].EP
	c := &Client{
		v: v, c: conn, ep: ep, id: id,
		stage: ep.Alloc(v.BlockSize),
		rec:   ep.Alloc(CommitRecordSize),
	}
	if r := ep.Obs(); r != nil {
		labels := []obs.Label{obs.NodeLabel(node), obs.L("client", strconv.Itoa(id))}
		r.AddCollector(func(emit func(obs.Sample)) {
			cnt := func(name string, v uint64) {
				emit(obs.Sample{Name: name, Labels: labels, Value: float64(v), Type: obs.TypeCounter})
			}
			cnt("blk_reads_total", c.Stats.Reads)
			cnt("blk_writes_total", c.Stats.Writes)
			cnt("blk_bytes_read_total", c.Stats.BytesRead)
			cnt("blk_bytes_write_total", c.Stats.BytesWrite)
			cnt("blk_commits_total", c.Stats.Commits)
		})
	}
	return c
}

func (c *Client) blockAddr(block int) uint64 {
	if block < 0 || block >= c.v.Blocks {
		panic(fmt.Sprintf("blk: block %d out of range [0,%d)", block, c.v.Blocks))
	}
	return c.v.base + uint64(block)*uint64(c.v.BlockSize)
}

// Read fetches one block into buf (len >= BlockSize) with a single
// remote read. The host CPU is not involved beyond protocol work.
func (c *Client) Read(p *sim.Proc, block int, buf []byte) {
	sp := c.ep.Obs().StartLayerSpan(c.ep.Node(), "blk", "block-read", c.v.BlockSize)
	h := c.ReadAsync(p, block)
	h.Wait(p)
	copy(buf, c.ep.Mem()[c.stage:c.stage+uint64(c.v.BlockSize)])
	c.Stats.Reads++
	c.Stats.BytesRead += uint64(c.v.BlockSize)
	sp.EndAt(c.ep.Env().Now())
}

// ReadAsync starts a one-block read into the client's staging buffer
// and returns its handle; the data is valid in Stage() after the handle
// fires. Only one async read may be outstanding per client (one staging
// buffer) — use plain RDMA for deeper pipelines.
func (c *Client) ReadAsync(p *sim.Proc, block int) *core.Handle {
	return c.c.MustDo(p, core.Op{Remote: c.blockAddr(block), Local: c.stage, Size: c.v.BlockSize, Kind: frame.OpRead})
}

// Stage exposes the staging buffer contents (after ReadAsync + Wait).
func (c *Client) Stage() []byte {
	return c.ep.Mem()[c.stage : c.stage+uint64(c.v.BlockSize)]
}

// putCommit encodes a commit record {seq, block}.
func putCommit(b []byte, seq uint64, block int) {
	binary.LittleEndian.PutUint64(b, seq)
	binary.LittleEndian.PutUint64(b[8:], uint64(block))
}

// Write stores one block (len(data) <= BlockSize; short writes pad the
// block tail with what the staging buffer last held) and publishes it:
// the commit record {seq, block} is rewritten with a forward-fenced
// operation, so the record can never be observed ahead of the data.
// Write returns once both operations are acknowledged end-to-end.
func (c *Client) Write(p *sim.Proc, block int, data []byte) {
	sp := c.ep.Obs().StartLayerSpan(c.ep.Node(), "blk", "block-commit", len(data))
	c.writeAsync(p, block, data).Wait(p)
	sp.EndAt(c.ep.Env().Now())
}

func (c *Client) commitAddr() uint64 {
	return c.v.commits + uint64(c.id)*CommitRecordSize
}

// ReadCommit fetches another client's commit record (for recovery and
// for the ordering tests): the returned seq/block pair is the last
// write that client published.
func (c *Client) ReadCommit(p *sim.Proc, id int) (seq uint64, block int) {
	addr := c.v.commits + uint64(id)*CommitRecordSize
	h := c.c.MustDo(p, core.Op{Remote: addr, Local: c.rec, Size: CommitRecordSize, Kind: frame.OpRead})
	h.Wait(p)
	mem := c.ep.Mem()
	return binary.LittleEndian.Uint64(mem[c.rec:]),
		int(binary.LittleEndian.Uint64(mem[c.rec+8:]))
}

// Seq returns the client's last published sequence number.
func (c *Client) Seq() uint64 { return c.seq }

// Flush issues a fully fenced zero-size write: when it completes, every
// operation this client issued before it has been performed at the
// host and acknowledged.
func (c *Client) Flush(p *sim.Proc) {
	h := c.c.MustDo(p, core.Op{
		Remote: c.commitAddr(), Local: c.rec, Kind: frame.OpWrite,
		Flags: frame.FenceBefore | frame.FenceAfter | frame.Solicit,
	})
	h.Wait(p)
}
