package cluster

import (
	"strconv"

	"multiedge/internal/frame"
	"multiedge/internal/obs"
	"multiedge/internal/sim"
)

// ObsOptions configures the cluster-wide observability registry (see
// internal/obs). The zero value disables observability entirely: no
// registry is built and every instrumented hot path reduces to a nil
// check.
type ObsOptions struct {
	// Metrics builds the registry and auto-registers collectors for
	// every layer's counters plus NIC/switch queue-depth and CPU
	// utilization samplers.
	Metrics bool
	// Spans additionally records causal operation spans (implies a
	// registry even if Metrics is false).
	Spans bool
	// SampleEvery is the period of the queue-depth and CPU-utilization
	// samplers. 0 uses the default (250 µs); negative disables the
	// samplers while keeping gather-time collectors.
	SampleEvery sim.Time
	// Recorder attaches a per-node flight recorder (see obs.Recorder):
	// a fixed-size, allocation-free ring of typed protocol events,
	// recorded unconditionally and frozen into a post-mortem dump when
	// an invariant fires. Independent of Metrics/Spans — recording
	// needs no registry.
	Recorder bool
	// RecorderEvents is the per-node ring capacity (0 uses
	// obs.DefaultRecorderEvents).
	RecorderEvents int
	// HealthEvery, when positive, starts a per-node health sampler
	// (obs.HealthLog) with this period. Implies a registry.
	HealthEvery sim.Time
}

func (o ObsOptions) enabled() bool { return o.Metrics || o.Spans || o.HealthEvery > 0 }

// wireObs builds the registry and attaches every layer, called from New
// once nodes exist.
func (cl *Cluster) wireObs() {
	o := cl.Cfg.Obs
	if o.Recorder {
		for _, n := range cl.Nodes {
			rec := obs.NewRecorder(n.ID, o.RecorderEvents)
			n.EP.SetRecorder(rec)
			cl.Recorders = append(cl.Recorders, rec)
		}
	}
	if !o.enabled() {
		return
	}
	r := obs.New(cl.Env)
	if o.Spans {
		r.EnableSpans()
	}
	cl.Obs = r
	if o.HealthEvery > 0 {
		for _, n := range cl.Nodes {
			ep := n.EP
			r.SampleHealth(n.ID, o.HealthEvery, ep.Health)
		}
	}
	every := o.SampleEvery
	if every == 0 {
		every = 250 * sim.Microsecond
	}
	for _, n := range cl.Nodes {
		n.EP.SetObs(r)
		n.CPUs.RegisterObs(r, cl.Env, n.ID, every)
		for l, nic := range n.NICs {
			r.AddCollector(nic.Collector(n.ID, l))
			if every > 0 {
				nic := nic
				link := []obs.Label{obs.L("link", strconv.Itoa(l))}
				r.Sample("nic_tx_queue", n.ID, link, every, func() float64 {
					return float64(nic.TxQueueLen())
				})
				r.Sample("nic_rx_queue", n.ID, link, every, func() float64 {
					return float64(nic.RxQueueLen())
				})
				// The station port on the switch serving this NIC: its
				// queue depth is the congestion the node's receive
				// direction experiences.
				addr := frame.NewAddr(n.ID, l)
				for _, sw := range cl.Switches {
					if p := sw.OutPortFor(addr); p != nil {
						p := p
						r.Sample("switch_port_queue", n.ID, link, every, func() float64 {
							return float64(p.Queued())
						})
					}
				}
			}
		}
	}
	// Switch station ports and trunks: drop/queue counters at gather
	// time (per node/link for station ports, per index for trunks).
	for i := 0; i < cl.Cfg.Nodes; i++ {
		for l := 0; l < cl.Cfg.LinksPerNode; l++ {
			addr := frame.NewAddr(i, l)
			for _, sw := range cl.Switches {
				if p := sw.OutPortFor(addr); p != nil {
					r.AddCollector(p.Collector("switch_port",
						obs.NodeLabel(i), obs.L("link", strconv.Itoa(l))))
				}
			}
		}
	}
	for i, tp := range cl.Trunks {
		r.AddCollector(tp.Collector("trunk", obs.L("trunk", strconv.Itoa(i))))
	}
}
