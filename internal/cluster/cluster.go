// Package cluster assembles simulated MultiEdge clusters: nodes (two
// CPUs, one or two NICs, an endpoint) attached to one switch per link
// index, exactly like the evaluation setups of IPPS'07 §3.
//
// The four paper configurations are provided as presets:
//
//	1L-1G : 16 nodes, one 1-GBit/s link each, one switch
//	2L-1G : 16 nodes, two 1-GBit/s links and switches, strict ordering
//	2Lu-1G: as 2L-1G but frames may be delivered out of order
//	1L-10G: 4 nodes, one 10-GBit/s link each
package cluster

import (
	"fmt"

	"multiedge/internal/core"
	"multiedge/internal/frame"
	"multiedge/internal/hostmodel"
	"multiedge/internal/obs"
	"multiedge/internal/phys"
	"multiedge/internal/sim"
)

// Config describes a cluster to build.
type Config struct {
	Name         string
	Nodes        int
	LinksPerNode int
	Link         phys.LinkParams
	NIC          phys.NICParams
	Switch       phys.SwitchParams
	Core         core.Config
	Costs        hostmodel.Costs
	Seed         int64

	// EdgeGroup switches each rail from one flat switch to a two-level
	// tree (IPPS'07 §6 future work (a): "communication paths that
	// consist of multiple switches"): nodes attach to edge switches of
	// EdgeGroup ports each, which connect to one core switch through a
	// trunk of TrunkLinks aggregated links. Oversubscription is
	// EdgeGroup/TrunkLinks. Zero keeps the paper's flat fabric.
	EdgeGroup  int
	TrunkLinks int

	// Spines widens the tree into a two-tier Clos (leaf-spine) fabric:
	// instead of one core switch per rail, every edge switch uplinks to
	// Spines spine switches and spreads destinations across them
	// deterministically (destination node modulo Spines), so distinct
	// flows share distinct bottlenecks. Requires EdgeGroup; 0 or 1 keeps
	// the single-core tree.
	Spines int

	// EcnThreshold arms ECN-style congestion marking on every switch
	// output queue (station downlinks and inter-switch trunks): a frame
	// enqueued while the queue already holds at least this many frames is
	// marked congestion-experienced (phys.Frame.Ecn), the receiver echoes
	// marks back in acknowledgements, and senders with
	// Core.CongestionControl enabled cut their window — throttling before
	// drop-tail loss. Must not exceed Switch.QueueCap (a threshold past
	// the drop point could never fire). Zero keeps marking off.
	EcnThreshold int

	// RailLinks, when non-nil, overrides Link per rail (len must equal
	// LinksPerNode): heterogeneous installations mix link generations,
	// e.g. a 1-GbE rail next to a 10-GbE rail. Pair it with
	// Core.AdaptiveStripe — round-robin striping is limited by the
	// slowest rail.
	RailLinks []phys.LinkParams

	// Obs enables the cluster-wide observability registry (metrics,
	// spans, samplers); the zero value keeps it off. The built registry
	// is exposed as Cluster.Obs.
	Obs ObsOptions
}

// Validate checks the configuration for structural errors: node and
// link counts, rail overrides, tree-fabric parameters and the core
// protocol knobs New would otherwise trip over mid-build.
func (c *Config) Validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("cluster %q: need at least one node, have %d", c.Name, c.Nodes)
	}
	if c.LinksPerNode < 1 {
		return fmt.Errorf("cluster %q: need at least one link per node, have %d", c.Name, c.LinksPerNode)
	}
	if c.RailLinks != nil && len(c.RailLinks) != c.LinksPerNode {
		return fmt.Errorf("cluster %q: RailLinks has %d entries for %d links per node",
			c.Name, len(c.RailLinks), c.LinksPerNode)
	}
	if c.EdgeGroup < 0 || c.TrunkLinks < 0 {
		return fmt.Errorf("cluster %q: negative tree-fabric parameter (EdgeGroup %d, TrunkLinks %d)",
			c.Name, c.EdgeGroup, c.TrunkLinks)
	}
	if c.EdgeGroup == 0 && c.TrunkLinks > 0 {
		return fmt.Errorf("cluster %q: TrunkLinks %d without EdgeGroup", c.Name, c.TrunkLinks)
	}
	if c.Spines < 0 {
		return fmt.Errorf("cluster %q: negative Spines %d", c.Name, c.Spines)
	}
	if c.Spines > 1 && c.EdgeGroup == 0 {
		return fmt.Errorf("cluster %q: Spines %d without EdgeGroup (a spine fabric needs edge switches)",
			c.Name, c.Spines)
	}
	if c.EcnThreshold < 0 {
		return fmt.Errorf("cluster %q: negative EcnThreshold %d", c.Name, c.EcnThreshold)
	}
	if c.EcnThreshold > 0 && c.Switch.QueueCap > 0 && c.EcnThreshold > c.Switch.QueueCap {
		return fmt.Errorf("cluster %q: EcnThreshold %d beyond switch queue capacity %d (frames drop before they could be marked)",
			c.Name, c.EcnThreshold, c.Switch.QueueCap)
	}
	if c.Core.Window <= 0 || c.Core.AckEvery <= 0 || c.Core.MemBytes <= 0 {
		return fmt.Errorf("cluster %q: invalid core config (Window %d, AckEvery %d, MemBytes %d)",
			c.Name, c.Core.Window, c.Core.AckEvery, c.Core.MemBytes)
	}
	if c.Core.CoalesceLimit < 0 {
		return fmt.Errorf("cluster %q: negative CoalesceLimit %d", c.Name, c.Core.CoalesceLimit)
	}
	if c.Core.CoalesceLimit > frame.MaxPayload-frame.SubOpOverhead {
		return fmt.Errorf("cluster %q: CoalesceLimit %d cannot fit one sub-op in a %d-byte payload",
			c.Name, c.Core.CoalesceLimit, frame.MaxPayload)
	}
	if c.Core.MaxRetries < 0 {
		return fmt.Errorf("cluster %q: negative MaxRetries %d", c.Name, c.Core.MaxRetries)
	}
	if c.Core.DeadInterval < 0 || c.Core.HeartbeatInterval < 0 || c.Core.TimerWheelTick < 0 {
		return fmt.Errorf("cluster %q: negative liveness timing (DeadInterval %v, HeartbeatInterval %v, TimerWheelTick %v)",
			c.Name, c.Core.DeadInterval, c.Core.HeartbeatInterval, c.Core.TimerWheelTick)
	}
	if c.Core.HeartbeatInterval > 0 && c.Core.DeadInterval > 0 &&
		c.Core.HeartbeatInterval >= c.Core.DeadInterval {
		return fmt.Errorf("cluster %q: HeartbeatInterval %v must be shorter than DeadInterval %v or idle peers are declared dead between beats",
			c.Name, c.Core.HeartbeatInterval, c.Core.DeadInterval)
	}
	if c.Core.MaxReconnects < 0 || c.Core.ReconnectBackoff < 0 || c.Core.ReconnectBackoffMax < 0 {
		return fmt.Errorf("cluster %q: negative reconnect budget (MaxReconnects %d, ReconnectBackoff %v, ReconnectBackoffMax %v)",
			c.Name, c.Core.MaxReconnects, c.Core.ReconnectBackoff, c.Core.ReconnectBackoffMax)
	}
	if c.Core.ReconnectBackoffMax > 0 && c.Core.ReconnectBackoffMax < c.Core.ReconnectBackoff {
		return fmt.Errorf("cluster %q: ReconnectBackoffMax %v below initial backoff %v",
			c.Name, c.Core.ReconnectBackoffMax, c.Core.ReconnectBackoff)
	}
	if len(c.Core.QoS) > 0 && !c.Core.SchedQueue {
		return fmt.Errorf("cluster %q: QoS requires SchedQueue (the fair queues extend the FIFO scheduler)", c.Name)
	}
	for i, q := range c.Core.QoS {
		if q.Weight < 1 {
			return fmt.Errorf("cluster %q: QoS class %d: weight %d must be >= 1 (a zero-weight class would never be served)",
				c.Name, i, q.Weight)
		}
		if q.RateBps < 0 {
			return fmt.Errorf("cluster %q: QoS class %d: negative rate limit %d B/s", c.Name, i, q.RateBps)
		}
		if q.Burst < 0 {
			return fmt.Errorf("cluster %q: QoS class %d: negative burst %d bytes", c.Name, i, q.Burst)
		}
		if q.Burst > 0 && q.RateBps == 0 {
			return fmt.Errorf("cluster %q: QoS class %d: burst %d without a rate limit does nothing", c.Name, i, q.Burst)
		}
		if q.MaxQueued < 0 {
			return fmt.Errorf("cluster %q: QoS class %d: negative queue quota %d ops", c.Name, i, q.MaxQueued)
		}
		if q.MaxQueuedBytes < 0 {
			return fmt.Errorf("cluster %q: QoS class %d: negative byte quota %d", c.Name, i, q.MaxQueuedBytes)
		}
	}
	cc := c.Core.CongestionControl
	if cc.Enable && !c.Core.SchedQueue {
		return fmt.Errorf("cluster %q: CongestionControl requires SchedQueue (the window gates the scheduler's transmit slots)", c.Name)
	}
	if !cc.Enable && (cc.InitWindow != 0 || cc.MinWindow != 0 || cc.MaxWindow != 0 || cc.Backlog != 0 || cc.ProbeInterval != 0) {
		return fmt.Errorf("cluster %q: CongestionControl window bounds without Enable do nothing", c.Name)
	}
	if cc.InitWindow < 0 || cc.MinWindow < 0 || cc.MaxWindow < 0 || cc.Backlog < 0 {
		return fmt.Errorf("cluster %q: negative CongestionControl bound (InitWindow %d, MinWindow %d, MaxWindow %d, Backlog %d)",
			c.Name, cc.InitWindow, cc.MinWindow, cc.MaxWindow, cc.Backlog)
	}
	if cc.ProbeInterval < 0 {
		return fmt.Errorf("cluster %q: negative CongestionControl ProbeInterval %v", c.Name, cc.ProbeInterval)
	}
	if cc.MaxWindow > 0 && cc.MinWindow > cc.MaxWindow {
		return fmt.Errorf("cluster %q: CongestionControl MinWindow %d above MaxWindow %d",
			c.Name, cc.MinWindow, cc.MaxWindow)
	}
	if cc.MaxWindow > 0 && cc.InitWindow > cc.MaxWindow {
		return fmt.Errorf("cluster %q: CongestionControl InitWindow %d above MaxWindow %d",
			c.Name, cc.InitWindow, cc.MaxWindow)
	}
	if cc.MaxWindow > c.Core.Window {
		return fmt.Errorf("cluster %q: CongestionControl MaxWindow %d above the ARQ window %d (the extra slots could never be used)",
			c.Name, cc.MaxWindow, c.Core.Window)
	}
	return nil
}

// railLink returns rail l's link parameters.
func (c *Config) railLink(l int) phys.LinkParams {
	if c.RailLinks != nil {
		return c.RailLinks[l]
	}
	return c.Link
}

// OneLink1G returns the paper's 1L-1G configuration with the given node
// count.
func OneLink1G(nodes int) Config {
	return Config{
		Name: "1L-1G", Nodes: nodes, LinksPerNode: 1,
		Link: phys.Gigabit(), NIC: phys.DefaultNICParams(),
		Switch: phys.DefaultSwitchParams(),
		Core:   core.DefaultConfig(), Costs: hostmodel.Default(), Seed: 1,
	}
}

// TwoLink1G returns the paper's 2L-1G configuration: two links per node,
// two switches, and all operations strictly ordered.
func TwoLink1G(nodes int) Config {
	c := OneLink1G(nodes)
	c.Name = "2L-1G"
	c.LinksPerNode = 2
	c.Core.Strict = true
	return c
}

// TwoLinkUnordered1G returns the paper's 2Lu-1G configuration: two links
// per node with out-of-order delivery permitted where fences allow.
func TwoLinkUnordered1G(nodes int) Config {
	c := TwoLink1G(nodes)
	c.Name = "2Lu-1G"
	c.Core.Strict = false
	return c
}

// OneLink10G returns the paper's 1L-10G configuration: 10-GBit/s links
// and Myricom-style NICs whose transmit interrupts cannot be masked.
func OneLink10G(nodes int) Config {
	c := OneLink1G(nodes)
	c.Name = "1L-10G"
	c.Link = phys.TenGigabit()
	c.NIC = phys.Myri10GNICParams()
	return c
}

// Node is one simulated machine.
type Node struct {
	ID   int
	CPUs hostmodel.CPUs
	NICs []*phys.NIC
	EP   *core.Endpoint
}

// OneLink10GOffload returns the future-work hybrid of IPPS'07 §6(b):
// the 10-GBit/s setup with per-frame protocol processing offloaded to
// the NIC and direct user-memory DMA.
func OneLink10GOffload(nodes int) Config {
	c := OneLink10G(nodes)
	c.Name = "1L-10G-off"
	c.Core.Offload = true
	return c
}

// HybridRails returns a heterogeneous two-rail configuration — one
// 1-GBit/s rail next to one 10-GBit/s rail, the incremental-upgrade
// scenario edge-based scaling invites — with adaptive (least-backlog)
// striping enabled. Clear Core.AdaptiveStripe for the round-robin
// baseline, which is limited to twice the slowest rail.
func HybridRails(nodes int) Config {
	c := TwoLinkUnordered1G(nodes)
	c.Name = "1G+10G"
	c.RailLinks = []phys.LinkParams{phys.Gigabit(), phys.TenGigabit()}
	c.Core.AdaptiveStripe = true
	return c
}

// TreeOneLink1G returns the future-work configuration the paper's §6
// sketches: one 1-GBit/s rail arranged as a two-level switch tree with
// `group` nodes per edge switch and `trunks`-wide aggregated uplinks.
func TreeOneLink1G(nodes, group, trunks int) Config {
	c := OneLink1G(nodes)
	c.Name = "1L-1G-tree"
	c.EdgeGroup = group
	c.TrunkLinks = trunks
	return c
}

// Cluster is a built simulation universe.
type Cluster struct {
	Env       *sim.Env
	Cfg       Config
	Switches  []*phys.Switch  // all switches (edge and core)
	Trunks    []*phys.OutPort // inter-switch trunk ports (tree fabrics)
	Nodes     []*Node
	Obs       *obs.Registry   // observability registry (nil unless Cfg.Obs enables it)
	Recorders []*obs.Recorder // per-node flight recorders (nil unless Cfg.Obs.Recorder)
}

// New builds a cluster from the configuration. It panics on a
// configuration Validate rejects; call Validate first to handle
// configuration errors gracefully.
func New(cfg Config) *Cluster {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	env := sim.NewEnv(cfg.Seed)
	cl := &Cluster{Env: env, Cfg: cfg}
	// Real multi-rail installations are never symmetric: the two
	// switches differ in model/firmware/cabling, so the rails have
	// slightly different base latencies. The skew (plus per-switch
	// jitter) is what reorders round-robin-striped frames in practice;
	// with one link it vanishes.
	const railSkew = 5 * sim.Microsecond
	// Build the station switch for each (rail, node) pair: flat fabrics
	// use one switch per rail; tree fabrics use per-group edge switches
	// behind one core switch per rail.
	stationSw := make([][]*phys.Switch, cfg.LinksPerNode) // [rail][node]
	for l := 0; l < cfg.LinksPerNode; l++ {
		sp := cfg.Switch
		sp.Latency += railSkew * sim.Time(cfg.LinksPerNode-1-l)
		stationSw[l] = make([]*phys.Switch, cfg.Nodes)
		if cfg.EdgeGroup <= 0 {
			sw := phys.NewSwitch(env, fmt.Sprintf("sw%d", l), sp)
			cl.Switches = append(cl.Switches, sw)
			for i := range stationSw[l] {
				stationSw[l][i] = sw
			}
			continue
		}
		trunks := cfg.TrunkLinks
		if trunks <= 0 {
			trunks = 1
		}
		trunkLP := cfg.railLink(l)
		trunkLP.PsPerByte /= int64(trunks) // a LAG of k links ~ one k-times-faster link
		spines := cfg.Spines
		if spines <= 0 {
			spines = 1
		}
		cores := make([]*phys.Switch, spines)
		for s := range cores {
			name := fmt.Sprintf("core%d", l)
			if spines > 1 {
				name = fmt.Sprintf("spine%d.%d", l, s)
			}
			cores[s] = phys.NewSwitch(env, name, sp)
			cl.Switches = append(cl.Switches, cores[s])
		}
		groups := (cfg.Nodes + cfg.EdgeGroup - 1) / cfg.EdgeGroup
		for g := 0; g < groups; g++ {
			edge := phys.NewSwitch(env, fmt.Sprintf("edge%d.%d", l, g), sp)
			cl.Switches = append(cl.Switches, edge)
			ups := make([]*phys.OutPort, spines)
			for s, coreSw := range cores {
				up := edge.ConnectSwitch(coreSw, trunkLP, cfg.Switch.QueueCap)
				down := coreSw.ConnectSwitch(edge, trunkLP, cfg.Switch.QueueCap)
				cl.Trunks = append(cl.Trunks, up, down)
				if cfg.EcnThreshold > 0 {
					up.SetEcnThreshold(cfg.EcnThreshold)
					down.SetEcnThreshold(cfg.EcnThreshold)
				}
				ups[s] = up
				for i := g * cfg.EdgeGroup; i < (g+1)*cfg.EdgeGroup && i < cfg.Nodes; i++ {
					coreSw.Route(frame.NewAddr(i, l), down)
				}
			}
			edge.SetDefaultRoute(ups[0])
			if spines > 1 {
				// Clos spreading: every remote destination rides a fixed
				// spine (node id modulo Spines), so distinct flows share
				// distinct bottlenecks while each flow stays FIFO-ordered.
				for dest := 0; dest < cfg.Nodes; dest++ {
					if dest >= g*cfg.EdgeGroup && dest < (g+1)*cfg.EdgeGroup {
						continue // local station: AttachStation routes it directly
					}
					edge.Route(frame.NewAddr(dest, l), ups[dest%spines])
				}
			}
			for i := g * cfg.EdgeGroup; i < (g+1)*cfg.EdgeGroup && i < cfg.Nodes; i++ {
				stationSw[l][i] = edge
			}
		}
	}
	for i := 0; i < cfg.Nodes; i++ {
		n := &Node{ID: i, CPUs: hostmodel.NewCPUs(fmt.Sprintf("n%d", i))}
		for l := 0; l < cfg.LinksPerNode; l++ {
			addr := frame.NewAddr(i, l)
			nic := phys.NewNIC(env, fmt.Sprintf("n%d/nic%d", i, l), addr, cfg.NIC)
			up := stationSw[l][i].AttachStation(addr, nic, cfg.railLink(l), cfg.Switch.QueueCap)
			nic.AttachUplink(up)
			if cfg.EcnThreshold > 0 {
				// Station downlinks are the classic incast bottleneck: the
				// switch queue in front of the one receiver everyone fans
				// into. Marking happens in the fabric only — NIC transmit
				// queues stay unmarked, as on real hardware.
				if p := stationSw[l][i].OutPortFor(addr); p != nil {
					p.SetEcnThreshold(cfg.EcnThreshold)
				}
			}
			n.NICs = append(n.NICs, nic)
		}
		n.EP = core.NewEndpoint(env, i, cfg.Core, cfg.Costs, n.CPUs, n.NICs)
		cl.Nodes = append(cl.Nodes, n)
	}
	cl.wireObs()
	return cl
}

// RailPorts returns both transmit directions of node's rail link: the
// NIC's uplink port (node → switch) and the station port on whichever
// switch serves that address (switch → node). Fault injectors use it to
// attach manglers or fail individual directions.
func (cl *Cluster) RailPorts(node, link int) []*phys.OutPort {
	ports := []*phys.OutPort{cl.Nodes[node].NICs[link].OutPort()}
	addr := frame.NewAddr(node, link)
	for _, sw := range cl.Switches {
		if p := sw.OutPortFor(addr); p != nil {
			ports = append(ports, p)
		}
	}
	return ports
}

// FailLink hard-fails both directions of node's rail `link` (a pulled
// cable): every frame crossing it from now on is silently lost until
// RestoreLink. The protocol's dead-link detection reroutes traffic to
// the surviving rails.
func (cl *Cluster) FailLink(node, link int) {
	for _, p := range cl.RailPorts(node, link) {
		p.Fail()
	}
}

// RestoreLink repairs a link failed with FailLink. Senders re-admit the
// rail after their next successful probe.
func (cl *Cluster) RestoreLink(node, link int) {
	for _, p := range cl.RailPorts(node, link) {
		p.Restore()
	}
}

// PauseNode fails every rail of a node in both directions — the node
// has stopped (crash, power loss, live-migration pause) as far as the
// rest of the cluster can tell. Its peers' failure detection declares it
// dead after DeadInterval.
func (cl *Cluster) PauseNode(node int) {
	for l := 0; l < cl.Cfg.LinksPerNode; l++ {
		cl.FailLink(node, l)
	}
}

// ResumeNode restores every rail of a node paused with PauseNode.
// Without core.Config.Reconnect, connections the peers already declared
// dead stay dead (the Failed state is terminal) and new traffic needs
// fresh connections; with it, connections parked in Reconnecting
// renegotiate a fresh incarnation over the restored rails and replay
// their incomplete operations.
func (cl *Cluster) ResumeNode(node int) {
	for l := 0; l < cl.Cfg.LinksPerNode; l++ {
		cl.RestoreLink(node, l)
	}
}

// RestartNode models a crash-restart: the node drops off the network
// now and its rails come back after down. With core.Config.Reconnect
// the surviving connections park, redial and replay across the outage;
// without it they fail terminally once detection fires.
func (cl *Cluster) RestartNode(node int, down sim.Time) {
	cl.PauseNode(node)
	cl.Env.After(down, func() { cl.ResumeNode(node) })
}

// Pair establishes a single connection between nodes 0 and 1 and returns
// both ends. It runs the simulation until the handshake completes, so it
// must be called before any other activity is scheduled.
func (cl *Cluster) Pair() (c01, c10 *core.Conn) {
	cl.Env.Go("dial", func(p *sim.Proc) { c01 = cl.Nodes[0].EP.Dial(p, 1, 0) })
	cl.Env.Go("accept", func(p *sim.Proc) { c10 = cl.Nodes[1].EP.Accept(p) })
	cl.Env.Run()
	if c01 == nil || c10 == nil {
		panic("cluster: pair handshake did not complete")
	}
	return c01, c10
}

// FullMesh establishes a connection between every node pair and returns
// conns[i][j], the connection node i uses to talk to node j (nil when
// i == j). It runs the simulation until all handshakes complete.
func (cl *Cluster) FullMesh() [][]*core.Conn {
	n := cl.Cfg.Nodes
	conns := make([][]*core.Conn, n)
	for i := range conns {
		conns[i] = make([]*core.Conn, n)
	}
	for i := 0; i < n; i++ {
		i := i
		cl.Env.Go(fmt.Sprintf("dial%d", i), func(p *sim.Proc) {
			for j := i + 1; j < n; j++ {
				conns[i][j] = cl.Nodes[i].EP.Dial(p, j, 0)
			}
		})
		cl.Env.Go(fmt.Sprintf("accept%d", i), func(p *sim.Proc) {
			for k := 0; k < i; k++ {
				c := cl.Nodes[i].EP.Accept(p)
				conns[i][c.RemoteNode()] = c
			}
		})
	}
	cl.Env.Run()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && conns[i][j] == nil {
				panic(fmt.Sprintf("cluster: mesh handshake %d-%d incomplete", i, j))
			}
		}
	}
	return conns
}

// NetReport aggregates protocol- and substrate-level counters across the
// cluster, the raw material for the paper's §4 network statistics.
type NetReport struct {
	Proto core.Stats

	WireFrames    uint64 // frames leaving all NICs
	WireBytes     uint64
	SwitchDrops   uint64 // congestion (drop-tail) losses
	EcnMarks      uint64 // frames ECN-marked by switch queues (Config.EcnThreshold)
	LinkErrDrops  uint64 // transient-error losses
	LinkFailDrops uint64 // frames lost to hard link failures (FailLink)
	Interrupts    uint64 // interrupts delivered to hosts
	RxIntr        uint64
	TxIntr        uint64
	NICRxFrames   uint64
}

// Collect gathers a NetReport snapshot.
func (cl *Cluster) Collect() NetReport {
	var r NetReport
	for _, n := range cl.Nodes {
		st := n.EP.Stats
		r.Proto.Add(&st)
		for _, nic := range n.NICs {
			r.WireFrames += nic.TxFrames
			r.WireBytes += nic.TxBytes
			r.Interrupts += nic.Interrupts
			r.RxIntr += nic.RxIntr
			r.TxIntr += nic.TxIntr
			r.NICRxFrames += nic.RxFrames
			r.LinkErrDrops += nic.OutPort().DropsErr
			r.LinkFailDrops += nic.OutPort().DropsFailed
		}
	}
	// Routing tables can alias one physical port under many addresses
	// (core switches route every node of an edge group at the same trunk
	// downlink; Clos edges route remote nodes at spine uplinks), so the
	// walk dedupes by port or multi-homed trunks would count once per
	// routed address.
	seen := make(map[*phys.OutPort]bool)
	count := func(p *phys.OutPort) {
		if p == nil || seen[p] {
			return
		}
		seen[p] = true
		r.SwitchDrops += p.DropsFull
		r.EcnMarks += p.EcnMarks
		r.LinkErrDrops += p.DropsErr
		r.LinkFailDrops += p.DropsFailed
	}
	for _, sw := range cl.Switches {
		for i := 0; i < cl.Cfg.Nodes; i++ {
			for l := 0; l < cl.Cfg.LinksPerNode; l++ {
				count(sw.OutPortFor(frame.NewAddr(i, l)))
			}
		}
	}
	for _, tp := range cl.Trunks {
		count(tp)
	}
	return r
}

// Sub returns the difference of two reports (window measurement).
func (r NetReport) Sub(prev NetReport) NetReport {
	out := r
	var p core.Stats
	p = prev.Proto
	// Stats.Add has no Sub; do it field-wise via negation-free diff.
	out.Proto = diffStats(r.Proto, p)
	out.WireFrames -= prev.WireFrames
	out.WireBytes -= prev.WireBytes
	out.SwitchDrops -= prev.SwitchDrops
	out.EcnMarks -= prev.EcnMarks
	out.LinkErrDrops -= prev.LinkErrDrops
	out.LinkFailDrops -= prev.LinkFailDrops
	out.Interrupts -= prev.Interrupts
	out.RxIntr -= prev.RxIntr
	out.TxIntr -= prev.TxIntr
	out.NICRxFrames -= prev.NICRxFrames
	return out
}

func diffStats(a, b core.Stats) core.Stats {
	a.OpsStarted -= b.OpsStarted
	a.OpsCompleted -= b.OpsCompleted
	a.ReadsServed -= b.ReadsServed
	a.Notifies -= b.Notifies
	a.Doorbells -= b.Doorbells
	a.SQOps -= b.SQOps
	a.CoalescedFrames -= b.CoalescedFrames
	a.CoalescedSubOps -= b.CoalescedSubOps
	a.DataFramesSent -= b.DataFramesSent
	a.DataBytesSent -= b.DataBytesSent
	a.CtrlAcksSent -= b.CtrlAcksSent
	a.CtrlNacksSent -= b.CtrlNacksSent
	a.Retransmissions -= b.Retransmissions
	a.LinkDeadEvents -= b.LinkDeadEvents
	a.LinkRestores -= b.LinkRestores
	a.DataFramesRecv -= b.DataFramesRecv
	a.DataBytesRecv -= b.DataBytesRecv
	a.CtrlRecv -= b.CtrlRecv
	a.Duplicates -= b.Duplicates
	a.GbnDropped -= b.GbnDropped
	a.Arrivals -= b.Arrivals
	a.OOOArrivals -= b.OOOArrivals
	a.HeldFrames -= b.HeldFrames
	a.RttSamples -= b.RttSamples
	a.RtoExpiries -= b.RtoExpiries
	a.PeerDeadEvents -= b.PeerDeadEvents
	a.ResetsSent -= b.ResetsSent
	a.ResetsRecv -= b.ResetsRecv
	a.HeartbeatsSent -= b.HeartbeatsSent
	a.HeartbeatsRecv -= b.HeartbeatsRecv
	a.OpsFailed -= b.OpsFailed
	a.OpDeadlinesExpired -= b.OpDeadlinesExpired
	a.DupFramesDropped -= b.DupFramesDropped
	a.NackGapsDropped -= b.NackGapsDropped
	a.StaleEpochDrops -= b.StaleEpochDrops
	a.Reconnects -= b.Reconnects
	a.ReconnectsFailed -= b.ReconnectsFailed
	a.ReplayedOps -= b.ReplayedOps
	a.ReplayedBytes -= b.ReplayedBytes
	a.Abandons -= b.Abandons
	a.QosOpsAdmitted -= b.QosOpsAdmitted
	a.QosOpsThrottled -= b.QosOpsThrottled
	a.QosAdmissionWaits -= b.QosAdmissionWaits
	a.QosRateDeferrals -= b.QosRateDeferrals
	a.QosSchedFrames -= b.QosSchedFrames
	a.EcnMarksSeen -= b.EcnMarksSeen
	a.EcnEchoesSent -= b.EcnEchoesSent
	a.EcnEchoesRecv -= b.EcnEchoesRecv
	a.CcCwndCuts -= b.CcCwndCuts
	a.CcRetxDeferred -= b.CcRetxDeferred
	a.CcOpsThrottled -= b.CcOpsThrottled
	a.CcAdmissionWaits -= b.CcAdmissionWaits
	a.AppProtoTime -= b.AppProtoTime
	// HoldMax and RtoBackoffMax are peaks, not counters: left as-is.
	return a
}
