package cluster

import (
	"bytes"
	"strings"
	"testing"

	"multiedge/internal/core"
	"multiedge/internal/frame"
	"multiedge/internal/obs"
	"multiedge/internal/sim"
)

// TestReconnectMetricsMove drives a real supervised reconnect (outage
// longer than DeadInterval) with the registry on and asserts the
// recovery instrumentation added alongside the reconnect subsystem
// actually registers and moves: the reconnect counter, both recovery
// histograms, and the endpoint gauges.
func TestReconnectMetricsMove(t *testing.T) {
	cfg := OneLink1G(2)
	cfg.Core.Reconnect = true
	cfg.Core.DeadInterval = 25 * sim.Millisecond
	cfg.Core.HeartbeatInterval = 5 * sim.Millisecond
	cfg.Core.ReconnectBackoff = 2 * sim.Millisecond
	cfg.Obs = ObsOptions{Metrics: true, SampleEvery: -1, Recorder: true}
	cl := New(cfg)
	c01, _ := cl.Pair()

	src := cl.Nodes[0].EP.Alloc(4 << 10)
	dst := cl.Nodes[1].EP.Alloc(4 << 10)
	done := false
	cl.Env.Go("writer", func(p *sim.Proc) {
		for i := 0; !done; i++ {
			h := c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: 4 << 10, Kind: frame.OpWrite})
			h.Wait(p)
			if h.Err() != nil {
				t.Errorf("transfer %d failed: %v", i, h.Err())
				break
			}
		}
		c01.Close(p)
	})
	cl.Env.Go("driver", func(p *sim.Proc) {
		p.Sleep(10 * sim.Millisecond)
		cl.PauseNode(1)
		p.Sleep(100 * sim.Millisecond) // well past DeadInterval: forces park + redial
		cl.ResumeNode(1)
		p.Sleep(100 * sim.Millisecond)
		done = true
	})
	cl.Env.Run()
	cl.Obs.Quiesce()

	if cl.Nodes[0].EP.Stats.Reconnects == 0 {
		t.Fatal("outage did not drive a supervised reconnect; test is vacuous")
	}
	snap := cl.Obs.Gather()
	n0 := obs.NodeLabel(0)
	if v, ok := snap.Get("core_reconnects_total", n0); !ok || v == 0 {
		t.Fatalf("core_reconnects_total = %v, %v; want > 0", v, ok)
	}
	if v, ok := snap.Get("core_reconnect_outage_us_count", n0); !ok || v == 0 {
		t.Fatalf("core_reconnect_outage_us_count = %v, %v; want > 0", v, ok)
	}
	if v, ok := snap.Get("core_reconnect_outage_us_sum", n0); !ok || v <= 0 {
		t.Fatalf("core_reconnect_outage_us_sum = %v, %v; want > 0 (outage took time)", v, ok)
	}
	if v, ok := snap.Get("core_reconnect_attempts_count", n0); !ok || v == 0 {
		t.Fatalf("core_reconnect_attempts_count = %v, %v; want > 0", v, ok)
	}
	if v, ok := snap.Get("core_rto_expiries_total", n0); !ok || v == 0 {
		t.Fatalf("core_rto_expiries_total = %v, %v; want > 0 during an outage", v, ok)
	}
	// Endpoint gauges must be present (zero is correct after teardown).
	for _, g := range []string{"core_active_conns", "core_sched_queue_depth", "core_timer_wheel_entries"} {
		if _, ok := snap.Get(g, n0); !ok {
			t.Fatalf("gauge %s not registered", g)
		}
	}

	// The flight recorder must hold the same story: park, redial, rebirth.
	var kinds []obs.RecKind
	for _, ev := range cl.Recorders[0].Events() {
		kinds = append(kinds, ev.Kind)
	}
	for _, want := range []obs.RecKind{obs.RecReconnect, obs.RecRedial, obs.RecRebirth} {
		found := false
		for _, k := range kinds {
			if k == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("recorder missing %v; got %v", want, kinds)
		}
	}
}

// TestQoSMetricsExport is the QoS double-scrape golden test: with the
// registry and a QoS class table on, the per-class qos_* series export
// deterministically (two scrapes byte-identical) carrying a tenant
// label, and the counters for a class that actually carried traffic
// move while an idle class's stay zero.
func TestQoSMetricsExport(t *testing.T) {
	cfg := OneLink1G(2)
	cfg.Core.SchedQueue = true
	cfg.Core.QoS = []core.QoSClass{
		{Weight: 1},
		{Weight: 4, RateBps: 500e6, Burst: 16 << 10, MaxQueued: 8, MaxQueuedBytes: 1 << 20},
		{Weight: 2}, // never used: its counters must export as zeros
	}
	cfg.Obs = ObsOptions{Metrics: true, SampleEvery: -1}
	cl := New(cfg)
	server := cl.Nodes[0].EP
	client := cl.Nodes[1].EP

	const size = 4 << 10
	src := client.Alloc(size)
	dst := server.Alloc(size)
	cl.Env.Go("writer", func(p *sim.Proc) {
		c := client.Dial(p, 0, 0)
		c.SetClass(1)
		for i := 0; i < 32; i++ {
			c.MustDo(p, core.Op{Remote: dst, Local: src, Size: size, Kind: frame.OpWrite}).Wait(p)
		}
		c.Close(p)
	})
	cl.Env.Run()
	cl.Obs.Quiesce()

	one := cl.Obs.Gather().Prometheus()
	two := cl.Obs.Gather().Prometheus()
	if !bytes.Equal(one, two) {
		t.Fatalf("double scrape differs:\n--- first\n%s\n--- second\n%s", one, two)
	}
	if !strings.Contains(string(one), `qos_admitted_total{node="1",tenant="1"}`) {
		t.Fatalf("export lacks a tenant-labeled qos_* series:\n%s", one)
	}

	snap := cl.Obs.Gather()
	busy := []obs.Label{obs.NodeLabel(1), obs.L("tenant", "1")}
	idle := []obs.Label{obs.NodeLabel(1), obs.L("tenant", "2")}
	if v, ok := snap.Get("qos_admitted_total", busy...); !ok || v != 32 {
		t.Fatalf("qos_admitted_total{tenant=1} = %v, %v; want 32", v, ok)
	}
	if v, ok := snap.Get("qos_frames_sent_total", busy...); !ok || v == 0 {
		t.Fatalf("qos_frames_sent_total{tenant=1} = %v, %v; want > 0", v, ok)
	}
	if v, ok := snap.Get("qos_bytes_sent_total", busy...); !ok || v < 32*size {
		t.Fatalf("qos_bytes_sent_total{tenant=1} = %v, %v; want >= %d", v, ok, 32*size)
	}
	if v, ok := snap.Get("qos_admitted_total", idle...); !ok || v != 0 {
		t.Fatalf("qos_admitted_total{tenant=2} = %v, %v; want registered zero", v, ok)
	}
	// Quota gauges must read empty after teardown: admission releases
	// every charge exactly once.
	for _, g := range []string{"qos_pending_ops", "qos_pending_bytes"} {
		if v, ok := snap.Get(g, busy...); !ok || v != 0 {
			t.Fatalf("%s{tenant=1} = %v, %v; want 0 after drain", g, v, ok)
		}
	}
}

// TestHealthSamplerTimeline: a cluster with HealthEvery on produces a
// per-node health timeline whose entries track connection state.
func TestHealthSamplerTimeline(t *testing.T) {
	cfg := OneLink1G(2)
	cfg.Obs = ObsOptions{HealthEvery: 5 * sim.Millisecond, SampleEvery: -1}
	cl := New(cfg)
	c01, _ := cl.Pair()
	src := cl.Nodes[0].EP.Alloc(64 << 10)
	dst := cl.Nodes[1].EP.Alloc(64 << 10)
	cl.Env.Go("writer", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			p.Sleep(2 * sim.Millisecond)
			h := c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: 64 << 10, Kind: frame.OpWrite})
			h.Wait(p)
		}
		c01.Close(p)
	})
	cl.Env.Run()
	cl.Obs.Quiesce()

	logs := cl.Obs.HealthLogs()
	if len(logs) != 2 {
		t.Fatalf("health logs = %d; want one per node", len(logs))
	}
	sawEstablished := false
	var sawBytes uint64
	for _, e := range logs[0].Entries {
		if e.Node != 0 {
			t.Fatalf("node 0 log holds node %d entry", e.Node)
		}
		for _, c := range e.Conns {
			if c.State == "established" {
				sawEstablished = true
			}
			if c.BytesAcked > sawBytes {
				sawBytes = c.BytesAcked
			}
		}
	}
	if len(logs[0].Entries) < 5 {
		t.Fatalf("only %d samples over a ~45ms run at 5ms period", len(logs[0].Entries))
	}
	if !sawEstablished || sawBytes == 0 {
		t.Fatalf("timeline never saw an established conn with acked bytes (established=%v bytes=%d)",
			sawEstablished, sawBytes)
	}
}
