package cluster

import (
	"fmt"
	"strings"
	"testing"

	"multiedge/internal/core"
	"multiedge/internal/frame"
	"multiedge/internal/phys"
	"multiedge/internal/sim"
)

func TestPresetsMatchPaperSetups(t *testing.T) {
	cases := []struct {
		cfg    Config
		links  int
		rate   float64
		strict bool
	}{
		{OneLink1G(16), 1, 125e6, false},
		{TwoLink1G(16), 2, 125e6, true},
		{TwoLinkUnordered1G(16), 2, 125e6, false},
		{OneLink10G(4), 1, 1.25e9, false},
	}
	for _, c := range cases {
		if c.cfg.LinksPerNode != c.links {
			t.Errorf("%s: links = %d, want %d", c.cfg.Name, c.cfg.LinksPerNode, c.links)
		}
		if got := c.cfg.Link.BytesPerSec(); got != c.rate {
			t.Errorf("%s: rate = %v, want %v", c.cfg.Name, got, c.rate)
		}
		if c.cfg.Core.Strict != c.strict {
			t.Errorf("%s: strict = %v, want %v", c.cfg.Name, c.cfg.Core.Strict, c.strict)
		}
	}
	if !OneLink10G(4).NIC.TxIntrUnmaskable {
		t.Error("10G preset must model unmaskable transmit interrupts")
	}
	if OneLink1G(16).NIC.TxIntrUnmaskable {
		t.Error("1G preset must not have unmaskable transmit interrupts")
	}
}

func TestNewBuildsTopology(t *testing.T) {
	cl := New(TwoLink1G(5))
	if len(cl.Nodes) != 5 || len(cl.Switches) != 2 {
		t.Fatalf("nodes=%d switches=%d", len(cl.Nodes), len(cl.Switches))
	}
	for i, n := range cl.Nodes {
		if n.ID != i || len(n.NICs) != 2 {
			t.Errorf("node %d malformed", i)
		}
		if n.NICs[0].Addr() != frame.NewAddr(i, 0) {
			t.Errorf("node %d NIC0 addr %v", i, n.NICs[0].Addr())
		}
	}
}

func TestFullMeshEstablishesAllPairs(t *testing.T) {
	cl := New(OneLink1G(6))
	conns := cl.FullMesh()
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if i == j {
				if conns[i][j] != nil {
					t.Errorf("self connection %d", i)
				}
				continue
			}
			c := conns[i][j]
			if c == nil || !c.Established() || c.RemoteNode() != j {
				t.Errorf("conn %d->%d broken", i, j)
			}
		}
	}
}

func TestCollectAndSub(t *testing.T) {
	cl := New(OneLink1G(2))
	c01, _ := cl.Pair()
	before := cl.Collect()
	src := cl.Nodes[0].EP.Alloc(4096)
	dst := cl.Nodes[1].EP.Alloc(4096)
	cl.Env.Go("w", func(p *sim.Proc) {
		c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: 4096, Kind: frame.OpWrite}).Wait(p)
	})
	cl.Env.RunUntil(sim.Second)
	diff := cl.Collect().Sub(before)
	if diff.Proto.DataFramesSent == 0 || diff.WireFrames == 0 {
		t.Errorf("window diff empty: %+v", diff.Proto)
	}
	if diff.Proto.DataBytesSent != 4096 {
		t.Errorf("window diff payload = %d, want 4096", diff.Proto.DataBytesSent)
	}
}

// TestValidateQoS covers every QoS knob Validate checks: a well-formed
// class table passes, and each malformed knob is rejected with an error
// naming the offending class and field.
func TestValidateQoS(t *testing.T) {
	qosCfg := func(sched bool, classes ...core.QoSClass) Config {
		cfg := OneLink1G(2)
		cfg.Core.SchedQueue = sched
		cfg.Core.QoS = classes
		return cfg
	}
	cases := []struct {
		name    string
		cfg     Config
		wantErr string // substring; "" = must validate
	}{
		{"no-qos", OneLink1G(2), ""},
		{"valid-weights", qosCfg(true, core.QoSClass{Weight: 1}, core.QoSClass{Weight: 8}), ""},
		{"valid-full-knobs", qosCfg(true, core.QoSClass{Weight: 1},
			core.QoSClass{Weight: 2, RateBps: 100e6, Burst: 8 << 10, MaxQueued: 16, MaxQueuedBytes: 1 << 20}), ""},
		{"needs-schedqueue", qosCfg(false, core.QoSClass{Weight: 1}),
			"QoS requires SchedQueue"},
		{"zero-weight", qosCfg(true, core.QoSClass{Weight: 1}, core.QoSClass{Weight: 0}),
			"QoS class 1: weight 0 must be >= 1"},
		{"negative-weight", qosCfg(true, core.QoSClass{Weight: -3}),
			"QoS class 0: weight -3 must be >= 1"},
		{"negative-rate", qosCfg(true, core.QoSClass{Weight: 1, RateBps: -1}),
			"QoS class 0: negative rate limit -1"},
		{"negative-burst", qosCfg(true, core.QoSClass{Weight: 1, RateBps: 1e6, Burst: -64}),
			"QoS class 0: negative burst -64"},
		{"burst-without-rate", qosCfg(true, core.QoSClass{Weight: 1, Burst: 4096}),
			"QoS class 0: burst 4096 without a rate limit"},
		{"negative-op-quota", qosCfg(true, core.QoSClass{Weight: 1, MaxQueued: -2}),
			"QoS class 0: negative queue quota -2"},
		{"negative-byte-quota", qosCfg(true, core.QoSClass{Weight: 1, MaxQueuedBytes: -9}),
			"QoS class 0: negative byte quota -9"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %q, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestValidateCongestionControl covers the congestion-control and
// fabric knobs Validate checks: well-formed configurations pass, and
// each malformed knob is rejected with an error naming the offending
// field — zero/negative window bounds, an ECN threshold the queue
// could never reach, and congestion control without the scheduler it
// gates.
func TestValidateCongestionControl(t *testing.T) {
	ccCfg := func(sched bool, cc core.CCConfig) Config {
		cfg := OneLink1G(2)
		cfg.Core.SchedQueue = sched
		cfg.Core.CongestionControl = cc
		return cfg
	}
	mut := func(cfg Config, f func(*Config)) Config { f(&cfg); return cfg }
	cases := []struct {
		name    string
		cfg     Config
		wantErr string // substring; "" = must validate
	}{
		{"cc-off", OneLink1G(2), ""},
		{"cc-valid-defaults", ccCfg(true, core.CCConfig{Enable: true}), ""},
		{"cc-valid-full-knobs", ccCfg(true, core.CCConfig{
			Enable: true, InitWindow: 8, MinWindow: 2, MaxWindow: 64, Backlog: 32}), ""},
		{"ecn-valid", mut(OneLink1G(2), func(c *Config) { c.EcnThreshold = 8 }), ""},
		{"clos-valid", mut(TreeOneLink1G(8, 4, 1), func(c *Config) { c.Spines = 2 }), ""},
		{"cc-needs-schedqueue", ccCfg(false, core.CCConfig{Enable: true}),
			"CongestionControl requires SchedQueue"},
		{"cc-knobs-without-enable", ccCfg(true, core.CCConfig{InitWindow: 8}),
			"without Enable do nothing"},
		{"cc-negative-bound", ccCfg(true, core.CCConfig{Enable: true, MinWindow: -1}),
			"negative CongestionControl bound"},
		{"cc-probe-valid", ccCfg(true, core.CCConfig{Enable: true, ProbeInterval: 2 * sim.Millisecond}), ""},
		{"cc-probe-without-enable", ccCfg(true, core.CCConfig{ProbeInterval: sim.Millisecond}),
			"without Enable do nothing"},
		{"cc-negative-probe-interval", ccCfg(true, core.CCConfig{Enable: true, ProbeInterval: -sim.Millisecond}),
			"negative CongestionControl ProbeInterval"},
		{"cc-zero-via-min-above-max", ccCfg(true, core.CCConfig{Enable: true, MinWindow: 8, MaxWindow: 4}),
			"MinWindow 8 above MaxWindow 4"},
		{"cc-init-above-max", ccCfg(true, core.CCConfig{Enable: true, InitWindow: 9, MaxWindow: 4}),
			"InitWindow 9 above MaxWindow 4"},
		{"cc-max-above-arq-window", ccCfg(true, core.CCConfig{Enable: true, MaxWindow: 256}),
			"above the ARQ window"},
		{"negative-spines", mut(OneLink1G(2), func(c *Config) { c.Spines = -1 }),
			"negative Spines"},
		{"spines-without-edges", mut(OneLink1G(4), func(c *Config) { c.Spines = 2 }),
			"without EdgeGroup"},
		{"negative-ecn-threshold", mut(OneLink1G(2), func(c *Config) { c.EcnThreshold = -4 }),
			"negative EcnThreshold"},
		{"ecn-beyond-queue-cap", mut(OneLink1G(2), func(c *Config) {
			c.Switch.QueueCap = 16
			c.EcnThreshold = 32
		}), "beyond switch queue capacity"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %q, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-node cluster did not panic")
		}
	}()
	New(Config{Nodes: 0, LinksPerNode: 1})
}

func TestTreeTopologyForwarding(t *testing.T) {
	// 8 nodes, 4 per edge switch: intra-group and inter-group traffic
	// must both work, and inter-group latency must exceed intra-group
	// (one vs three store-and-forward hops).
	cfg := TreeOneLink1G(8, 4, 1)
	cl := New(cfg)
	conns := cl.FullMesh()
	if len(cl.Switches) != 3 { // core + 2 edges
		t.Fatalf("switches = %d, want 3", len(cl.Switches))
	}
	measure := func(from, to int) sim.Time {
		src := cl.Nodes[from].EP.Alloc(64)
		dst := cl.Nodes[to].EP.Alloc(64)
		var t0, t1 sim.Time
		cl.Env.Go("m", func(p *sim.Proc) {
			t0 = cl.Env.Now()
			conns[from][to].MustDo(p, core.Op{Remote: dst, Local: src, Size: 64, Kind: frame.OpWrite, Flags: frame.Notify}).Wait(p)
			t1 = cl.Env.Now()
		})
		cl.Env.RunUntil(cl.Env.Now() + sim.Second)
		return t1 - t0
	}
	intra := measure(0, 1) // same edge switch
	inter := measure(0, 5) // across the core
	if intra <= 0 || inter <= 0 {
		t.Fatalf("latencies intra=%v inter=%v", intra, inter)
	}
	if inter <= intra {
		t.Errorf("inter-group latency %v not above intra-group %v", inter, intra)
	}
}

// TestClosTopologyForwarding: with Spines > 1 the tree fabric becomes
// a two-tier Clos — every edge uplinks to every spine, and remote
// destinations are spread across spines by destination index. All
// cross-group pairs must forward, and both spines must carry traffic.
func TestClosTopologyForwarding(t *testing.T) {
	cfg := TreeOneLink1G(8, 4, 1)
	cfg.Spines = 2
	cl := New(cfg)
	if len(cl.Switches) != 4 { // 2 spines + 2 edges
		t.Fatalf("switches = %d, want 4 (2 spines + 2 edges)", len(cl.Switches))
	}
	// Destination-index spreading must light up both spines: count
	// frames each spine forwards toward group 1 (spines are created
	// before edges, so they are the first two switches).
	var viaSpine [2]int
	for i, sw := range cl.Switches[:2] {
		i := i
		sw.OutPortFor(frame.NewAddr(4, 0)).SetOnTx(func(*phys.Frame) { viaSpine[i]++ })
	}
	conns := cl.FullMesh()
	const n = 4096
	done := 0
	for s := 0; s < 4; s++ { // group 0 → group 1, two dests per spine
		s := s
		src := cl.Nodes[s].EP.Alloc(n)
		dst := cl.Nodes[4+s].EP.Alloc(n)
		for i := 0; i < n; i++ {
			cl.Nodes[s].EP.Mem()[src+uint64(i)] = byte(i*7 + 3 + s)
		}
		cl.Env.Go("x", func(p *sim.Proc) {
			conns[s][4+s].MustDo(p, core.Op{Remote: dst, Local: src, Size: n, Kind: frame.OpWrite}).Wait(p)
			if cl.Nodes[4+s].EP.Mem()[dst] != byte(3+s) {
				t.Errorf("pair %d: payload corrupt", s)
			}
			done++
		})
	}
	cl.Env.RunUntil(10 * sim.Second)
	if done != 4 {
		t.Fatalf("%d/4 cross-spine transfers completed", done)
	}
	if viaSpine[0] == 0 || viaSpine[1] == 0 {
		t.Errorf("spine traffic split %v: destination spreading left a spine idle", viaSpine)
	}
}

func TestTreeTopologyBulkIntegrity(t *testing.T) {
	cfg := TreeOneLink1G(6, 2, 1)
	cl := New(cfg)
	conns := cl.FullMesh()
	const n = 128 * 1024
	src := cl.Nodes[0].EP.Alloc(n)
	dst := cl.Nodes[5].EP.Alloc(n)
	for i := 0; i < n; i++ {
		cl.Nodes[0].EP.Mem()[src+uint64(i)] = byte(i * 11)
	}
	ok := false
	cl.Env.Go("m", func(p *sim.Proc) {
		conns[0][5].MustDo(p, core.Op{Remote: dst, Local: src, Size: n, Kind: frame.OpWrite}).Wait(p)
		ok = true
	})
	cl.Env.RunUntil(10 * sim.Second)
	if !ok {
		t.Fatal("cross-core bulk transfer did not complete")
	}
	for i := 0; i < n; i++ {
		if cl.Nodes[5].EP.Mem()[dst+uint64(i)] != byte(i*11) {
			t.Fatalf("byte %d corrupted", i)
		}
	}
}

func TestTreeOversubscriptionCongests(t *testing.T) {
	// All four nodes of group 0 blast nodes of group 1 through a single
	// 1-wide trunk: the trunk must congest (drops) yet the protocol
	// must deliver everything.
	cfg := TreeOneLink1G(8, 4, 1)
	cfg.Core.RTO = 1 * sim.Millisecond
	cl := New(cfg)
	conns := cl.FullMesh()
	const n = 256 * 1024
	done := 0
	for s := 0; s < 4; s++ {
		s := s
		src := cl.Nodes[s].EP.Alloc(n)
		dst := cl.Nodes[4+s].EP.Alloc(n)
		cl.Env.Go(fmt.Sprintf("s%d", s), func(p *sim.Proc) {
			conns[s][4+s].MustDo(p, core.Op{Remote: dst, Local: src, Size: n, Kind: frame.OpWrite}).Wait(p)
			done++
		})
	}
	cl.Env.RunUntil(60 * sim.Second)
	if done != 4 {
		t.Fatalf("only %d/4 transfers completed through congested trunk", done)
	}
	r := Collect2(cl)
	if r.SwitchDrops == 0 {
		t.Error("no congestion drops despite 4:1 oversubscription")
	}
}

// Collect2 is a helper aliasing Collect for the test above (kept
// separate to exercise the exported method path).
func Collect2(cl *Cluster) NetReport { return cl.Collect() }
