// Package phys models the physical communication substrate of the
// evaluation clusters in IPPS'07 §3: full-duplex Ethernet links,
// store-and-forward switches with finite output queues, and NICs with
// DMA engines, receive rings and maskable interrupts.
//
// The models stand in for the paper's Broadcom Tigon 3 / Myricom 10G
// NICs and D-Link / HP ProCurve switches (see DESIGN.md). Every
// protocol-visible phenomenon — serialization delay, congestion loss at
// switch queues, random bit-error loss, interrupt coalescing — is
// produced explicitly so the protocol layer above runs unmodified.
package phys

import (
	"fmt"
	"sync"

	"multiedge/internal/frame"
	"multiedge/internal/sim"
)

// Frame is a frame in flight: the encoded buffer plus cached addressing
// so switches forward without re-parsing the whole header.
//
// Frames come in two flavors. A literal &Frame{...} owns a plain heap
// buffer and is garbage-collected; Release is a no-op on it, so tests
// and cold control paths need no lifecycle discipline. A pooled frame
// (NewPooledFrame) owns a frame.Buf from the buffer pool and MUST be
// released at exactly one death point: the drop that loses it, or the
// end of receive dispatch (see DESIGN.md §13). The phys layer releases
// frames it kills (drop-tail, link loss, failed links, misaddressing,
// unknown switch destinations); delivery transfers ownership to the
// receiver.
type Frame struct {
	Buf []byte
	Dst frame.Addr
	Src frame.Addr

	// Ecn is the congestion-experienced mark: set by a congested output
	// queue the frame traverses (see OutPort.SetEcnThreshold) and read by
	// the receiving protocol layer. It travels out of band — alongside
	// the buffer rather than inside it — because the protocol header is
	// CRC-covered end to end; real switches rewrite the ECN field and fix
	// up checksums, which this models without giving switches write
	// access to protocol bytes. Zero unless a port marks it, so runs
	// without ECN thresholds are untouched.
	Ecn bool

	pb     *frame.Buf // pooled buffer this frame owns (nil if Buf is plain)
	pooled bool       // the Frame struct itself came from framePool
}

// Len returns the stored frame length in bytes.
func (f *Frame) Len() int { return len(f.Buf) }

var framePool = sync.Pool{New: func() any { return &Frame{} }}

// NewPooledFrame builds a frame around a pooled buffer: buf must alias
// pb's storage (typically frame.EncodeInto(pb.Bytes(), ...)). The
// returned frame owns both the Frame record and the buffer until
// Release.
func NewPooledFrame(pb *frame.Buf, buf []byte, dst, src frame.Addr) *Frame {
	f := framePool.Get().(*Frame)
	f.Buf, f.Dst, f.Src = buf, dst, src
	f.Ecn = false
	f.pb, f.pooled = pb, true
	return f
}

// Release returns a pooled frame's buffer and record to their pools.
// It is a no-op on frames built as plain literals, so every death
// point can call it unconditionally.
func (f *Frame) Release() {
	if f == nil || !f.pooled {
		return
	}
	pb := f.pb
	f.Buf, f.pb, f.pooled = nil, nil, false
	frame.PutBuf(pb)
	framePool.Put(f)
}

// clone copies a frame into a fresh pooled frame. The corrupt and
// duplicate fault paths use it so no two in-flight deliveries ever
// alias one buffer.
func (f *Frame) clone() *Frame {
	pb := frame.GetBuf()
	var buf []byte
	if n := len(f.Buf); n <= cap(pb.Bytes()) {
		buf = pb.Bytes()[:n]
	} else {
		buf = make([]byte, n) // oversized foreign frame; keep pb owned for symmetry
	}
	copy(buf, f.Buf)
	c := NewPooledFrame(pb, buf, f.Dst, f.Src)
	c.Ecn = f.Ecn
	return c
}

// Receiver is anything that can accept a frame arriving off a link: a NIC
// or a switch port. DeliverFrame runs in scheduler context at the
// frame's arrival time (after the last bit is received — store and
// forward).
type Receiver interface {
	DeliverFrame(f *Frame)
}

// LinkParams describes one physical link technology.
type LinkParams struct {
	// PsPerByte is the serialization time in picoseconds per byte:
	// 8000 for 1-GBit/s Ethernet, 800 for 10-GBit/s.
	PsPerByte int64
	// Delay is the one-way propagation plus PHY latency.
	Delay sim.Time
	// LossProb is the probability a frame is lost to a transient error
	// (bit error, ...) on one traversal of the link. Lost frames are
	// those that would fail the receiver's FCS check, so they are
	// counted and discarded before delivery (as real NICs do).
	LossProb float64
	// DupProb is the probability a frame is delivered twice (e.g. a
	// PHY-level retransmission artifact): adversarial-testing knob.
	DupProb float64
	// CorruptProb is the probability a frame is delivered with a
	// flipped byte that the link-level FCS fails to catch, exercising
	// the protocol header checksum. Real Ethernet lets roughly one in
	// 4 billion errored frames through the FCS; tests dial this up.
	CorruptProb float64
}

// Gigabit returns parameters for 1-GBit/s Ethernet.
func Gigabit() LinkParams { return LinkParams{PsPerByte: 8000, Delay: 300 * sim.Nanosecond} }

// TenGigabit returns parameters for 10-GBit/s Ethernet.
func TenGigabit() LinkParams { return LinkParams{PsPerByte: 800, Delay: 300 * sim.Nanosecond} }

// BytesPerSec returns the raw link rate in bytes per second.
func (lp LinkParams) BytesPerSec() float64 { return 1e12 / float64(lp.PsPerByte) }

// wireTime returns how long a frame of stored length n occupies the wire,
// including preamble, FCS and inter-frame gap.
func (lp LinkParams) wireTime(n int) sim.Time {
	return sim.Time(int64(frame.WireLen(n)) * lp.PsPerByte / 1000)
}

// OutPort is the transmit side of one link direction: a FIFO of frames
// serialized onto the wire at the link rate. A finite Capacity makes it a
// drop-tail switch output queue; Capacity 0 means unbounded (a NIC
// transmit ring whose occupancy the protocol layer already bounds with
// its flow-control window).
type OutPort struct {
	env      *sim.Env
	name     string
	params   LinkParams
	peer     Receiver
	capacity int

	queued    int      // frames accepted but not yet fully transmitted
	ecnThresh int      // queue depth at which accepted frames are ECN-marked (0 = off)
	avail     sim.Time // when the wire becomes free
	onTx      func(f *Frame)
	failed    bool // hard link failure: everything transmitted is lost
	condemned int  // frames queued while failed: lost even if Restore precedes their tx
	drop      func(f *Frame) bool
	mangler   Mangler
	txFn      func(any) // long-lived tx-completion callback (arg: *Frame)
	deliverFn func(any) // long-lived delivery callback (arg: *Frame)

	// Counters.
	TxFrames    uint64
	TxBytes     uint64
	DropsFull   uint64 // drop-tail losses (congestion)
	EcnMarks    uint64 // frames ECN-marked by this queue (SetEcnThreshold)
	DropsErr    uint64 // transient-error losses
	DropsFailed uint64 // frames lost to a hard link failure
	Duplicated  uint64 // adversarial duplications injected
	Corrupted   uint64 // adversarial corruptions injected
	MaxQueue    int
}

// NewOutPort creates a transmit port feeding peer. capacity is the
// drop-tail queue limit in frames (0 = unbounded).
func NewOutPort(env *sim.Env, name string, params LinkParams, peer Receiver, capacity int) *OutPort {
	o := &OutPort{env: env, name: name, params: params, peer: peer, capacity: capacity}
	o.txFn = func(x any) { o.txComplete(x.(*Frame)) }
	o.deliverFn = func(x any) { o.peer.DeliverFrame(x.(*Frame)) }
	return o
}

// SetOnTx registers a callback invoked when a frame finishes leaving the
// wire (transmit completion, used by NICs to signal the host).
func (o *OutPort) SetOnTx(fn func(f *Frame)) { o.onTx = fn }

// SetEcnThreshold arms ECN-style congestion marking: every frame
// accepted while the queue (including the frame itself) holds at least
// n frames is marked congestion-experienced. Marking happens at
// enqueue — before drop-tail would fire at Capacity — so a threshold
// below the capacity lets the transport throttle before the queue
// overflows. 0 (the default) disables marking, leaving every existing
// run untouched.
func (o *OutPort) SetEcnThreshold(n int) { o.ecnThresh = n }

// EcnThreshold returns the armed marking threshold (0 = off).
func (o *OutPort) EcnThreshold() int { return o.ecnThresh }

// Queued returns the number of frames accepted but not yet transmitted.
func (o *OutPort) Queued() int { return o.queued }

// Backlog returns how long the wire will stay busy with already-queued
// frames: the serialization backlog. Adaptive striping uses it to steer
// frames to the rail that will drain first, which is what makes
// heterogeneous rails (1-GbE next to 10-GbE) usable at their combined
// rate instead of the slowest rail's.
func (o *OutPort) Backlog() sim.Time {
	now := o.env.Now()
	if o.avail <= now {
		return 0
	}
	return o.avail - now
}

// Fail hard-fails the port: every frame that reaches the head of its
// queue from now on is lost (a dead cable, a wedged switch port). The
// upper layers see it as 100% loss in this direction until Restore.
//
// Frames queued when Fail is called — and any accepted while the port
// stays failed — are condemned: they count in DropsFailed even if
// Restore runs before they finish serializing, so failure accounting is
// a deterministic function of the fault timeline and not of how Restore
// races the serialization backlog.
func (o *OutPort) Fail() {
	o.failed = true
	o.condemned = o.queued
}

// Restore clears a hard failure injected with Fail.
func (o *OutPort) Restore() { o.failed = false }

// IsFailed reports whether the port is currently hard-failed.
func (o *OutPort) IsFailed() bool { return o.failed }

// SetDropFilter installs a deterministic loss injector: every frame for
// which fn returns true is lost on this port (counted in DropsErr, like
// a transient error). Unlike LossProb this is exact, so tests can kill
// one specific frame — the k-th data frame, the first NACK, a probe —
// and assert the protocol repairs precisely that situation. nil removes
// the filter. The filter runs when the frame finishes serializing.
func (o *OutPort) SetDropFilter(fn func(f *Frame) bool) { o.drop = fn }

// Mangle is the fate a fault injector assigns one frame. The zero value
// delivers the frame untouched.
type Mangle struct {
	// Drop loses the frame (counted in DropsErr, like a transient
	// error).
	Drop bool
	// Corrupt flips one byte of the delivered copy, exercising the
	// protocol checksum (counted in Corrupted).
	Corrupt bool
	// Dup delivers the frame a second time one wire-time later
	// (counted in Duplicated).
	Dup bool
	// Delay adds extra one-way latency before delivery. Frames given
	// different delays may reorder.
	Delay sim.Time
}

// Mangler decides per frame what the fault injector does to it. It runs
// when the frame finishes serializing, before the port's probabilistic
// loss/corrupt/dup draws, so a scripted fault timeline composes with the
// link's own error model. A nil mangler adds no work and — critically
// for reproducibility — no random-number draws, so installing faults
// only in chaos runs leaves every clean run bit-identical.
type Mangler func(f *Frame) Mangle

// SetMangler installs (or with nil removes) the port's fault injector.
func (o *OutPort) SetMangler(fn Mangler) { o.mangler = fn }

// Send queues a frame for transmission. It reports false if the queue is
// full, in which case the frame is dropped (congestion loss) and — as at
// every death point — a pooled frame is released.
func (o *OutPort) Send(f *Frame) bool {
	if o.capacity > 0 && o.queued >= o.capacity {
		o.DropsFull++
		f.Release()
		return false
	}
	o.queued++
	if o.queued > o.MaxQueue {
		o.MaxQueue = o.queued
	}
	if o.ecnThresh > 0 && o.queued >= o.ecnThresh && !f.Ecn {
		f.Ecn = true
		o.EcnMarks++
	}
	if o.failed {
		o.condemned++
	}
	e := o.env
	start := e.Now()
	if o.avail > start {
		start = o.avail
	}
	txDone := start + o.params.wireTime(f.Len())
	o.avail = txDone
	e.SchedAtArg(txDone, o.txFn, f)
	return true
}

// txComplete runs when f finishes serializing onto the wire: fault
// injection, probabilistic loss/corrupt/dup draws, then delivery. Every
// branch that loses the frame releases it; delivery hands ownership to
// the receiver.
func (o *OutPort) txComplete(f *Frame) {
	e := o.env
	o.queued--
	o.TxFrames++
	o.TxBytes += uint64(f.Len())
	if o.onTx != nil {
		o.onTx(f)
	}
	if o.condemned > 0 {
		// Serialization completes in FIFO order, so the first
		// `condemned` completions after Fail are exactly the frames
		// that were queued when the failure hit.
		o.condemned--
		o.DropsFailed++
		f.Release()
		return
	}
	if o.failed {
		o.DropsFailed++
		f.Release()
		return
	}
	if o.drop != nil && o.drop(f) {
		o.DropsErr++
		f.Release()
		return
	}
	var m Mangle
	if o.mangler != nil {
		m = o.mangler(f)
	}
	if m.Drop {
		o.DropsErr++
		f.Release()
		return
	}
	if o.params.LossProb > 0 && e.Rand().Float64() < o.params.LossProb {
		o.DropsErr++
		f.Release()
		return
	}
	deliver := f
	corrupt := m.Corrupt
	if o.params.CorruptProb > 0 && e.Rand().Float64() < o.params.CorruptProb {
		corrupt = true
	}
	if corrupt {
		// Flip one byte in a copy, leaving the original bytes intact
		// for the duplicate path below.
		deliver = f.clone()
		deliver.Buf[e.Rand().Intn(len(deliver.Buf))] ^= 1 << uint(e.Rand().Intn(8))
		o.Corrupted++
	}
	arrive := o.params.Delay + m.Delay
	e.SchedAfterArg(arrive, o.deliverFn, deliver)
	dup := m.Dup
	if o.params.DupProb > 0 && e.Rand().Float64() < o.params.DupProb {
		dup = true
	}
	if dup {
		// Deliver a clone, never the same *Frame twice: two in-flight
		// deliveries aliasing one buffer would double-release it.
		o.Duplicated++
		e.SchedAfterArg(arrive+o.params.wireTime(f.Len()), o.deliverFn, f.clone())
	}
	if corrupt {
		// The corrupted copy travelled instead of f; f dies here.
		f.Release()
	}
}

// Switch is a store-and-forward Ethernet switch with a static forwarding
// table and drop-tail output queues.
type Switch struct {
	env     *sim.Env
	name    string
	latency sim.Time
	jitter  sim.Time
	table   map[frame.Addr]*OutPort
	defRt   *OutPort // route for addresses not in the table (uplink)

	// Counters.
	Forwarded   uint64
	DropUnknown uint64
}

// SwitchParams configures a switch model.
type SwitchParams struct {
	// Latency is the internal forwarding latency from full frame
	// reception to the head of the output queue.
	Latency sim.Time
	// Jitter is the per-frame forwarding-latency variation (uniform in
	// [0, Jitter)): fabric arbitration, lookup contention, scheduling.
	// Frames from the same input port never reorder (per-flow FIFO is
	// preserved, as in real switches), but independent switches jitter
	// independently — which is what makes frames striped over two
	// switches arrive out of order (IPPS'07 §4 measures 45-50%).
	Jitter sim.Time
	// QueueCap is the per-output-port queue capacity in frames; frames
	// arriving at a full queue are dropped (congestion).
	QueueCap int
}

// DefaultSwitchParams models a commodity store-and-forward switch of the
// paper's era (D-Link DGS-1024T class): ~1.1 us forwarding latency with
// ~1 us variation and a modest per-port packet buffer.
func DefaultSwitchParams() SwitchParams {
	return SwitchParams{Latency: 1100 * sim.Nanosecond, Jitter: 1000 * sim.Nanosecond, QueueCap: 160}
}

// NewSwitch creates an empty switch; attach stations with AttachStation.
func NewSwitch(env *sim.Env, name string, params SwitchParams) *Switch {
	return &Switch{env: env, name: name, latency: params.Latency, jitter: params.Jitter,
		table: make(map[frame.Addr]*OutPort)}
}

// swInPort is one switch input port; it receives frames from a station's
// transmit side and forwards them. lastFwd enforces per-input-port FIFO
// despite jitter.
type swInPort struct {
	sw      *Switch
	lastFwd sim.Time
	fwdFn   func(any) // long-lived forwarding callback (arg: *Frame)
}

func newSwInPort(sw *Switch) *swInPort {
	p := &swInPort{sw: sw}
	p.fwdFn = func(x any) { p.forward(x.(*Frame)) }
	return p
}

func (p *swInPort) DeliverFrame(f *Frame) {
	sw := p.sw
	d := sw.latency
	if sw.jitter > 0 {
		d += sim.Time(sw.env.Rand().Int63n(int64(sw.jitter)))
	}
	at := sw.env.Now() + d
	if at < p.lastFwd {
		at = p.lastFwd // never reorder frames from the same input port
	}
	p.lastFwd = at
	sw.env.SchedAtArg(at, p.fwdFn, f)
}

func (p *swInPort) forward(f *Frame) {
	sw := p.sw
	out, ok := sw.table[f.Dst]
	if !ok {
		if sw.defRt == nil {
			sw.DropUnknown++
			f.Release()
			return
		}
		out = sw.defRt
	}
	sw.Forwarded++
	out.Send(f) // drop counted (and the frame released) inside OutPort if queue full
}

// AttachStation connects a station (NIC) with the given address to the
// switch over a link with the given parameters and the switch's queue
// policy, returning the transmit port the station must send into.
func (sw *Switch) AttachStation(addr frame.Addr, station Receiver, lp LinkParams, queueCap int) *OutPort {
	// Downlink: switch -> station, with the switch's drop-tail queue.
	down := NewOutPort(sw.env, fmt.Sprintf("%s->%v", sw.name, addr), lp, station, queueCap)
	sw.table[addr] = down
	// Uplink: station -> switch. The station's own ring bounds it.
	up := NewOutPort(sw.env, fmt.Sprintf("%v->%s", addr, sw.name), lp, newSwInPort(sw), 0)
	return up
}

// OutPortFor exposes the switch's downlink port toward addr (for tests
// and stats collection).
func (sw *Switch) OutPortFor(addr frame.Addr) *OutPort { return sw.table[addr] }

// SetDefaultRoute installs the port frames with unknown destinations
// take — the uplink of an edge switch in a hierarchical fabric
// (IPPS'07 §6 future work: "communication paths that consist of
// multiple switches").
func (sw *Switch) SetDefaultRoute(o *OutPort) { sw.defRt = o }

// ConnectSwitch wires a trunk from sw toward peer (one direction): a
// transmit port on sw whose frames arrive at peer's forwarding logic.
// Call once per direction. lp describes the trunk; a link-aggregated
// trunk of k links is modelled as one link of k times the rate.
func (sw *Switch) ConnectSwitch(peer *Switch, lp LinkParams, queueCap int) *OutPort {
	return NewOutPort(sw.env, sw.name+"->"+peer.name, lp, newSwInPort(peer), queueCap)
}

// Route installs an explicit table entry: frames for addr leave through
// port o.
func (sw *Switch) Route(addr frame.Addr, o *OutPort) { sw.table[addr] = o }

// Host is the protocol layer's view from a NIC: interrupts delivered in
// scheduler context. The host then polls the NIC (PollRx, TakeTxDone).
type Host interface {
	Interrupt(n *NIC)
}

// NICParams configures a NIC model.
type NICParams struct {
	// RxDMAPerFrame and TxDMAPerFrame are fixed per-frame DMA engine
	// setup costs; DMAPsPerByte is the data movement rate over the I/O
	// bus (PCI-X / PCIe of the era: well above link rate so the wire,
	// not the bus, is the bottleneck).
	RxDMAPerFrame sim.Time
	TxDMAPerFrame sim.Time
	DMAPsPerByte  int64
	// IntrDelay is the latency from the NIC deciding to interrupt to
	// the host's handler running.
	IntrDelay sim.Time
	// TxIntrUnmaskable models the paper's 10-GBit/s NIC, which does not
	// allow send-path (transmit-completion) interrupts to be disabled
	// even while the protocol layer is polling (IPPS'07 §4).
	TxIntrUnmaskable bool
	// RxIntrUnmaskable disables the paper's §2.6 interrupt-avoidance
	// scheme entirely: receive interrupts fire even while the protocol
	// thread is polling. The ablation baseline for what masking buys.
	RxIntrUnmaskable bool
	// TxIntrCoalesce raises at most one transmit-completion interrupt
	// per this many completions (hardware moderation).
	TxIntrCoalesce int
}

// DefaultNICParams models a Tigon3-class 1-GBit/s NIC.
func DefaultNICParams() NICParams {
	return NICParams{
		RxDMAPerFrame:  600 * sim.Nanosecond,
		TxDMAPerFrame:  600 * sim.Nanosecond,
		DMAPsPerByte:   400, // 2.5 GByte/s I/O path
		IntrDelay:      900 * sim.Nanosecond,
		TxIntrCoalesce: 8,
	}
}

// Myri10GNICParams models the Myricom 10G-PCIE-8A-C: faster DMA, but
// transmit-completion interrupts cannot be masked (IPPS'07 §4) and
// coalesce poorly, which is the paper's explanation for the 10-GBit/s
// sender-side throughput ceiling (~88% of nominal).
func Myri10GNICParams() NICParams {
	p := DefaultNICParams()
	p.RxDMAPerFrame = 350 * sim.Nanosecond
	p.TxDMAPerFrame = 350 * sim.Nanosecond
	p.DMAPsPerByte = 200 // 5 GByte/s I/O path
	p.TxIntrUnmaskable = true
	p.TxIntrCoalesce = 3
	return p
}

// NIC models one Ethernet interface: a transmit path (DMA then wire) and
// a receive path (DMA into host buffers, then a maskable interrupt). The
// host drains received frames with PollRx and transmit completions with
// TakeTxDone, mirroring the paper's interrupt-avoidance scheme: the
// interrupt handler masks the NIC, a kernel thread polls until no events
// remain, then unmasks.
type NIC struct {
	env    *sim.Env
	name   string
	addr   frame.Addr
	params NICParams
	out    *OutPort
	dma    *sim.Resource
	host   Host

	rxRing      []*Frame // live entries are rxRing[rxHead:]; resets on drain
	rxHead      int      // so steady-state poll churn reuses one backing array
	txDone      int
	txSinceIntr int
	masked      bool
	pending     bool
	txDmaFn     func(any) // long-lived tx-DMA completion (arg: *Frame)
	rxDmaFn     func(any) // long-lived rx-DMA completion (arg: *Frame)
	intrFn      func()    // long-lived interrupt-delivery callback

	// Counters.
	RxFrames   uint64
	RxBytes    uint64
	TxFrames   uint64
	TxBytes    uint64
	Interrupts uint64 // interrupts actually delivered to the host
	RxIntr     uint64
	TxIntr     uint64
	Misaddr    uint64
}

// NewNIC creates a NIC with the given link-layer address.
func NewNIC(env *sim.Env, name string, addr frame.Addr, params NICParams) *NIC {
	if params.TxIntrCoalesce <= 0 {
		params.TxIntrCoalesce = 1
	}
	n := &NIC{
		env: env, name: name, addr: addr, params: params,
		dma: sim.NewResource(name + "/dma"),
	}
	n.txDmaFn = func(x any) {
		f := x.(*Frame)
		n.TxFrames++
		n.TxBytes += uint64(f.Len())
		n.out.Send(f)
	}
	n.rxDmaFn = func(x any) {
		f := x.(*Frame)
		n.RxFrames++
		n.RxBytes += uint64(f.Len())
		n.rxRing = append(n.rxRing, f)
		n.raise(false)
	}
	n.intrFn = func() {
		n.pending = false
		n.Interrupts++
		if n.host != nil {
			n.host.Interrupt(n)
		}
	}
	return n
}

// Addr returns the NIC's link-layer address.
func (n *NIC) Addr() frame.Addr { return n.addr }

// Name returns the NIC name.
func (n *NIC) Name() string { return n.name }

// SetHost installs the protocol layer that receives this NIC's
// interrupts.
func (n *NIC) SetHost(h Host) { n.host = h }

// AttachUplink installs the transmit port toward the switch and registers
// transmit-completion reporting.
func (n *NIC) AttachUplink(up *OutPort) {
	n.out = up
	up.SetOnTx(func(f *Frame) { n.txCompleted(f) })
}

// Transmit hands a frame to the NIC: the DMA engine fetches it from host
// memory, then it queues for the wire. Called by the protocol layer after
// its per-frame send work.
func (n *NIC) Transmit(f *Frame) {
	work := n.params.TxDMAPerFrame + sim.Time(int64(f.Len())*n.params.DMAPsPerByte/1000)
	n.dma.SubmitArg(n.env, work, n.txDmaFn, f)
}

func (n *NIC) txCompleted(_ *Frame) {
	n.txDone++
	n.txSinceIntr++
	if n.txSinceIntr >= n.params.TxIntrCoalesce {
		n.txSinceIntr = 0
		n.raise(true)
	}
}

// DeliverFrame implements Receiver: a frame arrives off the wire, is
// address-filtered, DMA'd into a host buffer, and then an interrupt is
// raised (if unmasked).
func (n *NIC) DeliverFrame(f *Frame) {
	if f.Dst != n.addr && f.Dst != frame.Broadcast {
		n.Misaddr++
		f.Release()
		return
	}
	work := n.params.RxDMAPerFrame + sim.Time(int64(f.Len())*n.params.DMAPsPerByte/1000)
	n.dma.SubmitArg(n.env, work, n.rxDmaFn, f)
}

// raise requests an interrupt. Masked interrupts are suppressed (the
// paper's polling optimization) unless this is a transmit completion on a
// NIC whose send-path interrupts cannot be masked.
func (n *NIC) raise(isTx bool) {
	if n.pending {
		return
	}
	if n.masked {
		if isTx && !n.params.TxIntrUnmaskable {
			return
		}
		if !isTx && !n.params.RxIntrUnmaskable {
			return
		}
	}
	n.pending = true
	if isTx {
		n.TxIntr++
	} else {
		n.RxIntr++
	}
	n.env.SchedAfter(n.params.IntrDelay, n.intrFn)
}

// Mask disables interrupt generation (called by the interrupt handler
// before handing off to the polling protocol thread).
func (n *NIC) Mask() { n.masked = true }

// Unmask re-enables interrupts; if events arrived while masked, an
// interrupt is raised immediately so nothing is lost.
func (n *NIC) Unmask() {
	n.masked = false
	if n.RxPending() || n.txDone > 0 {
		n.raise(false)
	}
}

// PollRx drains and returns all frames DMA'd into host buffers so far.
func (n *NIC) PollRx() []*Frame {
	if n.rxHead == len(n.rxRing) {
		return nil
	}
	out := append([]*Frame(nil), n.rxRing[n.rxHead:]...)
	for i := n.rxHead; i < len(n.rxRing); i++ {
		n.rxRing[i] = nil
	}
	n.rxRing, n.rxHead = n.rxRing[:0], 0
	return out
}

// PollRxOne removes and returns the oldest frame in the host receive
// buffers, or nil when none is pending.
func (n *NIC) PollRxOne() *Frame {
	if n.rxHead == len(n.rxRing) {
		return nil
	}
	f := n.rxRing[n.rxHead]
	n.rxRing[n.rxHead] = nil
	n.rxHead++
	if n.rxHead == len(n.rxRing) {
		n.rxRing, n.rxHead = n.rxRing[:0], 0
	}
	return f
}

// RxPending reports whether received frames await the host.
func (n *NIC) RxPending() bool { return len(n.rxRing) > n.rxHead }

// TakeTxDone returns and clears the count of transmit completions since
// the last call.
func (n *NIC) TakeTxDone() int {
	c := n.txDone
	n.txDone = 0
	return c
}

// TxQueueLen reports frames queued at the NIC's transmit port.
func (n *NIC) TxQueueLen() int { return n.out.Queued() }

// OutPort exposes the NIC's uplink port (stats, tests).
func (n *NIC) OutPort() *OutPort { return n.out }
