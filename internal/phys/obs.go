package phys

import (
	"strconv"

	"multiedge/internal/obs"
)

// RxQueueLen returns the number of received frames waiting in the ring
// for the host to poll — the receive-side counterpart of TxQueueLen,
// sampled by the observability layer as a protocol-CPU backpressure
// signal.
func (n *NIC) RxQueueLen() int { return len(n.rxRing) }

// Collector publishes the NIC's counters (and its transmit port's
// counters) into an obs registry at gather time. node and link identify
// the NIC's position in the cluster.
func (n *NIC) Collector(node, link int) obs.Collector {
	labels := []obs.Label{obs.NodeLabel(node), obs.L("link", strconv.Itoa(link))}
	return func(emit func(obs.Sample)) {
		c := func(name string, v uint64) {
			emit(obs.Sample{Name: name, Labels: labels, Value: float64(v), Type: obs.TypeCounter})
		}
		c("nic_rx_frames_total", n.RxFrames)
		c("nic_rx_bytes_total", n.RxBytes)
		c("nic_tx_frames_total", n.TxFrames)
		c("nic_tx_bytes_total", n.TxBytes)
		c("nic_interrupts_total", n.Interrupts)
		c("nic_rx_interrupts_total", n.RxIntr)
		c("nic_tx_interrupts_total", n.TxIntr)
		c("nic_misaddressed_total", n.Misaddr)
		n.out.collect("nic_port", labels, emit)
	}
}

// Collector publishes the port's counters under the given metric prefix
// ("nic_port", "switch_port", "trunk") and labels.
func (o *OutPort) Collector(prefix string, labels ...obs.Label) obs.Collector {
	return func(emit func(obs.Sample)) { o.collect(prefix, labels, emit) }
}

func (o *OutPort) collect(prefix string, labels []obs.Label, emit func(obs.Sample)) {
	c := func(name string, v uint64) {
		emit(obs.Sample{Name: prefix + name, Labels: labels, Value: float64(v), Type: obs.TypeCounter})
	}
	c("_tx_frames_total", o.TxFrames)
	c("_tx_bytes_total", o.TxBytes)
	c("_drops_full_total", o.DropsFull)
	c("_drops_err_total", o.DropsErr)
	c("_drops_failed_total", o.DropsFailed)
	emit(obs.Sample{Name: prefix + "_queue_max", Labels: labels,
		Value: float64(o.MaxQueue), Type: obs.TypeGauge})
}
