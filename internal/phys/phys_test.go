package phys

import (
	"testing"
	"testing/quick"

	"multiedge/internal/frame"
	"multiedge/internal/sim"
)

// sink is a Receiver recording arrival times.
type sink struct {
	frames []*Frame
	times  []sim.Time
	env    *sim.Env
}

func (s *sink) DeliverFrame(f *Frame) {
	s.frames = append(s.frames, f)
	s.times = append(s.times, s.env.Now())
}

func mkFrame(dst, src frame.Addr, payload int) *Frame {
	h := frame.Header{Type: frame.TypeData, OpType: frame.OpWrite}
	buf := frame.MustEncode(dst, src, &h, make([]byte, payload))
	return &Frame{Buf: buf, Dst: dst, Src: src}
}

func TestLinkParamRates(t *testing.T) {
	if r := Gigabit().BytesPerSec(); r != 125e6 {
		t.Errorf("1G rate = %v B/s, want 125e6", r)
	}
	if r := TenGigabit().BytesPerSec(); r != 1.25e9 {
		t.Errorf("10G rate = %v B/s, want 1.25e9", r)
	}
}

func TestWireTime(t *testing.T) {
	lp := Gigabit()
	// A stored frame of n bytes occupies WireLen(n) byte-times at
	// 8 ns/byte on 1-GBit/s.
	n := 1000
	want := sim.Time(frame.WireLen(n) * 8)
	if got := lp.wireTime(n); got != want {
		t.Errorf("wireTime(%d) = %v, want %v", n, got, want)
	}
}

func TestOutPortSerialization(t *testing.T) {
	e := sim.NewEnv(1)
	s := &sink{env: e}
	lp := LinkParams{PsPerByte: 8000, Delay: 100}
	o := NewOutPort(e, "t", lp, s, 0)
	f := mkFrame(1, 2, 1000)
	wt := lp.wireTime(f.Len())
	e.After(0, func() {
		o.Send(f)
		o.Send(f)
		o.Send(f)
	})
	e.Run()
	if len(s.times) != 3 {
		t.Fatalf("delivered %d frames, want 3", len(s.times))
	}
	for i, at := range s.times {
		want := sim.Time(i+1)*wt + 100
		if at != want {
			t.Errorf("frame %d arrived at %v, want %v", i, at, want)
		}
	}
	if o.TxFrames != 3 || o.TxBytes != uint64(3*f.Len()) {
		t.Errorf("counters: %d frames %d bytes", o.TxFrames, o.TxBytes)
	}
}

func TestOutPortQueueDrop(t *testing.T) {
	e := sim.NewEnv(1)
	s := &sink{env: e}
	o := NewOutPort(e, "t", Gigabit(), s, 2)
	f := mkFrame(1, 2, 1400)
	var accepted int
	e.After(0, func() {
		for i := 0; i < 5; i++ {
			if o.Send(f) {
				accepted++
			}
		}
	})
	e.Run()
	if accepted != 2 {
		t.Errorf("accepted %d, want 2 (capacity)", accepted)
	}
	if o.DropsFull != 3 {
		t.Errorf("DropsFull = %d, want 3", o.DropsFull)
	}
	if len(s.frames) != 2 {
		t.Errorf("delivered %d", len(s.frames))
	}
	if o.MaxQueue != 2 {
		t.Errorf("MaxQueue = %d, want 2", o.MaxQueue)
	}
}

func TestOutPortQueueDrains(t *testing.T) {
	e := sim.NewEnv(1)
	s := &sink{env: e}
	o := NewOutPort(e, "t", Gigabit(), s, 2)
	f := mkFrame(1, 2, 100)
	wt := Gigabit().wireTime(f.Len())
	e.After(0, func() { o.Send(f); o.Send(f) })
	// After both have left the wire, there is room again.
	e.After(2*wt+1, func() {
		if !o.Send(f) {
			t.Error("send after drain rejected")
		}
	})
	e.Run()
	if len(s.frames) != 3 {
		t.Errorf("delivered %d, want 3", len(s.frames))
	}
}

func TestOutPortLoss(t *testing.T) {
	e := sim.NewEnv(42)
	s := &sink{env: e}
	lp := Gigabit()
	lp.LossProb = 0.5
	o := NewOutPort(e, "t", lp, s, 0)
	n := 1000
	e.After(0, func() {
		for i := 0; i < n; i++ {
			o.Send(mkFrame(1, 2, 100))
		}
	})
	e.Run()
	lost := int(o.DropsErr)
	if got := len(s.frames) + lost; got != n {
		t.Fatalf("delivered+lost = %d, want %d", got, n)
	}
	if lost < 400 || lost > 600 {
		t.Errorf("lost %d of %d at p=0.5 (improbable)", lost, n)
	}
}

func TestSwitchForwarding(t *testing.T) {
	e := sim.NewEnv(1)
	params := DefaultSwitchParams()
	params.Jitter = 0 // exact-timing test
	sw := NewSwitch(e, "sw", params)
	a, b := &sink{env: e}, &sink{env: e}
	addrA, addrB := frame.NewAddr(0, 0), frame.NewAddr(1, 0)
	upA := sw.AttachStation(addrA, a, Gigabit(), 16)
	sw.AttachStation(addrB, b, Gigabit(), 16)
	f := mkFrame(addrB, addrA, 500)
	e.After(0, func() { upA.Send(f) })
	e.Run()
	if len(b.frames) != 1 || len(a.frames) != 0 {
		t.Fatalf("b got %d, a got %d; want 1, 0", len(b.frames), len(a.frames))
	}
	if sw.Forwarded != 1 {
		t.Errorf("Forwarded = %d", sw.Forwarded)
	}
	// Store-and-forward: arrival includes two serializations, two
	// propagation delays and switch latency.
	wt := Gigabit().wireTime(f.Len())
	want := 2*wt + 2*Gigabit().Delay + params.Latency
	if b.times[0] != want {
		t.Errorf("arrival at %v, want %v", b.times[0], want)
	}
}

func TestSwitchUnknownDestination(t *testing.T) {
	e := sim.NewEnv(1)
	sw := NewSwitch(e, "sw", DefaultSwitchParams())
	a := &sink{env: e}
	addrA := frame.NewAddr(0, 0)
	upA := sw.AttachStation(addrA, a, Gigabit(), 16)
	e.After(0, func() { upA.Send(mkFrame(frame.NewAddr(9, 0), addrA, 100)) })
	e.Run()
	if sw.DropUnknown != 1 {
		t.Errorf("DropUnknown = %d, want 1", sw.DropUnknown)
	}
}

func TestSwitchCongestionDrop(t *testing.T) {
	// Two stations blast a third: the shared output queue must overflow.
	e := sim.NewEnv(1)
	sw := NewSwitch(e, "sw", SwitchParams{Latency: 1000, QueueCap: 4})
	var ups []*OutPort
	victim := &sink{env: e}
	vAddr := frame.NewAddr(2, 0)
	for i := 0; i < 2; i++ {
		s := &sink{env: e}
		ups = append(ups, sw.AttachStation(frame.NewAddr(i, 0), s, Gigabit(), 4))
	}
	sw.AttachStation(vAddr, victim, Gigabit(), 4)
	e.After(0, func() {
		for i := 0; i < 50; i++ {
			ups[0].Send(mkFrame(vAddr, frame.NewAddr(0, 0), 1400))
			ups[1].Send(mkFrame(vAddr, frame.NewAddr(1, 0), 1400))
		}
	})
	e.Run()
	down := sw.OutPortFor(vAddr)
	if down.DropsFull == 0 {
		t.Error("no congestion drops despite 2:1 overload into tiny queue")
	}
	if len(victim.frames)+int(down.DropsFull) != 100 {
		t.Errorf("delivered %d + dropped %d != 100", len(victim.frames), down.DropsFull)
	}
}

// testHost records interrupts and optionally drains on each one.
type testHost struct {
	nics   []*NIC
	intrs  int
	drain  bool
	gotRx  int
	gotTx  int
	unmask bool
}

func (h *testHost) Interrupt(n *NIC) {
	h.intrs++
	n.Mask()
	if h.drain {
		h.gotRx += len(n.PollRx())
		h.gotTx += n.TakeTxDone()
	}
	if h.unmask {
		n.Unmask()
	}
}

func TestNICReceivePath(t *testing.T) {
	e := sim.NewEnv(1)
	addr := frame.NewAddr(3, 0)
	n := NewNIC(e, "nic", addr, DefaultNICParams())
	h := &testHost{drain: true, unmask: true}
	n.SetHost(h)
	e.After(0, func() { n.DeliverFrame(mkFrame(addr, frame.NewAddr(1, 0), 800)) })
	e.Run()
	if h.intrs != 1 {
		t.Fatalf("interrupts = %d, want 1", h.intrs)
	}
	if h.gotRx != 1 {
		t.Fatalf("host drained %d rx frames, want 1", h.gotRx)
	}
	if n.RxFrames != 1 {
		t.Errorf("RxFrames = %d", n.RxFrames)
	}
}

func TestNICAddressFilter(t *testing.T) {
	e := sim.NewEnv(1)
	addr := frame.NewAddr(3, 0)
	n := NewNIC(e, "nic", addr, DefaultNICParams())
	h := &testHost{drain: true, unmask: true}
	n.SetHost(h)
	e.After(0, func() { n.DeliverFrame(mkFrame(frame.NewAddr(4, 0), frame.NewAddr(1, 0), 100)) })
	e.Run()
	if n.Misaddr != 1 || h.intrs != 0 {
		t.Errorf("Misaddr = %d intrs = %d, want 1, 0", n.Misaddr, h.intrs)
	}
}

func TestNICBroadcastAccepted(t *testing.T) {
	e := sim.NewEnv(1)
	addr := frame.NewAddr(3, 0)
	n := NewNIC(e, "nic", addr, DefaultNICParams())
	h := &testHost{drain: true, unmask: true}
	n.SetHost(h)
	e.After(0, func() { n.DeliverFrame(mkFrame(frame.Broadcast, frame.NewAddr(1, 0), 100)) })
	e.Run()
	if h.gotRx != 1 {
		t.Errorf("broadcast frame not delivered")
	}
}

func TestNICInterruptCoalescingWhileMasked(t *testing.T) {
	// Frames arriving while the NIC is masked must not raise interrupts;
	// Unmask with pending work must raise exactly one.
	e := sim.NewEnv(1)
	addr := frame.NewAddr(3, 0)
	n := NewNIC(e, "nic", addr, DefaultNICParams())
	h := &testHost{} // does not drain, does not unmask
	n.SetHost(h)
	e.After(0, func() {
		for i := 0; i < 10; i++ {
			n.DeliverFrame(mkFrame(addr, frame.NewAddr(1, 0), 200))
		}
	})
	e.Run()
	if h.intrs != 1 {
		t.Fatalf("interrupts = %d, want 1 (handler masked, no unmask)", h.intrs)
	}
	// Now drain and unmask: remaining frames are in the ring; unmask
	// must re-raise because the ring is non-empty.
	got := 0
	e.After(0, func() { got = len(n.PollRx()) })
	e.Run()
	if got != 10 {
		t.Fatalf("polled %d frames, want 10", got)
	}
	fired := false
	e.After(0, func() {
		n.DeliverFrame(mkFrame(addr, frame.NewAddr(1, 0), 200))
	})
	e.Run() // frame lands in ring; masked, no interrupt
	if h.intrs != 1 {
		t.Fatalf("masked delivery raised interrupt")
	}
	e.After(0, func() { n.Unmask(); fired = true })
	e.Run()
	if !fired || h.intrs != 2 {
		t.Fatalf("unmask with pending work: interrupts = %d, want 2", h.intrs)
	}
}

func TestNICTransmitPath(t *testing.T) {
	e := sim.NewEnv(1)
	s := &sink{env: e}
	addr := frame.NewAddr(0, 0)
	n := NewNIC(e, "nic", addr, DefaultNICParams())
	up := NewOutPort(e, "up", Gigabit(), s, 0)
	n.AttachUplink(up)
	h := &testHost{drain: true, unmask: true}
	n.SetHost(h)
	f := mkFrame(frame.NewAddr(1, 0), addr, 1000)
	e.After(0, func() { n.Transmit(f) })
	e.Run()
	if len(s.frames) != 1 {
		t.Fatalf("transmitted %d frames", len(s.frames))
	}
	if n.TxFrames != 1 {
		t.Errorf("TxFrames = %d", n.TxFrames)
	}
	// DMA happens before the wire: arrival strictly later than wire+delay.
	min := Gigabit().wireTime(f.Len()) + Gigabit().Delay
	if s.times[0] <= min {
		t.Errorf("arrival %v too early (no DMA time)", s.times[0])
	}
}

func TestNICTxCompletionCoalescing(t *testing.T) {
	e := sim.NewEnv(1)
	s := &sink{env: e}
	addr := frame.NewAddr(0, 0)
	p := DefaultNICParams()
	p.TxIntrCoalesce = 4
	n := NewNIC(e, "nic", addr, p)
	n.AttachUplink(NewOutPort(e, "up", Gigabit(), s, 0))
	h := &testHost{drain: true, unmask: true}
	n.SetHost(h)
	e.After(0, func() {
		for i := 0; i < 8; i++ {
			n.Transmit(mkFrame(frame.NewAddr(1, 0), addr, 500))
		}
	})
	e.Run()
	if h.gotTx != 8 {
		t.Fatalf("host saw %d tx completions, want 8", h.gotTx)
	}
	if n.TxIntr != 2 {
		t.Errorf("TxIntr = %d, want 2 (coalesce 4)", n.TxIntr)
	}
}

func TestNICUnmaskableTxInterrupts(t *testing.T) {
	// A 10G-style NIC raises transmit interrupts even while masked.
	e := sim.NewEnv(1)
	s := &sink{env: e}
	addr := frame.NewAddr(0, 0)
	p := Myri10GNICParams()
	p.TxIntrCoalesce = 1
	n := NewNIC(e, "nic", addr, p)
	n.AttachUplink(NewOutPort(e, "up", TenGigabit(), s, 0))
	h := &testHost{drain: true} // never unmasks
	n.SetHost(h)
	e.After(0, func() {
		n.Mask()
		n.Transmit(mkFrame(frame.NewAddr(1, 0), addr, 500))
	})
	e.Run()
	if h.intrs != 1 {
		t.Fatalf("masked 10G NIC delivered %d tx interrupts, want 1", h.intrs)
	}
	// The 1G NIC must stay silent in the same situation.
	n2 := NewNIC(e, "nic2", addr, DefaultNICParams())
	n2.AttachUplink(NewOutPort(e, "up2", Gigabit(), s, 0))
	h2 := &testHost{drain: true}
	n2.SetHost(h2)
	e.After(0, func() {
		n2.Mask()
		n2.Transmit(mkFrame(frame.NewAddr(1, 0), addr, 500))
	})
	e.Run()
	if h2.intrs != 0 {
		t.Fatalf("masked 1G NIC delivered %d tx interrupts, want 0", h2.intrs)
	}
}

func TestNICDMASerializes(t *testing.T) {
	// Two frames delivered simultaneously must DMA one after another.
	e := sim.NewEnv(1)
	addr := frame.NewAddr(3, 0)
	n := NewNIC(e, "nic", addr, DefaultNICParams())
	var ringAt []sim.Time
	h := &testHost{}
	n.SetHost(h)
	_ = h
	e.After(0, func() {
		n.DeliverFrame(mkFrame(addr, frame.NewAddr(1, 0), 1000))
		n.DeliverFrame(mkFrame(addr, frame.NewAddr(1, 0), 1000))
	})
	// Observe ring growth over time.
	for i := sim.Time(1); i <= 10; i++ {
		i := i
		e.After(i*500, func() {
			if n.RxPending() {
				ringAt = append(ringAt, e.Now())
			}
		})
	}
	e.Run()
	per := DefaultNICParams().RxDMAPerFrame +
		sim.Time(int64(mkFrame(addr, 0, 1000).Len())*DefaultNICParams().DMAPsPerByte/1000)
	if n.dma.BusyTime() != 2*per {
		t.Errorf("DMA busy = %v, want %v", n.dma.BusyTime(), 2*per)
	}
}

func TestEndToEndThroughSwitch(t *testing.T) {
	// NIC -> switch -> NIC, full path with real encode/decode.
	e := sim.NewEnv(1)
	sw := NewSwitch(e, "sw", DefaultSwitchParams())
	aAddr, bAddr := frame.NewAddr(0, 0), frame.NewAddr(1, 0)
	na := NewNIC(e, "a", aAddr, DefaultNICParams())
	nb := NewNIC(e, "b", bAddr, DefaultNICParams())
	na.AttachUplink(sw.AttachStation(aAddr, na, Gigabit(), 64))
	nb.AttachUplink(sw.AttachStation(bAddr, nb, Gigabit(), 64))
	hb := &testHost{drain: true, unmask: true}
	nb.SetHost(hb)
	na.SetHost(&testHost{drain: true, unmask: true})
	payload := []byte("cross-switch payload")
	hdr := frame.Header{Type: frame.TypeData, OpType: frame.OpWrite, Total: uint32(len(payload))}
	buf := frame.MustEncode(bAddr, aAddr, &hdr, payload)
	e.After(0, func() { na.Transmit(&Frame{Buf: buf, Dst: bAddr, Src: aAddr}) })
	e.Run()
	if hb.gotRx != 1 {
		t.Fatalf("receiver host got %d frames", hb.gotRx)
	}
	if nb.RxFrames != 1 || na.TxFrames != 1 {
		t.Errorf("tx=%d rx=%d", na.TxFrames, nb.RxFrames)
	}
}

// Property: frames are conserved — every frame accepted by a port is
// delivered, dropped to error loss, or duplicated (counted), under any
// mix of loss and duplication probabilities.
func TestPropertyFrameConservation(t *testing.T) {
	f := func(seed int64, lossPct, dupPct uint8, count uint8) bool {
		e := sim.NewEnv(seed)
		s := &sink{env: e}
		lp := Gigabit()
		lp.LossProb = float64(lossPct%50) / 100
		lp.DupProb = float64(dupPct%50) / 100
		o := NewOutPort(e, "t", lp, s, 0)
		n := int(count)%200 + 1
		e.After(0, func() {
			for i := 0; i < n; i++ {
				o.Send(mkFrame(1, 2, 200))
			}
		})
		e.Run()
		delivered := uint64(len(s.frames))
		return delivered == uint64(n)-o.DropsErr+o.Duplicated &&
			o.TxFrames == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestCorruptionInjectionReachesDecoder(t *testing.T) {
	e := sim.NewEnv(3)
	s := &sink{env: e}
	lp := Gigabit()
	lp.CorruptProb = 1 // corrupt every frame
	o := NewOutPort(e, "t", lp, s, 0)
	orig := mkFrame(1, 2, 300)
	e.After(0, func() { o.Send(orig) })
	e.Run()
	if len(s.frames) != 1 || o.Corrupted != 1 {
		t.Fatalf("frames=%d corrupted=%d", len(s.frames), o.Corrupted)
	}
	if &s.frames[0].Buf[0] == &orig.Buf[0] {
		t.Error("corruption mutated the sender's buffer (retransmit source)")
	}
	if _, _, _, _, err := frame.Decode(s.frames[0].Buf); err == nil {
		t.Error("corrupted frame passed the protocol checksum")
	}
}

func TestOutPortFailRestore(t *testing.T) {
	e := sim.NewEnv(1)
	s := &sink{env: e}
	lp := LinkParams{PsPerByte: 8000, Delay: 100}
	o := NewOutPort(e, "t", lp, s, 0)
	f := mkFrame(1, 2, 1000)
	e.After(0, func() { o.Send(f) }) // delivered: port healthy at tx completion
	// Fail well after the first frame has fully serialized (~8.2µs): the
	// failure check happens when each frame finishes transmitting.
	e.After(50*sim.Microsecond, func() {
		o.Fail()
		o.Send(f) // lost
		o.Send(f) // lost
	})
	e.After(sim.Second, func() {
		o.Restore()
		o.Send(f) // delivered again
	})
	e.Run()
	if len(s.times) != 2 {
		t.Fatalf("delivered %d frames, want 2 (one before failure, one after restore)", len(s.times))
	}
	if o.DropsFailed != 2 {
		t.Errorf("DropsFailed = %d, want 2", o.DropsFailed)
	}
	if o.TxFrames != 4 {
		t.Errorf("TxFrames = %d, want 4 (the wire still carries lost frames)", o.TxFrames)
	}
	if o.IsFailed() {
		t.Error("port still failed after Restore")
	}
}

func TestOutPortFailQueuedFrames(t *testing.T) {
	// Frames already queued when the cable is pulled are lost too: the
	// failure check happens when each frame finishes serializing.
	e := sim.NewEnv(1)
	s := &sink{env: e}
	lp := LinkParams{PsPerByte: 8000, Delay: 100}
	o := NewOutPort(e, "t", lp, s, 0)
	e.After(0, func() {
		for i := 0; i < 5; i++ {
			o.Send(mkFrame(1, 2, 1000))
		}
	})
	// Fail mid-burst: after ~2.5 frame times.
	e.After(lp.wireTime(frame.WireLen(1000))*5/2, func() { o.Fail() })
	e.Run()
	if len(s.times) >= 5 {
		t.Fatalf("all %d frames delivered despite failure", len(s.times))
	}
	if o.DropsFailed == 0 {
		t.Error("no frames counted as failed-drops")
	}
	if got := len(s.times) + int(o.DropsFailed); got != 5 {
		t.Errorf("delivered+dropped = %d, want 5", got)
	}
}

func TestOutPortFailCondemnsQueued(t *testing.T) {
	// Restore racing the serialization backlog must not resurrect
	// frames: everything queued at Fail time — and anything accepted
	// while failed — drops, with accounting pinned to the fault
	// timeline rather than to when Restore happens to land.
	e := sim.NewEnv(1)
	s := &sink{env: e}
	lp := LinkParams{PsPerByte: 8000, Delay: 100}
	o := NewOutPort(e, "t", lp, s, 0)
	f := mkFrame(1, 2, 1000)
	wt := lp.wireTime(f.Len())
	e.After(0, func() {
		for i := 0; i < 6; i++ {
			o.Send(f)
		}
	})
	// Fail at 2.5 frame-times: frames 1-2 have serialized (delivered),
	// frames 3-6 are queued and condemned.
	e.After(wt*5/2, func() {
		o.Fail()
		if o.Queued() != 4 {
			t.Errorf("queued at fail = %d, want 4", o.Queued())
		}
		o.Send(f) // accepted while failed: condemned too
	})
	// Restore immediately — long before the condemned frames finish
	// serializing.
	e.After(wt*5/2+1, func() {
		o.Restore()
		o.Send(f) // queued behind the condemned backlog, delivered
	})
	e.Run()
	if got := len(s.times); got != 3 {
		t.Fatalf("delivered %d frames, want 3 (two pre-fail, one post-restore)", got)
	}
	if o.DropsFailed != 5 {
		t.Errorf("DropsFailed = %d, want 5 (four condemned at fail + one sent while failed)", o.DropsFailed)
	}
	if o.TxFrames != 8 {
		t.Errorf("TxFrames = %d, want 8", o.TxFrames)
	}
}

func TestOutPortMangler(t *testing.T) {
	e := sim.NewEnv(1)
	s := &sink{env: e}
	lp := LinkParams{PsPerByte: 8000, Delay: 100}
	o := NewOutPort(e, "t", lp, s, 0)
	f := mkFrame(1, 2, 1000)
	wt := lp.wireTime(f.Len())
	n := 0
	o.SetMangler(func(_ *Frame) Mangle {
		n++
		switch n {
		case 1:
			return Mangle{Drop: true}
		case 2:
			return Mangle{Dup: true}
		case 3:
			return Mangle{Corrupt: true}
		case 4:
			return Mangle{Delay: 10 * wt}
		}
		return Mangle{}
	})
	e.After(0, func() {
		for i := 0; i < 5; i++ {
			o.Send(f)
		}
	})
	e.Run()
	// Frame 1 dropped; frame 2 delivered twice; frames 3-5 once each.
	if got := len(s.frames); got != 5 {
		t.Fatalf("delivered %d frames, want 5", got)
	}
	if o.DropsErr != 1 || o.Duplicated != 1 || o.Corrupted != 1 {
		t.Errorf("DropsErr/Duplicated/Corrupted = %d/%d/%d, want 1/1/1",
			o.DropsErr, o.Duplicated, o.Corrupted)
	}
	// The corrupted copy must fail the frame checksum; the original
	// buffer (a retransmit source at the sender) stays intact.
	bad := 0
	for _, df := range s.frames {
		if _, _, _, _, err := frame.Decode(df.Buf); err != nil {
			bad++
		}
	}
	if bad != 1 {
		t.Errorf("%d delivered frames fail the checksum, want exactly 1", bad)
	}
	if _, _, _, _, err := frame.Decode(f.Buf); err != nil {
		t.Errorf("mangler corrupted the sender's buffer: %v", err)
	}
	// The delayed frame (mangled #4 — serialized fourth, at 4wt) lands
	// last, 10wt later than undelayed delivery: manglers can reorder
	// frames past ones serialized after them.
	last := s.times[len(s.times)-1]
	if want := 14*wt + lp.Delay; last != want {
		t.Errorf("delayed frame arrived at %v, want %v", last, want)
	}
	if prev := s.times[len(s.times)-2]; prev >= 10*wt {
		t.Errorf("second-to-last delivery at %v; delayed frame did not reorder", prev)
	}
}

func TestManglerRemovedIsFree(t *testing.T) {
	// Two identical lossy runs, one with a mangler installed and then
	// removed before traffic: RNG draws must match, i.e. the hook costs
	// nothing when unset. Guards the goldens.
	run := func(install bool) (uint64, []sim.Time) {
		e := sim.NewEnv(7)
		s := &sink{env: e}
		lp := LinkParams{PsPerByte: 8000, Delay: 100, LossProb: 0.3, DupProb: 0.1, CorruptProb: 0.1}
		o := NewOutPort(e, "t", lp, s, 0)
		if install {
			o.SetMangler(func(_ *Frame) Mangle { return Mangle{} })
			o.SetMangler(nil)
		}
		e.After(0, func() {
			for i := 0; i < 200; i++ {
				o.Send(mkFrame(1, 2, 100))
			}
		})
		e.Run()
		return o.DropsErr, s.times
	}
	d1, t1 := run(false)
	d2, t2 := run(true)
	if d1 != d2 || len(t1) != len(t2) {
		t.Fatalf("runs diverge: drops %d vs %d, deliveries %d vs %d", d1, d2, len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("delivery %d at %v vs %v", i, t1[i], t2[i])
		}
	}
}
