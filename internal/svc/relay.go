package svc

import (
	"fmt"
	"sort"

	"multiedge/internal/core"
	"multiedge/internal/frame"
	"multiedge/internal/msg"
	"multiedge/internal/obs"
	"multiedge/internal/sim"
)

// ---------------------------------------------------------------------
// Client side of relay routing.
// ---------------------------------------------------------------------

// callRelay forwards op to backend b through the registry's relay:
// encode a call envelope into the local staging slot, write it into the
// relay's per-client-node mailbox with Notify, and block on the global
// notification stream for the reply envelope. One exchange at a time
// per stub (the relay mailbox is one slot per client node).
func (c *Client) callRelay(p *sim.Proc, b int, token uint64, op core.Op) error {
	if !c.opts.UseRelay {
		return ErrNoRelay
	}
	if op.Size > msg.MaxRelayPayload {
		return fmt.Errorf("svc %s: %d-byte op exceeds relay payload %d: %w",
			c.svc.Name, op.Size, msg.MaxRelayPayload, ErrBadCall)
	}
	c.relayTok.Recv(p)
	err := c.relayExchange(p, b, token, op)
	c.relayTok.Send(c.env, struct{}{})
	return err
}

func (c *Client) relayExchange(p *sim.Proc, b int, token uint64, op core.Op) error {
	rc, err := c.ensureRelay(p)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrRelayFailed, err)
	}
	_, relayBase, _ := c.reg.Relay()
	mem := c.ep.Mem()
	c.relayCallID++
	call := msg.RelayEnvelope{
		Kind: msg.RelayCall, OpKind: op.Kind, Flags: op.Flags,
		Backend: uint32(c.svc.Backends[b].Node), CallID: c.relayCallID,
		Token: token, Remote: c.svc.Backends[b].Base + op.Remote,
		Size: uint32(op.Size), Reply: c.relayReply,
	}
	call.Encode(mem[c.relayOut : c.relayOut+msg.RelayHdrBytes])
	n := msg.RelayHdrBytes
	if op.Kind == frame.OpWrite {
		copy(mem[c.relayOut+msg.RelayHdrBytes:c.relayOut+uint64(msg.RelayHdrBytes+op.Size)],
			mem[op.Local:op.Local+uint64(op.Size)])
		n += op.Size
	}
	wop := core.Op{
		Remote: relayBase + uint64(c.ep.Node())*msg.RelaySlotBytes, Local: c.relayOut,
		Size: n, Kind: frame.OpWrite, Flags: frame.Notify,
	}
	if c.opts.FailoverBudget > 0 {
		wop.Deadline = c.env.Now() + c.opts.FailoverBudget
	}
	h, err := rc.Do(p, wop)
	if err != nil {
		c.dropRelayConn()
		return fmt.Errorf("%w: %v", ErrRelayFailed, err)
	}
	h.Wait(p)
	if err := h.Err(); err != nil {
		c.dropRelayConn()
		return fmt.Errorf("%w: %v", ErrRelayFailed, err)
	}
	return c.awaitReply(p, b, op)
}

// awaitReply blocks on the global notification stream until the relay's
// reply envelope for the current call lands (or the guard expires: the
// relay's forwarding budget, both wire legs, plus slack).
func (c *Client) awaitReply(p *sim.Proc, b int, op core.Op) error {
	mem := c.ep.Mem()
	var guard *sim.Timer
	expired := false
	if c.opts.FailoverBudget > 0 {
		guard = c.env.After(3*c.opts.FailoverBudget, func() {
			expired = true
			c.gn.Send(c.env, core.Notification{From: -1})
		})
	}
	for {
		nf := c.gn.Recv(p)
		if nf.From == -1 {
			if expired {
				c.dropRelayConn()
				return fmt.Errorf("%w: reply timeout", ErrRelayFailed)
			}
			continue // stale guard poison from an earlier exchange
		}
		if nf.Addr != c.relayReply {
			continue // not ours; relay-enabled stubs own the stream
		}
		re, derr := msg.DecodeRelayEnvelope(mem[c.relayReply : c.relayReply+msg.RelaySlotBytes])
		if derr != nil || re.Kind != msg.RelayReply || re.CallID != c.relayCallID {
			continue // torn or stale reply; keep waiting for the real one
		}
		if guard != nil {
			guard.Stop()
		}
		if re.Status != msg.RelayOK {
			return fmt.Errorf("svc %s: relay reports backend node %d unreachable: %w",
				c.svc.Name, c.svc.Backends[b].Node, core.ErrPeerDead)
		}
		if op.Kind == frame.OpRead {
			copy(mem[op.Local:op.Local+uint64(op.Size)],
				mem[c.relayReply+msg.RelayHdrBytes:c.relayReply+uint64(msg.RelayHdrBytes+op.Size)])
		}
		return nil
	}
}

func (c *Client) ensureRelay(p *sim.Proc) (*core.Conn, error) {
	for c.relayDialing != nil {
		p.Wait(c.relayDialing)
	}
	if rc := c.relayConn; rc != nil && !rc.Failed() && !rc.Closed() {
		return rc, nil
	}
	relayNode, _, _ := c.reg.Relay()
	sig := &sim.Signal{}
	c.relayDialing = sig
	rc := c.ep.Dial(p, relayNode, c.opts.Links)
	c.relayDialing = nil
	sig.Fire(c.env)
	if rc.Failed() {
		return nil, fmt.Errorf("svc %s: dial relay node %d: %w", c.svc.Name, relayNode, rc.Err())
	}
	c.relayConn = rc
	return rc, nil
}

func (c *Client) dropRelayConn() {
	if rc := c.relayConn; rc != nil {
		c.relayConn = nil
		rc.Abandon()
	}
}

// ---------------------------------------------------------------------
// Relay node: the forwarding daemon.
// ---------------------------------------------------------------------

// RelayStats counts the relay's forwarding events.
type RelayStats struct {
	Calls       uint64 // call envelopes received
	Forwarded   uint64 // operations that completed on a backend
	BackendDead uint64 // forwards that failed (backend unreachable)
	BadCalls    uint64 // envelopes that did not decode or were refused
}

// Relay is the designated forwarding node: it holds (lazily dialed)
// connections to both sides and serves calls one at a time off its
// endpoint's global notification stream — head-of-line blocking under a
// parked backend is bounded by the forwarding budget. Call slots are
// indexed by client node id, so one relay serves every client and
// service in the cluster.
type Relay struct {
	ep     *core.Endpoint
	env    *sim.Env
	base   uint64
	slots  int
	budget sim.Time
	conns  map[int]*core.Conn
	Stats  RelayStats
}

// StartRelay allocates the relay's mailbox region (slots must cover
// every node id that may call), records it in the registry, and starts
// the serve daemon. budget bounds each forwarded operation like a
// client's FailoverBudget (0 = DefaultFailoverBudget, negative = none).
func StartRelay(ep *core.Endpoint, reg *Registry, slots int, budget sim.Time) *Relay {
	if budget == 0 {
		budget = DefaultFailoverBudget
	}
	if budget < 0 {
		budget = 0
	}
	r := &Relay{
		ep: ep, env: ep.Env(), slots: slots, budget: budget,
		conns: map[int]*core.Conn{},
	}
	r.base = ep.Alloc(slots * msg.RelaySlotBytes)
	reg.setRelay(ep.Node(), r.base)
	r.env.Go(fmt.Sprintf("svc-relay-n%d", ep.Node()), r.serve)
	return r
}

// Base returns the mailbox region's base address (client slot i lives
// at Base + i*RelaySlotBytes).
func (r *Relay) Base() uint64 { return r.base }

func (r *Relay) serve(p *sim.Proc) {
	gn := r.ep.GlobalNotify()
	limit := r.base + uint64(r.slots*msg.RelaySlotBytes)
	for {
		nf := gn.Recv(p)
		if nf.Len < 0 || nf.Addr < r.base || nf.Addr >= limit {
			continue // poison or a write outside the mailbox region
		}
		slot := r.base + (nf.Addr-r.base)/msg.RelaySlotBytes*msg.RelaySlotBytes
		r.handle(p, nf.From, slot)
	}
}

func (r *Relay) handle(p *sim.Proc, from int, slot uint64) {
	mem := r.ep.Mem()
	r.Stats.Calls++
	sp := r.ep.Obs().StartLayerSpan(r.ep.Node(), "svc", "relay-forward", 0)
	defer sp.EndAt(r.env.Now())
	call, err := msg.DecodeRelayEnvelope(mem[slot : slot+msg.RelaySlotBytes])
	if err != nil || call.Kind != msg.RelayCall {
		// Without a decoded reply address there is nobody to answer;
		// the client's guard timer converts the silence into an error.
		r.Stats.BadCalls++
		return
	}
	status := msg.RelayOK
	if ferr := r.forward(p, slot, call); ferr != nil {
		status = msg.RelayBackendDead
		r.Stats.BackendDead++
	} else {
		r.Stats.Forwarded++
	}
	r.reply(p, from, slot, call, status)
}

// forward issues the relayed operation on the relay's own connection to
// the backend. Read data lands in the slot's payload area, ready for
// the reply. The Notify flag is stripped: notification semantics belong
// to the client side of the exchange.
func (r *Relay) forward(p *sim.Proc, slot uint64, call msg.RelayEnvelope) error {
	cn, err := r.ensureConn(p, int(call.Backend))
	if err != nil {
		return err
	}
	op := core.Op{
		Remote: call.Remote, Local: slot + msg.RelayHdrBytes,
		Size: int(call.Size), Kind: call.OpKind, Flags: call.Flags &^ frame.Notify,
	}
	if r.budget > 0 {
		op.Deadline = r.env.Now() + r.budget
	}
	h, derr := cn.Do(p, op)
	if derr != nil {
		r.dropConn(int(call.Backend))
		return derr
	}
	h.Wait(p)
	if herr := h.Err(); herr != nil {
		if cn.Reconnecting() || cn.Failed() || cn.Closed() {
			r.dropConn(int(call.Backend))
		}
		return herr
	}
	return nil
}

// reply rewrites the slot header in place as a reply envelope and
// writes it (plus read data on success) back to the client's reply
// slot with Notify.
func (r *Relay) reply(p *sim.Proc, from int, slot uint64, call msg.RelayEnvelope, status msg.RelayStatus) {
	cn, err := r.ensureConn(p, from)
	if err != nil {
		return // client unreachable; its guard timer fires
	}
	re := call
	re.Kind = msg.RelayReply
	re.Status = status
	mem := r.ep.Mem()
	re.Encode(mem[slot : slot+msg.RelayHdrBytes])
	n := msg.RelayHdrBytes
	if status == msg.RelayOK && call.OpKind == frame.OpRead {
		n += int(call.Size)
	}
	wop := core.Op{Remote: call.Reply, Local: slot, Size: n, Kind: frame.OpWrite, Flags: frame.Notify}
	if r.budget > 0 {
		wop.Deadline = r.env.Now() + r.budget
	}
	h, derr := cn.Do(p, wop)
	if derr != nil {
		r.dropConn(from)
		return
	}
	h.Wait(p)
	if h.Err() != nil && (cn.Reconnecting() || cn.Failed() || cn.Closed()) {
		r.dropConn(from)
	}
}

func (r *Relay) ensureConn(p *sim.Proc, node int) (*core.Conn, error) {
	if cn := r.conns[node]; cn != nil && !cn.Failed() && !cn.Closed() {
		return cn, nil
	}
	cn := r.ep.Dial(p, node, 0)
	if cn.Failed() {
		return nil, cn.Err()
	}
	r.conns[node] = cn
	return cn, nil
}

func (r *Relay) dropConn(node int) {
	if cn := r.conns[node]; cn != nil {
		delete(r.conns, node)
		cn.Abandon()
	}
}

// Shutdown closes the relay's connections (gracefully when possible,
// abandoning parked ones). The serve daemon stays parked on the
// notification stream; it holds no timers, so it never keeps a drained
// simulation alive.
func (r *Relay) Shutdown(p *sim.Proc) {
	nodes := make([]int, 0, len(r.conns))
	for n := range r.conns {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	for _, n := range nodes {
		cn := r.conns[n]
		delete(r.conns, n)
		closeOrAbandon(p, cn)
	}
}

// Health reports the relay's connection states via the endpoint's
// health snapshot (the balancer's eligible set is driven by the CLIENT
// side's Conn.Health; this is the relay's own view, for dashboards).
func (r *Relay) Health() obs.EndpointHealth { return r.ep.Health() }
