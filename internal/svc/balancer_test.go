package svc

import "testing"

// TestRoundRobinFair: successive picks spread evenly across the
// eligible set, including after the set shrinks.
func TestRoundRobinFair(t *testing.T) {
	b := NewRoundRobin()
	counts := map[int]int{}
	el := []int{0, 1, 2}
	for i := 0; i < 300; i++ {
		counts[b.Pick(uint64(i), el)]++
	}
	for _, e := range el {
		if counts[e] != 100 {
			t.Errorf("backend %d picked %d times, want 100", e, counts[e])
		}
	}
	counts = map[int]int{}
	el = []int{1, 2} // backend 0 left the eligible set
	for i := 0; i < 100; i++ {
		counts[b.Pick(0, el)]++
	}
	if counts[0] != 0 || counts[1] != 50 || counts[2] != 50 {
		t.Errorf("after shrink: %v, want 50/50 over {1,2}", counts)
	}
}

// TestRandomDeterministic: equal seeds give equal pick sequences,
// different seeds differ, and every backend is hit.
func TestRandomDeterministic(t *testing.T) {
	a, b := NewRandom(42), NewRandom(42)
	el := []int{0, 1, 2}
	counts := map[int]int{}
	for i := 0; i < 300; i++ {
		pa, pb := a.Pick(0, el), b.Pick(0, el)
		if pa != pb {
			t.Fatalf("pick %d: %d != %d with equal seeds", i, pa, pb)
		}
		counts[pa]++
	}
	for _, e := range el {
		if counts[e] == 0 {
			t.Errorf("backend %d never picked in 300 draws", e)
		}
	}
	c, d := NewRandom(1), NewRandom(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c.Pick(0, el) == d.Pick(0, el) {
			same++
		}
	}
	if same == 100 {
		t.Error("different seeds produced identical 100-pick sequences")
	}
}

// TestAffinitySticky: a token's first pick binds it; later picks return
// the binding while it stays eligible, rebind when it leaves, and keep
// the new binding even when the old backend comes back.
func TestAffinitySticky(t *testing.T) {
	b := NewAffinity(NewRoundRobin())
	el := []int{0, 1, 2}
	first := b.Pick(7, el)
	for i := 0; i < 50; i++ {
		if got := b.Pick(7, el); got != first {
			t.Fatalf("pick %d for token 7: %d, want sticky %d", i, got, first)
		}
	}
	// Different tokens spread over the set via the fallback.
	seen := map[int]bool{first: true}
	for tok := uint64(100); tok < 110; tok++ {
		seen[b.Pick(tok, el)] = true
	}
	if len(seen) != len(el) {
		t.Errorf("10 fresh tokens covered %d backends, want %d", len(seen), len(el))
	}
	// The binding leaves the eligible set: rebind...
	shrunk := make([]int, 0, 2)
	for _, e := range el {
		if e != first {
			shrunk = append(shrunk, e)
		}
	}
	second := b.Pick(7, shrunk)
	if second == first {
		t.Fatalf("rebind picked the ineligible backend %d", first)
	}
	// ...and stay with the new binding once the old backend returns.
	if got := b.Pick(7, el); got != second {
		t.Errorf("after old backend returned: pick %d, want the rebound %d", got, second)
	}
}

// TestAffinityDefaultsFallback: nil fallback means round-robin.
func TestAffinityDefaultsFallback(t *testing.T) {
	b := NewAffinity(nil)
	if b.Name() != "affinity(round-robin)" {
		t.Errorf("Name() = %q", b.Name())
	}
	if got := b.Pick(1, []int{4}); got != 4 {
		t.Errorf("single-element pick = %d, want 4", got)
	}
}
