// Package svc is the service layer (ISSUE 7): named services backed by
// N replica endpoints, client stubs that resolve a name and issue
// Op-shaped calls across the backends through pluggable load-balancing
// policies, and relay routing for clients whose direct path to a
// backend is broken.
//
// The layer composes the primitives underneath rather than inventing
// new protocol: a call is a core.Op issued on an ordinary connection
// (eagerly via Do, or SQ-batched via Post+Ring in CallBatch); backend
// health is core's Conn.Health; failover reuses the recovery machinery
// — a dead backend's connection is journaled (Conn.Journal) and
// condemned (Conn.Abandon) so its epoch can never rebirth, and the
// incomplete operations land exactly once on a healthy replica when the
// callers re-issue them; relay forwarding is a msg.RelayEnvelope
// written into the relay node's mailbox region with one-sided writes.
//
// Everything here is deterministic: registries and balancers iterate in
// fixed orders, the only randomness is a seeded xorshift in the random
// balancer, and equal seeds reproduce bit-identical runs.
package svc

import (
	"errors"
	"fmt"

	"multiedge/internal/core"
	"multiedge/internal/sim"
)

var (
	// ErrUnknownService: the registry has no service under that name.
	ErrUnknownService = errors.New("svc: unknown service")
	// ErrNoBackends: every replica is condemned or terminally failed —
	// the eligible set is empty.
	ErrNoBackends = errors.New("svc: no eligible backends")
	// ErrBadCall: the operation does not fit the service (offset/size
	// outside the region, unsupported kind).
	ErrBadCall = errors.New("svc: bad call")
	// ErrNoRelay: Options.UseRelay is set but the registry has no relay.
	ErrNoRelay = errors.New("svc: no relay registered")
	// ErrRelayFailed: the relay path itself broke (relay unreachable or
	// its reply timed out).
	ErrRelayFailed = errors.New("svc: relay failed")
)

// Backend is one replica of a service: an endpoint and the base address
// of the service's memory region in that endpoint's memory.
type Backend struct {
	EP   *core.Endpoint
	Node int
	Base uint64
}

// Service is one named, replicated service. Clients address it with
// service-relative offsets in [0, Size); each backend holds its own
// copy of the region.
type Service struct {
	Name     string
	Size     int // region bytes per replica
	Backends []Backend
}

// Replicas returns the backend count.
func (s *Service) Replicas() int { return len(s.Backends) }

// Registry maps service names to replica sets, and optionally names the
// relay node calls fall back to. It is the naming plane both Serve and
// Connect share; iteration order is registration order (deterministic).
type Registry struct {
	services map[string]*Service
	names    []string

	relayNode int
	relayBase uint64
	hasRelay  bool
}

// NewRegistry creates an empty service registry.
func NewRegistry() *Registry {
	return &Registry{services: map[string]*Service{}, relayNode: -1}
}

// Register creates a service with one replica per endpoint, allocating
// a size-byte region in each backend's memory.
func (r *Registry) Register(name string, size int, backends ...*core.Endpoint) (*Service, error) {
	if name == "" {
		return nil, fmt.Errorf("svc: empty service name")
	}
	if _, dup := r.services[name]; dup {
		return nil, fmt.Errorf("svc: service %q already registered", name)
	}
	if size <= 0 {
		return nil, fmt.Errorf("svc: service %q size %d, want > 0", name, size)
	}
	if len(backends) == 0 {
		return nil, fmt.Errorf("svc: service %q has no backends", name)
	}
	s := &Service{Name: name, Size: size}
	for _, ep := range backends {
		s.Backends = append(s.Backends, Backend{EP: ep, Node: ep.Node(), Base: ep.Alloc(size)})
	}
	r.services[name] = s
	r.names = append(r.names, name)
	return s, nil
}

// Lookup resolves a service name.
func (r *Registry) Lookup(name string) (*Service, bool) {
	s, ok := r.services[name]
	return s, ok
}

// Names returns the registered service names in registration order.
func (r *Registry) Names() []string { return append([]string(nil), r.names...) }

// setRelay records the relay's location; called by StartRelay.
func (r *Registry) setRelay(node int, base uint64) {
	r.relayNode, r.relayBase, r.hasRelay = node, base, true
}

// Relay returns the relay node and the base of its per-client mailbox
// region, if one is registered.
func (r *Registry) Relay() (node int, base uint64, ok bool) {
	return r.relayNode, r.relayBase, r.hasRelay
}

// Options configures one client stub. The zero value is usable:
// round-robin balancing, the default failover budget, no relay.
type Options struct {
	// Balancer picks a backend per call. Nil means NewRoundRobin().
	// The balancer instance is owned by one client (stateful).
	Balancer Balancer
	// FailoverBudget bounds how long a call may sit on a connection
	// that is parked in Reconnecting (or merely stalled) before the
	// stub gives up on the path and fails over. It becomes each
	// operation's Op.Deadline. 0 means DefaultFailoverBudget;
	// negative disables deadlines (calls wait forever).
	FailoverBudget sim.Time
	// Links is the per-connection link count passed to Dial (0 = all).
	Links int
	// UseRelay enables relay fallback: when the direct path to a
	// backend breaks, the call is forwarded through the registry's
	// relay before the backend is condemned. Requires StartRelay.
	// A relay-enabled client owns its endpoint's global notification
	// stream (core.Endpoint.GlobalNotify).
	UseRelay bool
	// MaxAttempts caps how many backends one call may try before
	// giving up. 0 means the replica count.
	MaxAttempts int
	// Class is the tenant/traffic class every connection and operation
	// this stub issues is tagged with (core Config.QoS). 0 is the
	// default class; ignored when the cluster runs without QoS.
	Class int
}

// DefaultFailoverBudget is the per-call deadline when Options leaves
// FailoverBudget zero: generous against slow paths, small against the
// bench's latency gates.
const DefaultFailoverBudget = 50 * sim.Millisecond

// Validate rejects option values no configuration should carry.
func (o Options) Validate() error {
	if o.Links < 0 {
		return fmt.Errorf("svc: Links %d, want >= 0", o.Links)
	}
	if o.MaxAttempts < 0 {
		return fmt.Errorf("svc: MaxAttempts %d, want >= 0", o.MaxAttempts)
	}
	if o.Class < 0 {
		return fmt.Errorf("svc: Class %d, want >= 0", o.Class)
	}
	return nil
}

// withDefaults resolves zero values against the service.
func (o Options) withDefaults(s *Service) Options {
	if o.Balancer == nil {
		o.Balancer = NewRoundRobin()
	}
	if o.FailoverBudget == 0 {
		o.FailoverBudget = DefaultFailoverBudget
	}
	if o.FailoverBudget < 0 {
		o.FailoverBudget = 0
	}
	if o.MaxAttempts == 0 {
		o.MaxAttempts = s.Replicas()
	}
	return o
}
