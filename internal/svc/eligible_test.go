package svc

import (
	"testing"

	"multiedge/internal/cluster"
	"multiedge/internal/core"
	"multiedge/internal/frame"
	"multiedge/internal/sim"
)

// TestEligibleTracksHealth (white-box): the eligible set follows
// Conn.Health — undialed and established backends are in, a
// reconnecting backend STAYS in (affinity can ride out an outage), and
// only condemnation (failed Call past the budget) removes one.
func TestEligibleTracksHealth(t *testing.T) {
	cfg := cluster.OneLink1G(3)
	cfg.Core.Reconnect = true
	cfg.Core.DeadInterval = 5 * sim.Millisecond
	cfg.Core.RTOMax = 2 * sim.Millisecond
	cfg.Core.HeartbeatInterval = sim.Millisecond
	cfg.Core.MaxRetries = 3
	cl := cluster.New(cfg)
	reg := NewRegistry()
	if _, err := reg.Register("kv", 8192, cl.Nodes[1].EP, cl.Nodes[2].EP); err != nil {
		t.Fatal(err)
	}
	ep0 := cl.Nodes[0].EP
	c, err := Connect(ep0, reg, "kv", Options{
		Balancer:       NewAffinity(NewRoundRobin()),
		FailoverBudget: 8 * sim.Millisecond,
		MaxAttempts:    1, // no failover: a budget miss surfaces as an error
	})
	if err != nil {
		t.Fatal(err)
	}
	src := ep0.Alloc(4096)
	done := false
	cl.Env.Go("worker", func(p *sim.Proc) {
		// Before any dial: both backends eligible (lazy conns count).
		if el := c.EligibleBackends(); len(el) != 2 {
			t.Fatalf("eligible before dial = %v, want [0 1]", el)
		}
		if err := c.Call(p, 3, core.Op{Local: src, Size: 4096, Kind: frame.OpWrite}); err != nil {
			t.Fatalf("first call: %v", err)
		}
		bound := -1
		for b, n := range c.Stats.PerBackend {
			if n > 0 {
				bound = b
			}
		}
		// Pause the bound backend's node and wait for the conn to park
		// in Reconnecting: it must remain eligible.
		s, _ := reg.Lookup("kv")
		cl.PauseNode(s.Backends[bound].Node)
		for !c.conns[bound].Reconnecting() && !c.conns[bound].Failed() {
			p.Sleep(sim.Millisecond)
		}
		if got := c.conns[bound].Health().State; got != "reconnecting" {
			t.Fatalf("health state = %q, want reconnecting", got)
		}
		if el := c.EligibleBackends(); len(el) != 2 {
			t.Errorf("eligible while reconnecting = %v, want both (outages are survivable)", el)
		}
		// A call into the parked conn misses the budget; with
		// MaxAttempts 1 that condemns the backend and errors out.
		if err := c.Call(p, 3, core.Op{Local: src, Size: 4096, Kind: frame.OpWrite}); err == nil {
			t.Error("call on a dead backend with MaxAttempts=1 succeeded")
		}
		el := c.EligibleBackends()
		if len(el) != 1 || el[0] == bound {
			t.Errorf("eligible after condemnation = %v, want only the survivor", el)
		}
		// The next call for the same token rebinds and succeeds.
		if err := c.Call(p, 3, core.Op{Local: src, Size: 4096, Kind: frame.OpWrite}); err != nil {
			t.Errorf("rebound call: %v", err)
		}
		c.Close(p)
		done = true
	})
	cl.Env.RunUntil(30 * sim.Second)
	if !done {
		t.Fatal("worker did not finish")
	}
	if c.Stats.BackendsCondemned != 1 || c.Stats.CallsFailed != 1 {
		t.Errorf("Condemned=%d CallsFailed=%d, want 1/1", c.Stats.BackendsCondemned, c.Stats.CallsFailed)
	}
}
