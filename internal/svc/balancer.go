package svc

// Balancer picks which backend serves a call. Pick receives the
// caller's token (an opaque session key) and the eligible backend
// indices — non-condemned replicas whose connection state is not
// terminal — and returns one element of eligible. Balancers are
// stateful and owned by a single client stub; eligible is never empty
// and is sorted ascending.
type Balancer interface {
	Name() string
	Pick(token uint64, eligible []int) int
}

// roundRobin cycles through the eligible set, ignoring tokens.
type roundRobin struct{ next int }

// NewRoundRobin returns a balancer that spreads successive calls evenly
// across the eligible backends.
func NewRoundRobin() Balancer { return &roundRobin{} }

func (b *roundRobin) Name() string { return "round-robin" }

func (b *roundRobin) Pick(_ uint64, eligible []int) int {
	i := eligible[b.next%len(eligible)]
	b.next++
	return i
}

// random picks uniformly with a seeded xorshift64* stream — fully
// deterministic for a given seed, independent of the simulator's RNG.
type random struct{ state uint64 }

// NewRandom returns a seeded random balancer.
func NewRandom(seed uint64) Balancer {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &random{state: seed}
}

func (b *random) Name() string { return "random" }

func (b *random) Pick(_ uint64, eligible []int) int {
	b.state ^= b.state << 13
	b.state ^= b.state >> 7
	b.state ^= b.state << 17
	return eligible[(b.state*0x2545f4914f6cdd1d)>>33%uint64(len(eligible))]
}

// affinity binds each token to a backend on first use and keeps
// returning it while it stays eligible — session stickiness that holds
// across reconnect outages (a Reconnecting backend remains eligible).
// When the bound backend leaves the eligible set the token rebinds via
// the fallback balancer.
type affinity struct {
	fallback Balancer
	bound    map[uint64]int
}

// NewAffinity returns a session-affinity balancer keyed on the caller
// token. fallback picks the initial (and any replacement) binding; nil
// means round-robin.
func NewAffinity(fallback Balancer) Balancer {
	if fallback == nil {
		fallback = NewRoundRobin()
	}
	return &affinity{fallback: fallback, bound: map[uint64]int{}}
}

func (b *affinity) Name() string { return "affinity(" + b.fallback.Name() + ")" }

func (b *affinity) Pick(token uint64, eligible []int) int {
	if i, ok := b.bound[token]; ok {
		for _, e := range eligible {
			if e == i {
				return i
			}
		}
	}
	i := b.fallback.Pick(token, eligible)
	b.bound[token] = i
	return i
}
