package svc

import (
	"errors"
	"fmt"
	"strconv"

	"multiedge/internal/core"
	"multiedge/internal/frame"
	"multiedge/internal/msg"
	"multiedge/internal/obs"
	"multiedge/internal/sim"
)

// ClientStats counts one stub's service-layer events. PerBackend is
// indexed like Service.Backends.
type ClientStats struct {
	Calls               uint64 // calls issued (batch ops included)
	CallsFailed         uint64 // calls that returned an error to the caller
	BatchCalls          uint64 // CallBatch invocations that completed on the SQ path
	BatchOps            uint64 // descriptors issued by those batches
	Failovers           uint64 // backend attempts abandoned mid-call
	BackendsCondemned   uint64 // backends marked dead by this stub
	JournaledOps        uint64 // incomplete ops snapshotted off condemned conns
	JournaledBytes      uint64 // their payload bytes
	RelayCalls          uint64 // calls completed through the relay
	RelayFailures       uint64 // relay attempts that failed
	Throttled           uint64 // submissions refused with core.ErrThrottled (QoS quota)
	PerBackend          []uint64
	ThrottledPerBackend []uint64 // per-backend throttle refusals (class health)
}

// collector publishes the stub's counters under per-service (and
// per-backend) labels.
func (s *ClientStats) collector(node int, svc *Service) obs.Collector {
	nl := obs.NodeLabel(node)
	sl := obs.Label{Key: "service", Value: svc.Name}
	return func(emit func(obs.Sample)) {
		c := func(name string, v uint64, extra ...obs.Label) {
			emit(obs.Sample{Name: name, Labels: append([]obs.Label{nl, sl}, extra...),
				Value: float64(v), Type: obs.TypeCounter})
		}
		c("svc_calls_total", s.Calls)
		c("svc_calls_failed_total", s.CallsFailed)
		c("svc_batch_calls_total", s.BatchCalls)
		c("svc_batch_ops_total", s.BatchOps)
		c("svc_failovers_total", s.Failovers)
		c("svc_backends_condemned_total", s.BackendsCondemned)
		c("svc_journaled_ops_total", s.JournaledOps)
		c("svc_journaled_bytes_total", s.JournaledBytes)
		c("svc_relay_calls_total", s.RelayCalls)
		c("svc_relay_failures_total", s.RelayFailures)
		c("svc_throttled_total", s.Throttled)
		for b, v := range s.PerBackend {
			c("svc_backend_calls_total", v,
				obs.Label{Key: "backend", Value: strconv.Itoa(svc.Backends[b].Node)})
		}
		for b, v := range s.ThrottledPerBackend {
			c("svc_backend_throttled_total", v,
				obs.Label{Key: "backend", Value: strconv.Itoa(svc.Backends[b].Node)})
		}
	}
}

// Client is a service stub: it resolves a name against the registry and
// issues Op-shaped calls across the service's replicas. One stub serves
// one endpoint and may be shared by every process on it; callers are
// distinguished by token (the balancer's session key). Connections are
// dialed lazily and concurrent dials to one backend are deduplicated.
//
// Failover composes the recovery primitives underneath: each call
// carries Options.FailoverBudget as its Op.Deadline, and when the
// deadline fires with the connection parked in Reconnecting (or the
// conn fails outright), the stub snapshots the conn's journal, condemns
// the epoch with Abandon — so it can never rebirth and double-apply —
// and retries the call on the next eligible replica (through the relay
// first, when configured). Every journaled operation belongs to some
// blocked caller whose own Call loop re-issues it, so the exactly-once
// guarantee is: old epoch condemned, each op re-lands exactly once.
//
// At most one relay-enabled stub may exist per endpoint: it owns the
// endpoint's global notification stream.
type Client struct {
	ep   *core.Endpoint
	env  *sim.Env
	reg  *Registry
	svc  *Service
	opts Options
	bal  Balancer

	conns    []*core.Conn
	dialing  []*sim.Signal
	dead     []bool                   // condemned by this stub
	viaRelay []bool                   // direct path broken, relay path proven
	cqTok    []*sim.Mailbox[struct{}] // per-backend CQ ownership for CallBatch

	relayConn    *core.Conn
	relayDialing *sim.Signal
	relayTok     *sim.Mailbox[struct{}] // serializes relay exchanges
	relayOut     uint64                 // local staging slot for call envelopes
	relayReply   uint64                 // local reply slot the relay writes into
	relayCallID  uint64
	gn           *sim.Mailbox[core.Notification]

	Stats ClientStats
}

// Connect resolves name in the registry and returns a client stub on
// ep. Nothing is dialed yet; connections come up lazily per backend.
func Connect(ep *core.Endpoint, reg *Registry, name string, opts Options) (*Client, error) {
	s, ok := reg.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("svc: connect %q: %w", name, ErrUnknownService)
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults(s)
	n := s.Replicas()
	c := &Client{
		ep: ep, env: ep.Env(), reg: reg, svc: s, opts: opts, bal: opts.Balancer,
		conns: make([]*core.Conn, n), dialing: make([]*sim.Signal, n),
		dead: make([]bool, n), viaRelay: make([]bool, n),
		cqTok: make([]*sim.Mailbox[struct{}], n),
	}
	c.Stats.PerBackend = make([]uint64, n)
	c.Stats.ThrottledPerBackend = make([]uint64, n)
	for i := range c.cqTok {
		c.cqTok[i] = &sim.Mailbox[struct{}]{}
		c.cqTok[i].Send(c.env, struct{}{})
	}
	if opts.UseRelay {
		if _, _, ok := reg.Relay(); !ok {
			return nil, fmt.Errorf("svc: connect %q: %w", name, ErrNoRelay)
		}
		c.relayOut = ep.Alloc(msg.RelaySlotBytes)
		c.relayReply = ep.Alloc(msg.RelaySlotBytes)
		c.relayTok = &sim.Mailbox[struct{}]{}
		c.relayTok.Send(c.env, struct{}{})
		c.gn = ep.GlobalNotify()
	}
	ep.Obs().AddCollector(c.Stats.collector(ep.Node(), s))
	return c, nil
}

// Service returns the resolved service.
func (c *Client) Service() *Service { return c.svc }

// checkCall validates a service-relative operation.
func (c *Client) checkCall(op core.Op) error {
	if op.Kind != frame.OpWrite && op.Kind != frame.OpRead {
		return fmt.Errorf("svc %s: op kind %v: %w", c.svc.Name, op.Kind, ErrBadCall)
	}
	if op.Size < 0 || op.Remote+uint64(op.Size) > uint64(c.svc.Size) {
		return fmt.Errorf("svc %s: range [%d,%d) outside the %d-byte service region: %w",
			c.svc.Name, op.Remote, op.Remote+uint64(op.Size), c.svc.Size, ErrBadCall)
	}
	if op.Deadline != 0 {
		return fmt.Errorf("svc %s: Op.Deadline is owned by the stub (set Options.FailoverBudget): %w",
			c.svc.Name, ErrBadCall)
	}
	return nil
}

// EligibleBackends returns the backend indices the balancer currently
// chooses from: not condemned by this stub, and with a connection state
// that is not terminal ("failed"/"closed" per Conn.Health). A backend
// parked in Reconnecting stays eligible — that is what keeps session
// affinity sticky across recoverable outages. A backend reached through
// the relay is eligible regardless of its (condemned) direct conn.
func (c *Client) EligibleBackends() []int {
	el := make([]int, 0, len(c.conns))
	for i := range c.svc.Backends {
		if c.dead[i] {
			continue
		}
		if cn := c.conns[i]; cn != nil && !c.viaRelay[i] {
			if st := cn.Health().State; st == "failed" || st == "closed" {
				continue
			}
		}
		el = append(el, i)
	}
	return el
}

func (c *Client) pick(token uint64) (int, bool) {
	el := c.EligibleBackends()
	if len(el) == 0 {
		return 0, false
	}
	return c.bal.Pick(token, el), true
}

// Call issues one operation against the service — a write or read at a
// service-relative offset — on the backend the balancer picks for
// token, failing over across replicas (and through the relay, when
// configured) until it lands or the eligible set drains.
func (c *Client) Call(p *sim.Proc, token uint64, op core.Op) error {
	if err := c.checkCall(op); err != nil {
		return err
	}
	sp := c.ep.Obs().StartLayerSpan(c.ep.Node(), "svc", "call", op.Size)
	err := c.call(p, token, op)
	sp.EndAt(c.env.Now())
	c.Stats.Calls++
	if err != nil {
		c.Stats.CallsFailed++
	}
	return err
}

func (c *Client) call(p *sim.Proc, token uint64, op core.Op) error {
	var lastErr error
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		b, ok := c.pick(token)
		if !ok {
			if lastErr != nil {
				return fmt.Errorf("svc %s: %w (last: %v)", c.svc.Name, ErrNoBackends, lastErr)
			}
			return fmt.Errorf("svc %s: %w", c.svc.Name, ErrNoBackends)
		}
		err, failover := c.callOn(p, b, token, op)
		if err == nil {
			c.Stats.PerBackend[b]++
			return nil
		}
		if !failover {
			return err
		}
		lastErr = err
		c.condemn(b)
		c.Stats.Failovers++
	}
	return fmt.Errorf("svc %s: %d attempts exhausted: %w (last: %v)",
		c.svc.Name, c.opts.MaxAttempts, ErrNoBackends, lastErr)
}

// callOn runs one backend attempt: direct when possible, relay
// otherwise. failover=true means the backend should be condemned and
// the call retried elsewhere.
func (c *Client) callOn(p *sim.Proc, b int, token uint64, op core.Op) (err error, failover bool) {
	if !c.viaRelay[b] {
		err, failover = c.callDirect(p, b, op)
		if err == nil || !failover || !c.opts.UseRelay {
			return err, failover
		}
		// Direct path broken: same backend, through the relay.
		if rerr := c.callRelay(p, b, token, op); rerr == nil {
			c.viaRelay[b] = true
			c.Stats.RelayCalls++
			return nil, false
		}
		c.Stats.RelayFailures++
		return err, true
	}
	if rerr := c.callRelay(p, b, token, op); rerr != nil {
		c.Stats.RelayFailures++
		return rerr, true
	}
	c.Stats.RelayCalls++
	return nil, false
}

// callDirect issues op on the backend's direct connection. failover
// reports whether the path (not the call) is at fault.
func (c *Client) callDirect(p *sim.Proc, b int, op core.Op) (error, bool) {
	cn, err := c.ensureConn(p, b)
	if err != nil {
		return err, true // dial failed: path broken
	}
	op.Remote += c.svc.Backends[b].Base
	if c.opts.FailoverBudget > 0 {
		op.Deadline = c.env.Now() + c.opts.FailoverBudget
	}
	if c.opts.Class > 0 {
		op.Class = c.opts.Class // tenant tag rides every call (QoS admission)
	}
	h, err := cn.Do(p, op)
	if err != nil {
		// The conn reached a terminal state while ensureConn blocked.
		c.journalAndAbandon(b)
		return err, true
	}
	h.Wait(p)
	if err := h.Err(); err != nil {
		if errors.Is(err, core.ErrDeadlineExceeded) &&
			!cn.Reconnecting() && !cn.Failed() && !cn.Closed() {
			// The path is up and the op was merely slower than the
			// budget: a caller-visible timeout, not a failover trigger.
			return err, false
		}
		c.journalAndAbandon(b)
		return err, true
	}
	return nil, false
}

// journalAndAbandon snapshots the backend conn's incomplete operations
// and condemns its epoch so it can never rebirth and double-apply.
// Every journaled op belongs to a caller blocked in Call whose own
// retry loop re-issues it on a surviving replica; the journal here is
// the accounting (and the audit trail a post-mortem wants).
func (c *Client) journalAndAbandon(b int) {
	cn := c.conns[b]
	c.conns[b] = nil
	if cn == nil {
		return
	}
	j := cn.Journal()
	c.Stats.JournaledOps += uint64(len(j))
	for _, op := range j {
		c.Stats.JournaledBytes += uint64(op.Size)
	}
	cn.Abandon()
}

func (c *Client) condemn(b int) {
	if !c.dead[b] {
		c.dead[b] = true
		c.viaRelay[b] = false
		c.Stats.BackendsCondemned++
	}
}

// ensureConn returns a live connection to backend b, dialing if needed.
// Concurrent callers coalesce onto one dial.
func (c *Client) ensureConn(p *sim.Proc, b int) (*core.Conn, error) {
	for c.dialing[b] != nil {
		p.Wait(c.dialing[b])
	}
	if cn := c.conns[b]; cn != nil && !cn.Failed() && !cn.Closed() {
		return cn, nil
	}
	sig := &sim.Signal{}
	c.dialing[b] = sig
	cn := c.ep.Dial(p, c.svc.Backends[b].Node, c.opts.Links)
	c.dialing[b] = nil
	sig.Fire(c.env)
	if cn.Failed() {
		return nil, fmt.Errorf("svc %s: dial backend %d (node %d): %w",
			c.svc.Name, b, c.svc.Backends[b].Node, cn.Err())
	}
	if c.opts.Class > 0 {
		cn.SetClass(c.opts.Class)
	}
	c.conns[b] = cn
	return cn, nil
}

// CallBatch issues ops as one submission-queue batch — Post per
// descriptor, one doorbell, completions reaped from the CQ — against
// the single backend the balancer picks for token. A per-backend token
// serializes CQ ownership, so concurrent batches never interleave their
// completion records (eager Do-path calls bypass the CQ and need no
// token). On any path failure the whole batch degrades to op-by-op
// Calls, which carry the full failover machinery.
func (c *Client) CallBatch(p *sim.Proc, token uint64, ops []core.Op) error {
	for _, op := range ops {
		if err := c.checkCall(op); err != nil {
			return err
		}
	}
	if len(ops) == 0 {
		return nil
	}
	total := 0
	for _, op := range ops {
		total += op.Size
	}
	sp := c.ep.Obs().StartLayerSpan(c.ep.Node(), "svc", "call-batch", total)
	err := c.callBatch(p, token, ops)
	sp.EndAt(c.env.Now())
	return err
}

func (c *Client) callBatch(p *sim.Proc, token uint64, ops []core.Op) error {
	if b, ok := c.pick(token); ok && !c.viaRelay[b] {
		if cn, err := c.ensureConn(p, b); err == nil {
			if c.batchOn(p, cn, b, ops) {
				c.Stats.BatchCalls++
				c.Stats.BatchOps += uint64(len(ops))
				c.Stats.PerBackend[b] += uint64(len(ops))
				c.Stats.Calls += uint64(len(ops))
				return nil
			}
		}
	}
	// Degraded path: per-op calls with failover.
	for _, op := range ops {
		if err := c.Call(p, token, op); err != nil {
			return err
		}
	}
	return nil
}

// batchOn runs one SQ batch attempt; false means fall back to Call.
func (c *Client) batchOn(p *sim.Proc, cn *core.Conn, b int, ops []core.Op) bool {
	tok := c.cqTok[b]
	tok.Recv(p)
	var dl sim.Time
	if c.opts.FailoverBudget > 0 {
		dl = c.env.Now() + c.opts.FailoverBudget
	}
	posted := 0
	throttled := false
	for _, op := range ops {
		rop := op
		rop.Remote += c.svc.Backends[b].Base
		rop.Deadline = dl
		if c.opts.Class > 0 {
			rop.Class = c.opts.Class
		}
		if err := cn.Post(rop); err != nil {
			if errors.Is(err, core.ErrThrottled) {
				// Per-backend class health: the tenant's quota is full on
				// this endpoint. Not a path fault — the batch degrades to
				// op-by-op Calls (blocking admission) without condemning
				// the backend.
				c.Stats.Throttled++
				c.Stats.ThrottledPerBackend[b]++
				throttled = true
			}
			break
		}
		posted++
	}
	rung := 0
	if posted > 0 {
		if n, err := cn.Ring(p); err == nil {
			rung = n
		}
	}
	failed := false
	for i := 0; i < rung; i++ {
		if comp := cn.WaitCQ(p); comp.Err != nil {
			failed = true
		}
	}
	tok.Send(c.env, struct{}{})
	ok := posted == len(ops) && rung == posted && !failed
	if !ok && !throttled {
		c.journalAndAbandon(b)
	}
	return ok
}

// Close tears down every connection the stub owns: healthy conns close
// gracefully, parked or failed ones are abandoned. The stub is unusable
// afterwards.
func (c *Client) Close(p *sim.Proc) {
	for b, cn := range c.conns {
		c.conns[b] = nil
		closeOrAbandon(p, cn)
	}
	rc := c.relayConn
	c.relayConn = nil
	closeOrAbandon(p, rc)
}

func closeOrAbandon(p *sim.Proc, cn *core.Conn) {
	switch {
	case cn == nil || cn.Closed():
	case cn.Reconnecting() || cn.Failed():
		cn.Abandon()
	default:
		cn.Close(p)
	}
}
