package svc_test

import (
	"bytes"
	"errors"
	"testing"

	"multiedge/internal/chaos"
	"multiedge/internal/cluster"
	"multiedge/internal/core"
	"multiedge/internal/frame"
	"multiedge/internal/sim"
	"multiedge/internal/svc"
)

// recoveryConfig is the cluster shape the service tests share: fast
// failure detection so failover happens within a few virtual
// milliseconds.
func recoveryConfig(nodes int) cluster.Config {
	cfg := cluster.OneLink1G(nodes)
	cfg.Core.Reconnect = true
	cfg.Core.DeadInterval = 5 * sim.Millisecond
	cfg.Core.RTOMax = 2 * sim.Millisecond
	// Idle conns must notice a dead peer too, and a dial to a dead node
	// must fail rather than retry forever.
	cfg.Core.HeartbeatInterval = sim.Millisecond
	cfg.Core.MaxRetries = 3
	return cfg
}

func fill(mem []byte, base uint64, n int, seed byte) {
	for i := 0; i < n; i++ {
		mem[base+uint64(i)] = byte(i)*7 + seed
	}
}

// TestRegistryRegister covers the naming plane: registration,
// duplicate/invalid rejection, lookup, ordering.
func TestRegistryRegister(t *testing.T) {
	cl := cluster.New(recoveryConfig(3))
	reg := svc.NewRegistry()
	s, err := reg.Register("kv", 4096, cl.Nodes[1].EP, cl.Nodes[2].EP)
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	if s.Replicas() != 2 || s.Backends[0].Node != 1 || s.Backends[1].Node != 2 {
		t.Fatalf("backends = %+v", s.Backends)
	}
	if _, err := reg.Register("kv", 4096, cl.Nodes[1].EP); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := reg.Register("", 4096, cl.Nodes[1].EP); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := reg.Register("bad", 0, cl.Nodes[1].EP); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := reg.Register("none", 4096); err == nil {
		t.Error("backend-less service accepted")
	}
	if _, ok := reg.Lookup("kv"); !ok {
		t.Error("lookup failed")
	}
	if _, err := svc.Connect(cl.Nodes[0].EP, reg, "nope", svc.Options{}); !errors.Is(err, svc.ErrUnknownService) {
		t.Errorf("connect to unknown service: %v", err)
	}
	if names := reg.Names(); len(names) != 1 || names[0] != "kv" {
		t.Errorf("names = %v", names)
	}
}

// TestServiceFailoverExactlyOnce is the tentpole scenario: a replica
// dies with a large write in flight; the stub journals the parked
// connection, condemns its epoch, rebinds the session and re-issues the
// call — which lands exactly once, byte-verified, on a survivor, while
// the dead replica keeps only its pre-kill state.
func TestServiceFailoverExactlyOnce(t *testing.T) {
	cl := cluster.New(recoveryConfig(4))
	reg := svc.NewRegistry()
	const region = 256 * 1024
	s, err := reg.Register("kv", region, cl.Nodes[1].EP, cl.Nodes[2].EP, cl.Nodes[3].EP)
	if err != nil {
		t.Fatal(err)
	}
	ep0 := cl.Nodes[0].EP
	c, err := svc.Connect(ep0, reg, "kv", svc.Options{
		Balancer:       svc.NewAffinity(svc.NewRoundRobin()),
		FailoverBudget: 10 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	const nA = 16 * 1024  // pattern A: written before the kill
	const nB = 200 * 1024 // pattern B: in flight when the replica dies
	srcA := ep0.Alloc(nA)
	srcB := ep0.Alloc(nB)
	back := ep0.Alloc(nB)
	fill(ep0.Mem(), srcA, nA, 3)
	fill(ep0.Mem(), srcB, nB, 101)

	const token = 7
	victim := -1 // backend index the session binds to
	killAt := &sim.Signal{}
	cl.Env.Go("killer", func(p *sim.Proc) {
		p.Wait(killAt)
		p.Sleep(500 * sim.Microsecond) // mid-transfer of pattern B
		cl.PauseNode(s.Backends[victim].Node)
	})
	done := false
	cl.Env.Go("worker", func(p *sim.Proc) {
		// Pattern A: write, read back, verify — all on the bound backend.
		if err := c.Call(p, token, core.Op{Remote: 0, Local: srcA, Size: nA, Kind: frame.OpWrite}); err != nil {
			t.Fatalf("write A: %v", err)
		}
		if err := c.Call(p, token, core.Op{Remote: 0, Local: back, Size: nA, Kind: frame.OpRead}); err != nil {
			t.Fatalf("read A: %v", err)
		}
		if !bytes.Equal(ep0.Mem()[back:back+nA], ep0.Mem()[srcA:srcA+nA]) {
			t.Fatal("read-back of pattern A differs")
		}
		for b, n := range c.Stats.PerBackend {
			if n > 0 {
				victim = b
			}
		}
		if victim < 0 {
			t.Fatal("no backend served pattern A")
		}
		// Pattern B: the bound replica dies mid-write; the call must
		// fail over and land on a survivor.
		killAt.Fire(cl.Env)
		if err := c.Call(p, token, core.Op{Remote: nA, Local: srcB, Size: nB, Kind: frame.OpWrite}); err != nil {
			t.Fatalf("write B (with failover): %v", err)
		}
		for i := range ep0.Mem()[back : back+nB] {
			ep0.Mem()[back+uint64(i)] = 0
		}
		if err := c.Call(p, token, core.Op{Remote: nA, Local: back, Size: nB, Kind: frame.OpRead}); err != nil {
			t.Fatalf("read B: %v", err)
		}
		if !bytes.Equal(ep0.Mem()[back:back+nB], ep0.Mem()[srcB:srcB+nB]) {
			t.Fatal("read-back of pattern B differs after failover")
		}
		c.Close(p)
		done = true
	})
	cl.Env.RunUntil(30 * sim.Second)
	if !done {
		t.Fatal("worker did not finish")
	}

	// Failover accounting: one condemned backend, at least one failover
	// with journaled state, and the eligible set is exactly the two
	// survivors.
	if c.Stats.BackendsCondemned != 1 {
		t.Errorf("BackendsCondemned = %d, want 1", c.Stats.BackendsCondemned)
	}
	if c.Stats.Failovers == 0 || c.Stats.JournaledOps == 0 {
		t.Errorf("Failovers = %d, JournaledOps = %d, want both > 0",
			c.Stats.Failovers, c.Stats.JournaledOps)
	}
	el := c.EligibleBackends()
	if len(el) != 2 {
		t.Errorf("eligible = %v, want the 2 survivors", el)
	}
	for _, e := range el {
		if e == victim {
			t.Errorf("dead backend %d still eligible", victim)
		}
	}
	// Exactly-once: the survivor that served the session holds pattern
	// B in full at offset nA; the dead replica kept pattern A intact and
	// never received all of B.
	surv := -1
	for b := range s.Backends {
		if b == victim {
			continue
		}
		mem := s.Backends[b].EP.Mem()
		base := s.Backends[b].Base
		if bytes.Equal(mem[base+nA:base+nA+nB], ep0.Mem()[srcB:srcB+nB]) {
			surv = b
		}
	}
	if surv < 0 {
		t.Error("no survivor holds pattern B in full")
	}
	vmem := s.Backends[victim].EP.Mem()
	vbase := s.Backends[victim].Base
	if !bytes.Equal(vmem[vbase:vbase+nA], ep0.Mem()[srcA:srcA+nA]) {
		t.Error("dead replica lost pattern A")
	}
	if bytes.Equal(vmem[vbase+nA:vbase+nA+nB], ep0.Mem()[srcB:srcB+nB]) {
		t.Error("dead replica holds ALL of pattern B: double apply")
	}
	if ep0.Stats.Abandons == 0 {
		t.Errorf("Abandons = 0, want the condemned epoch counted")
	}
}

// TestServiceRelayRouting: the client↔backend pair is blackholed while
// both still reach the relay; calls flow direct before the fault and
// through the relay after it, byte-verified, without condemning the
// backend.
func TestServiceRelayRouting(t *testing.T) {
	cl := cluster.New(recoveryConfig(3))
	reg := svc.NewRegistry()
	const region = 64 * 1024
	if _, err := reg.Register("kv", region, cl.Nodes[1].EP); err != nil {
		t.Fatal(err)
	}
	relay := svc.StartRelay(cl.Nodes[2].EP, reg, 3, 10*sim.Millisecond)
	ep0 := cl.Nodes[0].EP
	c, err := svc.Connect(ep0, reg, "kv", svc.Options{
		UseRelay:       true,
		FailoverBudget: 10 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := chaos.New(cl, 1)
	r.BlackholePair(2*sim.Millisecond, 0, 0, 1) // client 0 ↔ backend 1, forever

	const n = 4 * 1024
	src1 := ep0.Alloc(n)
	src2 := ep0.Alloc(n)
	back := ep0.Alloc(n)
	fill(ep0.Mem(), src1, n, 11)
	fill(ep0.Mem(), src2, n, 57)
	done := false
	cl.Env.Go("worker", func(p *sim.Proc) {
		// Direct while the path is up.
		if err := c.Call(p, 1, core.Op{Remote: 0, Local: src1, Size: n, Kind: frame.OpWrite}); err != nil {
			t.Fatalf("direct write: %v", err)
		}
		if got := c.Stats.RelayCalls; got != 0 {
			t.Fatalf("RelayCalls = %d before the fault, want 0", got)
		}
		p.Sleep(3 * sim.Millisecond) // blackhole is in force now
		// Relay once the path is severed.
		if err := c.Call(p, 1, core.Op{Remote: n, Local: src2, Size: n, Kind: frame.OpWrite}); err != nil {
			t.Fatalf("relayed write: %v", err)
		}
		if err := c.Call(p, 1, core.Op{Remote: n, Local: back, Size: n, Kind: frame.OpRead}); err != nil {
			t.Fatalf("relayed read: %v", err)
		}
		if !bytes.Equal(ep0.Mem()[back:back+n], ep0.Mem()[src2:src2+n]) {
			t.Fatal("relayed read-back differs")
		}
		c.Close(p)
		relay.Shutdown(p)
		done = true
	})
	cl.Env.RunUntil(30 * sim.Second)
	if !done {
		t.Fatal("worker did not finish")
	}
	if c.Stats.RelayCalls != 2 {
		t.Errorf("RelayCalls = %d, want 2 (write + read)", c.Stats.RelayCalls)
	}
	if c.Stats.BackendsCondemned != 0 {
		t.Errorf("BackendsCondemned = %d, want 0: the backend is alive behind the relay", c.Stats.BackendsCondemned)
	}
	if el := c.EligibleBackends(); len(el) != 1 {
		t.Errorf("eligible = %v, want the relay-reached backend to stay in", el)
	}
	if relay.Stats.Forwarded != 2 || relay.Stats.BackendDead != 0 {
		t.Errorf("relay stats = %+v, want 2 forwarded, 0 dead", relay.Stats)
	}
	// The relayed write really landed on the backend.
	bmem := cl.Nodes[1].EP.Mem()
	s, _ := reg.Lookup("kv")
	if !bytes.Equal(bmem[s.Backends[0].Base+n:s.Backends[0].Base+2*n], ep0.Mem()[src2:src2+n]) {
		t.Error("backend region missing the relayed write")
	}
}

// TestServiceCallBatch: the SQ path issues a batch under one doorbell
// and the batch degrades to eager calls when the backend dies.
func TestServiceCallBatch(t *testing.T) {
	cfg := recoveryConfig(3)
	cfg.Core.UseSQ = true
	cl := cluster.New(cfg)
	reg := svc.NewRegistry()
	const region = 64 * 1024
	if _, err := reg.Register("kv", region, cl.Nodes[1].EP, cl.Nodes[2].EP); err != nil {
		t.Fatal(err)
	}
	ep0 := cl.Nodes[0].EP
	c, err := svc.Connect(ep0, reg, "kv", svc.Options{
		Balancer:       svc.NewAffinity(svc.NewRoundRobin()),
		FailoverBudget: 10 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	const opN = 1024
	const ops = 8
	src := ep0.Alloc(opN * ops)
	back := ep0.Alloc(opN * ops)
	fill(ep0.Mem(), src, opN*ops, 9)
	done := false
	cl.Env.Go("worker", func(p *sim.Proc) {
		batch := make([]core.Op, ops)
		for i := range batch {
			batch[i] = core.Op{Remote: uint64(i * opN), Local: src + uint64(i*opN),
				Size: opN, Kind: frame.OpWrite}
		}
		if err := c.CallBatch(p, 5, batch); err != nil {
			t.Fatalf("batch: %v", err)
		}
		if c.Stats.BatchCalls != 1 || c.Stats.BatchOps != ops {
			t.Fatalf("BatchCalls=%d BatchOps=%d, want 1/%d", c.Stats.BatchCalls, c.Stats.BatchOps, ops)
		}
		if err := c.Call(p, 5, core.Op{Remote: 0, Local: back, Size: opN * ops, Kind: frame.OpRead}); err != nil {
			t.Fatalf("read back: %v", err)
		}
		if !bytes.Equal(ep0.Mem()[back:back+opN*ops], ep0.Mem()[src:src+opN*ops]) {
			t.Fatal("batched writes read back differently")
		}
		// Kill the bound backend; the next batch must still land (via
		// the degraded per-op failover path).
		victim := 0
		for b, n := range c.Stats.PerBackend {
			if n > 0 {
				victim = b
			}
		}
		s, _ := reg.Lookup("kv")
		cl.PauseNode(s.Backends[victim].Node)
		if err := c.CallBatch(p, 5, batch); err != nil {
			t.Fatalf("batch after kill: %v", err)
		}
		for i := range ep0.Mem()[back : back+opN*ops] {
			ep0.Mem()[back+uint64(i)] = 0
		}
		if err := c.Call(p, 5, core.Op{Remote: 0, Local: back, Size: opN * ops, Kind: frame.OpRead}); err != nil {
			t.Fatalf("read back 2: %v", err)
		}
		if !bytes.Equal(ep0.Mem()[back:back+opN*ops], ep0.Mem()[src:src+opN*ops]) {
			t.Fatal("survivor missing the failed-over batch")
		}
		c.Close(p)
		done = true
	})
	cl.Env.RunUntil(30 * sim.Second)
	if !done {
		t.Fatal("worker did not finish")
	}
	if c.Stats.BackendsCondemned != 1 {
		t.Errorf("BackendsCondemned = %d, want 1", c.Stats.BackendsCondemned)
	}
}

// TestServiceBackendKillScenario drives the chaos Runner's KillNode
// against a replicated service with many concurrent sessions: every
// call either lands or fails over; after the dust settles all sessions
// verify their bytes on survivors.
func TestServiceBackendKillScenario(t *testing.T) {
	cl := cluster.New(recoveryConfig(4))
	reg := svc.NewRegistry()
	const region = 128 * 1024
	s, err := reg.Register("kv", region, cl.Nodes[1].EP, cl.Nodes[2].EP, cl.Nodes[3].EP)
	if err != nil {
		t.Fatal(err)
	}
	ep0 := cl.Nodes[0].EP
	c, err := svc.Connect(ep0, reg, "kv", svc.Options{
		Balancer:       svc.NewAffinity(svc.NewRoundRobin()),
		FailoverBudget: 10 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := chaos.New(cl, 99)
	r.KillNode(3*sim.Millisecond, s.Backends[0].Node)

	const sessions = 8
	const opN = 2048
	src := ep0.Alloc(opN * sessions)
	back := ep0.Alloc(opN * sessions)
	fill(ep0.Mem(), src, opN*sessions, 31)
	finished := 0
	for i := 0; i < sessions; i++ {
		tok, off := uint64(i), uint64(i*opN)
		cl.Env.Go("session", func(p *sim.Proc) {
			for round := 0; round < 4; round++ {
				if err := c.Call(p, tok, core.Op{Remote: off, Local: src + off,
					Size: opN, Kind: frame.OpWrite}); err != nil {
					t.Errorf("session %d round %d write: %v", tok, round, err)
					return
				}
				p.Sleep(sim.Millisecond)
			}
			if err := c.Call(p, tok, core.Op{Remote: off, Local: back + off,
				Size: opN, Kind: frame.OpRead}); err != nil {
				t.Errorf("session %d read: %v", tok, err)
				return
			}
			if !bytes.Equal(ep0.Mem()[back+off:back+off+opN], ep0.Mem()[src+off:src+off+opN]) {
				t.Errorf("session %d bytes differ", tok)
			}
			finished++
		})
	}
	closer := false
	cl.Env.Go("closer", func(p *sim.Proc) {
		for finished < sessions {
			p.Sleep(sim.Millisecond)
		}
		c.Close(p)
		closer = true
	})
	cl.Env.RunUntil(60 * sim.Second)
	if finished != sessions || !closer {
		t.Fatalf("finished %d/%d sessions (closer=%v)", finished, sessions, closer)
	}
	if c.Stats.BackendsCondemned != 1 {
		t.Errorf("BackendsCondemned = %d, want exactly the killed replica", c.Stats.BackendsCondemned)
	}
	if len(c.EligibleBackends()) != 2 {
		t.Errorf("eligible = %v, want 2 survivors", c.EligibleBackends())
	}
}
