package sim

// Wheel is a coalescing timer wheel: short-lived timers land in
// tick-granularity buckets, and the environment's event heap carries at
// most ONE scheduled event per occupied bucket instead of one per
// timer. An endpoint multiplexing hundreds of connections arms and
// cancels an ACK, NACK, RTO and heartbeat timer per connection many
// times per round trip; routed through a wheel, all of that churn costs
// O(1) slice appends and flag flips, and the heap sees a handful of
// bucket events per horizon.
//
// Firing times are rounded UP to the next tick boundary, so a wheel
// timer never fires early; within one bucket, timers fire in arming
// order, keeping runs deterministic. Timers beyond the wheel's horizon
// (slots x tick) fall back to plain heap events — coalescing only pays
// for the short, hot timers, and the fallback keeps far-future timers
// (dead-interval guards, probe intervals) exact.
//
// Daemon-ness is tracked per bucket: a bucket's scheduled event keeps
// Run alive only while the bucket holds at least one live (non-daemon)
// timer, so an idle connection whose only wheel entries are daemon
// heartbeats never keeps an otherwise-finished simulation running —
// the same contract as Env.AfterDaemon.
type Wheel struct {
	env   *Env
	tick  Time
	slots []wheelSlot
	n     int // armed, unexpired, unstopped timers (bucketed + overflow)
}

type wheelSlot struct {
	at      Time          // absolute firing time of the scheduled event
	entries []*WheelTimer // armed in order; stopped entries are skipped
	active  int           // entries neither fired nor stopped
	live    int           // active non-daemon entries
	timer   *Timer        // the one heap event for this bucket
	seq     uint64        // bumped per firing; guards stale bucket events
}

// WheelTimer is one timer armed on a Wheel. It satisfies the same
// Stop/Pending contract as *Timer; both are nil-receiver-safe.
type WheelTimer struct {
	w      *Wheel
	fn     func()
	slot   int    // bucket index, or -1 for a heap-backed overflow timer
	heap   *Timer // overflow only: the underlying heap event
	daemon bool
	done   bool // fired or stopped
}

// wheelSlots fixes the ring size. With the tick durations protocol
// timers use (tens of microseconds) the horizon comfortably covers ACK
// delays, NACK ages and RTOs; anything longer overflows to the heap.
const wheelSlots = 512

// NewWheel creates a wheel with the given tick granularity. Tick must
// be positive; finer ticks mean less firing-time rounding but more
// bucket events.
func NewWheel(env *Env, tick Time) *Wheel {
	if tick <= 0 {
		panic("sim: wheel tick must be positive")
	}
	return &Wheel{env: env, tick: tick, slots: make([]wheelSlot, wheelSlots)}
}

// Tick returns the wheel's bucket granularity.
func (w *Wheel) Tick() Time { return w.tick }

// Len returns the number of armed, not-yet-fired, not-stopped timers.
func (w *Wheel) Len() int {
	if w == nil {
		return 0
	}
	return w.n
}

// After arms fn to fire d nanoseconds from now, rounded up to the next
// tick boundary. Negative d panics, matching Env.After.
func (w *Wheel) After(d Time, fn func()) *WheelTimer { return w.arm(d, fn, false) }

// AfterDaemon is After with daemon semantics: the timer fires normally
// while the simulation is live but never keeps Run going on its own.
func (w *Wheel) AfterDaemon(d Time, fn func()) *WheelTimer { return w.arm(d, fn, true) }

func (w *Wheel) arm(d Time, fn func(), daemon bool) *WheelTimer {
	if d < 0 {
		panic("sim: negative wheel delay")
	}
	now := w.env.Now()
	// Round up: a boundary exactly at now+d is kept (never fires early
	// either way), and d = 0 fires at the first boundary >= now.
	at := (now + d + w.tick - 1) / w.tick * w.tick
	if at >= now+Time(len(w.slots))*w.tick {
		return w.armOverflow(d, fn, daemon)
	}
	si := int(at/w.tick) % len(w.slots)
	s := &w.slots[si]
	if s.active > 0 && s.at != at {
		// Bucket held by a different lap of the ring: impossible while
		// the horizon check above holds, but fall back to the heap
		// rather than corrupt the bucket if the invariant ever breaks.
		return w.armOverflow(d, fn, daemon)
	}
	t := &WheelTimer{w: w, fn: fn, slot: si, daemon: daemon}
	if s.active == 0 {
		s.at = at
		s.entries = s.entries[:0]
	}
	s.entries = append(s.entries, t)
	s.active++
	if !daemon {
		s.live++
	}
	w.n++
	w.syncSlot(si)
	return t
}

// armOverflow backs a timer with a plain heap event.
func (w *Wheel) armOverflow(d Time, fn func(), daemon bool) *WheelTimer {
	t := &WheelTimer{w: w, slot: -1, daemon: daemon}
	fire := func() {
		if t.done {
			return
		}
		t.done = true
		w.n--
		fn()
	}
	if daemon {
		t.heap = w.env.AfterDaemon(d, fire)
	} else {
		t.heap = w.env.After(d, fire)
	}
	w.n++
	return t
}

// syncSlot (re)schedules the bucket's single heap event so that its
// daemon-ness reflects the bucket's contents: non-daemon while any live
// timer is armed, daemon while only daemon timers remain, canceled when
// the bucket empties.
func (w *Wheel) syncSlot(si int) {
	s := &w.slots[si]
	if s.active == 0 {
		if s.timer != nil {
			s.timer.Stop()
			s.timer = nil
		}
		return
	}
	wantDaemon := s.live == 0
	if s.timer != nil && s.timer.Pending() && s.timer.ev.daemon == wantDaemon {
		return
	}
	if s.timer != nil {
		s.timer.Stop()
	}
	seq := s.seq
	fire := func() { w.fireSlot(si, seq) }
	if wantDaemon {
		s.timer = w.env.AtDaemon(s.at, fire)
	} else {
		s.timer = w.env.At(s.at, fire)
	}
}

// wheelDetached marks a timer whose bucket is mid-fire: it no longer
// participates in slot accounting, only in its own done flag.
const wheelDetached = -2

// fireSlot runs every armed timer in the bucket, in arming order. The
// sequence guard discards a stale event that survived rescheduling.
// Entries are detached from the slot before any callback runs, so a
// callback that stops a sibling timer (or arms a new one into this
// bucket's next lap) never corrupts the slot counters.
func (w *Wheel) fireSlot(si int, seq uint64) {
	s := &w.slots[si]
	if s.seq != seq {
		return
	}
	s.seq++
	entries := s.entries
	s.entries = nil
	s.active, s.live = 0, 0
	s.timer = nil
	for _, t := range entries {
		t.slot = wheelDetached
	}
	for _, t := range entries {
		if t.done {
			continue
		}
		t.done = true
		w.n--
		t.fn()
	}
}

// Stop cancels the timer if it has not fired. It reports whether the
// timer was still pending, matching *Timer.Stop. Nil-safe.
func (t *WheelTimer) Stop() bool {
	if t == nil || t.done {
		return false
	}
	if t.slot == wheelDetached {
		// The bucket is mid-fire: the entry is already off the slot's
		// books, so only the timer's own state (and the wheel count,
		// which fireSlot has not yet decremented for it) change.
		t.done = true
		t.w.n--
		return true
	}
	if t.slot < 0 {
		if !t.heap.Stop() {
			return false
		}
		t.done = true
		t.w.n--
		return true
	}
	t.done = true
	w := t.w
	s := &w.slots[t.slot]
	s.active--
	w.n--
	if !t.daemon {
		s.live--
	}
	w.syncSlot(t.slot)
	return true
}

// Pending reports whether the timer has neither fired nor been stopped.
// Nil-safe.
func (t *WheelTimer) Pending() bool {
	if t == nil || t.done {
		return false
	}
	if t.slot == wheelDetached {
		return true // its bucket is firing at this very instant
	}
	if t.slot < 0 {
		return t.heap.Pending()
	}
	return true
}
