// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock (nanosecond resolution) through a
// priority queue of events. Two execution styles coexist:
//
//   - Event-driven: callbacks scheduled with At/After run inside the
//     scheduler. Protocol state machines use this style.
//   - Process-driven: goroutines spawned with Go run cooperatively, one
//     at a time, and block on Sleep, Signal.Wait or Mailbox.Recv.
//     Applications and benchmarks use this style.
//
// Exactly one entity (the scheduler or a single process) runs at any
// instant, so simulation state never needs locking, and runs with equal
// seeds are bit-for-bit reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Convenient duration units expressed in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders a time with an adaptive unit, e.g. "12.5us".
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.6gs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.6gms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.6gus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds converts a virtual duration to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts a virtual duration to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

type event struct {
	at       Time
	seq      uint64 // tie-breaker: FIFO among equal-time events
	fn       func()
	canceled bool
	daemon   bool // does not keep Run alive (see AfterDaemon)
	index    int  // heap index, -1 once popped
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Env is one simulation universe: a clock, an event queue, and a seeded
// random number generator. Create with NewEnv; drive with Run or RunUntil.
type Env struct {
	now    Time
	seq    uint64
	events eventHeap
	live   int // pending events that are neither canceled nor daemon
	rng    *rand.Rand

	yield     chan struct{} // process -> scheduler handoff
	nprocs    int
	procPanic any
	stopped   bool
	executed  uint64
}

// NewEnv creates a simulation environment whose random number generator is
// seeded with seed. Equal seeds yield identical simulations.
func NewEnv(seed int64) *Env {
	return &Env{
		rng:   rand.New(rand.NewSource(seed)),
		yield: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Rand returns the environment's deterministic random number generator.
// It must only be used from inside the simulation (events or processes).
func (e *Env) Rand() *rand.Rand { return e.rng }

// Events reports how many events have executed so far.
func (e *Env) Executed() uint64 { return e.executed }

// Timer identifies a scheduled event and allows canceling it.
type Timer struct {
	env *Env
	ev  *event
}

// Stop cancels the timer's pending event. Stopping an already-fired or
// already-stopped timer is a no-op. It reports whether the event was still
// pending.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.canceled || t.ev.index < 0 {
		return false
	}
	t.ev.canceled = true
	if !t.ev.daemon {
		t.env.live--
	}
	return true
}

// Pending reports whether the timer's event has neither fired nor been
// stopped.
func (t *Timer) Pending() bool {
	return t != nil && t.ev != nil && !t.ev.canceled && t.ev.index >= 0
}

// At schedules fn to run at absolute virtual time at. Scheduling in the
// past panics: events must never move the clock backwards.
func (e *Env) At(at Time, fn func()) *Timer { return e.scheduleEvent(at, fn, false) }

// After schedules fn to run d nanoseconds from now. Negative d panics.
func (e *Env) After(d Time, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return e.At(e.now+d, fn)
}

// AtDaemon schedules a daemon event: it runs like any other event while
// the simulation is live, but does not by itself keep Run going — Run
// returns once only daemon (or canceled) events remain. Periodic
// observers (metric samplers) use daemon events so that a workload
// driving Run to completion is never kept alive by its own
// instrumentation.
func (e *Env) AtDaemon(at Time, fn func()) *Timer { return e.scheduleEvent(at, fn, true) }

// AfterDaemon schedules a daemon event d nanoseconds from now (see
// AtDaemon). Negative d panics.
func (e *Env) AfterDaemon(d Time, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return e.AtDaemon(e.now+d, fn)
}

func (e *Env) scheduleEvent(at Time, fn func(), daemon bool) *Timer {
	if at < e.now {
		panic(fmt.Sprintf("sim: event scheduled in the past (%v < %v)", at, e.now))
	}
	ev := &event{at: at, seq: e.seq, fn: fn, daemon: daemon}
	e.seq++
	if !daemon {
		e.live++
	}
	heap.Push(&e.events, ev)
	return &Timer{env: e, ev: ev}
}

// Stop makes the current Run/RunUntil call return after the current event
// completes. Pending events stay queued and a later Run resumes them.
func (e *Env) Stop() { e.stopped = true }

// Run executes events until no live (non-daemon, non-canceled) events
// remain or Stop is called. It returns the time of the last executed
// event. Daemon events execute while live work is pending but never
// keep Run going on their own.
func (e *Env) Run() Time { return e.run(Time(1<<62-1), true) }

// RunUntil executes events with timestamps <= horizon, advancing the clock
// to each event's time. On return the clock rests at the later of its
// previous value and the last event executed; it never exceeds horizon.
// Unlike Run, an explicit horizon bounds daemon events too: they keep
// executing up to the horizon even with no live work left.
func (e *Env) RunUntil(horizon Time) Time { return e.run(horizon, false) }

func (e *Env) run(horizon Time, untilLiveDrained bool) Time {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		next := e.events[0]
		if next.canceled {
			// Free canceled events whenever they surface, even past the
			// horizon: they are unobservable and only hold memory.
			heap.Pop(&e.events)
			continue
		}
		if next.at > horizon || (untilLiveDrained && e.live == 0) {
			break
		}
		heap.Pop(&e.events)
		if !next.daemon {
			e.live--
		}
		e.now = next.at
		e.executed++
		next.fn()
		if e.procPanic != nil {
			p := e.procPanic
			e.procPanic = nil
			panic(p)
		}
	}
	return e.now
}

// Idle reports whether no events remain queued.
func (e *Env) Idle() bool { return len(e.events) == 0 }

// PendingLive returns the number of pending events that would keep Run
// going: scheduled, not canceled, and not daemon.
func (e *Env) PendingLive() int { return e.live }

// PendingEvents returns the number of scheduled, non-canceled events
// still queued, daemon or not. Teardown leak gates use it: after every
// connection is closed and Run has drained, a nonzero count means some
// timer survived its owner.
func (e *Env) PendingEvents() int {
	n := 0
	for _, ev := range e.events {
		if !ev.canceled {
			n++
		}
	}
	return n
}
