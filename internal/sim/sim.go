// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock (nanosecond resolution) through a
// priority queue of events. Two execution styles coexist:
//
//   - Event-driven: callbacks scheduled with At/After run inside the
//     scheduler. Protocol state machines use this style.
//   - Process-driven: goroutines spawned with Go run cooperatively, one
//     at a time, and block on Sleep, Signal.Wait or Mailbox.Recv.
//     Applications and benchmarks use this style.
//
// Exactly one entity (the scheduler or a single process) runs at any
// instant, so simulation state never needs locking, and runs with equal
// seeds are bit-for-bit reproducible.
//
// Hot-path allocation model: event records are recycled through a
// per-Env freelist and the priority queue is a concrete *event heap
// (no container/heap interface boxing). Schedulers that do not need a
// cancel handle use the SchedAt/SchedAfter family, which allocates
// nothing in steady state; the Arg variants additionally avoid the
// per-call closure by passing a single pointer-shaped argument to a
// long-lived func(any). At/After still return a *Timer handle (one
// small allocation) and Rearm re-targets an existing handle for free.
package sim

import (
	"fmt"
	"math/rand"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Convenient duration units expressed in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders a time with an adaptive unit, e.g. "12.5us".
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.6gs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.6gms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.6gus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds converts a virtual duration to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts a virtual duration to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// event is one scheduled callback. Events are recycled through the
// Env freelist; gen increments on every recycle so a stale *Timer
// handle from a previous life can never cancel the new occupant.
type event struct {
	at       Time
	seq      uint64 // tie-breaker: FIFO among equal-time events
	fn       func()
	fnArg    func(any) // set instead of fn by the Arg variants
	arg      any
	canceled bool
	daemon   bool // does not keep Run alive (see AfterDaemon)
	index    int  // heap index, -1 once popped
	gen      uint64
}

// eventHeap is a binary min-heap ordered by (at, seq). seq is unique,
// so the order is total and pop order is deterministic.
type eventHeap []*event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) push(ev *event) {
	*h = append(*h, ev)
	i := len(*h) - 1
	ev.index = i
	h.up(i)
}

func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h eventHeap) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			break
		}
		h.swap(i, m)
		i = m
	}
}

// pop removes and returns the earliest event.
func (h *eventHeap) pop() *event {
	old := *h
	n := len(old)
	ev := old[0]
	old.swap(0, n-1)
	old[n-1] = nil
	*h = old[:n-1]
	if n > 1 {
		(*h).down(0)
	}
	ev.index = -1
	return ev
}

// Env is one simulation universe: a clock, an event queue, and a seeded
// random number generator. Create with NewEnv; drive with Run or RunUntil.
type Env struct {
	now    Time
	seq    uint64
	events eventHeap
	free   []*event // recycled event records
	live   int      // pending events that are neither canceled nor daemon
	rng    *rand.Rand

	yield     chan struct{} // process -> scheduler handoff
	nprocs    int
	procPanic any
	stopped   bool
	executed  uint64
}

// NewEnv creates a simulation environment whose random number generator is
// seeded with seed. Equal seeds yield identical simulations.
func NewEnv(seed int64) *Env {
	return &Env{
		rng:   rand.New(rand.NewSource(seed)),
		yield: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Rand returns the environment's deterministic random number generator.
// It must only be used from inside the simulation (events or processes).
func (e *Env) Rand() *rand.Rand { return e.rng }

// Events reports how many events have executed so far.
func (e *Env) Executed() uint64 { return e.executed }

func (e *Env) getEvent() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &event{}
}

// putEvent recycles a popped event. The generation bump invalidates
// every Timer handle pointing at the old life.
func (e *Env) putEvent(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.fnArg = nil
	ev.arg = nil
	ev.canceled = false
	ev.daemon = false
	e.free = append(e.free, ev)
}

// Timer identifies a scheduled event and allows canceling it. The
// handle stays valid forever: once the event has fired (or been
// stopped) the underlying record may be recycled for a later schedule,
// and the generation snapshot makes Stop/Pending on the stale handle a
// no-op rather than a misfire against the new occupant.
type Timer struct {
	env *Env
	ev  *event
	gen uint64
}

// valid reports whether the handle still refers to the life of the
// event it was created for.
func (t *Timer) valid() bool {
	return t != nil && t.ev != nil && t.gen == t.ev.gen
}

// Stop cancels the timer's pending event. Stopping an already-fired or
// already-stopped timer is a no-op. It reports whether the event was still
// pending.
func (t *Timer) Stop() bool {
	if !t.valid() || t.ev.canceled || t.ev.index < 0 {
		return false
	}
	t.ev.canceled = true
	if !t.ev.daemon {
		t.env.live--
	}
	return true
}

// Pending reports whether the timer's event has neither fired nor been
// stopped.
func (t *Timer) Pending() bool {
	return t.valid() && !t.ev.canceled && t.ev.index >= 0
}

// At schedules fn to run at absolute virtual time at. Scheduling in the
// past panics: events must never move the clock backwards.
func (e *Env) At(at Time, fn func()) *Timer {
	ev := e.scheduleEvent(at, fn, nil, nil, false)
	return &Timer{env: e, ev: ev, gen: ev.gen}
}

// After schedules fn to run d nanoseconds from now. Negative d panics.
func (e *Env) After(d Time, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return e.At(e.now+d, fn)
}

// SchedAt schedules fn at absolute time at without returning a cancel
// handle. It allocates nothing in steady state; hot paths that never
// stop their events use this instead of At.
func (e *Env) SchedAt(at Time, fn func()) { e.scheduleEvent(at, fn, nil, nil, false) }

// SchedAfter schedules fn d nanoseconds from now without returning a
// cancel handle. Negative d panics.
func (e *Env) SchedAfter(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	e.scheduleEvent(e.now+d, fn, nil, nil, false)
}

// SchedAtArg schedules fn(arg) at absolute time at without returning a
// cancel handle. With a long-lived fn and a pointer-shaped arg the call
// performs no allocation at all — this is the zero-alloc replacement
// for scheduling a fresh capturing closure per frame.
func (e *Env) SchedAtArg(at Time, fn func(any), arg any) { e.scheduleEvent(at, nil, fn, arg, false) }

// SchedAfterArg schedules fn(arg) d nanoseconds from now without
// returning a cancel handle. Negative d panics.
func (e *Env) SchedAfterArg(d Time, fn func(any), arg any) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	e.scheduleEvent(e.now+d, nil, fn, arg, false)
}

// Rearm schedules fn to run d nanoseconds from now, reusing t as the
// cancel handle: a still-pending previous event is stopped first and
// the handle is re-pointed in place, so a periodically re-armed timer
// costs one Timer allocation for the lifetime of its owner. A nil t
// behaves like After.
func (e *Env) Rearm(t *Timer, d Time, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	if t == nil {
		return e.After(d, fn)
	}
	t.Stop()
	ev := e.scheduleEvent(e.now+d, fn, nil, nil, false)
	t.env = e
	t.ev = ev
	t.gen = ev.gen
	return t
}

// RearmDaemon is Rearm with daemon semantics (see AfterDaemon): the
// re-armed event never keeps Run alive by itself. A nil t behaves like
// AfterDaemon.
func (e *Env) RearmDaemon(t *Timer, d Time, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	if t == nil {
		return e.AfterDaemon(d, fn)
	}
	t.Stop()
	ev := e.scheduleEvent(e.now+d, fn, nil, nil, true)
	t.env = e
	t.ev = ev
	t.gen = ev.gen
	return t
}

// AtDaemon schedules a daemon event: it runs like any other event while
// the simulation is live, but does not by itself keep Run going — Run
// returns once only daemon (or canceled) events remain. Periodic
// observers (metric samplers) use daemon events so that a workload
// driving Run to completion is never kept alive by its own
// instrumentation.
func (e *Env) AtDaemon(at Time, fn func()) *Timer {
	ev := e.scheduleEvent(at, fn, nil, nil, true)
	return &Timer{env: e, ev: ev, gen: ev.gen}
}

// AfterDaemon schedules a daemon event d nanoseconds from now (see
// AtDaemon). Negative d panics.
func (e *Env) AfterDaemon(d Time, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return e.AtDaemon(e.now+d, fn)
}

func (e *Env) scheduleEvent(at Time, fn func(), fnArg func(any), arg any, daemon bool) *event {
	if at < e.now {
		panic(fmt.Sprintf("sim: event scheduled in the past (%v < %v)", at, e.now))
	}
	ev := e.getEvent()
	ev.at = at
	ev.seq = e.seq
	ev.fn = fn
	ev.fnArg = fnArg
	ev.arg = arg
	ev.daemon = daemon
	e.seq++
	if !daemon {
		e.live++
	}
	e.events.push(ev)
	return ev
}

// Stop makes the current Run/RunUntil call return after the current event
// completes. Pending events stay queued and a later Run resumes them.
func (e *Env) Stop() { e.stopped = true }

// Run executes events until no live (non-daemon, non-canceled) events
// remain or Stop is called. It returns the time of the last executed
// event. Daemon events execute while live work is pending but never
// keep Run going on their own.
func (e *Env) Run() Time { return e.run(Time(1<<62-1), true) }

// RunUntil executes events with timestamps <= horizon, advancing the clock
// to each event's time. On return the clock rests at the later of its
// previous value and the last event executed; it never exceeds horizon.
// Unlike Run, an explicit horizon bounds daemon events too: they keep
// executing up to the horizon even with no live work left.
func (e *Env) RunUntil(horizon Time) Time { return e.run(horizon, false) }

func (e *Env) run(horizon Time, untilLiveDrained bool) Time {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		next := e.events[0]
		if next.canceled {
			// Free canceled events whenever they surface, even past the
			// horizon: they are unobservable and only hold memory.
			e.events.pop()
			e.putEvent(next)
			continue
		}
		if next.at > horizon || (untilLiveDrained && e.live == 0) {
			break
		}
		e.events.pop()
		if !next.daemon {
			e.live--
		}
		e.now = next.at
		e.executed++
		// Snapshot the callback and recycle the record before running
		// it: the callback may schedule new events (which can then
		// reuse this record) but can no longer observe it.
		fn, fnArg, arg := next.fn, next.fnArg, next.arg
		e.putEvent(next)
		if fnArg != nil {
			fnArg(arg)
		} else {
			fn()
		}
		if e.procPanic != nil {
			p := e.procPanic
			e.procPanic = nil
			panic(p)
		}
	}
	return e.now
}

// Idle reports whether no events remain queued.
func (e *Env) Idle() bool { return len(e.events) == 0 }

// PendingLive returns the number of pending events that would keep Run
// going: scheduled, not canceled, and not daemon.
func (e *Env) PendingLive() int { return e.live }

// PendingEvents returns the number of scheduled, non-canceled events
// still queued, daemon or not. Teardown leak gates use it: after every
// connection is closed and Run has drained, a nonzero count means some
// timer survived its owner.
func (e *Env) PendingEvents() int {
	n := 0
	for _, ev := range e.events {
		if !ev.canceled {
			n++
		}
	}
	return n
}
