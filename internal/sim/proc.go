package sim

import (
	"fmt"
	"runtime/debug"
)

// Proc is a simulated process: a goroutine that runs cooperatively under
// the scheduler. At most one process runs at a time; a process only
// executes between a resume from the scheduler and its next blocking call
// (Sleep, Wait, Recv) or its return.
type Proc struct {
	env    *Env
	name   string
	resume chan struct{}
	done   Signal
	dead   bool
	wake   func() // schedules this process; created once at spawn
}

// Name returns the name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Env returns the environment this process runs in.
func (p *Proc) Env() *Env { return p.env }

// Done returns a signal that fires when the process returns.
func (p *Proc) Done() *Signal { return &p.done }

// Dead reports whether the process has returned.
func (p *Proc) Dead() bool { return p.dead }

// Go spawns fn as a new simulated process that starts at the current
// virtual time (after already-queued events at this instant).
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{env: e, name: name, resume: make(chan struct{})}
	p.wake = func() { e.schedule(p) }
	e.nprocs++
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				e.procPanic = fmt.Sprintf("sim: process %q panicked: %v\n%s", p.name, r, debug.Stack())
			}
			p.dead = true
			e.nprocs--
			p.done.fire(e)
			e.yield <- struct{}{}
		}()
		fn(p)
	}()
	e.SchedAfter(0, p.wake)
	return p
}

// schedule transfers control to p until it blocks or returns. It must be
// called from scheduler context (inside an event callback).
func (e *Env) schedule(p *Proc) {
	if p.dead {
		return
	}
	p.resume <- struct{}{}
	<-e.yield
}

// park blocks the calling process until the scheduler resumes it.
func (p *Proc) park() {
	p.env.yield <- struct{}{}
	<-p.resume
}

// Sleep suspends the process for d virtual nanoseconds.
func (p *Proc) Sleep(d Time) {
	p.env.SchedAfter(d, p.wake)
	p.park()
}

// Yield reschedules the process at the current time, letting every other
// event and process queued at this instant run first.
func (p *Proc) Yield() { p.Sleep(0) }

// Signal is a one-shot completion event that processes can wait on and
// event-driven code can subscribe to. The zero value is ready to use.
type Signal struct {
	fired   bool
	waiters []*Proc
	w0      [1]*Proc // inline storage: the common single-waiter case allocates nothing
	cbs     []func()
}

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// HasWaiters reports whether any process or callback is currently
// waiting on the signal.
func (s *Signal) HasWaiters() bool { return len(s.waiters) > 0 || len(s.cbs) > 0 }

// Fire fires the signal at the current virtual time, waking all waiting
// processes and scheduling all subscribed callbacks. Firing twice panics:
// a Signal represents exactly one completion.
func (s *Signal) Fire(e *Env) {
	if s.fired {
		panic("sim: Signal fired twice")
	}
	s.fire(e)
}

func (s *Signal) fire(e *Env) {
	if s.fired {
		return
	}
	s.fired = true
	for _, p := range s.waiters {
		e.SchedAfter(0, p.wake)
	}
	s.waiters = nil
	s.w0[0] = nil
	for _, cb := range s.cbs {
		e.SchedAfter(0, cb)
	}
	s.cbs = nil
}

// OnFire schedules fn for when the signal fires; if it already fired, fn
// is scheduled immediately.
func (s *Signal) OnFire(e *Env, fn func()) {
	if s.fired {
		e.SchedAfter(0, fn)
		return
	}
	s.cbs = append(s.cbs, fn)
}

// Wait blocks the process until the signal fires; it returns immediately
// if the signal already fired.
func (p *Proc) Wait(s *Signal) {
	if s.fired {
		return
	}
	if s.waiters == nil {
		s.w0[0] = p
		s.waiters = s.w0[:1]
	} else {
		s.waiters = append(s.waiters, p)
	}
	p.park()
}

// WaitAll blocks until every given signal has fired.
func (p *Proc) WaitAll(sigs ...*Signal) {
	for _, s := range sigs {
		p.Wait(s)
	}
}

// Mailbox is an unbounded FIFO queue for passing values between simulated
// processes and event-driven code.
type Mailbox[T any] struct {
	items   []T
	head    int // live items are items[head:]; resets to 0 on drain
	waiters []*Proc
}

// Len returns the number of queued items.
func (m *Mailbox[T]) Len() int { return len(m.items) - m.head }

// HasWaiters reports whether any process is blocked in Recv. Senders
// that charge a wakeup cost only when someone is actually asleep (e.g.
// completion-queue delivery) test this before paying it.
func (m *Mailbox[T]) HasWaiters() bool { return len(m.waiters) > 0 }

// Send enqueues v and wakes one waiting receiver, if any.
func (m *Mailbox[T]) Send(e *Env, v T) {
	if m.head > 0 && m.head == len(m.items) {
		m.items, m.head = m.items[:0], 0
	}
	m.items = append(m.items, v)
	if len(m.waiters) > 0 {
		p := m.waiters[0]
		m.waiters = m.waiters[:copy(m.waiters, m.waiters[1:])]
		e.SchedAfter(0, p.wake)
	}
}

// Recv dequeues the oldest item, blocking while the mailbox is empty.
func (m *Mailbox[T]) Recv(p *Proc) T {
	for m.Len() == 0 {
		m.waiters = append(m.waiters, p)
		p.park()
	}
	v, _ := m.TryRecv()
	return v
}

// TryRecv dequeues the oldest item without blocking; ok reports whether an
// item was available.
func (m *Mailbox[T]) TryRecv() (v T, ok bool) {
	if m.Len() == 0 {
		return v, false
	}
	v = m.items[m.head]
	var zero T
	m.items[m.head] = zero
	m.head++
	if m.head == len(m.items) {
		m.items, m.head = m.items[:0], 0
	}
	return v, true
}
