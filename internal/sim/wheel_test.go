package sim

import "testing"

func TestWheelFiresInOrderAndRoundsUp(t *testing.T) {
	env := NewEnv(1)
	w := NewWheel(env, 10*Microsecond)
	var order []int
	env.After(0, func() {
		w.After(12*Microsecond, func() { order = append(order, 1) }) // rounds to 20us
		w.After(15*Microsecond, func() { order = append(order, 2) }) // same bucket, later arm
		w.After(5*Microsecond, func() { order = append(order, 3) })  // rounds to 10us
	})
	end := env.Run()
	if got, want := len(order), 3; got != want {
		t.Fatalf("fired %d timers, want %d", got, want)
	}
	if order[0] != 3 || order[1] != 1 || order[2] != 2 {
		t.Errorf("firing order %v, want [3 1 2] (bucket time, then arming order)", order)
	}
	if end != 20*Microsecond {
		t.Errorf("last event at %v, want 20us", end)
	}
	if w.Len() != 0 {
		t.Errorf("wheel still holds %d timers", w.Len())
	}
}

func TestWheelOneHeapEventPerBucket(t *testing.T) {
	env := NewEnv(1)
	w := NewWheel(env, 10*Microsecond)
	fired := 0
	env.After(0, func() {
		for i := 0; i < 100; i++ {
			w.After(10*Microsecond, func() { fired++ })
		}
		// 100 timers in one bucket: the heap should hold the bucket
		// event plus nothing else from the wheel.
		if got := env.PendingEvents(); got != 1 {
			t.Errorf("pending heap events = %d, want 1 (one per occupied bucket)", got)
		}
	})
	env.Run()
	if fired != 100 {
		t.Fatalf("fired %d, want 100", fired)
	}
}

func TestWheelStop(t *testing.T) {
	env := NewEnv(1)
	w := NewWheel(env, 10*Microsecond)
	fired := false
	env.After(0, func() {
		wt := w.After(30*Microsecond, func() { fired = true })
		if !wt.Pending() {
			t.Error("armed timer not pending")
		}
		if !wt.Stop() {
			t.Error("Stop on a pending timer returned false")
		}
		if wt.Pending() {
			t.Error("stopped timer still pending")
		}
		if wt.Stop() {
			t.Error("second Stop returned true")
		}
	})
	env.Run()
	if fired {
		t.Error("stopped timer fired")
	}
	if w.Len() != 0 {
		t.Errorf("wheel Len = %d after stop", w.Len())
	}
	// A fully stopped bucket must not keep any heap event pending.
	if got := env.PendingEvents(); got != 0 {
		t.Errorf("pending heap events = %d after stopping the only timer", got)
	}
}

func TestWheelStopSiblingDuringFire(t *testing.T) {
	env := NewEnv(1)
	w := NewWheel(env, 10*Microsecond)
	var t2 *WheelTimer
	fired2 := false
	env.After(0, func() {
		w.After(10*Microsecond, func() { t2.Stop() })
		t2 = w.After(10*Microsecond, func() { fired2 = true })
		w.After(10*Microsecond, func() {}) // third sibling keeps the loop going
	})
	env.Run()
	if fired2 {
		t.Error("timer stopped by a same-bucket sibling still fired")
	}
	if w.Len() != 0 {
		t.Errorf("wheel Len = %d", w.Len())
	}
}

func TestWheelOverflowFallsBackToHeap(t *testing.T) {
	env := NewEnv(1)
	w := NewWheel(env, 10*Microsecond)
	firedAt := Time(-1)
	env.After(0, func() {
		// Far beyond the 512-slot horizon: exact heap timing, no rounding.
		wt := w.After(123456789*Nanosecond, func() { firedAt = env.Now() })
		if !wt.Pending() {
			t.Error("overflow timer not pending")
		}
	})
	env.Run()
	if firedAt != 123456789*Nanosecond {
		t.Errorf("overflow timer fired at %v, want exactly 123456789ns", firedAt)
	}
	if w.Len() != 0 {
		t.Errorf("wheel Len = %d", w.Len())
	}
}

func TestWheelDaemonDoesNotKeepRunAlive(t *testing.T) {
	env := NewEnv(1)
	w := NewWheel(env, 10*Microsecond)
	daemonFired := false
	env.After(5*Microsecond, func() {}) // the only live work
	env.After(0, func() {
		w.AfterDaemon(100*Microsecond, func() { daemonFired = true })
	})
	end := env.Run()
	if daemonFired {
		t.Error("daemon wheel timer fired with no live work to carry it")
	}
	if end != 5*Microsecond {
		t.Errorf("Run ended at %v, want 5us (daemon bucket must not extend it)", end)
	}
}

func TestWheelDaemonnessFollowsContents(t *testing.T) {
	env := NewEnv(1)
	w := NewWheel(env, 10*Microsecond)
	liveFired := false
	env.After(0, func() {
		// One daemon and one live timer share a bucket: the bucket event
		// must be live. Stopping the live one must demote it to daemon.
		w.AfterDaemon(50*Microsecond, func() {})
		lt := w.After(50*Microsecond, func() { liveFired = true })
		if env.PendingLive() == 0 {
			t.Error("bucket with a live timer reported no live events")
		}
		env.After(1*Microsecond, func() {
			lt.Stop()
			if env.PendingLive() != 0 {
				t.Errorf("pending live = %d after stopping the only live timer", env.PendingLive())
			}
		})
	})
	end := env.Run()
	if liveFired {
		t.Error("stopped live timer fired")
	}
	if end != 1*Microsecond {
		t.Errorf("Run ended at %v, want 1us", end)
	}
}

func TestWheelRearmFromCallback(t *testing.T) {
	env := NewEnv(1)
	w := NewWheel(env, 10*Microsecond)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			w.After(10*Microsecond, tick)
		}
	}
	env.After(0, func() { w.After(10*Microsecond, tick) })
	end := env.Run()
	if count != 5 {
		t.Fatalf("ticked %d times, want 5", count)
	}
	if end != 50*Microsecond {
		t.Errorf("last tick at %v, want 50us", end)
	}
}
