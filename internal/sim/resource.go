package sim

// Resource models a serializing server such as a CPU or a DMA engine:
// submitted work items execute one after another in FIFO order, each
// occupying the resource for its stated duration. It also accounts total
// busy time, from which callers derive utilization over a window.
//
// The implementation keeps only the time the resource next becomes free;
// FIFO order follows from submissions being timestamped monotonically.
type Resource struct {
	name  string
	avail Time // when the next submitted work item can start
	busy  Time // cumulative busy time
	jobs  uint64
}

// NewResource creates a named resource, idle at time zero.
func NewResource(name string) *Resource { return &Resource{name: name} }

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// BusyTime returns cumulative busy time accounted so far, including time
// already committed to queued work.
func (r *Resource) BusyTime() Time { return r.busy }

// Jobs returns the number of work items submitted so far.
func (r *Resource) Jobs() uint64 { return r.jobs }

// FreeAt returns the time at which all currently queued work completes.
func (r *Resource) FreeAt() Time { return r.avail }

// Submit queues a work item of the given duration and returns its
// completion time. If then is non-nil it runs at completion. Zero-duration
// work is legal and completes after earlier queued work.
func (r *Resource) Submit(e *Env, work Time, then func()) Time {
	if work < 0 {
		panic("sim: negative work duration")
	}
	start := e.Now()
	if r.avail > start {
		start = r.avail
	}
	done := start + work
	r.avail = done
	r.busy += work
	r.jobs++
	if then != nil {
		e.SchedAt(done, then)
	}
	return done
}

// SubmitArg is Submit with the completion callback split into a
// long-lived func(any) and a per-call argument, so hot paths avoid
// allocating a capturing closure per work item (see Env.SchedAtArg).
func (r *Resource) SubmitArg(e *Env, work Time, then func(any), arg any) Time {
	if work < 0 {
		panic("sim: negative work duration")
	}
	start := e.Now()
	if r.avail > start {
		start = r.avail
	}
	done := start + work
	r.avail = done
	r.busy += work
	r.jobs++
	if then != nil {
		e.SchedAtArg(done, then, arg)
	}
	return done
}

// Exec queues a work item and blocks the calling process until it
// completes.
func (p *Proc) Exec(r *Resource, work Time) {
	r.Submit(p.env, work, p.wake)
	p.park()
}

// Utilization is a busy-time snapshot taken at a point in time; two
// snapshots bracket a measurement window.
type Utilization struct {
	At   Time
	Busy Time
}

// Snapshot captures the resource's busy time at the current instant.
func (r *Resource) Snapshot(e *Env) Utilization {
	return Utilization{At: e.Now(), Busy: r.busy}
}

// Since returns the busy fraction (0..1+) of the window from the snapshot
// to now. The fraction can exceed 1 transiently because Submit commits
// busy time for queued-but-unfinished work.
func (u Utilization) Since(e *Env, r *Resource) float64 {
	dt := e.Now() - u.At
	if dt <= 0 {
		return 0
	}
	return float64(r.busy-u.Busy) / float64(dt)
}
