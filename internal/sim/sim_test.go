package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	e := NewEnv(1)
	var got []int
	e.After(30, func() { got = append(got, 3) })
	e.After(10, func() { got = append(got, 1) })
	e.After(20, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Errorf("Now = %v, want 30", e.Now())
	}
}

func TestEqualTimeFIFO(t *testing.T) {
	e := NewEnv(1)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.After(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("equal-time events not FIFO at %d: %v", i, got[i])
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEnv(1)
	var order []string
	e.After(10, func() {
		order = append(order, "a")
		e.After(5, func() { order = append(order, "c") })
		e.After(0, func() { order = append(order, "b") })
	})
	e.Run()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v", order)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEnv(1)
	e.After(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("At(past) did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEnv(1)
	defer func() {
		if recover() == nil {
			t.Error("After(-1) did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestTimerStop(t *testing.T) {
	e := NewEnv(1)
	fired := false
	tm := e.After(10, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer not pending after schedule")
	}
	if !tm.Stop() {
		t.Fatal("Stop returned false on pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	e.Run()
	if fired {
		t.Error("stopped timer fired")
	}
	if tm.Pending() {
		t.Error("stopped timer still pending")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	e := NewEnv(1)
	tm := e.After(1, func() {})
	e.Run()
	if tm.Stop() {
		t.Error("Stop after fire returned true")
	}
}

func TestRunUntilHorizon(t *testing.T) {
	e := NewEnv(1)
	var fired []Time
	for _, d := range []Time{10, 20, 30, 40} {
		d := d
		e.After(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %d events by t=25, want 2", len(fired))
	}
	if e.Now() != 20 {
		t.Errorf("Now = %v after horizon run, want 20", e.Now())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("fired %d events total, want 4", len(fired))
	}
}

func TestStop(t *testing.T) {
	e := NewEnv(1)
	n := 0
	for i := 1; i <= 10; i++ {
		e.After(Time(i), func() {
			n++
			if n == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if n != 3 {
		t.Fatalf("executed %d events before Stop took effect, want 3", n)
	}
	e.Run()
	if n != 10 {
		t.Fatalf("executed %d events after resume, want 10", n)
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEnv(1)
	var wake Time
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(100)
		wake = e.Now()
		p.Sleep(50)
	})
	end := e.Run()
	if wake != 100 {
		t.Errorf("woke at %v, want 100", wake)
	}
	if end != 150 {
		t.Errorf("sim ended at %v, want 150", end)
	}
}

func TestProcInterleaving(t *testing.T) {
	e := NewEnv(1)
	var order []string
	e.Go("a", func(p *Proc) {
		order = append(order, "a0")
		p.Sleep(10)
		order = append(order, "a10")
		p.Sleep(20)
		order = append(order, "a30")
	})
	e.Go("b", func(p *Proc) {
		order = append(order, "b0")
		p.Sleep(15)
		order = append(order, "b15")
	})
	e.Run()
	want := []string{"a0", "b0", "a10", "b15", "a30"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestProcDoneSignal(t *testing.T) {
	e := NewEnv(1)
	p1 := e.Go("worker", func(p *Proc) { p.Sleep(42) })
	var joined Time
	e.Go("joiner", func(p *Proc) {
		p.Wait(p1.Done())
		joined = e.Now()
	})
	e.Run()
	if joined != 42 {
		t.Errorf("joined at %v, want 42", joined)
	}
	if !p1.Dead() {
		t.Error("worker not dead after Run")
	}
}

func TestProcPanicPropagates(t *testing.T) {
	e := NewEnv(1)
	e.Go("bad", func(p *Proc) { panic("boom") })
	defer func() {
		if recover() == nil {
			t.Error("process panic did not propagate to Run")
		}
	}()
	e.Run()
}

func TestSignalWaitBeforeAndAfterFire(t *testing.T) {
	e := NewEnv(1)
	var s Signal
	var early, late Time
	e.Go("early", func(p *Proc) {
		p.Wait(&s)
		early = e.Now()
	})
	e.After(10, func() { s.Fire(e) })
	e.Go("late", func(p *Proc) {
		p.Sleep(50)
		p.Wait(&s) // already fired: returns immediately
		late = e.Now()
	})
	e.Run()
	if early != 10 {
		t.Errorf("early waiter woke at %v, want 10", early)
	}
	if late != 50 {
		t.Errorf("late waiter woke at %v, want 50", late)
	}
	if !s.Fired() {
		t.Error("signal not fired")
	}
}

func TestSignalDoubleFirePanics(t *testing.T) {
	e := NewEnv(1)
	var s Signal
	s.Fire(e)
	defer func() {
		if recover() == nil {
			t.Error("double Fire did not panic")
		}
	}()
	s.Fire(e)
}

func TestSignalOnFire(t *testing.T) {
	e := NewEnv(1)
	var s Signal
	var calls []Time
	s.OnFire(e, func() { calls = append(calls, e.Now()) })
	e.After(7, func() { s.Fire(e) })
	e.Run()
	s.OnFire(e, func() { calls = append(calls, e.Now()) }) // post-fire subscribe
	e.Run()
	if len(calls) != 2 || calls[0] != 7 || calls[1] != 7 {
		t.Errorf("calls = %v, want [7 7]", calls)
	}
}

func TestWaitAll(t *testing.T) {
	e := NewEnv(1)
	var a, b Signal
	e.After(10, func() { a.Fire(e) })
	e.After(30, func() { b.Fire(e) })
	var done Time
	e.Go("w", func(p *Proc) {
		p.WaitAll(&a, &b)
		done = e.Now()
	})
	e.Run()
	if done != 30 {
		t.Errorf("WaitAll returned at %v, want 30", done)
	}
}

func TestMailboxFIFO(t *testing.T) {
	e := NewEnv(1)
	var mb Mailbox[int]
	var got []int
	e.Go("recv", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, mb.Recv(p))
		}
	})
	e.Go("send", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(10)
			mb.Send(e, i)
		}
	})
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("got = %v, want 0..4 in order", got)
		}
	}
}

func TestMailboxTryRecv(t *testing.T) {
	e := NewEnv(1)
	var mb Mailbox[string]
	if _, ok := mb.TryRecv(); ok {
		t.Fatal("TryRecv on empty mailbox returned ok")
	}
	mb.Send(e, "x")
	if mb.Len() != 1 {
		t.Fatalf("Len = %d, want 1", mb.Len())
	}
	v, ok := mb.TryRecv()
	if !ok || v != "x" {
		t.Fatalf("TryRecv = %q,%v, want x,true", v, ok)
	}
}

func TestMailboxMultipleWaiters(t *testing.T) {
	e := NewEnv(1)
	var mb Mailbox[int]
	var got []int
	for i := 0; i < 3; i++ {
		e.Go("recv", func(p *Proc) { got = append(got, mb.Recv(p)) })
	}
	e.After(10, func() {
		mb.Send(e, 1)
		mb.Send(e, 2)
		mb.Send(e, 3)
	})
	e.Run()
	if len(got) != 3 {
		t.Fatalf("received %d items, want 3", len(got))
	}
	sum := got[0] + got[1] + got[2]
	if sum != 6 {
		t.Fatalf("items = %v, want a permutation of 1..3", got)
	}
}

func TestResourceSerialization(t *testing.T) {
	e := NewEnv(1)
	r := NewResource("cpu")
	var completions []Time
	e.After(0, func() {
		r.Submit(e, 10, func() { completions = append(completions, e.Now()) })
		r.Submit(e, 10, func() { completions = append(completions, e.Now()) })
		r.Submit(e, 5, func() { completions = append(completions, e.Now()) })
	})
	e.Run()
	want := []Time{10, 20, 25}
	for i := range want {
		if completions[i] != want[i] {
			t.Fatalf("completions = %v, want %v", completions, want)
		}
	}
	if r.BusyTime() != 25 {
		t.Errorf("BusyTime = %v, want 25", r.BusyTime())
	}
	if r.Jobs() != 3 {
		t.Errorf("Jobs = %d, want 3", r.Jobs())
	}
}

func TestResourceIdleGap(t *testing.T) {
	e := NewEnv(1)
	r := NewResource("cpu")
	var done Time
	e.After(0, func() { r.Submit(e, 10, nil) })
	e.After(100, func() { r.Submit(e, 10, func() { done = e.Now() }) })
	e.Run()
	if done != 110 {
		t.Errorf("second job done at %v, want 110 (idle gap respected)", done)
	}
	if r.BusyTime() != 20 {
		t.Errorf("BusyTime = %v, want 20", r.BusyTime())
	}
}

func TestResourceExecBlocks(t *testing.T) {
	e := NewEnv(1)
	r := NewResource("cpu")
	var at Time
	e.Go("a", func(p *Proc) { p.Exec(r, 30) })
	e.Go("b", func(p *Proc) {
		p.Exec(r, 20)
		at = e.Now()
	})
	e.Run()
	if at != 50 {
		t.Errorf("second Exec finished at %v, want 50", at)
	}
}

func TestUtilizationWindow(t *testing.T) {
	e := NewEnv(1)
	r := NewResource("cpu")
	var u float64
	e.After(0, func() {
		snap := r.Snapshot(e)
		r.Submit(e, 25, nil)
		e.After(100, func() { u = snap.Since(e, r) })
	})
	e.Run()
	if u < 0.24 || u > 0.26 {
		t.Errorf("utilization = %v, want 0.25", u)
	}
}

// TestDeterminism runs a randomized workload twice with the same seed and
// requires identical traces, and once with a different seed expecting the
// trace to differ.
func TestDeterminism(t *testing.T) {
	trace := func(seed int64) []Time {
		e := NewEnv(seed)
		var out []Time
		var mb Mailbox[int]
		for i := 0; i < 4; i++ {
			e.Go("p", func(p *Proc) {
				for j := 0; j < 20; j++ {
					p.Sleep(Time(e.Rand().Intn(100)))
					mb.Send(e, j)
					out = append(out, e.Now())
				}
			})
		}
		e.Go("drain", func(p *Proc) {
			for i := 0; i < 80; i++ {
				mb.Recv(p)
				out = append(out, -e.Now())
			}
		})
		e.Run()
		return out
	}
	a, b, c := trace(7), trace(7), trace(8)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical traces (suspicious)")
	}
}

// Property: for any batch of non-negative delays, events fire in
// nondecreasing time order and the clock ends at the max delay.
func TestPropertyEventOrder(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEnv(1)
		var fired []Time
		var max Time
		for _, d := range delays {
			d := Time(d)
			if d > max {
				max = d
			}
			e.After(d, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(delays) == 0 || e.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: a resource's total busy time equals the sum of submitted work
// and the last completion is at least that sum.
func TestPropertyResourceBusy(t *testing.T) {
	f := func(seed int64, works []uint16) bool {
		e := NewEnv(seed)
		r := NewResource("cpu")
		var sum Time
		var last Time
		rng := rand.New(rand.NewSource(seed))
		at := Time(0)
		for _, w := range works {
			w := Time(w)
			sum += w
			at += Time(rng.Intn(50))
			e.At(at, func() { last = r.Submit(e, w, nil) })
		}
		e.Run()
		return r.BusyTime() == sum && (len(works) == 0 || last >= sum)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.5us"},
		{2 * Millisecond, "2ms"},
		{3 * Second, "3s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestYield(t *testing.T) {
	e := NewEnv(1)
	var order []string
	e.Go("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	e.Go("b", func(p *Proc) { order = append(order, "b1") })
	e.Run()
	if len(order) != 3 || order[0] != "a1" || order[1] != "b1" || order[2] != "a2" {
		t.Fatalf("order = %v, want [a1 b1 a2]", order)
	}
}

func BenchmarkEventDispatch(b *testing.B) {
	e := NewEnv(1)
	var fire func()
	n := 0
	fire = func() {
		n++
		if n < b.N {
			e.After(1, fire)
		}
	}
	e.After(1, fire)
	b.ResetTimer()
	e.Run()
}

func BenchmarkProcContextSwitch(b *testing.B) {
	e := NewEnv(1)
	e.Go("spinner", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	e.Run()
}

func BenchmarkResourceSubmit(b *testing.B) {
	e := NewEnv(1)
	r := NewResource("cpu")
	e.After(0, func() {
		for i := 0; i < b.N; i++ {
			r.Submit(e, 1, nil)
		}
	})
	b.ResetTimer()
	e.Run()
}
