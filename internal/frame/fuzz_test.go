package frame

import (
	"bytes"
	"testing"
)

// fuzzSeeds builds the seed corpus: one well-formed frame per frame
// type, exercising payloads, piggy-backed acks, op metadata, and a
// non-zero incarnation, plus MultiData and NACK payload encodings.
func fuzzSeeds() [][]byte {
	var seeds [][]byte
	add := func(h Header, payload []byte) {
		seeds = append(seeds, MustEncode(NewAddr(1, 0), NewAddr(0, 1), &h, payload))
	}
	pay := make([]byte, 100)
	for i := range pay {
		pay[i] = byte(i * 3)
	}
	add(Header{Type: TypeData, ConnID: 7, Seq: 42, Ack: 17, HasAck: true,
		OpID: 9, OpType: OpWrite, OpFlags: Notify | FenceAfter,
		Remote: 0x1000, Offset: 512, Total: 4096, Incarnation: 3}, pay)
	add(Header{Type: TypeData, ConnID: 7, Seq: 43, OpID: 10, OpType: OpReadReply,
		Remote: 0x2000, Local: 0x3000, Total: uint32(len(pay))}, pay)
	add(Header{Type: TypeReadReq, ConnID: 7, Seq: 44, OpID: 11, OpType: OpRead,
		Remote: 0x4000, Local: 0x5000, Total: 1 << 20, Incarnation: 65535}, nil)
	add(Header{Type: TypeAck, ConnID: 7, Ack: 99, HasAck: true}, nil)
	add(Header{Type: TypeNack, ConnID: 7, Ack: 99, HasAck: true},
		EncodeNackPayload([]uint32{100, 103, 107}))
	add(Header{Type: TypeConnReq, ConnID: 3, OpID: 2, Incarnation: 1}, nil)
	add(Header{Type: TypeConnAck, ConnID: 3, OpID: 5, Incarnation: 1}, nil)
	add(Header{Type: TypeConnClose, ConnID: 3, OpID: 5}, nil)
	add(Header{Type: TypeConnCloseAck, ConnID: 5}, nil)
	multi, err := EncodeMultiPayload([]SubOp{
		{OpID: 20, Flags: Notify, Remote: 0x6000, Data: pay[:16]},
		{OpID: 21, Remote: 0x7000, Data: pay[:32]},
	})
	if err != nil {
		panic(err)
	}
	add(Header{Type: TypeMultiData, ConnID: 7, Seq: 45, Incarnation: 2}, multi)
	add(Header{Type: TypeHeartbeat, ConnID: 7, Ack: 50, HasAck: true}, nil)
	add(Header{Type: TypeReset, ConnID: 7, Incarnation: 9}, nil)
	// Maximum-size frame: the MTU boundary.
	add(Header{Type: TypeData, ConnID: 1, Seq: 1, OpID: 1, OpType: OpWrite,
		Total: MaxPayload}, make([]byte, MaxPayload))
	return seeds
}

// FuzzFrameDecode asserts the decoder's core contract under arbitrary
// input: it never panics, and every frame it ACCEPTS re-encodes
// bit-exactly from the decoded form. The second half is the load-bearing
// property — a frame that decodes into a header which encodes
// differently would mean some wire bits are invisible to the decoded
// representation (the exact bug class the incarnation field could have
// introduced had it been left out of Encode or Decode).
func FuzzFrameDecode(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	// A few malformed variants steer the fuzzer at the error paths.
	valid := fuzzSeeds()[0]
	f.Add(valid[:EthHeaderLen+HeaderLen-1]) // truncated
	corrupt := append([]byte(nil), valid...)
	corrupt[EthHeaderLen+offCRC] ^= 0xff // bad checksum
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, buf []byte) {
		dst, src, h, payload, err := Decode(buf)
		if err != nil {
			return // rejected input: the only requirement is no panic
		}
		re := MustEncode(dst, src, &h, payload)
		if !bytes.Equal(re, buf) {
			t.Fatalf("accepted frame does not re-encode bit-exactly:\n in: %x\nout: %x", buf, re)
		}
		// Decoded geometry must be internally consistent.
		if len(payload) > MaxPayload {
			t.Fatalf("accepted payload of %d bytes > MaxPayload", len(payload))
		}
		if h.Type < TypeData || h.Type > TypeReset {
			t.Fatalf("accepted unknown type %d", h.Type)
		}
	})
}

// TestFuzzSeedsRoundTrip runs every seed through the fuzz body so the
// corpus is validated in ordinary `go test` runs, not only under -fuzz.
func TestFuzzSeedsRoundTrip(t *testing.T) {
	for i, s := range fuzzSeeds() {
		dst, src, h, payload, err := Decode(s)
		if err != nil {
			t.Fatalf("seed %d does not decode: %v", i, err)
		}
		if re := MustEncode(dst, src, &h, payload); !bytes.Equal(re, s) {
			t.Fatalf("seed %d round trip mismatch", i)
		}
	}
}
