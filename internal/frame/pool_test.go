package frame

import (
	"bytes"
	"multiedge/internal/race"
	"testing"
)

// encodeIntoCases covers every frame type, ack flag states, and payload
// shapes from empty to MaxPayload.
func encodeIntoCases() []struct {
	name    string
	dst     Addr
	src     Addr
	h       Header
	payload []byte
} {
	big := make([]byte, MaxPayload)
	for i := range big {
		big[i] = byte(i * 7)
	}
	return []struct {
		name    string
		dst     Addr
		src     Addr
		h       Header
		payload []byte
	}{
		{"data", NewAddr(1, 0), NewAddr(2, 1), Header{Type: TypeData, ConnID: 7, Seq: 42, Ack: 41, HasAck: true, OpID: 9, OpType: OpWrite, Remote: 0x1000, Offset: 4, Total: 64}, []byte("payload bytes")},
		{"data-max", NewAddr(3, 1), NewAddr(4, 0), Header{Type: TypeData, ConnID: 1, Seq: 1, OpType: OpWrite, Total: MaxPayload}, big},
		{"ack", NewAddr(0, 0), NewAddr(255, 255), Header{Type: TypeAck, ConnID: 3, Ack: 77, HasAck: true}, nil},
		{"nack", NewAddr(9, 0), NewAddr(8, 0), Header{Type: TypeNack, ConnID: 2, Ack: 5, HasAck: true}, EncodeNackPayload([]uint32{5, 6, 9})},
		{"readreq", NewAddr(1, 1), NewAddr(2, 0), Header{Type: TypeReadReq, ConnID: 4, Seq: 10, OpID: 3, OpType: OpRead, Remote: 64, Local: 128, Total: 256}, nil},
		{"connreq", NewAddr(5, 0), NewAddr(6, 0), Header{Type: TypeConnReq, ConnID: 11, Incarnation: 2}, nil},
		{"heartbeat", NewAddr(5, 0), NewAddr(6, 0), Header{Type: TypeHeartbeat, ConnID: 11, Seq: 900, Incarnation: 7}, nil},
		{"reset", NewAddr(5, 0), NewAddr(6, 0), Header{Type: TypeReset, ConnID: 11, Incarnation: 3}, nil},
	}
}

// TestEncodeIntoMatchesEncode pins EncodeInto's output byte-identical
// to Encode's for every frame shape, including when the target buffer
// is dirty from a previous (poisoned) life.
func TestEncodeIntoMatchesEncode(t *testing.T) {
	for _, tc := range encodeIntoCases() {
		want, err := Encode(tc.dst, tc.src, &tc.h, tc.payload)
		if err != nil {
			t.Fatalf("%s: Encode: %v", tc.name, err)
		}
		dirty := make([]byte, BufCap)
		for i := range dirty {
			dirty[i] = 0xDB
		}
		got, err := EncodeInto(dirty, tc.dst, tc.src, &tc.h, tc.payload)
		if err != nil {
			t.Fatalf("%s: EncodeInto: %v", tc.name, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: EncodeInto output differs from Encode", tc.name)
		}
		if _, _, _, _, err := Decode(got); err != nil {
			t.Fatalf("%s: Decode(EncodeInto): %v", tc.name, err)
		}
	}
}

// TestEncodeIntoShortBufferFallsBack: a too-small target must yield a
// correct frame via the allocation fallback, never a panic or a
// truncated buffer.
func TestEncodeIntoShortBufferFallsBack(t *testing.T) {
	h := Header{Type: TypeData, ConnID: 1, Seq: 2, OpType: OpWrite, Total: 8}
	pay := []byte("01234567")
	want := MustEncode(NewAddr(1, 0), NewAddr(2, 0), &h, pay)
	got := MustEncodeInto(make([]byte, 0, 4), NewAddr(1, 0), NewAddr(2, 0), &h, pay)
	if !bytes.Equal(got, want) {
		t.Fatalf("fallback output differs from Encode")
	}
}

func TestEncodeIntoOversize(t *testing.T) {
	h := Header{Type: TypeData}
	if _, err := EncodeInto(make([]byte, BufCap), 0, 0, &h, make([]byte, MaxPayload+1)); err == nil {
		t.Fatalf("EncodeInto accepted an oversize payload")
	}
}

// TestAppendNackPayloadReuse pins the scratch-reuse NACK encoder to
// EncodeNackPayload's bytes and to zero allocations once the scratch
// has grown (the hot-path leak this PR fixes: frame.go allocated a
// fresh payload per NACK).
func TestAppendNackPayloadReuse(t *testing.T) {
	missing := []uint32{3, 5, 8, 13, 21}
	want := EncodeNackPayload(missing)
	scratch := make([]byte, 0, 2+4*64)
	got := AppendNackPayload(scratch, missing)
	if !bytes.Equal(got, want) {
		t.Fatalf("AppendNackPayload differs from EncodeNackPayload")
	}
	if &got[0] != &scratch[:1][0] {
		t.Fatalf("AppendNackPayload did not reuse the scratch buffer")
	}
	if race.Enabled {
		t.Skip("alloc counting is skipped under -race")
	}
	allocs := testing.AllocsPerRun(100, func() {
		scratch = AppendNackPayload(scratch, missing)
	})
	if allocs != 0 {
		t.Fatalf("AppendNackPayload with warm scratch: %v allocs/op, want 0", allocs)
	}
}

// TestAppendNackPayloadTruncates pins the cap shared with
// EncodeNackPayload.
func TestAppendNackPayloadTruncates(t *testing.T) {
	max := (MaxPayload - 2) / 4
	missing := make([]uint32, max+10)
	for i := range missing {
		missing[i] = uint32(i)
	}
	out := AppendNackPayload(nil, missing)
	seqs, err := DecodeNackPayload(out)
	if err != nil {
		t.Fatalf("DecodeNackPayload: %v", err)
	}
	if len(seqs) != max {
		t.Fatalf("truncated to %d seqs, want %d", len(seqs), max)
	}
}

// TestEncodeIntoAllocFree: the pooled Get→EncodeInto→Put cycle must
// not allocate in steady state.
func TestEncodeIntoAllocFree(t *testing.T) {
	if race.Enabled {
		t.Skip("alloc counting is skipped under -race")
	}
	h := Header{Type: TypeData, ConnID: 1, Seq: 2, OpType: OpWrite, Total: 64}
	pay := make([]byte, 64)
	// Warm the pool so the first Get's backing allocation is done.
	warm := GetBuf()
	PutBuf(warm)
	allocs := testing.AllocsPerRun(200, func() {
		b := GetBuf()
		if _, err := EncodeInto(b.Bytes(), NewAddr(1, 0), NewAddr(2, 0), &h, pay); err != nil {
			t.Fatal(err)
		}
		PutBuf(b)
	})
	if allocs != 0 {
		t.Fatalf("pooled encode cycle: %v allocs/op, want 0", allocs)
	}
}

// TestPutBufDoubleReleasePanics: releasing the same buffer twice must
// panic — a double release would hand one buffer to two owners.
func TestPutBufDoubleReleasePanics(t *testing.T) {
	b := GetBuf()
	PutBuf(b)
	defer func() {
		if recover() == nil {
			t.Fatalf("second PutBuf did not panic")
		}
	}()
	PutBuf(b)
}

// TestPoolPoisoning: with debug poisoning on, a released buffer is
// overwritten so use-after-release reads garbage, and the next
// EncodeInto over the poisoned buffer still produces a frame
// byte-identical to a fresh Encode.
func TestPoolPoisoning(t *testing.T) {
	prev := SetPoolDebug(true)
	defer SetPoolDebug(prev)
	b := GetBuf()
	h := Header{Type: TypeData, ConnID: 1, Seq: 9, OpType: OpWrite, Total: 4}
	buf := MustEncodeInto(b.Bytes(), NewAddr(1, 0), NewAddr(2, 0), &h, []byte("abcd"))
	stale := buf // aliases the pooled storage past its release below
	PutBuf(b)
	for i, v := range stale {
		if v != 0xDB {
			t.Fatalf("byte %d not poisoned after PutBuf: %#x", i, v)
		}
	}
	b2 := GetBuf()
	defer PutBuf(b2)
	got := MustEncodeInto(b2.Bytes(), NewAddr(1, 0), NewAddr(2, 0), &h, []byte("abcd"))
	want := MustEncode(NewAddr(1, 0), NewAddr(2, 0), &h, []byte("abcd"))
	if !bytes.Equal(got, want) {
		t.Fatalf("EncodeInto over poisoned buffer differs from Encode")
	}
}
