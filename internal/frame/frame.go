// Package frame defines the MultiEdge wire format: raw Ethernet-style
// frames carrying the MultiEdge protocol header and payload.
//
// MultiEdge (IPPS'07 §2) runs directly on Ethernet frames, below IP. A
// frame is laid out as
//
//	[Ethernet header 14B][MultiEdge header 56B][payload ≤ MaxPayload][FCS]
//
// The Ethernet FCS, preamble and inter-frame gap are not stored in the
// buffer but are accounted in wire timing via WireLen. The MultiEdge
// header carries ARQ state (frame sequence number, piggy-backed
// cumulative acknowledgement), the remote-memory operation the frame
// belongs to (id, type, fence flags, remote address, offset, total
// length), and a CRC-32 covering header and payload.
package frame

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Addr is a compact link-layer address: node number in the high byte,
// NIC port number in the low byte. It stands in for the 6-byte Ethernet
// MAC; only two bytes are significant in a few-hundred-node cluster.
type Addr uint16

// NewAddr builds the address of port p on node n.
func NewAddr(node, port int) Addr {
	if node < 0 || node > 255 || port < 0 || port > 255 {
		panic(fmt.Sprintf("frame: address out of range: node %d port %d", node, port))
	}
	return Addr(node<<8 | port)
}

// Node returns the node number encoded in the address.
func (a Addr) Node() int { return int(a >> 8) }

// Port returns the NIC port number encoded in the address.
func (a Addr) Port() int { return int(a & 0xff) }

// Broadcast is the all-stations address.
const Broadcast Addr = 0xffff

func (a Addr) String() string { return fmt.Sprintf("%d:%d", a.Node(), a.Port()) }

// Type identifies the kind of a MultiEdge frame.
type Type uint8

// Frame types. Data frames carry payload bytes of a remote write or a
// remote-read reply; ReadReq frames request data from remote memory; Ack
// and Nack are explicit acknowledgement frames sent when there is no data
// traffic to piggy-back on; ConnReq/ConnAck set up connections; MultiData
// frames carry several small coalesced write operations as sub-op
// records (see EncodeMultiPayload); Heartbeat frames keep an idle
// connection's liveness tracking fed; Reset tells the peer the sender
// has abandoned the connection (peer-failure surfacing); RailProbe is a
// per-rail round-trip measurement the receiver answers with a
// RailProbeEcho on the arrival rail (Seq carries the rail index, OpID
// the sender's transmit timestamp, both echoed verbatim).
const (
	TypeData Type = 1 + iota
	TypeReadReq
	TypeAck
	TypeNack
	TypeConnReq
	TypeConnAck
	TypeConnClose
	TypeConnCloseAck
	TypeMultiData
	TypeHeartbeat
	TypeReset
	TypeRailProbe
	TypeRailProbeEcho
)

func (t Type) String() string {
	switch t {
	case TypeData:
		return "DATA"
	case TypeReadReq:
		return "READREQ"
	case TypeAck:
		return "ACK"
	case TypeNack:
		return "NACK"
	case TypeConnReq:
		return "CONNREQ"
	case TypeConnAck:
		return "CONNACK"
	case TypeConnClose:
		return "CONNCLOSE"
	case TypeConnCloseAck:
		return "CONNCLOSEACK"
	case TypeMultiData:
		return "MULTIDATA"
	case TypeHeartbeat:
		return "HEARTBEAT"
	case TypeReset:
		return "RESET"
	case TypeRailProbe:
		return "RAILPROBE"
	case TypeRailProbeEcho:
		return "RAILPROBEECHO"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// OpType identifies the remote memory operation a frame belongs to.
type OpType uint8

// Remote memory operation kinds (IPPS'07 §2.2): remote write, remote
// read, and the reply stream a remote read generates.
const (
	OpNone OpType = iota
	OpWrite
	OpRead
	OpReadReply
)

func (o OpType) String() string {
	switch o {
	case OpNone:
		return "none"
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	case OpReadReply:
		return "readreply"
	}
	return fmt.Sprintf("OpType(%d)", uint8(o))
}

// OpFlags is the per-operation flag bit-field from the RDMA_operation API
// (IPPS'07 §2.2, §2.5).
type OpFlags uint8

const (
	// FenceBefore (the paper's "backward fence") delays this operation
	// at the destination until all previously issued operations on the
	// connection have been performed.
	FenceBefore OpFlags = 1 << iota
	// FenceAfter (the paper's "forward fence") delays all subsequently
	// issued operations until this one has been performed.
	FenceAfter
	// Notify delivers a completion notification to the remote process
	// once the operation has been performed at the destination.
	Notify
	// Solicit requests an immediate explicit acknowledgement when the
	// operation's last frame arrives, instead of waiting for the
	// delayed-ACK policy (AckEvery/AckDelay). Latency-critical writes —
	// storage commits, flag updates a peer polls remotely — complete in
	// one round trip at the cost of one extra control frame. (An
	// extension beyond IPPS'07; real interconnects have the same bit,
	// e.g. InfiniBand's solicited event.)
	Solicit
)

// Frame geometry. The evaluation switches do not support jumbo frames
// (IPPS'07 §3), so the classic 1500-byte Ethernet MTU applies.
const (
	EthHeaderLen = 14 // dst MAC, src MAC, ethertype
	HeaderLen    = 56 // MultiEdge protocol header
	MTU          = 1500
	// MaxPayload is the largest payload a single frame can carry.
	MaxPayload = MTU - HeaderLen // 1444

	// Wire framing overhead not stored in the buffer: 8B preamble+SFD,
	// 4B FCS, 12B inter-frame gap.
	wireExtra = 8 + 4 + 12
)

// WireLen returns the number of byte-times frame transmission occupies on
// the wire, including preamble, FCS and inter-frame gap.
func WireLen(frameLen int) int { return frameLen + wireExtra }

// Header is the decoded MultiEdge protocol header.
type Header struct {
	Type   Type
	ConnID uint32 // connection identifier, receiver-relative
	Seq    uint32 // ARQ frame sequence number within the connection
	Ack    uint32 // piggy-backed cumulative acknowledgement (next expected seq)
	HasAck bool   // whether Ack is meaningful

	// EcnEcho echoes congestion-experienced marks back to the sender:
	// the receiver sets it on ack-bearing frames after taking delivery of
	// a frame a congested switch queue marked (phys.Frame.Ecn), and the
	// sender's congestion controller treats it as an early loss signal.
	// Never set unless ECN marking is armed in the fabric, so existing
	// traffic stays byte-identical.
	EcnEcho bool

	OpID    uint64 // operation sequence number within the connection
	OpType  OpType
	OpFlags OpFlags
	Remote  uint64 // destination virtual address of the operation
	Local   uint64 // for reads: requester-side destination address
	Offset  uint32 // offset of this frame's payload within the operation
	Total   uint32 // total operation length in bytes

	// Incarnation is the connection epoch the frame belongs to. Each
	// Dial/Accept handshake (and each supervised reconnect) negotiates a
	// fresh nonzero incarnation; receive paths drop frames stamped with a
	// dead incarnation, which fences duplicated, long-delayed, or
	// replayed-across-Restore frames from a previous life of the
	// connection. Zero — the wire encoding of the historical pad bytes —
	// means "incarnations unused" and keeps pre-recovery traffic
	// byte-identical.
	Incarnation uint16
}

// Wire layout after the 14-byte Ethernet header (big endian):
//
//	 0: type(1) flags(1) opType(1) opFlags(1)
//	 4: connID(4)
//	 8: seq(4)
//	12: ack(4)
//	16: opID(8)
//	24: remote(8)
//	32: local(8)
//	40: offset(4)
//	44: total(4)
//	48: payloadLen(2) incarnation(2)
//	52: crc32(4)
const (
	flagHasAck  = 0x01
	flagEcnEcho = 0x02
	flagsKnown  = flagHasAck | flagEcnEcho

	offType    = 0
	offFlags   = 1
	offOpType  = 2
	offOpFlags = 3
	offConnID  = 4
	offSeq     = 8
	offAck     = 12
	offOpID    = 16
	offRemote  = 24
	offLocal   = 32
	offOffset  = 40
	offTotal   = 44
	offPayLen  = 48
	offIncarn  = 50
	offCRC     = 52
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// etherType is the IEEE local-experimental ethertype MultiEdge frames
// travel under.
const etherType = 0x88B5

// Errors returned by Encode and Decode.
var (
	ErrTooShort    = errors.New("frame: buffer shorter than headers")
	ErrBadChecksum = errors.New("frame: checksum mismatch")
	ErrBadLength   = errors.New("frame: payload length field disagrees with buffer")
	ErrBadType     = errors.New("frame: unknown frame type")
	ErrBadFlags    = errors.New("frame: unknown header flag bits")
	ErrOversize    = errors.New("frame: payload exceeds MaxPayload")
	ErrBadEther    = errors.New("frame: not a MultiEdge frame")
)

// Encode serializes a frame into a fresh buffer: Ethernet header
// (dst, src, ethertype), MultiEdge header h, payload, with the CRC filled
// in. A payload longer than MaxPayload returns ErrOversize — callers
// fragment operations into frames before encoding.
func Encode(dst, src Addr, h *Header, payload []byte) ([]byte, error) {
	if len(payload) > MaxPayload {
		return nil, fmt.Errorf("%w: %d > %d", ErrOversize, len(payload), MaxPayload)
	}
	buf := make([]byte, EthHeaderLen+HeaderLen+len(payload))
	// Ethernet header: 6-byte MACs with our 2 significant bytes in the
	// low positions; a private ethertype.
	binary.BigEndian.PutUint16(buf[4:], uint16(dst))
	binary.BigEndian.PutUint16(buf[10:], uint16(src))
	binary.BigEndian.PutUint16(buf[12:], etherType)
	p := buf[EthHeaderLen:]
	p[offType] = byte(h.Type)
	var fl byte
	if h.HasAck {
		fl |= flagHasAck
	}
	if h.EcnEcho {
		fl |= flagEcnEcho
	}
	p[offFlags] = fl
	p[offOpType] = byte(h.OpType)
	p[offOpFlags] = byte(h.OpFlags)
	binary.BigEndian.PutUint32(p[offConnID:], h.ConnID)
	binary.BigEndian.PutUint32(p[offSeq:], h.Seq)
	binary.BigEndian.PutUint32(p[offAck:], h.Ack)
	binary.BigEndian.PutUint64(p[offOpID:], h.OpID)
	binary.BigEndian.PutUint64(p[offRemote:], h.Remote)
	binary.BigEndian.PutUint64(p[offLocal:], h.Local)
	binary.BigEndian.PutUint32(p[offOffset:], h.Offset)
	binary.BigEndian.PutUint32(p[offTotal:], h.Total)
	binary.BigEndian.PutUint16(p[offPayLen:], uint16(len(payload)))
	binary.BigEndian.PutUint16(p[offIncarn:], h.Incarnation)
	copy(p[HeaderLen:], payload)
	binary.BigEndian.PutUint32(p[offCRC:], checksum(buf))
	return buf, nil
}

// MustEncode is Encode for internal fragmenting callers that guarantee
// the payload fits in one frame; it panics on oversize.
func MustEncode(dst, src Addr, h *Header, payload []byte) []byte {
	buf, err := Encode(dst, src, h, payload)
	if err != nil {
		panic(err)
	}
	return buf
}

// crcZero stands in for the CRC field while checksumming; package
// scope keeps the 4-byte slice from escaping per call.
var crcZero [4]byte

// checksum computes the CRC over the whole frame with the CRC field
// treated as zero.
func checksum(buf []byte) uint32 {
	p := buf[EthHeaderLen:]
	crc := crc32.Update(0, castagnoli, buf[:EthHeaderLen+offCRC])
	crc = crc32.Update(crc, castagnoli, crcZero[:])
	return crc32.Update(crc, castagnoli, p[offCRC+4:])
}

// Decode parses and verifies a frame buffer produced by Encode. The
// returned payload aliases buf.
func Decode(buf []byte) (dst, src Addr, h Header, payload []byte, err error) {
	if len(buf) < EthHeaderLen+HeaderLen {
		return 0, 0, Header{}, nil, ErrTooShort
	}
	if binary.BigEndian.Uint16(buf[12:]) != etherType {
		return 0, 0, Header{}, nil, ErrBadEther
	}
	// The four MAC bytes Encode leaves zero (only two of each six are
	// significant) must BE zero: the decoder accepts exactly the
	// encoder's image, so decode→re-encode is bit-exact for every
	// accepted frame.
	for _, i := range [...]int{0, 1, 2, 3, 6, 7, 8, 9} {
		if buf[i] != 0 {
			return 0, 0, Header{}, nil, ErrBadEther
		}
	}
	dst = Addr(binary.BigEndian.Uint16(buf[4:]))
	src = Addr(binary.BigEndian.Uint16(buf[10:]))
	p := buf[EthHeaderLen:]
	if got, want := binary.BigEndian.Uint32(p[offCRC:]), checksum(buf); got != want {
		return 0, 0, Header{}, nil, ErrBadChecksum
	}
	h.Type = Type(p[offType])
	if h.Type < TypeData || h.Type > TypeRailProbeEcho {
		return 0, 0, Header{}, nil, ErrBadType
	}
	if p[offFlags]&^flagsKnown != 0 {
		// Unknown flag bits would decode, vanish on re-encode, and break
		// the decode→re-encode bit-exactness property the fuzzer pins.
		return 0, 0, Header{}, nil, ErrBadFlags
	}
	h.HasAck = p[offFlags]&flagHasAck != 0
	h.EcnEcho = p[offFlags]&flagEcnEcho != 0
	h.OpType = OpType(p[offOpType])
	h.OpFlags = OpFlags(p[offOpFlags])
	h.ConnID = binary.BigEndian.Uint32(p[offConnID:])
	h.Seq = binary.BigEndian.Uint32(p[offSeq:])
	h.Ack = binary.BigEndian.Uint32(p[offAck:])
	h.OpID = binary.BigEndian.Uint64(p[offOpID:])
	h.Remote = binary.BigEndian.Uint64(p[offRemote:])
	h.Local = binary.BigEndian.Uint64(p[offLocal:])
	h.Offset = binary.BigEndian.Uint32(p[offOffset:])
	h.Total = binary.BigEndian.Uint32(p[offTotal:])
	plen := int(binary.BigEndian.Uint16(p[offPayLen:]))
	if plen != len(p)-HeaderLen {
		return 0, 0, Header{}, nil, ErrBadLength
	}
	if plen > MaxPayload {
		// Encode never produces such a frame; accepting one here would
		// break the decode→re-encode round trip.
		return 0, 0, Header{}, nil, ErrOversize
	}
	h.Incarnation = binary.BigEndian.Uint16(p[offIncarn:])
	return dst, src, h, p[HeaderLen:], nil
}

// EncodeNackPayload serializes the list of missing sequence numbers a
// NACK frame reports (IPPS'07 §2.4: negative acknowledgements name lost
// or damaged frames for retransmission).
func EncodeNackPayload(missing []uint32) []byte {
	return AppendNackPayload(nil, missing)
}

// SubOp is one coalesced small-write operation carried inside a
// TypeMultiData frame. Each sub-op keeps its own operation id and flag
// bits, so the receive side fans completion, fences, Notify and Solicit
// out per operation exactly as if each had travelled in its own frame.
type SubOp struct {
	OpID   uint64
	Flags  OpFlags
	Remote uint64
	Data   []byte
}

// SubOpOverhead is the per-sub-op encoding overhead inside a MultiData
// payload: opID(8) + flags(1) + remote(8) + length(2).
const SubOpOverhead = 19

// multiCountLen is the leading sub-op count field.
const multiCountLen = 2

// EncodeMultiPayload serializes coalesced sub-ops into a MultiData frame
// payload: count(2) then per sub-op opID(8) flags(1) remote(8) len(2)
// data. It returns ErrOversize when the records do not fit in one
// frame's payload — the coalescing sender packs under MaxPayload by
// construction.
func EncodeMultiPayload(subs []SubOp) ([]byte, error) {
	return EncodeMultiPayloadInto(nil, subs)
}

// EncodeMultiPayloadInto is EncodeMultiPayload targeting a
// caller-supplied buffer (typically a pooled Buf's Bytes()): the records
// serialize into buf's backing array when it is large enough, falling
// back to a fresh allocation otherwise, and the resliced result is
// byte-identical to EncodeMultiPayload's.
func EncodeMultiPayloadInto(buf []byte, subs []SubOp) ([]byte, error) {
	total := multiCountLen
	for _, s := range subs {
		total += SubOpOverhead + len(s.Data)
	}
	if total > MaxPayload {
		return nil, fmt.Errorf("%w: %d coalesced sub-ops need %d > %d", ErrOversize, len(subs), total, MaxPayload)
	}
	var out []byte
	if cap(buf) >= total {
		out = buf[:total]
	} else {
		out = make([]byte, total)
	}
	binary.BigEndian.PutUint16(out, uint16(len(subs)))
	o := multiCountLen
	for _, s := range subs {
		binary.BigEndian.PutUint64(out[o:], s.OpID)
		out[o+8] = byte(s.Flags)
		binary.BigEndian.PutUint64(out[o+9:], s.Remote)
		binary.BigEndian.PutUint16(out[o+17:], uint16(len(s.Data)))
		copy(out[o+SubOpOverhead:], s.Data)
		o += SubOpOverhead + len(s.Data)
	}
	return out, nil
}

// DecodeMultiPayload parses a MultiData payload back into sub-ops. The
// returned Data slices alias p.
func DecodeMultiPayload(p []byte) ([]SubOp, error) {
	if len(p) < multiCountLen {
		return nil, ErrTooShort
	}
	n := int(binary.BigEndian.Uint16(p))
	subs := make([]SubOp, 0, n)
	o := multiCountLen
	for i := 0; i < n; i++ {
		if len(p) < o+SubOpOverhead {
			return nil, ErrTooShort
		}
		s := SubOp{
			OpID:   binary.BigEndian.Uint64(p[o:]),
			Flags:  OpFlags(p[o+8]),
			Remote: binary.BigEndian.Uint64(p[o+9:]),
		}
		dn := int(binary.BigEndian.Uint16(p[o+17:]))
		if len(p) < o+SubOpOverhead+dn {
			return nil, ErrTooShort
		}
		s.Data = p[o+SubOpOverhead : o+SubOpOverhead+dn]
		subs = append(subs, s)
		o += SubOpOverhead + dn
	}
	return subs, nil
}

// DecodeNackPayload parses a NACK payload back into sequence numbers.
func DecodeNackPayload(p []byte) ([]uint32, error) {
	if len(p) < 2 {
		return nil, ErrTooShort
	}
	n := int(binary.BigEndian.Uint16(p))
	if len(p) < 2+4*n {
		return nil, ErrTooShort
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.BigEndian.Uint32(p[2+4*i:])
	}
	return out, nil
}
