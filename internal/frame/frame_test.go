package frame

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddr(t *testing.T) {
	a := NewAddr(12, 1)
	if a.Node() != 12 || a.Port() != 1 {
		t.Fatalf("addr = %d:%d, want 12:1", a.Node(), a.Port())
	}
	if a.String() != "12:1" {
		t.Errorf("String = %q", a.String())
	}
}

func TestAddrRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewAddr(300,0) did not panic")
		}
	}()
	NewAddr(300, 0)
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	h := Header{
		Type: TypeData, ConnID: 7, Seq: 1234, Ack: 1200, HasAck: true,
		OpID: 42, OpType: OpWrite, OpFlags: FenceBefore | Notify,
		Remote: 0xdeadbeef00, Local: 0x1000, Offset: 2888, Total: 65536,
	}
	payload := []byte("hello, multiedge")
	buf := MustEncode(NewAddr(3, 0), NewAddr(5, 1), &h, payload)
	dst, src, got, pl, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if dst != NewAddr(3, 0) || src != NewAddr(5, 1) {
		t.Errorf("addrs = %v,%v", dst, src)
	}
	if got != h {
		t.Errorf("header = %+v, want %+v", got, h)
	}
	if !bytes.Equal(pl, payload) {
		t.Errorf("payload = %q", pl)
	}
}

func TestEncodeEmptyPayload(t *testing.T) {
	h := Header{Type: TypeAck, ConnID: 1, Ack: 99, HasAck: true}
	buf := MustEncode(NewAddr(0, 0), NewAddr(1, 0), &h, nil)
	if len(buf) != EthHeaderLen+HeaderLen {
		t.Fatalf("len = %d, want %d", len(buf), EthHeaderLen+HeaderLen)
	}
	_, _, got, pl, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(pl) != 0 || got.Ack != 99 || !got.HasAck {
		t.Errorf("got %+v payload %d bytes", got, len(pl))
	}
}

func TestEncodeMaxPayload(t *testing.T) {
	p := make([]byte, MaxPayload)
	for i := range p {
		p[i] = byte(i)
	}
	buf := MustEncode(1, 2, &Header{Type: TypeData}, p)
	if len(buf) != MTU+EthHeaderLen {
		t.Fatalf("full frame = %d bytes, want %d", len(buf), MTU+EthHeaderLen)
	}
	if _, _, _, pl, err := Decode(buf); err != nil || !bytes.Equal(pl, p) {
		t.Fatalf("decode of max frame failed: %v", err)
	}
}

func TestEncodeOversize(t *testing.T) {
	if _, err := Encode(1, 2, &Header{Type: TypeData}, make([]byte, MaxPayload+1)); !errors.Is(err, ErrOversize) {
		t.Errorf("oversize payload: err = %v, want ErrOversize", err)
	}
}

func TestMustEncodeOversizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversize payload did not panic")
		}
	}()
	MustEncode(1, 2, &Header{Type: TypeData}, make([]byte, MaxPayload+1))
}

func TestDecodeShort(t *testing.T) {
	if _, _, _, _, err := Decode(make([]byte, 10)); err != ErrTooShort {
		t.Errorf("err = %v, want ErrTooShort", err)
	}
}

func TestDecodeCorruption(t *testing.T) {
	h := Header{Type: TypeData, ConnID: 1, Seq: 5}
	buf := MustEncode(1, 2, &h, []byte("payload bytes here"))
	// Flip each byte in turn; every corruption must be detected (CRC) —
	// except flips confined to the Ethernet header, which the CRC covers
	// too in our layout, so all flips must fail.
	for i := range buf {
		c := append([]byte(nil), buf...)
		c[i] ^= 0x40
		if _, _, _, _, err := Decode(c); err == nil {
			t.Fatalf("corruption at byte %d went undetected", i)
		}
	}
}

func TestDecodeTruncation(t *testing.T) {
	buf := MustEncode(1, 2, &Header{Type: TypeData}, []byte("0123456789"))
	if _, _, _, _, err := Decode(buf[:len(buf)-3]); err == nil {
		t.Error("truncated frame decoded without error")
	}
}

func TestDecodeBadType(t *testing.T) {
	// Construct a frame with type 0 by corrupting and re-checksumming is
	// involved; instead verify Encode+manual type tweak fails checksum,
	// and a crafted frame with valid checksum but bad type is rejected.
	h := Header{Type: TypeData}
	buf := MustEncode(1, 2, &h, nil)
	buf[EthHeaderLen+offType] = 0
	if _, _, _, _, err := Decode(buf); err == nil {
		t.Error("zero-type frame accepted")
	}
}

func TestWireLen(t *testing.T) {
	if got := WireLen(60); got != 60+24 {
		t.Errorf("WireLen(60) = %d, want 84", got)
	}
}

func TestNackPayloadRoundTrip(t *testing.T) {
	miss := []uint32{5, 9, 10, 1 << 30}
	p := EncodeNackPayload(miss)
	got, err := DecodeNackPayload(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(miss) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range miss {
		if got[i] != miss[i] {
			t.Fatalf("got %v, want %v", got, miss)
		}
	}
}

func TestNackPayloadEmpty(t *testing.T) {
	p := EncodeNackPayload(nil)
	got, err := DecodeNackPayload(p)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestNackPayloadTruncated(t *testing.T) {
	if _, err := DecodeNackPayload([]byte{0}); err == nil {
		t.Error("1-byte NACK payload accepted")
	}
	p := EncodeNackPayload([]uint32{1, 2, 3})
	if _, err := DecodeNackPayload(p[:5]); err == nil {
		t.Error("truncated NACK payload accepted")
	}
}

func TestNackPayloadCapped(t *testing.T) {
	many := make([]uint32, MaxPayload) // far above the cap
	p := EncodeNackPayload(many)
	if len(p) > MaxPayload {
		t.Fatalf("NACK payload %d exceeds MaxPayload", len(p))
	}
}

// Property: every header/payload combination round-trips exactly.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(connID, seq, ack uint32, opID, remote, local uint64,
		offset, total uint32, typ, opTyp, opFl uint8, hasAck bool, n uint16) bool {
		h := Header{
			Type:   Type(typ%11) + TypeData,
			ConnID: connID, Seq: seq, Ack: ack, HasAck: hasAck,
			OpID: opID, OpType: OpType(opTyp % 4), OpFlags: OpFlags(opFl & 7),
			Remote: remote, Local: local, Offset: offset, Total: total,
		}
		payload := make([]byte, int(n)%MaxPayload)
		rand.New(rand.NewSource(int64(seq))).Read(payload)
		buf := MustEncode(NewAddr(int(connID%16), int(seq%2)), NewAddr(int(ack%16), 0), &h, payload)
		_, _, got, pl, err := Decode(buf)
		return err == nil && got == h && bytes.Equal(pl, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: random buffers never decode successfully by accident (CRC
// collision probability over random 100-byte buffers is negligible) and
// never panic.
func TestPropertyRandomBuffers(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		buf := make([]byte, int(n)%2000)
		rand.New(rand.NewSource(seed)).Read(buf)
		_, _, _, _, err := Decode(buf)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMultiPayloadRoundTrip(t *testing.T) {
	subs := []SubOp{
		{OpID: 7, Flags: FenceAfter, Remote: 0x100, Data: []byte("alpha")},
		{OpID: 8, Flags: 0, Remote: 0x2000, Data: nil},
		{OpID: 9, Flags: Notify | Solicit, Remote: 0xfeed, Data: []byte("gamma-gamma")},
	}
	p, err := EncodeMultiPayload(subs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMultiPayload(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(subs) {
		t.Fatalf("len = %d, want %d", len(got), len(subs))
	}
	for i := range subs {
		g, w := got[i], subs[i]
		if g.OpID != w.OpID || g.Flags != w.Flags || g.Remote != w.Remote || !bytes.Equal(g.Data, w.Data) {
			t.Errorf("sub %d = %+v, want %+v", i, g, w)
		}
	}
}

func TestMultiPayloadOversize(t *testing.T) {
	subs := []SubOp{
		{OpID: 1, Data: make([]byte, 800)},
		{OpID: 2, Data: make([]byte, 800)},
	}
	if _, err := EncodeMultiPayload(subs); !errors.Is(err, ErrOversize) {
		t.Errorf("err = %v, want ErrOversize", err)
	}
}

func TestMultiPayloadTruncated(t *testing.T) {
	if _, err := DecodeMultiPayload([]byte{9}); err == nil {
		t.Error("1-byte multi payload accepted")
	}
	p, err := EncodeMultiPayload([]SubOp{{OpID: 1, Data: []byte("abcdef")}})
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{3, SubOpOverhead, len(p) - 1} {
		if _, err := DecodeMultiPayload(p[:cut]); err == nil {
			t.Errorf("multi payload truncated to %d accepted", cut)
		}
	}
}

func TestMultiPayloadFramed(t *testing.T) {
	// A MultiData payload travels inside a regular frame.
	subs := []SubOp{{OpID: 3, Flags: Notify, Remote: 64, Data: []byte("x")}}
	pl, err := EncodeMultiPayload(subs)
	if err != nil {
		t.Fatal(err)
	}
	h := Header{Type: TypeMultiData, ConnID: 1, Seq: 9, OpID: 3, OpType: OpWrite, Total: uint32(len(pl))}
	buf := MustEncode(1, 2, &h, pl)
	_, _, got, p, err := Decode(buf)
	if err != nil || got.Type != TypeMultiData {
		t.Fatalf("decode: %v type %v", err, got.Type)
	}
	back, err := DecodeMultiPayload(p)
	if err != nil || len(back) != 1 || back[0].OpID != 3 {
		t.Fatalf("round trip: %v %+v", err, back)
	}
}

func TestCtrlTypesRoundTrip(t *testing.T) {
	// Heartbeat and Reset are the newest header types: both must pass the
	// decoder's type-range check (they extend the upper bound).
	for _, typ := range []Type{TypeHeartbeat, TypeReset} {
		h := Header{Type: typ, ConnID: 5, Ack: 77, HasAck: typ == TypeHeartbeat}
		buf := MustEncode(NewAddr(1, 0), NewAddr(2, 0), &h, nil)
		_, _, got, pl, err := Decode(buf)
		if err != nil {
			t.Fatalf("%v: Decode: %v", typ, err)
		}
		if got != h || len(pl) != 0 {
			t.Errorf("%v: got %+v payload %d bytes", typ, got, len(pl))
		}
	}
}

func TestStringers(t *testing.T) {
	if TypeData.String() != "DATA" || TypeNack.String() != "NACK" {
		t.Error("Type.String wrong")
	}
	if TypeHeartbeat.String() != "HEARTBEAT" || TypeReset.String() != "RESET" {
		t.Error("ctrl Type.String wrong")
	}
	if OpWrite.String() != "write" || OpReadReply.String() != "readreply" {
		t.Error("OpType.String wrong")
	}
	if Type(99).String() == "" || OpType(99).String() == "" {
		t.Error("unknown stringers empty")
	}
}

func BenchmarkEncode(b *testing.B) {
	h := Header{Type: TypeData, ConnID: 1, Seq: 7, OpID: 3, OpType: OpWrite, Total: 1 << 20}
	payload := make([]byte, MaxPayload)
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		MustEncode(1, 2, &h, payload)
	}
}

func BenchmarkDecode(b *testing.B) {
	h := Header{Type: TypeData, ConnID: 1, Seq: 7, OpID: 3, OpType: OpWrite, Total: 1 << 20}
	buf := MustEncode(1, 2, &h, make([]byte, MaxPayload))
	b.SetBytes(int64(MaxPayload))
	for i := 0; i < b.N; i++ {
		if _, _, _, _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
