package frame

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// BufCap is the capacity of a pooled frame buffer: enough for the
// Ethernet header plus a full MTU, i.e. the largest frame Encode can
// produce.
const BufCap = EthHeaderLen + MTU

// Buf is a pooled frame buffer. The hot transmit path acquires one
// with GetBuf, encodes a frame into it with EncodeInto, and hands
// ownership to the wire (phys.Frame); exactly one release point per
// frame returns it with PutBuf. The zero-copy contract: a decoded
// payload aliases the buffer it travelled in, so receivers must copy
// anything they keep beyond the dispatch callback (DESIGN.md §13).
type Buf struct {
	b    []byte
	free bool // in the pool (double-release detector)
}

// Bytes returns the full-capacity backing slice to encode into.
func (b *Buf) Bytes() []byte { return b.b }

var bufPool = sync.Pool{New: func() any { return &Buf{b: make([]byte, BufCap)} }}

// poolDebug enables release poisoning: returned buffers are filled
// with 0xDB so any use-after-release surfaces as CRC/decode garbage
// instead of silent aliasing. Double-release detection is always on.
var (
	poolDebugMu sync.Mutex
	poolDebug   bool
)

// SetPoolDebug toggles buffer poisoning on release. It returns the
// previous setting; tests flip it on and restore the old value.
func SetPoolDebug(on bool) bool {
	poolDebugMu.Lock()
	defer poolDebugMu.Unlock()
	prev := poolDebug
	poolDebug = on
	return prev
}

func poolDebugOn() bool {
	poolDebugMu.Lock()
	defer poolDebugMu.Unlock()
	return poolDebug
}

// GetBuf acquires a frame buffer from the pool.
func GetBuf() *Buf {
	b := bufPool.Get().(*Buf)
	b.free = false
	return b
}

// PutBuf releases a buffer back to the pool. Releasing the same Buf
// twice panics: a double release would hand one buffer to two owners
// and corrupt frames in flight.
func PutBuf(b *Buf) {
	if b == nil {
		return
	}
	if b.free {
		panic("frame: PutBuf called twice on the same Buf")
	}
	b.free = true
	if poolDebugOn() {
		for i := range b.b {
			b.b[i] = 0xDB
		}
	}
	bufPool.Put(b)
}

// EncodeInto is Encode targeting a caller-supplied buffer (typically a
// pooled Buf's Bytes()): it serializes the frame into buf's backing
// array and returns buf resliced to the frame length, allocating
// nothing. The output is byte-identical to Encode's. A buffer with
// insufficient capacity falls back to a fresh allocation, so callers
// never need to size-check.
func EncodeInto(buf []byte, dst, src Addr, h *Header, payload []byte) ([]byte, error) {
	if len(payload) > MaxPayload {
		return nil, fmt.Errorf("%w: %d > %d", ErrOversize, len(payload), MaxPayload)
	}
	n := EthHeaderLen + HeaderLen + len(payload)
	if cap(buf) < n {
		return Encode(dst, src, h, payload)
	}
	buf = buf[:n]
	// Encode gets zeroed MAC pad bytes from make for free; a recycled
	// buffer must zero them explicitly — Decode rejects frames whose
	// pad bytes are nonzero.
	buf[0], buf[1], buf[2], buf[3] = 0, 0, 0, 0
	buf[6], buf[7], buf[8], buf[9] = 0, 0, 0, 0
	binary.BigEndian.PutUint16(buf[4:], uint16(dst))
	binary.BigEndian.PutUint16(buf[10:], uint16(src))
	binary.BigEndian.PutUint16(buf[12:], etherType)
	p := buf[EthHeaderLen:]
	p[offType] = byte(h.Type)
	var fl byte
	if h.HasAck {
		fl |= flagHasAck
	}
	if h.EcnEcho {
		fl |= flagEcnEcho
	}
	p[offFlags] = fl
	p[offOpType] = byte(h.OpType)
	p[offOpFlags] = byte(h.OpFlags)
	binary.BigEndian.PutUint32(p[offConnID:], h.ConnID)
	binary.BigEndian.PutUint32(p[offSeq:], h.Seq)
	binary.BigEndian.PutUint32(p[offAck:], h.Ack)
	binary.BigEndian.PutUint64(p[offOpID:], h.OpID)
	binary.BigEndian.PutUint64(p[offRemote:], h.Remote)
	binary.BigEndian.PutUint64(p[offLocal:], h.Local)
	binary.BigEndian.PutUint32(p[offOffset:], h.Offset)
	binary.BigEndian.PutUint32(p[offTotal:], h.Total)
	binary.BigEndian.PutUint16(p[offPayLen:], uint16(len(payload)))
	binary.BigEndian.PutUint16(p[offIncarn:], h.Incarnation)
	copy(p[HeaderLen:], payload)
	binary.BigEndian.PutUint32(p[offCRC:], checksum(buf))
	return buf, nil
}

// MustEncodeInto is EncodeInto for internal fragmenting callers that
// guarantee the payload fits in one frame; it panics on oversize.
func MustEncodeInto(buf []byte, dst, src Addr, h *Header, payload []byte) []byte {
	out, err := EncodeInto(buf, dst, src, h, payload)
	if err != nil {
		panic(err)
	}
	return out
}

// AppendNackPayload is EncodeNackPayload into a reusable scratch
// buffer: it serializes the missing-sequence list into dst's backing
// array (growing it only when the capacity is short) and returns the
// resliced result. Steady-state NACK traffic reuses one scratch per
// connection and allocates nothing.
func AppendNackPayload(dst []byte, missing []uint32) []byte {
	if max := (MaxPayload - 2) / 4; len(missing) > max {
		missing = missing[:max]
	}
	n := 2 + 4*len(missing)
	if cap(dst) < n {
		dst = make([]byte, n)
	} else {
		dst = dst[:n]
	}
	binary.BigEndian.PutUint16(dst, uint16(len(missing)))
	for i, s := range missing {
		binary.BigEndian.PutUint32(dst[2+4*i:], s)
	}
	return dst
}
