package core_test

import (
	"bytes"
	"testing"

	"multiedge/internal/cluster"
	"multiedge/internal/core"
	"multiedge/internal/frame"
	"multiedge/internal/phys"
	"multiedge/internal/sim"
)

// decodeType peeks a wire frame's MultiEdge type (panics on garbage:
// these tests only inject against frames this stack encoded).
func decodeType(f *phys.Frame) (frame.Type, uint32) {
	_, _, h, _, err := frame.Decode(f.Buf)
	if err != nil {
		return 0, 0
	}
	return h.Type, h.Seq
}

// xferOnce runs one n-byte write with a drop filter installed on node
// 0's NIC-0 uplink and returns whether it completed by the horizon and
// whether the data arrived intact.
func xferOnce(t *testing.T, n int, filter func(f *phys.Frame) bool,
	rxFilter func(f *phys.Frame) bool) (bool, bool, *cluster.Cluster) {
	t.Helper()
	cfg := cluster.OneLink1G(2)
	cl := cluster.New(cfg)
	c01, _ := cl.Pair()
	ep0, ep1 := cl.Nodes[0].EP, cl.Nodes[1].EP
	src := ep0.Alloc(n)
	dst := ep1.Alloc(n)
	fill(ep0.Mem()[src:src+uint64(n)], 5)
	cl.Nodes[0].NICs[0].OutPort().SetDropFilter(filter)
	if rxFilter != nil {
		cl.Nodes[1].NICs[0].OutPort().SetDropFilter(rxFilter)
	}
	done := false
	cl.Env.Go("xfer", func(p *sim.Proc) {
		c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: n, Kind: frame.OpWrite}).Wait(p)
		done = true
	})
	cl.Env.RunUntil(30 * sim.Second)
	intact := bytes.Equal(ep1.Mem()[dst:dst+uint64(n)], ep0.Mem()[src:src+uint64(n)])
	return done, intact, cl
}

// TestLossPositionSweep kills exactly one data frame at every position
// of a 64-frame transfer, one run per position: the ARQ must repair
// each one and deliver intact data. Random LossProb cannot pin "the
// loss was THIS frame"; the deterministic filter can.
func TestLossPositionSweep(t *testing.T) {
	const n = 64 * 1444 // exactly 64 full data frames
	for pos := 0; pos < 64; pos += 1 {
		pos := pos
		dataSeen := -1
		filter := func(f *phys.Frame) bool {
			typ, _ := decodeType(f)
			if typ != frame.TypeData {
				return false
			}
			dataSeen++
			return dataSeen == pos
		}
		done, intact, cl := xferOnce(t, n, filter, nil)
		if !done || !intact {
			t.Fatalf("loss at data position %d: done=%v intact=%v", pos, done, intact)
		}
		if r := cl.Nodes[0].EP.Stats.Retransmissions; r == 0 {
			t.Fatalf("loss at position %d: no retransmission recorded", pos)
		}
	}
}

// TestDoubleLossSamePosition kills a frame AND its first retransmission:
// repair of the repair must still converge.
func TestDoubleLossSamePosition(t *testing.T) {
	const n = 64 * 1444
	kills := 0
	var killSeq uint32
	filter := func(f *phys.Frame) bool {
		typ, seq := decodeType(f)
		if typ != frame.TypeData {
			return false
		}
		switch kills {
		case 0:
			if seq == 31 {
				killSeq = seq
				kills++
				return true
			}
		case 1:
			if seq == killSeq {
				kills++
				return true
			}
		}
		return false
	}
	done, intact, cl := xferOnce(t, n, filter, nil)
	if !done || !intact {
		t.Fatalf("double loss: done=%v intact=%v", done, intact)
	}
	if kills != 2 {
		t.Fatalf("injected %d losses, want 2", kills)
	}
	if r := cl.Nodes[0].EP.Stats.Retransmissions; r < 2 {
		t.Fatalf("retransmissions = %d, want >= 2", r)
	}
}

// TestNackLossRepaired kills the receiver's first NACK: the sender
// never hears about the gap, so repair must come from the re-armed NACK
// timer (or RTO) — not stall forever.
func TestNackLossRepaired(t *testing.T) {
	const n = 64 * 1444
	dataSeen := -1
	dropData := func(f *phys.Frame) bool {
		typ, _ := decodeType(f)
		if typ != frame.TypeData {
			return false
		}
		dataSeen++
		return dataSeen == 10
	}
	nacksKilled := 0
	dropNack := func(f *phys.Frame) bool {
		typ, _ := decodeType(f)
		if typ == frame.TypeNack && nacksKilled == 0 {
			nacksKilled++
			return true
		}
		return false
	}
	done, intact, cl := xferOnce(t, n, dropData, dropNack)
	if !done || !intact {
		t.Fatalf("NACK loss: done=%v intact=%v", done, intact)
	}
	if nacksKilled != 1 {
		t.Fatalf("no NACK was ever sent/killed")
	}
	if got := cl.Nodes[1].EP.Stats.CtrlNacksSent; got < 2 {
		t.Fatalf("receiver sent %d NACKs; the lost one was never re-sent", got)
	}
}

// TestAckLossTolerated kills every explicit ACK for the first 10 ms:
// piggy-backing is absent in a one-way run, so the sender must survive
// on RTO-driven duplicate/ACK convergence once ACKs flow again.
func TestAckLossTolerated(t *testing.T) {
	const n = 200 * 1444
	var cl *cluster.Cluster
	acksKilled := 0
	dropAck := func(f *phys.Frame) bool {
		typ, _ := decodeType(f)
		if typ == frame.TypeAck && cl != nil && cl.Env.Now() < 10*sim.Millisecond {
			acksKilled++
			return true
		}
		return false
	}
	cfg := cluster.OneLink1G(2)
	cl = cluster.New(cfg)
	c01, _ := cl.Pair()
	ep0, ep1 := cl.Nodes[0].EP, cl.Nodes[1].EP
	src := ep0.Alloc(n)
	dst := ep1.Alloc(n)
	fill(ep0.Mem()[src:src+uint64(n)], 5)
	cl.Nodes[1].NICs[0].OutPort().SetDropFilter(dropAck)
	done := false
	cl.Env.Go("xfer", func(p *sim.Proc) {
		c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: n, Kind: frame.OpWrite}).Wait(p)
		done = true
	})
	cl.Env.RunUntil(30 * sim.Second)
	if !done {
		t.Fatal("transfer stalled under ACK loss")
	}
	if acksKilled == 0 {
		t.Fatal("no ACKs were killed; test exercised nothing")
	}
	if !bytes.Equal(ep1.Mem()[dst:dst+uint64(n)], ep0.Mem()[src:src+uint64(n)]) {
		t.Error("data corrupted")
	}
}

// TestProbeLossDelaysRestore repairs the cable but kills the first two
// probe frames (zero-size writes, recognizable by Total == 0): the rail
// must stay shed until a later probe survives, then be re-admitted
// exactly once.
func TestProbeLossDelaysRestore(t *testing.T) {
	const n = 24 << 20
	cfg := cluster.TwoLinkUnordered1G(2)
	cfg.Core.MemBytes = 64 << 20
	cl := cluster.New(cfg)
	c01, _ := cl.Pair()
	ep0, ep1 := cl.Nodes[0].EP, cl.Nodes[1].EP
	src := ep0.Alloc(n)
	dst := ep1.Alloc(n)
	fill(ep0.Mem()[src:src+uint64(n)], 9)

	cl.Env.At(2*sim.Millisecond, func() { cl.FailLink(0, 1) })
	cl.Env.At(25*sim.Millisecond, func() { cl.RestoreLink(0, 1) })
	probesKilled := 0
	var firstProbeAt, restoreProbeAt sim.Time
	cl.Nodes[0].NICs[1].OutPort().SetDropFilter(func(f *phys.Frame) bool {
		_, _, h, _, err := frame.Decode(f.Buf)
		if err != nil || h.Type != frame.TypeData || h.Total != 0 {
			return false
		}
		if probesKilled < 2 && cl.Env.Now() >= 25*sim.Millisecond {
			probesKilled++
			if probesKilled == 1 {
				firstProbeAt = cl.Env.Now()
			}
			return true
		}
		if restoreProbeAt == 0 && cl.Env.Now() >= 25*sim.Millisecond {
			restoreProbeAt = cl.Env.Now()
		}
		return false
	})

	done := false
	cl.Env.Go("xfer", func(p *sim.Proc) {
		c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: n, Kind: frame.OpWrite}).Wait(p)
		done = true
	})
	cl.Env.RunUntil(30 * sim.Second)
	if !done {
		t.Fatal("transfer did not complete")
	}
	st := cl.Nodes[0].EP.Stats
	if probesKilled != 2 {
		t.Fatalf("killed %d probes, want 2 (probing stopped retrying?)", probesKilled)
	}
	if st.LinkRestores != 1 {
		t.Fatalf("LinkRestores = %d, want exactly 1", st.LinkRestores)
	}
	if restoreProbeAt <= firstProbeAt {
		t.Fatalf("surviving probe at %v not after killed probe at %v", restoreProbeAt, firstProbeAt)
	}
	if !bytes.Equal(ep1.Mem()[dst:dst+uint64(n)], ep0.Mem()[src:src+uint64(n)]) {
		t.Error("data corrupted")
	}
}
