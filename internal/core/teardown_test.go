package core_test

import (
	"bytes"
	"fmt"
	"testing"

	"multiedge/internal/cluster"
	"multiedge/internal/core"
	"multiedge/internal/frame"
	"multiedge/internal/phys"
	"multiedge/internal/sim"
)

// TestClosedConnEmitsNoFrames stages exactly the leak ISSUE 4 fixes: a
// receiver with a pending delayed ACK, a tracked gap and an armed NACK
// timer is closed; afterwards not one more frame may leave any NIC and
// the event queue must drain (no ACK/NACK/RTO callback survives the
// teardown).
func TestClosedConnEmitsNoFrames(t *testing.T) {
	cfg := cluster.OneLink1G(2)
	// Slow every repair path down so the staged state is still pending
	// when the close lands: the gap's NACK is 25ms away, the sender's
	// RTO 500ms, and the delayed ACK 5ms.
	cfg.Core.RTO = 500 * sim.Millisecond
	cfg.Core.NackDelay = 100 * sim.Millisecond
	cfg.Core.AckDelay = 5 * sim.Millisecond
	cfg.Core.AckEvery = 1000 // only the timer path may ack
	cfg.Core.DeadInterval = 0
	cl := cluster.New(cfg)
	c01, c10 := cl.Pair()
	ep0, ep1 := cl.Nodes[0].EP, cl.Nodes[1].EP
	const n = 8 * 1444
	src, dst := ep0.Alloc(n), ep1.Alloc(n)
	fill(ep0.Mem()[src:src+uint64(n)], 3)
	// Kill data frame seq 2 once: node 1 tracks the gap forever (its
	// NACK and the sender's RTO are configured far in the future).
	dropped := false
	cl.Nodes[0].NICs[0].OutPort().SetDropFilter(func(f *phys.Frame) bool {
		if typ, seq := decodeType(f); typ == frame.TypeData && seq == 2 && !dropped {
			dropped = true
			return true
		}
		return false
	})
	cl.Env.Go("writer", func(p *sim.Proc) {
		c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: n, Kind: frame.OpWrite})
		// Do not Wait: the transfer is deliberately never completed.
	})
	var gapsAtClose, timersAtClose int
	var ackDueOrTimer bool
	closedOK := false
	cl.Env.Go("closer", func(p *sim.Proc) {
		p.Sleep(2 * sim.Millisecond) // all surviving frames delivered
		gapsAtClose = c10.TrackedGapsForTest()
		ackDue, _ := c10.CtrlStateForTest()
		ackDueOrTimer = ackDue || c10.PendingTimersForTest() > 0
		c10.Close(p)
		timersAtClose = c10.PendingTimersForTest() + c01.PendingTimersForTest()
		closedOK = true
	})
	cl.Env.RunUntil(10 * sim.Millisecond)
	if !closedOK {
		t.Fatal("close did not complete")
	}
	if !dropped || gapsAtClose == 0 {
		t.Fatalf("staging failed: dropped=%v gaps=%d", dropped, gapsAtClose)
	}
	if !ackDueOrTimer {
		t.Fatal("staging failed: no delayed-ACK state pending at close")
	}
	if timersAtClose != 0 {
		t.Errorf("%d protocol timers still pending after close", timersAtClose)
	}
	frames := cl.Collect().WireFrames
	// Run far past every configured timer: a leaked ACK/NACK/RTO
	// callback would emit now.
	end := cl.Env.Run()
	if after := cl.Collect().WireFrames; after != frames {
		t.Errorf("%d frames emitted after close (total %d -> %d)", after-frames, frames, after)
	}
	if end > 10*sim.Millisecond {
		t.Errorf("events executed until %v after close (leaked timer kept the sim alive)", end)
	}
	if pend := cl.Env.PendingEvents(); pend != 0 {
		t.Errorf("%d events still queued after teardown", pend)
	}
	if got := ep0.ActiveConns() + ep1.ActiveConns(); got != 0 {
		t.Errorf("%d conns still in endpoint tables after close", got)
	}
}

// TestTeardownUnderLoad closes 100 connections mid-transfer under loss
// and requires the simulation to drain completely: every close
// handshake terminates, no timer callback outlives its conn, and both
// endpoints' tables empty out. Run under -race in CI.
func TestTeardownUnderLoad(t *testing.T) {
	for _, scaled := range []bool{false, true} {
		scaled := scaled
		t.Run(fmt.Sprintf("schedQueue=%v", scaled), func(t *testing.T) {
			cfg := cluster.OneLink1G(2)
			cfg.Seed = 911
			cfg.Link.LossProb = 0.02
			cfg.Core.SchedQueue = scaled
			if scaled {
				cfg.Core.TimerWheelTick = 50 * sim.Microsecond
			}
			cl := cluster.New(cfg)
			ep0, ep1 := cl.Nodes[0].EP, cl.Nodes[1].EP
			const conns = 100
			const n = 16 * 1444
			closed := 0
			for i := 0; i < conns; i++ {
				i := i
				cl.Env.Go(fmt.Sprintf("c%d", i), func(p *sim.Proc) {
					c := ep0.Dial(p, 1, 0)
					src := ep0.Alloc(n)
					dst := ep1.Alloc(n)
					fill(ep0.Mem()[src:src+uint64(n)], byte(i))
					c.MustDo(p, core.Op{Remote: dst, Local: src, Size: n, Kind: frame.OpWrite})
					// Close mid-transfer: Close drains the op (under
					// loss, via repair) before the handshake.
					p.Sleep(sim.Time(50+i) * sim.Microsecond)
					c.Close(p)
					closed++
				})
			}
			cl.Env.RunUntil(60 * sim.Second)
			if closed != conns {
				t.Fatalf("only %d/%d closes completed", closed, conns)
			}
			if got := ep0.ActiveConns() + ep1.ActiveConns(); got != 0 {
				t.Errorf("%d conns still in endpoint tables", got)
			}
			if pend := cl.Env.PendingEvents(); pend != 0 {
				t.Errorf("%d events still queued after all conns closed", pend)
			}
		})
	}
}

// TestNackStateBoundedUnderOutage opens a sender window far wider than
// the tracked-gap cap, blacks out the only repair-relevant rail long
// enough to open a window-wide hole, and verifies that (a) receive-side
// gap state and the queued NACK list stay bounded the whole run, (b)
// the overflow is counted, and (c) the transfer still completes intact
// once the outage heals — the cumulative-ACK fallback repairs what the
// capped NACKs do not name.
func TestNackStateBoundedUnderOutage(t *testing.T) {
	cfg := cluster.TwoLink1G(2)
	cfg.Seed = 7
	cfg.Core.Window = 1024 // gaps can dwarf maxTrackedGaps
	cfg.Core.DeadLinkThreshold = 0
	cfg.Core.DeadInterval = 0
	cl := cluster.New(cfg)
	c01, c10 := cl.Pair()
	ep0, ep1 := cl.Nodes[0].EP, cl.Nodes[1].EP
	const n = 3000 * 1444
	src, dst := ep0.Alloc(n), ep1.Alloc(n)
	fill(ep0.Mem()[src:src+uint64(n)], 11)
	// From 200µs to 10ms every even-sequence data frame vanishes on both
	// rails — retransmissions included. Odd frames keep arriving until
	// the sender has a full 1024-frame window outstanding (~6ms at
	// 2×1Gb/s), so the receiver accumulates ~512 holes and the
	// tracked-gap map is driven straight into its cap.
	blackout := func(f *phys.Frame) bool {
		now := cl.Env.Now()
		if now < 200*sim.Microsecond || now >= 10*sim.Millisecond {
			return false
		}
		typ, seq := decodeType(f)
		return typ == frame.TypeData && seq%2 == 0
	}
	cl.Nodes[0].NICs[0].OutPort().SetDropFilter(blackout)
	cl.Nodes[0].NICs[1].OutPort().SetDropFilter(blackout)
	done := false
	cl.Env.Go("xfer", func(p *sim.Proc) {
		c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: n, Kind: frame.OpWrite}).Wait(p)
		done = true
	})
	maxGaps, maxNacks := 0, 0
	var watch func()
	watch = func() {
		if g := c10.TrackedGapsForTest(); g > maxGaps {
			maxGaps = g
		}
		if nk := c10.NackDueForTest(); nk > maxNacks {
			maxNacks = nk
		}
		cl.Env.AfterDaemon(20*sim.Microsecond, watch)
	}
	cl.Env.AfterDaemon(20*sim.Microsecond, watch)
	cl.Env.RunUntil(120 * sim.Second)
	if !done {
		t.Fatal("transfer did not complete after outage healed")
	}
	if !bytes.Equal(ep1.Mem()[dst:dst+uint64(n)], ep0.Mem()[src:src+uint64(n)]) {
		t.Fatal("data corrupted across outage repair")
	}
	if maxGaps > core.MaxTrackedGapsForTest {
		t.Errorf("tracked gaps peaked at %d, cap %d", maxGaps, core.MaxTrackedGapsForTest)
	}
	if maxNacks > core.MaxNackForTest {
		t.Errorf("queued NACK list peaked at %d, cap %d", maxNacks, core.MaxNackForTest)
	}
	if got := cl.Collect().Proto.NackGapsDropped; got == 0 {
		t.Error("outage never hit the tracked-gap cap (test lost its teeth: widen the blackout)")
	}
	if maxGaps < core.MaxTrackedGapsForTest {
		t.Errorf("tracked gaps peaked at %d, never reached the cap %d", maxGaps, core.MaxTrackedGapsForTest)
	}
}

// TestSchedWheelParityLossy runs the same lossy transfer with the
// legacy scan + heap timers and with the connection scheduler + timer
// wheel: both must deliver intact data, and the scaled configuration
// must be deterministic (two identical-seed runs produce identical
// traffic reports).
func TestSchedWheelParityLossy(t *testing.T) {
	run := func(scaled bool, seed int64) (report cluster.NetReport, end sim.Time, ok bool) {
		cfg := cluster.TwoLink1G(2)
		cfg.Seed = seed
		cfg.Link.LossProb = 0.05
		cfg.Core.SchedQueue = scaled
		if scaled {
			cfg.Core.TimerWheelTick = 50 * sim.Microsecond
		}
		cl := cluster.New(cfg)
		c01, _ := cl.Pair()
		ep0, ep1 := cl.Nodes[0].EP, cl.Nodes[1].EP
		const n = 400 * 1444
		src, dst := ep0.Alloc(n), ep1.Alloc(n)
		fill(ep0.Mem()[src:src+uint64(n)], 4)
		done := false
		cl.Env.Go("xfer", func(p *sim.Proc) {
			c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: n, Kind: frame.OpWrite}).Wait(p)
			done = true
		})
		end = cl.Env.RunUntil(30 * sim.Second)
		ok = done && bytes.Equal(ep1.Mem()[dst:dst+uint64(n)], ep0.Mem()[src:src+uint64(n)])
		return cl.Collect(), end, ok
	}
	if _, _, ok := run(false, 5); !ok {
		t.Fatal("legacy path failed the lossy transfer")
	}
	r1, e1, ok1 := run(true, 5)
	if !ok1 {
		t.Fatal("scheduler+wheel path failed the lossy transfer")
	}
	r2, e2, ok2 := run(true, 5)
	if !ok2 || r1 != r2 || e1 != e2 {
		t.Fatalf("scheduler+wheel run not deterministic: end %v vs %v, reports equal=%v",
			e1, e2, r1 == r2)
	}
}
