package core_test

import (
	"bytes"
	"errors"
	"testing"

	"multiedge/internal/cluster"
	"multiedge/internal/core"
	"multiedge/internal/frame"
	"multiedge/internal/sim"
)

// sqCluster builds a 2-node cluster with the submission-queue path and
// small-op coalescing enabled on top of base.
func sqCluster(t *testing.T, base cluster.Config, coalesce int) (*cluster.Cluster, *core.Conn, *core.Conn) {
	t.Helper()
	base.Core.UseSQ = true
	base.Core.CoalesceLimit = coalesce
	return pairCluster(t, base)
}

func TestSQBatchDeliversAndCompletes(t *testing.T) {
	// 32 small writes posted and issued under one doorbell: all bytes
	// land, completions surface in issue order, and the batch is charged
	// exactly one doorbell with every op coalesced.
	cl, c01, _ := sqCluster(t, cluster.OneLink1G(0), 64)
	const k, sz = 32, 48
	src := cl.Nodes[0].EP.Alloc(k * sz)
	dst := cl.Nodes[1].EP.Alloc(k * sz)
	fill(cl.Nodes[0].EP.Mem()[src:src+k*sz], 9)
	var issued int
	var comps []core.Completion
	cl.Env.Go("app", func(p *sim.Proc) {
		for i := 0; i < k; i++ {
			off := uint64(i * sz)
			c01.MustPost(core.Op{Remote: dst + off, Local: src + off, Size: sz, Kind: frame.OpWrite})
		}
		if got := c01.SQLen(); got != k {
			t.Errorf("SQLen before ring = %d, want %d", got, k)
		}
		issued = c01.MustRing(p)
		for i := 0; i < k; i++ {
			comps = append(comps, c01.WaitCQ(p))
		}
	})
	cl.Env.RunUntil(10 * sim.Second)
	if issued != k {
		t.Fatalf("Ring issued %d ops, want %d", issued, k)
	}
	if len(comps) != k {
		t.Fatalf("got %d completions, want %d", len(comps), k)
	}
	for i := 1; i < len(comps); i++ {
		if comps[i].OpID <= comps[i-1].OpID {
			t.Fatalf("completions out of issue order: %d then %d", comps[i-1].OpID, comps[i].OpID)
		}
	}
	for i, comp := range comps {
		if want := dst + uint64(i*sz); comp.Op.Remote != want {
			t.Fatalf("completion %d: Remote = %d, want %d", i, comp.Op.Remote, want)
		}
	}
	if !bytes.Equal(cl.Nodes[1].EP.Mem()[dst:dst+k*sz], cl.Nodes[0].EP.Mem()[src:src+k*sz]) {
		t.Fatal("coalesced batch delivered wrong bytes")
	}
	st := cl.Nodes[0].EP.Stats
	if st.Doorbells != 1 || st.SQOps != k {
		t.Errorf("Doorbells = %d SQOps = %d, want 1 and %d", st.Doorbells, st.SQOps, k)
	}
	if st.CoalescedSubOps != k || st.CoalescedFrames == 0 {
		t.Errorf("CoalescedSubOps = %d (want %d), CoalescedFrames = %d (want > 0)",
			st.CoalescedSubOps, k, st.CoalescedFrames)
	}
}

func TestSQReadCompletesOnCQ(t *testing.T) {
	// Reads ride the SQ too (never coalesced): the completion surfaces
	// on the CQ once the reply data is in local memory.
	cl, c01, _ := sqCluster(t, cluster.OneLink1G(0), 64)
	const n = 4096
	remote := cl.Nodes[1].EP.Alloc(n)
	local := cl.Nodes[0].EP.Alloc(n)
	fill(cl.Nodes[1].EP.Mem()[remote:remote+n], 3)
	var ok bool
	cl.Env.Go("app", func(p *sim.Proc) {
		c01.MustPost(core.Op{Remote: remote, Local: local, Size: n, Kind: frame.OpRead})
		c01.MustRing(p)
		comp := c01.WaitCQ(p)
		ok = comp.Op.Kind == frame.OpRead &&
			bytes.Equal(cl.Nodes[0].EP.Mem()[local:local+n], cl.Nodes[1].EP.Mem()[remote:remote+n])
	})
	cl.Env.RunUntil(10 * sim.Second)
	if !ok {
		t.Fatal("SQ read did not complete with the remote bytes in place")
	}
	if cl.Nodes[0].EP.Stats.CoalescedFrames != 0 {
		t.Error("a read was coalesced")
	}
}

func TestSQFenceAcrossCoalescedBatch(t *testing.T) {
	// Big eager write A, then a coalesced batch whose middle sub-op is a
	// backward-fenced notify, on two lossy unordered links: when the
	// notification arrives, A must be fully applied even though the
	// fenced sub-op shared its frame with unfenced neighbours.
	cfg := cluster.TwoLinkUnordered1G(0)
	cfg.Link.LossProb = 0.02
	cfg.Seed = 5
	cl, c01, c10 := sqCluster(t, cfg, 64)
	const n = 200 * 1024
	src := cl.Nodes[0].EP.Alloc(n)
	dstA := cl.Nodes[1].EP.Alloc(n)
	dstB := cl.Nodes[1].EP.Alloc(64)
	fill(cl.Nodes[0].EP.Mem()[src:src+n], 6)
	var checked, ok bool
	cl.Env.Go("sender", func(p *sim.Proc) {
		c01.MustDo(p, core.Op{Remote: dstA, Local: src, Size: n, Kind: frame.OpWrite})
		c01.MustPost(core.Op{Remote: dstB, Local: src, Size: 8, Kind: frame.OpWrite})
		c01.MustPost(core.Op{Remote: dstB + 16, Local: src, Size: 8, Kind: frame.OpWrite,
			Flags: frame.FenceBefore | frame.Notify})
		c01.MustPost(core.Op{Remote: dstB + 32, Local: src, Size: 8, Kind: frame.OpWrite})
		c01.MustRing(p)
	})
	cl.Env.Go("receiver", func(p *sim.Proc) {
		nf := c10.WaitNotify(p)
		checked = true
		ok = nf.Addr == dstB+16 &&
			bytes.Equal(cl.Nodes[1].EP.Mem()[dstA:dstA+n], cl.Nodes[0].EP.Mem()[src:src+n])
	})
	cl.Env.RunUntil(10 * sim.Second)
	if !checked {
		t.Fatal("fenced coalesced notification never arrived")
	}
	if !ok {
		t.Fatal("backward fence violated inside a coalesced batch")
	}
	if cl.Nodes[0].EP.Stats.CoalescedFrames == 0 {
		t.Fatal("batch was not coalesced — the fence was never exercised in a shared frame")
	}
}

func TestSQNotifyFanout(t *testing.T) {
	// k notify sub-ops in one coalesced frame must deliver k distinct
	// notifications, each carrying its own address and length.
	cl, c01, c10 := sqCluster(t, cluster.OneLink1G(0), 64)
	const k = 8
	src := cl.Nodes[0].EP.Alloc(k * 16)
	dst := cl.Nodes[1].EP.Alloc(k * 16)
	var got []core.Notification
	cl.Env.Go("sender", func(p *sim.Proc) {
		for i := 0; i < k; i++ {
			c01.MustPost(core.Op{Remote: dst + uint64(i*16), Local: src + uint64(i*16),
				Size: 16, Kind: frame.OpWrite, Flags: frame.Notify})
		}
		c01.MustRing(p)
	})
	cl.Env.Go("receiver", func(p *sim.Proc) {
		for i := 0; i < k; i++ {
			got = append(got, c10.WaitNotify(p))
		}
	})
	cl.Env.RunUntil(10 * sim.Second)
	if len(got) != k {
		t.Fatalf("got %d notifications, want %d", len(got), k)
	}
	for i, nf := range got {
		if nf.Addr != dst+uint64(i*16) || nf.Len != 16 {
			t.Fatalf("notification %d: addr %d len %d, want %d/16", i, nf.Addr, nf.Len, dst+uint64(i*16))
		}
	}
	if cl.Nodes[0].EP.Stats.CoalescedSubOps != k {
		t.Errorf("CoalescedSubOps = %d, want %d", cl.Nodes[0].EP.Stats.CoalescedSubOps, k)
	}
}

func TestSQSolicitBatchCompletes(t *testing.T) {
	// A solicited sub-op inside a coalesced batch forces an immediate
	// acknowledgement: the whole batch completes in round-trip time, far
	// below the delayed-ACK bound that would otherwise gate it.
	cfg := cluster.OneLink1G(0)
	cfg.Core.AckDelay = 5 * sim.Millisecond
	cfg.Core.AckEvery = 1 << 20 // never ack on count; only solicit or delay
	cl, c01, _ := sqCluster(t, cfg, 64)
	const k = 4
	src := cl.Nodes[0].EP.Alloc(k * 16)
	dst := cl.Nodes[1].EP.Alloc(k * 16)
	var doneAt sim.Time
	cl.Env.Go("app", func(p *sim.Proc) {
		for i := 0; i < k; i++ {
			flags := frame.OpFlags(0)
			if i == k-1 {
				flags = frame.Solicit
			}
			c01.MustPost(core.Op{Remote: dst + uint64(i*16), Local: src + uint64(i*16),
				Size: 16, Kind: frame.OpWrite, Flags: flags})
		}
		c01.MustRing(p)
		for i := 0; i < k; i++ {
			c01.WaitCQ(p)
		}
		doneAt = cl.Env.Now()
	})
	cl.Env.RunUntil(sim.Second)
	if doneAt == 0 {
		t.Fatal("solicited batch never completed")
	}
	if doneAt >= cfg.Core.AckDelay {
		t.Fatalf("batch completed at %v — solicit inside the batch did not bypass the %v delayed ACK",
			doneAt, cfg.Core.AckDelay)
	}
}

func TestSQDeterminism(t *testing.T) {
	// Two fresh same-seed runs of an SQ/coalescing workload over lossy
	// unordered rails must agree on every statistic and on virtual time.
	run := func() (sim.Time, core.Stats, core.Stats) {
		cfg := cluster.TwoLinkUnordered1G(0)
		cfg.Link.LossProb = 0.02
		cfg.Seed = 41
		cfg.Core.UseSQ = true
		cfg.Core.CoalesceLimit = 64
		cfg.Nodes = 2
		cl := cluster.New(cfg)
		c01, _ := cl.Pair()
		const rounds, batch = 8, 32
		src := cl.Nodes[0].EP.Alloc(batch * 64)
		dst := cl.Nodes[1].EP.Alloc(batch * 64)
		cl.Env.Go("app", func(p *sim.Proc) {
			for r := 0; r < rounds; r++ {
				for i := 0; i < batch; i++ {
					off := uint64(i * 64)
					c01.MustPost(core.Op{Remote: dst + off, Local: src + off, Size: 64, Kind: frame.OpWrite})
				}
				c01.MustRing(p)
				for i := 0; i < batch; i++ {
					c01.WaitCQ(p)
				}
			}
		})
		end := cl.Env.RunUntil(10 * sim.Second)
		return end, cl.Nodes[0].EP.Stats, cl.Nodes[1].EP.Stats
	}
	t1, a1, b1 := run()
	t2, a2, b2 := run()
	if t1 != t2 || a1 != a2 || b1 != b2 {
		t.Fatalf("same-seed SQ runs diverged:\n%v vs %v\n%+v\nvs\n%+v", t1, t2, a1, a2)
	}
	if a1.Doorbells == 0 || a1.CoalescedFrames == 0 {
		t.Fatalf("workload did not exercise the SQ path: %+v", a1)
	}
}

func TestSQDisabledIsBitIdentical(t *testing.T) {
	// The SQ machinery must be invisible when unused: a run of eager-path
	// traffic on a UseSQ-enabled cluster is bit-identical to the same run
	// with the flag off.
	run := func(useSQ bool) (sim.Time, core.Stats) {
		cfg := cluster.TwoLinkUnordered1G(0)
		cfg.Link.LossProb = 0.02
		cfg.Seed = 31
		cfg.Core.UseSQ = useSQ
		cfg.Core.CoalesceLimit = 64
		cfg.Nodes = 2
		cl := cluster.New(cfg)
		c01, _ := cl.Pair()
		const n = 128 * 1024
		src := cl.Nodes[0].EP.Alloc(n)
		dst := cl.Nodes[1].EP.Alloc(n)
		cl.Env.Go("app", func(p *sim.Proc) {
			c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: n, Kind: frame.OpWrite}).Wait(p)
		})
		end := cl.Env.RunUntil(10 * sim.Second)
		return end, cl.Nodes[0].EP.Stats
	}
	t1, s1 := run(false)
	t2, s2 := run(true)
	if t1 != t2 || s1 != s2 {
		t.Fatalf("eager path disturbed by SQ config: %v vs %v\n%+v\nvs\n%+v", t1, t2, s1, s2)
	}
}

func TestOpErrors(t *testing.T) {
	// The error-returning issue paths reject invalid ops with sentinel
	// errors instead of panicking.
	cl, c01, _ := pairCluster(t, cluster.OneLink1G(0))
	src := cl.Nodes[0].EP.Alloc(64)
	dst := cl.Nodes[1].EP.Alloc(64)
	memEnd := uint64(cl.Nodes[0].EP.Config().MemBytes)
	cl.Env.Go("app", func(p *sim.Proc) {
		cases := []struct {
			name string
			op   core.Op
			want error
		}{
			{"bad range", core.Op{Remote: dst, Local: memEnd - 8, Size: 64, Kind: frame.OpWrite}, core.ErrBadRange},
			{"bad kind", core.Op{Remote: dst, Local: src, Size: 8, Kind: frame.OpType(99)}, core.ErrBadOpKind},
			{"negative size", core.Op{Remote: dst, Local: src, Size: -1, Kind: frame.OpWrite}, core.ErrBadSize},
			{"oversized", core.Op{Remote: dst, Local: src, Size: core.MaxOpSize + 1, Kind: frame.OpWrite}, core.ErrOversized},
		}
		for _, tc := range cases {
			if _, err := c01.Do(p, tc.op); !errors.Is(err, tc.want) {
				t.Errorf("%s: Do err = %v, want %v", tc.name, err, tc.want)
			}
			if err := c01.Post(tc.op); !errors.Is(err, tc.want) {
				t.Errorf("%s: Post err = %v, want %v", tc.name, err, tc.want)
			}
		}
		c01.Close(p)
		good := core.Op{Remote: dst, Local: src, Size: 8, Kind: frame.OpWrite}
		if _, err := c01.Do(p, good); !errors.Is(err, core.ErrClosed) {
			t.Errorf("Do on closed conn: err = %v, want ErrClosed", err)
		}
		if err := c01.Post(good); !errors.Is(err, core.ErrClosed) {
			t.Errorf("Post on closed conn: err = %v, want ErrClosed", err)
		}
		if _, err := c01.Ring(p); !errors.Is(err, core.ErrClosed) {
			t.Errorf("Ring on closed conn: err = %v, want ErrClosed", err)
		}
	})
	cl.Env.RunUntil(sim.Second)
}
