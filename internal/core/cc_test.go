package core_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"multiedge/internal/cluster"
	"multiedge/internal/core"
	"multiedge/internal/frame"
	"multiedge/internal/phys"
	"multiedge/internal/sim"
)

// ccPair builds an established 2-node pair with congestion control on
// (which requires the connection scheduler) and the given window knobs.
func ccPair(t *testing.T, cc core.CCConfig) (*cluster.Cluster, *core.Conn) {
	t.Helper()
	cfg := cluster.OneLink1G(2)
	cfg.Core.SchedQueue = true
	cc.Enable = true
	cfg.Core.CongestionControl = cc
	cl, c01, _ := pairCluster(t, cfg)
	return cl, c01
}

// blackhole drops every frame crossing the given ports until the
// returned restore function runs. Deterministic (no RNG draws).
func blackhole(ports []*phys.OutPort) (restore func()) {
	for _, p := range ports {
		p.SetDropFilter(func(*phys.Frame) bool { return true })
	}
	return func() {
		for _, p := range ports {
			p.SetDropFilter(nil)
		}
	}
}

// TestCCWindowGrowsOnCleanAcks: on a loss-free pair the additive
// increase opens the window — one slot per cwnd acked frames — up to
// MaxWindow, and nothing ever cuts it.
func TestCCWindowGrowsOnCleanAcks(t *testing.T) {
	cl, c01 := ccPair(t, core.CCConfig{InitWindow: 2, MinWindow: 2, MaxWindow: 8})
	src := cl.Nodes[0].EP.Alloc(128 << 10)
	dst := cl.Nodes[1].EP.Alloc(128 << 10)
	cl.Env.Go("app", func(p *sim.Proc) {
		c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: 128 << 10, Kind: frame.OpWrite}).Wait(p)
		if cwnd, _ := c01.CcStateForTest(); cwnd <= 2 {
			t.Errorf("cwnd = %d after a clean 128KiB transfer; want growth beyond InitWindow 2", cwnd)
		}
		c01.Close(p)
	})
	cl.Env.RunUntil(sim.Second)
	if n := cl.Nodes[0].EP.Stats.CcCwndCuts; n != 0 {
		t.Errorf("CcCwndCuts = %d on a loss-free link; want 0", n)
	}
}

// TestCCLossBurstBoundedByCwnd is the satellite regression: with the
// wire blacked out, every retransmission burst the RTO path puts on the
// wire is bounded by the congestion window in force when the burst
// starts — go-back-N repair cannot flood the network it is recovering
// from. The test counts actual NIC transmissions via the port tx hook,
// groups them into bursts by inter-frame gaps, and checks each burst
// against the cwnd sampled at its first frame.
func TestCCLossBurstBoundedByCwnd(t *testing.T) {
	cfg := cluster.OneLink1G(2)
	cfg.Core.SchedQueue = true
	cfg.Core.DeadInterval = 5 * sim.Second
	// Go-back-N is the loss-amplifying baseline: every RTO queues the
	// whole outstanding window for repair, so without the budget each
	// burst would be the full flight.
	cfg.Core.GoBackN = true
	cfg.Core.CongestionControl = core.CCConfig{
		Enable: true, InitWindow: 16, MinWindow: 2, MaxWindow: 32,
	}
	cl, c01, _ := pairCluster(t, cfg)

	type txEv struct {
		at   sim.Time
		cwnd int
	}
	var txs []txEv
	nic := cl.RailPorts(0, 0)[0]
	nic.SetOnTx(func(*phys.Frame) {
		cwnd, _ := c01.CcStateForTest()
		txs = append(txs, txEv{cl.Env.Now(), cwnd})
	})

	t0 := cl.Env.Now()
	restore := blackhole(cl.RailPorts(0, 0))
	tEnd := t0 + 25*sim.Millisecond
	cl.Env.AtDaemon(tEnd, restore)

	const size = 32 << 10
	src := cl.Nodes[0].EP.Alloc(size)
	dst := cl.Nodes[1].EP.Alloc(size)
	fill(cl.Nodes[0].EP.Mem()[src:src+size], 5)
	cl.Env.Go("app", func(p *sim.Proc) {
		c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: size, Kind: frame.OpWrite}).Wait(p)
		if !bytes.Equal(cl.Nodes[1].EP.Mem()[dst:dst+size], cl.Nodes[0].EP.Mem()[src:src+size]) {
			t.Error("payload corrupt after blackout recovery")
		}
		c01.Close(p)
	})
	cl.Env.RunUntil(sim.Second)

	// Group the blackout-window transmissions into bursts: the wire
	// drains a burst in ~12us/frame, while bursts are separated by the
	// 2ms+ RTO backoff.
	var bursts [][]txEv
	for _, ev := range txs {
		if ev.at >= tEnd {
			break
		}
		if n := len(bursts); n == 0 || ev.at-bursts[n-1][len(bursts[n-1])-1].at > sim.Millisecond {
			bursts = append(bursts, nil)
		}
		bursts[len(bursts)-1] = append(bursts[len(bursts)-1], ev)
	}
	if len(bursts) < 3 {
		t.Fatalf("only %d tx bursts during a 25ms blackout; want the initial window plus >= 2 RTO retransmission rounds", len(bursts))
	}
	for i, b := range bursts {
		if len(b) > b[0].cwnd {
			t.Errorf("burst %d put %d frames on the wire with cwnd %d", i, len(b), b[0].cwnd)
		}
	}
	// The RTO cut the window, so recovery bursts are strictly narrower
	// than the initial flight, and the budget demonstrably deferred
	// repair the old go-back-N path would have sent.
	if first, retx := len(bursts[0]), len(bursts[1]); retx >= first {
		t.Errorf("retransmission burst %d >= initial flight %d; RTO cut did not narrow recovery", retx, first)
	}
	st := cl.Nodes[0].EP.Stats
	if st.CcCwndCuts == 0 {
		t.Error("no cwnd cut recorded across an RTO storm")
	}
	if st.CcRetxDeferred == 0 {
		t.Error("CcRetxDeferred = 0: the retransmission budget never engaged")
	}
}

// TestCCEcnEchoCutsWindow: a 2→1 fan-in over a marking switch builds a
// standing queue at the shared downlink, the receiver echoes the marks
// on its acks, and the senders react by cutting cwnd — before a single
// frame is dropped.
func TestCCEcnEchoCutsWindow(t *testing.T) {
	cfg := cluster.OneLink1G(3)
	cfg.Core.SchedQueue = true
	cfg.Core.CongestionControl = core.CCConfig{Enable: true}
	cfg.EcnThreshold = 8
	cl := cluster.New(cfg)

	const size = 256 << 10
	done := 0
	for s := 0; s < 2; s++ {
		s := s
		ep := cl.Nodes[s].EP
		dst := cl.Nodes[2].EP.Alloc(size)
		src := ep.Alloc(size)
		cl.Env.Go("sender", func(p *sim.Proc) {
			c := ep.Dial(p, 2, 0)
			c.MustDo(p, core.Op{Remote: dst, Local: src, Size: size, Kind: frame.OpWrite}).Wait(p)
			done++
			c.Close(p)
		})
		_ = s
	}
	cl.Env.RunUntil(sim.Second)
	if done != 2 {
		t.Fatalf("%d/2 transfers completed", done)
	}
	rep := cl.Collect()
	if rep.EcnMarks == 0 {
		t.Fatal("fabric marked no frames above an 8-deep threshold under 2:1 fan-in")
	}
	if rep.Proto.EcnEchoesSent == 0 || rep.Proto.EcnEchoesRecv == 0 {
		t.Errorf("echo path silent: sent %d, recv %d", rep.Proto.EcnEchoesSent, rep.Proto.EcnEchoesRecv)
	}
	if rep.Proto.CcCwndCuts == 0 {
		t.Error("no congestion-window cut despite ECN echoes")
	}
	if rep.SwitchDrops != 0 {
		t.Errorf("%d drop-tail losses; ECN should throttle before the queue overflows", rep.SwitchDrops)
	}
}

// TestCCPostFailFast pins the fail-fast admission contract: once the
// window is exhausted and the backlog bound is reached, Post returns
// ErrThrottled immediately — the PR-8 quota semantics — and admission
// reopens when the flight drains.
func TestCCPostFailFast(t *testing.T) {
	cl, c01 := ccPair(t, core.CCConfig{InitWindow: 2, MinWindow: 2, MaxWindow: 2, Backlog: 1})
	src := cl.Nodes[0].EP.Alloc(8 << 10)
	dst := cl.Nodes[1].EP.Alloc(8 << 10)
	op := core.Op{Remote: dst, Local: src, Size: 1 << 10, Kind: frame.OpWrite}

	restore := blackhole(cl.RailPorts(0, 0)[:1]) // eat data, keep nothing back
	cl.Env.Go("app", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			if err := c01.Post(op); err != nil {
				t.Errorf("post %d before the window filled: %v", i, err)
			}
		}
		if _, err := c01.Ring(p); err != nil {
			t.Errorf("ring: %v", err)
		}
		p.Sleep(sim.Millisecond) // let the scheduler fill cwnd into the blackhole
		if err := c01.Post(op); !errors.Is(err, core.ErrThrottled) {
			t.Errorf("post against an exhausted window = %v; want ErrThrottled", err)
		}
		restore()
		drainCQ(p, c01, 3)
		// The flight drained: admission reopens.
		if err := c01.Post(op); err != nil {
			t.Errorf("post after drain: %v", err)
		}
		if _, err := c01.Ring(p); err != nil {
			t.Errorf("ring: %v", err)
		}
		drainCQ(p, c01, 1)
		c01.Close(p)
	})
	cl.Env.RunUntil(sim.Second)
	if n := cl.Nodes[0].EP.Stats.CcOpsThrottled; n != 1 {
		t.Errorf("CcOpsThrottled = %d; want 1", n)
	}
}

// TestCCDoBlocksAndHonorsDeadline pins the blocking admission contract:
// Do against an exhausted window waits for the flight to drain instead
// of failing, and an Op.Deadline bounds that wait with
// ErrDeadlineExceeded.
func TestCCDoBlocksAndHonorsDeadline(t *testing.T) {
	cl, c01 := ccPair(t, core.CCConfig{InitWindow: 2, MinWindow: 2, MaxWindow: 2, Backlog: 1})
	src := cl.Nodes[0].EP.Alloc(16 << 10)
	dst := cl.Nodes[1].EP.Alloc(16 << 10)
	op := core.Op{Remote: dst, Local: src, Size: 1 << 10, Kind: frame.OpWrite}

	restore := blackhole(cl.RailPorts(0, 0)[:1])
	cl.Env.Go("pin", func(p *sim.Proc) {
		// 4KiB = 3 frames: 2 fill cwnd into the blackhole, 1 queues
		// behind them, so the connection is window-exhausted AND
		// backlogged.
		pin := op
		pin.Size = 4 << 10
		c01.MustDo(p, pin).Wait(p)
	})
	cl.Env.Go("app", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond)

		dl := op
		dl.Deadline = cl.Env.Now() + 500*sim.Microsecond
		if _, err := c01.Do(p, dl); !errors.Is(err, core.ErrDeadlineExceeded) {
			t.Errorf("blocked Do with passed deadline = %v; want ErrDeadlineExceeded", err)
		}
		if now := cl.Env.Now(); now < dl.Deadline {
			t.Errorf("deadline failure surfaced at %v, before the %v deadline", now, dl.Deadline)
		}

		// Heal the wire; the deadline-free Do must be admitted once the
		// pinned flight drains, and complete.
		restore()
		h, err := c01.Do(p, op)
		if err != nil {
			t.Errorf("blocking Do after heal: %v", err)
		} else {
			h.Wait(p)
			if h.Err() != nil {
				t.Errorf("drained op failed: %v", h.Err())
			}
		}
		c01.Close(p)
	})
	cl.Env.RunUntil(sim.Second)
	st := cl.Nodes[0].EP.Stats
	if st.CcAdmissionWaits != 2 {
		t.Errorf("CcAdmissionWaits = %d; want 2 (deadline waiter + drained waiter)", st.CcAdmissionWaits)
	}
	if st.OpDeadlinesExpired != 1 {
		t.Errorf("OpDeadlinesExpired = %d; want 1", st.OpDeadlinesExpired)
	}
}

// TestPerRailRTTSplit is the satellite check: a striped connection
// keeps a per-rail RTT estimate alongside the blended one, Conn.Health
// surfaces it, and the skewed rail reads measurably slower. The 2L-1G
// preset skews rail 0's switch by +5us, so after bidirectional traffic
// rail 0's SRTT must exceed rail 1's. Congestion control stays OFF: the
// split is unconditional observability.
// TestRailProbesMeasureSplit: with the controller on, a multi-rail conn
// measures each rail with dedicated probe/echo exchanges — the
// cumulative ack cannot split rails, so the probes are the only signal
// — and the skewed rail 0 must read slower than rail 1.
func TestRailProbesMeasureSplit(t *testing.T) {
	cfg := cluster.TwoLink1G(0)
	cfg.Core.SchedQueue = true
	cfg.Core.CongestionControl = core.CCConfig{Enable: true}
	cl, c01, _ := pairCluster(t, cfg)
	const size = 16 << 10
	src := cl.Nodes[0].EP.Alloc(size)
	dst := cl.Nodes[1].EP.Alloc(size)
	cl.Env.Go("app", func(p *sim.Proc) {
		c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: size, Kind: frame.OpWrite}).Wait(p)
		// Idle long enough for several probe rounds (default 1ms tick).
		p.Sleep(10 * sim.Millisecond)
		if n := cl.Nodes[0].EP.Stats.CcRailProbes; n == 0 {
			t.Error("no rail probes sent on a multi-rail CC connection")
		}
		h := c01.Health()
		if len(h.Rails) != 2 {
			t.Fatalf("Health().Rails has %d entries; want 2", len(h.Rails))
		}
		if h.Rails[0].SRTTUs <= h.Rails[1].SRTTUs {
			t.Errorf("skewed rail 0 SRTT %.1fus <= rail 1 SRTT %.1fus; probes not splitting rails",
				h.Rails[0].SRTTUs, h.Rails[1].SRTTUs)
		}
		c01.Close(p)
	})
	cl.Env.RunUntil(sim.Second)
}

func TestPerRailRTTSplit(t *testing.T) {
	cl, c01, _ := pairCluster(t, cluster.TwoLink1G(0))
	const size = 64 << 10
	src := cl.Nodes[0].EP.Alloc(size)
	dst := cl.Nodes[1].EP.Alloc(size)
	cl.Env.Go("app", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: size, Kind: frame.OpWrite}).Wait(p)
		}
		h := c01.Health()
		if len(h.Rails) != 2 {
			t.Fatalf("Health().Rails has %d entries; want 2", len(h.Rails))
		}
		for li, r := range h.Rails {
			if r.SRTTUs <= 0 || r.RTOUs <= 0 {
				t.Errorf("rail %d never sampled: %+v", li, r)
			}
		}
		if h.Rails[0].SRTTUs <= h.Rails[1].SRTTUs {
			t.Errorf("skewed rail 0 SRTT %.1fus <= rail 1 SRTT %.1fus; split not tracking per-rail latency",
				h.Rails[0].SRTTUs, h.Rails[1].SRTTUs)
		}
		if h.Cwnd != 0 {
			t.Errorf("Cwnd = %d with congestion control off; want 0", h.Cwnd)
		}
		if js := string(cl.Nodes[0].EP.Health().JSON()); !strings.Contains(js, `"rails":[{"srtt_us":`) {
			t.Errorf("health JSON carries no per-rail split: %s", js)
		}
		c01.Close(p)
	})
	cl.Env.RunUntil(sim.Second)
}
