package core

import (
	"fmt"
	"sort"

	"multiedge/internal/frame"
	"multiedge/internal/obs"
	"multiedge/internal/phys"
	"multiedge/internal/sim"
)

// Supervised recovery (Config.Reconnect): instead of a terminal Failed
// state, peer death parks the connection in Reconnecting. The dialer
// side redials with capped exponential backoff, re-using the ordinary
// connection handshake but carrying a fresh incarnation; the acceptor
// side waits (bounded) for that handshake. When the handshake lands,
// both sides are reborn into the new epoch: all ARQ, ordering and link
// state resets to a fresh connection's, and every incomplete send-side
// operation is replayed from local memory with its ORIGINAL operation
// id.
//
// Replaying everything incomplete — user operations, internal probes,
// read-reply serves — keeps the receiver's operation-id space free of
// holes, so the completion frontier and the fence machinery need no
// special cases. Exactly-once delivery follows from two facts: the
// receiver deletes its partially received operations at rebirth (the
// replay rewrites them from offset 0 with byte-identical data), and it
// keeps its completed ones, whose records make the apply path drop
// replayed payload for work that already landed (DupFramesDropped).
// Frames from the dead epoch — delayed in a deep queue, duplicated, or
// replayed across a rail restore — carry the old incarnation and are
// fenced at dispatch (StaleEpochDrops).

// nextIncarnation returns the epoch after inc, skipping 0 — the wire
// value reserved for "incarnations unused".
func nextIncarnation(inc uint16) uint16 {
	inc++
	if inc == 0 {
		inc = 1
	}
	return inc
}

// incarnNewer reports whether a is a more recent epoch than b, under
// serial-number arithmetic so the 16-bit space may wrap.
func incarnNewer(a, b uint16) bool { return int16(a-b) > 0 }

// peerLost routes a local peer-death verdict (RTO budget, silence,
// read-liveness) either into the supervised reconnect machinery or —
// with recovery off, or for a connection that never finished its first
// handshake — into the terminal failConn path, exactly as before.
func (c *Conn) peerLost(cause error, sendReset bool) {
	reset := int64(0)
	if sendReset {
		reset = 1
	}
	c.ep.recEvent(c.localID, obs.RecPeerDead, reset, int64(c.expiries))
	if c.ep.cfg.Reconnect && c.established.Fired() && !c.failed {
		c.enterReconnect(cause, sendReset)
		return
	}
	c.failConn(cause, sendReset)
}

// enterReconnect parks the connection: the current epoch is condemned,
// every protocol timer stops, and no frame is sent or accepted until a
// handshake installs a successor. The dialer starts redialing
// immediately; the acceptor arms a bounded give-up wait, sized so it
// comfortably outlasts the dialer's full detection + redial schedule.
func (c *Conn) enterReconnect(cause error, sendReset bool) {
	if c.closed || c.reconnecting {
		return
	}
	_ = cause // the outage is transient by intent; errors surface only on give-up
	ep := c.ep
	ep.recEvent(c.localID, obs.RecReconnect, int64(c.incarnation), 0)
	c.reconnecting = true
	c.reconnSince = ep.env.Now()
	c.reconnAttempt = 0
	c.stopTimers()
	if c.reconnSpan == nil && ep.obs.SpansEnabled() {
		c.reconnSpan = ep.obs.StartLayerSpan(ep.node, "core", "reconnect", 0)
	}
	if sendReset {
		// Tell the peer the epoch is condemned so it parks promptly too
		// instead of burning its own detection budget.
		c.sendResetFrames()
	}
	if c.dialer {
		c.pendingIncarn = nextIncarnation(c.incarnation)
		c.scheduleRedial(0)
		return
	}
	// Passive side: if the dialer never shows up, fail for real. The
	// timer is a daemon — a parked conn must not keep a drained
	// simulation alive on its own.
	wait := c.passiveWait()
	c.reconnGiveUp = ep.afterDaemonTimer(wait, func() {
		if c.closed || !c.reconnecting {
			return
		}
		ep.Stats.ReconnectsFailed++
		c.failConn(fmt.Errorf("core: connection to node %d: no reconnect handshake within %v: %w",
			c.remoteNode, wait, ErrPeerDead), false)
	})
}

// passiveWait bounds how long the acceptor side stays parked: the
// dialer may take up to DeadInterval to notice the outage, then runs
// its whole backoff schedule; one extra base delay absorbs handshake
// propagation.
func (c *Conn) passiveWait() sim.Time {
	cfg := &c.ep.cfg
	base, max := cfg.reconnectBackoff()
	wait := cfg.DeadInterval + base
	d := base
	for i := 0; i < cfg.reconnectBudget(); i++ {
		wait += d
		d *= 2
		if d > max {
			d = max
		}
	}
	return wait
}

func (c *Conn) scheduleRedial(d sim.Time) {
	c.reconnTimer = c.ep.env.After(d, c.redial)
}

// redial sends one reconnect ConnReq carrying the proposed incarnation
// and re-arms itself with exponential backoff until the budget runs
// out. The request is identical to a fresh Dial's — the acceptor
// recognizes the {node, connID} pair in its handshake-dedupe table and
// treats the newer incarnation as a reconnect rather than a duplicate.
func (c *Conn) redial() {
	if c.closed || !c.reconnecting {
		return
	}
	ep := c.ep
	if c.reconnAttempt >= ep.cfg.reconnectBudget() {
		ep.Stats.ReconnectsFailed++
		c.failConn(fmt.Errorf("core: connection to node %d: reconnect failed after %d attempts: %w",
			c.remoteNode, c.reconnAttempt, ErrPeerDead), false)
		return
	}
	c.reconnAttempt++
	ep.recEvent(c.localID, obs.RecRedial, int64(c.reconnAttempt), int64(c.pendingIncarn))
	h := frame.Header{Type: frame.TypeConnReq, ConnID: c.localID,
		OpID: uint64(c.links), Incarnation: c.pendingIncarn}
	dst := frame.NewAddr(c.remoteNode, 0)
	buf := frame.MustEncode(dst, ep.nics[0].Addr(), &h, nil)
	ep.nics[0].Transmit(&phys.Frame{Buf: buf, Dst: dst, Src: ep.nics[0].Addr()})
	base, max := ep.cfg.reconnectBackoff()
	d := base
	for i := 1; i < c.reconnAttempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	c.scheduleRedial(d)
}

// acceptReconnect runs on the acceptor when a ConnReq proposing a newer
// incarnation arrives. The acceptor may not even have noticed the
// outage yet (the dialer's detector can fire first); in that case it
// parks on the spot so timers and ctrl state drop cleanly, then is
// reborn straight into the proposed epoch.
func (c *Conn) acceptReconnect(inc uint16) {
	if c.closed {
		return
	}
	if !c.reconnecting {
		c.ep.recEvent(c.localID, obs.RecReconnect, int64(c.incarnation), 1)
		c.reconnecting = true
		c.reconnSince = c.ep.env.Now()
		c.stopTimers()
		if c.reconnSpan == nil && c.ep.obs.SpansEnabled() {
			c.reconnSpan = c.ep.obs.StartLayerSpan(c.ep.node, "core", "reconnect", 0)
		}
	}
	c.rebirth(inc)
}

// completeReconnect runs on the dialer when the ConnAck for its
// proposed incarnation arrives.
func (c *Conn) completeReconnect() {
	c.rebirth(c.pendingIncarn)
}

// rebirth installs epoch inc: journal every incomplete send-side
// operation, reset all per-epoch protocol state to a fresh
// connection's, and re-queue the journal for transmission with the
// original operation ids. Iteration orders are deterministic (sequence
// walk, FIFO slice, sorted ids) so recovery runs replay bit-identically.
func (c *Conn) rebirth(inc uint16) {
	ep := c.ep
	now := ep.env.Now()
	if c.reconnTimer != nil {
		c.reconnTimer.Stop()
	}
	if c.reconnGiveUp != nil {
		c.reconnGiveUp.Stop()
	}

	// Journal: in-window frames' ops first (oldest outstanding work),
	// then queued ops, then reads whose requests were fully acked — their
	// txOps are gone, so the request is re-synthesized from the handle's
	// descriptor. Ids are unique, so dedupe by id and sort once.
	seen := make(map[uint64]bool)
	var journal []*txOp
	add := func(t *txOp) {
		if t == nil || t.completed || seen[t.id] {
			return
		}
		seen[t.id] = true
		journal = append(journal, t)
	}
	for s := c.sndUna; s != c.sndNxt; s++ {
		if tf, ok := c.retrans.get(s); ok {
			add(tf.op)
			// The frame record dies with the old epoch (the journal
			// re-fragments its op from offset 0); recycle it.
			c.freeTxFrame(tf)
		}
	}
	for _, t := range c.txOps {
		add(t)
	}
	if len(c.pendingReads) > 0 {
		ids := make([]uint64, 0, len(c.pendingReads))
		for id := range c.pendingReads {
			if !seen[id] {
				ids = append(ids, id)
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			h := c.pendingReads[id]
			add(&txOp{id: id, opType: frame.OpRead, flags: h.op.Flags,
				remote: h.op.Remote, local: h.op.Local, total: uint32(h.size), h: h})
		}
	}
	sort.Slice(journal, func(i, j int) bool { return journal[i].id < journal[j].id })

	// Transmit state: fresh epoch.
	c.sndUna, c.sndNxt = 0, 0
	c.retrans.clear()
	c.retransQ = nil
	c.expiries = 0
	c.rr = 0
	for i := 0; i < c.links; i++ {
		c.linkFails[i] = 0
		c.linkDead[i] = false
		c.linkDeadAt[i] = 0
	}
	c.deadLinks = 0
	if c.railOut != nil {
		// Congestion state dies with the epoch: the outstanding-frame
		// charges refer to frames that will never be acked, and an outage
		// says nothing about post-recovery capacity — restart from the
		// initial window like a fresh conn.
		for i := range c.railOut {
			c.railOut[i] = 0
		}
		c.cwnd = c.ep.cfg.ccInit()
		c.ccAckCredit, c.ccRetxSent, c.ccEcnRx = 0, 0, 0
		c.ccRecover = 0
	}

	// Receive state: fresh epoch. Partially received operations are
	// deleted — the peer replays them from offset 0 with identical data —
	// while completed ones stay so replayed payload for them is dropped,
	// never re-applied (exactly-once). The frontier survives untouched.
	c.rcvNxt = 0
	c.rcvSeen.clear()
	c.maxSeenPlus1 = 0
	c.missingSince.clear()
	c.nackedAt.clear()
	c.lastNack = 0
	for i := 0; i < c.links; i++ {
		c.linkHigh[i] = 0
		c.linkLast[i] = 0
	}
	c.unackedRx = 0
	c.ackDue = false
	c.nackDue = nil
	c.applyNxt = 0
	c.strictBuf.clear()
	c.held = nil
	for id, op := range c.rxOps {
		if !op.complete {
			delete(c.rxOps, id)
		}
	}
	c.fenced = nil

	// Re-queue the journal: every op restarts from offset 0. Write
	// handles reset their acknowledged-byte mark, or a partially acked
	// first life would double-count; read handles never advanced it.
	c.txFenced = nil
	for _, t := range journal {
		t.sent = 0
		t.sentAll = false
		t.unacked = 0
		if t.h != nil && t.opType == frame.OpWrite {
			t.h.acked = 0
		}
		if t.flags&frame.FenceAfter != 0 {
			c.txFenced = append(c.txFenced, t.id)
		}
		if !t.probe {
			ep.Stats.ReplayedOps++
			ep.Stats.ReplayedBytes += uint64(len(t.data))
		}
	}
	c.txOps = journal

	c.incarnation = inc
	ep.recEvent(c.localID, obs.RecRebirth, int64(inc), int64(len(journal)))
	c.pendingIncarn = 0
	c.reconnecting = false
	c.reconnTotal++
	ep.Stats.Reconnects++
	if ep.reconnHist != nil && c.reconnSince > 0 {
		ep.reconnHist.Observe(float64(now-c.reconnSince) / 1000)
	}
	if ep.redialHist != nil && c.dialer {
		ep.redialHist.Observe(float64(c.reconnAttempt))
	}
	c.reconnAttempt = 0
	if c.reconnSpan != nil {
		c.reconnSpan.EndAt(now)
		c.reconnSpan = nil
	}
	c.reconnSince = 0
	c.startKeepalive() // resets lastHeard/lastTx/lastProgress, re-arms the hb tick
	c.kick()
}
