package core_test

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"multiedge/internal/cluster"
	"multiedge/internal/core"
	"multiedge/internal/frame"
	"multiedge/internal/sim"
)

// failPair builds a 2-node, 2-link cluster and starts a bulk write of n
// bytes from node 0 to node 1, returning the cluster, the sending conn
// and a completion timestamp set by the sender process (zero while the
// transfer is incomplete).
func failPair(t *testing.T, n int, tweak func(*cluster.Config)) (*cluster.Cluster, *core.Conn, *sim.Time) {
	t.Helper()
	cfg := cluster.TwoLinkUnordered1G(2)
	cfg.Core.MemBytes = 64 << 20
	if tweak != nil {
		tweak(&cfg)
	}
	cl := cluster.New(cfg)
	c01, _ := cl.Pair()
	ep0, ep1 := cl.Nodes[0].EP, cl.Nodes[1].EP
	src := ep0.Alloc(n)
	dst := ep1.Alloc(n)
	fill(ep0.Mem()[src:src+uint64(n)], 11)
	doneAt := new(sim.Time)
	cl.Env.Go("sender", func(p *sim.Proc) {
		c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: n, Kind: frame.OpWrite}).Wait(p)
		*doneAt = cl.Env.Now()
		if !bytes.Equal(ep1.Mem()[dst:dst+uint64(n)], ep0.Mem()[src:src+uint64(n)]) {
			t.Error("delivered data corrupted")
		}
	})
	return cl, c01, doneAt
}

// TestLinkFailureMidTransfer pulls one of two rails mid-transfer: the
// sender must detect the dead link, reroute everything to the survivor
// and complete the transfer with intact data.
func TestLinkFailureMidTransfer(t *testing.T) {
	const n = 4 << 20
	cl, _, doneAt := failPair(t, n, nil)
	cl.Env.At(5*sim.Millisecond, func() { cl.FailLink(0, 1) })
	cl.Env.RunUntil(2 * sim.Second)
	if *doneAt == 0 {
		t.Fatal("transfer did not complete after link failure")
	}
	st := cl.Nodes[0].EP.Stats
	if st.LinkDeadEvents == 0 {
		t.Error("sender never declared the failed link dead")
	}
	if st.LinkRestores != 0 {
		t.Errorf("link restored %d times while still failed", st.LinkRestores)
	}
	// After detection the survivor carries everything: the failed rail's
	// NIC must have stopped far short of its share of the transfer.
	deadTx := cl.Nodes[0].NICs[1].TxFrames
	liveTx := cl.Nodes[0].NICs[0].TxFrames
	if deadTx*4 > liveTx {
		t.Errorf("dead rail kept transmitting: dead=%d live=%d frames", deadTx, liveTx)
	}
}

// TestLinkFailureThroughput checks the performance contract: with
// detection enabled, losing one of two rails degrades a long transfer
// to roughly single-rail speed rather than RTO-paced collapse.
func TestLinkFailureThroughput(t *testing.T) {
	const n = 8 << 20
	cl, _, doneAt := failPair(t, n, nil)
	cl.FailLink(0, 1) // dead from the start
	start := cl.Env.Now()
	cl.Env.RunUntil(5 * sim.Second)
	if *doneAt == 0 {
		t.Fatal("transfer did not complete")
	}
	mbs := float64(n) / 1e6 / (*doneAt - start).Seconds()
	// One 1-GBit/s rail peaks at ~117 MB/s in this model; detection
	// should keep a half-dead dual-rail transfer above 80 MB/s. Without
	// it the transfer limps at a few MB/s (see the ablation bench).
	if mbs < 80 {
		t.Errorf("throughput with one dead rail = %.1f MB/s, want > 80", mbs)
	}
}

// TestLinkFailureDisabled verifies the knob: with DeadLinkThreshold 0
// the sender keeps striping onto the dead rail and only the receiver's
// stale-link NACK escape plus RTOs crawl the transfer forward.
func TestLinkFailureDisabled(t *testing.T) {
	const n = 256 << 10
	cl, _, doneAt := failPair(t, n, func(cfg *cluster.Config) {
		cfg.Core.DeadLinkThreshold = 0
	})
	cl.FailLink(0, 1)
	cl.Env.RunUntil(10 * sim.Second)
	if *doneAt == 0 {
		t.Fatal("transfer did not complete (repair must still converge)")
	}
	st := cl.Nodes[0].EP.Stats
	if st.LinkDeadEvents != 0 {
		t.Errorf("LinkDeadEvents = %d with detection disabled", st.LinkDeadEvents)
	}
	// Half of every window is still burned on the dead rail.
	if drops := cl.Collect().LinkFailDrops; drops < uint64(n/2/1444/2) {
		t.Errorf("expected sustained striping onto the dead rail, got %d failed-drops", drops)
	}
}

// TestLinkRestore repairs the cable mid-run: the sender must probe the
// dead rail, notice the repair and resume striping over both links.
func TestLinkRestore(t *testing.T) {
	const n = 24 << 20
	cl, _, doneAt := failPair(t, n, nil)
	cl.Env.At(2*sim.Millisecond, func() { cl.FailLink(0, 1) })
	cl.Env.At(60*sim.Millisecond, func() { cl.RestoreLink(0, 1) })
	cl.Env.RunUntil(5 * sim.Second)
	if *doneAt == 0 {
		t.Fatal("transfer did not complete")
	}
	st := cl.Nodes[0].EP.Stats
	if st.LinkDeadEvents == 0 {
		t.Fatal("link was never declared dead")
	}
	if st.LinkRestores == 0 {
		t.Fatal("repaired link was never re-admitted")
	}
	// Post-restore the rails share load again: rail 1 must have carried
	// a substantial fraction of the whole transfer despite its outage.
	tx0 := cl.Nodes[0].NICs[0].TxFrames
	tx1 := cl.Nodes[0].NICs[1].TxFrames
	if tx1*4 < tx0 {
		t.Errorf("restored rail underused: rail0=%d rail1=%d frames", tx0, tx1)
	}
}

// TestLinkFailureLastLink ensures the last surviving link can never be
// declared dead, even when it is the one failing: the sender must keep
// retransmitting on it so a repaired link resumes by itself.
func TestLinkFailureLastLink(t *testing.T) {
	const n = 64 << 10
	cl, _, doneAt := failPair(t, n, nil)
	cl.Env.At(1*sim.Millisecond, func() { cl.FailLink(0, 0); cl.FailLink(0, 1) })
	cl.Env.At(40*sim.Millisecond, func() { cl.RestoreLink(0, 0); cl.RestoreLink(0, 1) })
	cl.Env.RunUntil(10 * sim.Second)
	if *doneAt == 0 {
		t.Fatal("transfer did not complete after full outage and repair")
	}
	st := cl.Nodes[0].EP.Stats
	if st.LinkDeadEvents > 1 {
		t.Errorf("declared %d links dead; at most one of two may die", st.LinkDeadEvents)
	}
}

// TestStaleLinkNackEscape pins the receiver-side half of failure
// handling in isolation: with sender-side detection disabled, repair of
// frames lost on a dead rail must still be NACK-driven (fast) rather
// than purely RTO-driven, because the silent rail loses its veto after
// LinkStaleAge. One RTO-paced frame per 2ms would need ~2.9s for 64KiB;
// NACK-driven repair finishes in well under half a second.
func TestStaleLinkNackEscape(t *testing.T) {
	const n = 64 << 10
	cl, _, doneAt := failPair(t, n, func(cfg *cluster.Config) {
		cfg.Core.DeadLinkThreshold = 0
	})
	cl.FailLink(0, 1)
	cl.Env.RunUntil(500 * sim.Millisecond)
	if *doneAt == 0 {
		t.Fatal("NACK-driven repair too slow: stale-link escape not working")
	}
	if nacks := cl.Nodes[1].EP.Stats.CtrlNacksSent; nacks == 0 {
		t.Error("no NACKs sent; repair was not NACK-driven")
	}
}

// TestStaleLinkEscapeDisabled is the control for the escape, pinning
// the failure mode that motivates it (DESIGN.md §4): with LinkStaleAge
// 0 the absolute per-link FIFO veto applies, the receiver never NACKs
// the frames lost on the dead rail, and the sender's retransmit-last
// RTO rule keeps resending a frame the receiver already has — a
// livelock. With peer-death detection also disabled the transfer simply
// never completes (the legacy hang); under the default DeadInterval the
// same livelock is detected as lack of ack progress and surfaces as a
// loud ErrPeerDead within the detection bound instead.
func TestStaleLinkEscapeDisabled(t *testing.T) {
	t.Run("detection-off-livelocks", func(t *testing.T) {
		const n = 64 << 10
		cl, _, doneAt := failPair(t, n, func(cfg *cluster.Config) {
			cfg.Core.DeadLinkThreshold = 0
			cfg.Core.LinkStaleAge = 0
			cfg.Core.DeadInterval = 0 // legacy behaviour: livelock forever
		})
		cl.FailLink(0, 1)
		cl.Env.RunUntil(5 * sim.Second)
		if *doneAt != 0 {
			t.Fatal("transfer finished without the stale escape; control invalid")
		}
		st := cl.Nodes[0].EP.Stats
		if st.Retransmissions == 0 {
			t.Error("expected RTO-driven retransmissions during the livelock")
		}
		if cl.Nodes[1].EP.Stats.CtrlNacksSent != 0 {
			t.Error("receiver NACKed despite the absolute veto; control invalid")
		}
		if st.PeerDeadEvents != 0 {
			t.Error("peer declared dead with detection disabled")
		}
	})
	t.Run("default-fails-loudly", func(t *testing.T) {
		const n = 64 << 10
		cfg := cluster.TwoLinkUnordered1G(2)
		cfg.Core.MemBytes = 64 << 20
		cfg.Core.DeadLinkThreshold = 0
		cfg.Core.LinkStaleAge = 0
		cl := cluster.New(cfg)
		c01, _ := cl.Pair()
		ep0, ep1 := cl.Nodes[0].EP, cl.Nodes[1].EP
		src := ep0.Alloc(n)
		dst := ep1.Alloc(n)
		fill(ep0.Mem()[src:src+uint64(n)], 11)
		var opErr error
		var returnedAt sim.Time
		cl.Env.Go("sender", func(p *sim.Proc) {
			h := c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: n, Kind: frame.OpWrite})
			h.Wait(p)
			opErr = h.Err()
			returnedAt = cl.Env.Now()
		})
		cl.FailLink(0, 1)
		cl.Env.RunUntil(5 * sim.Second)
		if returnedAt == 0 {
			t.Fatal("Wait never returned: the livelock is no longer bounded")
		}
		if !errors.Is(opErr, core.ErrPeerDead) {
			t.Fatalf("op error = %v, want ErrPeerDead", opErr)
		}
		if !c01.Failed() || c01.Err() == nil {
			t.Error("conn not marked Failed with a cause")
		}
		di := ep0.Config().DeadInterval
		if di <= 0 {
			t.Fatal("default DeadInterval disabled; test premise invalid")
		}
		if returnedAt > 2*di {
			t.Errorf("failure surfaced at %v, want within ~%v of the stall", returnedAt, di)
		}
		if ep0.Stats.PeerDeadEvents == 0 {
			t.Error("no PeerDeadEvents counted")
		}
	})
}

// TestFailLinkBothDirections verifies the cluster helper kills both
// directions: traffic from node 1 to node 0 over the failed rail is
// equally affected.
func TestFailLinkBothDirections(t *testing.T) {
	cfg := cluster.TwoLinkUnordered1G(2)
	cl := cluster.New(cfg)
	_, c10 := cl.Pair()
	ep0, ep1 := cl.Nodes[0].EP, cl.Nodes[1].EP
	const n = 2 << 20
	src := ep1.Alloc(n)
	dst := ep0.Alloc(n)
	fill(ep1.Mem()[src:src+uint64(n)], 3)
	cl.FailLink(0, 1) // node 0's rail 1, both directions
	done := false
	cl.Env.Go("sender", func(p *sim.Proc) {
		c10.MustDo(p, core.Op{Remote: dst, Local: src, Size: n, Kind: frame.OpWrite}).Wait(p)
		done = true
	})
	cl.Env.RunUntil(2 * sim.Second)
	if !done {
		t.Fatal("reverse-direction transfer did not complete")
	}
	if !bytes.Equal(ep0.Mem()[dst:dst+uint64(n)], ep1.Mem()[src:src+uint64(n)]) {
		t.Error("delivered data corrupted")
	}
	if cl.Nodes[1].EP.Stats.LinkDeadEvents == 0 {
		t.Error("node 1 never detected the dead downlink")
	}
}

// TestLinkFailureUnderLoss combines a hard failure with 1% random loss
// on the surviving rail: detection must not be confused by transient
// loss (which also causes repairs, but with ACK resets in between).
func TestLinkFailureUnderLoss(t *testing.T) {
	const n = 4 << 20
	cl, _, doneAt := failPair(t, n, func(cfg *cluster.Config) {
		cfg.Link.LossProb = 0.01
		cfg.Seed = 7
	})
	cl.Env.At(3*sim.Millisecond, func() { cl.FailLink(0, 0) })
	cl.Env.RunUntil(5 * sim.Second)
	if *doneAt == 0 {
		t.Fatal("transfer did not complete")
	}
	st := cl.Nodes[0].EP.Stats
	if st.LinkDeadEvents == 0 {
		t.Error("dead link not detected under background loss")
	}
	// The survivor must not be declared dead too: that would serialize
	// the two rails' outages and show up as a restore.
	if st.LinkDeadEvents > 1 && st.LinkRestores == 0 {
		t.Errorf("both rails marked dead without restore (events=%d)", st.LinkDeadEvents)
	}
}

// TestNoFalseDeadLinks runs a clean and a lossy dual-rail transfer and
// checks the detector's specificity: without a hard failure no link may
// ever be declared dead.
func TestNoFalseDeadLinks(t *testing.T) {
	for _, loss := range []float64{0, 0.02} {
		const n = 8 << 20
		cl, _, doneAt := failPair(t, n, func(cfg *cluster.Config) {
			cfg.Link.LossProb = loss
			cfg.Seed = 21
		})
		cl.Env.RunUntil(5 * sim.Second)
		if *doneAt == 0 {
			t.Fatalf("loss=%v: transfer did not complete", loss)
		}
		if ev := cl.Nodes[0].EP.Stats.LinkDeadEvents; ev != 0 {
			t.Errorf("loss=%v: %d false dead-link declarations", loss, ev)
		}
	}
}

// TestLinkFailureScheduleProperty is the failure-injection property
// test: under an arbitrary schedule of cable pulls and re-plugs on
// either rail (never both at once, so connectivity persists), a
// transfer must always complete and deliver byte-identical data.
func TestLinkFailureScheduleProperty(t *testing.T) {
	prop := func(seed int64, schedRaw []uint16) bool {
		const n = 1 << 20
		cfg := cluster.TwoLinkUnordered1G(2)
		cfg.Seed = seed%1000 + 1
		cl := cluster.New(cfg)
		c01, _ := cl.Pair()
		ep0, ep1 := cl.Nodes[0].EP, cl.Nodes[1].EP
		src := ep0.Alloc(n)
		dst := ep1.Alloc(n)
		fill(ep0.Mem()[src:src+uint64(n)], byte(seed))

		// Each schedule entry toggles one rail's state at a pseudo-random
		// time within the first 40 ms. Rail r is encoded in bit 0; the
		// toggle time in the remaining bits. Track desired state so a
		// rail is only failed when the other is up.
		if len(schedRaw) > 16 {
			schedRaw = schedRaw[:16]
		}
		failed := [2]bool{}
		for _, e := range schedRaw {
			r := int(e & 1)
			at := sim.Time(e>>1)%40*sim.Millisecond + sim.Millisecond
			if failed[r] {
				failed[r] = false
				cl.Env.At(at, func() { cl.RestoreLink(0, r) })
			} else if !failed[1-r] {
				failed[r] = true
				cl.Env.At(at, func() { cl.FailLink(0, r) })
			}
		}
		// Whatever the schedule left failed comes back at 60 ms so the
		// transfer can always finish at full speed.
		cl.Env.At(60*sim.Millisecond, func() {
			cl.RestoreLink(0, 0)
			cl.RestoreLink(0, 1)
		})

		var doneAt sim.Time
		cl.Env.Go("xfer", func(p *sim.Proc) {
			c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: n, Kind: frame.OpWrite}).Wait(p)
			doneAt = cl.Env.Now()
		})
		cl.Env.RunUntil(30 * sim.Second)
		if doneAt == 0 {
			t.Logf("seed %d schedule %v: transfer incomplete", seed, schedRaw)
			return false
		}
		if !bytes.Equal(ep1.Mem()[dst:dst+n], ep0.Mem()[src:src+n]) {
			t.Logf("seed %d schedule %v: data corrupted", seed, schedRaw)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestCtrlFramesAvoidStaleRail pins receiver-side control routing:
// ACK/NACK frames are never acknowledged, so the sender-side detector
// cannot protect them — instead they prefer rails that recently
// delivered. With rail 1 dead, virtually all of the receiver's control
// traffic must exit on rail 0 (a handful may leave on rail 1 within the
// first LinkStaleAge of the outage).
func TestCtrlFramesAvoidStaleRail(t *testing.T) {
	const n = 8 << 20
	cl, _, doneAt := failPair(t, n, nil)
	cl.FailLink(0, 1)
	cl.Env.RunUntil(5 * sim.Second)
	if *doneAt == 0 {
		t.Fatal("transfer did not complete")
	}
	// Node 1 only transmits control frames in this one-way run.
	ctrl0 := cl.Nodes[1].NICs[0].TxFrames
	ctrl1 := cl.Nodes[1].NICs[1].TxFrames
	if ctrl1*20 > ctrl0 {
		t.Errorf("receiver kept sending ctrl on the dead rail: rail0=%d rail1=%d", ctrl0, ctrl1)
	}
	if ctrl0 == 0 {
		t.Fatal("no control frames at all; measurement invalid")
	}
}
