package core

import (
	"fmt"
	"sort"

	"multiedge/internal/frame"
	"multiedge/internal/obs"
	"multiedge/internal/phys"
	"multiedge/internal/sim"
	"multiedge/internal/trace"
)

// Conn is one end of a MultiEdge point-to-point connection. All
// communication is fully asynchronous remote memory access (IPPS'07
// §2.2): RDMAOperation initiates a remote read or write and returns a
// Handle; completion and remote notifications are delivered through the
// simulation's signal and mailbox primitives.
//
// Sequence numbers are 32-bit and assumed not to wrap within one
// simulation (2^32 frames ≈ 6 TB of traffic, far above any experiment).
type Conn struct {
	ep         *Endpoint
	localID    uint32
	remoteID   uint32
	remoteNode int
	links      int

	established sim.Signal
	connTimer   *sim.Timer
	closed      bool
	closedSig   sim.Signal
	closeTimer  *sim.Timer

	// Scheduler membership (Config.SchedQueue): whether the conn is
	// currently queued for control/data service at the endpoint.
	inCtrlQ bool
	inSendQ bool

	// Traffic class (Config.QoS): which tenant's scheduler queues and
	// quotas this conn belongs to. See SetClass.
	class int

	// Failure handling: adaptive retransmission timing (Config.RTOMax)
	// and peer-death detection (Config.MaxRetries / DeadInterval /
	// HeartbeatInterval).
	failed       bool  // peer declared dead; failErr says why
	failErr      error // wraps ErrPeerDead
	srtt         sim.Time
	rttvar       sim.Time
	rto          sim.Time // clamped SRTT+4*RTTVAR estimate (armed in adaptive mode)
	expiries     int      // consecutive RTO expiries without ack progress
	lastProgress sim.Time // last ack advance, or first transmit of a fresh burst
	lastHeard    sim.Time // last frame received on this conn
	lastTx       sim.Time // last frame transmitted on this conn
	hbTimer      timer
	readGuard    timer // daemon liveness check while read replies are pending
	railProbe    timer // per-rail RTT probe tick (multi-rail + CC only)
	railProbeRR  int   // next rail to probe (rails are probed staggered)

	// Transmit side.
	nextOpID     uint64
	txOps        []*txOp // FIFO: head is being fragmented
	sndUna       uint32  // oldest unacknowledged sequence number
	sndNxt       uint32  // next sequence number to assign
	retrans      *seqRing[*txFrame]
	retransQ     []uint32 // sequence numbers queued for retransmission
	txFenced     []uint64 // sorted ids of forward-fenced ops not yet fully acked
	rr           int      // round-robin link cursor
	rtoTimer     timer
	pendingReads map[uint64]*Handle

	// Transmit side: link-failure handling. A link accumulating repair
	// events (NACKed or timed-out frames last sent on it) without any
	// acknowledged frame in between is declared dead and excluded from
	// round-robin striping; a probe frame is risked on it periodically
	// and an acknowledgement of any frame sent on it re-admits it.
	linkFails  []int      // repair events since the last acked frame, per link
	linkDead   []bool     // links currently excluded from striping
	linkDeadAt []sim.Time // when each link was last declared dead
	deadLinks  int        // count of true entries in linkDead
	probeTimer *sim.Timer

	// Receive side: ARQ. The per-seq state lives in window-sized rings
	// (see seqring.go): accepted-but-unacked dedupe, gap timestamps and
	// in-flight repair marks all have live spans bounded by the sender's
	// window, so none of them may grow with connection lifetime.
	rcvNxt       uint32 // cumulative acknowledgement point
	rcvSeen      *seqRing[struct{}]
	maxSeenPlus1 uint32 // 1 + highest sequence number accepted
	missingSince *seqRing[sim.Time]
	nackedAt     *seqRing[sim.Time] // last NACK per missing seq (repair in flight)
	lastNack     sim.Time
	// linkHigh[l] is 1 + the highest data sequence number that arrived
	// on link l (0 = nothing yet). Because each physical path preserves
	// FIFO order, a missing sequence number s can only have been LOST —
	// rather than queued behind other frames on its path — once every
	// link has delivered some frame beyond s. This makes loss detection
	// immune to cross-link queue skew (deep transmit queues on one rail
	// delay its frames by hundreds of microseconds without any loss).
	linkHigh []uint32
	// linkLast[l] is the arrival time of the most recent frame on link
	// l. A link silent for cfg.LinkStaleAge while gaps exist stops
	// vetoing loss detection (see Config.LinkStaleAge).
	linkLast  []sim.Time
	unackedRx int
	ackTimer  timer
	nackTimer timer
	ackDue    bool
	nackDue   []uint32
	// nackScratch is the reused NACK-payload encode buffer: sendCtrl
	// used to allocate a fresh payload per NACK (frame.EncodeNackPayload),
	// which under sustained loss was an allocation per repair round.
	nackScratch []byte

	// Long-lived timer callbacks, built once per conn so the hot timer
	// re-arms (RTO on every transmit, delayed-ACK, NACK age, probe)
	// schedule no per-arm closures; heap timers additionally reuse their
	// Timer handle via sim.Env.Rearm (see Endpoint.rearmTimer).
	onRTOFn   func()
	ackFn     func()
	nackFn    func()
	probeFn   func()
	cqFlushFn func() // drains cqStage behind an in-flight WaitCQ wake
	rdGuardFn func() // checkReadLiveness, built once (method values allocate)

	// Hot-path object recycling (DESIGN.md §13): per-frame and per-op
	// records whose lifetimes end inside the protocol thread are kept on
	// freelists instead of churning the heap. Fields are reset at reuse,
	// never at free — failure paths (failConn) legitimately visit an op
	// through both its window frames and the txOps queue, and the
	// completed-flag guard must survive the first visit.
	tfFree []*txFrame
	rxFree []*rxOp

	// Doorbell-path scratch (see RingOn/enqueueMulti): the batch
	// snapshot-pointer slices and the MultiData sub-op encode slice are
	// reused across rings, so a steady SQ loop allocates nothing beyond
	// the per-op handles.
	sqScratch  []Op
	ringData   [][]byte
	ringBufs   []*frame.Buf
	subScratch []frame.SubOp

	// Receive side: ordering and delivery.
	applyNxt  uint32 // strict mode: next sequence number to apply
	strictBuf *seqRing[heldFrame]
	rxOps     map[uint64]*rxOp
	frontier  uint64   // all receive ops with id < frontier are complete
	fenced    []uint64 // sorted ids of incomplete forward-fenced ops
	held      []heldFrame
	notifyQ   sim.Mailbox[Notification]

	// Submission/completion queues (see op.go): descriptors posted but
	// not yet issued by a doorbell, and completions awaiting a poll.
	sq      []Op
	cq      sim.Mailbox[Completion]
	cqStage []Completion // records staged behind an in-flight WaitCQ wake
	cqFlush bool         // a UserWake flush of cqStage is scheduled

	// Recovery (Config.Reconnect): connection incarnations and the
	// supervised reconnect state machine (see reconnect.go).
	incarnation   uint16     // live epoch stamped into every frame (0 = feature off)
	pendingIncarn uint16     // epoch the dialer's redial is negotiating
	dialer        bool       // this side ran Dial and owns redialing
	reconnecting  bool       // parked: old epoch condemned, handshake pending
	reconnAttempt int        // redial attempts this outage (dialer side)
	reconnTotal   int        // reconnects survived over the conn's lifetime
	reconnSince   sim.Time   // when the outage was detected (0 = none)
	reconnTimer   *sim.Timer // dialer-side redial backoff
	reconnGiveUp  timer      // passive-side bounded wait (daemon)
	reconnSpan    *obs.Span  // outage→recovered causal span

	bytesAcked uint64 // payload bytes acknowledged end-to-end, lifetime

	// Per-rail RTT split: the conn-level estimator above blends every
	// rail into one SRTT, which hides a slow rail behind a fast one.
	// These track each rail separately — same Jacobson/Karels update,
	// same Karn filter (never-retransmitted frames only) — purely as
	// congestion signals and health gauges. The conn-level RTO is still
	// driven by the blended estimator, so retransmission timing (and the
	// paper goldens) are unchanged.
	railSrtt   []sim.Time // per-link smoothed RTT (0 = no sample yet)
	railRttvar []sim.Time // per-link RTT variance
	// railNewest/railHave are per-ack-walk scratch picking each rail's
	// newest non-retransmitted sample (the per-rail counterpart of
	// handleAck's "newest" Karn tracking); cleared after every walk.
	// With the congestion controller on, multi-rail conns measure each
	// rail with dedicated probe/echo frames instead (see armRailProbes):
	// a cumulative ack only advances once the slowest rail's interleaved
	// frames arrive, so ack-walk samples collapse every rail onto the
	// slowest one's round trip.
	railNewest []sim.Time
	railHave   []bool

	// Congestion control (Config.CongestionControl). All state is inert
	// when the feature is off; see cc.go for the AIMD rules.
	cwnd        int    // congestion window, frames
	ccAckCredit int    // acked frames banked toward the next additive increase
	ccRecover   uint32 // no further cut until sndUna reaches this (one cut per flight)
	ccRetxSent  int    // retransmissions since the last ack progress or RTO
	ccEcnRx     int    // receiver side: marked frames awaiting an ECN echo
	railOut     []int  // per-link frames transmitted there and not yet acked
}

// txOp is an operation on the send side: the kernel-buffer snapshot of
// its data plus fragmentation and acknowledgement progress.
type txOp struct {
	id     uint64
	opType frame.OpType
	flags  frame.OpFlags
	remote uint64
	local  uint64
	data   []byte
	// dataBuf, when non-nil, is the pooled buffer backing data (small
	// write/reply snapshots). It is owned by the txOp until the exactly-
	// once release where completion or failure drops data; replay
	// (reconnect.go) touches only incomplete ops, so the snapshot is
	// still owned whenever retransmission needs it.
	dataBuf   *frame.Buf
	total     uint32
	sent      uint32
	sentAll   bool
	unacked   int
	completed bool
	probe     bool // internal dead-link probe, not a user operation
	h         *Handle
	span      *obs.Span  // causal span (nil unless span recording is on)
	subs      []multiSub // coalesced sub-ops (nil = ordinary single op)

	// Admission charge held against a QoS class (Config.QoS): released
	// exactly once when the op completes or fails. qosOps is 0 when no
	// charge is held (QoS off, probes, receiver-side serves, replayed
	// read re-syntheses).
	qosCls   int
	qosOps   int
	qosBytes int
}

// multiSub is the send-side record of one coalesced sub-op inside a
// MultiData txOp: completion, CQ fan-out and span bookkeeping.
type multiSub struct {
	id   uint64
	op   Op
	span *obs.Span
}

// forEachSpan visits the operation's span — or every sub-op span of a
// coalesced batch — for transmit/ack/retransmit event recording.
func (op *txOp) forEachSpan(f func(*obs.Span)) {
	if op.span != nil {
		f(op.span)
	}
	for i := range op.subs {
		if op.subs[i].span != nil {
			f(op.subs[i].span)
		}
	}
}

// txFrame is one transmitted-but-unacknowledged frame.
type txFrame struct {
	op      *txOp
	seq     uint32
	offset  uint32
	payload []byte
	inQ     bool     // queued for retransmission
	link    int      // link of the most recent transmission (failure attribution)
	txAt    sim.Time // time of the most recent transmission
	retx    bool     // ever retransmitted: its ack is ambiguous (Karn), no RTT sample
}

// rxOp tracks one operation at the receive side for ordering, fences,
// completion and notification.
type rxOp struct {
	id       uint64
	opType   frame.OpType
	flags    frame.OpFlags
	total    uint32
	applied  uint32
	remote   uint64 // destination address of the operation
	local    uint64 // ReadReply: the requester's read operation id
	complete bool
	isFenced bool
}

// heldFrame is a frame buffered at the receiver awaiting ordering.
type heldFrame struct {
	h       frame.Header
	payload []byte
	heldAt  sim.Time // when buffering began (hold-duration histogram)
}

// Notification is delivered to the receiving process when a remote write
// flagged with frame.Notify has been performed (IPPS'07 §2.2).
type Notification struct {
	From int    // peer node id
	OpID uint64 // the writer's operation id
	Addr uint64 // destination address that was written
	Len  int    // bytes written
}

// Handle tracks the progress of one issued operation (IPPS'07 §2.2:
// "each operation can also, when initiated, return a handle ... the
// programmer can query the progress of each issued operation").
type Handle struct {
	c       *Conn
	opID    uint64
	size    int
	acked   int // bytes acknowledged so far (writes) or received (reads)
	done    sim.Signal
	cq      bool // issued via the SQ: completion also fans out to the CQ
	op      Op   // the posted descriptor (SQ path only)
	err     error
	dlTimer *sim.Timer // Op.Deadline expiry (nil without a deadline)
	// t is the operation's send-side record. The handle is user-held and
	// so can never be pooled; embedding the txOp in it makes the two
	// records one allocation — the single steady-state alloc per op —
	// and sidesteps every reuse-aliasing hazard a txOp freelist would
	// have (completed ops linger in txOps until curOp pops them).
	t txOp
}

// Progress returns how many of the operation's bytes have been
// acknowledged end-to-end (writes) or landed locally (reads), and the
// operation's total size.
func (h *Handle) Progress() (done, total int) { return h.acked, h.size }

// BytesAcked returns the operation's acknowledged-byte high-water mark.
// For an operation that failed — deadline expiry, peer death, exhausted
// reconnects — this is how far the transfer provably got, so a caller
// re-issuing the work can resume from this offset instead of restarting
// from byte 0. (A replayed operation resets the mark before re-issuing,
// so a successful recovery still reports exactly Size on completion.)
func (h *Handle) BytesAcked() int { return h.acked }

// Wait blocks the process until the operation completes: for writes,
// until every frame is acknowledged end-to-end; for reads, until the
// reply data has been written to local memory.
func (h *Handle) Wait(p *sim.Proc) { p.Wait(&h.done) }

// Test polls completion without blocking.
func (h *Handle) Test() bool { return h.done.Fired() }

// Done exposes the completion signal for event-driven waiting.
func (h *Handle) Done() *sim.Signal { return &h.done }

// OpID returns the operation's connection-local id.
func (h *Handle) OpID() uint64 { return h.opID }

// Err returns the operation's terminal error: nil while in flight or
// after success; wrapping ErrPeerDead when the connection failed with
// the operation pending, or ErrDeadlineExceeded when Op.Deadline
// released the waiter first. Check after Wait returns.
func (h *Handle) Err() error { return h.err }

func newConn(ep *Endpoint, localID uint32, remoteNode, links int) *Conn {
	c := &Conn{
		ep: ep, localID: localID, remoteNode: remoteNode, links: links,
		rto:          ep.cfg.RTO, // adaptive mode starts from the paper's fixed value
		retrans:      newSeqRing[*txFrame](ep.cfg.Window),
		pendingReads: make(map[uint64]*Handle),
		rcvSeen:      newSeqRing[struct{}](ep.cfg.Window),
		missingSince: newSeqRing[sim.Time](ep.cfg.Window),
		nackedAt:     newSeqRing[sim.Time](ep.cfg.Window),
		linkHigh:     make([]uint32, links),
		linkLast:     make([]sim.Time, links),
		linkFails:    make([]int, links),
		linkDead:     make([]bool, links),
		linkDeadAt:   make([]sim.Time, links),
		strictBuf:    newSeqRing[heldFrame](ep.cfg.Window),
		rxOps:        make(map[uint64]*rxOp),
		railSrtt:     make([]sim.Time, links),
		railRttvar:   make([]sim.Time, links),
		railNewest:   make([]sim.Time, links),
		railHave:     make([]bool, links),
	}
	if ep.cfg.ccOn() {
		c.cwnd = ep.cfg.ccInit()
		c.railOut = make([]int, links)
	}
	c.onRTOFn = c.onRTO
	c.ackFn = func() {
		if !c.closed && c.unackedRx > 0 {
			c.ackDue = true
			c.kick()
		}
	}
	c.nackFn = func() {
		if c.closed || c.missingSince.size() == 0 {
			return
		}
		c.queueNack(true)
		c.armNackTimer()
	}
	c.probeFn = func() {
		if c.closed || c.deadLinks == 0 {
			return
		}
		for li := 0; li < c.links; li++ {
			if c.linkDead[li] {
				c.sendProbe(li)
			}
		}
	}
	c.cqFlushFn = func() {
		c.cqFlush = false
		stage := c.cqStage
		c.cqStage = nil
		for _, s := range stage {
			c.cq.Send(c.ep.env, s)
		}
		// Hand the drained backing array back for the next staging run
		// (Send only schedules wakes, so nothing re-staged mid-loop).
		if c.cqStage == nil {
			c.cqStage = stage[:0]
		}
	}
	return c
}

// newTxFrame pulls a transmit-frame record from the conn's freelist
// (frames die in handleAck or failConn, strictly inside the protocol
// thread, so recycling is race-free by construction).
func (c *Conn) newTxFrame(op *txOp, seq, offset uint32) *txFrame {
	if n := len(c.tfFree); n > 0 {
		tf := c.tfFree[n-1]
		c.tfFree = c.tfFree[:n-1]
		*tf = txFrame{op: op, seq: seq, offset: offset}
		return tf
	}
	return &txFrame{op: op, seq: seq, offset: offset}
}

// freeTxFrame recycles tf. Fields are reset at reuse, not here: the
// caller may still be reading them (failConn frees mid-walk), and no
// reuse can interleave before the protocol-thread step returns.
func (c *Conn) freeTxFrame(tf *txFrame) {
	c.tfFree = append(c.tfFree, tf)
}

// RemoteNode returns the peer's node id.
func (c *Conn) RemoteNode() int { return c.remoteNode }

// Links returns how many physical links the connection stripes over.
func (c *Conn) Links() int { return c.links }

// Endpoint returns the owning endpoint.
func (c *Conn) Endpoint() *Endpoint { return c.ep }

// Established reports whether the connection handshake has completed.
func (c *Conn) Established() bool { return c.established.Fired() }

// Inflight returns the number of unacknowledged frames outstanding
// (always ≤ the configured window).
func (c *Conn) Inflight() int { return c.inflight() }

// Closed reports whether the connection has been torn down (locally
// initiated or by the peer).
func (c *Conn) Closed() bool { return c.closed }

// Failed reports whether the connection transitioned to the Failed
// state (peer declared dead or the conn reset by the peer). A failed
// connection is also Closed; talking to the peer again requires a fresh
// Dial/Accept pair.
func (c *Conn) Failed() bool { return c.failed }

// Err returns why the connection failed (wrapping ErrPeerDead), or nil
// while it is healthy or merely closed.
func (c *Conn) Err() error { return c.failErr }

// Reconnecting reports whether the connection is parked awaiting a
// supervised reconnect (Config.Reconnect): the old epoch is condemned,
// nothing is sent or accepted, and operations issued now queue until
// the rebirth replays them.
func (c *Conn) Reconnecting() bool { return c.reconnecting }

// Reconnects returns how many supervised reconnects the connection has
// survived over its lifetime.
func (c *Conn) Reconnects() int { return c.reconnTotal }

// Incarnation returns the connection's live epoch — the value stamped
// into every frame it sends. Zero means incarnations are unused
// (Config.Reconnect off).
func (c *Conn) Incarnation() uint16 { return c.incarnation }

// RTO returns the retransmission timeout the next expiry timer arms:
// the fixed Config.RTO, or in adaptive mode the Jacobson estimate with
// the current backoff applied.
func (c *Conn) RTO() sim.Time { return c.currentRTO() }

// Close tears the connection down gracefully: it blocks until every
// locally issued operation has completed, then exchanges a close
// handshake with the peer (retried under loss). Initiating operations
// on a closed connection panics; late frames for it are discarded.
//
// Close is bounded: if the peer dies mid-drain the failure machinery
// fails the outstanding operations and Close returns, and a close
// handshake the peer never acknowledges gives up after the MaxRetries
// budget instead of retrying forever.
func (c *Conn) Close(p *sim.Proc) {
	if c.closed {
		return
	}
	// Drain: all issued operations fully acknowledged — or the peer
	// declared dead, which fails them all and unblocks the closer.
	for !c.failed && (len(c.txOps) > 0 || c.inflight() > 0 || len(c.pendingReads) > 0) {
		p.Sleep(50 * sim.Microsecond)
	}
	if c.failed {
		return // nothing left to hand-shake with; failConn cleaned up
	}
	c.closed = true
	c.stopTimers()
	c.ep.recEvent(c.localID, obs.RecClosed, 0, 0)
	ep := c.ep
	attempts := 0
	var retry func()
	send := func() {
		h := frame.Header{Type: frame.TypeConnClose, ConnID: c.remoteID, OpID: uint64(c.localID),
			Incarnation: c.incarnation}
		dst := frame.NewAddr(c.remoteNode, 0)
		buf := frame.MustEncode(dst, ep.nics[0].Addr(), &h, nil)
		ep.nics[0].Transmit(&phys.Frame{Buf: buf, Dst: dst, Src: ep.nics[0].Addr()})
	}
	retry = func() {
		if c.closedSig.Fired() {
			return
		}
		if mr := ep.cfg.MaxRetries; mr > 0 && attempts > mr {
			// The peer never acknowledged the close: give up unilaterally
			// rather than retrying forever against a dead host.
			ep.removeConn(c)
			c.closedSig.Fire(ep.env)
			return
		}
		attempts++
		send()
		c.closeTimer = ep.env.After(ep.cfg.ConnRetry, retry)
	}
	ep.env.After(0, retry)
	p.Wait(&c.closedSig)
}

// stopTimers cancels every protocol timer the connection owns and clears
// the pending-ctrl state that would arm new ones. It runs on every exit
// from the live state — local Close, peer-initiated close, and failConn —
// so a torn-down conn can never fire a callback or emit a frame again,
// and no stray event keeps the simulation alive. closeTimer is exempt:
// the close handshake itself still needs it (failConn stops it too, via
// stopCloseTimer).
func (c *Conn) stopTimers() {
	for _, t := range []interface{ Stop() bool }{
		c.ackTimer, c.nackTimer, c.rtoTimer, c.hbTimer,
		c.railProbe, c.probeTimer, c.readGuard, c.connTimer,
		c.reconnTimer, c.reconnGiveUp,
	} {
		if t != nil {
			t.Stop()
		}
	}
	c.ackDue = false
	c.nackDue = nil
	// Gap-tracking state would re-arm the NACK machinery if any late
	// frame slipped through; drop it with the timers. Dropping the
	// in-flight repair timestamps (nackedAt) wholesale is intentional,
	// not a leak of live repair state: stopTimers only runs on exits
	// from the live state — local Close, peer close, failConn, and the
	// reconnect rebirth — after which the old sequence space is dead
	// (a rebirth starts a fresh epoch with fresh sequence numbers), so
	// no timestamp keyed by an old seq can ever be consulted again.
	// TestStopTimersDropsGapState pins this contract.
	c.missingSince.clear()
	c.nackedAt.clear()
}

func (c *Conn) stopCloseTimer() {
	if c.closeTimer != nil {
		c.closeTimer.Stop()
	}
}

// kick routes every "this conn may have work now" notification to the
// endpoint: under Config.SchedQueue the conn enqueues itself for O(1)
// service, otherwise this is just the legacy thread wakeup.
func (c *Conn) kick() { c.ep.kickConn(c) }

// ---------------------------------------------------------------------
// Operation initiation (the paper's RDMA_operation primitive).
//
// The positional RDMAOperation/RDMAOn wrappers are gone: the Op-struct
// surface (Do, DoOn, MustDo, Post, Ring — see op.go) is the only issue
// path. parity_test.go pins its behaviour against the frozen golden
// captured while the wrappers still existed.
// ---------------------------------------------------------------------

// frameSpan resolves the span a received frame belongs to. Data and
// read-request frames carry the initiator's operation id and arrive on
// a connection whose remoteID is the initiator's local connection id;
// read-reply frames carry the requester's read-op id in Local and the
// requester is this node.
func (c *Conn) frameSpan(opType frame.OpType, opID, local uint64) *obs.Span {
	if !c.ep.obs.SpansEnabled() {
		return nil
	}
	if opType == frame.OpReadReply {
		return c.ep.obs.FindSpan(obs.SpanID{Node: c.ep.node, Conn: c.localID, Op: local})
	}
	return c.ep.obs.FindSpan(obs.SpanID{Node: c.remoteNode, Conn: c.remoteID, Op: opID})
}

// WaitNotify blocks until a notification arrives on the connection.
// When the connection fails it never blocks forever: queued
// notifications drain first, then a poison Notification with Len < 0 is
// returned (and peer death is also observable via Failed/Err).
func (c *Conn) WaitNotify(p *sim.Proc) Notification {
	if c.failed {
		if n, ok := c.notifyQ.TryRecv(); ok {
			return n
		}
		return Notification{From: c.remoteNode, Len: -1}
	}
	return c.notifyQ.Recv(p)
}

// PollNotify returns a pending notification without blocking.
func (c *Conn) PollNotify() (Notification, bool) { return c.notifyQ.TryRecv() }

// ---------------------------------------------------------------------
// Transmit path.
// ---------------------------------------------------------------------

func (c *Conn) inflight() int { return int(c.sndNxt - c.sndUna) }

// maxFramePayload returns the per-frame payload limit: the full MTU
// payload normally, or an even slice per link in the byte-striping
// baseline.
func (c *Conn) maxFramePayload() int {
	if c.ep.cfg.ByteStripe && c.links > 1 {
		return frame.MaxPayload / c.links
	}
	return frame.MaxPayload
}

// curOp returns the operation currently being fragmented; nil if there
// is none, or if the head operation is stalled behind an unacknowledged
// forward-fenced operation (sender side of §2.5's forward fence).
func (c *Conn) curOp() *txOp {
	if n := 0; len(c.txOps) > 0 && c.txOps[0].sentAll {
		for n < len(c.txOps) && c.txOps[n].sentAll {
			n++
		}
		// Compact down in place instead of re-slicing the head off:
		// re-slicing walks the queue off its backing array, so a
		// long-lived pipelined conn reallocates it on every op.
		m := copy(c.txOps, c.txOps[n:])
		for i := m; i < len(c.txOps); i++ {
			c.txOps[i] = nil
		}
		c.txOps = c.txOps[:m]
	}
	if len(c.txOps) == 0 {
		return nil
	}
	head := c.txOps[0]
	if len(c.txFenced) > 0 && c.txFenced[0] < head.id {
		return nil
	}
	return head
}

// sendable reports whether the connection has data-path work for the
// protocol thread.
func (c *Conn) sendable() bool {
	if c.closed || c.reconnecting {
		return false
	}
	if len(c.retransQ) > 0 {
		// Queued repairs respect the congestion window too: pacing out
		// more than cwnd retransmissions per round trip would amplify
		// exactly the congestion that caused the loss. A blocked repair
		// also holds back fresh data — recovery goes first — and the
		// budget re-opens on ack progress or the next RTO, so a stalled
		// recovery can never deadlock (see cc.go).
		return c.ccRetxOK()
	}
	return c.inflight() < c.effWindow() && c.curOp() != nil
}

// ctrlPending reports whether an explicit ACK or NACK is due.
func (c *Conn) ctrlPending() bool {
	return !c.closed && !c.reconnecting && (c.ackDue || len(c.nackDue) > 0)
}

// sendNextDataFrame emits one data frame: a queued retransmission first,
// otherwise the next fragment of the current operation. It returns the
// payload bytes handed to the wire (0 when the work evaporated), which
// the QoS scheduler charges against the served class.
func (c *Conn) sendNextDataFrame() int {
	for len(c.retransQ) > 0 {
		if !c.ccRetxOK() {
			// Over the per-round-trip retransmission budget: leave the
			// queue intact and emit nothing. sendable() agrees, so the
			// scheduler parks the conn until an ack or RTO re-opens it.
			c.ep.Stats.CcRetxDeferred++
			return 0
		}
		seq := c.retransQ[0]
		// Copy-shift keeps the backing array; the queue is short (loss
		// bursts), so the shift is cheaper than steady-state re-allocs.
		c.retransQ = c.retransQ[:copy(c.retransQ, c.retransQ[1:])]
		tf, ok := c.retrans.get(seq)
		if !ok {
			continue // acknowledged since it was queued
		}
		tf.inQ = false
		c.transmit(tf, true)
		if len(c.retransQ) > 0 && !c.ccRetxOK() {
			// That was the last repair slot this round trip: the rest
			// of the queue waits until ack progress or the next RTO
			// re-opens the budget (sendable() parks the conn, so the
			// exhausted branch above never observes the deferral).
			c.ep.Stats.CcRetxDeferred++
		}
		return len(tf.payload)
	}
	op := c.curOp()
	if op == nil || c.inflight() >= c.effWindow() {
		return 0 // conditions changed since sendable()
	}
	pay := uint32(c.maxFramePayload())
	if rem := op.total - op.sent; rem < pay {
		pay = rem
	}
	tf := c.newTxFrame(op, c.sndNxt, op.sent)
	if op.opType == frame.OpRead {
		// A read request is a single header-only frame describing the
		// whole transfer; the data flows back as a ReadReply operation.
		pay = op.total
	} else if pay > 0 {
		tf.payload = op.data[op.sent : op.sent+pay]
	}
	c.sndNxt++
	op.sent += pay
	if op.sent >= op.total {
		op.sentAll = true
	}
	op.unacked++
	c.retrans.put(tf.seq, tf)
	c.ep.Stats.DataFramesSent++
	c.ep.Stats.DataBytesSent += uint64(len(tf.payload))
	c.transmit(tf, false)
	return len(tf.payload)
}

// transmit encodes and hands one frame to the next link in round-robin
// order (IPPS'07 §2.5), with the current cumulative acknowledgement
// piggy-backed.
func (c *Conn) transmit(tf *txFrame, isRetrans bool) {
	op := tf.op
	typ := frame.TypeData
	switch {
	case op.opType == frame.OpRead:
		typ = frame.TypeReadReq
	case op.subs != nil:
		typ = frame.TypeMultiData
	}
	h := frame.Header{
		Type: typ, ConnID: c.remoteID,
		Seq: tf.seq, Ack: c.rcvNxt, HasAck: true,
		OpID: op.id, OpType: op.opType, OpFlags: op.flags,
		Remote: op.remote, Local: op.local,
		Offset: tf.offset, Total: op.total,
	}
	if isRetrans {
		tf.retx = true
		c.ep.Stats.Retransmissions++
		if c.ep.cfg.ccOn() {
			c.ccRetxSent++
		}
		c.ep.trc(c.localID, trace.TxRetransmit, tf.seq, len(tf.payload))
	} else {
		if c.inflight() == 1 {
			// Sole outstanding frame: a fresh burst after an idle gap.
			// Progress tracking (DeadInterval) anchors here, not at the
			// last acknowledgement of the previous burst.
			c.lastProgress = c.ep.env.Now()
		}
		c.ep.trc(c.localID, trace.TxData, tf.seq, len(tf.payload))
	}
	li := -1 // normal round-robin pick
	if tf.op.probe && !isRetrans {
		li = tf.link // the probe's first copy is forced onto the dead link
	}
	prev := tf.link
	tf.link = c.sendFrameOn(&h, tf.payload, li)
	if c.railOut != nil {
		if isRetrans {
			// The frame's outstanding charge moves with it to its new rail.
			c.railDec(prev)
		}
		c.railOut[tf.link]++
	}
	tf.txAt = c.ep.env.Now()
	op.forEachSpan(func(sp *obs.Span) {
		if isRetrans {
			sp.Event(tf.txAt, obs.EvFrameRetx, c.ep.node, tf.link, tf.seq, len(tf.payload))
		} else {
			if tf.offset == 0 {
				// First transmission of the op's first frame: the protocol
				// CPU has dequeued the operation. The gap from span start
				// is initiation + send-queue + CPU contention time.
				sp.Event(tf.txAt, obs.EvProtoDequeue, c.ep.node, -1, tf.seq, 0)
			}
			sp.Event(tf.txAt, obs.EvFrameTx, c.ep.node, tf.link, tf.seq, len(tf.payload))
		}
	})
	// Only user traffic keeps probing alive: a probe transmission must
	// not re-arm the timer, or an idle connection with a dead link would
	// sustain a probe → loss → RTO-repair → probe loop forever.
	if c.deadLinks > 0 && !tf.op.probe {
		c.armProbeTimer()
	}
	c.armRTO()
}

// pickLink chooses the transmit link among those not currently declared
// dead (all links when every one is dead — the last survivors must keep
// carrying traffic): round-robin by default (the paper's §2.5), or the
// least-backlog link under Config.AdaptiveStripe.
func (c *Conn) pickLink() int {
	if c.railOut != nil && c.links > 1 {
		// Congestion-weighted striping (Config.CongestionControl): shift
		// load away from rails that are slow end-to-end, not just ones
		// with a deep local queue. See Conn.ccPickLink.
		if li := c.ccPickLink(); li >= 0 {
			return li
		}
	}
	if c.ep.cfg.AdaptiveStripe {
		best := -1
		var bestBacklog sim.Time
		for i := 0; i < c.links; i++ {
			li := (c.rr + i) % c.links
			if c.deadLinks > 0 && c.deadLinks < c.links && c.linkDead[li] {
				continue
			}
			bl := c.ep.nics[li].OutPort().Backlog()
			if best < 0 || bl < bestBacklog {
				best, bestBacklog = li, bl
			}
		}
		if best >= 0 {
			c.rr = (best + 1) % c.links
			return best
		}
	}
	for i := 0; i < c.links; i++ {
		li := c.rr
		c.rr = (c.rr + 1) % c.links
		if c.deadLinks == 0 || c.deadLinks >= c.links || !c.linkDead[li] {
			return li
		}
	}
	return c.rr // unreachable: some link is always eligible
}

// sendFrame encodes a payload-less control frame (ACK/NACK) and
// transmits it on a link that is both not declared dead and fresh on
// the receive side: control frames are never acknowledged, so the
// sender-side detector cannot protect them — but a cable cut kills both
// directions, so a rail that stopped delivering to us has most likely
// also stopped carrying our control traffic. Losing ACKs merely delays
// the sender; losing NACKs doubles every repair round-trip. Any frame
// that leaves carries our cumulative ACK, so delayed-ACK state resets
// (piggy-backing, §2.4).
func (c *Conn) sendFrame(h *frame.Header, payload []byte) {
	if stale := c.ep.cfg.LinkStaleAge; stale > 0 && c.links > 1 {
		now := c.ep.env.Now()
		for i := 0; i < c.links; i++ {
			li := c.rr
			c.rr = (c.rr + 1) % c.links
			if !c.linkDead[li] && now-c.linkLast[li] <= stale {
				c.sendFrameOn(h, payload, li)
				return
			}
		}
		// No rail is receive-fresh (idle period or total outage): fall
		// through to the plain round-robin pick.
	}
	c.sendFrameOn(h, payload, -1)
}

// sendFrameOn is sendFrame with an optional forced link (-1 = pick),
// returning the link used.
func (c *Conn) sendFrameOn(h *frame.Header, payload []byte, li int) int {
	if li < 0 {
		li = c.pickLink()
	}
	// Every frame carries the connection's live epoch; the peer fences
	// frames whose incarnation does not match (Config.Reconnect). Zero —
	// the historical pad bytes — when the feature is off.
	h.Incarnation = c.incarnation
	if h.HasAck && c.ccEcnRx > 0 {
		// Echo the congestion marks seen since the last ack-bearing frame
		// back to the data sender (the out-of-band wire mark becomes a
		// CRC-covered header bit). Echoing is unconditional — marks only
		// exist when a switch threshold is armed — and it is the sender's
		// *reaction* that Config.CongestionControl gates.
		h.EcnEcho = true
		c.ep.Stats.EcnEchoesSent++
		c.ep.recEvent(c.localID, obs.RecEcnEcho, int64(c.ccEcnRx), 0)
		c.ccEcnRx = 0
	}
	nic := c.ep.nics[li]
	dst := frame.NewAddr(c.remoteNode, li)
	// Encode into a pooled wire buffer: the frame owns it from here and
	// exactly one death point — NIC/port drop, corruption replacement,
	// or receiver dispatch — releases it (see phys.Frame.Release).
	// Retransmissions re-encode from tf.payload into a fresh buffer, so
	// the in-flight copy is never aliased by sender-side state.
	pb := frame.GetBuf()
	buf := frame.MustEncodeInto(pb.Bytes(), dst, nic.Addr(), h, payload)
	nic.Transmit(phys.NewPooledFrame(pb, buf, dst, nic.Addr()))
	c.lastTx = c.ep.env.Now()
	if h.HasAck {
		c.unackedRx = 0
		c.ackDue = false
		if c.ackTimer != nil {
			c.ackTimer.Stop()
		}
	}
	return li
}

// sendCtrl emits one pending explicit ACK or NACK frame.
func (c *Conn) sendCtrl() {
	if len(c.nackDue) > 0 {
		h := frame.Header{Type: frame.TypeNack, ConnID: c.remoteID, Ack: c.rcvNxt, HasAck: true}
		// Encode into the conn's scratch buffer: a fresh payload slice
		// per NACK was an allocation on every repair round. An empty
		// missing list never reaches here (the branch requires entries),
		// so no header-only NACK frame is ever emitted.
		c.nackScratch = frame.AppendNackPayload(c.nackScratch[:0], c.nackDue)
		pl := c.nackScratch
		c.nackDue = nil
		c.ep.Stats.CtrlNacksSent++
		c.ep.trc(c.localID, trace.TxNack, c.rcvNxt, len(pl))
		c.sendFrame(&h, pl)
		return
	}
	if c.ackDue {
		h := frame.Header{Type: frame.TypeAck, ConnID: c.remoteID, Ack: c.rcvNxt, HasAck: true}
		c.ep.Stats.CtrlAcksSent++
		c.ep.trc(c.localID, trace.TxAck, c.rcvNxt, 0)
		c.sendFrame(&h, nil)
	}
}

// queueRetrans schedules seq for retransmission if it is still
// outstanding and not already queued. Each repair event is attributed
// to the link the frame was last transmitted on, feeding dead-link
// detection. cause records why the repair was scheduled (NACK vs RTO)
// in the operation's span.
func (c *Conn) queueRetrans(seq uint32, cause obs.EventKind) {
	tf, ok := c.retrans.get(seq)
	if !ok || tf.inQ {
		return
	}
	tf.inQ = true
	c.retransQ = append(c.retransQ, seq)
	tf.op.forEachSpan(func(sp *obs.Span) {
		sp.Event(c.ep.env.Now(), cause, c.ep.node, tf.link, seq, len(tf.payload))
	})
	c.noteLinkRepair(tf.link)
}

// noteLinkRepair charges one repair event to link li. A link
// accumulating DeadLinkThreshold repairs without any acknowledged frame
// in between (see handleAck) is declared dead — unless it is the last
// link standing, which must keep carrying traffic regardless. The
// go-back-N baseline retransmits whole windows by design, so its
// repairs say nothing about link health and are not counted.
func (c *Conn) noteLinkRepair(li int) {
	th := c.ep.cfg.DeadLinkThreshold
	if th <= 0 || c.ep.cfg.GoBackN || li < 0 || li >= c.links || c.linkDead[li] {
		return
	}
	c.linkFails[li]++
	if c.linkFails[li] >= th && c.deadLinks < c.links-1 {
		c.linkDead[li] = true
		c.linkDeadAt[li] = c.ep.env.Now()
		c.deadLinks++
		c.ep.Stats.LinkDeadEvents++
		c.ep.trc(c.localID, trace.LinkDead, uint32(li), 0)
		c.ep.recEvent(c.localID, obs.RecLinkDead, int64(li), int64(c.deadLinks))
		c.armProbeTimer()
	}
}

// clearLinkFault resets link li's health after a frame sent on it at
// sentAt was acknowledged end-to-end. A dead link is re-admitted only
// when the acked transmission happened after the death declaration —
// late acknowledgements of frames that crossed the link before it
// failed prove nothing about its present state.
func (c *Conn) clearLinkFault(li int, sentAt sim.Time) {
	if li < 0 || li >= c.links {
		return
	}
	c.linkFails[li] = 0
	if c.linkDead[li] && sentAt > c.linkDeadAt[li] {
		c.linkDead[li] = false
		c.deadLinks--
		c.ep.Stats.LinkRestores++
		c.ep.trc(c.localID, trace.LinkRestore, uint32(li), 0)
		c.ep.recEvent(c.localID, obs.RecLinkRestore, int64(li), int64(c.deadLinks))
	}
}

// armProbeTimer schedules the next dead-link probe. The timer is armed
// from transmissions (and from the moment of death) rather than
// re-arming itself unconditionally, so an idle connection with a dead
// link quiesces instead of keeping the simulation alive forever.
func (c *Conn) armProbeTimer() {
	if c.closed || (c.probeTimer != nil && c.probeTimer.Pending()) {
		return
	}
	c.probeTimer = c.ep.env.Rearm(c.probeTimer, c.ep.cfg.LinkProbeInterval, c.probeFn)
}

// sendProbe transmits a fresh zero-size write frame whose FIRST copy is
// forced onto dead link li. Freshness is what makes the probe's
// acknowledgement unambiguous: no other copy of this sequence number
// exists anywhere, so a cumulative ACK covering it before any
// retransmission proves a frame crossed the dead link (handleAck then
// restores it via the txAt > linkDeadAt test). A lost probe is repaired
// like any data frame — NACKed or timed out and retransmitted, by then
// on a live link, which re-attributes the frame before its ACK can
// arrive.
func (c *Conn) sendProbe(li int) {
	op := &txOp{id: c.nextOpID, opType: frame.OpWrite, sentAll: true, unacked: 1, probe: true}
	c.nextOpID++
	tf := c.newTxFrame(op, c.sndNxt, 0)
	tf.link = li
	c.sndNxt++
	c.retrans.put(tf.seq, tf)
	c.ep.Stats.DataFramesSent++
	c.transmit(tf, false)
}

// updateRTT feeds one ack-derived round-trip sample into the Jacobson
// estimator (RFC 6298 coefficients: srtt ← 7/8·srtt + 1/8·s, rttvar ←
// 3/4·rttvar + 1/4·|srtt − s|, rto = srtt + 4·rttvar clamped to
// [RTOMin, RTOMax]). The estimate is always maintained for statistics;
// it is only *armed* in adaptive mode (Config.RTOMax > 0).
func (c *Conn) updateRTT(sample sim.Time) {
	if sample <= 0 {
		return
	}
	if c.srtt == 0 {
		c.srtt = sample
		c.rttvar = sample / 2
	} else {
		d := c.srtt - sample
		if d < 0 {
			d = -d
		}
		c.rttvar = (3*c.rttvar + d) / 4
		c.srtt = (7*c.srtt + sample) / 8
	}
	c.ep.Stats.RttSamples++
	cfg := &c.ep.cfg
	rto := c.srtt + 4*c.rttvar
	floor := cfg.RTOMin
	if floor <= 0 {
		floor = cfg.RTO
	}
	if rto < floor {
		rto = floor
	}
	if cfg.RTOMax > 0 && rto > cfg.RTOMax {
		rto = cfg.RTOMax
	}
	c.rto = rto
	if c.ep.rtoHist != nil {
		c.ep.rtoHist.Observe(float64(rto) / 1000)
	}
}

// updateRailRTT applies the per-rail samples gathered during one
// handleAck walk (railNewest/railHave) and clears the scratch. Same
// Jacobson/Karels coefficients as updateRTT, but per link and purely
// observational: nothing here arms a timer or feeds the conn-level RTO,
// so enabling nothing changes nothing.
func (c *Conn) updateRailRTT() {
	now := c.ep.env.Now()
	for li := 0; li < c.links; li++ {
		if !c.railHave[li] {
			continue
		}
		sample := now - c.railNewest[li]
		c.railNewest[li], c.railHave[li] = 0, false
		c.railApply(li, sample)
	}
}

// railApply folds one per-rail RTT sample into rail li's estimator.
func (c *Conn) railApply(li int, sample sim.Time) {
	if sample <= 0 || li < 0 || li >= c.links {
		return
	}
	if c.railSrtt[li] == 0 {
		c.railSrtt[li] = sample
		c.railRttvar[li] = sample / 2
		return
	}
	d := c.railSrtt[li] - sample
	if d < 0 {
		d = -d
	}
	c.railRttvar[li] = (3*c.railRttvar[li] + d) / 4
	c.railSrtt[li] = (7*c.railSrtt[li] + sample) / 8
}

// railProbing reports whether this connection measures rails with
// dedicated probe/echo exchanges. While probing, the ack-walk per-rail
// sampling is suppressed: a cumulative ack is gated on the slowest
// rail's interleaved frames, so its samples would drag every rail's
// estimate up to the slowest one and erase the split the weighted rail
// scheduler steers by.
func (c *Conn) railProbing() bool {
	return c.railOut != nil && c.links > 1
}

// armRailProbes starts the per-rail RTT probe tick on a multi-rail
// connection with the congestion controller enabled. Each tick probes
// ONE rail, rotating, at ProbeInterval/links — every rail is measured
// once per interval, but never two rails in the same instant: probes
// launched together contend for the shared protocol CPU at both ends,
// and that serialized per-frame cost swamps and reorders the very path
// difference the probes exist to measure. A daemon timer: an idle
// probing connection never keeps a finished simulation alive.
func (c *Conn) armRailProbes() {
	if !c.railProbing() || (c.railProbe != nil && c.railProbe.Pending()) {
		return
	}
	tick := c.ep.cfg.ccProbeIvl() / sim.Time(c.links)
	if tick < 50*sim.Microsecond {
		tick = 50 * sim.Microsecond
	}
	var fire func()
	fire = func() {
		if c.closed {
			return
		}
		c.sendRailProbe()
		c.railProbe = c.ep.afterDaemonTimer(tick, fire)
	}
	c.railProbe = c.ep.afterDaemonTimer(tick, fire)
}

// sendRailProbe emits one probe on the next live rail in rotation. Seq
// carries the rail index and OpID the transmit timestamp; the peer
// echoes both back on the arrival rail, so the returning sample
// measures that rail's own round trip — queueing in the fabric included
// — independent of the ARQ's cumulative acknowledgement.
func (c *Conn) sendRailProbe() {
	now := c.ep.env.Now()
	for i := 0; i < c.links; i++ {
		li := (c.railProbeRR + i) % c.links
		if c.deadLinks > 0 && c.deadLinks < c.links && c.linkDead[li] {
			continue
		}
		c.railProbeRR = (li + 1) % c.links
		h := frame.Header{Type: frame.TypeRailProbe, ConnID: c.remoteID,
			Ack: c.rcvNxt, HasAck: true, Seq: uint32(li), OpID: uint64(now)}
		c.sendFrameOn(&h, nil, li)
		c.ep.Stats.CcRailProbes++
		return
	}
}

// railRTO is the per-rail SRTT+4*RTTVAR estimate clamped like updateRTT,
// for health snapshots; 0 while the rail has no sample.
func (c *Conn) railRTO(li int) sim.Time {
	if li < 0 || li >= len(c.railSrtt) || c.railSrtt[li] == 0 {
		return 0
	}
	cfg := &c.ep.cfg
	rto := c.railSrtt[li] + 4*c.railRttvar[li]
	floor := cfg.RTOMin
	if floor <= 0 {
		floor = cfg.RTO
	}
	if rto < floor {
		rto = floor
	}
	if cfg.RTOMax > 0 && rto > cfg.RTOMax {
		rto = cfg.RTOMax
	}
	return rto
}

// currentRTO returns the timeout the next expiry timer should use: the
// fixed Config.RTO outside adaptive mode, otherwise the Jacobson
// estimate doubled once per consecutive expiry (exponential backoff)
// and capped at RTOMax.
func (c *Conn) currentRTO() sim.Time {
	cfg := &c.ep.cfg
	if cfg.RTOMax <= 0 {
		return cfg.RTO
	}
	d := c.rto
	for i := 0; i < c.expiries && d < cfg.RTOMax; i++ {
		d *= 2
	}
	if d > cfg.RTOMax {
		d = cfg.RTOMax
	}
	return d
}

// armRTO (re)starts the coarse retransmission timer (§2.4). With
// DeadInterval set the timer never sleeps past the death deadline, so
// peer-failure detection latency is bounded by DeadInterval itself and
// not by DeadInterval plus one (possibly backed-off) timeout.
func (c *Conn) armRTO() {
	if c.closed {
		return
	}
	if c.rtoTimer != nil {
		c.rtoTimer.Stop()
	}
	d := c.currentRTO()
	if di := c.ep.cfg.DeadInterval; di > 0 {
		if rem := c.lastProgress + di - c.ep.env.Now(); rem < d {
			d = rem
			if d < 0 {
				d = 0
			}
		}
	}
	c.rtoTimer = c.ep.rearmTimer(c.rtoTimer, d, c.onRTOFn)
}

func (c *Conn) onRTO() {
	if c.closed || c.inflight() == 0 {
		return
	}
	cfg := &c.ep.cfg
	now := c.ep.env.Now()
	c.ep.Stats.RtoExpiries++
	c.expiries++
	if c.expiries > c.ep.Stats.RtoBackoffMax {
		c.ep.Stats.RtoBackoffMax = c.expiries
	}
	if c.ep.backoffHist != nil {
		c.ep.backoffHist.Observe(float64(c.expiries))
	}
	c.ep.recEvent(c.localID, obs.RecRtoExpiry, int64(c.expiries), int64(c.inflight()))
	if (cfg.MaxRetries > 0 && c.expiries > cfg.MaxRetries) ||
		(cfg.DeadInterval > 0 && now-c.lastProgress >= cfg.DeadInterval) {
		c.peerLost(fmt.Errorf("core: connection to node %d: no ack progress after %d timeouts over %v: %w",
			c.remoteNode, c.expiries, now-c.lastProgress, ErrPeerDead), true)
		return
	}
	// Loss is a congestion signal: halve the window (at most once per
	// flight) and re-open the retransmission budget — RTO expiry is the
	// clock that paces a blocked recovery forward.
	c.ccOnRto()
	if cfg.GoBackN {
		// Go-back-N baseline: resend everything outstanding.
		for s := c.sndUna; s != c.sndNxt; s++ {
			c.queueRetrans(s, obs.EvRtoRepair)
		}
	} else {
		// The paper's rule: retransmit the last transmitted frame; the
		// receiver then sees the gap and NACKs anything else missing.
		seq := c.sndNxt - 1
		if !c.retrans.has(seq) {
			seq = c.sndUna
		}
		c.queueRetrans(seq, obs.EvRtoRepair)
	}
	c.armRTO()
	c.kick()
}

// handleAck processes a cumulative acknowledgement (piggy-backed or
// explicit): it releases retransmit buffers, advances the window and
// completes operations whose every frame is acknowledged.
func (c *Conn) handleAck(ack uint32) {
	if int32(ack-c.sndUna) <= 0 {
		return // stale
	}
	if int32(ack-c.sndNxt) > 0 {
		ack = c.sndNxt // defensive: never ack beyond what was sent
	}
	// Newest never-retransmitted acked frame (Karn). The timestamp is
	// copied out rather than holding the frame: each tf is recycled the
	// moment its op bookkeeping is done.
	var newestAt sim.Time
	haveNewest := false
	for s := c.sndUna; s != ack; s++ {
		tf, ok := c.retrans.get(s)
		c.retrans.del(s)
		if ok {
			c.bytesAcked += uint64(len(tf.payload))
			tf.op.unacked--
			if tf.op.h != nil && tf.op.opType == frame.OpWrite {
				tf.op.h.acked += len(tf.payload)
			}
			tf.op.forEachSpan(func(sp *obs.Span) {
				sp.Event(c.ep.env.Now(), obs.EvAck, c.ep.node, tf.link, s, len(tf.payload))
			})
			c.clearLinkFault(tf.link, tf.txAt)
			if !tf.retx && (!haveNewest || tf.txAt > newestAt) {
				newestAt, haveNewest = tf.txAt, true
			}
			if !tf.retx && !c.railProbing() && tf.link >= 0 && tf.link < c.links &&
				(!c.railHave[tf.link] || tf.txAt > c.railNewest[tf.link]) {
				c.railNewest[tf.link], c.railHave[tf.link] = tf.txAt, true
			}
			if c.railOut != nil {
				c.railDec(tf.link)
			}
			op := tf.op
			c.freeTxFrame(tf)
			c.checkTxOpDone(op)
		}
	}
	if c.ep.cfg.ccOn() {
		c.ccOnAck(int(ack - c.sndUna))
	}
	c.sndUna = ack
	c.expiries = 0
	c.lastProgress = c.ep.env.Now()
	if haveNewest {
		c.updateRTT(c.ep.env.Now() - newestAt)
		c.updateRailRTT()
	}
	if c.inflight() > 0 {
		c.armRTO()
	} else if c.rtoTimer != nil {
		c.rtoTimer.Stop()
	}
	c.kick() // the window may have opened
}

// handleNack retransmits the frames a NACK reports missing (selective
// repeat; the go-back-N baseline never receives NACKs).
func (c *Conn) handleNack(missing []uint32) {
	for _, s := range missing {
		c.queueRetrans(s, obs.EvNackRepair)
	}
	c.kick()
}

// checkTxOpDone completes a send-side operation once fully fragmented
// and fully acknowledged. Writes complete here; reads complete when the
// reply data lands (completeRead).
func (c *Conn) checkTxOpDone(op *txOp) {
	if op.completed || !op.sentAll || op.unacked != 0 {
		return
	}
	op.completed = true
	op.data = nil
	if op.dataBuf != nil {
		frame.PutBuf(op.dataBuf)
		op.dataBuf = nil
	}
	c.qosRelease(op)
	if op.probe {
		return // internal probe: no user-visible completion
	}
	if op.flags&frame.FenceAfter != 0 {
		for i, f := range c.txFenced {
			if f == op.id {
				c.txFenced = append(c.txFenced[:i], c.txFenced[i+1:]...)
				break
			}
		}
		c.kick() // stalled operations may proceed now
	}
	if op.subs != nil {
		// Coalesced batch: every sub-op completes with the shared frame.
		// Fan completions out per sub-op, in issue order.
		now := c.ep.env.Now()
		for i := range op.subs {
			s := &op.subs[i]
			c.ep.Stats.OpsCompleted++
			s.span.EndAt(now)
			c.pushCompletion(Completion{OpID: s.id, Op: s.op})
		}
		return
	}
	c.ep.Stats.OpsCompleted++
	if op.opType == frame.OpRead {
		// The request is fully acknowledged but nothing is in flight any
		// more: the RTO machinery is quiet while we wait for the reply, so
		// a daemon guard keeps DeadInterval protection over the wait.
		c.armReadGuard()
		return // handle fires when the reply arrives
	}
	// Writes are complete once fully acknowledged; reads (and the read
	// span, which the reply txOp shares) end when the reply data lands.
	if op.opType != frame.OpReadReply {
		op.span.EndAt(c.ep.env.Now())
	}
	if op.h != nil {
		h := op.h
		if h.dlTimer != nil {
			h.dlTimer.Stop()
		}
		// Waking the user process costs CPU only if someone is blocked
		// on the handle; a poll-later handle just flips state.
		if h.done.HasWaiters() {
			c.ep.cpus.Proto.SubmitArg(c.ep.env, c.ep.costs.UserWake, c.ep.fireSigFn, &h.done)
		} else {
			h.done.Fire(c.ep.env)
		}
		if h.cq {
			c.pushCompletion(Completion{OpID: h.opID, Op: h.op})
		}
	}
}

// ---------------------------------------------------------------------
// Failure handling: peer death, deadlines, liveness (ISSUE 3).
// ---------------------------------------------------------------------

// finishHandle terminates a handle with err: deadline expiry or
// connection failure. The waiter (if any) is woken exactly once; a CQ
// handle also fans the error out as a Completion.
func (c *Conn) finishHandle(h *Handle, err error) {
	if h == nil || h.done.Fired() {
		return
	}
	if h.dlTimer != nil {
		h.dlTimer.Stop()
	}
	h.err = err
	ep := c.ep
	if h.done.HasWaiters() {
		ep.cpus.Proto.SubmitArg(ep.env, ep.costs.UserWake, ep.fireSigFn, &h.done)
	} else {
		h.done.Fire(ep.env)
	}
	if h.cq {
		c.pushCompletion(Completion{OpID: h.opID, Op: h.op, Err: err})
	}
}

// failTxOp terminates one send-side operation with cause, releasing its
// buffers and delivering error completions to every waiter — the
// handle, the CQ, and each sub-op of a coalesced batch.
func (c *Conn) failTxOp(t *txOp, cause error) {
	if t == nil || t.completed {
		return
	}
	t.completed = true
	t.data = nil
	if t.dataBuf != nil {
		frame.PutBuf(t.dataBuf)
		t.dataBuf = nil
	}
	c.qosRelease(t)
	if t.probe {
		return // internal probe: no user-visible completion
	}
	now := c.ep.env.Now()
	if t.subs != nil {
		for i := range t.subs {
			s := &t.subs[i]
			c.ep.Stats.OpsFailed++
			s.span.EndAt(now)
			c.pushCompletion(Completion{OpID: s.id, Op: s.op, Err: cause})
		}
		return
	}
	if t.opType != frame.OpReadReply {
		t.span.EndAt(now)
	}
	if t.opType == frame.OpRead {
		delete(c.pendingReads, t.id)
	}
	h := t.h
	t.h = nil
	if h != nil {
		c.ep.Stats.OpsFailed++
		c.finishHandle(h, cause)
	}
}

// expireHandle fires when an operation's Op.Deadline passes before it
// completes. Only the waiter is released: the transfer itself keeps
// running, because cancelling a partially transmitted operation would
// leave a hole in the receiver's sequence and fence frontier. t is the
// operation the handle belongs to (nil for an already-detached handle).
func (c *Conn) expireHandle(h *Handle, t *txOp) {
	if h.done.Fired() || c.failed {
		return // completed (or conn-failed) in the meantime
	}
	ep := c.ep
	ep.Stats.OpDeadlinesExpired++
	ep.Stats.OpsFailed++
	if t != nil && t.h == h {
		t.h = nil // detach: completion machinery no longer owns the waiter
	}
	if t != nil && t.opType == frame.OpRead {
		delete(c.pendingReads, t.id)
		if len(c.pendingReads) == 0 && c.readGuard != nil {
			c.readGuard.Stop()
		}
	}
	c.finishHandle(h, fmt.Errorf("core: op %d to node %d: %w", h.opID, c.remoteNode, ErrDeadlineExceeded))
}

// failConn transitions the connection to the Failed state: every queued
// and in-flight operation, pending read and posted descriptor completes
// with cause (which wraps ErrPeerDead), all timers stop, and — when the
// failure was detected locally — a Reset ctrl frame tells the peer on
// every rail so its side fails promptly too instead of burning its own
// retry budget. Iteration orders are deterministic (sequence walk, FIFO
// slices, sorted read ids) so failure runs replay bit-identically.
func (c *Conn) failConn(cause error, sendReset bool) {
	if c.closed {
		return
	}
	ep := c.ep
	c.failed = true
	c.failErr = cause
	c.closed = true
	ep.Stats.PeerDeadEvents++
	ep.trc(c.localID, trace.PeerDead, 0, 0)
	ep.recEvent(c.localID, obs.RecFailed, int64(c.expiries), int64(c.inflight()))
	c.stopTimers()
	c.stopCloseTimer()
	// A conn that dies mid-reconnect closes its outage span: the outage
	// ended, just not with a recovery.
	c.reconnecting = false
	if c.reconnSpan != nil {
		c.reconnSpan.EndAt(ep.env.Now())
		c.reconnSpan = nil
	}
	if sendReset && c.established.Fired() {
		c.sendResetFrames()
	}
	// Outstanding window frames, then queued operations. Each frame
	// record is recycled after its op is failed (the op-level completed
	// guard makes the second visit through txOps a no-op).
	for s := c.sndUna; s != c.sndNxt; s++ {
		if tf, ok := c.retrans.get(s); ok {
			c.failTxOp(tf.op, cause)
			c.freeTxFrame(tf)
		}
	}
	for _, t := range c.txOps {
		c.failTxOp(t, cause)
	}
	// Reads whose requests were fully acknowledged (their txOps are gone;
	// only the reply was pending).
	if len(c.pendingReads) > 0 {
		ids := make([]uint64, 0, len(c.pendingReads))
		for id := range c.pendingReads {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			h := c.pendingReads[id]
			delete(c.pendingReads, id)
			ep.Stats.OpsFailed++
			c.finishHandle(h, cause)
		}
	}
	// Posted-but-unrung descriptors never received ids; their error
	// completions carry OpID 0 and the original Op for correlation. Each
	// still holds the admission quota Post charged — return it.
	for _, op := range c.sq {
		ep.Stats.OpsFailed++
		if ep.qosOn() {
			ep.qosUncharge(c.opClass(op), 1, op.Size)
		}
		c.pushCompletion(Completion{Op: op, Err: cause})
	}
	if n := len(c.sq); n > 0 {
		c.sq = nil
		ep.noteSQDepth(-n)
	}
	c.retrans.clear()
	c.retransQ = nil
	c.txOps = nil
	c.txFenced = nil
	c.held = nil
	// Wake processes parked in WaitNotify with one poison notification
	// each; with c.failed set, later calls return the poison without
	// parking. No caller may hang on a dead peer.
	for c.notifyQ.HasWaiters() {
		c.notifyQ.Send(ep.env, Notification{From: c.remoteNode, Len: -1})
	}
	ep.removeConn(c)
}

// sendResetFrames tells the peer on every rail that this side has
// condemned the current epoch — on peer death so the other side fails
// promptly instead of burning its own retry budget, and on entering
// Reconnecting so the peer parks too. The frames carry the condemned
// incarnation: the receiver treats a Reset for a stale epoch as noise.
func (c *Conn) sendResetFrames() {
	ep := c.ep
	h := frame.Header{Type: frame.TypeReset, ConnID: c.remoteID, Ack: c.rcvNxt, HasAck: true,
		Incarnation: c.incarnation}
	for li := 0; li < c.links; li++ {
		nic := ep.nics[li]
		dst := frame.NewAddr(c.remoteNode, li)
		buf := frame.MustEncode(dst, nic.Addr(), &h, nil)
		nic.Transmit(&phys.Frame{Buf: buf, Dst: dst, Src: nic.Addr()})
		ep.Stats.ResetsSent++
	}
}

// startKeepalive initializes liveness tracking at connection
// establishment and, with heartbeats enabled, arms the idle-side tick.
// The tick is a daemon timer: an idle heart-beating connection never
// keeps an otherwise-finished simulation alive.
func (c *Conn) startKeepalive() {
	now := c.ep.env.Now()
	c.lastHeard = now
	c.lastTx = now
	c.lastProgress = now
	c.armRailProbes()
	hb := c.ep.cfg.HeartbeatInterval
	if hb <= 0 {
		return
	}
	var tick func()
	tick = func() {
		if c.closed {
			return
		}
		now := c.ep.env.Now()
		if di := c.ep.cfg.DeadInterval; di > 0 && now-c.lastHeard >= di {
			c.peerLost(fmt.Errorf("core: connection to node %d: peer silent for %v: %w",
				c.remoteNode, now-c.lastHeard, ErrPeerDead), true)
			return
		}
		if now-c.lastTx >= hb {
			c.sendHeartbeat()
		}
		c.hbTimer = c.ep.afterDaemonTimer(hb, tick)
	}
	c.hbTimer = c.ep.afterDaemonTimer(hb, tick)
}

// sendHeartbeat emits one liveness ctrl frame. Like every control
// frame it carries the cumulative acknowledgement for free.
func (c *Conn) sendHeartbeat() {
	h := frame.Header{Type: frame.TypeHeartbeat, ConnID: c.remoteID, Ack: c.rcvNxt, HasAck: true}
	c.ep.Stats.HeartbeatsSent++
	c.sendFrame(&h, nil)
}

// armReadGuard starts the daemon liveness check that covers reads whose
// requests are acknowledged: nothing is in flight, so neither the RTO
// path nor (with heartbeats off) any other timer would notice the peer
// dying before the reply.
func (c *Conn) armReadGuard() {
	if c.closed || c.ep.cfg.DeadInterval <= 0 || (c.readGuard != nil && c.readGuard.Pending()) {
		return
	}
	if c.rdGuardFn == nil {
		c.rdGuardFn = c.checkReadLiveness
	}
	c.readGuard = c.ep.rearmDaemonTimer(c.readGuard, c.ep.cfg.DeadInterval, c.rdGuardFn)
}

func (c *Conn) checkReadLiveness() {
	if c.closed || len(c.pendingReads) == 0 {
		return
	}
	di := c.ep.cfg.DeadInterval
	now := c.ep.env.Now()
	if silent := now - c.lastHeard; silent >= di {
		c.peerLost(fmt.Errorf("core: connection to node %d: read reply outstanding, peer silent for %v: %w",
			c.remoteNode, silent, ErrPeerDead), true)
		return
	}
	c.readGuard = c.ep.rearmDaemonTimer(c.readGuard, c.lastHeard+di-now, c.rdGuardFn)
}

// ---------------------------------------------------------------------
// Receive path: ARQ.
// ---------------------------------------------------------------------

// handleData runs the ARQ acceptance logic for a data or read-request
// frame, updates acknowledgement state, and hands accepted frames to the
// ordering engine. link is the arrival NIC index.
func (c *Conn) handleData(h frame.Header, payload []byte, link int) {
	ep := c.ep
	if h.HasAck {
		c.handleAck(h.Ack)
	}
	seq := h.Seq
	if link < len(c.linkHigh) {
		if int32(seq+1-c.linkHigh[link]) > 0 {
			c.linkHigh[link] = seq + 1
		}
		c.linkLast[link] = ep.env.Now()
	}
	if ep.cfg.GoBackN {
		if seq != c.rcvNxt {
			ep.Stats.GbnDropped++
			if int32(seq-c.rcvNxt) < 0 && len(payload) > 0 {
				// Below the cumulative ack: its payload was already applied.
				ep.Stats.DupFramesDropped++
			}
			c.forceAck()
			return
		}
		c.rcvNxt++
		ep.Stats.Arrivals++
		c.acceptData(h, payload)
		c.ackPolicy()
		return
	}
	// Selective repeat.
	if int32(seq-c.rcvNxt) < 0 || c.rcvSeen.has(seq) {
		ep.Stats.Duplicates++
		if len(payload) > 0 {
			// The payload was applied when the first copy arrived; this
			// copy is dropped here, before the ordering/apply machinery.
			ep.Stats.DupFramesDropped++
		}
		ep.trc(c.localID, trace.RxDuplicate, seq, len(payload))
		// The sender is resending: our ACKs — and possibly our NACKs —
		// were lost. Re-advertise both promptly so repair converges.
		if c.missingSince.size() > 0 {
			c.queueNack(true)
		}
		c.forceAck()
		return
	}
	c.rcvSeen.put(seq, struct{}{})
	c.missingSince.del(seq)
	c.nackedAt.del(seq)
	ep.Stats.Arrivals++
	if int32(c.maxSeenPlus1-seq) > 0 {
		ep.Stats.OOOArrivals++
		ep.trc(c.localID, trace.RxOutOfOrder, seq, len(payload))
	} else {
		// In-order extension: any sequence numbers it skips over become
		// missing as of now (bounded by the tracked-gap cap).
		for s := c.maxSeenPlus1; s != seq; s++ {
			if !c.rcvSeen.has(s) && int32(s-c.rcvNxt) >= 0 {
				c.trackGap(s, ep.env.Now())
			}
		}
		c.maxSeenPlus1 = seq + 1
	}
	// Advance the cumulative point, pruning the dedupe entries it passes:
	// everything below rcvNxt is rejected by the stale check above, so
	// the seen-set's live span stays within the window by construction
	// (TestRcvSeenBounded drives a million lossy frames through this).
	for c.rcvSeen.has(c.rcvNxt) {
		c.rcvSeen.del(c.rcvNxt)
		c.rcvNxt++
	}
	// Gap / NACK logic (§2.4: negative acknowledgements report lost or
	// damaged frames). Multi-link round-robin reorders frames by a few
	// microseconds as a matter of course, so a sequence number is only
	// NACKed once it has been missing for a loss-scale age; younger
	// gaps are reordering, not loss.
	if c.missingSince.size() > 0 {
		c.queueNack(false)
		c.armNackTimer()
	} else if c.nackTimer != nil {
		c.nackTimer.Stop()
	}
	c.acceptData(h, payload)
	c.ackPolicy()
}

// nackAge is the age a gap must reach before an arrival-triggered NACK;
// the timer path uses the full NackDelay.
func (c *Conn) nackAge() sim.Time { return c.ep.cfg.NackDelay / 4 }

const (
	// maxNack bounds the missing list one NACK frame may carry. Gaps
	// beyond it are repaired by later rounds: explicit repairs advance
	// the cumulative ACK, which slides the window over the remainder.
	maxNack = 64
	// maxTrackedGaps bounds the receive-side missing-sequence map. A
	// long outage on one rail can open a gap as wide as the sender's
	// window every round trip; tracking more than this many sequence
	// numbers buys nothing (a NACK reports at most maxNack anyway) and
	// would let protocol state grow without bound at fan-in scale.
	// Untracked gaps are counted (Stats.NackGapsDropped) and repaired
	// by the cumulative-ACK/RTO fallback as the window slides.
	maxTrackedGaps = 256
)

// trackGap records sequence number s as missing since now, subject to
// the maxTrackedGaps cap.
func (c *Conn) trackGap(s uint32, now sim.Time) {
	if c.missingSince.size() >= maxTrackedGaps {
		c.ep.Stats.NackGapsDropped++
		c.ep.recEvent(c.localID, obs.RecNackDrop, int64(s), int64(c.missingSince.size()))
		return
	}
	c.missingSince.put(s, now)
}

// mergeNacks merges two ascending missing-sequence lists into one
// deduplicated ascending list, capped at maxNack entries. Merging (vs
// the old overwrite) means a NACK prompted by a duplicate cannot erase
// still-unrepaired sequence numbers queued by an earlier gap report.
func mergeNacks(a, b []uint32) []uint32 {
	if len(a) == 0 {
		return b
	}
	out := make([]uint32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch d := int32(a[i] - b[j]); {
		case d == 0:
			out = append(out, a[i])
			i++
			j++
		case d < 0:
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	if len(out) > maxNack {
		out = out[:maxNack]
	}
	return out
}

// armNackTimer keeps a gap-age check pending while anything is missing,
// so NACKs are re-sent if they (or the retransmissions) are lost.
func (c *Conn) armNackTimer() {
	if c.closed || (c.nackTimer != nil && c.nackTimer.Pending()) {
		return
	}
	c.nackTimer = c.ep.rearmTimer(c.nackTimer, c.ep.cfg.NackDelay, c.nackFn)
}

// queueNack schedules an explicit NACK for sequence numbers that have
// been missing long enough to be presumed lost. A short cooldown
// prevents repeated NACKs for the same loss within one repair
// round-trip; force bypasses the age filter half-way (timer path).
func (c *Conn) queueNack(force bool) {
	if c.closed {
		return
	}
	now := c.ep.env.Now()
	minAge := c.nackAge()
	if force {
		minAge = c.nackAge() / 2
	}
	if now-c.lastNack < c.nackAge() {
		return
	}
	var missing []uint32
	for s := c.rcvNxt; int32(c.maxSeenPlus1-s) > 0 && len(missing) < maxNack; s++ {
		if c.rcvSeen.has(s) {
			continue
		}
		since, ok := c.missingSince.get(s)
		if !ok {
			c.trackGap(s, now)
			continue
		}
		if now-since < minAge {
			continue
		}
		// Don't re-request a sequence number whose repair should still
		// be in flight (one NACK per round trip, roughly).
		if at, ok := c.nackedAt.get(s); ok && now-at < 4*c.nackAge() {
			continue
		}
		// Per-link FIFO: s can only be lost once every physical path
		// has delivered a frame beyond it; otherwise it may simply be
		// queued behind other frames on its path. A link silent for
		// LinkStaleAge cannot be hiding s in a draining queue (the
		// drain itself would have delivered something), so it is
		// presumed empty or dead and loses its veto — otherwise a
		// hard-failed link would suppress loss detection forever.
		stale := c.ep.cfg.LinkStaleAge
		passed := true
		for li, hi := range c.linkHigh {
			if int32(hi-s) <= 0 {
				if stale > 0 && now-c.linkLast[li] > stale {
					continue
				}
				passed = false
				break
			}
		}
		if passed {
			missing = append(missing, s)
			c.nackedAt.put(s, now)
		}
	}
	if len(missing) > 0 {
		c.lastNack = now
		c.nackDue = mergeNacks(c.nackDue, missing)
		c.kick()
	}
}

// ackPolicy implements delayed acknowledgements (§2.4): explicit ACKs
// only after AckEvery frames or AckDelay without reverse traffic.
func (c *Conn) ackPolicy() {
	if c.closed {
		return
	}
	c.unackedRx++
	if c.unackedRx >= c.ep.cfg.AckEvery {
		c.ackDue = true
		c.kick()
		return
	}
	if c.ackTimer == nil || !c.ackTimer.Pending() {
		c.ackTimer = c.ep.rearmTimer(c.ackTimer, c.ep.cfg.AckDelay, c.ackFn)
	}
}

// forceAck schedules an immediate explicit acknowledgement (duplicate
// seen or go-back-N discard: the sender needs our state now).
func (c *Conn) forceAck() {
	if c.closed {
		return
	}
	c.ackDue = true
	c.kick()
}

// ---------------------------------------------------------------------
// Receive path: ordering, fences, delivery (IPPS'07 §2.5).
// ---------------------------------------------------------------------

// acceptData routes an ARQ-accepted frame to delivery. In strict mode
// frames apply in exact sequence order; otherwise frames apply on
// arrival unless fence semantics hold them back.
func (c *Conn) acceptData(h frame.Header, payload []byte) {
	ep := c.ep
	ep.Stats.DataFramesRecv++
	ep.Stats.DataBytesRecv += uint64(len(payload))
	ep.trc(c.localID, trace.RxData, h.Seq, len(payload))
	if ep.cfg.Strict {
		if h.Seq == c.applyNxt {
			c.applyFrame(h, payload)
			c.applyNxt++
			for {
				hf, ok := c.strictBuf.get(c.applyNxt)
				if !ok {
					break
				}
				c.strictBuf.del(c.applyNxt)
				c.noteUnheld(hf.heldAt)
				c.applyFrame(hf.h, hf.payload)
				c.applyNxt++
			}
		} else {
			c.strictBuf.put(h.Seq, heldFrame{h: h, payload: heldCopy(payload), heldAt: ep.env.Now()})
			ep.Stats.HeldFrames++
			ep.trc(c.localID, trace.RxHeld, h.Seq, len(payload))
			c.noteHold(h, payload)
			if n := c.strictBuf.size(); n > ep.Stats.HoldMax {
				ep.Stats.HoldMax = n
			}
		}
		return
	}
	if h.Type == frame.TypeMultiData {
		// A coalesced frame never gets a container rxOp (its id is the
		// last sub-op's id); each sub-op runs the ordering machinery as
		// its own single-frame write.
		for _, sh := range c.fanoutMulti(h, payload) {
			op := c.getRxOp(sh.h)
			if c.canApply(op) {
				c.applyFrame(sh.h, sh.payload)
			} else {
				c.held = append(c.held, heldFrame{h: sh.h, payload: heldCopy(sh.payload), heldAt: ep.env.Now()})
				ep.Stats.HeldFrames++
				ep.trc(c.localID, trace.RxHeld, sh.h.Seq, len(sh.payload))
				c.noteHold(sh.h, sh.payload)
				if n := len(c.held); n > ep.Stats.HoldMax {
					ep.Stats.HoldMax = n
				}
			}
		}
		c.drainHeld()
		return
	}
	op := c.getRxOp(h)
	if c.canApply(op) {
		c.applyFrame(h, payload)
		c.drainHeld()
	} else {
		c.held = append(c.held, heldFrame{h: h, payload: heldCopy(payload), heldAt: ep.env.Now()})
		ep.Stats.HeldFrames++
		ep.trc(c.localID, trace.RxHeld, h.Seq, len(payload))
		c.noteHold(h, payload)
		if n := len(c.held); n > ep.Stats.HoldMax {
			ep.Stats.HoldMax = n
		}
	}
}

// heldCopy snapshots a payload that outlives frame dispatch: held and
// strict-buffered frames are retained after the arrival frame's pooled
// wire buffer is released back to the pool (see Endpoint dispatch), so
// they must own their bytes. Immediate applies stay copy-free.
func heldCopy(payload []byte) []byte {
	if len(payload) == 0 {
		return nil
	}
	return append([]byte(nil), payload...)
}

// fanoutMulti decodes a MultiData frame into per-sub-op synthetic Data
// frames that flow through the ordinary ordering, fence and completion
// machinery. The payload was encoded by our own sender and arrived
// through the reliable ARQ, so a decode failure is a protocol bug.
func (c *Conn) fanoutMulti(h frame.Header, payload []byte) []heldFrame {
	subs, err := frame.DecodeMultiPayload(payload)
	if err != nil {
		panic(fmt.Sprintf("core: node %d bad MultiData payload: %v", c.ep.node, err))
	}
	out := make([]heldFrame, len(subs))
	for i, s := range subs {
		out[i] = heldFrame{
			h: frame.Header{
				Type: frame.TypeData, ConnID: h.ConnID, Seq: h.Seq,
				OpID: s.OpID, OpType: frame.OpWrite, OpFlags: s.Flags,
				Remote: s.Remote, Offset: 0, Total: uint32(len(s.Data)),
			},
			payload: s.Data,
		}
	}
	return out
}

// noteHold records a receive-side stall (ordering or fence) in the
// frame's span.
func (c *Conn) noteHold(h frame.Header, payload []byte) {
	if sp := c.frameSpan(h.OpType, h.OpID, h.Local); sp != nil {
		sp.Event(c.ep.env.Now(), obs.EvRxHold, c.ep.node, -1, h.Seq, len(payload))
	}
}

// noteUnheld feeds the hold-duration histogram when a buffered frame is
// finally applied.
func (c *Conn) noteUnheld(heldAt sim.Time) {
	if c.ep.holdHist != nil && heldAt > 0 {
		c.ep.holdHist.Observe(float64(c.ep.env.Now()-heldAt) / 1000)
	}
}

// getRxOp finds or creates the receive-side operation record for a
// frame.
func (c *Conn) getRxOp(h frame.Header) *rxOp {
	op, ok := c.rxOps[h.OpID]
	if !ok {
		if n := len(c.rxFree); n > 0 {
			op = c.rxFree[n-1]
			c.rxFree = c.rxFree[:n-1]
		} else {
			op = &rxOp{}
		}
		*op = rxOp{
			id: h.OpID, opType: h.OpType, flags: h.OpFlags,
			total: h.Total, remote: h.Remote, local: h.Local,
		}
		if h.OpID < c.frontier {
			// A duplicate of an op already completed and garbage
			// collected cannot occur (ARQ dedupes), but guard anyway.
			op.complete = true
		}
		c.rxOps[h.OpID] = op
		if op.flags&frame.FenceAfter != 0 && !op.complete {
			op.isFenced = true
			c.insertFenced(op.id)
		}
	}
	return op
}

func (c *Conn) insertFenced(id uint64) {
	i := len(c.fenced)
	for i > 0 && c.fenced[i-1] > id {
		i--
	}
	c.fenced = append(c.fenced, 0)
	copy(c.fenced[i+1:], c.fenced[i:])
	c.fenced[i] = id
}

func (c *Conn) removeFenced(id uint64) {
	for i, f := range c.fenced {
		if f == id {
			c.fenced = append(c.fenced[:i], c.fenced[i+1:]...)
			return
		}
	}
}

// canApply implements the fence semantics of §2.5: a frame may be
// performed unless an earlier forward-fenced operation is incomplete, or
// its own operation carries a backward fence and any earlier operation
// is incomplete.
func (c *Conn) canApply(op *rxOp) bool {
	if len(c.fenced) > 0 && c.fenced[0] < op.id {
		return false
	}
	if op.flags&frame.FenceBefore != 0 && c.frontier < op.id {
		return false
	}
	return true
}

// drainHeld re-examines held frames until no more become applicable.
func (c *Conn) drainHeld() {
	for {
		progressed := false
		kept := c.held[:0]
		for _, hf := range c.held {
			op := c.getRxOp(hf.h)
			if c.canApply(op) {
				c.noteUnheld(hf.heldAt)
				c.applyFrame(hf.h, hf.payload)
				progressed = true
			} else {
				kept = append(kept, hf)
			}
		}
		c.held = kept
		if !progressed {
			return
		}
	}
}

// applyFrame performs one frame: copies write/reply payload into memory
// or services a read request, then advances operation completion.
func (c *Conn) applyFrame(h frame.Header, payload []byte) {
	if h.Type == frame.TypeMultiData {
		// Strict mode delivers the container frame here in sequence
		// order; its sub-ops apply back-to-back, preserving issue order.
		for _, sh := range c.fanoutMulti(h, payload) {
			c.applyFrame(sh.h, sh.payload)
		}
		return
	}
	ep := c.ep
	op := c.getRxOp(h)
	if sp := c.frameSpan(h.OpType, h.OpID, h.Local); sp != nil {
		sp.Event(ep.env.Now(), obs.EvRxApply, ep.node, -1, h.Seq, len(payload))
	}
	switch h.Type {
	case frame.TypeReadReq:
		c.serveRead(h)
		c.completeRxOp(op)
		return
	case frame.TypeData:
		if op.complete {
			// Last line of defence: the ARQ already suppresses duplicates,
			// so a payload for a completed operation must never be
			// re-applied over newer data.
			if len(payload) > 0 {
				ep.Stats.DupFramesDropped++
			}
			return
		}
		if len(payload) > 0 {
			end := h.Remote + uint64(h.Offset) + uint64(len(payload))
			if end > uint64(len(ep.mem)) {
				panic(fmt.Sprintf("core: node %d remote write [%d,%d) outside memory",
					ep.node, h.Remote+uint64(h.Offset), end))
			}
			copy(ep.mem[h.Remote+uint64(h.Offset):end], payload)
		}
		op.applied += uint32(len(payload))
		if op.applied >= op.total {
			c.completeRxOp(op)
		}
	}
}

// completeRxOp marks a receive-side operation performed: fences lift,
// the frontier advances, notifications fire, read replies complete their
// read handles.
func (c *Conn) completeRxOp(op *rxOp) {
	if op.complete {
		return
	}
	op.complete = true
	ep := c.ep
	if sp := c.frameSpan(op.opType, op.id, op.local); sp != nil {
		sp.Event(ep.env.Now(), obs.EvRxComplete, ep.node, -1, 0, int(op.applied))
		if op.opType == frame.OpReadReply {
			// The requester's read is done when the reply data has landed.
			sp.EndAt(ep.env.Now())
		}
	}
	if op.isFenced {
		c.removeFenced(op.id)
	}
	// Frontier-collected records are recycled. op itself may be among
	// them but is still read below, so its own recycle is deferred to
	// the end of the function (nothing can pull from the freelist in
	// between — getRxOp only runs on a later dispatch).
	collected := false
	for {
		f, ok := c.rxOps[c.frontier]
		if !ok || !f.complete {
			break
		}
		delete(c.rxOps, c.frontier)
		c.frontier++
		if f == op {
			collected = true
		} else {
			c.rxFree = append(c.rxFree, f)
		}
	}
	if op.flags&frame.Solicit != 0 {
		// Solicited acknowledgement: bypass the delayed-ACK policy so
		// the initiator's completion takes one round trip, not an
		// AckDelay. The ACK is still cumulative — if unrelated earlier
		// frames are missing it cannot complete the operation early.
		c.forceAck()
	}
	if op.flags&frame.Notify != 0 && op.opType == frame.OpWrite {
		ep.Stats.Notifies++
		n := Notification{From: c.remoteNode, OpID: op.id, Addr: op.remote, Len: int(op.total)}
		q := &c.notifyQ
		if ep.notifyAll != nil {
			q = ep.notifyAll
		}
		ep.cpus.Proto.Submit(ep.env, ep.costs.UserWake, func() { q.Send(ep.env, n) })
	}
	if op.opType == frame.OpReadReply {
		if h, ok := c.pendingReads[op.local]; ok {
			delete(c.pendingReads, op.local)
			if len(c.pendingReads) == 0 && c.readGuard != nil {
				// No replies outstanding: cancel the liveness guard so its
				// (daemon) tick does not advance a drained simulation's
				// clock under RunUntil.
				c.readGuard.Stop()
			}
			h.acked = int(op.applied)
			if h.dlTimer != nil {
				h.dlTimer.Stop()
			}
			if h.done.HasWaiters() {
				ep.cpus.Proto.SubmitArg(ep.env, ep.costs.UserWake, ep.fireSigFn, &h.done)
			} else {
				h.done.Fire(ep.env)
			}
			if h.cq {
				h.c.pushCompletion(Completion{OpID: h.opID, Op: h.op})
			}
		}
	}
	if collected {
		c.rxFree = append(c.rxFree, op)
	}
}

// serveRead services a remote read request: snapshot the requested
// memory and send it back as a ReadReply operation whose Remote is the
// requester's destination address and whose Local carries the
// requester's read operation id (IPPS'07 §2.2-2.3).
func (c *Conn) serveRead(h frame.Header) {
	ep := c.ep
	end := h.Remote + uint64(h.Total)
	if end > uint64(len(ep.mem)) {
		panic(fmt.Sprintf("core: node %d read source [%d,%d) outside memory", ep.node, h.Remote, end))
	}
	ep.Stats.ReadsServed++
	// Small reply snapshots ride a pooled buffer (released with the
	// reply txOp's data at completion); larger ones fall back to the
	// heap.
	var data []byte
	var dataBuf *frame.Buf
	if h.Total > 0 && h.Total <= frame.BufCap {
		dataBuf = frame.GetBuf()
		data = append(dataBuf.Bytes()[:0], ep.mem[h.Remote:end]...)
	} else {
		data = append([]byte(nil), ep.mem[h.Remote:end]...)
	}
	t := &txOp{
		id: c.nextOpID, opType: frame.OpReadReply,
		remote: h.Local, local: h.OpID,
		data: data, dataBuf: dataBuf,
		total: h.Total,
	}
	// The reply txOp continues the requester's read span: its frame
	// transmissions, retransmits and ACKs all belong to that read.
	if sp := c.frameSpan(h.OpType, h.OpID, h.Local); sp != nil {
		sp.Event(ep.env.Now(), obs.EvReadServe, ep.node, -1, h.Seq, int(h.Total))
		t.span = sp
	}
	c.nextOpID++
	c.txOps = append(c.txOps, t)
	ep.Stats.OpsStarted++
	c.kick()
}
