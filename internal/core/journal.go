package core

import (
	"fmt"
	"sort"

	"multiedge/internal/obs"
	"multiedge/internal/sim"
)

// Replay-onto-new-conn hooks (ISSUE 7): the supervised-reconnect layer
// (reconnect.go) replays a parked connection's journal onto the SAME
// peer after a rebirth. A service layer balancing over replicas needs
// the other half of that story — when a backend is condemned for good,
// the incomplete operations must move to a DIFFERENT connection. Two
// primitives compose to make that safe:
//
//   - Journal() snapshots the descriptors of every incomplete user
//     operation, in issue order, so a caller can re-issue them on a
//     healthy replica. Write payloads are re-read from local memory at
//     re-issue time, exactly like reconnect.go's own replay.
//   - Abandon() terminally fails the connection. The condemned epoch can
//     never be reborn, so its journal can never replay here — the moved
//     operations apply exactly once, at the new connection only.
//
// Snapshot-then-abandon is the intended order: Journal() first (the
// failure machinery clears the queues), then Abandon(), then re-issue.

// Journal returns the descriptors of every incomplete user operation on
// the connection — queued, in the transmission window, or (for reads)
// awaiting a reply — deduplicated and sorted by issue order. Internal
// probe traffic is excluded; each sub-operation of a coalesced batch is
// reported individually. The returned ops are copies: mutating them
// does not affect the connection.
func (c *Conn) Journal() []Op {
	type rec struct {
		id uint64
		op Op
	}
	seen := make(map[uint64]bool)
	var recs []rec
	addTx := func(t *txOp) {
		if t == nil || t.completed || t.probe || seen[t.id] {
			return
		}
		seen[t.id] = true
		if t.subs != nil {
			for i := range t.subs {
				recs = append(recs, rec{id: t.subs[i].id, op: t.subs[i].op})
			}
			return
		}
		if t.h != nil {
			recs = append(recs, rec{id: t.id, op: t.h.op})
			return
		}
		recs = append(recs, rec{id: t.id, op: Op{
			Remote: t.remote, Local: t.local, Size: int(t.total),
			Kind: t.opType, Flags: t.flags,
		}})
	}
	for s := c.sndUna; s != c.sndNxt; s++ {
		if tf, ok := c.retrans.get(s); ok {
			addTx(tf.op)
		}
	}
	for _, t := range c.txOps {
		addTx(t)
	}
	if len(c.pendingReads) > 0 {
		ids := make([]uint64, 0, len(c.pendingReads))
		for id := range c.pendingReads {
			if !seen[id] {
				ids = append(ids, id)
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			seen[id] = true
			recs = append(recs, rec{id: id, op: c.pendingReads[id].op})
		}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].id < recs[j].id })
	ops := make([]Op, len(recs))
	for i, r := range recs {
		ops[i] = r.op
	}
	return ops
}

// Abandon terminally fails the connection from the local side: every
// queued and in-flight operation completes with an error wrapping
// ErrPeerDead, a parked reconnect is cancelled for good (the condemned
// epoch can never be reborn, so nothing journaled here can ever replay
// and double-apply), and a Reset frame tells a still-live peer to tear
// its side down too. Abandoning a closed or already-failed connection
// is a no-op. Callers migrating work to another connection should
// snapshot Journal() first.
func (c *Conn) Abandon() {
	if c.closed {
		return
	}
	c.ep.Stats.Abandons++
	c.ep.recEvent(c.localID, obs.RecAbandon, int64(c.incarnation), int64(c.inflight()))
	c.failConn(fmt.Errorf("core: connection to node %d abandoned by caller: %w",
		c.remoteNode, ErrPeerDead), !c.reconnecting)
}

// ReplayOn re-issues every operation in journal on the destination
// connection dst, translating remote addresses by (dstBase - srcBase):
// an operation that addressed srcBase+off on the dead peer addresses
// dstBase+off on the new one. Write payloads are re-read from local
// memory, so the caller's buffers must still hold the data (they do for
// any operation whose handle has not completed — the issue-time
// snapshot was taken from the same addresses). It returns the handles
// in journal order; the caller waits on them (or not) as it pleases.
// Deadlines are NOT carried over — the journal entries already expired
// once; the caller sets fresh deadlines via the dl argument (0 = none).
func ReplayOn(p *sim.Proc, dst *Conn, journal []Op, srcBase, dstBase uint64, dl sim.Time) ([]*Handle, error) {
	hs := make([]*Handle, 0, len(journal))
	for _, op := range journal {
		op.Remote = op.Remote - srcBase + dstBase
		op.Deadline = dl
		h, err := dst.Do(p, op)
		if err != nil {
			return hs, err
		}
		hs = append(hs, h)
	}
	return hs, nil
}
