package core_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"multiedge/internal/cluster"
	"multiedge/internal/core"
	"multiedge/internal/frame"
	"multiedge/internal/phys"
	"multiedge/internal/sim"
	"multiedge/internal/trace"
)

// pairCluster builds a 2-node cluster with the given tweaks applied.
func pairCluster(t *testing.T, base cluster.Config) (*cluster.Cluster, *core.Conn, *core.Conn) {
	t.Helper()
	base.Nodes = 2
	cl := cluster.New(base)
	c01, c10 := cl.Pair()
	if !c01.Established() || !c10.Established() {
		t.Fatal("pair not established")
	}
	return cl, c01, c10
}

// fill writes a deterministic pattern derived from seed.
func fill(b []byte, seed byte) {
	for i := range b {
		b[i] = byte(i)*7 + seed
	}
}

func TestHandshake(t *testing.T) {
	cl := cluster.New(cluster.OneLink1G(2))
	c01, c10 := cl.Pair()
	if c01.RemoteNode() != 1 || c10.RemoteNode() != 0 {
		t.Fatalf("remote nodes %d,%d", c01.RemoteNode(), c10.RemoteNode())
	}
	if c01.Links() != 1 {
		t.Errorf("links = %d", c01.Links())
	}
}

func TestHandshakeUnderLoss(t *testing.T) {
	cfg := cluster.OneLink1G(2)
	cfg.Link.LossProb = 0.3
	cfg.Seed = 99
	cl := cluster.New(cfg)
	c01, _ := cl.Pair()
	if !c01.Established() {
		t.Fatal("handshake did not survive loss")
	}
}

func TestRemoteWriteSmall(t *testing.T) {
	cl, c01, _ := pairCluster(t, cluster.OneLink1G(0))
	src := cl.Nodes[0].EP.Alloc(64)
	dst := cl.Nodes[1].EP.Alloc(64)
	data := []byte("the quick brown fox jumps over the lazy dog....!")
	copy(cl.Nodes[0].EP.Mem()[src:], data)
	var done bool
	cl.Env.Go("app", func(p *sim.Proc) {
		h := c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: len(data), Kind: frame.OpWrite})
		h.Wait(p)
		done = true
	})
	cl.Env.RunUntil(sim.Second)
	if !done {
		t.Fatal("write handle never completed")
	}
	if got := cl.Nodes[1].EP.Mem()[dst : dst+uint64(len(data))]; !bytes.Equal(got, data) {
		t.Fatalf("remote memory = %q", got)
	}
}

func TestRemoteWriteLargeMultiFrame(t *testing.T) {
	cl, c01, _ := pairCluster(t, cluster.OneLink1G(0))
	const n = 300 * 1024 // ~213 frames
	src := cl.Nodes[0].EP.Alloc(n)
	dst := cl.Nodes[1].EP.Alloc(n)
	fill(cl.Nodes[0].EP.Mem()[src:src+n], 3)
	cl.Env.Go("app", func(p *sim.Proc) {
		c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: n, Kind: frame.OpWrite}).Wait(p)
	})
	cl.Env.RunUntil(sim.Second)
	if !bytes.Equal(cl.Nodes[1].EP.Mem()[dst:dst+n], cl.Nodes[0].EP.Mem()[src:src+n]) {
		t.Fatal("large write corrupted")
	}
	st := cl.Nodes[0].EP.Stats
	wantFrames := (n + frame.MaxPayload - 1) / frame.MaxPayload
	if st.DataFramesSent < uint64(wantFrames) {
		t.Errorf("DataFramesSent = %d, want >= %d", st.DataFramesSent, wantFrames)
	}
	if st.Retransmissions != 0 {
		t.Errorf("retransmissions on clean link: %d", st.Retransmissions)
	}
}

func TestZeroSizeWriteNotify(t *testing.T) {
	cl, c01, c10 := pairCluster(t, cluster.OneLink1G(0))
	var note core.Notification
	var got bool
	cl.Env.Go("sender", func(p *sim.Proc) {
		c01.MustDo(p, core.Op{Kind: frame.OpWrite, Flags: frame.Notify}).Wait(p)
	})
	cl.Env.Go("receiver", func(p *sim.Proc) {
		note = c10.WaitNotify(p)
		got = true
	})
	cl.Env.RunUntil(sim.Second)
	if !got {
		t.Fatal("notification never delivered")
	}
	if note.From != 0 || note.Len != 0 {
		t.Errorf("notification = %+v", note)
	}
}

func TestNotifyCarriesAddr(t *testing.T) {
	cl, c01, c10 := pairCluster(t, cluster.OneLink1G(0))
	dst := cl.Nodes[1].EP.Alloc(128)
	var note core.Notification
	cl.Env.Go("sender", func(p *sim.Proc) {
		c01.MustDo(p, core.Op{Remote: dst, Size: 128, Kind: frame.OpWrite, Flags: frame.Notify}).Wait(p)
	})
	cl.Env.Go("receiver", func(p *sim.Proc) { note = c10.WaitNotify(p) })
	cl.Env.RunUntil(sim.Second)
	if note.Addr != dst || note.Len != 128 {
		t.Errorf("notification = %+v, want addr %d len 128", note, dst)
	}
}

func TestRemoteRead(t *testing.T) {
	cl, c01, _ := pairCluster(t, cluster.OneLink1G(0))
	const n = 40 * 1024
	remote := cl.Nodes[1].EP.Alloc(n)
	local := cl.Nodes[0].EP.Alloc(n)
	fill(cl.Nodes[1].EP.Mem()[remote:remote+n], 9)
	var done bool
	cl.Env.Go("app", func(p *sim.Proc) {
		h := c01.MustDo(p, core.Op{Remote: remote, Local: local, Size: n, Kind: frame.OpRead})
		h.Wait(p)
		done = true
	})
	cl.Env.RunUntil(sim.Second)
	if !done {
		t.Fatal("read never completed")
	}
	if !bytes.Equal(cl.Nodes[0].EP.Mem()[local:local+n], cl.Nodes[1].EP.Mem()[remote:remote+n]) {
		t.Fatal("read returned wrong data")
	}
	if cl.Nodes[1].EP.Stats.ReadsServed != 1 {
		t.Errorf("ReadsServed = %d", cl.Nodes[1].EP.Stats.ReadsServed)
	}
}

func TestHandleTest(t *testing.T) {
	cl, c01, _ := pairCluster(t, cluster.OneLink1G(0))
	const n = 100 * 1024
	src := cl.Nodes[0].EP.Alloc(n)
	dst := cl.Nodes[1].EP.Alloc(n)
	var before, after bool
	cl.Env.Go("app", func(p *sim.Proc) {
		h := c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: n, Kind: frame.OpWrite})
		before = h.Test() // cannot be complete: frames not even sent
		h.Wait(p)
		after = h.Test()
	})
	cl.Env.RunUntil(sim.Second)
	if before {
		t.Error("handle complete immediately after initiation")
	}
	if !after {
		t.Error("handle incomplete after Wait")
	}
}

func TestWindowBoundsInflight(t *testing.T) {
	cfg := cluster.OneLink1G(0)
	cfg.Core.Window = 8
	cl, c01, _ := pairCluster(t, cfg)
	const n = 200 * 1024
	src := cl.Nodes[0].EP.Alloc(n)
	dst := cl.Nodes[1].EP.Alloc(n)
	cl.Env.Go("app", func(p *sim.Proc) {
		c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: n, Kind: frame.OpWrite})
	})
	max := 0
	var probe func()
	probe = func() {
		if v := c01.Inflight(); v > max {
			max = v
		}
		if !cl.Env.Idle() {
			cl.Env.After(10*sim.Microsecond, probe)
		}
	}
	cl.Env.After(0, probe)
	cl.Env.RunUntil(sim.Second)
	if max > 8 {
		t.Fatalf("inflight reached %d, window is 8", max)
	}
	if max == 0 {
		t.Fatal("no frames observed in flight")
	}
}

func TestLossRecoveryAndNacks(t *testing.T) {
	cfg := cluster.OneLink1G(0)
	cfg.Link.LossProb = 0.05
	cfg.Seed = 7
	cl, c01, _ := pairCluster(t, cfg)
	const n = 400 * 1024
	src := cl.Nodes[0].EP.Alloc(n)
	dst := cl.Nodes[1].EP.Alloc(n)
	fill(cl.Nodes[0].EP.Mem()[src:src+n], 1)
	var done bool
	cl.Env.Go("app", func(p *sim.Proc) {
		c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: n, Kind: frame.OpWrite}).Wait(p)
		done = true
	})
	cl.Env.RunUntil(10 * sim.Second)
	if !done {
		t.Fatal("write did not complete despite retransmission")
	}
	if !bytes.Equal(cl.Nodes[1].EP.Mem()[dst:dst+n], cl.Nodes[0].EP.Mem()[src:src+n]) {
		t.Fatal("data corrupted under loss")
	}
	st := cl.Nodes[0].EP.Stats
	if st.Retransmissions == 0 {
		t.Error("no retransmissions despite 5% loss")
	}
	if cl.Nodes[1].EP.Stats.CtrlNacksSent == 0 {
		t.Error("no NACKs sent despite gaps")
	}
}

func TestTailLossRTORecovery(t *testing.T) {
	// Lose only one late frame via a burst of loss at the end: use a
	// small op so the last frame's loss can only be repaired by the
	// coarse timeout (no following traffic to reveal the gap).
	cfg := cluster.OneLink1G(0)
	cfg.Seed = 3
	cfg.Link.LossProb = 0.5 // heavy: some run of this tiny op WILL lose its tail
	cl, c01, _ := pairCluster(t, cfg)
	src := cl.Nodes[0].EP.Alloc(1024)
	dst := cl.Nodes[1].EP.Alloc(1024)
	fill(cl.Nodes[0].EP.Mem()[src:src+1024], 5)
	var done int
	cl.Env.Go("app", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: 1024, Kind: frame.OpWrite}).Wait(p)
			done++
		}
	})
	cl.Env.RunUntil(60 * sim.Second)
	if done != 20 {
		t.Fatalf("only %d/20 ops completed under 50%% loss", done)
	}
}

func TestDuplicateSuppression(t *testing.T) {
	// Under loss, acks get lost and frames are retransmitted; every
	// notification must still be delivered exactly once.
	cfg := cluster.OneLink1G(0)
	cfg.Link.LossProb = 0.15
	cfg.Seed = 11
	cl, c01, c10 := pairCluster(t, cfg)
	dst := cl.Nodes[1].EP.Alloc(4096)
	const ops = 30
	var notes int
	cl.Env.Go("sender", func(p *sim.Proc) {
		hs := make([]*core.Handle, 0, ops)
		for i := 0; i < ops; i++ {
			hs = append(hs, c01.MustDo(p, core.Op{Remote: dst, Size: 512, Kind: frame.OpWrite, Flags: frame.Notify}))
		}
		for _, h := range hs {
			h.Wait(p)
		}
	})
	cl.Env.Go("receiver", func(p *sim.Proc) {
		for i := 0; i < ops; i++ {
			c10.WaitNotify(p)
			notes++
		}
	})
	cl.Env.RunUntil(30 * sim.Second)
	if notes != ops {
		t.Fatalf("delivered %d notifications, want exactly %d", notes, ops)
	}
	if _, extra := c10.PollNotify(); extra {
		t.Fatal("extra notification delivered (duplicate applied twice)")
	}
}

func TestOOOStatsSingleVsDualLink(t *testing.T) {
	run := func(links int, strict bool) *cluster.Cluster {
		var cfg cluster.Config
		if links == 1 {
			cfg = cluster.OneLink1G(0)
		} else if strict {
			cfg = cluster.TwoLink1G(0)
		} else {
			cfg = cluster.TwoLinkUnordered1G(0)
		}
		cl, c01, _ := pairCluster(t, cfg)
		const n = 256 * 1024
		src := cl.Nodes[0].EP.Alloc(n)
		dst := cl.Nodes[1].EP.Alloc(n)
		fill(cl.Nodes[0].EP.Mem()[src:src+n], 2)
		cl.Env.Go("app", func(p *sim.Proc) {
			c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: n, Kind: frame.OpWrite}).Wait(p)
		})
		cl.Env.RunUntil(5 * sim.Second)
		if !bytes.Equal(cl.Nodes[1].EP.Mem()[dst:dst+n], cl.Nodes[0].EP.Mem()[src:src+n]) {
			t.Fatalf("links=%d strict=%v: corrupted", links, strict)
		}
		return cl
	}
	one := run(1, false)
	if f := one.Nodes[1].EP.Stats.OOOFraction(); f != 0 {
		t.Errorf("single link OOO fraction = %v, want 0", f)
	}
	two := run(2, true)
	if f := two.Nodes[1].EP.Stats.OOOFraction(); f < 0.2 {
		t.Errorf("dual link OOO fraction = %v, want substantial (paper: 45-50%%)", f)
	}
	if two.Nodes[1].EP.Stats.HeldFrames == 0 {
		t.Error("strict mode held no frames despite reordering")
	}
	twoU := run(2, false)
	if twoU.Nodes[1].EP.Stats.HeldFrames != 0 {
		t.Error("unordered mode held frames despite no fences")
	}
	if twoU.Nodes[1].EP.Stats.Retransmissions != 0 {
	}
}

func TestBackwardFenceOrdering(t *testing.T) {
	// Big unfenced write A, then a tiny backward-fenced notify B on two
	// unordered links: when B's notification arrives, A must be fully
	// applied.
	cfg := cluster.TwoLinkUnordered1G(0)
	cfg.Link.LossProb = 0.02
	cfg.Seed = 5
	cl, c01, c10 := pairCluster(t, cfg)
	const n = 200 * 1024
	src := cl.Nodes[0].EP.Alloc(n)
	dstA := cl.Nodes[1].EP.Alloc(n)
	dstB := cl.Nodes[1].EP.Alloc(8)
	fill(cl.Nodes[0].EP.Mem()[src:src+n], 6)
	var checked, ok bool
	cl.Env.Go("sender", func(p *sim.Proc) {
		c01.MustDo(p, core.Op{Remote: dstA, Local: src, Size: n, Kind: frame.OpWrite})
		c01.MustDo(p, core.Op{Remote: dstB, Local: src, Size: 8, Kind: frame.OpWrite, Flags: frame.FenceBefore | frame.Notify})
	})
	cl.Env.Go("receiver", func(p *sim.Proc) {
		c10.WaitNotify(p)
		checked = true
		ok = bytes.Equal(cl.Nodes[1].EP.Mem()[dstA:dstA+n], cl.Nodes[0].EP.Mem()[src:src+n])
	})
	cl.Env.RunUntil(10 * sim.Second)
	if !checked {
		t.Fatal("fenced notification never arrived")
	}
	if !ok {
		t.Fatal("backward fence violated: notify before earlier op applied")
	}
	if cl.Nodes[1].EP.Stats.HeldFrames == 0 {
		t.Log("note: no frames were held (fence never actually bit this run)")
	}
}

func TestForwardFenceOrdering(t *testing.T) {
	// Forward-fenced write A, then unfenced notify B: B must not be
	// performed before A even though B is tiny and A is huge.
	cfg := cluster.TwoLinkUnordered1G(0)
	cfg.Seed = 6
	cl, c01, c10 := pairCluster(t, cfg)
	const n = 200 * 1024
	src := cl.Nodes[0].EP.Alloc(n)
	dstA := cl.Nodes[1].EP.Alloc(n)
	fill(cl.Nodes[0].EP.Mem()[src:src+n], 8)
	var ok, checked bool
	cl.Env.Go("sender", func(p *sim.Proc) {
		c01.MustDo(p, core.Op{Remote: dstA, Local: src, Size: n, Kind: frame.OpWrite, Flags: frame.FenceAfter})
		c01.MustDo(p, core.Op{Kind: frame.OpWrite, Flags: frame.Notify})
	})
	cl.Env.Go("receiver", func(p *sim.Proc) {
		c10.WaitNotify(p)
		checked = true
		ok = bytes.Equal(cl.Nodes[1].EP.Mem()[dstA:dstA+n], cl.Nodes[0].EP.Mem()[src:src+n])
	})
	cl.Env.RunUntil(10 * sim.Second)
	if !checked {
		t.Fatal("notification never arrived")
	}
	if !ok {
		t.Fatal("forward fence violated")
	}
}

func TestFencesDoNotDeadlock(t *testing.T) {
	// Alternating fenced/unfenced ops, loss, two links: everything must
	// still complete.
	cfg := cluster.TwoLinkUnordered1G(0)
	cfg.Link.LossProb = 0.05
	cfg.Seed = 13
	cl, c01, _ := pairCluster(t, cfg)
	src := cl.Nodes[0].EP.Alloc(64 * 1024)
	dst := cl.Nodes[1].EP.Alloc(64 * 1024)
	var done int
	const ops = 24
	cl.Env.Go("sender", func(p *sim.Proc) {
		flagCycle := []frame.OpFlags{0, frame.FenceBefore, frame.FenceAfter, frame.FenceBefore | frame.FenceAfter}
		hs := make([]*core.Handle, 0, ops)
		for i := 0; i < ops; i++ {
			hs = append(hs, c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: 8000, Kind: frame.OpWrite, Flags: flagCycle[i%4]}))
		}
		for _, h := range hs {
			h.Wait(p)
			done++
		}
	})
	cl.Env.RunUntil(30 * sim.Second)
	if done != ops {
		t.Fatalf("completed %d/%d fenced ops", done, ops)
	}
}

func TestStrictModeInOrderApply(t *testing.T) {
	// In strict mode each op's notification implies all earlier ops
	// are applied — even with no fences set.
	cfg := cluster.TwoLink1G(0) // strict
	cfg.Seed = 17
	cl, c01, c10 := pairCluster(t, cfg)
	const n = 100 * 1024
	src := cl.Nodes[0].EP.Alloc(n)
	dstA := cl.Nodes[1].EP.Alloc(n)
	fill(cl.Nodes[0].EP.Mem()[src:src+n], 4)
	var ok, checked bool
	cl.Env.Go("sender", func(p *sim.Proc) {
		c01.MustDo(p, core.Op{Remote: dstA, Local: src, Size: n, Kind: frame.OpWrite})
		c01.MustDo(p, core.Op{Kind: frame.OpWrite, Flags: frame.Notify})
	})
	cl.Env.Go("receiver", func(p *sim.Proc) {
		c10.WaitNotify(p)
		checked = true
		ok = bytes.Equal(cl.Nodes[1].EP.Mem()[dstA:dstA+n], cl.Nodes[0].EP.Mem()[src:src+n])
	})
	cl.Env.RunUntil(10 * sim.Second)
	if !checked || !ok {
		t.Fatalf("strict ordering violated (checked=%v ok=%v)", checked, ok)
	}
}

func TestGoBackNDelivers(t *testing.T) {
	cfg := cluster.OneLink1G(0)
	cfg.Core.GoBackN = true
	cfg.Link.LossProb = 0.05
	cfg.Seed = 23
	cl, c01, _ := pairCluster(t, cfg)
	const n = 100 * 1024
	src := cl.Nodes[0].EP.Alloc(n)
	dst := cl.Nodes[1].EP.Alloc(n)
	fill(cl.Nodes[0].EP.Mem()[src:src+n], 7)
	var done bool
	cl.Env.Go("app", func(p *sim.Proc) {
		c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: n, Kind: frame.OpWrite}).Wait(p)
		done = true
	})
	cl.Env.RunUntil(60 * sim.Second)
	if !done {
		t.Fatal("go-back-N transfer did not complete")
	}
	if !bytes.Equal(cl.Nodes[1].EP.Mem()[dst:dst+n], cl.Nodes[0].EP.Mem()[src:src+n]) {
		t.Fatal("go-back-N corrupted data")
	}
	if cl.Nodes[1].EP.Stats.CtrlNacksSent != 0 {
		t.Error("go-back-N receiver sent NACKs")
	}
}

func TestByteStripeDelivers(t *testing.T) {
	cfg := cluster.TwoLinkUnordered1G(0)
	cfg.Core.ByteStripe = true
	cl, c01, _ := pairCluster(t, cfg)
	const n = 100 * 1024
	src := cl.Nodes[0].EP.Alloc(n)
	dst := cl.Nodes[1].EP.Alloc(n)
	fill(cl.Nodes[0].EP.Mem()[src:src+n], 12)
	cl.Env.Go("app", func(p *sim.Proc) {
		c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: n, Kind: frame.OpWrite}).Wait(p)
	})
	cl.Env.RunUntil(10 * sim.Second)
	if !bytes.Equal(cl.Nodes[1].EP.Mem()[dst:dst+n], cl.Nodes[0].EP.Mem()[src:src+n]) {
		t.Fatal("byte-striping corrupted data")
	}
	// Byte striping halves the payload per frame: at least twice the
	// frames of frame striping.
	min := uint64(2*n/frame.MaxPayload) * 95 / 100
	if cl.Nodes[0].EP.Stats.DataFramesSent < min {
		t.Errorf("byte striping sent %d frames, want >= %d", cl.Nodes[0].EP.Stats.DataFramesSent, min)
	}
}

func TestExtraTrafficSmallOnCleanLink(t *testing.T) {
	cl, c01, _ := pairCluster(t, cluster.OneLink1G(0))
	const n = 1 << 20
	src := cl.Nodes[0].EP.Alloc(n)
	dst := cl.Nodes[1].EP.Alloc(n)
	cl.Env.Go("app", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: n, Kind: frame.OpWrite}).Wait(p)
		}
	})
	cl.Env.RunUntil(10 * sim.Second)
	r := cl.Collect()
	if f := r.Proto.ExtraTrafficFraction(); f > 0.08 {
		t.Errorf("extra traffic fraction %.3f, paper reports <= 5.5%%", f)
	}
	if r.Proto.Retransmissions != 0 {
		t.Errorf("clean link retransmissions = %d", r.Proto.Retransmissions)
	}
}

func TestBidirectionalSimultaneous(t *testing.T) {
	cl, c01, c10 := pairCluster(t, cluster.OneLink1G(0))
	const n = 200 * 1024
	s0 := cl.Nodes[0].EP.Alloc(n)
	d0 := cl.Nodes[0].EP.Alloc(n)
	s1 := cl.Nodes[1].EP.Alloc(n)
	d1 := cl.Nodes[1].EP.Alloc(n)
	fill(cl.Nodes[0].EP.Mem()[s0:s0+n], 21)
	fill(cl.Nodes[1].EP.Mem()[s1:s1+n], 42)
	var done int
	cl.Env.Go("app0", func(p *sim.Proc) {
		c01.MustDo(p, core.Op{Remote: d1, Local: s0, Size: n, Kind: frame.OpWrite}).Wait(p)
		done++
	})
	cl.Env.Go("app1", func(p *sim.Proc) {
		c10.MustDo(p, core.Op{Remote: d0, Local: s1, Size: n, Kind: frame.OpWrite}).Wait(p)
		done++
	})
	cl.Env.RunUntil(5 * sim.Second)
	if done != 2 {
		t.Fatalf("done = %d", done)
	}
	if !bytes.Equal(cl.Nodes[1].EP.Mem()[d1:d1+n], cl.Nodes[0].EP.Mem()[s0:s0+n]) ||
		!bytes.Equal(cl.Nodes[0].EP.Mem()[d0:d0+n], cl.Nodes[1].EP.Mem()[s1:s1+n]) {
		t.Fatal("bidirectional transfer corrupted")
	}
}

func TestFullMeshAllPairs(t *testing.T) {
	cfg := cluster.OneLink1G(5)
	cl := cluster.New(cfg)
	conns := cl.FullMesh()
	const n = 4096
	bufs := make([][]uint64, 5)
	for i := 0; i < 5; i++ {
		bufs[i] = make([]uint64, 5)
		for j := 0; j < 5; j++ {
			bufs[i][j] = cl.Nodes[i].EP.Alloc(n) // bufs[i][j]: node i's landing area for j
		}
	}
	var done int
	for i := 0; i < 5; i++ {
		i := i
		cl.Env.Go(fmt.Sprintf("app%d", i), func(p *sim.Proc) {
			src := cl.Nodes[i].EP.Alloc(n)
			fill(cl.Nodes[i].EP.Mem()[src:src+n], byte(i))
			var hs []*core.Handle
			for j := 0; j < 5; j++ {
				if j == i {
					continue
				}
				hs = append(hs, conns[i][j].MustDo(p, core.Op{Remote: bufs[j][i], Local: src, Size: n, Kind: frame.OpWrite}))
			}
			for _, h := range hs {
				h.Wait(p)
			}
			done++
		})
	}
	cl.Env.RunUntil(5 * sim.Second)
	if done != 5 {
		t.Fatalf("done = %d/5", done)
	}
	want := make([]byte, n)
	for i := 0; i < 5; i++ {
		fill(want, byte(i))
		for j := 0; j < 5; j++ {
			if j == i {
				continue
			}
			got := cl.Nodes[j].EP.Mem()[bufs[j][i] : bufs[j][i]+n]
			if !bytes.Equal(got, want) {
				t.Fatalf("node %d's data at node %d corrupted", i, j)
			}
		}
	}
}

// Property: any mix of op sizes over any configuration (links, strict,
// loss) delivers byte-identical data.
func TestPropertyDeliveryIntegrity(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short")
	}
	f := func(seed int64, sz []uint16, twoLinks, strict, lossy bool) bool {
		if len(sz) == 0 {
			return true
		}
		if len(sz) > 12 {
			sz = sz[:12]
		}
		var cfg cluster.Config
		switch {
		case twoLinks && strict:
			cfg = cluster.TwoLink1G(0)
		case twoLinks:
			cfg = cluster.TwoLinkUnordered1G(0)
		default:
			cfg = cluster.OneLink1G(0)
		}
		cfg.Seed = seed
		if lossy {
			cfg.Link.LossProb = 0.04
		}
		cfg.Nodes = 2
		cl := cluster.New(cfg)
		c01, _ := cl.Pair()
		total := 0
		for _, s := range sz {
			total += int(s)
		}
		src := cl.Nodes[0].EP.Alloc(total)
		dst := cl.Nodes[1].EP.Alloc(total)
		fill(cl.Nodes[0].EP.Mem()[src:src+uint64(total)], byte(seed))
		okc := false
		cl.Env.Go("app", func(p *sim.Proc) {
			var hs []*core.Handle
			off := uint64(0)
			for _, s := range sz {
				hs = append(hs, c01.MustDo(p, core.Op{Remote: dst + off, Local: src + off, Size: int(s), Kind: frame.OpWrite}))
				off += uint64(s)
			}
			for _, h := range hs {
				h.Wait(p)
			}
			okc = true
		})
		cl.Env.RunUntil(120 * sim.Second)
		return okc && bytes.Equal(
			cl.Nodes[1].EP.Mem()[dst:dst+uint64(total)],
			cl.Nodes[0].EP.Mem()[src:src+uint64(total)])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: reads always return exactly what is in remote memory.
func TestPropertyReadIntegrity(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short")
	}
	f := func(seed int64, sz []uint16, lossy bool) bool {
		if len(sz) == 0 {
			return true
		}
		if len(sz) > 6 {
			sz = sz[:6]
		}
		cfg := cluster.TwoLinkUnordered1G(2)
		cfg.Seed = seed
		if lossy {
			cfg.Link.LossProb = 0.03
		}
		cl := cluster.New(cfg)
		c01, _ := cl.Pair()
		total := 0
		for _, s := range sz {
			total += int(s)
		}
		remote := cl.Nodes[1].EP.Alloc(total)
		local := cl.Nodes[0].EP.Alloc(total)
		fill(cl.Nodes[1].EP.Mem()[remote:remote+uint64(total)], byte(seed>>3))
		okc := false
		cl.Env.Go("app", func(p *sim.Proc) {
			off := uint64(0)
			for _, s := range sz {
				c01.MustDo(p, core.Op{Remote: remote + off, Local: local + off, Size: int(s), Kind: frame.OpRead}).Wait(p)
				off += uint64(s)
			}
			okc = true
		})
		cl.Env.RunUntil(120 * sim.Second)
		return okc && bytes.Equal(
			cl.Nodes[0].EP.Mem()[local:local+uint64(total)],
			cl.Nodes[1].EP.Mem()[remote:remote+uint64(total)])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (sim.Time, core.Stats) {
		cfg := cluster.TwoLinkUnordered1G(0)
		cfg.Link.LossProb = 0.02
		cfg.Seed = 31
		cfg.Nodes = 2
		cl := cluster.New(cfg)
		c01, _ := cl.Pair()
		const n = 128 * 1024
		src := cl.Nodes[0].EP.Alloc(n)
		dst := cl.Nodes[1].EP.Alloc(n)
		cl.Env.Go("app", func(p *sim.Proc) {
			c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: n, Kind: frame.OpWrite}).Wait(p)
		})
		end := cl.Env.RunUntil(10 * sim.Second)
		return end, cl.Nodes[0].EP.Stats
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 || s1 != s2 {
		t.Fatalf("same seed diverged: %v vs %v / %+v vs %+v", t1, t2, s1, s2)
	}
}

// TestChaosDeliveryIntegrity subjects the protocol to simultaneous
// loss, duplication and undetected-by-FCS corruption on two unordered
// links: delivery must still be exactly-once and byte-identical.
func TestChaosDeliveryIntegrity(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short")
	}
	f := func(seed int64, strict bool) bool {
		cfg := cluster.TwoLinkUnordered1G(2)
		if strict {
			cfg = cluster.TwoLink1G(2)
		}
		cfg.Seed = seed
		cfg.Link.LossProb = 0.03
		cfg.Link.DupProb = 0.03
		cfg.Link.CorruptProb = 0.02
		cl := cluster.New(cfg)
		c01, c10 := cl.Pair()
		const n = 96 * 1024
		src := cl.Nodes[0].EP.Alloc(n)
		dst := cl.Nodes[1].EP.Alloc(n)
		fill(cl.Nodes[0].EP.Mem()[src:src+n], byte(seed))
		notes := 0
		var done bool
		cl.Env.Go("send", func(p *sim.Proc) {
			var hs []*core.Handle
			for off := 0; off < n; off += 8 * 1024 {
				hs = append(hs, c01.MustDo(p, core.Op{Remote: dst + uint64(off), Local: src + uint64(off), Size: 8 * 1024, Kind: frame.OpWrite, Flags: frame.Notify}))
			}
			for _, h := range hs {
				h.Wait(p)
			}
			done = true
		})
		cl.Env.Go("recv", func(p *sim.Proc) {
			for i := 0; i < n/(8*1024); i++ {
				c10.WaitNotify(p)
				notes++
			}
		})
		cl.Env.RunUntil(120 * sim.Second)
		if !done || notes != n/(8*1024) {
			t.Logf("seed %d strict %v: done=%v notes=%d", seed, strict, done, notes)
			return false
		}
		if _, extra := c10.PollNotify(); extra {
			t.Logf("seed %d: duplicate notification", seed)
			return false
		}
		return bytes.Equal(cl.Nodes[1].EP.Mem()[dst:dst+n], cl.Nodes[0].EP.Mem()[src:src+n])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestConnClose(t *testing.T) {
	cl, c01, c10 := pairCluster(t, cluster.OneLink1G(0))
	src := cl.Nodes[0].EP.Alloc(4096)
	dst := cl.Nodes[1].EP.Alloc(4096)
	var closedBoth bool
	cl.Env.Go("app", func(p *sim.Proc) {
		c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: 4096, Kind: frame.OpWrite})
		c01.Close(p) // must drain the in-flight write first
		closedBoth = c01.Closed() && c10.Closed()
	})
	cl.Env.RunUntil(sim.Second)
	if !closedBoth {
		t.Fatalf("close incomplete: local=%v remote=%v", c01.Closed(), c10.Closed())
	}
	if !bytes.Equal(cl.Nodes[1].EP.Mem()[dst:dst+4096], cl.Nodes[0].EP.Mem()[src:src+4096]) {
		t.Fatal("in-flight write lost by close")
	}
}

func TestConnCloseUnderLoss(t *testing.T) {
	cfg := cluster.OneLink1G(0)
	cfg.Link.LossProb = 0.3
	cfg.Seed = 77
	cl, c01, _ := pairCluster(t, cfg)
	done := false
	cl.Env.Go("app", func(p *sim.Proc) {
		c01.Close(p)
		done = true
	})
	cl.Env.RunUntil(10 * sim.Second)
	if !done {
		t.Fatal("close handshake did not survive loss")
	}
}

func TestOpAfterClosePanics(t *testing.T) {
	cl, c01, _ := pairCluster(t, cluster.OneLink1G(0))
	var panicked bool
	cl.Env.Go("app", func(p *sim.Proc) {
		c01.Close(p)
		defer func() { panicked = recover() != nil }()
		c01.MustDo(p, core.Op{Size: 8, Kind: frame.OpWrite})
	})
	func() {
		defer func() { recover() }() // the sim re-panics process panics
		cl.Env.RunUntil(sim.Second)
	}()
	if !panicked {
		t.Fatal("operation on closed connection did not panic")
	}
}

func TestCloseDoesNotDisturbOtherConns(t *testing.T) {
	cl := cluster.New(cluster.OneLink1G(3))
	conns := cl.FullMesh()
	src := cl.Nodes[0].EP.Alloc(8192)
	dst := cl.Nodes[2].EP.Alloc(8192)
	fill(cl.Nodes[0].EP.Mem()[src:src+8192], 9)
	ok := false
	cl.Env.Go("app", func(p *sim.Proc) {
		conns[0][1].Close(p) // tear down 0-1
		conns[0][2].MustDo(p, core.Op{Remote: dst, Local: src, Size: 8192, Kind: frame.OpWrite}).Wait(p)
		ok = bytes.Equal(cl.Nodes[2].EP.Mem()[dst:dst+8192], cl.Nodes[0].EP.Mem()[src:src+8192])
	})
	cl.Env.RunUntil(sim.Second)
	if !ok {
		t.Fatal("traffic on surviving connection broken after close")
	}
}

func TestMemoryRegistrationEnforcement(t *testing.T) {
	cfg := cluster.OneLink1G(0)
	cfg.Core.EnforceRegistration = true
	cl, c01, _ := pairCluster(t, cfg)
	ep0 := cl.Nodes[0].EP
	buf := ep0.Alloc(4096)
	dst := cl.Nodes[1].EP.Alloc(4096)
	ep0.RegisterMemory(buf, 4096)
	var okRegistered, panickedUnregistered bool
	cl.Env.Go("app", func(p *sim.Proc) {
		c01.MustDo(p, core.Op{Remote: dst, Local: buf, Size: 4096, Kind: frame.OpWrite}).Wait(p)
		okRegistered = true
		ep0.DeregisterMemory(buf)
		defer func() { panickedUnregistered = recover() != nil }()
		c01.MustDo(p, core.Op{Remote: dst, Local: buf, Size: 4096, Kind: frame.OpWrite})
	})
	func() {
		defer func() { recover() }()
		cl.Env.RunUntil(sim.Second)
	}()
	if !okRegistered {
		t.Fatal("registered buffer rejected")
	}
	if !panickedUnregistered {
		t.Fatal("unregistered buffer accepted under enforcement")
	}
}

func TestRegistrationNotRequiredForReceive(t *testing.T) {
	// The paper's point: receive buffers need no registration even in
	// enforcing mode.
	cfg := cluster.OneLink1G(0)
	cfg.Core.EnforceRegistration = true
	cl, c01, _ := pairCluster(t, cfg)
	ep0 := cl.Nodes[0].EP
	src := ep0.Alloc(512)
	dst := cl.Nodes[1].EP.Alloc(512) // never registered at node 1
	ep0.RegisterMemory(src, 512)
	done := false
	cl.Env.Go("app", func(p *sim.Proc) {
		c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: 512, Kind: frame.OpWrite}).Wait(p)
		done = true
	})
	cl.Env.RunUntil(sim.Second)
	if !done {
		t.Fatal("write to unregistered receive buffer failed")
	}
}

func TestTraceCapturesProtocolEvents(t *testing.T) {
	cfg := cluster.TwoLinkUnordered1G(0)
	cfg.Link.LossProb = 0.03
	cfg.Seed = 21
	cl, c01, _ := pairCluster(t, cfg)
	tr0 := trace.New(cl.Env, 1<<14)
	tr1 := trace.New(cl.Env, 1<<14)
	cl.Nodes[0].EP.SetTrace(tr0)
	cl.Nodes[1].EP.SetTrace(tr1)
	const n = 256 * 1024
	src := cl.Nodes[0].EP.Alloc(n)
	dst := cl.Nodes[1].EP.Alloc(n)
	cl.Env.Go("app", func(p *sim.Proc) {
		c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: n, Kind: frame.OpWrite}).Wait(p)
	})
	cl.Env.RunUntil(30 * sim.Second)
	if tr0.Count(trace.TxData) == 0 {
		t.Error("no tx-data events traced")
	}
	if tr0.Count(trace.TxRetransmit) == 0 {
		t.Error("no retransmissions traced despite loss")
	}
	if tr1.Count(trace.RxData) == 0 || tr1.Count(trace.RxOutOfOrder) == 0 {
		t.Error("receive-side events missing")
	}
	// Cross-check trace against protocol counters.
	if tr0.Count(trace.TxRetransmit) != cl.Nodes[0].EP.Stats.Retransmissions {
		t.Errorf("trace retransmits %d != stats %d",
			tr0.Count(trace.TxRetransmit), cl.Nodes[0].EP.Stats.Retransmissions)
	}
	if tr1.Count(trace.RxOutOfOrder) != cl.Nodes[1].EP.Stats.OOOArrivals {
		t.Errorf("trace OOO %d != stats %d",
			tr1.Count(trace.RxOutOfOrder), cl.Nodes[1].EP.Stats.OOOArrivals)
	}
	if !strings.Contains(tr1.Summary(), "rx-ooo") {
		t.Error("summary rendering broken")
	}
}

func TestHandleProgress(t *testing.T) {
	cl, c01, _ := pairCluster(t, cluster.OneLink1G(0))
	const n = 200 * 1024
	src := cl.Nodes[0].EP.Alloc(n)
	dst := cl.Nodes[1].EP.Alloc(n)
	var mid, fin int
	cl.Env.Go("app", func(p *sim.Proc) {
		h := c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: n, Kind: frame.OpWrite})
		p.Sleep(800 * sim.Microsecond) // part-way through the transfer
		mid, _ = h.Progress()
		h.Wait(p)
		fin, _ = h.Progress()
	})
	cl.Env.RunUntil(sim.Second)
	if mid <= 0 || mid >= n {
		t.Errorf("mid-transfer progress = %d, want strictly between 0 and %d", mid, n)
	}
	if fin != n {
		t.Errorf("final progress = %d, want %d", fin, n)
	}
	// Reads report received bytes too.
	var rp int
	cl.Env.Go("reader", func(p *sim.Proc) {
		h := c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: 8192, Kind: frame.OpRead})
		h.Wait(p)
		rp, _ = h.Progress()
	})
	cl.Env.RunUntil(2 * sim.Second)
	if rp != 8192 {
		t.Errorf("read progress = %d, want 8192", rp)
	}
}

// Property: delivery integrity holds across the protocol's knob space:
// go-back-N, byte striping, tiny windows, ack-per-frame, loss and
// duplication.
func TestPropertyKnobSpace(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short")
	}
	f := func(seed int64, gbn, byteStripe, lossy bool, winSel, ackSel uint8) bool {
		cfg := cluster.TwoLinkUnordered1G(2)
		cfg.Seed = seed
		cfg.Core.GoBackN = gbn
		cfg.Core.ByteStripe = byteStripe
		cfg.Core.Window = []int{1, 8, 64, 256}[winSel%4]
		cfg.Core.AckEvery = []int{1, 4, 32}[ackSel%3]
		if cfg.Core.AckEvery >= cfg.Core.Window {
			cfg.Core.AckEvery = 1
		}
		if lossy && !gbn { // GBN under loss on striped links converges too slowly for a quick test
			cfg.Link.LossProb = 0.02
			cfg.Link.DupProb = 0.01
		}
		cl := cluster.New(cfg)
		c01, _ := cl.Pair()
		const n = 48 * 1024
		src := cl.Nodes[0].EP.Alloc(n)
		dst := cl.Nodes[1].EP.Alloc(n)
		fill(cl.Nodes[0].EP.Mem()[src:src+n], byte(seed))
		done := false
		cl.Env.Go("app", func(p *sim.Proc) {
			c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: n, Kind: frame.OpWrite}).Wait(p)
			done = true
		})
		cl.Env.RunUntil(240 * sim.Second)
		return done && bytes.Equal(cl.Nodes[1].EP.Mem()[dst:dst+n], cl.Nodes[0].EP.Mem()[src:src+n])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 24}); err != nil {
		t.Error(err)
	}
}

func TestTwoConnectionsSamePair(t *testing.T) {
	// Two independent connections between the same nodes: separate
	// sequence/op spaces, both deliver.
	cl := cluster.New(cluster.OneLink1G(2))
	var a1, a2, b1, b2 *core.Conn
	cl.Env.Go("dial", func(p *sim.Proc) {
		a1 = cl.Nodes[0].EP.Dial(p, 1, 0)
		a2 = cl.Nodes[0].EP.Dial(p, 1, 0)
	})
	cl.Env.Go("accept", func(p *sim.Proc) {
		b1 = cl.Nodes[1].EP.Accept(p)
		b2 = cl.Nodes[1].EP.Accept(p)
	})
	cl.Env.Run()
	if a1 == nil || a2 == nil || b1 == nil || b2 == nil {
		t.Fatal("second connection not established")
	}
	d1 := cl.Nodes[1].EP.Alloc(4096)
	d2 := cl.Nodes[1].EP.Alloc(4096)
	src := cl.Nodes[0].EP.Alloc(4096)
	fill(cl.Nodes[0].EP.Mem()[src:src+4096], 5)
	done := 0
	cl.Env.Go("app", func(p *sim.Proc) {
		h1 := a1.MustDo(p, core.Op{Remote: d1, Local: src, Size: 4096, Kind: frame.OpWrite})
		h2 := a2.MustDo(p, core.Op{Remote: d2, Local: src, Size: 4096, Kind: frame.OpWrite})
		h1.Wait(p)
		h2.Wait(p)
		done = 1
	})
	cl.Env.RunUntil(sim.Second)
	if done != 1 {
		t.Fatal("ops on parallel connections did not complete")
	}
	if !bytes.Equal(cl.Nodes[1].EP.Mem()[d1:d1+4096], cl.Nodes[1].EP.Mem()[d2:d2+4096]) {
		t.Fatal("parallel connections delivered different data")
	}
}

func TestFencedRead(t *testing.T) {
	// A backward-fenced READ must be serviced only after the preceding
	// write is applied at the target, so it returns the new data.
	cfg := cluster.TwoLinkUnordered1G(0)
	cfg.Seed = 41
	cl, c01, _ := pairCluster(t, cfg)
	const n = 128 * 1024
	src := cl.Nodes[0].EP.Alloc(n)
	dst := cl.Nodes[1].EP.Alloc(n)
	back := cl.Nodes[0].EP.Alloc(n)
	fill(cl.Nodes[0].EP.Mem()[src:src+n], 77)
	ok := false
	cl.Env.Go("app", func(p *sim.Proc) {
		c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: n, Kind: frame.OpWrite})
		h := c01.MustDo(p, core.Op{Remote: dst, Local: back, Size: n, Kind: frame.OpRead, Flags: frame.FenceBefore})
		h.Wait(p)
		ok = bytes.Equal(cl.Nodes[0].EP.Mem()[back:back+n], cl.Nodes[0].EP.Mem()[src:src+n])
	})
	cl.Env.RunUntil(10 * sim.Second)
	if !ok {
		t.Fatal("fenced read returned pre-write data")
	}
}

func TestGlobalNotifyReroutesAllConns(t *testing.T) {
	cl := cluster.New(cluster.OneLink1G(3))
	conns := cl.FullMesh()
	q := cl.Nodes[2].EP.GlobalNotify()
	got := map[int]int{}
	cl.Env.Go("svc", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			n := q.Recv(p)
			got[n.From]++
		}
	})
	cl.Env.Go("s0", func(p *sim.Proc) {
		conns[0][2].MustDo(p, core.Op{Kind: frame.OpWrite, Flags: frame.Notify})
		conns[0][2].MustDo(p, core.Op{Kind: frame.OpWrite, Flags: frame.Notify})
	})
	cl.Env.Go("s1", func(p *sim.Proc) {
		conns[1][2].MustDo(p, core.Op{Kind: frame.OpWrite, Flags: frame.Notify})
		conns[1][2].MustDo(p, core.Op{Kind: frame.OpWrite, Flags: frame.Notify})
	})
	cl.Env.RunUntil(sim.Second)
	if got[0] != 2 || got[1] != 2 {
		t.Fatalf("global notify demux got %v, want 2 from each peer", got)
	}
}

// TestSolicitedAckLatency pins the Solicit flag: a queue-depth-1 write
// on an otherwise idle connection completes in one round trip instead
// of waiting out the delayed-ACK policy (AckDelay, 500us by default).
func TestSolicitedAckLatency(t *testing.T) {
	measure := func(flags frame.OpFlags) sim.Time {
		cl, c01, _ := pairCluster(t, cluster.OneLink1G(0))
		src := cl.Nodes[0].EP.Alloc(64)
		dst := cl.Nodes[1].EP.Alloc(64)
		var elapsed sim.Time
		cl.Env.Go("app", func(p *sim.Proc) {
			t0 := cl.Env.Now()
			c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: 64, Kind: frame.OpWrite, Flags: flags}).Wait(p)
			elapsed = cl.Env.Now() - t0
		})
		cl.Env.RunUntil(sim.Second)
		if elapsed == 0 {
			t.Fatal("write did not complete")
		}
		return elapsed
	}
	plain := measure(0)
	solicited := measure(frame.Solicit)
	if plain < 400*sim.Microsecond {
		t.Errorf("unsolicited completion %v; expected to be AckDelay-bound (>=400us)", plain)
	}
	if solicited > 150*sim.Microsecond {
		t.Errorf("solicited completion %v; expected one round trip (<150us)", solicited)
	}
}

// TestSolicitCumulativeOnly: a solicited ACK must not complete the
// operation while an earlier frame is still missing — the ACK is
// cumulative, so repair still gates completion.
func TestSolicitCumulativeOnly(t *testing.T) {
	cfg := cluster.OneLink1G(0)
	cl, c01, _ := pairCluster(t, cfg)
	ep0, ep1 := cl.Nodes[0].EP, cl.Nodes[1].EP
	const n = 8 * 1444
	src := ep0.Alloc(n)
	dst := ep1.Alloc(n)
	fill(ep0.Mem()[src:src+uint64(n)], 1)
	flag := ep0.Alloc(1)
	fdst := ep1.Alloc(1)
	// Kill exactly the first data frame of the bulk write.
	dataSeen := false
	cl.Nodes[0].NICs[0].OutPort().SetDropFilter(func(f *phys.Frame) bool {
		_, _, h, _, err := frame.Decode(f.Buf)
		if err != nil || h.Type != frame.TypeData || dataSeen {
			return false
		}
		dataSeen = true
		return true
	})
	var bulkDone, solDone sim.Time
	cl.Env.Go("app", func(p *sim.Proc) {
		hb := c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: n, Kind: frame.OpWrite})
		hs := c01.MustDo(p, core.Op{Remote: fdst, Local: flag, Size: 1, Kind: frame.OpWrite, Flags: frame.Solicit})
		hs.Wait(p)
		solDone = cl.Env.Now()
		hb.Wait(p)
		bulkDone = cl.Env.Now()
	})
	cl.Env.RunUntil(5 * sim.Second)
	if solDone == 0 || bulkDone == 0 {
		t.Fatal("operations did not complete")
	}
	// The solicited op's frames follow the bulk op's; with the first
	// bulk frame lost, the cumulative ACK cannot pass it until repair,
	// so the solicited op must not complete before the bulk op.
	if solDone < bulkDone {
		t.Errorf("solicited op completed at %v before the gapped bulk op at %v", solDone, bulkDone)
	}
	if !bytes.Equal(ep1.Mem()[dst:dst+uint64(n)], ep0.Mem()[src:src+uint64(n)]) {
		t.Error("bulk data corrupted")
	}
}

// TestConcurrentConnections runs three independent connections between
// the same node pair, all striping over the same two rails at once:
// each must deliver its own data intact (connection IDs demultiplex
// frames) and none may starve (the endpoint's transmit round-robin is
// per-connection).
func TestConcurrentConnections(t *testing.T) {
	cfg := cluster.TwoLinkUnordered1G(2)
	cfg.Core.MemBytes = 32 << 20
	cl := cluster.New(cfg)
	ep0, ep1 := cl.Nodes[0].EP, cl.Nodes[1].EP

	const nConns = 3
	var c01 [nConns]*core.Conn
	for i := 0; i < nConns; i++ {
		i := i
		cl.Env.Go("dial", func(p *sim.Proc) { c01[i] = ep0.Dial(p, 1, 0) })
		cl.Env.Go("accept", func(p *sim.Proc) { ep1.Accept(p) })
		cl.Env.Run()
	}

	const n = 2 << 20
	var src, dst [nConns]uint64
	for i := 0; i < nConns; i++ {
		src[i] = ep0.Alloc(n)
		dst[i] = ep1.Alloc(n)
		fill(ep0.Mem()[src[i]:src[i]+n], byte(100+i*31))
	}
	var doneAt [nConns]sim.Time
	for i := 0; i < nConns; i++ {
		i := i
		cl.Env.Go(fmt.Sprintf("xfer%d", i), func(p *sim.Proc) {
			c01[i].MustDo(p, core.Op{Remote: dst[i], Local: src[i], Size: n, Kind: frame.OpWrite}).Wait(p)
			doneAt[i] = cl.Env.Now()
		})
	}
	cl.Env.RunUntil(10 * sim.Second)

	var first, last sim.Time = 1 << 62, 0
	for i := 0; i < nConns; i++ {
		if doneAt[i] == 0 {
			t.Fatalf("connection %d starved (transfer incomplete)", i)
		}
		if !bytes.Equal(ep1.Mem()[dst[i]:dst[i]+n], ep0.Mem()[src[i]:src[i]+n]) {
			t.Errorf("connection %d data corrupted/cross-wired", i)
		}
		if doneAt[i] < first {
			first = doneAt[i]
		}
		if doneAt[i] > last {
			last = doneAt[i]
		}
	}
	// Fair sharing: concurrent equal transfers finish close together
	// (round-robin demand scheduling), not serially.
	if float64(last) > 1.5*float64(first) {
		t.Errorf("unfair sharing: first done at %v, last at %v", first, last)
	}
}
