package core_test

import (
	"bytes"
	"errors"
	"testing"

	"multiedge/internal/cluster"
	"multiedge/internal/core"
	"multiedge/internal/frame"
	"multiedge/internal/sim"
)

// TestJournalSnapshot checks that Journal returns every incomplete
// issued operation — queued writes and pending reads — in issue order
// with the original descriptors, and empties once they complete.
func TestJournalSnapshot(t *testing.T) {
	cl := cluster.New(cluster.OneLink1G(2))
	c01, _ := cl.Pair()
	ep0, ep1 := cl.Nodes[0].EP, cl.Nodes[1].EP
	src := ep0.Alloc(64 * 1024)
	dst := ep1.Alloc(64 * 1024)
	done := false
	cl.Env.Go("app", func(p *sim.Proc) {
		h1 := c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: 32 * 1024, Kind: frame.OpWrite})
		h2 := c01.MustDo(p, core.Op{Remote: dst + 32768, Local: src + 32768, Size: 4096, Kind: frame.OpRead})
		h3 := c01.MustDo(p, core.Op{Remote: dst + 40960, Local: src + 40960, Size: 8, Kind: frame.OpWrite, Flags: frame.Notify})
		j := c01.Journal()
		if len(j) != 3 {
			t.Fatalf("journal has %d ops, want 3: %+v", len(j), j)
		}
		if j[0].Kind != frame.OpWrite || j[0].Size != 32*1024 || j[0].Remote != dst {
			t.Errorf("journal[0] = %+v, want the 32 KiB write", j[0])
		}
		if j[1].Kind != frame.OpRead || j[1].Size != 4096 {
			t.Errorf("journal[1] = %+v, want the read", j[1])
		}
		if j[2].Flags != frame.Notify || j[2].Size != 8 {
			t.Errorf("journal[2] = %+v, want the notifying write", j[2])
		}
		h1.Wait(p)
		h2.Wait(p)
		h3.Wait(p)
		if j := c01.Journal(); len(j) != 0 {
			t.Errorf("journal after completion has %d ops, want 0", len(j))
		}
		done = true
	})
	cl.Env.RunUntil(10 * sim.Second)
	if !done {
		t.Fatal("workload did not finish")
	}
}

// TestJournalAbandonReplayOnNewConn is the replay-onto-new-conn story a
// replicated service layer builds on: a backend dies mid-transfer, the
// parked connection's journal is snapshotted, the connection abandoned
// (so the condemned epoch can never rebirth and double-apply), and the
// journal replayed onto a healthy replica with translated addresses —
// landing every incomplete operation exactly once, byte-verified, on
// the survivor.
func TestJournalAbandonReplayOnNewConn(t *testing.T) {
	cfg := cluster.OneLink1G(3)
	cfg.Core.Reconnect = true
	cfg.Core.DeadInterval = 5 * sim.Millisecond
	cfg.Core.RTOMax = 2 * sim.Millisecond
	cl := cluster.New(cfg)
	ep0 := cl.Nodes[0].EP
	const n = 64 * 1024
	src := ep0.Alloc(2 * n)
	base1 := cl.Nodes[1].EP.Alloc(2 * n)
	base2 := cl.Nodes[2].EP.Alloc(2 * n)
	for i := uint64(0); i < 2*n; i++ {
		ep0.Mem()[src+i] = byte(i*7 + 3)
	}
	done := false
	cl.Env.Go("client", func(p *sim.Proc) {
		c1 := ep0.Dial(p, 1, 0)
		c2 := ep0.Dial(p, 2, 0)
		h1 := c1.MustDo(p, core.Op{Remote: base1, Local: src, Size: n, Kind: frame.OpWrite})
		h2 := c1.MustDo(p, core.Op{Remote: base1 + n, Local: src + n, Size: n, Kind: frame.OpWrite})
		cl.PauseNode(1) // backend dies with both writes in flight
		for !c1.Reconnecting() && !c1.Failed() {
			p.Sleep(sim.Millisecond)
		}
		if !c1.Reconnecting() {
			t.Fatal("conn failed terminally instead of parking (Reconnect on)")
		}
		j := c1.Journal()
		if len(j) != 2 {
			t.Fatalf("journal has %d ops, want 2", len(j))
		}
		c1.Abandon()
		if !c1.Failed() || c1.Reconnecting() {
			t.Fatalf("after Abandon: failed=%v reconnecting=%v", c1.Failed(), c1.Reconnecting())
		}
		h1.Wait(p)
		h2.Wait(p)
		if !errors.Is(h1.Err(), core.ErrPeerDead) || !errors.Is(h2.Err(), core.ErrPeerDead) {
			t.Errorf("abandoned handles: err1=%v err2=%v, want ErrPeerDead", h1.Err(), h2.Err())
		}
		hs, err := core.ReplayOn(p, c2, j, base1, base2, 0)
		if err != nil {
			t.Fatalf("ReplayOn: %v", err)
		}
		for i, h := range hs {
			h.Wait(p)
			if h.Err() != nil {
				t.Errorf("replayed op %d failed: %v", i, h.Err())
			}
		}
		if !bytes.Equal(cl.Nodes[2].EP.Mem()[base2:base2+2*n], ep0.Mem()[src:src+2*n]) {
			t.Error("replica 2 bytes differ after replay")
		}
		c2.Close(p)
		done = true
	})
	cl.Env.RunUntil(30 * sim.Second)
	if !done {
		t.Fatal("client did not finish")
	}
	if ep0.Stats.Abandons != 1 {
		t.Errorf("Abandons = %d, want 1", ep0.Stats.Abandons)
	}
	// The condemned epoch must never come back: resuming the dead
	// backend re-establishes nothing (the abandoned conn is terminal)
	// and replays nothing onto node 1.
	cl.ResumeNode(1)
	cl.Env.RunUntil(cl.Env.Now() + 100*sim.Millisecond)
	if ep0.Stats.Reconnects != 0 {
		t.Errorf("Reconnects = %d after resume, want 0 (epoch was condemned)", ep0.Stats.Reconnects)
	}
	if got := cl.Env.PendingEvents(); got != 0 {
		t.Errorf("PendingEvents = %d after teardown, want 0", got)
	}
}
