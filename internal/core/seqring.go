package core

// seqRing is a sequence-number-indexed store backing the connection's
// per-seq ARQ state (retransmit buffers, receive dedupe, gap tracking,
// strict-order buffering). The live key span of all of these is bounded
// by the ARQ window plus a handful of probe sequences, so a power-of-two
// slot array sized to the window serves every steady-state access with
// no hashing and no allocation; the previous map[uint32] backings
// churned a heap-allocated bucket chain per frame.
//
// Keys are sequence numbers compared in modular (serial-number)
// arithmetic. Should two live keys ever collide on a slot — possible
// only if the live span exceeds the ring size, which the window bound
// prevents — correctness is preserved by spilling the older entry to a
// lazily allocated overflow map, so the structure is a strict drop-in
// for the map it replaces rather than a lossy cache.
type seqRing[T any] struct {
	slots    []seqSlot[T]
	mask     uint32
	liveSlot int // occupied slots (excludes overflow entries)
	overflow map[uint32]T
}

type seqSlot[T any] struct {
	seq  uint32
	full bool
	val  T
}

// seqRingSlack covers sequence numbers assigned beyond the window
// proper: dead-link probes (sendProbe) advance sndNxt without consuming
// window space, so a conn repairing several dead rails can hold a live
// span slightly wider than Config.Window.
const seqRingSlack = 64

// newSeqRing sizes the ring to the next power of two covering the ARQ
// window plus probe slack.
func newSeqRing[T any](window int) *seqRing[T] {
	need := window + seqRingSlack
	size := 64
	for size < need {
		size *= 2
	}
	return &seqRing[T]{slots: make([]seqSlot[T], size), mask: uint32(size - 1)}
}

// get returns the value stored under s, if any.
func (r *seqRing[T]) get(s uint32) (T, bool) {
	sl := &r.slots[s&r.mask]
	if sl.full && sl.seq == s {
		return sl.val, true
	}
	if r.overflow != nil {
		v, ok := r.overflow[s]
		return v, ok
	}
	var zero T
	return zero, false
}

// has reports whether s is present (set-style use).
func (r *seqRing[T]) has(s uint32) bool {
	sl := &r.slots[s&r.mask]
	if sl.full && sl.seq == s {
		return true
	}
	if r.overflow != nil {
		_, ok := r.overflow[s]
		return ok
	}
	return false
}

// put stores v under s, overwriting any previous value. On a slot
// collision the newer sequence number keeps the slot (it will stay live
// longest) and the older spills to the overflow map.
func (r *seqRing[T]) put(s uint32, v T) {
	sl := &r.slots[s&r.mask]
	if !sl.full {
		sl.seq, sl.val, sl.full = s, v, true
		r.liveSlot++
		return
	}
	if sl.seq == s {
		sl.val = v
		return
	}
	if int32(s-sl.seq) > 0 {
		r.spill(sl.seq, sl.val)
		sl.seq, sl.val = s, v
		return
	}
	r.spill(s, v)
}

func (r *seqRing[T]) spill(s uint32, v T) {
	if r.overflow == nil {
		r.overflow = make(map[uint32]T)
	}
	r.overflow[s] = v
}

// del removes s if present.
func (r *seqRing[T]) del(s uint32) {
	sl := &r.slots[s&r.mask]
	if sl.full && sl.seq == s {
		var zero T
		sl.val = zero // drop references for GC
		sl.full = false
		r.liveSlot--
		return
	}
	if r.overflow != nil {
		delete(r.overflow, s)
	}
}

// size returns the number of live entries.
func (r *seqRing[T]) size() int { return r.liveSlot + len(r.overflow) }

// clear empties the ring in place, keeping the slot array.
func (r *seqRing[T]) clear() {
	if r.liveSlot > 0 {
		var zero T
		for i := range r.slots {
			if r.slots[i].full {
				r.slots[i].val = zero
				r.slots[i].full = false
			}
		}
		r.liveSlot = 0
	}
	r.overflow = nil
}

// overflowLen exposes the spill count (tests: it should stay zero in
// any run whose live span respects the window bound).
func (r *seqRing[T]) overflowLen() int { return len(r.overflow) }
