package core_test

// Frozen golden for the Op API: the legacy positional RDMAOperation
// wrapper is gone (ISSUE 7 retired it), so the old legacy-vs-Op parity
// test became an Op-vs-golden test. The golden constants below were
// captured while the wrapper still existed, from a run where both
// surfaces produced bit-identical simulations; the Op path must keep
// reproducing them exactly — same virtual end time, same protocol
// statistics on both endpoints — even on lossy, reordering two-rail
// hardware. Any diff is a behaviour change in the issue path and must
// come with a deliberate golden update.

import (
	"testing"

	"multiedge/internal/cluster"
	"multiedge/internal/core"
	"multiedge/internal/frame"
	"multiedge/internal/sim"
)

// parityOp is one step of the parity workload.
type parityOp struct {
	remote, local uint64
	size          int
	kind          frame.OpType
	flags         frame.OpFlags
	wait          bool
}

// parityWorkload mixes sizes, kinds and every flag across both rails.
func parityWorkload(src, dst uint64) []parityOp {
	return []parityOp{
		{dst, src, 64, frame.OpWrite, 0, false},
		{dst + 64, src, 9000, frame.OpWrite, frame.FenceAfter, false},
		{dst, src, 8, frame.OpWrite, frame.FenceBefore | frame.Notify, false},
		{dst + 64*1024, src + 128*1024, 4096, frame.OpRead, 0, true},
		{dst, src, 200 * 1024, frame.OpWrite, 0, false},
		{dst + 32, src, 0, frame.OpWrite, frame.Notify, false},
		{dst + 128, src, 1500, frame.OpWrite, frame.Solicit, true},
		{dst, src, 32 * 1024, frame.OpWrite, frame.FenceBefore | frame.FenceAfter, true},
	}
}

func runParity(t *testing.T) (sim.Time, core.Stats, core.Stats) {
	t.Helper()
	cfg := cluster.TwoLinkUnordered1G(0)
	cfg.Link.LossProb = 0.03
	cfg.Seed = 271
	cfg.Nodes = 2
	cl := cluster.New(cfg)
	c01, c10 := cl.Pair()
	const n = 256 * 1024
	src := cl.Nodes[0].EP.Alloc(n)
	dst := cl.Nodes[1].EP.Alloc(n)
	for i := range cl.Nodes[0].EP.Mem()[src : src+n] {
		cl.Nodes[0].EP.Mem()[src+uint64(i)] = byte(i * 13)
	}
	cl.Env.Go("sender", func(p *sim.Proc) {
		var hs []*core.Handle
		for _, op := range parityWorkload(src, dst) {
			h := c01.MustDo(p, core.Op{Remote: op.remote, Local: op.local,
				Size: op.size, Kind: op.kind, Flags: op.flags})
			if op.wait {
				h.Wait(p)
			} else {
				hs = append(hs, h)
			}
		}
		for _, h := range hs {
			h.Wait(p)
		}
	})
	cl.Env.Go("receiver", func(p *sim.Proc) {
		c10.WaitNotify(p)
		c10.WaitNotify(p)
	})
	end := cl.Env.RunUntil(30 * sim.Second)
	return end, cl.Nodes[0].EP.Stats, cl.Nodes[1].EP.Stats
}

// The frozen golden: virtual end time plus the behaviour-bearing
// counters of both endpoints, captured from the last run in which the
// Op path and the retired RDMAOperation wrapper agreed bit-for-bit.
const (
	parityGoldenEnd = sim.Time(5177126)

	paritySenderOpsStarted   = 8
	paritySenderOpsCompleted = 8
	paritySenderFramesSent   = 178
	paritySenderBytesSent    = 248140
	paritySenderRetrans      = 14
	paritySenderCtrlAcks     = 0
	paritySenderCtrlNacks    = 0

	parityRecvFramesRecv  = 178
	parityRecvBytesRecv   = 248140
	parityRecvReadsServed = 1
	parityRecvNotifies    = 2
	parityRecvDuplicates  = 5
	parityRecvOOOArrivals = 64
	parityRecvCtrlNacks   = 11
)

func TestOpAPIParityGolden(t *testing.T) {
	end, a, b := runParity(t)
	check := func(what string, got, want uint64) {
		if got != want {
			t.Errorf("%s: got %d, golden %d", what, got, want)
		}
	}
	if end != parityGoldenEnd {
		t.Errorf("end time: got %v (%d), golden %d", end, int64(end), int64(parityGoldenEnd))
	}
	check("sender OpsStarted", a.OpsStarted, paritySenderOpsStarted)
	check("sender OpsCompleted", a.OpsCompleted, paritySenderOpsCompleted)
	check("sender DataFramesSent", a.DataFramesSent, paritySenderFramesSent)
	check("sender DataBytesSent", a.DataBytesSent, paritySenderBytesSent)
	check("sender Retransmissions", a.Retransmissions, paritySenderRetrans)
	check("sender CtrlAcksSent", a.CtrlAcksSent, paritySenderCtrlAcks)
	check("sender CtrlNacksSent", a.CtrlNacksSent, paritySenderCtrlNacks)
	check("receiver DataFramesRecv", b.DataFramesRecv, parityRecvFramesRecv)
	check("receiver DataBytesRecv", b.DataBytesRecv, parityRecvBytesRecv)
	check("receiver ReadsServed", b.ReadsServed, parityRecvReadsServed)
	check("receiver Notifies", b.Notifies, parityRecvNotifies)
	check("receiver Duplicates", b.Duplicates, parityRecvDuplicates)
	check("receiver OOOArrivals", b.OOOArrivals, parityRecvOOOArrivals)
	check("receiver CtrlNacksSent", b.CtrlNacksSent, parityRecvCtrlNacks)
	if t.Failed() {
		t.Logf("full sender stats: %+v", a)
		t.Logf("full receiver stats: %+v", b)
	}
}
