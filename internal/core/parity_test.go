package core_test

// Golden parity between the options-struct Op API and the legacy
// positional RDMAOperation wrapper: the wrapper delegates to MustDoOn,
// so an identical workload issued through either surface must produce
// bit-identical simulations — same virtual end time, same protocol
// statistics on both endpoints — even on lossy, reordering two-rail
// hardware. This file is the one sanctioned caller of RDMAOperation
// outside the compat wrapper itself (the CI ratchet greps for others).

import (
	"testing"

	"multiedge/internal/cluster"
	"multiedge/internal/core"
	"multiedge/internal/frame"
	"multiedge/internal/sim"
)

// parityOp is one step of the parity workload.
type parityOp struct {
	remote, local uint64
	size          int
	kind          frame.OpType
	flags         frame.OpFlags
	wait          bool
}

// parityWorkload mixes sizes, kinds and every flag across both rails.
func parityWorkload(src, dst uint64) []parityOp {
	return []parityOp{
		{dst, src, 64, frame.OpWrite, 0, false},
		{dst + 64, src, 9000, frame.OpWrite, frame.FenceAfter, false},
		{dst, src, 8, frame.OpWrite, frame.FenceBefore | frame.Notify, false},
		{dst + 64*1024, src + 128*1024, 4096, frame.OpRead, 0, true},
		{dst, src, 200 * 1024, frame.OpWrite, 0, false},
		{dst + 32, src, 0, frame.OpWrite, frame.Notify, false},
		{dst + 128, src, 1500, frame.OpWrite, frame.Solicit, true},
		{dst, src, 32 * 1024, frame.OpWrite, frame.FenceBefore | frame.FenceAfter, true},
	}
}

func runParity(t *testing.T, issue func(*sim.Proc, *core.Conn, parityOp) *core.Handle) (sim.Time, core.Stats, core.Stats) {
	t.Helper()
	cfg := cluster.TwoLinkUnordered1G(0)
	cfg.Link.LossProb = 0.03
	cfg.Seed = 271
	cfg.Nodes = 2
	cl := cluster.New(cfg)
	c01, c10 := cl.Pair()
	const n = 256 * 1024
	src := cl.Nodes[0].EP.Alloc(n)
	dst := cl.Nodes[1].EP.Alloc(n)
	for i := range cl.Nodes[0].EP.Mem()[src : src+n] {
		cl.Nodes[0].EP.Mem()[src+uint64(i)] = byte(i * 13)
	}
	cl.Env.Go("sender", func(p *sim.Proc) {
		var hs []*core.Handle
		for _, op := range parityWorkload(src, dst) {
			h := issue(p, c01, op)
			if op.wait {
				h.Wait(p)
			} else {
				hs = append(hs, h)
			}
		}
		for _, h := range hs {
			h.Wait(p)
		}
	})
	cl.Env.Go("receiver", func(p *sim.Proc) {
		c10.WaitNotify(p)
		c10.WaitNotify(p)
	})
	end := cl.Env.RunUntil(30 * sim.Second)
	return end, cl.Nodes[0].EP.Stats, cl.Nodes[1].EP.Stats
}

func TestOpAPIParityWithLegacy(t *testing.T) {
	tLegacy, aLegacy, bLegacy := runParity(t, func(p *sim.Proc, c *core.Conn, op parityOp) *core.Handle {
		return c.RDMAOperation(p, op.remote, op.local, op.size, op.kind, op.flags)
	})
	tOp, aOp, bOp := runParity(t, func(p *sim.Proc, c *core.Conn, op parityOp) *core.Handle {
		return c.MustDo(p, core.Op{Remote: op.remote, Local: op.local, Size: op.size, Kind: op.kind, Flags: op.flags})
	})
	if tLegacy != tOp {
		t.Errorf("end time diverged: legacy %v vs Op %v", tLegacy, tOp)
	}
	if aLegacy != aOp {
		t.Errorf("sender stats diverged:\nlegacy %+v\nOp     %+v", aLegacy, aOp)
	}
	if bLegacy != bOp {
		t.Errorf("receiver stats diverged:\nlegacy %+v\nOp     %+v", bLegacy, bOp)
	}
}
