// Package core implements MultiEdge itself: the connection-oriented,
// edge-based communication protocol of IPPS'07 §2. It provides
// RDMA-style remote read and write into a peer's address space,
// end-to-end sliding-window flow control with piggy-backed and delayed
// acknowledgements, NACK-based retransmission, transparent striping of
// frames across multiple physical links (spatial parallelism), and the
// paper's backward/forward fence ordering API.
//
// The engine is event-driven and runs against the modelled substrate in
// internal/phys, charging its work to the modelled CPUs of
// internal/hostmodel. Applications interact through Endpoint and Conn
// from simulated processes (sim.Proc).
package core

import "multiedge/internal/sim"

// Config holds the protocol parameters. The paper fixes the flow-control
// window at compile time (§2.4); here it is a field so experiments can
// sweep it.
type Config struct {
	// Window is the sliding-window size in frames per connection
	// direction.
	Window int
	// AckEvery is the delayed-acknowledgement threshold: an explicit
	// ACK is sent after this many unacknowledged data frames when no
	// reverse traffic piggy-backs one (§2.4).
	AckEvery int
	// AckDelay bounds how long an acknowledgement may be deferred.
	AckDelay sim.Time
	// NackDelay is the loss-detection timescale: a missing sequence
	// number is NACKed once it has been absent for NackDelay/4 while
	// later frames keep arriving, or NackDelay/8 when prodded by a
	// duplicate or timer. It must comfortably exceed the few-microsecond
	// reordering that multi-link round-robin introduces, or spurious
	// retransmissions defeat spatial parallelism.
	NackDelay sim.Time
	// RTO is the coarse retransmission timeout of §2.4: if no positive
	// acknowledgement progress happens for this long while frames are
	// outstanding, the sender retransmits the last transmitted frame.
	// With adaptive mode enabled (RTOMax > 0) this becomes the initial
	// timeout only; the effective value tracks the measured RTT.
	RTO sim.Time
	// RTOMax enables adaptive retransmission timing: when positive, the
	// effective timeout follows a per-connection Jacobson estimate
	// (SRTT + 4*RTTVAR from ack timestamps, Karn-filtered to first
	// transmissions), doubles on each consecutive expiry, and is clamped
	// to [RTOMin, RTOMax]. Zero keeps the paper's fixed RTO — the
	// default, because the go-back-N ablation's repair cadence is part
	// of the pinned results (its clean runs are RTO-paced).
	RTOMax sim.Time
	// RTOMin floors the adaptive timeout. Zero falls back to RTO, so
	// enabling adaptation can only slow a timer down unless a tighter
	// floor is requested explicitly.
	RTOMin sim.Time
	// MaxRetries is the peer-failure retry budget: after this many
	// consecutive timeout expiries without any acknowledgement progress
	// the connection transitions to Failed and every queued or in-flight
	// operation completes with ErrPeerDead. 0 (the default) disables the
	// budget and leaves detection to DeadInterval: with the fixed RTO a
	// small expiry count spans only milliseconds and would condemn live
	// links under heavy loss, whereas with adaptive backoff (RTOMax > 0)
	// each retry doubles the wait and a small budget is meaningful.
	// MaxRetries also bounds connection-setup and close-handshake
	// retries, which otherwise repeat forever against a dead host.
	MaxRetries int
	// DeadInterval bounds how long a connection tolerates total silence:
	// if frames are outstanding (or heartbeats are enabled) and no
	// progress is observed for DeadInterval, the peer is declared dead.
	// 0 disables the bound.
	DeadInterval sim.Time
	// HeartbeatInterval enables idle-side liveness: an established
	// connection that has not transmitted for this long sends a
	// lightweight Heartbeat frame, and a connection that has heard
	// nothing for DeadInterval fails even with no traffic of its own.
	// 0 (the default) disables heartbeats entirely, so benchmark runs
	// carry no extra frames.
	HeartbeatInterval sim.Time
	// ConnRetry is the connection-setup retransmission interval.
	ConnRetry sim.Time
	// Strict applies every frame in exact sequence order at the
	// receiver, buffering out-of-order arrivals (the paper's 2L-1G
	// configuration, where all operations are strictly ordered).
	Strict bool
	// ByteStripe enables the byte-level-parallelism baseline: each
	// MTU's worth of payload is sliced across all links as smaller
	// coupled sub-frames instead of whole frames alternating links
	// (§1 discusses why this scales poorly).
	ByteStripe bool
	// GoBackN replaces selective repeat + NACK with a go-back-N ARQ
	// baseline: the receiver accepts only in-order frames and the
	// sender retransmits everything outstanding on timeout.
	GoBackN bool
	// AdaptiveStripe replaces round-robin link selection with
	// least-backlog selection: each frame goes to the eligible link
	// whose transmit wire will free up first. Equivalent to round-robin
	// on homogeneous rails, but on heterogeneous ones (a 1-GbE rail
	// next to a 10-GbE rail) it delivers the combined rate where
	// round-robin is limited to 2x the slowest rail (an extension
	// beyond IPPS'07, which evaluates identical rails).
	AdaptiveStripe bool
	// MemBytes is the size of each endpoint's remotely accessible
	// address space.
	MemBytes int
	// Offload models the paper's §6 future-work hybrid: per-frame
	// protocol processing runs on a NIC engine instead of the host
	// protocol CPU (each unit of work costs OffloadFactor more on the
	// slower embedded cores, but the host is freed), and payload moves
	// by direct DMA between user memory and the wire (no host copies
	// are charged).
	Offload bool
	// OffloadFactor scales per-frame work on the NIC engine (default 2).
	OffloadFactor int
	// DeadLinkThreshold is the number of repair events (frames NACKed or
	// timed out) attributed to one link without an intervening
	// acknowledged frame on it, after which the sender declares the link
	// dead and stops striping new frames onto it. 0 disables detection.
	// Dead links are probed with a single in-flight frame every
	// LinkProbeInterval and re-admitted as soon as any frame sent on
	// them is acknowledged, so a repaired cable heals transparently.
	DeadLinkThreshold int
	// LinkProbeInterval is how often a dead link is risked one data
	// frame to discover that it has come back.
	LinkProbeInterval sim.Time
	// LinkStaleAge is the receive-side counterpart of failure handling:
	// the per-link FIFO loss-detection rule normally refuses to NACK a
	// sequence number until every link has delivered a later frame, but
	// a hard-failed link never delivers anything and would veto loss
	// detection forever. A link that has been silent for LinkStaleAge
	// while gaps exist is presumed empty or dead and stops vetoing.
	// It must comfortably exceed the worst cross-link queue skew.
	LinkStaleAge sim.Time
	// EnforceRegistration makes operation initiation require the local
	// buffer to lie within a region registered with RegisterMemory
	// (IPPS'07 §2.2 provides registration primitives; receive buffers
	// never need registration). Off by default for the paper's
	// transparent mode.
	EnforceRegistration bool
	// UseSQ routes the upper layers' many-small-ops phases (DSM
	// write-notice flushes, message control/credit updates, mirror
	// commit records) through the submission-queue path: descriptors
	// are posted cheaply and issued under one batched doorbell charge
	// (Conn.Post / Conn.Ring) instead of a full kernel crossing each.
	// Off by default: every existing run stays bit-identical.
	UseSQ bool
	// SchedQueue replaces the protocol thread's O(conns) round-robin
	// scans for control and data work with explicit FIFO service queues:
	// a connection enqueues itself when it gains work and the thread
	// pops the head, so per-step cost is O(1) regardless of how many
	// connections the endpoint carries. Service order is still fair
	// (a connection re-enqueues at the tail after each frame) but
	// differs from the scan order, so the flag is off by default to
	// keep the pinned golden results byte-identical.
	SchedQueue bool
	// TimerWheelTick coalesces the per-connection ACK, NACK, RTO and
	// heartbeat timers into one per-endpoint timer wheel with this tick
	// granularity: the event heap carries at most one event per occupied
	// tick bucket instead of O(conns) timer events. Firing times round
	// up to the next tick boundary, which perturbs timer-paced schedules
	// slightly, so 0 (plain heap timers, the pinned behavior) is the
	// default. 50µs is a good value for fan-in runs: ~1% of AckDelay
	// rounding error, and hundreds of conns share each bucket.
	TimerWheelTick sim.Time
	// RxBurst, when greater than 1, batches receive delivery: one
	// protocol-thread wake drains up to RxBurst frames from the NIC
	// rings and dispatches them back-to-back under a single summed CPU
	// charge, instead of one scheduler event per frame. This amortizes
	// event overhead under receive-heavy load at the cost of coarser
	// interleaving between receive and transmit service, which perturbs
	// schedules; 0 (or 1) keeps the frame-at-a-time NAPI loop, the
	// pinned byte-identical behavior. Delivery semantics are unchanged
	// either way (see TestRxBurstParity).
	RxBurst int
	// Reconnect enables the supervised recovery layer: instead of a
	// terminal Failed state, peer death parks the connection in
	// Reconnecting, an endpoint supervisor redials with capped
	// exponential backoff, the handshake negotiates a fresh incarnation
	// (stamped into every frame and fenced at the receiver, so frames
	// from the dead epoch — duplicated, delayed in a deep phys queue, or
	// replayed across a rail Restore — are dropped and counted in
	// StaleEpochDrops), and the journal of incomplete operations is
	// replayed: writes re-issued from local memory, reads re-requested.
	// A per-op applied high-water mark on the receiver makes overlapping
	// replayed writes exactly-once. Ops that carried a Deadline still
	// fail with ErrDeadlineExceeded, and ops on a connection that
	// exhausts MaxReconnects fail with ErrPeerDead, exactly as without
	// recovery. Off by default so every pinned golden stays
	// byte-identical (incarnation bytes stay zero on the wire).
	Reconnect bool
	// MaxReconnects bounds how many consecutive reconnect attempts the
	// supervisor makes before giving up and declaring the peer dead for
	// real. 0 (with Reconnect on) means the default budget of 8.
	MaxReconnects int
	// ReconnectBackoff is the initial supervisor redial delay; each
	// failed attempt doubles it up to ReconnectBackoffMax. Zero values
	// default to ConnRetry and 32*ConnRetry respectively.
	ReconnectBackoff    sim.Time
	ReconnectBackoffMax sim.Time
	// CoalesceLimit enables small-op frame coalescing on the doorbell
	// path: consecutive posted writes of at most this many bytes to the
	// same peer share MultiData frames, amortizing per-frame protocol
	// and wire overhead. 0 disables coalescing (each posted op gets its
	// own frames). Only Ring-issued operations are ever coalesced.
	CoalesceLimit int
	// QoS enables multi-tenant quality of service: each entry defines
	// one traffic class (a tenant), connections and operations are
	// tagged with a class index (Conn.SetClass / Op.Class), and the
	// endpoint's scheduler serves data frames by deficit-weighted fair
	// queueing across classes instead of flat round-robin. Per-class
	// token-bucket rate limits and submission quotas (see QoSClass)
	// bound how much of the endpoint a single tenant can occupy, so an
	// elephant-flow tenant degrades gracefully — throttled or paced —
	// instead of starving everyone else. Requires SchedQueue (the fair
	// queues extend the FIFO scheduler; cluster.Config.Validate rejects
	// QoS without it). Empty (the default) disables the layer entirely
	// and keeps every pinned golden byte-identical.
	QoS []QoSClass
	// CongestionControl enables the end-to-end congestion layer: an AIMD
	// congestion window per connection sits between the scheduler and the
	// wire (fresh frames AND retransmissions respect it), ECN marks from
	// congested switch queues (cluster.Config.EcnThreshold) echoed in
	// acks cut the window before drop-tail fires, retransmission timeouts
	// halve it, and per-rail RTT estimates weight the striping decision
	// away from congested rails. When the window is exhausted, admission
	// backpressure kicks in with the QoS quota contract: Do blocks
	// honoring Op.Deadline, Post fails fast with ErrThrottled. Requires
	// SchedQueue (cluster.Config.Validate rejects the combination
	// without it). Disabled (the zero value) keeps every pinned golden
	// byte-identical.
	CongestionControl CCConfig
}

// CCConfig parameterizes the per-connection AIMD congestion controller.
// The zero value disables the layer; with Enable set, zero-valued bounds
// take the documented defaults.
type CCConfig struct {
	// Enable turns the congestion controller on.
	Enable bool
	// InitWindow is the initial congestion window in frames. 0 defaults
	// to 16 (slow enough that 64 fan-in senders do not instantly
	// overflow a commodity switch queue, fast enough to probe up within
	// a few RTTs).
	InitWindow int
	// MinWindow floors the window under repeated cuts so a connection
	// always keeps probing. 0 defaults to 2.
	MinWindow int
	// MaxWindow caps additive increase. 0 defaults to Config.Window
	// (the flow-control window already bounds the wire; cwnd beyond it
	// is meaningless).
	MaxWindow int
	// Backlog bounds how many operations a connection may queue while
	// its congestion window is exhausted before admission backpressure
	// (blocking Do / fail-fast Post) engages. 0 defaults to 64.
	Backlog int
	// ProbeInterval is how often a multi-rail connection measures each
	// rail's own round trip with a probe/echo exchange. Cumulative
	// acknowledgements cannot split rails — the ack only advances when
	// the slowest rail's interleaved frames have arrived, so every rail
	// appears equally slow — and the weighted rail scheduler needs the
	// true split to steer load off a congested rail. 0 defaults to
	// 1ms; probes run only while the controller is enabled and the
	// connection stripes more than one link.
	ProbeInterval sim.Time
}

// ccOn reports whether the congestion controller is enabled.
func (c *Config) ccOn() bool { return c.CongestionControl.Enable }

// ccInit returns the effective initial congestion window.
func (c *Config) ccInit() int {
	cw := c.CongestionControl.InitWindow
	if cw <= 0 {
		cw = 16
	}
	if max := c.ccMax(); cw > max {
		cw = max
	}
	return cw
}

// ccMin returns the effective congestion-window floor.
func (c *Config) ccMin() int {
	if m := c.CongestionControl.MinWindow; m > 0 {
		return m
	}
	return 2
}

// ccMax returns the effective congestion-window cap.
func (c *Config) ccMax() int {
	if m := c.CongestionControl.MaxWindow; m > 0 {
		return m
	}
	return c.Window
}

// ccProbeIvl returns the effective per-rail probe interval.
func (c *Config) ccProbeIvl() sim.Time {
	if p := c.CongestionControl.ProbeInterval; p > 0 {
		return p
	}
	return sim.Millisecond
}

// ccBacklog returns the op backlog bound admission backpressure uses.
func (c *Config) ccBacklog() int {
	if b := c.CongestionControl.Backlog; b > 0 {
		return b
	}
	return 64
}

// QoSClass configures one traffic class (tenant) of the QoS layer.
// Class 0 is the default class every untagged connection and operation
// belongs to; give it an entry like any other. Zero-value quota fields
// mean "unlimited" so a class can be weighted without being capped.
type QoSClass struct {
	// Weight is the class's share of data-frame service under
	// deficit-weighted fair queueing: when every class is backlogged,
	// class i receives Weight_i / ΣWeight of the endpoint's transmit
	// slots (byte-denominated, so large frames consume proportionally
	// more deficit). Must be >= 1.
	Weight int
	// RateBps, when positive, caps the class's data-payload rate with a
	// token bucket of this refill rate (bytes per second). All data
	// transmissions, retransmissions included, draw from the bucket;
	// control frames (acks/nacks) are never throttled — repairing the
	// window is what un-blocks everyone else.
	RateBps int64
	// Burst is the token bucket's capacity in bytes. Zero with a
	// positive RateBps defaults to 64 KiB.
	Burst int
	// MaxQueued, when positive, bounds how many operations the class may
	// have admitted (issued or posted) but not yet completed at one
	// endpoint. Over-quota fail-fast submissions (Post) return
	// ErrThrottled; blocking submissions (Do) wait for room, honoring
	// Op.Deadline.
	MaxQueued int
	// MaxQueuedBytes, when positive, bounds the class's admitted but
	// uncompleted payload bytes — the journal/kernel-buffer memory a
	// tenant may pin — with the same backpressure semantics as
	// MaxQueued.
	MaxQueuedBytes int
}

// reconnectBudget is the effective MaxReconnects: the configured value,
// or 8 attempts when unset.
func (c *Config) reconnectBudget() int {
	if c.MaxReconnects > 0 {
		return c.MaxReconnects
	}
	return 8
}

// reconnectBackoff returns the initial redial delay and its cap.
func (c *Config) reconnectBackoff() (base, max sim.Time) {
	base, max = c.ReconnectBackoff, c.ReconnectBackoffMax
	if base <= 0 {
		base = c.ConnRetry
	}
	if base <= 0 {
		base = 5 * sim.Millisecond
	}
	if max <= 0 {
		max = 32 * base
	}
	return base, max
}

// DefaultConfig returns the configuration used throughout the paper's
// reproduction runs.
func DefaultConfig() Config {
	return Config{
		Window:            128,
		AckEvery:          32,
		AckDelay:          500 * sim.Microsecond,
		NackDelay:         200 * sim.Microsecond,
		RTO:               2 * sim.Millisecond,
		DeadInterval:      sim.Second,
		ConnRetry:         5 * sim.Millisecond,
		MemBytes:          16 << 20,
		DeadLinkThreshold: 16,
		LinkProbeInterval: 10 * sim.Millisecond,
		LinkStaleAge:      1600 * sim.Microsecond,
	}
}
