package core

import "multiedge/internal/sim"

// Test hooks: white-box visibility into connection timer and gap state
// for the teardown-leak regression tests, without exporting any of it.

// PendingTimersForTest counts the connection's protocol timers that are
// still armed. After Close or failure it must be zero: a pending timer
// on a torn-down conn is exactly the leak class this suite guards
// against.
func (c *Conn) PendingTimersForTest() int {
	n := 0
	for _, t := range []interface{ Pending() bool }{
		c.ackTimer, c.nackTimer, c.rtoTimer, c.hbTimer,
		c.probeTimer, c.readGuard, c.connTimer, c.closeTimer,
		c.reconnTimer, c.reconnGiveUp,
	} {
		if t != nil && t.Pending() {
			n++
		}
	}
	return n
}

// TrackedGapsForTest returns how many missing sequence numbers the
// receive side currently tracks (bounded by maxTrackedGaps).
func (c *Conn) TrackedGapsForTest() int { return c.missingSince.size() }

// RcvSeenSizeForTest returns the live size of the receive-side dedupe
// set plus its overflow spill count. The bounded-growth regression test
// (TestRcvSeenBounded) asserts the size never exceeds the window-sized
// ring and that nothing ever spills.
func (c *Conn) RcvSeenSizeForTest() (size, overflow int) {
	return c.rcvSeen.size(), c.rcvSeen.overflowLen()
}

// GapStateForTest exposes the gap-tracking entry for one sequence
// number (the stopTimers drop-contract test stages and then asserts
// this state).
func (c *Conn) GapStateForTest(s uint32) (missing, nacked bool) {
	_, m := c.missingSince.get(s)
	_, n := c.nackedAt.get(s)
	return m, n
}

// SeedGapForTest plants gap-tracking state as if s went missing at t
// and was NACKed at t, and StopTimersForTest runs the teardown path
// under test.
func (c *Conn) SeedGapForTest(s uint32, t sim.Time) {
	c.missingSince.put(s, t)
	c.nackedAt.put(s, t)
}

// StopTimersForTest invokes the conn's timer/gap teardown directly.
func (c *Conn) StopTimersForTest() { c.stopTimers() }

// NackDueForTest returns the length of the queued NACK list (bounded by
// maxNack).
func (c *Conn) NackDueForTest() int { return len(c.nackDue) }

// CtrlStateForTest reports the pending delayed-ACK flag and NACK list
// size, the state the post-close no-frame regression stages.
func (c *Conn) CtrlStateForTest() (ackDue bool, nacks int) {
	return c.ackDue, len(c.nackDue)
}

// LocalIDForTest returns the connection's demultiplex id — the ConnID
// an incoming frame must carry to reach it. The stale-epoch property
// test crafts raw frames against it.
func (c *Conn) LocalIDForTest() uint32 { return c.localID }

// RcvStateForTest exposes the receive-side cumulative-ack point and
// accepted-frame high-water mark, so injection tests can prove a fenced
// frame touched no ARQ state.
func (c *Conn) RcvStateForTest() (rcvNxt, maxSeenPlus1 uint32) {
	return c.rcvNxt, c.maxSeenPlus1
}

// CcStateForTest exposes the live congestion window and the
// retransmissions charged against it since the last ack progress or
// RTO, so the loss-burst regression can assert the wire invariant
// retxSent <= cwnd while recovery is in flight.
func (c *Conn) CcStateForTest() (cwnd, retxSent int) { return c.cwnd, c.ccRetxSent }

// MaxNackForTest and MaxTrackedGapsForTest expose the protocol caps.
const (
	MaxNackForTest        = maxNack
	MaxTrackedGapsForTest = maxTrackedGaps
)
