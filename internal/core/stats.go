package core

import (
	"multiedge/internal/obs"
	"multiedge/internal/sim"
)

// Stats counts protocol-level events at one endpoint. The paper's §4
// network-level analysis is computed from these counters plus the NIC
// and switch counters in internal/phys.
type Stats struct {
	// Operations.
	OpsStarted   uint64
	OpsCompleted uint64
	ReadsServed  uint64
	Notifies     uint64

	// Submission-queue path.
	Doorbells       uint64 // Ring calls that issued at least one descriptor
	SQOps           uint64 // descriptors issued via doorbells
	CoalescedFrames uint64 // MultiData container frames created
	CoalescedSubOps uint64 // small writes packed into MultiData frames

	// Send path.
	DataFramesSent  uint64
	DataBytesSent   uint64 // payload bytes in data frames, first transmissions
	CtrlAcksSent    uint64 // explicit acknowledgement frames
	CtrlNacksSent   uint64 // explicit negative-acknowledgement frames
	Retransmissions uint64 // data frames transmitted again
	LinkDeadEvents  uint64 // links declared dead by the sender
	LinkRestores    uint64 // dead links re-admitted after a probed frame was acked

	// Receive path.
	DataFramesRecv uint64
	DataBytesRecv  uint64
	CtrlRecv       uint64
	Duplicates     uint64 // frames already received (ARQ dedupe)
	GbnDropped     uint64 // out-of-order frames dropped by the go-back-N baseline

	// Reordering.
	Arrivals    uint64 // data-frame arrivals considered for ordering stats
	OOOArrivals uint64 // arrivals with a higher sequence number already seen
	HeldFrames  uint64 // frames buffered awaiting order/fences
	HoldMax     int    // peak held-frame count

	// Failure handling.
	RttSamples         uint64 // ack-derived round-trip samples fed to the estimator
	RtoExpiries        uint64 // retransmission-timeout firings
	RtoBackoffMax      int    // peak consecutive-expiry depth (backoff exponent)
	PeerDeadEvents     uint64 // connections transitioned to Failed
	ResetsSent         uint64 // Reset ctrl frames emitted on peer death
	ResetsRecv         uint64 // Reset ctrl frames received (peer abandoned the conn)
	HeartbeatsSent     uint64 // idle-liveness ctrl frames sent
	HeartbeatsRecv     uint64 // idle-liveness ctrl frames received
	OpsFailed          uint64 // operations completed with an error (peer death, deadline)
	OpDeadlinesExpired uint64 // operations whose Op.Deadline released the waiter
	DupFramesDropped   uint64 // duplicate payload-bearing frames dropped before apply
	NackGapsDropped    uint64 // gaps left untracked because the missing-list cap was hit

	// Recovery (Config.Reconnect).
	StaleEpochDrops  uint64 // frames fenced for carrying a dead incarnation
	Reconnects       uint64 // supervised reconnects that re-established the conn
	ReconnectsFailed uint64 // conns that exhausted MaxReconnects and died for real
	ReplayedOps      uint64 // journaled ops re-issued after a reconnect
	ReplayedBytes    uint64 // payload bytes re-issued by replay
	Abandons         uint64 // conns terminally failed by Conn.Abandon (svc failover)

	// Multi-tenant QoS (Config.QoS). Per-class breakdowns are published
	// by the endpoint's qos collector; these flat totals feed the
	// cluster-wide aggregation and diff reports.
	QosOpsAdmitted    uint64 // operations admitted under a class quota
	QosOpsThrottled   uint64 // fail-fast submissions refused with ErrThrottled
	QosAdmissionWaits uint64 // blocking submissions that had to wait for room
	QosRateDeferrals  uint64 // scheduler visits deferred by an empty token bucket
	QosSchedFrames    uint64 // data frames dispatched by the DWFQ scheduler

	// Congestion control (Config.CongestionControl). The ECN counters
	// tick whenever marks flow (a switch threshold is armed), even with
	// the window reaction off — echoes are wire facts either way.
	EcnMarksSeen     uint64 // congestion-marked frames taken off the wire
	EcnEchoesSent    uint64 // ack-bearing frames that carried the echo flag
	EcnEchoesRecv    uint64 // echoes received back as congestion signals
	CcCwndCuts       uint64 // multiplicative decreases (ECN echo or RTO)
	CcRetxDeferred   uint64 // retransmission rounds deferred by the repair budget
	CcOpsThrottled   uint64 // fail-fast submissions refused by window backpressure
	CcAdmissionWaits uint64 // blocking submissions that waited for window room
	CcRailProbes     uint64 // per-rail RTT probes sent (multi-rail conns)

	// CPU time charged on the application CPU on behalf of the
	// protocol (operation initiation: syscall, descriptor, copy).
	AppProtoTime sim.Time
}

// ExtraFrames returns explicit-ACK + NACK + retransmitted frames: the
// paper's "extra traffic" beyond first-transmission data frames.
func (s *Stats) ExtraFrames() uint64 {
	return s.CtrlAcksSent + s.CtrlNacksSent + s.Retransmissions
}

// ExtraTrafficFraction returns extra frames as a fraction of all frames
// sent (the paper reports at most 5.5% in micro-benchmarks and 15% in
// applications).
func (s *Stats) ExtraTrafficFraction() float64 {
	total := s.DataFramesSent + s.ExtraFrames()
	if total == 0 {
		return 0
	}
	return float64(s.ExtraFrames()) / float64(total)
}

// OOOFraction returns the fraction of data-frame arrivals that were out
// of order (≈0 on single links, 45-50% under two-link round-robin in the
// paper).
func (s *Stats) OOOFraction() float64 {
	if s.Arrivals == 0 {
		return 0
	}
	return float64(s.OOOArrivals) / float64(s.Arrivals)
}

// Add accumulates other into s (for cluster-wide aggregation).
func (s *Stats) Add(o *Stats) {
	s.OpsStarted += o.OpsStarted
	s.OpsCompleted += o.OpsCompleted
	s.ReadsServed += o.ReadsServed
	s.Notifies += o.Notifies
	s.Doorbells += o.Doorbells
	s.SQOps += o.SQOps
	s.CoalescedFrames += o.CoalescedFrames
	s.CoalescedSubOps += o.CoalescedSubOps
	s.DataFramesSent += o.DataFramesSent
	s.DataBytesSent += o.DataBytesSent
	s.CtrlAcksSent += o.CtrlAcksSent
	s.CtrlNacksSent += o.CtrlNacksSent
	s.Retransmissions += o.Retransmissions
	s.LinkDeadEvents += o.LinkDeadEvents
	s.LinkRestores += o.LinkRestores
	s.DataFramesRecv += o.DataFramesRecv
	s.DataBytesRecv += o.DataBytesRecv
	s.CtrlRecv += o.CtrlRecv
	s.Duplicates += o.Duplicates
	s.GbnDropped += o.GbnDropped
	s.Arrivals += o.Arrivals
	s.OOOArrivals += o.OOOArrivals
	s.HeldFrames += o.HeldFrames
	if o.HoldMax > s.HoldMax {
		s.HoldMax = o.HoldMax
	}
	s.RttSamples += o.RttSamples
	s.RtoExpiries += o.RtoExpiries
	if o.RtoBackoffMax > s.RtoBackoffMax {
		s.RtoBackoffMax = o.RtoBackoffMax
	}
	s.PeerDeadEvents += o.PeerDeadEvents
	s.ResetsSent += o.ResetsSent
	s.ResetsRecv += o.ResetsRecv
	s.HeartbeatsSent += o.HeartbeatsSent
	s.HeartbeatsRecv += o.HeartbeatsRecv
	s.OpsFailed += o.OpsFailed
	s.OpDeadlinesExpired += o.OpDeadlinesExpired
	s.DupFramesDropped += o.DupFramesDropped
	s.NackGapsDropped += o.NackGapsDropped
	s.StaleEpochDrops += o.StaleEpochDrops
	s.Reconnects += o.Reconnects
	s.ReconnectsFailed += o.ReconnectsFailed
	s.ReplayedOps += o.ReplayedOps
	s.ReplayedBytes += o.ReplayedBytes
	s.Abandons += o.Abandons
	s.QosOpsAdmitted += o.QosOpsAdmitted
	s.QosOpsThrottled += o.QosOpsThrottled
	s.QosAdmissionWaits += o.QosAdmissionWaits
	s.QosRateDeferrals += o.QosRateDeferrals
	s.QosSchedFrames += o.QosSchedFrames
	s.EcnMarksSeen += o.EcnMarksSeen
	s.EcnEchoesSent += o.EcnEchoesSent
	s.EcnEchoesRecv += o.EcnEchoesRecv
	s.CcCwndCuts += o.CcCwndCuts
	s.CcRetxDeferred += o.CcRetxDeferred
	s.CcOpsThrottled += o.CcOpsThrottled
	s.CcAdmissionWaits += o.CcAdmissionWaits
	s.CcRailProbes += o.CcRailProbes
	s.AppProtoTime += o.AppProtoTime
}

// Collector publishes the endpoint's counters into an obs.Registry at
// gather time. Polling the live struct (rather than double-counting on
// the hot path) keeps instrumentation free when observability is off
// and guarantees the registry always matches these legacy counters.
func (s *Stats) Collector(node int) obs.Collector {
	nl := obs.NodeLabel(node)
	return func(emit func(obs.Sample)) {
		c := func(name string, v uint64) {
			emit(obs.Sample{Name: name, Labels: []obs.Label{nl}, Value: float64(v), Type: obs.TypeCounter})
		}
		c("core_ops_started_total", s.OpsStarted)
		c("core_ops_completed_total", s.OpsCompleted)
		c("core_reads_served_total", s.ReadsServed)
		c("core_notifies_total", s.Notifies)
		c("core_doorbells_total", s.Doorbells)
		c("core_sq_ops_total", s.SQOps)
		c("core_coalesced_frames_total", s.CoalescedFrames)
		c("core_coalesced_subops_total", s.CoalescedSubOps)
		c("core_data_frames_sent_total", s.DataFramesSent)
		c("core_data_bytes_sent_total", s.DataBytesSent)
		c("core_ctrl_acks_sent_total", s.CtrlAcksSent)
		c("core_ctrl_nacks_sent_total", s.CtrlNacksSent)
		c("core_retransmissions_total", s.Retransmissions)
		c("core_link_dead_events_total", s.LinkDeadEvents)
		c("core_link_restores_total", s.LinkRestores)
		c("core_data_frames_recv_total", s.DataFramesRecv)
		c("core_data_bytes_recv_total", s.DataBytesRecv)
		c("core_ctrl_recv_total", s.CtrlRecv)
		c("core_duplicates_total", s.Duplicates)
		c("core_gbn_dropped_total", s.GbnDropped)
		c("core_arrivals_total", s.Arrivals)
		c("core_ooo_arrivals_total", s.OOOArrivals)
		c("core_held_frames_total", s.HeldFrames)
		c("core_rtt_samples_total", s.RttSamples)
		c("core_rto_expiries_total", s.RtoExpiries)
		c("core_peer_dead_events_total", s.PeerDeadEvents)
		c("core_resets_sent_total", s.ResetsSent)
		c("core_resets_recv_total", s.ResetsRecv)
		c("core_heartbeats_sent_total", s.HeartbeatsSent)
		c("core_heartbeats_recv_total", s.HeartbeatsRecv)
		c("core_ops_failed_total", s.OpsFailed)
		c("core_op_deadlines_expired_total", s.OpDeadlinesExpired)
		c("core_dup_frames_dropped_total", s.DupFramesDropped)
		c("core_nack_gaps_dropped_total", s.NackGapsDropped)
		c("core_stale_epoch_drops_total", s.StaleEpochDrops)
		c("core_reconnects_total", s.Reconnects)
		c("core_reconnects_failed_total", s.ReconnectsFailed)
		c("core_replayed_ops_total", s.ReplayedOps)
		c("core_replayed_bytes_total", s.ReplayedBytes)
		c("core_abandons_total", s.Abandons)
		c("core_qos_ops_admitted_total", s.QosOpsAdmitted)
		c("core_qos_ops_throttled_total", s.QosOpsThrottled)
		c("core_qos_admission_waits_total", s.QosAdmissionWaits)
		c("core_qos_rate_deferrals_total", s.QosRateDeferrals)
		c("core_qos_sched_frames_total", s.QosSchedFrames)
		c("cc_ecn_marks_seen_total", s.EcnMarksSeen)
		c("cc_ecn_echoes_sent_total", s.EcnEchoesSent)
		c("cc_ecn_echoes_recv_total", s.EcnEchoesRecv)
		c("cc_cwnd_cuts_total", s.CcCwndCuts)
		c("cc_retx_deferred_total", s.CcRetxDeferred)
		c("cc_ops_throttled_total", s.CcOpsThrottled)
		c("cc_admission_waits_total", s.CcAdmissionWaits)
		c("cc_rail_probes_total", s.CcRailProbes)
		emit(obs.Sample{Name: "core_hold_max", Labels: []obs.Label{nl},
			Value: float64(s.HoldMax), Type: obs.TypeGauge})
		emit(obs.Sample{Name: "core_rto_backoff_max", Labels: []obs.Label{nl},
			Value: float64(s.RtoBackoffMax), Type: obs.TypeGauge})
		emit(obs.Sample{Name: "core_app_proto_time_ns", Labels: []obs.Label{nl},
			Value: float64(s.AppProtoTime), Type: obs.TypeCounter})
	}
}
