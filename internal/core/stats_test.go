package core_test

import (
	"bytes"
	"testing"

	"multiedge/internal/cluster"
	"multiedge/internal/core"
	"multiedge/internal/frame"
	"multiedge/internal/obs"
	"multiedge/internal/sim"
)

func TestStatsFractionsZeroDenominator(t *testing.T) {
	var s core.Stats
	if f := s.ExtraTrafficFraction(); f != 0 {
		t.Errorf("ExtraTrafficFraction on zero stats = %v, want 0", f)
	}
	if f := s.OOOFraction(); f != 0 {
		t.Errorf("OOOFraction on zero stats = %v, want 0", f)
	}
	// Extra frames with no data frames: fraction must be 1, not NaN/Inf.
	s.CtrlAcksSent = 3
	if f := s.ExtraTrafficFraction(); f != 1 {
		t.Errorf("ExtraTrafficFraction with only extra frames = %v, want 1", f)
	}
	s.DataFramesSent = 9
	if f := s.ExtraTrafficFraction(); f != 0.25 {
		t.Errorf("ExtraTrafficFraction = %v, want 0.25", f)
	}
	s.Arrivals, s.OOOArrivals = 8, 2
	if f := s.OOOFraction(); f != 0.25 {
		t.Errorf("OOOFraction = %v, want 0.25", f)
	}
}

func TestStatsAddAggregation(t *testing.T) {
	a := core.Stats{
		OpsStarted: 1, OpsCompleted: 1, DataFramesSent: 10, DataBytesSent: 1000,
		CtrlAcksSent: 2, Retransmissions: 1, Arrivals: 5, OOOArrivals: 1,
		HeldFrames: 4, HoldMax: 7, AppProtoTime: 100 * sim.Nanosecond,
	}
	b := core.Stats{
		OpsStarted: 2, DataFramesSent: 20, DataBytesSent: 2000, CtrlNacksSent: 3,
		Arrivals: 15, OOOArrivals: 6, HeldFrames: 1, HoldMax: 3,
		AppProtoTime: 50 * sim.Nanosecond,
	}
	a.Add(&b)
	if a.OpsStarted != 3 || a.DataFramesSent != 30 || a.DataBytesSent != 3000 {
		t.Errorf("counter sums wrong: %+v", a)
	}
	if a.CtrlAcksSent != 2 || a.CtrlNacksSent != 3 || a.Retransmissions != 1 {
		t.Errorf("ctrl sums wrong: %+v", a)
	}
	if a.Arrivals != 20 || a.OOOArrivals != 7 || a.HeldFrames != 5 {
		t.Errorf("arrival sums wrong: %+v", a)
	}
	// HoldMax is a peak, not a sum: max-merge.
	if a.HoldMax != 7 {
		t.Errorf("HoldMax = %d, want 7 (max-merge, not sum)", a.HoldMax)
	}
	c := core.Stats{HoldMax: 11}
	a.Add(&c)
	if a.HoldMax != 11 {
		t.Errorf("HoldMax = %d, want 11 after merging a larger peak", a.HoldMax)
	}
	if a.AppProtoTime != 150*sim.Nanosecond {
		t.Errorf("AppProtoTime = %v, want 150ns", a.AppProtoTime)
	}
}

// lossyTwoRailRun streams data over the lossy unordered two-rail config
// and returns the cluster (fully drained).
func lossyTwoRailRun(t *testing.T, o cluster.ObsOptions) *cluster.Cluster {
	t.Helper()
	cfg := cluster.TwoLinkUnordered1G(2)
	cfg.Link.LossProb = 0.02
	cfg.Seed = 7
	cfg.Obs = o
	cl, c01, _ := pairCluster(t, cfg)
	const n = 256 * 1024
	src := cl.Nodes[0].EP.Alloc(n)
	dst := cl.Nodes[1].EP.Alloc(n)
	fill(cl.Nodes[0].EP.Mem()[src:src+n], 3)
	cl.Env.Go("xfer", func(p *sim.Proc) {
		c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: n, Kind: frame.OpWrite, Flags: frame.Notify}).Wait(p)
	})
	cl.Env.Run()
	return cl
}

// TestObsMatchesLegacyStats checks the tentpole's aggregation guarantee:
// the registry's core_* totals mirror the legacy core.Stats counters
// exactly, because collectors poll the same structs at gather time.
func TestObsMatchesLegacyStats(t *testing.T) {
	cl := lossyTwoRailRun(t, cluster.ObsOptions{Metrics: true, Spans: true})
	snap := cl.Obs.Gather()
	for i, node := range cl.Nodes {
		st := &node.EP.Stats
		for _, c := range []struct {
			name string
			want uint64
		}{
			{"core_ops_started_total", st.OpsStarted},
			{"core_ops_completed_total", st.OpsCompleted},
			{"core_data_frames_sent_total", st.DataFramesSent},
			{"core_data_bytes_sent_total", st.DataBytesSent},
			{"core_ctrl_acks_sent_total", st.CtrlAcksSent},
			{"core_ctrl_nacks_sent_total", st.CtrlNacksSent},
			{"core_retransmissions_total", st.Retransmissions},
			{"core_data_frames_recv_total", st.DataFramesRecv},
			{"core_data_bytes_recv_total", st.DataBytesRecv},
			{"core_duplicates_total", st.Duplicates},
			{"core_arrivals_total", st.Arrivals},
			{"core_ooo_arrivals_total", st.OOOArrivals},
			{"core_held_frames_total", st.HeldFrames},
		} {
			got, ok := snap.Get(c.name, obs.NodeLabel(i))
			if !ok {
				t.Fatalf("node %d: %s missing from snapshot", i, c.name)
			}
			if got != float64(c.want) {
				t.Errorf("node %d: %s = %v, legacy Stats say %d", i, c.name, got, c.want)
			}
		}
		hm, ok := snap.Get("core_hold_max", obs.NodeLabel(i))
		if !ok || hm != float64(st.HoldMax) {
			t.Errorf("node %d: core_hold_max = %v (%v), legacy %d", i, hm, ok, st.HoldMax)
		}
	}
	// The run must actually have exercised the lossy two-rail paths, or
	// the equalities above prove nothing.
	st := &cl.Nodes[1].EP.Stats
	if st.OOOArrivals == 0 {
		t.Error("no out-of-order arrivals on unordered two-rail run")
	}
	if cl.Nodes[0].EP.Stats.Retransmissions == 0 {
		t.Error("no retransmissions under 2% loss")
	}
}

// TestObsDoesNotPerturbRun checks the zero-perturbation guarantee:
// enabling metrics+spans changes neither the virtual-time outcome nor
// any protocol counter of a lossy run.
func TestObsDoesNotPerturbRun(t *testing.T) {
	off := lossyTwoRailRun(t, cluster.ObsOptions{})
	on := lossyTwoRailRun(t, cluster.ObsOptions{Metrics: true, Spans: true})
	if off.Obs != nil {
		t.Fatal("zero ObsOptions built a registry")
	}
	if got, want := on.Env.Now(), off.Env.Now(); got != want {
		t.Fatalf("virtual end time differs with obs on: %v vs %v", got, want)
	}
	for i := range off.Nodes {
		a, b := off.Nodes[i].EP.Stats, on.Nodes[i].EP.Stats
		if a != b {
			t.Errorf("node %d stats differ with obs on:\noff %+v\non  %+v", i, a, b)
		}
	}
}

// TestClusterChromeTraceDeterministic: equal seeds must export
// byte-identical traces from full protocol runs, not just from the
// synthetic registry tests in internal/obs.
func TestClusterChromeTraceDeterministic(t *testing.T) {
	a := lossyTwoRailRun(t, cluster.ObsOptions{Metrics: true, Spans: true}).Obs.ChromeTrace()
	b := lossyTwoRailRun(t, cluster.ObsOptions{Metrics: true, Spans: true}).Obs.ChromeTrace()
	if !bytes.Equal(a, b) {
		t.Fatal("ChromeTrace differs between identical runs")
	}
	for _, want := range []string{`"frame-retx"`, `"nack-repair"`, `"frame-tx"`, `"rx-apply"`} {
		if !bytes.Contains(a, []byte(want)) {
			t.Errorf("trace missing %s events", want)
		}
	}
}
