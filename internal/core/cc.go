package core

import (
	"fmt"

	"multiedge/internal/obs"
	"multiedge/internal/sim"
)

// End-to-end congestion control (Config.CongestionControl).
//
// The paper's transport assumes private point-to-point rails; behind a
// shared switch fabric its fixed Config.Window plus aggressive ARQ is
// exactly the recipe for incast collapse — many senders each push a
// full window into one bottleneck queue, the tail drops, every sender
// RTO-fires, and the synchronized retransmissions refill the queue they
// just overflowed. This layer bounds each conn's contribution with an
// AIMD congestion window sitting between the QoS/DWFQ scheduler and the
// wire (the scheduler decides whose turn it is; cwnd decides whether a
// turn may transmit at all):
//
//   - Signals. A switch output queue past its ECN threshold marks the
//     frame (phys.Frame.Ecn, out of band because the protocol header is
//     CRC-covered end to end); the receiver echoes marks on its next
//     ack-bearing frame (frame.Header.EcnEcho); RTO expiry is the
//     drop-loss signal; per-rail SRTT (conn.go) is the striping signal.
//   - Multiplicative decrease. An ECN echo or an RTO halves cwnd
//     (floor ccMin), at most once per flight: further signals are
//     ignored until sndUna passes the sndNxt recorded at the cut, so
//     one congested round trip costs one halving, not one per ack.
//     ECN cuts fire while queues are merely deep — throttling before
//     drop-tail loss, so a saturated fabric degrades to bounded queueing
//     delay instead of to RTO storms and ErrPeerDead cascades.
//   - Additive increase. Each cwnd acked frames grow the window by one
//     (the classic one-per-RTT slope), capped at ccMax.
//   - Loss recovery is paced too: at most cwnd retransmissions may
//     leave between acts of forward progress (ack advance or RTO), so a
//     loss burst can never put more repair traffic on the wire than a
//     fresh burst could. The budget re-opens on every RTO, which makes
//     a fully-blocked recovery impossible — the timer is its clock.
//   - Backpressure. When the window is spent and a full backlog of
//     operations is already queued behind it, Do blocks honoring
//     Op.Deadline and Post fails fast with ErrThrottled — the same
//     graceful-degradation contract as the QoS submission quotas.
//
// Everything here is config-gated: with Config.CongestionControl.Enable
// false, cwnd is 0/inert, effWindow is Config.Window, and no paths
// behave differently.

// ccAdmitPoll is the blocking-admission polling interval, matching the
// QoS quota wait cadence (qosAdmitPoll).
const ccAdmitPoll = 20 * sim.Microsecond

// Cut causes, recorded in RecCwndCut's B field.
const (
	ccCutEcn = iota // ECN echo: queues are deep somewhere on the path
	ccCutRto        // retransmission timeout: presumed drop loss
)

// effWindow is the sender's effective transmit window: Config.Window
// bounded by the congestion window when congestion control is on.
func (c *Conn) effWindow() int {
	w := c.ep.cfg.Window
	if c.ep.cfg.ccOn() && c.cwnd < w {
		return c.cwnd
	}
	return w
}

// ccRetxOK reports whether another retransmission fits this round
// trip's repair budget (always true with congestion control off).
func (c *Conn) ccRetxOK() bool {
	return !c.ep.cfg.ccOn() || c.ccRetxSent < c.cwnd
}

// railDec returns one outstanding-frame charge from rail li. Clamped at
// zero: epoch resets can zero the counters while late acks still walk.
func (c *Conn) railDec(li int) {
	if li >= 0 && li < len(c.railOut) && c.railOut[li] > 0 {
		c.railOut[li]--
	}
}

// ccCut is the multiplicative decrease, at most once per flight: cuts
// are suppressed until sndUna passes the sndNxt recorded by the last
// one, so each congested round trip costs a single halving.
func (c *Conn) ccCut(cause int64) {
	if !c.ep.cfg.ccOn() {
		return
	}
	if int32(c.sndUna-c.ccRecover) < 0 {
		return // still inside the flight the previous cut charged
	}
	c.cwnd /= 2
	if m := c.ep.cfg.ccMin(); c.cwnd < m {
		c.cwnd = m
	}
	c.ccRecover = c.sndNxt
	c.ccAckCredit = 0
	c.ep.Stats.CcCwndCuts++
	c.ep.recEvent(c.localID, obs.RecCwndCut, int64(c.cwnd), cause)
}

// ccOnAck credits forward progress: the retransmission budget re-opens
// and acked frames bank toward the additive increase — one extra window
// slot per cwnd acked frames.
func (c *Conn) ccOnAck(acked int) {
	c.ccRetxSent = 0
	c.ccAckCredit += acked
	for c.ccAckCredit >= c.cwnd {
		if c.cwnd >= c.ep.cfg.ccMax() {
			c.ccAckCredit = 0
			return
		}
		c.ccAckCredit -= c.cwnd
		c.cwnd++
	}
}

// ccOnRto treats a retransmission timeout as drop loss: halve the
// window (once per flight) and re-open the repair budget — every expiry
// paces a blocked recovery forward, so recovery cannot deadlock.
func (c *Conn) ccOnRto() {
	if !c.ep.cfg.ccOn() {
		return
	}
	c.ccCut(ccCutRto)
	c.ccRetxSent = 0
}

// ccOnEcnEcho reacts to the peer echoing congestion marks our data
// picked up in the fabric. The counter always ticks (echoes are wire
// facts); the window reaction is what the config gates.
func (c *Conn) ccOnEcnEcho() {
	c.ep.Stats.EcnEchoesRecv++
	c.ccCut(ccCutEcn)
}

// ccPickLink chooses the transmit rail by weighted least cost: each
// eligible rail scores (outstanding+1) × cost, where cost is the rail's
// smoothed RTT (falling back to the blended conn SRTT before the first
// per-rail sample, then to a constant) plus the local NIC's
// serialization backlog. The RTT term sees congestion anywhere along
// the path — a deep queue in a shared switch inflates it — which pure
// local-backlog striping (Config.AdaptiveStripe) cannot. Outstanding
// frames weight the score so load spreads instead of dog-piling the
// momentarily cheapest rail between RTT updates. Ties resolve by scan
// order from the round-robin cursor: the pick stays deterministic.
func (c *Conn) ccPickLink() int {
	best := -1
	var bestScore int64
	for i := 0; i < c.links; i++ {
		li := (c.rr + i) % c.links
		if c.deadLinks > 0 && c.deadLinks < c.links && c.linkDead[li] {
			continue
		}
		cost := int64(c.railSrtt[li])
		if cost == 0 {
			cost = int64(c.srtt)
		}
		if cost == 0 {
			cost = 1
		}
		cost += int64(c.ep.nics[li].OutPort().Backlog())
		score := int64(c.railOut[li]+1) * cost
		if best < 0 || score < bestScore {
			best, bestScore = li, score
		}
	}
	if best >= 0 {
		c.rr = (best + 1) % c.links
	}
	return best
}

// ---------------------------------------------------------------------
// Admission backpressure.
// ---------------------------------------------------------------------

// ccBacklogged reports whether submissions should be pushed back: the
// congestion window is spent AND a full backlog of operations is
// already queued behind it. The backlog term keeps short bursts cheap —
// pipelining past a momentarily-closed window is the normal case — and
// only sustained oversubscription reaches the caller.
func (c *Conn) ccBacklogged() bool {
	if !c.ep.cfg.ccOn() {
		return false
	}
	return c.inflight() >= c.effWindow() &&
		len(c.txOps)+len(c.sq) >= c.ep.cfg.ccBacklog()
}

// ccAdmitFast is the fail-fast admission gate (Post): over the window
// backlog returns ErrThrottled immediately, mirroring qosAdmitFast.
func (c *Conn) ccAdmitFast() error {
	if !c.ccBacklogged() {
		return nil
	}
	c.ep.Stats.CcOpsThrottled++
	c.ep.recEvent(c.localID, obs.RecCcBlock, int64(c.cwnd), 0)
	return fmt.Errorf("core: congestion window backlog to node %d: %w", c.remoteNode, ErrThrottled)
}

// ccAdmitDo is the blocking admission gate (Do/DoOn): the caller sleeps
// in the same deterministic poll loop as qosAdmitDo until the window
// opens, the connection dies, or Op.Deadline passes.
func (c *Conn) ccAdmitDo(p *sim.Proc, op Op) error {
	if !c.ccBacklogged() {
		return nil
	}
	ep := c.ep
	ep.Stats.CcAdmissionWaits++
	ep.recEvent(c.localID, obs.RecCcBlock, int64(c.cwnd), 1)
	for {
		p.Sleep(ccAdmitPoll)
		if c.failed {
			return fmt.Errorf("core: operation on failed connection to node %d: %w", c.remoteNode, c.failErr)
		}
		if c.closed {
			return fmt.Errorf("core: operation on closed connection to node %d: %w", c.remoteNode, ErrClosed)
		}
		if op.Deadline > 0 && ep.env.Now() >= op.Deadline {
			ep.Stats.OpDeadlinesExpired++
			return fmt.Errorf("core: congestion admission to node %d: %w", c.remoteNode, ErrDeadlineExceeded)
		}
		if !c.ccBacklogged() {
			return nil
		}
	}
}
