package core_test

import (
	"errors"
	"testing"

	"multiedge/internal/cluster"
	"multiedge/internal/core"
	"multiedge/internal/frame"
	"multiedge/internal/sim"
)

// qosPair builds an established 2-node pair whose node-0 endpoint runs
// the given class table.
func qosPair(t *testing.T, classes ...core.QoSClass) (*cluster.Cluster, *core.Conn) {
	t.Helper()
	cfg := cluster.OneLink1G(2)
	cfg.Core.SchedQueue = true
	cfg.Core.QoS = classes
	cl, c01, _ := pairCluster(t, cfg)
	return cl, c01
}

// drainCQ sleep-polls c's completion queue until n completions surface.
func drainCQ(p *sim.Proc, c *core.Conn, n int) {
	for got := 0; got < n; {
		if _, ok := c.PollCQ(); ok {
			got++
			continue
		}
		p.Sleep(100 * sim.Microsecond)
	}
}

// TestQoSPostFailFast pins the fail-fast admission contract: Post over
// the class's op quota returns ErrThrottled immediately (no queueing),
// and room reopens once admitted operations complete.
func TestQoSPostFailFast(t *testing.T) {
	cl, c01 := qosPair(t, core.QoSClass{Weight: 1, MaxQueued: 2})
	src := cl.Nodes[0].EP.Alloc(4 << 10)
	dst := cl.Nodes[1].EP.Alloc(4 << 10)
	op := core.Op{Remote: dst, Local: src, Size: 1 << 10, Kind: frame.OpWrite}

	cl.Env.Go("app", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			if err := c01.Post(op); err != nil {
				t.Errorf("post %d within quota: %v", i, err)
			}
		}
		if err := c01.Post(op); !errors.Is(err, core.ErrThrottled) {
			t.Errorf("post over quota = %v; want ErrThrottled", err)
		}
		if _, err := c01.Ring(p); err != nil {
			t.Errorf("ring: %v", err)
		}
		drainCQ(p, c01, 2)
		// Completion released the quota charges: admission reopens.
		if err := c01.Post(op); err != nil {
			t.Errorf("post after drain: %v", err)
		}
		if _, err := c01.Ring(p); err != nil {
			t.Errorf("ring: %v", err)
		}
		drainCQ(p, c01, 1)
		c01.Close(p)
	})
	cl.Env.RunUntil(sim.Second)
	if n := cl.Nodes[0].EP.Stats.QosOpsThrottled; n != 1 {
		t.Errorf("QosOpsThrottled = %d; want 1", n)
	}
	if n := cl.Nodes[0].EP.Stats.QosOpsAdmitted; n != 3 {
		t.Errorf("QosOpsAdmitted = %d; want 3", n)
	}
}

// TestQoSByteQuota: the byte quota binds independently of the op
// quota — one admitted operation pinning most of MaxQueuedBytes is
// enough to refuse the next.
func TestQoSByteQuota(t *testing.T) {
	cl, c01 := qosPair(t, core.QoSClass{Weight: 1, MaxQueuedBytes: 6 << 10})
	src := cl.Nodes[0].EP.Alloc(16 << 10)
	dst := cl.Nodes[1].EP.Alloc(16 << 10)
	op := core.Op{Remote: dst, Local: src, Size: 4 << 10, Kind: frame.OpWrite}

	cl.Env.Go("app", func(p *sim.Proc) {
		if err := c01.Post(op); err != nil {
			t.Errorf("first 4KiB post: %v", err)
		}
		if err := c01.Post(op); !errors.Is(err, core.ErrThrottled) {
			t.Errorf("second 4KiB post against a 6KiB byte quota = %v; want ErrThrottled", err)
		}
		if _, err := c01.Ring(p); err != nil {
			t.Errorf("ring: %v", err)
		}
		drainCQ(p, c01, 1)
		c01.Close(p)
	})
	cl.Env.RunUntil(sim.Second)
}

// TestQoSDoBlocksAndHonorsDeadline pins the blocking admission
// contract: Do over quota waits for room instead of failing; with an
// Op.Deadline it gives up with ErrDeadlineExceeded when the deadline
// passes first, and without one it proceeds as soon as the quota
// drains.
func TestQoSDoBlocksAndHonorsDeadline(t *testing.T) {
	cl, c01 := qosPair(t, core.QoSClass{Weight: 1, MaxQueued: 1})
	src := cl.Nodes[0].EP.Alloc(8 << 10)
	dst := cl.Nodes[1].EP.Alloc(8 << 10)
	op := core.Op{Remote: dst, Local: src, Size: 1 << 10, Kind: frame.OpWrite}

	cl.Env.Go("app", func(p *sim.Proc) {
		// Pin the quota with a posted-but-unrung descriptor: it holds its
		// admission charge but moves no bytes until Ring.
		if err := c01.Post(op); err != nil {
			t.Errorf("pinning post: %v", err)
		}

		dl := op
		dl.Deadline = cl.Env.Now() + 500*sim.Microsecond
		if _, err := c01.Do(p, dl); !errors.Is(err, core.ErrDeadlineExceeded) {
			t.Errorf("blocked Do with passed deadline = %v; want ErrDeadlineExceeded", err)
		}
		if now := cl.Env.Now(); now < dl.Deadline {
			t.Errorf("deadline admission failure surfaced at %v, before the %v deadline", now, dl.Deadline)
		}

		// Free the quota concurrently; the deadline-free Do must then be
		// admitted and complete.
		cl.Env.Go("drain", func(p2 *sim.Proc) {
			p2.Sleep(2 * sim.Millisecond)
			if _, err := c01.Ring(p2); err != nil {
				t.Errorf("ring: %v", err)
			}
		})
		h, err := c01.Do(p, op)
		if err != nil {
			t.Errorf("blocking Do after drain: %v", err)
		} else {
			h.Wait(p)
			if h.Err() != nil {
				t.Errorf("drained op failed: %v", h.Err())
			}
		}
		drainCQ(p, c01, 1)
		c01.Close(p)
	})
	cl.Env.RunUntil(sim.Second)
	if n := cl.Nodes[0].EP.Stats.QosAdmissionWaits; n != 2 {
		t.Errorf("QosAdmissionWaits = %d; want 2 (deadline waiter + drained waiter)", n)
	}
	if n := cl.Nodes[0].EP.Stats.OpDeadlinesExpired; n != 1 {
		t.Errorf("OpDeadlinesExpired = %d; want 1", n)
	}
}
