package core_test

import (
	"bytes"
	"testing"

	"multiedge/internal/cluster"
	"multiedge/internal/core"
	"multiedge/internal/frame"
	"multiedge/internal/sim"
)

// runBurstWorkload drives a mixed read/write workload (multi-frame
// write, a run of small writes, a read-back) under mild loss and
// returns the receiver's memory image and completion count.
func runBurstWorkload(t *testing.T, rxBurst int) ([]byte, uint64) {
	t.Helper()
	cfg := cluster.TwoLink1G(2)
	cfg.Seed = 7
	cfg.Link.LossProb = 0.01
	cfg.Core.RxBurst = rxBurst
	cl, c01, _ := pairCluster(t, cfg)
	const big = 64 * 1024
	src := cl.Nodes[0].EP.Alloc(big)
	dst := cl.Nodes[1].EP.Alloc(big)
	fill(cl.Nodes[0].EP.Mem()[src:src+big], 11)
	rdst := cl.Nodes[0].EP.Alloc(256)
	ok := false
	cl.Env.Go("app", func(p *sim.Proc) {
		c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: big, Kind: frame.OpWrite}).Wait(p)
		for i := 0; i < 64; i++ {
			h := c01.MustDo(p, core.Op{
				Remote: dst + uint64(i*32), Local: src + uint64(i*16),
				Size: 32, Kind: frame.OpWrite,
			})
			if i%8 == 7 {
				h.Wait(p)
			}
		}
		c01.MustDo(p, core.Op{Remote: dst, Local: rdst, Size: 256, Kind: frame.OpRead}).Wait(p)
		ok = true
	})
	cl.Env.RunUntil(10 * sim.Second)
	if !ok {
		t.Fatalf("workload (RxBurst=%d) did not complete", rxBurst)
	}
	mem := append([]byte(nil), cl.Nodes[1].EP.Mem()[dst:dst+big]...)
	return mem, cl.Nodes[1].EP.Stats.OpsCompleted
}

// TestRxBurstParity pins the RxBurst contract: batched receive delivery
// changes event granularity and therefore timing, but never delivery
// semantics — the receiver's final memory image is identical to the
// frame-at-a-time run's, and every operation still completes.
func TestRxBurstParity(t *testing.T) {
	baseMem, baseOps := runBurstWorkload(t, 0)
	for _, b := range []int{2, 8} {
		mem, ops := runBurstWorkload(t, b)
		if !bytes.Equal(mem, baseMem) {
			t.Fatalf("RxBurst=%d: receiver memory diverged from frame-at-a-time run", b)
		}
		if ops != baseOps {
			t.Fatalf("RxBurst=%d: %d ops completed at receiver, want %d", b, ops, baseOps)
		}
	}
}
