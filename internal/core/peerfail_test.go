package core_test

import (
	"bytes"
	"errors"
	"testing"

	"multiedge/internal/cluster"
	"multiedge/internal/core"
	"multiedge/internal/frame"
	"multiedge/internal/sim"
)

// killAllRails fails every rail of node in both directions.
func killAllRails(cl *cluster.Cluster, node int) { cl.PauseNode(node) }

func TestAdaptiveRTOConverges(t *testing.T) {
	// With adaptation enabled and a floor below the legacy RTO, the
	// estimator must pull the timeout from the paper's coarse 2 ms down
	// toward the measured sub-millisecond RTT.
	cfg := cluster.OneLink1G(0)
	cfg.Core.RTOMax = 100 * sim.Millisecond
	cfg.Core.RTOMin = 100 * sim.Microsecond
	cl, c01, _ := pairCluster(t, cfg)
	if got, want := c01.RTO(), cfg.Core.RTO; got != want {
		t.Fatalf("initial RTO = %v, want the configured %v", got, want)
	}
	// Sequential small writes keep the transmit queue shallow, so the
	// measured RTT is the real round trip (tens of µs), not a
	// window-deep serialization backlog.
	src := cl.Nodes[0].EP.Alloc(4096)
	dst := cl.Nodes[1].EP.Alloc(4096)
	cl.Env.Go("app", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: 4096, Kind: frame.OpWrite}).Wait(p)
		}
	})
	cl.Env.RunUntil(10 * sim.Second)
	st := cl.Nodes[0].EP.Stats
	if st.RttSamples < 40 {
		t.Fatalf("only %d RTT samples collected", st.RttSamples)
	}
	if got := c01.RTO(); got >= sim.Millisecond || got < cfg.Core.RTOMin {
		t.Errorf("adapted RTO = %v, want in [%v, 1ms): the µs-scale RTT must pull it down", got, cfg.Core.RTOMin)
	}
}

func TestAdaptiveRTOFixedModeUnchanged(t *testing.T) {
	// RTOMax = 0 (the default) keeps the paper's fixed timeout: no
	// adaptation is applied even though samples are still measured.
	cl, c01, _ := pairCluster(t, cluster.OneLink1G(0))
	const n = 256 << 10
	src := cl.Nodes[0].EP.Alloc(n)
	dst := cl.Nodes[1].EP.Alloc(n)
	cl.Env.Go("app", func(p *sim.Proc) {
		c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: n, Kind: frame.OpWrite}).Wait(p)
	})
	cl.Env.RunUntil(10 * sim.Second)
	if cl.Nodes[0].EP.Stats.RttSamples == 0 {
		t.Error("estimator should measure even in fixed mode")
	}
	if got := c01.RTO(); got != cluster.OneLink1G(0).Core.RTO {
		t.Errorf("fixed-mode RTO = %v, want %v", got, cluster.OneLink1G(0).Core.RTO)
	}
}

func TestAdaptiveRTOBackoff(t *testing.T) {
	// A dead link under adaptive timing: each consecutive expiry doubles
	// the timeout up to RTOMax, and the backoff depth lands in stats.
	cfg := cluster.OneLink1G(0)
	cfg.Core.RTOMax = 50 * sim.Millisecond
	cfg.Core.DeadInterval = sim.Second
	cfg.Core.DeadLinkThreshold = 0 // isolate RTO backoff from link probing
	cl, c01, _ := pairCluster(t, cfg)
	src := cl.Nodes[0].EP.Alloc(4096)
	dst := cl.Nodes[1].EP.Alloc(4096)
	cl.FailLink(0, 0) // dead before the first frame leaves
	cl.Env.Go("app", func(p *sim.Proc) {
		h := c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: 4096, Kind: frame.OpWrite})
		h.Wait(p)
	})
	cl.Env.RunUntil(2 * sim.Second)
	st := cl.Nodes[0].EP.Stats
	if st.RtoExpiries < 4 {
		t.Fatalf("only %d RTO expiries on a dead link", st.RtoExpiries)
	}
	if st.RtoBackoffMax < 3 {
		t.Errorf("RtoBackoffMax = %d, want >= 3 (exponential backoff)", st.RtoBackoffMax)
	}
	if got := c01.RTO(); got != cfg.Core.RTOMax {
		t.Errorf("backed-off RTO = %v, want clamped at RTOMax %v", got, cfg.Core.RTOMax)
	}
	// Backoff capped the retransmission rate: far fewer than the
	// fixed-RTO DeadInterval/RTO ≈ 500 tries.
	if st.Retransmissions > 60 {
		t.Errorf("%d retransmissions; backoff should pace them", st.Retransmissions)
	}
}

func TestAllRailsDownFailsEveryWaiter(t *testing.T) {
	// The tentpole promise: with every path dead, a blocked Wait, a
	// blocked WaitCQ, a pending remote read and a parked WaitNotify all
	// return ErrPeerDead within DeadInterval (+ detection slack).
	const di = 100 * sim.Millisecond
	cfg := cluster.TwoLinkUnordered1G(0)
	cfg.Core.DeadInterval = di
	cfg.Core.UseSQ = true
	cl, c01, c10 := pairCluster(t, cfg)
	const n = 4 << 20 // ~17ms of wire time: still streaming when the rails die
	src := cl.Nodes[0].EP.Alloc(n)
	dst := cl.Nodes[1].EP.Alloc(n)
	rbuf := cl.Nodes[0].EP.Alloc(1 << 20)
	wsrc := cl.Nodes[1].EP.Alloc(n)
	wdst := cl.Nodes[0].EP.Alloc(n)
	const kill = 2 * sim.Millisecond
	cl.Env.After(kill, func() {
		killAllRails(cl, 1)
	})
	var wrErr, rdErr, cqErr error
	var wrAt, rdAt, cqAt, nfAt sim.Time
	var poison bool
	cl.Env.Go("writer", func(p *sim.Proc) {
		h := c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: n, Kind: frame.OpWrite})
		h.Wait(p)
		wrErr, wrAt = h.Err(), cl.Env.Now()
	})
	cl.Env.Go("reader", func(p *sim.Proc) {
		h := c01.MustDo(p, core.Op{Remote: dst, Local: rbuf, Size: 1 << 20, Kind: frame.OpRead})
		h.Wait(p)
		rdErr, rdAt = h.Err(), cl.Env.Now()
	})
	cl.Env.Go("reverse-writer", func(p *sim.Proc) {
		// Keeps node 1's own send machinery busy so ITS DeadInterval
		// detection fires too and poisons the notify waiter below.
		h := c10.MustDo(p, core.Op{Remote: wdst, Local: wsrc, Size: n, Kind: frame.OpWrite})
		h.Wait(p)
	})
	cl.Env.Go("sq", func(p *sim.Proc) {
		if err := c01.Post(core.Op{Remote: dst, Size: 512, Kind: frame.OpWrite}); err != nil {
			t.Errorf("post: %v", err)
			return
		}
		if _, err := c01.Ring(p); err != nil {
			cqErr, cqAt = err, cl.Env.Now()
			return
		}
		comp := c01.WaitCQ(p)
		cqErr, cqAt = comp.Err, cl.Env.Now()
	})
	cl.Env.Go("notify", func(p *sim.Proc) {
		nf := c10.WaitNotify(p)
		if nf.Len < 0 {
			poison = true
		}
		nfAt = cl.Env.Now()
	})
	cl.Env.RunUntil(5 * sim.Second)
	lim := kill + di + 50*sim.Millisecond
	for _, c := range []struct {
		name string
		err  error
		at   sim.Time
	}{{"Wait", wrErr, wrAt}, {"read Wait", rdErr, rdAt}, {"WaitCQ", cqErr, cqAt}} {
		if !errors.Is(c.err, core.ErrPeerDead) {
			t.Errorf("%s returned %v at %v, want ErrPeerDead", c.name, c.err, c.at)
		}
		if c.at == 0 || c.at > lim {
			t.Errorf("%s released at %v, want within %v", c.name, c.at, lim)
		}
	}
	// Node 1's reverse write starves of acks too, so its side reaches
	// Failed on its own DeadInterval and the parked WaitNotify is
	// released with the poison notification.
	if !poison {
		t.Error("WaitNotify was not poisoned by the receiver-side failure")
	}
	if nfAt == 0 || nfAt > lim {
		t.Errorf("WaitNotify released at %v, want within %v", nfAt, lim)
	}
	if !c01.Failed() || !errors.Is(c01.Err(), core.ErrPeerDead) {
		t.Errorf("conn not marked failed: failed=%v err=%v", c01.Failed(), c01.Err())
	}
	if cl.Nodes[0].EP.Stats.PeerDeadEvents == 0 {
		t.Error("no PeerDeadEvents counted")
	}
}

func TestResetPropagatesDeath(t *testing.T) {
	// Kill only the reverse path (node1 -> node0): node 0 starves of
	// acks, declares the peer dead, and its Reset — travelling the
	// still-healthy forward path — must fail node 1's end too, without
	// node 1 needing heartbeats or its own traffic.
	const di = 100 * sim.Millisecond
	cfg := cluster.OneLink1G(0)
	cfg.Core.DeadInterval = di
	cl, c01, c10 := pairCluster(t, cfg)
	const n = 4 << 20 // still streaming when the reverse path dies
	src := cl.Nodes[0].EP.Alloc(n)
	dst := cl.Nodes[1].EP.Alloc(n)
	cl.Env.After(2*sim.Millisecond, func() {
		// Reverse direction only: node 1's uplink and the switch ports
		// toward node 0.
		cl.RailPorts(1, 0)[0].Fail()
		for _, p := range cl.RailPorts(0, 0)[1:] {
			p.Fail()
		}
	})
	cl.Env.Go("writer", func(p *sim.Proc) {
		c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: n, Kind: frame.OpWrite}).Wait(p)
	})
	cl.Env.RunUntil(5 * sim.Second)
	if !c01.Failed() {
		t.Fatal("sender side never failed")
	}
	if !c10.Failed() || !errors.Is(c10.Err(), core.ErrPeerDead) {
		t.Fatalf("receiver side not failed by Reset: failed=%v err=%v", c10.Failed(), c10.Err())
	}
	if got := cl.Nodes[1].EP.Stats.ResetsRecv; got == 0 {
		t.Error("no Reset received at node 1")
	}
	if got := cl.Nodes[0].EP.Stats.ResetsSent; got == 0 {
		t.Error("no Reset sent by node 0")
	}
}

func TestRestoreAfterResetNeedsFreshConn(t *testing.T) {
	// After a declared death the old connection is terminal: restoring
	// the links does not revive it, frames of the dead epoch are
	// rejected, and a fresh Dial/Accept pair moves data again.
	const di = 50 * sim.Millisecond
	cfg := cluster.OneLink1G(0)
	cfg.Core.DeadInterval = di
	cl, c01, c10 := pairCluster(t, cfg)
	const n = 2 << 20
	src := cl.Nodes[0].EP.Alloc(n)
	dst := cl.Nodes[1].EP.Alloc(n)
	fill(cl.Nodes[0].EP.Mem()[src:src+n], 9)
	cl.Env.After(2*sim.Millisecond, func() { killAllRails(cl, 1) })
	cl.Env.After(500*sim.Millisecond, func() { cl.ResumeNode(1) })
	var oldErr error
	cl.Env.Go("writer", func(p *sim.Proc) {
		h := c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: n, Kind: frame.OpWrite})
		h.Wait(p)
		oldErr = h.Err()
	})
	cl.Env.RunUntil(2 * sim.Second)
	if !errors.Is(oldErr, core.ErrPeerDead) {
		t.Fatalf("old conn op returned %v, want ErrPeerDead", oldErr)
	}
	// The dead connection stays dead after the links heal.
	cl.Env.Go("retry", func(p *sim.Proc) {
		if _, err := c01.Do(p, core.Op{Remote: dst, Size: 512, Kind: frame.OpWrite}); !errors.Is(err, core.ErrPeerDead) {
			t.Errorf("op on dead conn: %v, want ErrPeerDead", err)
		}
	})
	// A fresh pair works over the restored links.
	var n01, n10 *core.Conn
	cl.Env.Go("redial", func(p *sim.Proc) { n01 = cl.Nodes[0].EP.Dial(p, 1, 0) })
	cl.Env.Go("reaccept", func(p *sim.Proc) { n10 = cl.Nodes[1].EP.Accept(p) })
	cl.Env.RunUntil(3 * sim.Second)
	if n01 == nil || n10 == nil || n01.Failed() {
		t.Fatal("fresh handshake did not complete over restored links")
	}
	var done bool
	cl.Env.Go("writer2", func(p *sim.Proc) {
		h := n01.MustDo(p, core.Op{Remote: dst, Local: src, Size: n, Kind: frame.OpWrite})
		h.Wait(p)
		done = h.Err() == nil
	})
	cl.Env.RunUntil(5 * sim.Second)
	if !done {
		t.Fatal("transfer on the fresh connection did not complete")
	}
	if !bytes.Equal(cl.Nodes[1].EP.Mem()[dst:dst+n], cl.Nodes[0].EP.Mem()[src:src+n]) {
		t.Fatal("data corrupted on fresh connection")
	}
	if c10.Failed() {
		// Fine either way: node 1's old end may have died via the Reset
		// if it slipped out before the rails dropped.
		return
	}
}

func TestOpDeadlineReleasesWaiterOnly(t *testing.T) {
	// A deadline releases the issuer; the transfer itself is not
	// cancelled and completes once the link heals.
	cfg := cluster.OneLink1G(0)
	cfg.Core.DeadInterval = sim.Second
	cl, c01, _ := pairCluster(t, cfg)
	const n = 256 << 10
	src := cl.Nodes[0].EP.Alloc(n)
	dst := cl.Nodes[1].EP.Alloc(n)
	fill(cl.Nodes[0].EP.Mem()[src:src+n], 3)
	cl.Env.After(100*sim.Microsecond, func() { cl.FailLink(0, 0) })
	cl.Env.After(100*sim.Millisecond, func() { cl.RestoreLink(0, 0) })
	var dlErr error
	var releasedAt sim.Time
	cl.Env.Go("writer", func(p *sim.Proc) {
		h := c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: n,
			Kind: frame.OpWrite, Deadline: 20 * sim.Millisecond})
		h.Wait(p)
		dlErr, releasedAt = h.Err(), cl.Env.Now()
	})
	cl.Env.RunUntil(2 * sim.Second)
	if !errors.Is(dlErr, core.ErrDeadlineExceeded) {
		t.Fatalf("deadline op returned %v, want ErrDeadlineExceeded", dlErr)
	}
	// The handle fires exactly at the deadline; the waiter resumes one
	// modeled scheduler wakeup later.
	if dl := 20 * sim.Millisecond; releasedAt < dl || releasedAt > dl+50*sim.Microsecond {
		t.Errorf("waiter released at %v, want the 20ms deadline plus wakeup latency", releasedAt)
	}
	st := cl.Nodes[0].EP.Stats
	if st.OpDeadlinesExpired != 1 {
		t.Errorf("OpDeadlinesExpired = %d, want 1", st.OpDeadlinesExpired)
	}
	// The un-cancelled transfer still landed after the link healed.
	if !bytes.Equal(cl.Nodes[1].EP.Mem()[dst:dst+n], cl.Nodes[0].EP.Mem()[src:src+n]) {
		t.Fatal("transfer was cancelled with the waiter")
	}
	if c01.Failed() {
		t.Error("deadline expiry must not kill the connection")
	}
}

func TestBoundedDial(t *testing.T) {
	// Dialing a dark node with a retry budget returns a failed conn
	// instead of retrying forever.
	cfg := cluster.OneLink1G(0)
	cfg.Nodes = 2
	cfg.Core.MaxRetries = 3
	cl := cluster.New(cfg)
	cl.PauseNode(1)
	var c *core.Conn
	cl.Env.Go("dial", func(p *sim.Proc) { c = cl.Nodes[0].EP.Dial(p, 1, 0) })
	end := cl.Env.RunUntil(10 * sim.Second)
	if c == nil {
		t.Fatal("Dial never returned")
	}
	if !c.Failed() || !errors.Is(c.Err(), core.ErrPeerDead) {
		t.Fatalf("dial to dark node: failed=%v err=%v, want ErrPeerDead", c.Failed(), c.Err())
	}
	// 1 try + 3 retries at ConnRetry spacing, plus slack.
	if lim := 5 * cfg.Core.ConnRetry; end > lim {
		t.Errorf("dial gave up at %v, want within %v", end, lim)
	}
}

func TestBoundedClose(t *testing.T) {
	// Closing a connection whose peer died mid-stream must return: the
	// drain loop exits on failure and the close handshake gives up
	// after MaxRetries.
	cfg := cluster.OneLink1G(0)
	cfg.Core.DeadInterval = 50 * sim.Millisecond
	cfg.Core.MaxRetries = 4
	cl, c01, _ := pairCluster(t, cfg)
	const n = 64 << 10
	src := cl.Nodes[0].EP.Alloc(n)
	dst := cl.Nodes[1].EP.Alloc(n)
	cl.Env.After(2*sim.Millisecond, func() { killAllRails(cl, 1) })
	var closedAt sim.Time
	cl.Env.Go("writer", func(p *sim.Proc) {
		h := c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: n, Kind: frame.OpWrite})
		h.Wait(p) // returns with ErrPeerDead
		c01.Close(p)
		closedAt = cl.Env.Now()
	})
	cl.Env.RunUntil(10 * sim.Second)
	if closedAt == 0 {
		t.Fatal("Close never returned against a dead peer")
	}
	if closedAt > sim.Second {
		t.Errorf("Close returned at %v; should be prompt once the conn failed", closedAt)
	}
}

func TestHeartbeatIdleDetection(t *testing.T) {
	// An idle pair with heartbeats: healthy it stays up indefinitely;
	// once the peer goes dark BOTH sides detect within DeadInterval of
	// the silence starting, with no application traffic at all.
	const (
		hb   = 10 * sim.Millisecond
		di   = 100 * sim.Millisecond
		kill = sim.Second
	)
	cfg := cluster.OneLink1G(0)
	cfg.Core.HeartbeatInterval = hb
	cfg.Core.DeadInterval = di
	cl, c01, c10 := pairCluster(t, cfg)
	cl.Env.After(kill, func() { killAllRails(cl, 1) })
	// Probe conn health every 10ms; record when each side notices.
	var at01, at10 sim.Time
	var tick func()
	tick = func() {
		if at01 == 0 && c01.Failed() {
			at01 = cl.Env.Now()
		}
		if at10 == 0 && c10.Failed() {
			at10 = cl.Env.Now()
		}
		if at01 == 0 || at10 == 0 {
			cl.Env.AfterDaemon(10*sim.Millisecond, tick)
		}
	}
	cl.Env.AfterDaemon(10*sim.Millisecond, tick)
	cl.Env.RunUntil(3 * sim.Second)
	if at01 == 0 || at10 == 0 {
		t.Fatalf("sides failed at %v / %v; both must detect via heartbeat silence", at01, at10)
	}
	// Healthy idle period: nobody died before the kill.
	if at01 < kill || at10 < kill {
		t.Fatalf("spurious death at %v / %v before the kill at %v", at01, at10, kill)
	}
	lim := kill + di + 3*hb
	if at01 > lim || at10 > lim {
		t.Errorf("detection at %v / %v, want within %v", at01, at10, lim)
	}
	st0, st1 := cl.Nodes[0].EP.Stats, cl.Nodes[1].EP.Stats
	if st0.HeartbeatsSent == 0 || st1.HeartbeatsSent == 0 || st0.HeartbeatsRecv == 0 {
		t.Errorf("heartbeats sent %d/%d recv %d: idle liveness not exercised",
			st0.HeartbeatsSent, st1.HeartbeatsSent, st0.HeartbeatsRecv)
	}
}
