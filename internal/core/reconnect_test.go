package core_test

import (
	"bytes"
	"errors"
	"testing"

	"multiedge/internal/cluster"
	"multiedge/internal/core"
	"multiedge/internal/frame"
	"multiedge/internal/sim"
)

// reconnectConfig is the shared recovery-test configuration: recovery
// on, tight detection so outages resolve in simulated milliseconds.
func reconnectConfig() cluster.Config {
	cfg := cluster.OneLink1G(0)
	cfg.Core.Reconnect = true
	cfg.Core.DeadInterval = 50 * sim.Millisecond
	return cfg
}

func TestReconnectResumesWrite(t *testing.T) {
	// The tentpole promise: a node crash-restarts mid-stream and the
	// in-flight write — instead of failing with ErrPeerDead — is
	// replayed over a fresh incarnation and completes byte-identically,
	// with no duplicate apply corrupting the destination.
	cfg := reconnectConfig()
	cl, c01, c10 := pairCluster(t, cfg)
	const n = 4 << 20 // still streaming when the node drops
	src := cl.Nodes[0].EP.Alloc(n)
	dst := cl.Nodes[1].EP.Alloc(n)
	fill(cl.Nodes[0].EP.Mem()[src:src+n], 5)
	cl.Env.After(2*sim.Millisecond, func() { cl.RestartNode(1, 200*sim.Millisecond) })
	var wrErr error
	var doneAt sim.Time
	cl.Env.Go("writer", func(p *sim.Proc) {
		h := c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: n, Kind: frame.OpWrite})
		h.Wait(p)
		wrErr, doneAt = h.Err(), cl.Env.Now()
	})
	cl.Env.RunUntil(10 * sim.Second)
	if wrErr != nil {
		t.Fatalf("write across restart returned %v, want transparent recovery", wrErr)
	}
	if doneAt == 0 {
		t.Fatal("write never completed")
	}
	if !bytes.Equal(cl.Nodes[1].EP.Mem()[dst:dst+n], cl.Nodes[0].EP.Mem()[src:src+n]) {
		t.Fatal("data corrupted across the reconnect")
	}
	st0, st1 := cl.Nodes[0].EP.Stats, cl.Nodes[1].EP.Stats
	if st0.Reconnects == 0 || st1.Reconnects == 0 {
		t.Errorf("Reconnects = %d/%d, want both sides reborn", st0.Reconnects, st1.Reconnects)
	}
	if st0.ReplayedOps == 0 {
		t.Error("no ops journaled and replayed")
	}
	if c01.Failed() || c10.Failed() {
		t.Errorf("failed=%v/%v: recovery must not reach the terminal state", c01.Failed(), c10.Failed())
	}
	if c01.Reconnects() == 0 {
		t.Errorf("conn Reconnects() = %d, want > 0", c01.Reconnects())
	}
}

func TestReconnectExhaustsBudget(t *testing.T) {
	// A peer that never comes back: the supervisor burns MaxReconnects
	// redials, then the connection fails for real with ErrPeerDead —
	// exactly the no-recovery contract, just later.
	cfg := reconnectConfig()
	cfg.Core.MaxReconnects = 3
	cl, c01, _ := pairCluster(t, cfg)
	const n = 4 << 20 // still streaming when the node drops
	src := cl.Nodes[0].EP.Alloc(n)
	dst := cl.Nodes[1].EP.Alloc(n)
	cl.Env.After(2*sim.Millisecond, func() { cl.PauseNode(1) })
	var wrErr error
	var acked int
	cl.Env.Go("writer", func(p *sim.Proc) {
		h := c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: n, Kind: frame.OpWrite})
		h.Wait(p)
		wrErr, acked = h.Err(), h.BytesAcked()
	})
	cl.Env.RunUntil(10 * sim.Second)
	if !errors.Is(wrErr, core.ErrPeerDead) {
		t.Fatalf("write to dark peer returned %v, want ErrPeerDead after the budget", wrErr)
	}
	st := cl.Nodes[0].EP.Stats
	if st.ReconnectsFailed != 1 {
		t.Errorf("ReconnectsFailed = %d, want 1", st.ReconnectsFailed)
	}
	if !c01.Failed() {
		t.Error("conn must reach the terminal Failed state once the budget is spent")
	}
	// The failed handle reports how far the transfer provably got; the
	// replay journal reset the mark, so anything in [0, n] is legal, but
	// it must not exceed the operation size.
	if acked < 0 || acked > n {
		t.Errorf("BytesAcked = %d, want within [0, %d]", acked, n)
	}
}

func TestReconnectExactlyOnceNotify(t *testing.T) {
	// Acks lost, data delivered: the write lands and notifies, then the
	// sender — starved of acknowledgements — parks and replays it after
	// recovery. The receiver's completed-op record must swallow the
	// replayed payload: one notification, no second apply.
	cfg := reconnectConfig()
	cl, c01, c10 := pairCluster(t, cfg)
	const n = 1024
	src := cl.Nodes[0].EP.Alloc(n)
	dst := cl.Nodes[1].EP.Alloc(n)
	fill(cl.Nodes[0].EP.Mem()[src:src+n], 7)
	// Kill only the reverse direction (node1 -> node0) before issuing the
	// write: data and the Reset travel forward, acknowledgements die.
	killReverse := func() {
		cl.RailPorts(1, 0)[0].Fail()
		for _, p := range cl.RailPorts(0, 0)[1:] {
			p.Fail()
		}
	}
	restoreReverse := func() {
		cl.RailPorts(1, 0)[0].Restore()
		for _, p := range cl.RailPorts(0, 0)[1:] {
			p.Restore()
		}
	}
	cl.Env.After(sim.Millisecond, killReverse)
	cl.Env.After(200*sim.Millisecond, restoreReverse)
	var wrErr error
	var notifies int
	cl.Env.Go("writer", func(p *sim.Proc) {
		p.Sleep(2 * sim.Millisecond) // after the reverse path is dead
		h := c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: n,
			Kind: frame.OpWrite, Flags: frame.Notify})
		h.Wait(p)
		wrErr = h.Err()
	})
	cl.Env.Go("notify", func(p *sim.Proc) {
		for {
			if nf := c10.WaitNotify(p); nf.Len < 0 {
				return // poison: conn died (would fail the test below)
			}
			notifies++
		}
	})
	cl.Env.RunUntil(10 * sim.Second)
	if wrErr != nil {
		t.Fatalf("write returned %v, want recovery across the ack outage", wrErr)
	}
	if notifies != 1 {
		t.Fatalf("receiver saw %d notifications, want exactly 1 despite the replay", notifies)
	}
	if got := cl.Nodes[1].EP.Stats.Notifies; got != 1 {
		t.Errorf("Stats.Notifies = %d, want 1", got)
	}
	if !bytes.Equal(cl.Nodes[1].EP.Mem()[dst:dst+n], cl.Nodes[0].EP.Mem()[src:src+n]) {
		t.Fatal("data corrupted")
	}
	if cl.Nodes[0].EP.Stats.Reconnects == 0 {
		t.Error("sender never reconnected")
	}
	// The replayed payload had to be dropped by the completed-op record.
	if cl.Nodes[1].EP.Stats.DupFramesDropped == 0 {
		t.Error("replayed payload was not deduplicated at the receiver")
	}
}

func TestReconnectResumesRead(t *testing.T) {
	// A read whose request was already acknowledged when the peer died:
	// at replay time its txOp is gone, so the journal re-synthesizes the
	// request from the handle's descriptor and the reply lands after
	// recovery.
	cfg := reconnectConfig()
	cl, c01, _ := pairCluster(t, cfg)
	const n = 1 << 20
	dst := cl.Nodes[1].EP.Alloc(n)
	buf := cl.Nodes[0].EP.Alloc(n)
	fill(cl.Nodes[1].EP.Mem()[dst:dst+n], 11)
	cl.Env.After(2*sim.Millisecond, func() { cl.RestartNode(1, 150*sim.Millisecond) })
	var rdErr error
	cl.Env.Go("reader", func(p *sim.Proc) {
		h := c01.MustDo(p, core.Op{Remote: dst, Local: buf, Size: n, Kind: frame.OpRead})
		h.Wait(p)
		rdErr = h.Err()
	})
	cl.Env.RunUntil(10 * sim.Second)
	if rdErr != nil {
		t.Fatalf("read across restart returned %v, want transparent recovery", rdErr)
	}
	if !bytes.Equal(cl.Nodes[0].EP.Mem()[buf:buf+n], cl.Nodes[1].EP.Mem()[dst:dst+n]) {
		t.Fatal("read data corrupted across the reconnect")
	}
	if cl.Nodes[0].EP.Stats.Reconnects == 0 {
		t.Error("reader never reconnected")
	}
}

func TestReconnectDeadlineStillFires(t *testing.T) {
	// Recovery must not weaken the deadline contract: an op whose
	// Op.Deadline passes during the outage releases its waiter with
	// ErrDeadlineExceeded even though the conn later recovers.
	cfg := reconnectConfig()
	cl, c01, c10 := pairCluster(t, cfg)
	const n = 4 << 20 // still streaming when the node drops
	src := cl.Nodes[0].EP.Alloc(n)
	dst := cl.Nodes[1].EP.Alloc(n)
	fill(cl.Nodes[0].EP.Mem()[src:src+n], 3)
	cl.Env.After(2*sim.Millisecond, func() { cl.RestartNode(1, 200*sim.Millisecond) })
	var dlErr error
	var releasedAt sim.Time
	cl.Env.Go("writer", func(p *sim.Proc) {
		h := c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: n,
			Kind: frame.OpWrite, Deadline: 20 * sim.Millisecond})
		h.Wait(p)
		dlErr, releasedAt = h.Err(), cl.Env.Now()
	})
	cl.Env.RunUntil(5 * sim.Second)
	if !errors.Is(dlErr, core.ErrDeadlineExceeded) {
		t.Fatalf("deadline op returned %v at %v, want ErrDeadlineExceeded", dlErr, releasedAt)
	}
	if dl := 20 * sim.Millisecond; releasedAt < dl || releasedAt > dl+50*sim.Microsecond {
		t.Errorf("waiter released at %v, want at the deadline", releasedAt)
	}
	// The detached transfer still replays and lands after recovery.
	cl.Env.RunUntil(10 * sim.Second)
	if !bytes.Equal(cl.Nodes[1].EP.Mem()[dst:dst+n], cl.Nodes[0].EP.Mem()[src:src+n]) {
		t.Fatal("detached transfer did not land after recovery")
	}
	if c01.Failed() || c10.Failed() {
		t.Error("deadline expiry must not kill a recovering connection")
	}
}

func TestReconnectOpsIssuedWhileParked(t *testing.T) {
	// Operations issued while the connection is parked in Reconnecting
	// queue transparently and transmit after rebirth — initiation does
	// not error, and nothing is lost.
	cfg := reconnectConfig()
	// Heartbeats let the idle dialer detect the outage before it has any
	// traffic of its own to starve.
	cfg.Core.HeartbeatInterval = 10 * sim.Millisecond
	cl, c01, _ := pairCluster(t, cfg)
	const n = 64 << 10
	src := cl.Nodes[0].EP.Alloc(n)
	dst := cl.Nodes[1].EP.Alloc(n)
	fill(cl.Nodes[0].EP.Mem()[src:src+n], 13)
	cl.Env.After(sim.Millisecond, func() { cl.RestartNode(1, 200*sim.Millisecond) })
	var wrErr error
	cl.Env.Go("writer", func(p *sim.Proc) {
		// Wait until the outage has certainly been detected (DeadInterval
		// plus slack), then issue while parked.
		p.Sleep(100 * sim.Millisecond)
		if !c01.Reconnecting() {
			t.Error("conn not parked in Reconnecting when the op was issued")
		}
		h := c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: n, Kind: frame.OpWrite})
		h.Wait(p)
		wrErr = h.Err()
	})
	cl.Env.RunUntil(10 * sim.Second)
	if wrErr != nil {
		t.Fatalf("op issued while parked returned %v, want queued replay", wrErr)
	}
	if !bytes.Equal(cl.Nodes[1].EP.Mem()[dst:dst+n], cl.Nodes[0].EP.Mem()[src:src+n]) {
		t.Fatal("parked-issue data corrupted")
	}
}

func TestReconnectOffUnchanged(t *testing.T) {
	// The gate: with Reconnect off (the default), peer death is terminal
	// exactly as before, and no frame ever carries a non-zero
	// incarnation (the wire stays byte-identical to the pinned runs).
	cfg := cluster.OneLink1G(0)
	cfg.Core.DeadInterval = 50 * sim.Millisecond
	cl, c01, _ := pairCluster(t, cfg)
	const n = 4 << 20 // still streaming when the node drops
	src := cl.Nodes[0].EP.Alloc(n)
	dst := cl.Nodes[1].EP.Alloc(n)
	cl.Env.After(2*sim.Millisecond, func() { cl.RestartNode(1, 100*sim.Millisecond) })
	var wrErr error
	cl.Env.Go("writer", func(p *sim.Proc) {
		h := c01.MustDo(p, core.Op{Remote: dst, Local: src, Size: n, Kind: frame.OpWrite})
		h.Wait(p)
		wrErr = h.Err()
	})
	cl.Env.RunUntil(5 * sim.Second)
	if !errors.Is(wrErr, core.ErrPeerDead) {
		t.Fatalf("with recovery off the write returned %v, want ErrPeerDead", wrErr)
	}
	st := cl.Nodes[0].EP.Stats
	if st.Reconnects != 0 || st.ReplayedOps != 0 || st.StaleEpochDrops != 0 {
		t.Errorf("recovery counters moved with the feature off: %d/%d/%d",
			st.Reconnects, st.ReplayedOps, st.StaleEpochDrops)
	}
}
