package core_test

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"multiedge/internal/core"
	"multiedge/internal/frame"
	"multiedge/internal/phys"
	"multiedge/internal/sim"
)

// TestStaleIncarnationNeverApplied is the epoch-fence property (quick):
// a data frame stamped with ANY incarnation other than the connection's
// live one — older epochs, future epochs, and the zero "unused" value —
// is dropped at dispatch and never reaches receiver memory or ARQ
// state. The frames are crafted to be maximally plausible otherwise:
// correct ConnID, an in-window sequence number, a fresh op id and a
// valid destination address, so only the incarnation check can reject
// them.
func TestStaleIncarnationNeverApplied(t *testing.T) {
	cfg := reconnectConfig()
	cl, c01, c10 := pairCluster(t, cfg)

	// Force one real crash-restart recovery so the live incarnation is
	// not the initial one: the property must hold against a connection
	// that has history (epoch 1 frames are genuinely "stale", not just
	// malformed).
	const wn = 1 << 20
	wsrc := cl.Nodes[0].EP.Alloc(wn)
	wdst := cl.Nodes[1].EP.Alloc(wn)
	fill(cl.Nodes[0].EP.Mem()[wsrc:wsrc+wn], 17)
	cl.Env.After(2*sim.Millisecond, func() { cl.RestartNode(1, 150*sim.Millisecond) })
	var wrErr error
	cl.Env.Go("writer", func(p *sim.Proc) {
		h := c01.MustDo(p, core.Op{Remote: wdst, Local: wsrc, Size: wn, Kind: frame.OpWrite})
		h.Wait(p)
		wrErr = h.Err()
	})
	cl.Env.RunUntil(5 * sim.Second)
	if wrErr != nil {
		t.Fatalf("setup write across restart: %v", wrErr)
	}
	live := c10.Incarnation()
	if live < 2 {
		t.Fatalf("live incarnation %d, want >= 2 after a real reconnect", live)
	}
	if got := c01.Incarnation(); got != live {
		t.Fatalf("incarnation split brain: dialer %d, acceptor %d", got, live)
	}

	// The target region the forged writes aim at, with a pinned snapshot.
	const n = 4096
	dst := cl.Nodes[1].EP.Alloc(n)
	fill(cl.Nodes[1].EP.Mem()[dst:dst+n], 23)
	snap := append([]byte(nil), cl.Nodes[1].EP.Mem()[dst:dst+n]...)

	connID := c10.LocalIDForTest()
	rcvNxt0, maxSeen0 := c10.RcvStateForTest()
	now := cl.Env.Now()

	prop := func(delta uint16, seqOff uint8, opLow uint16, payload []byte) bool {
		// Map delta onto every incarnation EXCEPT the live one: live+1+k
		// for k in [0, 65534] walks the other 65535 values of the ring,
		// including zero.
		inc := live + 1 + delta%65535
		if len(payload) > 512 {
			payload = payload[:512]
		}
		if len(payload) == 0 {
			payload = []byte{0xEE}
		}
		h := frame.Header{
			Type:        frame.TypeData,
			ConnID:      connID,
			Seq:         rcvNxt0 + uint32(seqOff), // in-window: acceptable to ARQ
			OpID:        1<<20 + uint64(opLow),    // fresh op, above any real frontier
			OpType:      frame.OpWrite,
			Remote:      dst,
			Offset:      0,
			Total:       uint32(len(payload)),
			Incarnation: inc,
		}
		buf := frame.MustEncode(frame.NewAddr(1, 0), frame.NewAddr(0, 0), &h, payload)
		before := cl.Nodes[1].EP.Stats.StaleEpochDrops
		// Deliver straight into node 1's NIC rx path, as the switch
		// would — the forgery does not depend on node 0's sender state.
		cl.Env.After(0, func() {
			cl.Nodes[1].NICs[0].DeliverFrame(&phys.Frame{
				Buf: buf, Dst: frame.NewAddr(1, 0), Src: frame.NewAddr(0, 0),
			})
		})
		now += 300 * sim.Microsecond
		cl.Env.RunUntil(now)

		if !bytes.Equal(cl.Nodes[1].EP.Mem()[dst:dst+n], snap) {
			t.Logf("incarnation %d (live %d): forged frame reached memory", inc, live)
			return false
		}
		rcvNxt, maxSeen := c10.RcvStateForTest()
		if rcvNxt != rcvNxt0 || maxSeen != maxSeen0 {
			t.Logf("incarnation %d: ARQ state moved: rcvNxt %d->%d maxSeen %d->%d",
				inc, rcvNxt0, rcvNxt, maxSeen0, maxSeen)
			return false
		}
		if got := cl.Nodes[1].EP.Stats.StaleEpochDrops; got != before+1 {
			t.Logf("incarnation %d: StaleEpochDrops %d, want %d — frame not fenced",
				inc, got, before+1)
			return false
		}
		return c10.Incarnation() == live && !c10.Reconnecting() && !c10.Failed()
	}
	qc := &quick.Config{
		MaxCount: 200,
		Rand:     rand.New(rand.NewSource(42)), // deterministic under sim
	}
	if err := quick.Check(prop, qc); err != nil {
		t.Fatal(err)
	}

	// The connection is still fully functional after 200 forgeries: a
	// genuine write with the live incarnation goes through.
	src2 := cl.Nodes[0].EP.Alloc(n)
	fill(cl.Nodes[0].EP.Mem()[src2:src2+n], 29)
	var postErr error
	cl.Env.Go("post", func(p *sim.Proc) {
		h := c01.MustDo(p, core.Op{Remote: dst, Local: src2, Size: n, Kind: frame.OpWrite})
		h.Wait(p)
		postErr = h.Err()
	})
	cl.Env.RunUntil(now + sim.Second)
	if postErr != nil {
		t.Fatalf("live write after forgeries: %v", postErr)
	}
	if !bytes.Equal(cl.Nodes[1].EP.Mem()[dst:dst+n], cl.Nodes[0].EP.Mem()[src2:src2+n]) {
		t.Fatal("live write after forgeries did not land")
	}
}
